module ofc

go 1.22
