// Command benchdiff compares two BENCH_sim.json perf snapshots (see
// cmd/ofc-bench -benchout) and fails when the new one regresses the
// old by more than a threshold.
//
// Usage:
//
//	go run ./scripts OLD.json NEW.json [-max-regress 0.20]
//
// Micro-benchmarks are compared on ns/op and allocs/op, experiments on
// wall-clock. Sub-millisecond experiment timings and sub-nanosecond
// deltas sit inside host noise and are ignored, so the gate only trips
// on real slowdowns. Exit status 1 lists every regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type expEntry struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
}

type qualityEntry struct {
	Name         string  `json:"name"`
	Value        float64 `json:"value"`
	HigherBetter bool    `json:"higher_better"`
}

type benchFile struct {
	Micro       []benchEntry   `json:"micro"`
	Experiments []expEntry     `json:"experiments"`
	Quality     []qualityEntry `json:"quality"`
	TotalWallMs float64        `json:"total_wall_ms"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional slowdown before failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress 0.20] OLD.json NEW.json")
		os.Exit(2)
	}
	oldF, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newF, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var regressions []string
	check := func(name string, oldV, newV, floor float64) {
		if oldV < floor || newV < floor {
			return // inside measurement noise
		}
		ratio := newV/oldV - 1
		verdict := "ok"
		if ratio > *maxRegress {
			verdict = "REGRESSION"
			regressions = append(regressions, name)
		}
		fmt.Printf("%-40s %12.2f -> %12.2f  (%+6.1f%%)  %s\n", name, oldV, newV, ratio*100, verdict)
	}

	newMicro := map[string]benchEntry{}
	for _, e := range newF.Micro {
		newMicro[e.Name] = e
	}
	for _, o := range oldF.Micro {
		n, ok := newMicro[o.Name]
		if !ok {
			fmt.Printf("%-40s dropped from new snapshot\n", "micro/"+o.Name)
			continue
		}
		check("micro/"+o.Name+"/ns_op", o.NsPerOp, n.NsPerOp, 1)
		// Allocation counts are deterministic, so any increase at all is
		// meaningful; the shared threshold still decides pass/fail.
		check("micro/"+o.Name+"/allocs_op", o.AllocsPerOp, n.AllocsPerOp, 0.5)
	}
	// Micro rows only present in the new snapshot (a freshly added
	// benchmark) have no baseline to gate against; report them so the
	// next baseline refresh picks them up.
	oldMicro := map[string]benchEntry{}
	for _, e := range oldF.Micro {
		oldMicro[e.Name] = e
	}
	for _, n := range newF.Micro {
		if _, ok := oldMicro[n.Name]; !ok {
			fmt.Printf("%-40s %12s -> %12.2f  new metric (no baseline)\n", "micro/"+n.Name+"/ns_op", "-", n.NsPerOp)
		}
	}

	newExp := map[string]expEntry{}
	for _, e := range newF.Experiments {
		newExp[e.ID] = e
	}
	for _, o := range oldF.Experiments {
		n, ok := newExp[o.ID]
		if !ok {
			fmt.Printf("%-40s dropped from new snapshot\n", "exp/"+o.ID)
			continue
		}
		check("exp/"+o.ID+"/wall_ms", o.WallMs, n.WallMs, 1)
	}
	check("total_wall_ms", oldF.TotalWallMs, newF.TotalWallMs, 1)

	// Quality metrics are deterministic virtual-clock counters, so there
	// is no noise floor: any movement past the threshold in the bad
	// direction (down for higher-better, up for lower-better) fails.
	newQual := map[string]qualityEntry{}
	for _, e := range newF.Quality {
		newQual[e.Name] = e
	}
	for _, o := range oldF.Quality {
		n, ok := newQual[o.Name]
		if !ok {
			fmt.Printf("%-40s dropped from new snapshot\n", "quality/"+o.Name)
			regressions = append(regressions, "quality/"+o.Name+" (dropped)")
			continue
		}
		var worse float64 // fractional move in the bad direction
		switch {
		case o.HigherBetter && o.Value > 0:
			worse = (o.Value - n.Value) / o.Value
		case !o.HigherBetter && o.Value > 0:
			worse = (n.Value - o.Value) / o.Value
		case !o.HigherBetter && o.Value == 0:
			// Was perfect (e.g. zero lost outputs); any increase fails.
			if n.Value > 0 {
				worse = 1
			}
		}
		verdict := "ok"
		if worse > *maxRegress {
			verdict = "REGRESSION"
			regressions = append(regressions, "quality/"+o.Name)
		}
		fmt.Printf("%-40s %12.2f -> %12.2f  (worse %+5.1f%%)  %s\n",
			"quality/"+o.Name, o.Value, n.Value, worse*100, verdict)
	}
	// Quality metrics only present in the new snapshot (a fresh
	// experiment or policy cell) have no baseline to gate against;
	// report them so the next baseline refresh picks them up.
	oldQual := map[string]qualityEntry{}
	for _, e := range oldF.Quality {
		oldQual[e.Name] = e
	}
	for _, n := range newF.Quality {
		if _, ok := oldQual[n.Name]; !ok {
			fmt.Printf("%-40s %12s -> %12.2f  new metric (no baseline)\n", "quality/"+n.Name, "-", n.Value)
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d regression(s) beyond %.0f%%:\n", len(regressions), *maxRegress*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  ", r)
		}
		os.Exit(1)
	}
	fmt.Println("\nno regressions beyond threshold")
}
