// Command covercheck turns a `go test -coverprofile` profile into a
// per-package statement-coverage report and enforces a floor on one
// package subtree. The repo-wide numbers are report-only (growing code
// should not fail CI for packages that predate the floor); the floored
// subtree — internal/trace, whose golden-trace harness is the point of
// the subsystem — fails the build when it slips.
//
// Usage:
//
//	go run ./scripts/covercheck -profile cover.out -pkg ofc/internal/trace -floor 70
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// pkgCov accumulates statement counts for one package directory.
type pkgCov struct {
	stmts int64
	hit   int64
}

func (c pkgCov) percent() float64 {
	if c.stmts == 0 {
		return 0
	}
	return 100 * float64(c.hit) / float64(c.stmts)
}

func main() {
	profile := flag.String("profile", "cover.out", "coverage profile written by go test -coverprofile")
	pkg := flag.String("pkg", "", "import-path prefix the floor applies to (empty: floor the whole profile)")
	floor := flag.Float64("floor", 0, "minimum statement coverage percent for -pkg")
	flag.Parse()

	pkgs, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: profile is empty")
		os.Exit(2)
	}

	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var total, floored pkgCov
	for _, name := range names {
		c := pkgs[name]
		total.stmts += c.stmts
		total.hit += c.hit
		mark := " "
		if *pkg != "" && strings.HasPrefix(name, *pkg) {
			floored.stmts += c.stmts
			floored.hit += c.hit
			mark = "*"
		}
		fmt.Printf("%s %-44s %6.1f%%  (%d/%d stmts)\n", mark, name, c.percent(), c.hit, c.stmts)
	}
	fmt.Printf("  %-44s %6.1f%%  (%d/%d stmts)\n", "TOTAL", total.percent(), total.hit, total.stmts)

	target := total
	label := "profile"
	if *pkg != "" {
		target = floored
		label = *pkg
	}
	if *pkg != "" && target.stmts == 0 {
		fmt.Fprintf(os.Stderr, "covercheck: no statements matched -pkg %s\n", *pkg)
		os.Exit(2)
	}
	if got := target.percent(); got < *floor {
		fmt.Fprintf(os.Stderr, "covercheck: %s coverage %.1f%% is below the %.1f%% floor\n", label, got, *floor)
		os.Exit(1)
	}
	if *floor > 0 {
		fmt.Printf("floor ok: %s at %.1f%% (floor %.1f%%)\n", label, target.percent(), *floor)
	}
}

// parseProfile reads the cover profile, summing statement and hit
// counts per package directory. Profile lines look like
//
//	ofc/internal/trace/trace.go:88.36,90.3 1 5
//
// i.e. file:location numStmts hitCount, after a leading "mode:" line.
func parseProfile(path string) (map[string]pkgCov, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Blocks can repeat when several test binaries touch the same file;
	// dedupe on the block location, keeping the max hit count, before
	// aggregating per package.
	type block struct {
		stmts int64
		hits  int64
	}
	blocks := make(map[string]block)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("malformed profile line %q", line)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad statement count in %q: %v", line, err)
		}
		hits, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad hit count in %q: %v", line, err)
		}
		b := blocks[fields[0]]
		b.stmts = stmts
		if hits > b.hits {
			b.hits = hits
		}
		blocks[fields[0]] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	pkgs := make(map[string]pkgCov)
	for loc, b := range blocks {
		file, _, ok := strings.Cut(loc, ":")
		if !ok {
			return nil, fmt.Errorf("malformed location %q", loc)
		}
		dir := file
		if i := strings.LastIndexByte(file, '/'); i >= 0 {
			dir = file[:i]
		}
		c := pkgs[dir]
		c.stmts += b.stmts
		if b.hits > 0 {
			c.hit += b.stmts
		}
		pkgs[dir] = c
	}
	return pkgs, nil
}
