package ofc_test

// Public-API smoke tests: everything a downstream user touches must be
// reachable through the root package alone.

import (
	"testing"
	"time"

	"ofc"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sys := ofc.NewSystem(ofc.DefaultOptions())
	fn := &ofc.Function{
		Name: "hello", Tenant: "api", MemoryBooked: 512 << 20,
		InputType: "image", ArgNames: []string{"sigma"},
		Body: func(ctx *ofc.Ctx) error {
			blob, err := ctx.Extract(ctx.InputKeys()[0])
			if err != nil {
				return err
			}
			if err := ctx.Transform(15*time.Millisecond, 96<<20); err != nil {
				return err
			}
			return ctx.Load("api/out", ofc.Blob{Size: blob.Size / 2}, ofc.KindFinal)
		},
	}
	sys.Register(fn)

	features := map[string]float64{"size": 64 << 10, "width": 800, "height": 600, "channels": 3}
	var samples []ofc.Sample
	schema := sys.Pred.Schema(fn)
	for i := 0; i < 150; i++ {
		vals := make([]float64, len(schema.Names()))
		for j, n := range schema.Names() {
			switch n {
			case "size":
				vals[j] = float64((1 + i%6) * 16 << 10)
			case "width":
				vals[j] = 800
			case "height":
				vals[j] = 600
			case "channels":
				vals[j] = 3
			case "sigma":
				vals[j] = float64(1 + i%3)
			}
		}
		samples = append(samples, ofc.Sample{
			Vals: vals, PeakMem: 96 << 20,
			Extract: 40 * time.Millisecond, Transform: 15 * time.Millisecond, Load: 115 * time.Millisecond,
			BenefitKnown: true,
		})
	}
	sys.Trainer.Pretrain(fn, samples)

	var first, second *ofc.Result
	sys.Run(func() {
		sys.RSDS.Put(sys.CtrlNode, "api/in", ofc.Blob{Size: 64 << 10}, nil, false)
		req := func() *ofc.Request {
			return &ofc.Request{Function: fn, InputKeys: []string{"api/in"},
				Args: map[string]float64{"sigma": 2}, InputFeatures: features}
		}
		first = sys.Platform.Invoke(req())
		sys.Env.Sleep(time.Second)
		second = sys.Platform.Invoke(req())
	})
	if first.Err != nil || second.Err != nil {
		t.Fatalf("errors: %v %v", first.Err, second.Err)
	}
	if second.Extract >= first.Extract {
		t.Errorf("no caching effect: first E=%v second E=%v", first.Extract, second.Extract)
	}
	if sys.RC.HitRatio() <= 0 {
		t.Error("no hits recorded")
	}
	if len(sys.Platform.Activations(0)) == 0 {
		t.Error("no activation records")
	}
}

func TestPublicAPIWorkloadCatalog(t *testing.T) {
	specs := ofc.Specs()
	if len(specs) != 19 {
		t.Fatalf("specs=%d", len(specs))
	}
	if ofc.SpecByName("wand_blur") == nil || ofc.SpecByName("nope") != nil {
		t.Error("SpecByName broken")
	}
	if ofc.SwiftProfile().ReadBase <= 0 || ofc.S3Profile().ReadBase <= 0 {
		t.Error("profiles unusable")
	}
	if ofc.ProfileNaive.String() != "naive" || ofc.ProfileAdvanced.String() != "advanced" {
		t.Error("profile names broken")
	}
}
