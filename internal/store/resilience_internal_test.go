package store

import (
	"testing"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// mkResilient builds a bare Resilient for white-box breaker/backoff
// tests (no inner backend needed; only the breaker machinery runs).
func mkResilient(env *sim.Env, cfg ResilienceConfig) *Resilient {
	r := &Resilient{env: env}
	r.reset(cfg)
	return r
}

// TestBreakerTransitions walks the per-server circuit breaker through
// its state machine: closed → open at the threshold (counted as one
// trip), half-open probe after the cooldown, probe failure re-opens
// without a second trip, probe success closes.
func TestBreakerTransitions(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultResilienceConfig()
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Second
	r := mkResilient(env, cfg)
	node := simnet.NodeID(7)

	type step struct {
		name      string
		act       func() // report or clock advance
		wantAllow bool
		wantOpen  bool
		wantTrips int64
	}
	steps := []step{
		{"fail 1", func() { r.report(node, false) }, true, false, 0},
		{"fail 2", func() { r.report(node, false) }, true, false, 0},
		{"fail 3 trips", func() { r.report(node, false) }, false, true, 1},
		{"still open", func() { env.Sleep(cfg.BreakerCooldown / 2) }, false, true, 1},
		{"cooldown elapses (half-open)", func() { env.Sleep(cfg.BreakerCooldown) }, true, false, 1},
		{"probe fails, re-opens, no new trip", func() { r.report(node, false) }, false, true, 1},
		{"second cooldown", func() { env.Sleep(2 * cfg.BreakerCooldown) }, true, false, 1},
		{"probe succeeds, closes", func() { r.report(node, true) }, true, false, 1},
		{"stays closed", func() { r.report(node, false) }, true, false, 1},
	}
	env.Go(func() {
		for _, s := range steps {
			s.act()
			if got := r.allow(node); got != s.wantAllow {
				t.Errorf("%s: allow=%v, want %v", s.name, got, s.wantAllow)
			}
			if _, open := r.BreakerState(node); open != s.wantOpen {
				t.Errorf("%s: open=%v, want %v", s.name, open, s.wantOpen)
			}
			if trips := r.Stats().BreakerTrips; trips != s.wantTrips {
				t.Errorf("%s: trips=%d, want %d", s.name, trips, s.wantTrips)
			}
		}
		// An unknown node is always allowed.
		if !r.allow(99) {
			t.Error("fresh node not allowed")
		}
	})
	env.Run()
}

// TestBackoffBounds checks the exponential schedule: doubling from
// RetryBase, capped at RetryMax, and jitter within ±Jitter.
func TestBackoffBounds(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultResilienceConfig()
	cfg.RetryBase = 5 * time.Millisecond
	cfg.RetryMax = 50 * time.Millisecond

	cfg.Jitter = 0
	r := mkResilient(env, cfg)
	exact := []struct {
		attempt int
		want    time.Duration
	}{
		{1, 5 * time.Millisecond},
		{2, 10 * time.Millisecond},
		{3, 20 * time.Millisecond},
		{4, 40 * time.Millisecond},
		{5, 50 * time.Millisecond}, // capped
		{9, 50 * time.Millisecond},
	}
	for _, c := range exact {
		if got := r.backoff(c.attempt); got != c.want {
			t.Errorf("backoff(%d)=%v, want %v", c.attempt, got, c.want)
		}
	}

	cfg.Jitter = 0.2
	r = mkResilient(env, cfg)
	for attempt := 1; attempt <= 8; attempt++ {
		base := cfg.RetryBase << (attempt - 1)
		if base > cfg.RetryMax {
			base = cfg.RetryMax
		}
		lo := time.Duration(float64(base) * (1 - cfg.Jitter))
		hi := time.Duration(float64(base) * (1 + cfg.Jitter))
		for i := 0; i < 20; i++ {
			d := r.backoff(attempt)
			if d < lo || d > hi {
				t.Fatalf("backoff(%d)=%v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}
