package store

import (
	"fmt"
	"sync"

	"ofc/internal/simnet"
)

// DefaultChunkSize is the stripe size of the large-object extension
// (§6.1 leaves arbitrary object sizes as future work; 8 MB stripes
// keep each piece a regular replicated cache object).
const DefaultChunkSize = 8 << 20

// chunkManifest records one striped object: stripe count, logical
// size, a synthetic version, and the logical tags the proxy attached
// (kind/dirty/version…), which the stripes themselves do not carry.
type chunkManifest struct {
	n       int
	size    int64
	version uint64
	tags    map[string]string
}

// Chunked is transparent large-object striping middleware: writes
// above the inner backend's per-object ceiling are striped across
// "key#i" chunk objects (each a regular replicated object, tagged
// kind=chunk), reads reassemble them through the batch path, and the
// synthesized metadata carries the logical tags — so the proxy's
// write-back and consistency machinery works on striped objects
// without knowing they are striped.
//
// The layer starts disabled (pure passthrough, preserving the
// faithful-paper configuration) and is switched on with Enable.
type Chunked struct {
	inner     Backend
	chunkSize int64

	mu        sync.Mutex
	enabled   bool
	manifests map[string]chunkManifest
}

// NewChunked wraps inner with the (initially disabled) striping layer.
func NewChunked(inner Backend, chunkSize int64) *Chunked {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Chunked{
		inner:     inner,
		chunkSize: chunkSize,
		manifests: make(map[string]chunkManifest),
	}
}

// Unwrap implements Wrapper.
func (c *Chunked) Unwrap() Backend { return c.inner }

// Enable turns striping on.
func (c *Chunked) Enable() {
	c.mu.Lock()
	c.enabled = true
	c.mu.Unlock()
}

// Enabled reports whether striping is active.
func (c *Chunked) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

func chunkKey(key string, i int) string { return fmt.Sprintf("%s#%d", key, i) }

func (c *Chunked) manifest(key string) (chunkManifest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.manifests[key]
	return m, ok
}

// MaxObjectSize implements Backend: with striping on, the logical
// ceiling is effectively unbounded; callers' bypass decisions follow.
func (c *Chunked) MaxObjectSize() int64 {
	if c.Enabled() {
		return 1 << 50
	}
	return c.inner.MaxObjectSize()
}

// Write implements Backend. Oversized payloads are striped through the
// batch path (one bulk round per involved server); a failed stripe
// aborts the whole write and evicts the pieces already placed.
func (c *Chunked) Write(caller simnet.NodeID, key string, blob Blob, tags map[string]string, preferred simnet.NodeID) (uint64, error) {
	if !c.Enabled() || blob.Size <= c.inner.MaxObjectSize() {
		// Overwriting a previously striped key with a small payload
		// invalidates the old stripes.
		if m, ok := c.manifest(key); ok {
			c.dropStripes(key, m.n)
		}
		return c.inner.Write(caller, key, blob, tags, preferred)
	}
	n := int((blob.Size + c.chunkSize - 1) / c.chunkSize)
	items := make([]WriteItem, 0, n)
	remaining := blob.Size
	for i := 0; i < n; i++ {
		sz := remaining
		if sz > c.chunkSize {
			sz = c.chunkSize
		}
		remaining -= sz
		items = append(items, WriteItem{
			Key:  chunkKey(key, i),
			Blob: Blob{Size: sz},
			Tags: map[string]string{"kind": "chunk", "of": key, "dirty": "0"},
		})
	}
	res := WriteMulti(c.inner, caller, items, preferred)
	var version uint64
	for i, r := range res {
		if r.Err != nil {
			// Abort: drop the stripes that did land.
			for j := range res {
				if res[j].Err == nil {
					c.inner.Evict(items[j].Key)
				}
			}
			return 0, res[i].Err
		}
		if r.Version > version {
			version = r.Version
		}
	}
	c.mu.Lock()
	c.manifests[key] = chunkManifest{n: n, size: blob.Size, version: version, tags: cloneTags(tags)}
	c.mu.Unlock()
	return version, nil
}

// Read implements Backend: striped objects are reassembled through the
// batch path; a missing stripe fails the whole read (the caller falls
// back to the RSDS, as for any miss).
func (c *Chunked) Read(caller simnet.NodeID, key string) (Blob, Meta, error) {
	m, ok := c.manifest(key)
	if !ok {
		return c.inner.Read(caller, key)
	}
	keys := make([]string, m.n)
	for i := range keys {
		keys[i] = chunkKey(key, i)
	}
	var total int64
	for _, r := range ReadMulti(c.inner, caller, keys) {
		if r.Err != nil {
			return Blob{}, Meta{}, r.Err
		}
		total += r.Blob.Size
	}
	return Blob{Size: total}, c.synthMeta(key), nil
}

// synthMeta builds the logical metadata of a striped object from its
// manifest (fresh tag map: callers may hold it across a SetTag).
func (c *Chunked) synthMeta(key string) Meta {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.manifests[key]
	return Meta{Size: m.size, Version: m.version, Tags: cloneTags(m.tags)}
}

// Stat implements Backend.
func (c *Chunked) Stat(caller simnet.NodeID, key string) (Meta, error) {
	if _, ok := c.manifest(key); ok {
		return c.synthMeta(key), nil
	}
	return c.inner.Stat(caller, key)
}

// SetTag implements Backend: for striped objects the logical tags live
// in the manifest (the proxy's dirty-flag clears land here).
func (c *Chunked) SetTag(caller simnet.NodeID, key, tag, value string) error {
	c.mu.Lock()
	if m, ok := c.manifests[key]; ok {
		tags := cloneTags(m.tags)
		if tags == nil {
			tags = make(map[string]string)
		}
		tags[tag] = value
		m.tags = tags
		c.manifests[key] = m
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	return c.inner.SetTag(caller, key, tag, value)
}

// dropStripes evicts every stripe of key and forgets the manifest.
func (c *Chunked) dropStripes(key string, n int) {
	for i := 0; i < n; i++ {
		c.inner.Evict(chunkKey(key, i))
	}
	c.mu.Lock()
	delete(c.manifests, key)
	c.mu.Unlock()
}

// Delete implements Backend.
func (c *Chunked) Delete(caller simnet.NodeID, key string) error {
	if m, ok := c.manifest(key); ok {
		c.dropStripes(key, m.n)
		return nil
	}
	return c.inner.Delete(caller, key)
}

// Evict implements Backend: evicting a striped object drops every
// stripe (pipeline cleanup, final-output discard, external
// invalidation).
func (c *Chunked) Evict(key string) error {
	if m, ok := c.manifest(key); ok {
		c.dropStripes(key, m.n)
		return nil
	}
	return c.inner.Evict(key)
}

// ReadMulti implements BatchBackend (non-striped keys only pass
// through; the proxy never batch-reads striped logical keys).
func (c *Chunked) ReadMulti(caller simnet.NodeID, keys []string) []ReadResult {
	return ReadMulti(c.inner, caller, keys)
}

// WriteMulti implements BatchBackend.
func (c *Chunked) WriteMulti(caller simnet.NodeID, items []WriteItem, preferred simnet.NodeID) []WriteResult {
	return WriteMulti(c.inner, caller, items, preferred)
}

func cloneTags(tags map[string]string) map[string]string {
	if tags == nil {
		return nil
	}
	out := make(map[string]string, len(tags))
	for k, v := range tags {
		out[k] = v
	}
	return out
}
