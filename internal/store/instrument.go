package store

import (
	"sort"
	"sync"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// OpStats are the raw backend-operation counters of one Instrumented
// layer: what actually crossed the storage-engine boundary, before any
// proxy policy (hit/miss accounting lives in the proxy; this layer
// sees the physical traffic).
type OpStats struct {
	Reads, Writes   int64
	ReadErrs        int64
	WriteErrs       int64
	Evicts, Deletes int64
	BytesRead       int64
	BytesWritten    int64
	BatchReads      int64 // ReadMulti calls
	BatchReadKeys   int64 // keys carried by those calls
	BatchWrites     int64 // WriteMulti calls
	BatchWriteItems int64
}

// Instrumented counts every operation crossing the backend boundary.
// It sits at the top of the middleware stack, so its numbers include
// whatever the layers below expand (e.g. one logical read of a striped
// object shows up as one Read here and N batch keys below).
type Instrumented struct {
	inner Backend

	mu  sync.Mutex
	s   OpStats
	env *sim.Env // nil until AttachClock; latency tracking off
	lat []time.Duration
	nxt int
}

// latencyWindow is the ring size of the recent Read/Write latency
// samples kept for quantile queries (the overload controller's "store
// RPC latency" signal).
const latencyWindow = 512

// NewInstrumented wraps inner with operation counters.
func NewInstrumented(inner Backend) *Instrumented {
	return &Instrumented{inner: inner}
}

// Unwrap implements Wrapper.
func (n *Instrumented) Unwrap() Backend { return n.inner }

// AttachClock enables per-op latency tracking against env's virtual
// clock. Without a clock the layer counts ops only.
func (n *Instrumented) AttachClock(env *sim.Env) {
	n.mu.Lock()
	n.env = env
	n.mu.Unlock()
}

// Stats snapshots the counters.
func (n *Instrumented) Stats() OpStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.s
}

// LatencyQuantile returns the q-quantile (nearest-rank, 0 < q <= 1) of
// the recent Read/Write latency window, or 0 with no clock or samples.
func (n *Instrumented) LatencyQuantile(q float64) time.Duration {
	n.mu.Lock()
	samples := make([]time.Duration, len(n.lat))
	copy(samples, n.lat)
	n.mu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(float64(len(samples))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}

// clock returns the attached env, or nil.
func (n *Instrumented) clock() *sim.Env {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.env
}

// observeLocked records one op latency in the ring.
func (n *Instrumented) observeLocked(d time.Duration) {
	if len(n.lat) < latencyWindow {
		n.lat = append(n.lat, d)
		return
	}
	n.lat[n.nxt] = d
	n.nxt = (n.nxt + 1) % latencyWindow
}

func (n *Instrumented) Read(caller simnet.NodeID, key string) (Blob, Meta, error) {
	env := n.clock()
	var start sim.Time
	if env != nil {
		start = env.Now()
	}
	blob, meta, err := n.inner.Read(caller, key)
	n.mu.Lock()
	n.s.Reads++
	if err != nil {
		n.s.ReadErrs++
	} else {
		n.s.BytesRead += blob.Size
	}
	if env != nil {
		n.observeLocked(env.Now() - start)
	}
	n.mu.Unlock()
	return blob, meta, err
}

func (n *Instrumented) Write(caller simnet.NodeID, key string, blob Blob, tags map[string]string, preferred simnet.NodeID) (uint64, error) {
	env := n.clock()
	var start sim.Time
	if env != nil {
		start = env.Now()
	}
	ver, err := n.inner.Write(caller, key, blob, tags, preferred)
	n.mu.Lock()
	n.s.Writes++
	if err != nil {
		n.s.WriteErrs++
	} else {
		n.s.BytesWritten += blob.Size
	}
	if env != nil {
		n.observeLocked(env.Now() - start)
	}
	n.mu.Unlock()
	return ver, err
}

func (n *Instrumented) Stat(caller simnet.NodeID, key string) (Meta, error) {
	return n.inner.Stat(caller, key)
}

func (n *Instrumented) SetTag(caller simnet.NodeID, key, tag, value string) error {
	return n.inner.SetTag(caller, key, tag, value)
}

func (n *Instrumented) Delete(caller simnet.NodeID, key string) error {
	err := n.inner.Delete(caller, key)
	n.mu.Lock()
	n.s.Deletes++
	n.mu.Unlock()
	return err
}

func (n *Instrumented) Evict(key string) error {
	err := n.inner.Evict(key)
	n.mu.Lock()
	n.s.Evicts++
	n.mu.Unlock()
	return err
}

func (n *Instrumented) MaxObjectSize() int64 { return n.inner.MaxObjectSize() }

func (n *Instrumented) ReadMulti(caller simnet.NodeID, keys []string) []ReadResult {
	out := ReadMulti(n.inner, caller, keys)
	n.mu.Lock()
	n.s.BatchReads++
	n.s.BatchReadKeys += int64(len(keys))
	for _, r := range out {
		if r.Err == nil {
			n.s.BytesRead += r.Blob.Size
		}
	}
	n.mu.Unlock()
	return out
}

func (n *Instrumented) WriteMulti(caller simnet.NodeID, items []WriteItem, preferred simnet.NodeID) []WriteResult {
	out := WriteMulti(n.inner, caller, items, preferred)
	n.mu.Lock()
	n.s.BatchWrites++
	n.s.BatchWriteItems += int64(len(items))
	for i, r := range out {
		if r.Err == nil {
			n.s.BytesWritten += items[i].Blob.Size
		}
	}
	n.mu.Unlock()
	return out
}
