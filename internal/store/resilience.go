package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// ResilienceConfig tunes the Resilient middleware: per-operation
// deadlines, bounded retry with exponential backoff and jitter, and a
// per-server circuit breaker that short-circuits while a node
// recovers.
type ResilienceConfig struct {
	// OpTimeout is the deadline for one cache operation attempt.
	OpTimeout time.Duration
	// MaxRetries is the number of re-attempts after the first try.
	MaxRetries int
	// RetryBase is the first backoff; it doubles per attempt up to
	// RetryMax. Jitter randomizes each backoff by ±Jitter fraction.
	RetryBase time.Duration
	RetryMax  time.Duration
	Jitter    float64
	// BreakerThreshold consecutive unavailability errors against one
	// server open its breaker; while open, cache ops targeting it fail
	// fast (straight to the RSDS). After BreakerCooldown a probe is
	// allowed through (half-open).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PersistRetryDelay is how long a Persistor waits before retrying
	// when the cache is unavailable; the pending write-back is never
	// dropped (acked writes survive in backup replicas).
	PersistRetryDelay time.Duration
}

// DefaultResilienceConfig returns constants sized for the testbed:
// timeouts well above healthy op latency, a breaker that trips within
// a handful of failed ops, and a cooldown on the order of RAMCloud's
// fast recovery.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		OpTimeout:         100 * time.Millisecond,
		MaxRetries:        2,
		RetryBase:         5 * time.Millisecond,
		RetryMax:          50 * time.Millisecond,
		Jitter:            0.2,
		BreakerThreshold:  3,
		BreakerCooldown:   time.Second,
		PersistRetryDelay: 500 * time.Millisecond,
	}
}

// Sentinel errors of the resilience layer.
var (
	ErrCacheTimeout = errors.New("store: cache operation timed out")
	ErrBreakerOpen  = errors.New("store: cache circuit breaker open")
	// ErrRetryBudget marks an op whose re-attempt the RetryGate denied;
	// it wraps the last attempt's error, so unavailability
	// classification still holds and callers fall back normally.
	ErrRetryBudget = errors.New("store: retry denied by retry budget")
)

// RetryGate arbitrates storage re-attempts (the overload layer's
// retry budget, shared with the FaaS platform's OOM retries). A nil
// gate means unbounded retries per the ResilienceConfig.
type RetryGate interface {
	AllowRetry() bool
}

// IsUnavailable classifies errors that mean "the cache cannot serve
// this right now" — the triggers for RSDS fallback — as opposed to
// definitive answers like ErrNotFound or ErrNoSpace.
func IsUnavailable(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, kvstore.ErrCrashed) ||
		errors.Is(err, kvstore.ErrNoSuchServer) ||
		errors.Is(err, kvstore.ErrNotEnoughSrvs) ||
		errors.Is(err, simnet.ErrUnreachable) ||
		errors.Is(err, ErrCacheTimeout) ||
		errors.Is(err, ErrBreakerOpen)
}

// breaker is one server's circuit-breaker state. failures counts
// consecutive unavailability errors; once it reaches the threshold the
// breaker is open until openUntil, after which one probe is let
// through (half-open): success closes it, failure re-opens.
type breaker struct {
	failures  int
	openUntil sim.Time
}

// ResilienceStats are the degradation counters of one Resilient layer.
type ResilienceStats struct {
	Retries      int64
	Timeouts     int64
	BreakerTrips int64
	// BudgetDenied counts re-attempts refused by the RetryGate.
	BudgetDenied int64
}

// Resilient wraps a Backend's Read and Write with per-attempt
// timeouts, bounded jittered retry and per-server circuit breakers —
// the graceful-degradation layer that used to live inside RCLib.
// Metadata ops and the batch paths pass through untouched (batch ops
// carry their own fallback semantics in the chunking layer above).
type Resilient struct {
	inner Backend
	env   *sim.Env
	pv    PlacementView // breaker target resolution; may be nil

	mu       sync.Mutex
	cfg      ResilienceConfig
	rng      *rand.Rand
	breakers map[simnet.NodeID]*breaker
	gate     RetryGate
	retries  int64
	timeouts int64
	trips    int64
	denied   int64
}

// NewResilient wraps inner with the degradation layer.
func NewResilient(env *sim.Env, inner Backend, cfg ResilienceConfig) *Resilient {
	r := &Resilient{inner: inner, env: env}
	r.pv, _ = PlacementViewOf(inner)
	r.reset(cfg)
	return r
}

// Unwrap implements Wrapper.
func (r *Resilient) Unwrap() Backend { return r.inner }

func (r *Resilient) reset(cfg ResilienceConfig) {
	r.mu.Lock()
	r.cfg = cfg
	r.rng = r.env.NewRand()
	r.breakers = make(map[simnet.NodeID]*breaker)
	r.mu.Unlock()
}

// SetConfig replaces the resilience constants and resets breaker
// state. Call before traffic starts.
func (r *Resilient) SetConfig(cfg ResilienceConfig) { r.reset(cfg) }

// SetRetryGate installs (or, with nil, removes) the shared retry
// budget consulted before every re-attempt.
func (r *Resilient) SetRetryGate(g RetryGate) {
	r.mu.Lock()
	r.gate = g
	r.mu.Unlock()
}

// Config returns the active constants.
func (r *Resilient) Config() ResilienceConfig {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

// Stats snapshots the degradation counters.
func (r *Resilient) Stats() ResilienceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ResilienceStats{Retries: r.retries, Timeouts: r.timeouts, BreakerTrips: r.trips, BudgetDenied: r.denied}
}

// BreakerState exposes one server's breaker for tests and debugging.
func (r *Resilient) BreakerState(node simnet.NodeID) (failures int, open bool) {
	now := r.env.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.breakers[node]
	if s == nil {
		return 0, false
	}
	return s.failures, s.failures >= r.cfg.BreakerThreshold && now < s.openUntil
}

// allow reports whether an op against node may proceed (breaker closed
// or half-open probe).
func (r *Resilient) allow(node simnet.NodeID) bool {
	now := r.env.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.breakers[node]
	if s == nil || s.failures < r.cfg.BreakerThreshold {
		return true
	}
	return now >= s.openUntil
}

// report records an op outcome against node.
func (r *Resilient) report(node simnet.NodeID, ok bool) {
	now := r.env.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.breakers[node]
	if s == nil {
		s = &breaker{}
		r.breakers[node] = s
	}
	if ok {
		s.failures = 0
		return
	}
	s.failures++
	if s.failures >= r.cfg.BreakerThreshold {
		if s.failures == r.cfg.BreakerThreshold {
			r.trips++
		}
		s.openUntil = now + r.cfg.BreakerCooldown
	}
}

// backoff computes the jittered exponential backoff for re-attempt n
// (n >= 1).
func (r *Resilient) backoff(n int) time.Duration {
	r.mu.Lock()
	cfg := r.cfg
	r.mu.Unlock()
	d := cfg.RetryBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= cfg.RetryMax {
			d = cfg.RetryMax
			break
		}
	}
	if d > cfg.RetryMax {
		d = cfg.RetryMax
	}
	if cfg.Jitter > 0 {
		r.mu.Lock()
		f := 1 + cfg.Jitter*(2*r.rng.Float64()-1)
		r.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// target picks the breaker key for ops on key: the current master if
// placement is known, otherwise the node the op would prefer.
func (r *Resilient) target(key string, fallback simnet.NodeID) simnet.NodeID {
	if r.pv != nil {
		if m, ok := r.pv.MasterOf(key); ok {
			return m
		}
	}
	return fallback
}

// attempt runs op with the per-attempt deadline, retry loop and
// breaker bookkeeping shared by Read and Write.
func attempt[T any](r *Resilient, target simnet.NodeID, op func() (T, error)) (T, error) {
	var zero T
	if !r.allow(target) {
		return zero, ErrBreakerOpen
	}
	r.mu.Lock()
	cfg := r.cfg
	gate := r.gate
	r.mu.Unlock()
	var lastErr error
	for try := 0; try <= cfg.MaxRetries; try++ {
		if try > 0 {
			if gate != nil && !gate.AllowRetry() {
				r.mu.Lock()
				r.denied++
				r.mu.Unlock()
				return zero, fmt.Errorf("%w: %w", ErrRetryBudget, lastErr)
			}
			r.env.Sleep(r.backoff(try))
			r.mu.Lock()
			r.retries++
			r.mu.Unlock()
		}
		type res struct {
			v   T
			err error
		}
		f := sim.NewFuture[res](r.env)
		r.env.Go(func() {
			v, err := op()
			f.Set(res{v, err})
		})
		out, ok := f.WaitTimeout(cfg.OpTimeout)
		if !ok {
			lastErr = ErrCacheTimeout
			r.mu.Lock()
			r.timeouts++
			r.mu.Unlock()
			r.report(target, false)
			continue
		}
		if IsUnavailable(out.err) {
			lastErr = out.err
			r.report(target, false)
			continue
		}
		r.report(target, true)
		return out.v, out.err
	}
	return zero, lastErr
}

type readRes struct {
	blob Blob
	meta Meta
}

// Read implements Backend with timeout/retry/breaker. Definitive
// answers (hit, NotFound) return immediately; only unavailability is
// retried.
func (r *Resilient) Read(caller simnet.NodeID, key string) (Blob, Meta, error) {
	out, err := attempt(r, r.target(key, caller), func() (readRes, error) {
		blob, meta, err := r.inner.Read(caller, key)
		return readRes{blob, meta}, err
	})
	return out.blob, out.meta, err
}

// Write implements Backend, mirroring Read. ErrNoSpace and ErrTooLarge
// are definitive (capacity, not availability) and return immediately.
func (r *Resilient) Write(caller simnet.NodeID, key string, blob Blob, tags map[string]string, preferred simnet.NodeID) (uint64, error) {
	return attempt(r, r.target(key, preferred), func() (uint64, error) {
		return r.inner.Write(caller, key, blob, tags, preferred)
	})
}

// The remaining ops pass through: they are either local bookkeeping
// (Evict), tiny control messages whose failure the callers already
// tolerate (Stat, SetTag, Delete), or batch paths with their own
// failure semantics.

func (r *Resilient) Stat(caller simnet.NodeID, key string) (Meta, error) {
	return r.inner.Stat(caller, key)
}

func (r *Resilient) SetTag(caller simnet.NodeID, key, tag, value string) error {
	return r.inner.SetTag(caller, key, tag, value)
}

func (r *Resilient) Delete(caller simnet.NodeID, key string) error {
	return r.inner.Delete(caller, key)
}

func (r *Resilient) Evict(key string) error { return r.inner.Evict(key) }

func (r *Resilient) MaxObjectSize() int64 { return r.inner.MaxObjectSize() }

// ReadMulti implements BatchBackend via the inner engine's batch path.
func (r *Resilient) ReadMulti(caller simnet.NodeID, keys []string) []ReadResult {
	return ReadMulti(r.inner, caller, keys)
}

// WriteMulti implements BatchBackend via the inner engine's batch path.
func (r *Resilient) WriteMulti(caller simnet.NodeID, items []WriteItem, preferred simnet.NodeID) []WriteResult {
	return WriteMulti(r.inner, caller, items, preferred)
}
