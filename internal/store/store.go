// Package store defines the narrow storage-engine contract the OFC
// cache data plane is built on. The proxy (core.RCLib), the router and
// the cache agents program against these interfaces, never against a
// concrete engine: the RAMCloud-like kvstore.Cluster is one Backend,
// the direct-RSDS Passthrough (cache-off mode) is another, and
// middleware — resilience, chunking, instrumentation — composes as
// Backend wrappers. Faa$T and InfiniCache both argue a FaaS cache tier
// belongs behind an interchangeable interface; this package is that
// seam for OFC.
package store

import (
	"ofc/internal/kvstore"
	"ofc/internal/simnet"
)

// The wire types are shared with the kvstore engine (which never
// imports this package, so the aliasing is cycle-free). Payloads are
// sized, content-free blobs — this is a simulation.
type (
	Blob        = kvstore.Blob
	Meta        = kvstore.Meta
	ObjectInfo  = kvstore.ObjectInfo
	Location    = kvstore.Location
	ReadResult  = kvstore.ReadResult
	WriteItem   = kvstore.WriteItem
	WriteResult = kvstore.WriteResult
)

// Sentinel errors shared across backends. A non-kvstore backend maps
// its native errors onto these so callers classify uniformly.
var (
	ErrNotFound = kvstore.ErrNotFound
	ErrNoSpace  = kvstore.ErrNoSpace
	ErrTooLarge = kvstore.ErrTooLarge
)

// Backend is the data-plane contract: per-object reads and writes with
// caller locality, tag metadata, and an explicit cache-tier Evict
// (Delete removes the object everywhere; Evict only drops a cached
// copy and is a no-op for durable backends).
type Backend interface {
	Read(caller simnet.NodeID, key string) (Blob, Meta, error)
	Write(caller simnet.NodeID, key string, blob Blob, tags map[string]string, preferred simnet.NodeID) (uint64, error)
	Stat(caller simnet.NodeID, key string) (Meta, error)
	SetTag(caller simnet.NodeID, key, tag, value string) error
	Delete(caller simnet.NodeID, key string) error
	Evict(key string) error
	// MaxObjectSize is the per-object ceiling; larger payloads must be
	// handled above the backend (bypass or chunking middleware).
	MaxObjectSize() int64
}

// BatchBackend is implemented by engines with native multi-object
// operations (one control round-trip per involved server). Use the
// package-level ReadMulti/WriteMulti helpers to get a per-key fallback
// against backends without it.
type BatchBackend interface {
	Backend
	ReadMulti(caller simnet.NodeID, keys []string) []ReadResult
	WriteMulti(caller simnet.NodeID, items []WriteItem, preferred simnet.NodeID) []WriteResult
}

// PlacementView is the scheduler-side locality view (§6.5): where
// master copies live, without network charges. Engines without
// placement (durable passthrough) simply don't implement it.
type PlacementView interface {
	MasterOf(key string) (simnet.NodeID, bool)
	Locate(keys []string) []Location
}

// MemoryView is the elasticity-control view the cache agents (§6.4)
// need: per-node usage, grant enforcement, object census and the two
// reclamation verbs.
type MemoryView interface {
	Usage(node simnet.NodeID) (used, limit int64)
	SetMemoryLimit(node simnet.NodeID, limit int64) error
	Objects(node simnet.NodeID) []ObjectInfo
	Evict(key string) error
	MigrateToBackup(key string) error
}

// Durable marks a backend whose acknowledged writes are already
// persistent (e.g. the RSDS passthrough). The proxy skips the whole
// shadow-object / asynchronous-Persistor protocol for such backends,
// and its reads do not count as cache hits.
type Durable interface {
	DurableWrites() bool
}

// Wrapper is implemented by middleware so capability discovery can
// walk down to the engine.
type Wrapper interface {
	Unwrap() Backend
}

// unwrapFind walks b's Unwrap chain calling probe on each layer until
// it returns true.
func unwrapFind(b Backend, probe func(Backend) bool) bool {
	for b != nil {
		if probe(b) {
			return true
		}
		w, ok := b.(Wrapper)
		if !ok {
			return false
		}
		b = w.Unwrap()
	}
	return false
}

// PlacementViewOf finds the placement capability anywhere in b's
// middleware chain.
func PlacementViewOf(b Backend) (PlacementView, bool) {
	var pv PlacementView
	found := unwrapFind(b, func(l Backend) bool {
		v, ok := l.(PlacementView)
		if ok {
			pv = v
		}
		return ok
	})
	return pv, found
}

// MemoryViewOf finds the memory-control capability anywhere in b's
// middleware chain.
func MemoryViewOf(b Backend) (MemoryView, bool) {
	var mv MemoryView
	found := unwrapFind(b, func(l Backend) bool {
		v, ok := l.(MemoryView)
		if ok {
			mv = v
		}
		return ok
	})
	return mv, found
}

// IsDurable reports whether any layer of b declares durable writes.
func IsDurable(b Backend) bool {
	return unwrapFind(b, func(l Backend) bool {
		d, ok := l.(Durable)
		return ok && d.DurableWrites()
	})
}

// ReadMulti fetches keys through b's native batch path when available,
// else per key.
func ReadMulti(b Backend, caller simnet.NodeID, keys []string) []ReadResult {
	if bb, ok := b.(BatchBackend); ok {
		return bb.ReadMulti(caller, keys)
	}
	out := make([]ReadResult, len(keys))
	for i, k := range keys {
		out[i].Blob, out[i].Meta, out[i].Err = b.Read(caller, k)
	}
	return out
}

// WriteMulti stores items through b's native batch path when
// available, else per item.
func WriteMulti(b Backend, caller simnet.NodeID, items []WriteItem, preferred simnet.NodeID) []WriteResult {
	if bb, ok := b.(BatchBackend); ok {
		return bb.WriteMulti(caller, items, preferred)
	}
	out := make([]WriteResult, len(items))
	for i, it := range items {
		out[i].Version, out[i].Err = b.Write(caller, it.Key, it.Blob, it.Tags, preferred)
	}
	return out
}
