// Package conformance is the backend contract test: every
// store.Backend implementation — the RAMCloud-like cache cluster, the
// direct-RSDS passthrough, and any future engine — must pass it. The
// suite is parameterized by Traits because the contract legitimately
// differs along one axis: a cache tier forgets evicted objects, a
// durable store does not.
package conformance

import (
	"errors"
	"testing"

	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/store"
)

// Traits declare which optional behaviors the backend under test has.
type Traits struct {
	// CacheTier is true when Evict actually drops data (reads after
	// evict miss). Durable backends treat Evict as a no-op.
	CacheTier bool
}

// Factory builds a fresh backend inside env, returning it plus a node
// usable as the caller of operations.
type Factory func(env *sim.Env) (store.Backend, simnet.NodeID)

// Run exercises the Backend contract against mk's backend.
func Run(t *testing.T, mk Factory, traits Traits) {
	t.Helper()
	cases := []struct {
		name string
		body func(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID)
	}{
		{"RoundTrip", testRoundTrip},
		{"MissingKey", testMissingKey},
		{"OverwriteVersions", testOverwriteVersions},
		{"Tags", testTags},
		{"Delete", testDelete},
		{"Evict", func(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID) {
			testEvict(t, env, b, caller, traits)
		}},
		{"BatchRead", testBatchRead},
		{"BatchWrite", testBatchWrite},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			env := sim.NewEnv(1)
			b, caller := mk(env)
			env.Go(func() { tc.body(t, env, b, caller) })
			env.Run()
		})
	}
}

func mustWrite(t *testing.T, b store.Backend, caller simnet.NodeID, key string, size int64, tags map[string]string) uint64 {
	t.Helper()
	v, err := b.Write(caller, key, store.Blob{Size: size}, tags, caller)
	if err != nil {
		t.Fatalf("write %s: %v", key, err)
	}
	return v
}

func testRoundTrip(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID) {
	mustWrite(t, b, caller, "c/a", 4<<10, nil)
	blob, meta, err := b.Read(caller, "c/a")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if blob.Size != 4<<10 || meta.Size != 4<<10 {
		t.Fatalf("size mismatch: blob %d meta %d", blob.Size, meta.Size)
	}
	m, err := b.Stat(caller, "c/a")
	if err != nil || m.Size != 4<<10 {
		t.Fatalf("stat: %v size %d", err, m.Size)
	}
	if b.MaxObjectSize() <= 0 {
		t.Fatalf("MaxObjectSize must be positive, got %d", b.MaxObjectSize())
	}
}

func testMissingKey(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID) {
	if _, _, err := b.Read(caller, "c/none"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("read missing: err %v, want ErrNotFound", err)
	}
	if _, err := b.Stat(caller, "c/none"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("stat missing: err %v, want ErrNotFound", err)
	}
	if err := b.Delete(caller, "c/none"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("delete missing: err %v, want ErrNotFound", err)
	}
}

func testOverwriteVersions(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID) {
	v1 := mustWrite(t, b, caller, "c/v", 1<<10, nil)
	v2 := mustWrite(t, b, caller, "c/v", 2<<10, nil)
	if v2 <= v1 {
		t.Fatalf("overwrite version not monotonic: %d then %d", v1, v2)
	}
	blob, _, err := b.Read(caller, "c/v")
	if err != nil || blob.Size != 2<<10 {
		t.Fatalf("read after overwrite: %v size %d", err, blob.Size)
	}
}

func testTags(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID) {
	mustWrite(t, b, caller, "c/t", 1<<10, map[string]string{"kind": "final", "dirty": "1"})
	_, meta, err := b.Read(caller, "c/t")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if meta.Tags["kind"] != "final" || meta.Tags["dirty"] != "1" {
		t.Fatalf("write tags not visible: %v", meta.Tags)
	}
	if err := b.SetTag(caller, "c/t", "dirty", "0"); err != nil {
		t.Fatalf("settag: %v", err)
	}
	_, meta, err = b.Read(caller, "c/t")
	if err != nil || meta.Tags["dirty"] != "0" {
		t.Fatalf("settag not visible: %v %v", err, meta.Tags)
	}
}

func testDelete(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID) {
	mustWrite(t, b, caller, "c/d", 1<<10, nil)
	if err := b.Delete(caller, "c/d"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := b.Read(caller, "c/d"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("read after delete: err %v, want ErrNotFound", err)
	}
}

func testEvict(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID, traits Traits) {
	mustWrite(t, b, caller, "c/e", 1<<10, nil)
	if err := b.Evict("c/e"); err != nil {
		t.Fatalf("evict: %v", err)
	}
	_, _, err := b.Read(caller, "c/e")
	if traits.CacheTier {
		if !errors.Is(err, store.ErrNotFound) {
			t.Fatalf("cache tier: read after evict err %v, want ErrNotFound", err)
		}
	} else if err != nil {
		t.Fatalf("durable tier: evict must not lose data, read err %v", err)
	}
}

func testBatchRead(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID) {
	keys := []string{"c/b0", "c/b1", "c/b2"}
	for i, k := range keys {
		mustWrite(t, b, caller, k, int64(1+i)<<10, nil)
	}
	res := store.ReadMulti(b, caller, append(keys, "c/bmissing"))
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	for i := range keys {
		if res[i].Err != nil || res[i].Blob.Size != int64(1+i)<<10 {
			t.Fatalf("batch key %d: %v size %d", i, res[i].Err, res[i].Blob.Size)
		}
	}
	if !errors.Is(res[3].Err, store.ErrNotFound) {
		t.Fatalf("batch missing key: err %v, want ErrNotFound", res[3].Err)
	}
}

func testBatchWrite(t *testing.T, env *sim.Env, b store.Backend, caller simnet.NodeID) {
	items := []store.WriteItem{
		{Key: "c/w0", Blob: store.Blob{Size: 1 << 10}},
		{Key: "c/w1", Blob: store.Blob{Size: 2 << 10}, Tags: map[string]string{"kind": "input"}},
	}
	res := store.WriteMulti(b, caller, items, caller)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batch write %d: %v", i, r.Err)
		}
	}
	for i, it := range items {
		blob, _, err := b.Read(caller, it.Key)
		if err != nil || blob.Size != it.Blob.Size {
			t.Fatalf("read back %d: %v size %d", i, err, blob.Size)
		}
	}
}
