package store_test

import (
	"errors"
	"fmt"
	"testing"

	"ofc/internal/kvstore"
	"ofc/internal/objstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/store"
	"ofc/internal/store/conformance"
)

// mkKV builds a 4-node RAMCloud-like cluster backend.
func mkKV(env *sim.Env) (store.Backend, simnet.NodeID) {
	net := simnet.New(env, simnet.DefaultConfig())
	for i := 0; i < 4; i++ {
		net.AddNode("n")
	}
	c := kvstore.New(net, 0, kvstore.DefaultConfig())
	for i := 0; i < 4; i++ {
		c.AddServer(simnet.NodeID(i), 1<<30)
	}
	return c, 1
}

// mkPassthrough builds the direct-RSDS cache-off backend.
func mkPassthrough(env *sim.Env) (store.Backend, simnet.NodeID) {
	net := simnet.New(env, simnet.DefaultConfig())
	net.AddNode("client")
	storage := net.AddNode("storage").ID
	rsds := objstore.New(net, storage, objstore.SwiftProfile())
	return store.NewPassthrough(rsds), 0
}

func TestKVClusterConformance(t *testing.T) {
	conformance.Run(t, mkKV, conformance.Traits{CacheTier: true})
}

func TestPassthroughConformance(t *testing.T) {
	conformance.Run(t, mkPassthrough, conformance.Traits{CacheTier: false})
}

// The full proxy middleware stack over the cluster must still honor
// the backend contract — middleware is transparent.
func TestMiddlewareStackConformance(t *testing.T) {
	mk := func(env *sim.Env) (store.Backend, simnet.NodeID) {
		inner, caller := mkKV(env)
		res := store.NewResilient(env, inner, store.DefaultResilienceConfig())
		ch := store.NewChunked(res, store.DefaultChunkSize)
		ch.Enable()
		return store.NewInstrumented(ch), caller
	}
	conformance.Run(t, mk, conformance.Traits{CacheTier: true})
}

func TestCapabilityDiscovery(t *testing.T) {
	env := sim.NewEnv(1)
	kv, _ := mkKV(env)
	stack := store.NewInstrumented(store.NewChunked(store.NewResilient(env, kv, store.DefaultResilienceConfig()), 0))
	if pv, ok := store.PlacementViewOf(stack); !ok || pv == nil {
		t.Fatal("placement view not found through middleware chain")
	}
	if mv, ok := store.MemoryViewOf(stack); !ok || mv == nil {
		t.Fatal("memory view not found through middleware chain")
	}
	if store.IsDurable(stack) {
		t.Fatal("cache cluster must not be durable")
	}

	pt, _ := mkPassthrough(env)
	if !store.IsDurable(pt) {
		t.Fatal("passthrough must be durable")
	}
	if _, ok := store.PlacementViewOf(pt); ok {
		t.Fatal("passthrough must not expose a placement view")
	}
	if _, ok := store.MemoryViewOf(pt); ok {
		t.Fatal("passthrough must not expose a memory view")
	}
}

// TestChunkedStriping checks the striping middleware end to end:
// oversized writes land as "key#i" stripes, reads reassemble, logical
// tags ride the manifest, and Evict drops every stripe.
func TestChunkedStriping(t *testing.T) {
	env := sim.NewEnv(1)
	kvb, caller := mkKV(env)
	kv := kvb.(*kvstore.Cluster)
	ch := store.NewChunked(kvb, store.DefaultChunkSize)
	ch.Enable()
	env.Go(func() {
		const size = 25 << 20 // 4 stripes of 8 MB
		tags := map[string]string{"kind": "final", "dirty": "1", "version": "7"}
		if _, err := ch.Write(caller, "big/obj", store.Blob{Size: size}, tags, caller); err != nil {
			t.Fatalf("chunked write: %v", err)
		}
		for i := 0; i < 4; i++ {
			if _, ok := kv.MasterOf(fmt.Sprintf("big/obj#%d", i)); !ok {
				t.Fatalf("stripe %d not placed", i)
			}
		}
		blob, meta, err := ch.Read(caller, "big/obj")
		if err != nil || blob.Size != size {
			t.Fatalf("chunked read: %v size %d", err, blob.Size)
		}
		if meta.Tags["kind"] != "final" || meta.Tags["dirty"] != "1" || meta.Tags["version"] != "7" {
			t.Fatalf("manifest tags wrong: %v", meta.Tags)
		}
		if err := ch.SetTag(caller, "big/obj", "dirty", "0"); err != nil {
			t.Fatalf("settag: %v", err)
		}
		if _, meta, _ = ch.Read(caller, "big/obj"); meta.Tags["dirty"] != "0" {
			t.Fatalf("manifest settag not visible: %v", meta.Tags)
		}
		if err := ch.Evict("big/obj"); err != nil {
			t.Fatalf("evict: %v", err)
		}
		for i := 0; i < 4; i++ {
			if _, ok := kv.MasterOf(fmt.Sprintf("big/obj#%d", i)); ok {
				t.Fatalf("stripe %d survived evict", i)
			}
		}
		if _, _, err := ch.Read(caller, "big/obj"); err == nil {
			t.Fatal("read after evict must fail")
		}
	})
	env.Run()
}

// TestResilientBreaker checks the moved degradation layer standalone:
// ops against a crashed cluster trip the breaker and fail fast.
func TestResilientBreaker(t *testing.T) {
	env := sim.NewEnv(1)
	kvb, caller := mkKV(env)
	kv := kvb.(*kvstore.Cluster)
	cfg := store.DefaultResilienceConfig()
	cfg.MaxRetries = 0
	res := store.NewResilient(env, kvb, cfg)
	env.Go(func() {
		if _, err := res.Write(caller, "k", store.Blob{Size: 1 << 10}, nil, caller); err != nil {
			t.Fatalf("healthy write: %v", err)
		}
		master, _ := kv.MasterOf("k")
		for i := 0; i < 4; i++ {
			kv.Crash(simnet.NodeID(i))
		}
		for i := 0; i < cfg.BreakerThreshold; i++ {
			if _, _, err := res.Read(caller, "k"); err == nil {
				t.Fatal("read against crashed cluster succeeded")
			}
		}
		if _, open := res.BreakerState(master); !open {
			t.Fatal("breaker did not open after threshold failures")
		}
		if _, _, err := res.Read(caller, "k"); !errors.Is(err, store.ErrBreakerOpen) {
			t.Fatalf("open breaker: err %v, want ErrBreakerOpen", err)
		}
		if res.Stats().BreakerTrips != 1 {
			t.Fatalf("trips %d, want 1", res.Stats().BreakerTrips)
		}
	})
	env.Run()
}
