package store

import (
	"errors"
	"math"

	"ofc/internal/objstore"
	"ofc/internal/simnet"
)

// Passthrough is the cache-off backend: every operation goes straight
// to the RSDS. It turns the old "cache disabled" if-branches into a
// Backend implementation — the proxy stack is identical, only the
// engine differs. Writes are durable on ack (Durable), so the proxy
// skips shadows and persistors; Evict is a no-op because nothing is
// cached.
type Passthrough struct {
	rsds *objstore.Store
}

// NewPassthrough builds the direct-RSDS backend.
func NewPassthrough(rsds *objstore.Store) *Passthrough {
	return &Passthrough{rsds: rsds}
}

// DurableWrites implements Durable.
func (p *Passthrough) DurableWrites() bool { return true }

// RSDS exposes the underlying object store.
func (p *Passthrough) RSDS() *objstore.Store { return p.rsds }

// mapErr translates objstore sentinels to the store vocabulary.
func mapErr(err error) error {
	if errors.Is(err, objstore.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

// Read implements Backend.
func (p *Passthrough) Read(caller simnet.NodeID, key string) (Blob, Meta, error) {
	blob, m, err := p.rsds.Get(caller, key, false)
	if err != nil {
		return Blob{}, Meta{}, mapErr(err)
	}
	return blob, p.meta(m), nil
}

// meta converts the RSDS metadata to the cache-tier shape. The user
// metadata doubles as the tag map, so tags written through this
// backend round-trip.
func (p *Passthrough) meta(m objstore.Meta) Meta {
	return Meta{Size: m.Size, Version: m.PersistedVersion, Tags: m.UserMeta}
}

// Write implements Backend. The preferred node is ignored: the RSDS
// has one location.
func (p *Passthrough) Write(caller simnet.NodeID, key string, blob Blob, tags map[string]string, _ simnet.NodeID) (uint64, error) {
	return p.rsds.Put(caller, key, blob, tags, false), nil
}

// Stat implements Backend.
func (p *Passthrough) Stat(caller simnet.NodeID, key string) (Meta, error) {
	m, err := p.rsds.Head(caller, key)
	if err != nil {
		return Meta{}, mapErr(err)
	}
	return p.meta(m), nil
}

// SetTag implements Backend by rewriting the object's user metadata in
// place (a metadata-only POST; no payload moves, no version bump).
func (p *Passthrough) SetTag(caller simnet.NodeID, key, tag, value string) error {
	return mapErr(p.rsds.SetUserMeta(key, tag, value))
}

// Delete implements Backend.
func (p *Passthrough) Delete(caller simnet.NodeID, key string) error {
	return mapErr(p.rsds.Delete(caller, key, false))
}

// Evict implements Backend: nothing is cached, so there is nothing to
// drop. Always succeeds.
func (p *Passthrough) Evict(key string) error { return nil }

// MaxObjectSize implements Backend: the RSDS takes any size.
func (p *Passthrough) MaxObjectSize() int64 { return math.MaxInt64 }
