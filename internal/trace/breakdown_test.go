package trace

import (
	"strings"
	"testing"
	"time"

	"ofc/internal/sim"
)

// TestQuantile audits the nearest-rank rule against the same cases
// metrics.Histogram.Quantile satisfies, with the edge cases that bit
// the histogram before the PR-2 fix: empty input, a single sample, and
// the q<=0 / q>=1 extremes.
func TestQuantile(t *testing.T) {
	ms := func(v int) sim.Time { return sim.Time(v) * sim.Time(time.Millisecond) }
	asc := func(vs ...int) []sim.Time {
		out := make([]sim.Time, len(vs))
		for i, v := range vs {
			out[i] = ms(v)
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []sim.Time
		q      float64
		want   sim.Time
	}{
		{"empty", nil, 0.5, 0},
		{"empty_p99", []sim.Time{}, 0.99, 0},
		{"single_p50", asc(7), 0.50, ms(7)},
		{"single_p99", asc(7), 0.99, ms(7)},
		{"single_p0", asc(7), 0, ms(7)},
		{"single_p100", asc(7), 1, ms(7)},
		{"q_below_zero", asc(1, 2, 3), -0.5, ms(1)},
		{"q_above_one", asc(1, 2, 3), 1.5, ms(3)},
		// rank ⌈0.5·4⌉ = 2 → second element, not an interpolation
		{"even_median", asc(1, 2, 3, 4), 0.50, ms(2)},
		{"odd_median", asc(1, 2, 3, 4, 5), 0.50, ms(3)},
		// ⌈0.99·100⌉ = 99 → 99th of 100
		{"p99_of_100", asc(seq(1, 100)...), 0.99, ms(99)},
		{"p99_of_10", asc(seq(1, 10)...), 0.99, ms(10)},
		{"p25_of_4", asc(10, 20, 30, 40), 0.25, ms(10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Quantile(tc.sorted, tc.q); got != tc.want {
				t.Fatalf("Quantile(%v, %v) = %v, want %v", tc.sorted, tc.q, got, tc.want)
			}
		})
	}
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

func TestBreakdown(t *testing.T) {
	mk := func(name string, start, end int) Span {
		return Span{ID: SpanID(start + 1), Name: name,
			Start: sim.Time(start) * sim.Time(time.Millisecond),
			End:   sim.Time(end) * sim.Time(time.Millisecond)}
	}

	t.Run("empty", func(t *testing.T) {
		if got := Breakdown(nil); len(got) != 0 {
			t.Fatalf("Breakdown(nil) = %v, want empty", got)
		}
	})

	t.Run("single_sample_phase", func(t *testing.T) {
		got := Breakdown([]Span{mk("advice", 0, 6)})
		if len(got) != 1 {
			t.Fatalf("got %d phases, want 1", len(got))
		}
		st := got[0]
		d := 6 * time.Millisecond
		if st.Phase != "advice" || st.Count != 1 ||
			st.Total != d || st.Mean != d || st.P50 != d || st.P99 != d || st.Max != d {
			t.Fatalf("single-sample stats wrong: %+v", st)
		}
	})

	t.Run("zero_duration_phase", func(t *testing.T) {
		got := Breakdown([]Span{mk("predict", 3, 3)})
		if got[0].Count != 1 || got[0].Total != 0 || got[0].P99 != 0 {
			t.Fatalf("zero-duration stats wrong: %+v", got[0])
		}
	})

	t.Run("multi_phase_sorted", func(t *testing.T) {
		got := Breakdown([]Span{
			mk("queue", 0, 2), mk("advice", 2, 8), mk("queue", 10, 16),
		})
		if len(got) != 2 || got[0].Phase != "advice" || got[1].Phase != "queue" {
			t.Fatalf("phases not name-sorted: %+v", got)
		}
		q := got[1]
		if q.Count != 2 || q.Total != 8*time.Millisecond || q.Mean != 4*time.Millisecond ||
			q.P50 != 2*time.Millisecond || q.Max != 6*time.Millisecond {
			t.Fatalf("queue stats wrong: %+v", q)
		}
	})
}

func TestFormatBreakdown(t *testing.T) {
	out := FormatBreakdown(Breakdown([]Span{
		{ID: 1, Name: "invoke", Start: 0, End: sim.Time(8 * time.Millisecond)},
	}))
	if !strings.Contains(out, "invoke") || !strings.Contains(out, "8.000") {
		t.Fatalf("table missing row data:\n%s", out)
	}
	if !strings.HasPrefix(out, "phase") {
		t.Fatalf("table missing header:\n%s", out)
	}
}
