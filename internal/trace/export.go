package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ofc/internal/sim"
)

// sortSpans orders by (Start, ID): virtual time first, allocation
// order as the tiebreak.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
}

// Canonicalize rewrites raw span IDs into a deterministic ID space.
//
// Everything about a fixed-seed trace is a pure function of the seed —
// virtual timestamps, names, nodes, attributes, parent structure —
// EXCEPT the raw IDs: they come from a global atomic counter, and two
// sim processes running between blocking points (a spawner and its
// env.Go child) can interleave allocations differently from host run
// to host run. Canonicalize erases that artifact: it rebuilds the span
// forest, orders siblings by (Start, Name, subtree fingerprint), and
// renumbers in DFS pre-order, rewriting parent links to match. Two
// siblings with equal fingerprints have byte-identical subtrees, so
// any residual tie cannot affect the output bytes. The result is the
// same for every host interleaving, which is what makes exported
// traces golden-testable.
//
// The returned slice is in DFS pre-order (roots by start time); a
// parent always precedes — and has a smaller ID than — its children.
func Canonicalize(spans []Span) []Span {
	n := len(spans)
	byID := make(map[SpanID]int, n)
	for i := range spans {
		byID[spans[i].ID] = i
	}
	children := make([][]int, n)
	roots := make([]int, 0, n)
	for i := range spans {
		if p, ok := byID[spans[i].Parent]; ok && spans[i].Parent != 0 && p != i {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}

	// Subtree fingerprints, bottom-up. The forest is acyclic for any
	// well-formed trace (a parent's ID is allocated before its
	// children's); the state array keeps this terminating even on
	// malformed input.
	fp := make([]uint64, n)
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
	var fingerprint func(i int) uint64
	fingerprint = func(i int) uint64 {
		switch state[i] {
		case 2:
			return fp[i]
		case 1:
			return 0 // cycle: malformed input, degrade gracefully
		}
		state[i] = 1
		sp := &spans[i]
		h := uint64(fnvOffset)
		h = fnvUint(h, uint64(sp.Start))
		h = fnvUint(h, uint64(sp.End))
		h = fnvUint(h, uint64(sp.Trace))
		h = fnvStr(h, sp.Name)
		h = fnvUint(h, uint64(sp.Node))
		for _, a := range sp.Attrs() {
			h = fnvStr(h, a.Key)
			h = fnvUint(h, uint64(a.Num))
			h = fnvStr(h, a.Str)
		}
		kids := make([]uint64, 0, len(children[i]))
		for _, c := range children[i] {
			kids = append(kids, fingerprint(c))
		}
		sort.Slice(kids, func(a, b int) bool { return kids[a] < kids[b] })
		for _, k := range kids {
			h = fnvUint(h, k)
		}
		fp[i] = h
		state[i] = 2
		return h
	}
	for i := range spans {
		fingerprint(i)
	}

	order := func(list []int) {
		sort.Slice(list, func(a, b int) bool {
			x, y := &spans[list[a]], &spans[list[b]]
			if x.Start != y.Start {
				return x.Start < y.Start
			}
			if x.Name != y.Name {
				return x.Name < y.Name
			}
			if fp[list[a]] != fp[list[b]] {
				return fp[list[a]] < fp[list[b]]
			}
			return x.ID < y.ID // equal fingerprints: subtrees identical
		})
	}
	order(roots)
	for i := range children {
		order(children[i])
	}

	out := make([]Span, 0, n)
	var next SpanID
	var emit func(i int, parent SpanID)
	emit = func(i int, parent SpanID) {
		if state[i] == 3 {
			return // malformed self-parent guard
		}
		state[i] = 3
		next++
		sp := spans[i]
		sp.ID = next
		sp.Parent = parent
		out = append(out, sp)
		id := next
		for _, c := range children[i] {
			emit(c, id)
		}
	}
	for _, r := range roots {
		emit(r, 0)
	}
	return out
}

const fnvOffset = 0xcbf29ce484222325

func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	h ^= 0xff // terminator so ("ab","c") != ("a","bc")
	h *= 0x100000001b3
	return h
}

// ExportChrome writes spans as Chrome trace_event JSON (load it at
// chrome://tracing or https://ui.perfetto.dev). Spans are canonicalized
// first, so the bytes are a deterministic function of the simulation
// seed. Timestamps are virtual microseconds; pid is the node, tid the
// trace ID in hex ("ctl" spans carry trace 0).
func ExportChrome(w io.Writer, spans []Span) error {
	canon := Canonicalize(spans)
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for i := range canon {
		sp := &canon[i]
		if i > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, "{\"name\":%s,\"cat\":\"ofc\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":\"%016x\",\"args\":{\"span\":%d,\"parent\":%d",
			strconv.Quote(sp.Name),
			float64(sp.Start)/1e3, float64(sp.Duration())/1e3,
			int(sp.Node), uint64(sp.Trace), sp.ID, sp.Parent)
		for _, a := range sp.Attrs() {
			if a.Str != "" {
				fmt.Fprintf(bw, ",%s:%s", strconv.Quote(a.Key), strconv.Quote(a.Str))
			} else {
				fmt.Fprintf(bw, ",%s:%d", strconv.Quote(a.Key), a.Num)
			}
		}
		bw.WriteString("}}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// Validate checks span well-formedness:
//
//   - IDs are unique and non-zero, and Start <= End;
//   - a non-zero parent exists, belongs to the same trace, and was
//     allocated before the child (parent ID < child ID — which proves
//     the parent graph acyclic, since every edge decreases the ID);
//   - a child's interval nests inside its parent's in virtual time;
//   - the durations of a span's direct children sum to at most the
//     parent's duration (children are sequential or properly nested;
//     phases cannot claim more time than the invocation they
//     decompose).
//
// It accepts both raw Snapshot output and Canonicalize output: both
// allocate parents before children.
func Validate(spans []Span) error {
	byID := make(map[SpanID]int, len(spans))
	for i := range spans {
		sp := &spans[i]
		if sp.ID == 0 {
			return fmt.Errorf("trace: span %d (%s) has zero ID", i, sp.Name)
		}
		if j, dup := byID[sp.ID]; dup {
			return fmt.Errorf("trace: duplicate span ID %d (%s and %s)", sp.ID, spans[j].Name, sp.Name)
		}
		byID[sp.ID] = i
		if sp.End < sp.Start {
			return fmt.Errorf("trace: span %d (%s) ends %v before it starts %v", sp.ID, sp.Name, sp.End, sp.Start)
		}
	}
	childSum := make([]sim.Time, len(spans))
	for i := range spans {
		sp := &spans[i]
		if sp.Parent == 0 {
			continue
		}
		j, ok := byID[sp.Parent]
		if !ok {
			return fmt.Errorf("trace: span %d (%s) has unknown parent %d", sp.ID, sp.Name, sp.Parent)
		}
		par := &spans[j]
		if par.Trace != sp.Trace {
			return fmt.Errorf("trace: span %d (%s) crosses traces: parent %d is %016x, child is %016x",
				sp.ID, sp.Name, par.ID, uint64(par.Trace), uint64(sp.Trace))
		}
		if par.ID >= sp.ID {
			return fmt.Errorf("trace: span %d (%s) has parent %d allocated after it (cycle?)", sp.ID, sp.Name, par.ID)
		}
		if sp.Start < par.Start || sp.End > par.End {
			return fmt.Errorf("trace: span %d (%s) [%v,%v] escapes parent %d (%s) [%v,%v]",
				sp.ID, sp.Name, sp.Start, sp.End, par.ID, par.Name, par.Start, par.End)
		}
		childSum[j] += sp.Duration()
	}
	for i := range spans {
		if childSum[i] > spans[i].Duration() {
			return fmt.Errorf("trace: children of span %d (%s) sum to %v > parent duration %v",
				spans[i].ID, spans[i].Name, childSum[i], spans[i].Duration())
		}
	}
	return nil
}
