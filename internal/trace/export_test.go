package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ofc/internal/sim"
)

func ms(v int) sim.Time { return sim.Time(v) * sim.Time(time.Millisecond) }

// twoRunForest builds the same logical trace twice with different raw
// ID interleavings — the artifact a host scheduler can produce when
// two sim processes allocate IDs between blocking points.
func twoRunForest() (runA, runB []Span) {
	// Logical content: invocation trace 7 with root "invoke" [0,10]
	// containing "cache.get" [1,4]; control trace 0 with root
	// "kv.read" [2,5]. Run A allocates the kv span last; run B
	// allocates it between the invoke spans.
	runA = []Span{
		{Trace: 7, ID: 1, Parent: 0, Name: "invoke", Node: 1, Start: ms(0), End: ms(10)},
		{Trace: 7, ID: 2, Parent: 1, Name: "cache.get", Node: 1, Start: ms(1), End: ms(4)},
		{Trace: 0, ID: 3, Parent: 0, Name: "kv.read", Node: 2, Start: ms(2), End: ms(5)},
	}
	runB = []Span{
		{Trace: 7, ID: 1, Parent: 0, Name: "invoke", Node: 1, Start: ms(0), End: ms(10)},
		{Trace: 0, ID: 2, Parent: 0, Name: "kv.read", Node: 2, Start: ms(2), End: ms(5)},
		{Trace: 7, ID: 3, Parent: 1, Name: "cache.get", Node: 1, Start: ms(1), End: ms(4)},
	}
	return runA, runB
}

// TestExportChromeDeterministic is the canonicalization contract: raw
// ID allocation order must not leak into exported bytes.
func TestExportChromeDeterministic(t *testing.T) {
	runA, runB := twoRunForest()
	var a, b bytes.Buffer
	if err := ExportChrome(&a, runA); err != nil {
		t.Fatal(err)
	}
	if err := ExportChrome(&b, runB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export depends on raw ID order:\n--- run A ---\n%s\n--- run B ---\n%s", a.String(), b.String())
	}
}

func TestCanonicalizeStructure(t *testing.T) {
	_, runB := twoRunForest()
	canon := Canonicalize(runB)
	if len(canon) != len(runB) {
		t.Fatalf("canonicalize changed span count: %d != %d", len(canon), len(runB))
	}
	// DFS pre-order renumbering: IDs are 1..n, parents precede and are
	// smaller than children.
	pos := make(map[SpanID]int)
	for i := range canon {
		if want := SpanID(i + 1); canon[i].ID != want {
			t.Fatalf("span %d has ID %d, want %d", i, canon[i].ID, want)
		}
		pos[canon[i].ID] = i
	}
	for i := range canon {
		if p := canon[i].Parent; p != 0 {
			j, ok := pos[p]
			if !ok || j >= i || canon[j].Trace != canon[i].Trace {
				t.Fatalf("span %d (%s) has bad parent link %d", canon[i].ID, canon[i].Name, p)
			}
		}
	}
	if err := Validate(canon); err != nil {
		t.Fatalf("canonical trace invalid: %v", err)
	}
	// Content preserved: same multiset of (trace,name,start,end).
	key := func(sp *Span) string {
		var b strings.Builder
		b.WriteString(sp.Name)
		b.WriteByte('|')
		b.WriteString(sp.Start.String())
		b.WriteByte('|')
		b.WriteString(sp.End.String())
		return b.String()
	}
	want := map[string]int{}
	for i := range runB {
		want[key(&runB[i])]++
	}
	for i := range canon {
		want[key(&canon[i])]--
	}
	for k, v := range want {
		if v != 0 {
			t.Fatalf("canonicalize altered span content (%s: %+d)", k, v)
		}
	}
}

// TestExportChromeWellFormedJSON: the hand-built exporter must emit
// parseable JSON with the trace_event fields viewers expect.
func TestExportChromeWellFormedJSON(t *testing.T) {
	env := sim.NewEnv(1)
	tr := New(env, Config{Seed: 42})
	root := tr.Begin(tr.InvocationTrace(1), 0, "invoke", 3)
	root.SetStr("fn", "t/\"quoted\"")
	root.SetNum("attempt", 1)
	child := tr.Begin(root.Trace, root.ID, "cache.get", 3)
	tr.End(&child)
	tr.End(&root)

	var buf bytes.Buffer
	if err := ExportChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  string         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emits invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "invoke" || ev.Ph != "X" || ev.Pid != 3 {
		t.Fatalf("root event wrong: %+v", ev)
	}
	if ev.Args["fn"] != "t/\"quoted\"" {
		t.Fatalf("string attr not round-tripped: %v", ev.Args["fn"])
	}
	if ev.Args["attempt"] != float64(1) {
		t.Fatalf("num attr not round-tripped: %v", ev.Args["attempt"])
	}
}

func TestValidate(t *testing.T) {
	good := []Span{
		{Trace: 7, ID: 1, Name: "invoke", Start: ms(0), End: ms(10)},
		{Trace: 7, ID: 2, Parent: 1, Name: "queue", Start: ms(0), End: ms(2)},
		{Trace: 7, ID: 3, Parent: 1, Name: "execute", Start: ms(2), End: ms(9)},
		{Trace: 7, ID: 4, Parent: 3, Name: "extract", Start: ms(2), End: ms(4)},
	}
	if err := Validate(good); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}

	bad := []struct {
		name  string
		spans []Span
		frag  string
	}{
		{"zero_id", []Span{{Trace: 1, Name: "x"}}, "zero ID"},
		{"dup_id", []Span{
			{Trace: 1, ID: 1, Name: "a", Start: ms(0), End: ms(1)},
			{Trace: 1, ID: 1, Name: "b", Start: ms(0), End: ms(1)},
		}, "duplicate"},
		{"ends_before_start", []Span{
			{Trace: 1, ID: 1, Name: "a", Start: ms(5), End: ms(1)},
		}, "before it starts"},
		{"unknown_parent", []Span{
			{Trace: 1, ID: 2, Parent: 9, Name: "a", Start: ms(0), End: ms(1)},
		}, "unknown parent"},
		{"cross_trace_parent", []Span{
			{Trace: 1, ID: 1, Name: "a", Start: ms(0), End: ms(9)},
			{Trace: 2, ID: 2, Parent: 1, Name: "b", Start: ms(1), End: ms(2)},
		}, "crosses traces"},
		{"parent_after_child", []Span{
			{Trace: 1, ID: 2, Name: "a", Start: ms(0), End: ms(9)},
			{Trace: 1, ID: 1, Parent: 2, Name: "b", Start: ms(1), End: ms(2)},
		}, "allocated after"},
		{"escapes_parent", []Span{
			{Trace: 1, ID: 1, Name: "a", Start: ms(0), End: ms(5)},
			{Trace: 1, ID: 2, Parent: 1, Name: "b", Start: ms(3), End: ms(7)},
		}, "escapes parent"},
		{"children_oversum", []Span{
			{Trace: 1, ID: 1, Name: "a", Start: ms(0), End: ms(10)},
			{Trace: 1, ID: 2, Parent: 1, Name: "b", Start: ms(0), End: ms(8)},
			{Trace: 1, ID: 3, Parent: 1, Name: "c", Start: ms(2), End: ms(10)},
		}, "sum to"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.spans)
			if err == nil {
				t.Fatal("malformed trace accepted")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}
