// Package trace is a deterministic, sim-clock-native span subsystem
// for the invocation critical path. A Span covers one phase of one
// invocation (queue wait, advice lookup, cache probe, RSDS fetch,
// reclaim, ...) with start/end timestamps taken from the virtual clock
// of internal/sim — never the wall clock — so traces recorded at a
// fixed seed are reproducible artifacts, not observations.
//
// The subsystem is built to cost nothing when off: every entry point
// is nil-safe (a nil *Tracer and a zero Span fast-path out without
// allocating), so instrumented packages hold a plain *Tracer field and
// call through it unconditionally. Recording is lock-free: spans land
// in sharded bounded buffers via an atomic cursor; when a shard is
// full the span is counted in Drops() and discarded (drop-on-full, not
// overwrite, so the drop counter is exact and no slot is ever written
// twice).
//
// Determinism contract: virtual timestamps, span names, nodes,
// attributes and the parent structure are pure functions of the seed.
// Raw span IDs are NOT — they come from a global atomic counter, and
// two sim processes running between blocking points can interleave
// allocations differently across host runs. Exporters therefore
// canonicalize (see Canonicalize) before emitting bytes.
package trace

import (
	"sync/atomic"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// TraceID groups the spans of one invocation (or 0 for control-plane
// spans with no owning invocation: retrains, write-backs, reclaims).
type TraceID uint64

// SpanID identifies one span within a Tracer. IDs are allocated in
// Begin order, so a parent's ID is always smaller than its children's.
type SpanID uint64

// Ref names a span so a child created in another package can link to
// it. The zero Ref means "no parent" and is what disabled tracers
// produce, so it can be threaded through request structs for free.
type Ref struct {
	Trace TraceID
	Span  SpanID
}

// maxAttrs bounds per-span attributes; the array lives inline in Span
// so attaching attributes never allocates. Excess attributes are
// silently dropped (instrumentation sets at most a handful).
const maxAttrs = 6

// Attr is one typed span attribute: a Str value when Str != "" (and
// Num is ignored), a Num value otherwise.
type Attr struct {
	Key string
	Num int64
	Str string
}

// Span is one timed phase. It is a value type: Begin returns it on the
// stack, the caller annotates it, and End copies it into the buffer —
// no heap allocation on the recording path. The zero Span (ID == 0) is
// inert: setters and End ignore it, which is how the disabled path
// costs only the zeroing of the struct.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Node   simnet.NodeID
	Start  sim.Time
	End    sim.Time
	nattrs int
	attrs  [maxAttrs]Attr
}

// Ref returns the span's identity for linking children; zero for the
// zero span (and a nil receiver), so it can be stored unconditionally.
func (sp *Span) Ref() Ref {
	if sp == nil || sp.ID == 0 {
		return Ref{}
	}
	return Ref{Trace: sp.Trace, Span: sp.ID}
}

// SetNum attaches an integer attribute. No-op on the zero span.
func (sp *Span) SetNum(key string, v int64) {
	if sp == nil || sp.ID == 0 || sp.nattrs >= maxAttrs {
		return
	}
	sp.attrs[sp.nattrs] = Attr{Key: key, Num: v}
	sp.nattrs++
}

// SetStr attaches a string attribute. No-op on the zero span.
func (sp *Span) SetStr(key, v string) {
	if sp == nil || sp.ID == 0 || sp.nattrs >= maxAttrs {
		return
	}
	sp.attrs[sp.nattrs] = Attr{Key: key, Str: v}
	sp.nattrs++
}

// Attrs returns the attached attributes in insertion order.
func (sp *Span) Attrs() []Attr { return sp.attrs[:sp.nattrs] }

// Duration is the span's virtual-time extent.
func (sp *Span) Duration() sim.Time { return sp.End - sp.Start }

// Config sizes a Tracer.
type Config struct {
	// Seed feeds trace-ID derivation; use the simulation seed so trace
	// IDs are part of the deterministic artifact.
	Seed int64
	// Shards is the number of independent buffers (default 8). More
	// shards means less cursor contention under concurrent recording.
	Shards int
	// ShardCap is the span capacity of each shard (default 4096).
	// Total bounded memory is Shards * ShardCap * sizeof(Span).
	ShardCap int
}

const (
	defaultShards   = 8
	defaultShardCap = 4096
)

// shard is one bounded append-only buffer. cur counts attempted
// appends; slots beyond len(buf) were dropped. The pad keeps hot
// cursors of adjacent shards off one cache line.
type shard struct {
	cur atomic.Int64
	_   [56]byte
	buf []Span
}

// Tracer records spans against a simulation clock. A nil *Tracer is a
// valid, permanently-disabled tracer: all methods fast-path out.
type Tracer struct {
	env    *sim.Env
	seed   int64
	nextID atomic.Uint64
	drops  atomic.Int64
	shards []shard
}

// New creates an enabled tracer reading time from env.
func New(env *sim.Env, cfg Config) *Tracer {
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	if cfg.ShardCap <= 0 {
		cfg.ShardCap = defaultShardCap
	}
	t := &Tracer{env: env, seed: cfg.Seed, shards: make([]shard, cfg.Shards)}
	for i := range t.shards {
		t.shards[i].buf = make([]Span, cfg.ShardCap)
	}
	return t
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// InvocationTrace derives the TraceID for the index-th invocation
// (1-based, from the platform's invocation counter) from the seed.
// Zero on a disabled tracer.
func (t *Tracer) InvocationTrace(index int64) TraceID {
	if t == nil {
		return 0
	}
	return DeriveTraceID(t.seed, index)
}

// DeriveTraceID mixes (seed, index) through splitmix64 into a non-zero
// trace ID. Exported so tests can predict IDs.
func DeriveTraceID(seed, index int64) TraceID {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(index)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return TraceID(x)
}

// Begin opens a span. On a disabled tracer it returns the inert zero
// Span without reading the clock. parent 0 makes a root span.
func (t *Tracer) Begin(tr TraceID, parent SpanID, name string, node simnet.NodeID) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		Trace:  tr,
		ID:     SpanID(t.nextID.Add(1)),
		Parent: parent,
		Name:   name,
		Node:   node,
		Start:  t.env.Now(),
	}
}

// End stamps the span's end time and records it. No-op for the zero
// span or a disabled tracer.
func (t *Tracer) End(sp *Span) {
	if t == nil || sp == nil || sp.ID == 0 {
		return
	}
	sp.End = t.env.Now()
	t.record(*sp)
}

// record claims a slot by atomic cursor; a full shard counts a drop.
// Each successful claim maps to a distinct slot, so concurrent writers
// never touch the same memory.
func (t *Tracer) record(sp Span) {
	sh := &t.shards[uint64(sp.ID)%uint64(len(t.shards))]
	i := sh.cur.Add(1) - 1
	if i >= int64(len(sh.buf)) {
		t.drops.Add(1)
		return
	}
	sh.buf[i] = sp
}

// Drops returns the number of spans discarded because their shard was
// full. Zero on a disabled tracer.
func (t *Tracer) Drops() int64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// Len returns the number of recorded (kept) spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		c := int(t.shards[i].cur.Load())
		if c > len(t.shards[i].buf) {
			c = len(t.shards[i].buf)
		}
		n += c
	}
	return n
}

// Snapshot copies out all recorded spans sorted by (Start, ID). Call
// it after the traffic being traced has quiesced: recording is
// lock-free, so a snapshot taken mid-flight may miss spans whose slot
// claim has not yet been followed by the write.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, t.Len())
	for i := range t.shards {
		c := int(t.shards[i].cur.Load())
		if c > len(t.shards[i].buf) {
			c = len(t.shards[i].buf)
		}
		out = append(out, t.shards[i].buf[:c]...)
	}
	sortSpans(out)
	return out
}

// Reset discards all recorded spans and the drop count, keeping the
// buffers. Span IDs keep climbing, so spans recorded after a Reset
// never collide with earlier snapshots.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		t.shards[i].cur.Store(0)
	}
	t.drops.Store(0)
}
