package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ofc/internal/sim"
)

// PhaseStat aggregates all spans of one name (one phase) across a
// trace set.
type PhaseStat struct {
	Phase string
	Count int
	Total sim.Time
	Mean  sim.Time
	P50   sim.Time
	P99   sim.Time
	Max   sim.Time
}

// Breakdown aggregates spans into per-phase latency statistics, sorted
// by phase name (collect-then-sort: no map order leaks into output).
func Breakdown(spans []Span) []PhaseStat {
	byPhase := make(map[string][]sim.Time)
	for i := range spans {
		byPhase[spans[i].Name] = append(byPhase[spans[i].Name], spans[i].Duration())
	}
	names := make([]string, 0, len(byPhase))
	for name := range byPhase {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]PhaseStat, 0, len(names))
	for _, name := range names {
		ds := byPhase[name]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		st := PhaseStat{Phase: name, Count: len(ds)}
		for _, d := range ds {
			st.Total += d
		}
		if n := len(ds); n > 0 {
			st.Mean = st.Total / sim.Time(n)
			st.P50 = Quantile(ds, 0.50)
			st.P99 = Quantile(ds, 0.99)
			st.Max = ds[n-1]
		}
		out = append(out, st)
	}
	return out
}

// Quantile returns the q-th quantile of an ascending-sorted slice by
// the ceiling nearest-rank rule (rank ⌈q·n⌉), matching
// metrics.Histogram.Quantile: an empty slice yields 0, q <= 0 the
// first element, q >= 1 the last, and a single sample answers every
// quantile with itself.
func Quantile(sorted []sim.Time, q float64) sim.Time {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// FormatBreakdown renders the per-phase table the -exp trace drill
// prints: one row per phase, durations in milliseconds.
func FormatBreakdown(stats []PhaseStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %7s %12s %10s %10s %10s %10s\n",
		"phase", "count", "total_ms", "mean_ms", "p50_ms", "p99_ms", "max_ms")
	for _, st := range stats {
		fmt.Fprintf(&b, "%-16s %7d %12.3f %10.3f %10.3f %10.3f %10.3f\n",
			st.Phase, st.Count,
			float64(st.Total)/1e6, float64(st.Mean)/1e6,
			float64(st.P50)/1e6, float64(st.P99)/1e6, float64(st.Max)/1e6)
	}
	return b.String()
}
