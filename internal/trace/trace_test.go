package trace

import (
	"sync"
	"testing"

	"ofc/internal/sim"
)

// TestDisabledPathZeroAlloc pins the contract every instrumented hot
// path relies on: with tracing off (nil tracer), Begin/SetNum/SetStr/
// End/Ref allocate nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(tr.InvocationTrace(7), 0, "invoke", 1)
		sp.SetNum("hit", 1)
		sp.SetStr("fn", "t/blur")
		child := tr.Begin(sp.Ref().Trace, sp.Ref().Span, "cache.get", 2)
		tr.End(&child)
		tr.End(&sp)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledPathZeroAlloc: recording itself is also allocation-free —
// spans are values copied into preallocated shard slots.
func TestEnabledPathZeroAlloc(t *testing.T) {
	tr := New(sim.NewEnv(1), Config{Seed: 1, Shards: 1, ShardCap: 8192})
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(tr.InvocationTrace(7), 0, "invoke", 1)
		sp.SetNum("hit", 1)
		tr.End(&sp)
	})
	if allocs != 0 {
		t.Fatalf("enabled record path allocates %.1f/op, want 0", allocs)
	}
}

func TestDeriveTraceID(t *testing.T) {
	seen := make(map[TraceID]bool)
	for seed := int64(0); seed < 4; seed++ {
		for idx := int64(0); idx < 1000; idx++ {
			id := DeriveTraceID(seed, idx)
			if id == 0 {
				t.Fatalf("DeriveTraceID(%d,%d) = 0", seed, idx)
			}
			if seen[id] {
				t.Fatalf("DeriveTraceID(%d,%d) collides", seed, idx)
			}
			seen[id] = true
		}
	}
	if DeriveTraceID(5, 9) != DeriveTraceID(5, 9) {
		t.Fatal("DeriveTraceID not a pure function")
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.InvocationTrace(3) != 0 {
		t.Fatal("nil tracer derives a trace ID")
	}
	sp := tr.Begin(1, 0, "x", 0)
	if sp.ID != 0 {
		t.Fatal("nil tracer began a live span")
	}
	sp.SetNum("k", 1)
	sp.SetStr("k", "v")
	if len(sp.Attrs()) != 0 {
		t.Fatal("zero span accepted attributes")
	}
	if sp.Ref() != (Ref{}) {
		t.Fatal("zero span has a non-zero ref")
	}
	tr.End(&sp)
	if tr.Len() != 0 || tr.Drops() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer recorded something")
	}
	tr.Reset() // must not panic
}

func TestSpanAttrsBounded(t *testing.T) {
	tr := New(sim.NewEnv(1), Config{})
	sp := tr.Begin(1, 0, "x", 0)
	for i := 0; i < maxAttrs+3; i++ {
		sp.SetNum("k", int64(i))
	}
	if got := len(sp.Attrs()); got != maxAttrs {
		t.Fatalf("attrs grew to %d, want capped at %d", got, maxAttrs)
	}
}

// TestDropCounterAccuracy: a full shard counts every discarded span,
// exactly.
func TestDropCounterAccuracy(t *testing.T) {
	tr := New(sim.NewEnv(1), Config{Seed: 1, Shards: 1, ShardCap: 128})
	const total = 200
	for i := 0; i < total; i++ {
		sp := tr.Begin(1, 0, "x", 0)
		tr.End(&sp)
	}
	if got := tr.Len(); got != 128 {
		t.Fatalf("Len = %d, want 128", got)
	}
	if got := tr.Drops(); got != total-128 {
		t.Fatalf("Drops = %d, want %d", got, total-128)
	}
	if got := len(tr.Snapshot()); got != 128 {
		t.Fatalf("Snapshot holds %d spans, want 128", got)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Drops() != 0 {
		t.Fatal("Reset did not clear buffers")
	}
	sp := tr.Begin(1, 0, "y", 0)
	tr.End(&sp)
	if tr.Len() != 1 {
		t.Fatal("tracer unusable after Reset")
	}
}

// TestRecorderStress hammers the recorder from 64 goroutines recording
// 10k spans each; run under -race this pins the lock-free claim/write
// protocol. Capacity is sized so both the keep and the drop paths are
// exercised, and kept+dropped must account for every span.
func TestRecorderStress(t *testing.T) {
	const (
		goroutines = 64
		perG       = 10000
	)
	tr := New(sim.NewEnv(1), Config{Seed: 1, Shards: 8, ShardCap: 8192})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tid := tr.InvocationTrace(int64(g))
			for i := 0; i < perG; i++ {
				sp := tr.Begin(tid, 0, "stress", 0)
				sp.SetNum("i", int64(i))
				tr.End(&sp)
			}
		}(g)
	}
	wg.Wait()
	kept, dropped := int64(tr.Len()), tr.Drops()
	if kept+dropped != goroutines*perG {
		t.Fatalf("kept %d + dropped %d != recorded %d", kept, dropped, goroutines*perG)
	}
	if dropped == 0 {
		t.Fatal("stress never overflowed a shard; shrink ShardCap to exercise drops")
	}
	snap := tr.Snapshot()
	if int64(len(snap)) != kept {
		t.Fatalf("Snapshot %d != Len %d", len(snap), kept)
	}
	seen := make(map[SpanID]bool, len(snap))
	for i := range snap {
		if snap[i].ID == 0 {
			t.Fatal("snapshot contains an unwritten slot")
		}
		if seen[snap[i].ID] {
			t.Fatalf("span ID %d recorded twice", snap[i].ID)
		}
		seen[snap[i].ID] = true
	}
}
