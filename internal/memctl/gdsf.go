package memctl

import (
	"sort"

	"ofc/internal/sim"
)

// GDSFEviction is a Greedy-Dual-Size-Frequency policy (the family
// FaaSCache adapts for keep-alive) extended with the OFC predictor's
// caching-benefit score as the per-object cost term:
//
//	H(o) = clock + (0.5 + benefit(o)) · n_access(o) / size_MB(o)
//
// Small, frequently-hit objects the predictor believes in float to
// high priority; large one-shot objects sink. On every eviction the
// clock inflates to the victim's H, aging out objects that were hot
// long ago — the standard greedy-dual recency mechanism without
// timestamps.
//
// Per-key state is only the admission-time benefit score (and the
// clock); frequency and size come from the engine census. Victims
// never iterates the internal map — candidates come from the census
// slice and are ordered by (H, Key), so selection is deterministic.
type GDSFEviction struct {
	highWater float64
	clock     float64
	benefit   map[string]float64
}

// NewGDSFEviction builds the cost/size-aware policy from params.
func NewGDSFEviction(p Params) *GDSFEviction {
	hw := p.HighWater
	if hw <= 0 || hw > 1 {
		hw = DefaultParams().HighWater
	}
	return &GDSFEviction{highWater: hw, benefit: make(map[string]float64)}
}

// Name implements EvictionPolicy.
func (g *GDSFEviction) Name() string { return "gdsf" }

// Admit implements EvictionPolicy: everything predicted cacheable is
// admitted, but the benefit score is recorded as the object's cost
// term so the predictor's confidence shapes eviction order.
func (g *GDSFEviction) Admit(key string, size int64, benefit float64) bool {
	if benefit < 0 {
		benefit = 0
	}
	if benefit > 1 {
		benefit = 1
	}
	g.benefit[key] = benefit
	return true
}

// Touch implements EvictionPolicy (census n_access carries frequency).
func (g *GDSFEviction) Touch(string, sim.Time) {}

// Forget implements EvictionPolicy.
func (g *GDSFEviction) Forget(key string) { delete(g.benefit, key) }

// priority computes H(o) against the current clock.
func (g *GDSFEviction) priority(o Object) float64 {
	freq := float64(o.Meta.NAccess)
	if freq < 1 {
		freq = 1
	}
	sizeMB := float64(o.Meta.Size) / (1 << 20)
	if sizeMB <= 0 {
		sizeMB = 1.0 / (1 << 20) // 1-byte floor
	}
	return g.clock + (0.5+g.benefit[o.Key])*freq/sizeMB
}

// Victims implements EvictionPolicy: lowest-H-first until the target
// is covered, inflating the clock to each victim's priority. Need == 0
// trims to the high-water mark like LRU.
func (g *GDSFEviction) Victims(v View) []Object {
	need := v.Need
	if need <= 0 {
		if v.Limit <= 0 {
			return nil
		}
		water := int64(g.highWater * float64(v.Limit))
		if v.Used <= water {
			return nil
		}
		need = v.Used - water
	}
	type scored struct {
		obj Object
		h   float64
	}
	cand := make([]scored, 0, len(v.Objects))
	for _, o := range v.Objects {
		if v.pinned(o.Key) {
			continue
		}
		cand = append(cand, scored{obj: o, h: g.priority(o)})
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].h != cand[j].h {
			return cand[i].h < cand[j].h
		}
		return cand[i].obj.Key < cand[j].obj.Key
	})
	var out []Object
	var freed int64
	for _, c := range cand {
		if freed >= need {
			break
		}
		out = append(out, c.obj)
		freed += c.obj.Meta.Size
		if c.h > g.clock {
			g.clock = c.h
		}
	}
	return out
}
