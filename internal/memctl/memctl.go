// Package memctl is OFC's memory control plane as a pluggable policy
// subsystem. The paper's headline contribution is not the cache itself
// but the decision layer that opportunistically sizes it: sliding-
// window slack estimation (§6.4), threshold eviction (§6.3: n_access
// < 5 or idle > 30 min) and ordered reclamation under sandbox pressure
// (§6.4: persisted outputs first, then LRU inputs by migration-by-
// promotion, eviction last). This package carves that layer out of the
// per-node cache agent into three small interfaces so the paper's
// fixed policy becomes one point in a searchable design space — the
// same ablation seam FaaSCache (greedy-dual keep-alive) and Faa$T
// (per-application caching) use to compare keep-alive/eviction
// disciplines.
//
// The division of labor: policies decide WHO (which objects are
// victims, how much slack to hold, in what order to free), the cache
// agent in core remains the actuator deciding HOW (write-backs for
// dirty victims, grant arithmetic, charging the Figure-8 scaling
// costs). Policies are pure bookkeeping — they never touch the
// simulation clock or the network, so swapping them cannot perturb
// virtual time except through the decisions themselves.
package memctl

import (
	"fmt"
	"time"

	"ofc/internal/sim"
	"ofc/internal/store"
)

// Object is one cached object's census entry (key + engine metadata:
// size, creation/access times, access count, tags).
type Object = store.ObjectInfo

// Pressure is the control plane's urgency level, fed by the overload
// degradation controller. Policies tighten their criteria under
// brownout instead of the agent special-casing it.
type Pressure int

const (
	// PressureNormal is ordinary background operation.
	PressureNormal Pressure = iota
	// PressureBrownout means the node is memory-contended: the
	// overload controller wants cache memory flowing back to
	// sandboxes, so sweeps lose their grace windows and idle bounds
	// shrink.
	PressureBrownout
)

// String names the level.
func (p Pressure) String() string {
	if p == PressureBrownout {
		return "brownout"
	}
	return "normal"
}

// View is the immutable situation a policy decides over: the node's
// object census (in the engine's deterministic log order), usage
// against the current grant, how many bytes must be freed (0 for a
// discretionary periodic sweep), the pressure level and an optional
// pin predicate for objects that must never be victims (in-flight
// reads holding a reference).
type View struct {
	Now    sim.Time
	Objects []Object
	// Used and Limit are the node's cache occupancy and grant.
	Used, Limit int64
	// Need is the number of bytes that must be freed; 0 means the
	// policy sweeps at its own discretion.
	Need     int64
	Pressure Pressure
	// Pinned reports objects that must not be selected as victims.
	// May be nil (nothing pinned).
	Pinned func(key string) bool
}

// pinned is the nil-safe pin check.
func (v *View) pinned(key string) bool {
	return v.Pinned != nil && v.Pinned(key)
}

// EvictionPolicy decides which cached objects stay. Implementations
// keep only per-key bookkeeping; all engine truth (sizes, access
// counts, recency) arrives through the View census.
//
// Contract (enforced by the conformance suite):
//   - Victims is deterministic: the same View yields the same victim
//     list, in the same order.
//   - Victims never contains a pinned object.
//   - With Need > 0, the cumulative size of the victims exceeds Need
//     by at most one object (selection stops at the first object that
//     satisfies the need).
type EvictionPolicy interface {
	Name() string
	// Admit decides whether an object is worth caching at all — the
	// write-admission gate the proxy consults before admitting a
	// missed input. benefit is the predictor's caching-benefit score
	// in [0,1] (0 when unknown).
	Admit(key string, size int64, benefit float64) bool
	// Touch observes a cache hit on key (policy-internal frequency /
	// recency bookkeeping beyond what the engine census carries).
	Touch(key string, now sim.Time)
	// Forget drops any per-key state after an eviction or delete.
	Forget(key string)
	// Victims selects objects to evict, in eviction order.
	Victims(v View) []Object
}

// SlackEstimator turns the sandbox-churn signal into a slack-pool
// target: the memory the agent keeps free so sandbox placement never
// waits on a cache shrink (§6.4).
type SlackEstimator interface {
	Name() string
	// Observe records one churn sample: the absolute change of
	// reserved sandbox memory over the sampling period.
	Observe(delta int64)
	// Target returns the desired slack-pool size. ok is false when
	// the estimator has no opinion yet (keep the current slack).
	Target() (target int64, ok bool)
}

// Step is one reclamation action over a single object.
type Step struct {
	Key  string
	Size int64
	// Migrate requests migration-by-promotion (the backup copy is
	// promoted to master on another node, no payload transfer); the
	// executor falls back to eviction when migration fails. False
	// means plain eviction.
	Migrate bool
}

// Plan is an ordered reclamation recipe for freeing Need bytes. The
// executor walks First until the need is met; if First falls short it
// triggers the asynchronous write-backs and then walks Second, again
// stopping as soon as the need is met. The two-phase shape preserves
// the paper's order — clean persisted outputs first (free to drop),
// dirty outputs queued for write-back, then LRU inputs by
// migration-by-promotion with eviction as last resort.
type Plan struct {
	First []Step
	// WriteBacks lists dirty objects whose write-back the executor
	// triggers asynchronously (they are freed later, off the critical
	// path, and never count toward the synchronous need).
	WriteBacks []string
	Second     []Step
}

// Empty reports whether the plan proposes nothing at all.
func (p Plan) Empty() bool {
	return len(p.First) == 0 && len(p.WriteBacks) == 0 && len(p.Second) == 0
}

// ReclaimPlanner orders the migrate-vs-evict decisions for the §6.4
// fast-reclamation path (Reclaim(need)) and for grant shrinks.
type ReclaimPlanner interface {
	Name() string
	// Plan builds the recipe for freeing v.Need bytes.
	Plan(v View) Plan
}

// Params carries the shared numeric knobs the built-in policies draw
// from; the zero value is completed by Defaults.
type Params struct {
	// MinAccess and MaxIdle are the §6.3 threshold-eviction criteria
	// (n_access < 5 or idle > 30 min).
	MinAccess int64
	MaxIdle   time.Duration
	// AgeFloor is the grace window: objects younger than one eviction
	// period survive their first sweep.
	AgeFloor time.Duration
	// MinSlack and MaxSlack clamp the slack estimators.
	MinSlack, MaxSlack int64
	// ChurnWindow is the sliding-window length of WindowSlack.
	ChurnWindow int
	// StaticSlack is the fixed target of the static estimator (the
	// ablation baseline); 0 falls back to MinSlack.
	StaticSlack int64
	// HighWater is the occupancy fraction above which the demand-
	// driven policies (LRU, GDSF) start their discretionary sweeps.
	HighWater float64
}

// DefaultParams returns the paper's constants.
func DefaultParams() Params {
	return Params{
		MinAccess:   5,
		MaxIdle:     30 * time.Minute,
		AgeFloor:    300 * time.Second,
		MinSlack:    64 << 20,
		MaxSlack:    1 << 30,
		ChurnWindow: 5,
		StaticSlack: 100 << 20,
		HighWater:   0.9,
	}
}

// Spec names one point in the policy design space.
type Spec struct {
	Eviction string
	Slack    string
	Planner  string
}

// DefaultSpec is the paper's configuration.
func DefaultSpec() Spec {
	return Spec{Eviction: "threshold", Slack: "window", Planner: "migratefirst"}
}

// String renders the spec as "eviction/slack/planner".
func (s Spec) String() string {
	return s.Eviction + "/" + s.Slack + "/" + s.Planner
}

// Policies is one node's instantiated policy set. Each agent owns its
// own instances — eviction state (GDSF priorities, LRU bookkeeping) is
// per node.
type Policies struct {
	Eviction EvictionPolicy
	Slack    SlackEstimator
	Planner  ReclaimPlanner
}

// EvictionPolicies lists the registered eviction-policy names, in
// registry order.
func EvictionPolicies() []string { return []string{"threshold", "lru", "gdsf"} }

// SlackEstimators lists the registered estimator names.
func SlackEstimators() []string { return []string{"window", "static"} }

// Planners lists the registered reclaim planners.
func Planners() []string { return []string{"migratefirst", "evictonly"} }

// NewEviction builds one eviction policy by name.
func NewEviction(name string, p Params) (EvictionPolicy, error) {
	switch name {
	case "", "threshold":
		return NewThresholdEviction(p), nil
	case "lru":
		return NewLRUEviction(p), nil
	case "gdsf":
		return NewGDSFEviction(p), nil
	}
	return nil, fmt.Errorf("memctl: unknown eviction policy %q", name)
}

// NewSlack builds one slack estimator by name.
func NewSlack(name string, p Params) (SlackEstimator, error) {
	switch name {
	case "", "window":
		return NewWindowSlack(p), nil
	case "static":
		return NewStaticSlack(p), nil
	}
	return nil, fmt.Errorf("memctl: unknown slack estimator %q", name)
}

// NewPlanner builds one reclaim planner by name.
func NewPlanner(name string, p Params) (ReclaimPlanner, error) {
	switch name {
	case "", "migratefirst":
		return NewMigrateFirstPlanner(), nil
	case "evictonly":
		return NewEvictOnlyPlanner(), nil
	}
	return nil, fmt.Errorf("memctl: unknown reclaim planner %q", name)
}

// Build instantiates a full policy set from a spec. Empty spec fields
// fall back to the paper's defaults.
func Build(s Spec, p Params) (Policies, error) {
	var out Policies
	var err error
	if out.Eviction, err = NewEviction(s.Eviction, p); err != nil {
		return Policies{}, err
	}
	if out.Slack, err = NewSlack(s.Slack, p); err != nil {
		return Policies{}, err
	}
	if out.Planner, err = NewPlanner(s.Planner, p); err != nil {
		return Policies{}, err
	}
	return out, nil
}

// MustBuild is Build panicking on unknown names (for defaults wired in
// code, where a typo is a programming error).
func MustBuild(s Spec, p Params) Policies {
	out, err := Build(s, p)
	if err != nil {
		panic(err)
	}
	return out
}
