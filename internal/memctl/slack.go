package memctl

// WindowSlack is the paper's §6.4 estimator: keep a sliding window of
// recent churn samples (absolute reserved-memory movement per sampling
// period) and size the slack pool to the window maximum, clamped to
// [MinSlack, MaxSlack]. Until the first sample arrives it has no
// opinion, so the agent keeps its provisioned initial slack — exactly
// the pre-refactor empty-window no-op.
type WindowSlack struct {
	window   int
	min, max int64
	churn    []int64
}

// NewWindowSlack builds the sliding-window estimator from params.
func NewWindowSlack(p Params) *WindowSlack {
	w := p.ChurnWindow
	if w <= 0 {
		w = DefaultParams().ChurnWindow
	}
	return &WindowSlack{window: w, min: p.MinSlack, max: p.MaxSlack}
}

// Name implements SlackEstimator.
func (w *WindowSlack) Name() string { return "window" }

// Observe implements SlackEstimator: append the sample, trim to the
// window length.
func (w *WindowSlack) Observe(delta int64) {
	if delta < 0 {
		delta = -delta
	}
	w.churn = append(w.churn, delta)
	if len(w.churn) > w.window {
		w.churn = w.churn[1:]
	}
}

// Target implements SlackEstimator: the clamped window maximum.
func (w *WindowSlack) Target() (int64, bool) {
	if len(w.churn) == 0 {
		return 0, false
	}
	var max int64
	for _, c := range w.churn {
		if c > max {
			max = c
		}
	}
	if max < w.min {
		max = w.min
	}
	if max > w.max {
		max = w.max
	}
	return max, true
}

// StaticSlack is the ablation baseline: a fixed slack pool that
// ignores churn entirely. It isolates how much of OFC's win comes
// from *adapting* the slack versus merely *having* one.
type StaticSlack struct {
	target int64
}

// NewStaticSlack builds the fixed estimator; a zero StaticSlack param
// falls back to MinSlack.
func NewStaticSlack(p Params) *StaticSlack {
	t := p.StaticSlack
	if t <= 0 {
		t = p.MinSlack
	}
	return &StaticSlack{target: t}
}

// Name implements SlackEstimator.
func (s *StaticSlack) Name() string { return "static" }

// Observe implements SlackEstimator (ignored).
func (s *StaticSlack) Observe(int64) {}

// Target implements SlackEstimator.
func (s *StaticSlack) Target() (int64, bool) { return s.target, true }
