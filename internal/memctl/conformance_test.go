package memctl

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/sim"
)

// conformance is the contract every eviction policy must satisfy (see
// the EvictionPolicy doc): deterministic victim selection, no pinned
// victims, and bounded overshoot — with Need > 0 the victims exceed
// the requested bytes by at most one object.

// allPolicies instantiates every registered eviction policy.
func allPolicies(t *testing.T) map[string]func() EvictionPolicy {
	t.Helper()
	out := map[string]func() EvictionPolicy{}
	for _, name := range EvictionPolicies() {
		name := name
		out[name] = func() EvictionPolicy {
			p, err := NewEviction(name, DefaultParams())
			if err != nil {
				t.Fatalf("NewEviction(%q): %v", name, err)
			}
			return p
		}
	}
	return out
}

// genView builds a randomized but seed-deterministic census: a mix of
// kinds, dirt, ages, access counts and sizes, in a fixed order.
func genView(seed int64, n int, need int64) View {
	rng := rand.New(rand.NewSource(seed))
	now := sim.Time(2 * time.Hour)
	objs := make([]Object, 0, n)
	kinds := []string{"input", "intermediate", "final"}
	for i := 0; i < n; i++ {
		created := sim.Time(rng.Int63n(int64(2 * time.Hour)))
		last := created + sim.Time(rng.Int63n(int64(now-created)+1))
		dirty := "0"
		if rng.Intn(4) == 0 {
			dirty = "1"
		}
		objs = append(objs, Object{
			Key: fmt.Sprintf("obj/%03d", i),
			Meta: kvstore.Meta{
				Size:       1 + rng.Int63n(8<<20),
				Created:    created,
				NAccess:    rng.Int63n(12),
				LastAccess: last,
				Tags: map[string]string{
					"kind":  kinds[rng.Intn(len(kinds))],
					"dirty": dirty,
				},
			},
		})
	}
	var used int64
	for _, o := range objs {
		used += o.Meta.Size
	}
	return View{Now: now, Objects: objs, Used: used, Limit: used + used/10, Need: need}
}

// feed warms a policy's internal state the same way twice: admissions
// with seed-derived benefit scores plus touches.
func feed(p EvictionPolicy, v View, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, o := range v.Objects {
		p.Admit(o.Key, o.Meta.Size, rng.Float64())
		if rng.Intn(2) == 0 {
			p.Touch(o.Key, o.Meta.LastAccess)
		}
	}
}

func TestConformanceDeterminism(t *testing.T) {
	for name, mk := range allPolicies(t) {
		t.Run(name, func(t *testing.T) {
			for _, need := range []int64{0, 1 << 20, 64 << 20} {
				v := genView(42, 80, need)
				a, b := mk(), mk()
				feed(a, v, 7)
				feed(b, v, 7)
				va, vb := a.Victims(v), b.Victims(v)
				if !reflect.DeepEqual(va, vb) {
					t.Fatalf("need=%d: two identically-fed instances disagree:\n%v\nvs\n%v", need, keys(va), keys(vb))
				}
				// The same instance asked twice about the same view must
				// answer consistently as well (GDSF's clock only advances
				// on evictions it proposed; re-asking reflects them, so
				// compare key sets of a fresh twin instead).
				c := mk()
				feed(c, v, 7)
				if vc := c.Victims(v); !reflect.DeepEqual(va, vc) {
					t.Fatalf("need=%d: third instance disagrees", need)
				}
			}
		})
	}
}

func TestConformanceNoPinnedVictims(t *testing.T) {
	for name, mk := range allPolicies(t) {
		t.Run(name, func(t *testing.T) {
			v := genView(11, 60, 32<<20)
			// Pin every third object (simulating in-flight readers).
			pinned := map[string]bool{}
			for i, o := range v.Objects {
				if i%3 == 0 {
					pinned[o.Key] = true
				}
			}
			v.Pinned = func(k string) bool { return pinned[k] }
			p := mk()
			feed(p, v, 3)
			for _, o := range p.Victims(v) {
				if pinned[o.Key] {
					t.Fatalf("pinned object %q selected as victim", o.Key)
				}
			}
			// Need == 0 sweeps must honor pins too.
			v.Need = 0
			for _, o := range p.Victims(v) {
				if pinned[o.Key] {
					t.Fatalf("pinned object %q selected in discretionary sweep", o.Key)
				}
			}
		})
	}
}

func TestConformanceOvershootBound(t *testing.T) {
	for name, mk := range allPolicies(t) {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 2, 3} {
				need := int64(24 << 20)
				v := genView(seed, 100, need)
				p := mk()
				feed(p, v, seed)
				victims := p.Victims(v)
				var total int64
				for i, o := range victims {
					if total >= need {
						t.Fatalf("victim %d (%q) selected after need was already covered (%d >= %d)",
							i, o.Key, total, need)
					}
					total += o.Meta.Size
				}
				// Overshoot ≤ one object: dropping the last victim must
				// leave the need uncovered.
				if len(victims) > 0 {
					last := victims[len(victims)-1]
					if total-last.Meta.Size >= need {
						t.Fatalf("victims overshoot need by more than the final object")
					}
				}
			}
		})
	}
}

// TestThresholdMatchesPaperCriteria pins the default policy to §6.3:
// n_access < 5 or idle > 30 min, with the one-period grace window, and
// the brownout tightening (no grace, idle bound quartered).
func TestThresholdMatchesPaperCriteria(t *testing.T) {
	p := NewThresholdEviction(DefaultParams())
	now := sim.Time(2 * time.Hour)
	obj := func(key string, age, idle time.Duration, n int64) Object {
		return Object{Key: key, Meta: kvstore.Meta{
			Size: 1 << 20, Created: now - sim.Time(age),
			LastAccess: now - sim.Time(idle), NAccess: n,
			Tags: map[string]string{"kind": "input", "dirty": "0"},
		}}
	}
	v := View{Now: now, Objects: []Object{
		obj("young-cold", 2*time.Minute, time.Minute, 0),      // inside grace window
		obj("hot", time.Hour, time.Minute, 9),                 // survives
		obj("cold", time.Hour, time.Minute, 2),                // n_access < 5
		obj("idle", time.Hour, 31*time.Minute, 9),             // idle > 30 min
		obj("warm-idle8", time.Hour, 8*time.Minute, 9),        // survives normal, dies in brownout
	}}
	got := keys(p.Victims(v))
	want := []string{"cold", "idle"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("normal sweep: got %v want %v", got, want)
	}
	v.Pressure = PressureBrownout
	got = keys(p.Victims(v))
	want = []string{"young-cold", "cold", "idle", "warm-idle8"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("brownout sweep: got %v want %v", got, want)
	}
}

// TestGDSFPrefersHighBenefitSmallObjects pins the cost-aware ordering:
// with equal frequency, a large zero-benefit object is evicted before
// a small high-benefit one.
func TestGDSFPrefersHighBenefitSmallObjects(t *testing.T) {
	g := NewGDSFEviction(DefaultParams())
	now := sim.Time(time.Hour)
	mk := func(key string, size int64) Object {
		return Object{Key: key, Meta: kvstore.Meta{
			Size: size, Created: 0, LastAccess: now, NAccess: 3,
			Tags: map[string]string{"kind": "input", "dirty": "0"},
		}}
	}
	big, small := mk("big", 16<<20), mk("small", 1<<20)
	g.Admit("big", big.Meta.Size, 0.0)
	g.Admit("small", small.Meta.Size, 0.95)
	v := View{Now: now, Objects: []Object{small, big}, Need: 1}
	victims := g.Victims(v)
	if len(victims) != 1 || victims[0].Key != "big" {
		t.Fatalf("expected big low-benefit object first, got %v", keys(victims))
	}
}

// TestWindowSlack pins the estimator to the pre-refactor semantics:
// no opinion while empty, then clamp(max(window)).
func TestWindowSlack(t *testing.T) {
	p := DefaultParams()
	w := NewWindowSlack(p)
	if _, ok := w.Target(); ok {
		t.Fatal("empty window must have no opinion")
	}
	w.Observe(10 << 20) // below MinSlack
	if got, _ := w.Target(); got != p.MinSlack {
		t.Fatalf("clamped min: got %d want %d", got, p.MinSlack)
	}
	w.Observe(200 << 20)
	if got, _ := w.Target(); got != 200<<20 {
		t.Fatalf("window max: got %d want %d", got, int64(200<<20))
	}
	// Push the large sample out of the window.
	for i := 0; i < p.ChurnWindow; i++ {
		w.Observe(80 << 20)
	}
	if got, _ := w.Target(); got != 80<<20 {
		t.Fatalf("after trim: got %d want %d", got, int64(80<<20))
	}
	w2 := NewWindowSlack(p)
	w2.Observe(int64(4) << 40) // above MaxSlack
	if got, _ := w2.Target(); got != p.MaxSlack {
		t.Fatalf("clamped max: got %d want %d", got, p.MaxSlack)
	}
}

// TestMigrateFirstPlannerShape pins the §6.4 phase structure: clean
// finals first (census order), dirty write-backs, then LRU-ordered
// inputs flagged for migration.
func TestMigrateFirstPlannerShape(t *testing.T) {
	now := sim.Time(time.Hour)
	obj := func(key, kind, dirty string, last time.Duration) Object {
		return Object{Key: key, Meta: kvstore.Meta{
			Size: 1 << 20, LastAccess: sim.Time(last),
			Tags: map[string]string{"kind": kind, "dirty": dirty},
		}}
	}
	v := View{Now: now, Need: 10 << 20, Objects: []Object{
		obj("in-new", "input", "0", 40*time.Minute),
		obj("fin-clean", "final", "0", 10*time.Minute),
		obj("fin-dirty", "final", "1", 20*time.Minute),
		obj("in-old", "input", "0", 5*time.Minute),
		obj("mid", "intermediate", "0", 30*time.Minute),
	}}
	plan := NewMigrateFirstPlanner().Plan(v)
	if got, want := stepKeys(plan.First), []string{"fin-clean"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("First: got %v want %v", got, want)
	}
	if got, want := plan.WriteBacks, []string{"fin-dirty"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("WriteBacks: got %v want %v", got, want)
	}
	if got, want := stepKeys(plan.Second), []string{"in-old", "mid", "in-new"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Second: got %v want %v", got, want)
	}
	for _, s := range plan.Second {
		if !s.Migrate {
			t.Fatalf("second-phase step %q must request migration", s.Key)
		}
	}
	ev := NewEvictOnlyPlanner().Plan(v)
	for _, s := range ev.Second {
		if s.Migrate {
			t.Fatalf("evictonly step %q must not request migration", s.Key)
		}
	}
}

// TestRegistry pins the registry surface: every advertised name
// builds, unknown names error, empty spec yields the paper's defaults.
func TestRegistry(t *testing.T) {
	p := DefaultParams()
	for _, n := range EvictionPolicies() {
		if _, err := NewEviction(n, p); err != nil {
			t.Fatalf("eviction %q: %v", n, err)
		}
	}
	for _, n := range SlackEstimators() {
		if _, err := NewSlack(n, p); err != nil {
			t.Fatalf("slack %q: %v", n, err)
		}
	}
	for _, n := range Planners() {
		if _, err := NewPlanner(n, p); err != nil {
			t.Fatalf("planner %q: %v", n, err)
		}
	}
	if _, err := NewEviction("bogus", p); err == nil {
		t.Fatal("unknown eviction name must error")
	}
	if _, err := Build(Spec{Eviction: "bogus"}, p); err == nil {
		t.Fatal("Build with unknown name must error")
	}
	def, err := Build(Spec{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if def.Eviction.Name() != "threshold" || def.Slack.Name() != "window" || def.Planner.Name() != "migratefirst" {
		t.Fatalf("empty spec must build the paper's defaults, got %s/%s/%s",
			def.Eviction.Name(), def.Slack.Name(), def.Planner.Name())
	}
}

func keys(objs []Object) []string {
	out := make([]string, 0, len(objs))
	for _, o := range objs {
		out = append(out, o.Key)
	}
	return out
}

func stepKeys(steps []Step) []string {
	out := make([]string, 0, len(steps))
	for _, s := range steps {
		out = append(out, s.Key)
	}
	return out
}
