package memctl

import (
	"sort"

	"ofc/internal/sim"
)

// LRUEviction is the classic recency-only baseline: victims are the
// least-recently-accessed objects, regardless of access count, kind or
// predicted benefit. For the discretionary sweep it behaves like a
// watermark cache — it only evicts once occupancy crosses HighWater
// of the grant, then trims back down to the watermark — so a
// lightly-loaded cache is never touched (unlike the threshold policy,
// which evicts cold objects even with memory to spare).
//
// Recency comes from the engine census (Meta.LastAccess), so the
// policy carries no per-key state and is deterministic by
// construction: ordering is (LastAccess, Key) ascending.
type LRUEviction struct {
	highWater float64
}

// NewLRUEviction builds the recency baseline from params.
func NewLRUEviction(p Params) *LRUEviction {
	hw := p.HighWater
	if hw <= 0 || hw > 1 {
		hw = DefaultParams().HighWater
	}
	return &LRUEviction{highWater: hw}
}

// Name implements EvictionPolicy.
func (l *LRUEviction) Name() string { return "lru" }

// Admit implements EvictionPolicy: LRU admits everything and lets
// recency sort it out.
func (l *LRUEviction) Admit(string, int64, float64) bool { return true }

// Touch implements EvictionPolicy (census recency suffices).
func (l *LRUEviction) Touch(string, sim.Time) {}

// Forget implements EvictionPolicy.
func (l *LRUEviction) Forget(string) {}

// Victims implements EvictionPolicy: oldest-first until the target is
// covered. Need > 0 frees exactly the need; Need == 0 trims occupancy
// back to the high-water mark (and proposes nothing below it).
func (l *LRUEviction) Victims(v View) []Object {
	need := v.Need
	if need <= 0 {
		if v.Limit <= 0 {
			return nil
		}
		water := int64(l.highWater * float64(v.Limit))
		if v.Used <= water {
			return nil
		}
		need = v.Used - water
	}
	cand := make([]Object, 0, len(v.Objects))
	for _, o := range v.Objects {
		if v.pinned(o.Key) {
			continue
		}
		cand = append(cand, o)
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].Meta.LastAccess != cand[j].Meta.LastAccess {
			return cand[i].Meta.LastAccess < cand[j].Meta.LastAccess
		}
		return cand[i].Key < cand[j].Key
	})
	var out []Object
	var freed int64
	for _, o := range cand {
		if freed >= need {
			break
		}
		out = append(out, o)
		freed += o.Meta.Size
	}
	return out
}
