package memctl

import (
	"time"

	"ofc/internal/sim"
)

// ThresholdEviction is the paper's §6.3 policy: an object is a victim
// when n_access < MinAccess or it has been idle longer than MaxIdle.
// Objects younger than the grace window (one eviction period) survive
// their first sweep; brownout removes the grace window and quarters
// the idle bound so only the hot set survives while memory is
// contended.
//
// The policy is stateless beyond its parameters: every criterion reads
// engine truth from the census, so Victims over the same View is
// trivially deterministic (census order in, census order out).
type ThresholdEviction struct {
	minAccess int64
	maxIdle   time.Duration
	ageFloor  time.Duration
}

// NewThresholdEviction builds the paper's policy from params.
func NewThresholdEviction(p Params) *ThresholdEviction {
	return &ThresholdEviction{minAccess: p.MinAccess, maxIdle: p.MaxIdle, ageFloor: p.AgeFloor}
}

// Name implements EvictionPolicy.
func (t *ThresholdEviction) Name() string { return "threshold" }

// Admit implements EvictionPolicy: the paper admits every predicted-
// cacheable object and lets the periodic sweep correct mistakes.
func (t *ThresholdEviction) Admit(string, int64, float64) bool { return true }

// Touch implements EvictionPolicy; the engine census already tracks
// n_access and recency, so there is nothing to record.
func (t *ThresholdEviction) Touch(string, sim.Time) {}

// Forget implements EvictionPolicy.
func (t *ThresholdEviction) Forget(string) {}

// Victims implements EvictionPolicy. For the discretionary sweep
// (Need == 0) it walks the census in order and applies the §6.3
// criteria. With Need > 0 it keeps the same criteria ordering but
// stops once the need is covered.
func (t *ThresholdEviction) Victims(v View) []Object {
	ageFloor, maxIdle := t.ageFloor, t.maxIdle
	if v.Pressure == PressureBrownout {
		ageFloor, maxIdle = 0, t.maxIdle/4
	}
	var out []Object
	var freed int64
	for _, o := range v.Objects {
		if v.Need > 0 && freed >= v.Need {
			break
		}
		if v.pinned(o.Key) {
			continue
		}
		age := v.Now - o.Meta.Created
		if age < sim.Time(ageFloor) {
			continue
		}
		idle := v.Now - o.Meta.LastAccess
		if o.Meta.NAccess >= t.minAccess && idle <= sim.Time(maxIdle) {
			continue
		}
		out = append(out, o)
		freed += o.Meta.Size
	}
	return out
}
