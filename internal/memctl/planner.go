package memctl

import "sort"

// MigrateFirstPlanner is the paper's §6.4 reclamation order:
//
//  1. evict clean persisted final outputs (free to drop — the durable
//     copy already exists) in census order, stopping once the need is
//     covered;
//  2. if that falls short, queue asynchronous write-backs for every
//     dirty object and order the inputs/intermediates least-recently-
//     accessed first, each to be freed by migration-by-promotion with
//     eviction as the fallback.
//
// The plan's phase boundaries and orderings reproduce the pre-refactor
// freeBytes pass structure exactly; the executor's stop-when-satisfied
// walk supplies the early exits.
type MigrateFirstPlanner struct{}

// NewMigrateFirstPlanner returns the paper's planner.
func NewMigrateFirstPlanner() *MigrateFirstPlanner { return &MigrateFirstPlanner{} }

// Name implements ReclaimPlanner.
func (m *MigrateFirstPlanner) Name() string { return "migratefirst" }

// Plan implements ReclaimPlanner.
func (m *MigrateFirstPlanner) Plan(v View) Plan {
	var p Plan
	for _, o := range v.Objects {
		if v.pinned(o.Key) {
			continue
		}
		if o.Meta.Tags["kind"] == "final" && o.Meta.Tags["dirty"] != "1" {
			p.First = append(p.First, Step{Key: o.Key, Size: o.Meta.Size})
		}
	}
	var inputs []Object
	for _, o := range v.Objects {
		switch {
		case o.Meta.Tags["dirty"] == "1":
			p.WriteBacks = append(p.WriteBacks, o.Key)
		case o.Meta.Tags["kind"] == "input" || o.Meta.Tags["kind"] == "intermediate":
			if !v.pinned(o.Key) {
				inputs = append(inputs, o)
			}
		}
	}
	sort.Slice(inputs, func(i, j int) bool {
		return inputs[i].Meta.LastAccess < inputs[j].Meta.LastAccess
	})
	for _, o := range inputs {
		p.Second = append(p.Second, Step{Key: o.Key, Size: o.Meta.Size, Migrate: true})
	}
	return p
}

// EvictOnlyPlanner is the ablation baseline without migration-by-
// promotion: same phase order and LRU input ordering, but every input
// is evicted outright. It isolates the contribution of promotion to
// reclaim latency and subsequent hit ratio.
type EvictOnlyPlanner struct{}

// NewEvictOnlyPlanner returns the no-migration planner.
func NewEvictOnlyPlanner() *EvictOnlyPlanner { return &EvictOnlyPlanner{} }

// Name implements ReclaimPlanner.
func (e *EvictOnlyPlanner) Name() string { return "evictonly" }

// Plan implements ReclaimPlanner.
func (e *EvictOnlyPlanner) Plan(v View) Plan {
	p := (&MigrateFirstPlanner{}).Plan(v)
	for i := range p.Second {
		p.Second[i].Migrate = false
	}
	return p
}
