package core

import (
	"encoding/json"
	"fmt"

	"ofc/internal/faas"
	"ofc/internal/mltree"
)

// The paper stores every function's trained models in OWK's CouchDB so
// that fetching a function's metadata also yields its Predictor models
// (§5.1). This file provides the wire format and the System-level
// persistence into the RSDS (our control-plane store stand-in).

// ModelBundle is the serialized per-function learning state.
type ModelBundle struct {
	FunctionID string          `json:"function"`
	Mature     bool            `json:"mature"`
	MaturedAt  int             `json:"maturedAt"`
	Memory     json.RawMessage `json:"memory,omitempty"`
	Benefit    json.RawMessage `json:"benefit,omitempty"`
}

// ExportModel serializes fn's trained models. Only J48 trees are
// exportable (the deployed configuration).
func (p *Predictor) ExportModel(fn *faas.Function) ([]byte, error) {
	st := p.state(fn)
	st.mu.Lock()
	defer st.mu.Unlock()
	b := ModelBundle{FunctionID: fn.ID(), Mature: st.mature, MaturedAt: st.maturedAt}
	if st.memModel != nil {
		tree, ok := st.memModel.(*mltree.Tree)
		if !ok {
			return nil, fmt.Errorf("core: memory model of %s is not a serializable tree", fn.ID())
		}
		data, err := mltree.MarshalTree(tree)
		if err != nil {
			return nil, err
		}
		b.Memory = data
	}
	if st.benefitModel != nil {
		tree, ok := st.benefitModel.(*mltree.Tree)
		if !ok {
			return nil, fmt.Errorf("core: benefit model of %s is not a serializable tree", fn.ID())
		}
		data, err := mltree.MarshalTree(tree)
		if err != nil {
			return nil, err
		}
		b.Benefit = data
	}
	return json.Marshal(b)
}

// ImportModel restores fn's models from ExportModel output.
func (p *Predictor) ImportModel(fn *faas.Function, data []byte) error {
	var b ModelBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return fmt.Errorf("core: bad model bundle: %w", err)
	}
	if b.FunctionID != fn.ID() {
		return fmt.Errorf("core: bundle is for %s, not %s", b.FunctionID, fn.ID())
	}
	st := p.state(fn)
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(b.Memory) > 0 {
		tree, err := mltree.UnmarshalTree(b.Memory)
		if err != nil {
			return err
		}
		st.memModel = tree
	}
	if len(b.Benefit) > 0 {
		tree, err := mltree.UnmarshalTree(b.Benefit)
		if err != nil {
			return err
		}
		st.benefitModel = tree
	}
	st.mature = b.Mature
	st.maturedAt = b.MaturedAt
	return nil
}

// modelKey is the RSDS key a function's models live under.
func modelKey(fn *faas.Function) string { return "ofc-models/" + fn.ID() }

// PersistModels writes fn's models next to the function metadata (the
// CouchDB role). Must run inside the simulation.
func (s *System) PersistModels(fn *faas.Function) error {
	data, err := s.Pred.ExportModel(fn)
	if err != nil {
		return err
	}
	s.RSDS.Put(s.CtrlNode, modelKey(fn), faas.Blob{Size: int64(len(data)), Data: data}, nil, false)
	return nil
}

// RestoreModels loads fn's models from the store, e.g. after a
// controller restart. Must run inside the simulation.
func (s *System) RestoreModels(fn *faas.Function) error {
	blob, _, err := s.RSDS.Get(s.CtrlNode, modelKey(fn), false)
	if err != nil {
		return fmt.Errorf("core: no stored models for %s: %w", fn.ID(), err)
	}
	return s.Pred.ImportModel(fn, blob.Data)
}
