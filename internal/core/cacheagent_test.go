package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ofc/internal/kvstore"
	"ofc/internal/sim"
)

// TestReclaimFailureWrapsErrReclaim pins the reclaim failure contract:
// every failure path returns an error matching core.ErrReclaim via
// errors.Is and bumps ReclaimFailures exactly once per failed call.
func TestReclaimFailureWrapsErrReclaim(t *testing.T) {
	sys := newSystem(1)
	inv := sys.Platform.Invokers()[0]
	agent := NewCacheAgent(sys.Env, inv, sys.KV, sys.RC, DefaultCacheAgentConfig())
	sys.Env.Go(func() {
		inv.SetCacheGrant(64 << 20)
		sys.KV.SetMemoryLimit(inv.Node(), 64<<20)

		// Need exceeds the whole grant: fails before touching data.
		_, err := agent.Reclaim(128 << 20)
		if !errors.Is(err, ErrReclaim) {
			t.Errorf("need>grant: err=%v, want ErrReclaim match", err)
		}
		if got := agent.Metrics().ReclaimFailures; got != 1 {
			t.Errorf("ReclaimFailures=%d after one failure, want 1", got)
		}

		// A second failure counts once more — no double counting.
		_, err = agent.Reclaim(1 << 30)
		if !errors.Is(err, ErrReclaim) {
			t.Errorf("second failure: err=%v", err)
		}
		if got := agent.Metrics().ReclaimFailures; got != 2 {
			t.Errorf("ReclaimFailures=%d after two failures, want 2", got)
		}

		// The governor's no-agent error is part of the same family.
		if _, gerr := sys.Gov.Reclaim(9999, 1<<20); !errors.Is(gerr, ErrReclaim) {
			t.Errorf("governor no-agent: err=%v, want ErrReclaim match", gerr)
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
}

// TestReclaimFailsOnDirtyResidue drives the partial-free failure path:
// the grant is large enough, but the cached bytes are all dirty (their
// write-backs are asynchronous), so the synchronous reclaim cannot free
// enough and must fail — once — with an ErrReclaim-wrapped error.
func TestReclaimFailsOnDirtyResidue(t *testing.T) {
	sys := newSystem(2)
	inv := sys.Platform.Invokers()[0]
	agent := NewCacheAgent(sys.Env, inv, sys.KV, sys.RC, DefaultCacheAgentConfig())
	sys.Env.Go(func() {
		node := inv.Node()
		inv.SetCacheGrant(64 << 20)
		sys.KV.SetMemoryLimit(node, 64<<20)
		for i := 0; i < 6; i++ {
			key := fmt.Sprintf("dirty/%d", i)
			if _, err := sys.KV.Write(node, key, kvstore.Synthetic(10<<20),
				map[string]string{"kind": "final", "dirty": "1", "version": "0"}, node); err != nil {
				t.Fatalf("stage dirty object: %v", err)
			}
		}
		_, err := agent.Reclaim(32 << 20)
		if !errors.Is(err, ErrReclaim) {
			t.Errorf("dirty residue: err=%v, want ErrReclaim match", err)
		}
		if got := agent.Metrics().ReclaimFailures; got != 1 {
			t.Errorf("ReclaimFailures=%d, want exactly 1", got)
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
}

// TestConcurrentReclaimAndGrantShrink races reclaims against grant
// churn (concurrent SetCacheGrant shrinks and Grows) under -race, and
// checks the accounting invariant holds regardless of interleaving:
// ReclaimFailures equals exactly the number of Reclaim calls that
// returned an error, and every error matches ErrReclaim.
func TestConcurrentReclaimAndGrantShrink(t *testing.T) {
	sys := newSystem(3)
	inv := sys.Platform.Invokers()[0]
	agent := NewCacheAgent(sys.Env, inv, sys.KV, sys.RC, DefaultCacheAgentConfig())

	var mu sync.Mutex
	var failed int64
	sys.Env.Go(func() {
		node := inv.Node()
		inv.SetCacheGrant(256 << 20)
		sys.KV.SetMemoryLimit(node, 256<<20)
		for i := 0; i < 8; i++ {
			sys.KV.Write(node, fmt.Sprintf("in/%d", i), kvstore.Synthetic(4<<20),
				map[string]string{"kind": "input", "dirty": "0"}, node)
		}
		wg := sim.NewWaitGroup(sys.Env)
		for i := 0; i < 6; i++ {
			wg.Add(1)
			sys.Env.Go(func() {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					if _, err := agent.Reclaim(16 << 20); err != nil {
						if !errors.Is(err, ErrReclaim) {
							t.Errorf("reclaim error %v does not match ErrReclaim", err)
						}
						mu.Lock()
						failed++
						mu.Unlock()
					}
				}
			})
		}
		for i := 0; i < 2; i++ {
			wg.Add(1)
			sys.Env.Go(func() {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					inv.SetCacheGrant(inv.CacheGrant() / 2)
					agent.Grow()
				}
			})
		}
		wg.Wait()
		sys.Env.Stop()
	})
	sys.Env.Run()

	mu.Lock()
	defer mu.Unlock()
	if got := agent.Metrics().ReclaimFailures; got != failed {
		t.Errorf("ReclaimFailures=%d, but %d Reclaim calls returned an error", got, failed)
	}
}
