package core

import (
	"testing"
	"time"

	"ofc/internal/faas"
	"ofc/internal/kvstore"
)

// concurrentColdGets fires n simultaneous Gets of one cold key from
// one worker and returns the RSDS fetch count they caused plus the
// proxy stats.
func concurrentColdGets(t *testing.T, coalesce bool, n int) (rsdsGets int64, stats CacheStats) {
	t.Helper()
	sys := newSystem(5)
	if coalesce {
		sys.RC.EnableMissCoalescing()
	}
	w := sys.WorkerNodes[0]
	errs := make([]error, n)
	sizes := make([]int64, n)
	var before int64
	sys.Run(func() {
		sys.RSDS.Put(sys.CtrlNode, "img/cold", kvstore.Synthetic(64<<10), nil, false)
		before, _, _, _, _ = sys.RSDS.Stats()
		for i := 0; i < n; i++ {
			i := i
			sys.Env.Go(func() {
				var blob faas.Blob
				blob, errs[i] = sys.RC.Get(w, "img/cold", faas.PutOpts{ShouldCache: true, Benefit: 1})
				sizes[i] = blob.Size
			})
		}
		sys.Env.Sleep(5 * time.Second)
	})
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("get %d: %v", i, errs[i])
		}
		if sizes[i] != 64<<10 {
			t.Fatalf("get %d returned %d bytes, want %d", i, sizes[i], 64<<10)
		}
	}
	after, _, _, _, _ := sys.RSDS.Stats()
	return after - before, sys.RC.Stats()
}

// TestMissCoalescing checks the singleflight contract: N concurrent
// misses of one key on one node issue exactly one RSDS fetch, every
// caller still counts its own miss, and the followers are visible in
// MissCoalesced.
func TestMissCoalescing(t *testing.T) {
	gets, stats := concurrentColdGets(t, true, 4)
	if gets != 1 {
		t.Errorf("coalesced: %d RSDS fetches for 4 concurrent misses, want 1", gets)
	}
	if stats.Misses != 4 {
		t.Errorf("coalesced: Misses=%d, want 4 (each caller counts its own)", stats.Misses)
	}
	if stats.MissCoalesced != 3 {
		t.Errorf("coalesced: MissCoalesced=%d, want 3", stats.MissCoalesced)
	}
	if stats.Admissions > 1 {
		t.Errorf("coalesced: Admissions=%d, want at most 1", stats.Admissions)
	}
}

// TestMissCoalescingOffByDefault pins the faithful-paper default:
// without EnableMissCoalescing every miss pays its own RSDS fetch.
func TestMissCoalescingOffByDefault(t *testing.T) {
	gets, stats := concurrentColdGets(t, false, 4)
	if gets != 4 {
		t.Errorf("uncoalesced: %d RSDS fetches for 4 concurrent misses, want 4", gets)
	}
	if stats.MissCoalesced != 0 {
		t.Errorf("uncoalesced: MissCoalesced=%d, want 0", stats.MissCoalesced)
	}
}

// TestGetHitStatsPathZeroAlloc is the allocation regression gate for
// the warm-read bookkeeping: counters, placement attribution and the
// control-plane touch must not allocate.
func TestGetHitStatsPathZeroAlloc(t *testing.T) {
	sys := newSystem(9)
	w := sys.WorkerNodes[0]
	// A real cached object, so the placement lookup and the governor
	// touch both take their full paths.
	sys.Run(func() {
		sys.KV.SetMemoryLimit(w, 1<<30)
		if _, err := sys.Backend.Write(w, "img/hot", kvstore.Synthetic(4<<10), nil, w); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	})
	if _, ok := sys.KV.MasterOf("img/hot"); !ok {
		t.Fatal("seed object has no placement; the test would skip the touch path")
	}
	if n := testing.AllocsPerRun(200, func() { sys.RC.noteGetHit(w, "img/hot", false) }); n != 0 {
		t.Errorf("Get-hit stats path allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { sys.RC.noteGetMiss("img/hot", false) }); n != 0 {
		t.Errorf("Get-miss stats path allocates %v/op, want 0", n)
	}
}
