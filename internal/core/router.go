package core

import (
	"ofc/internal/faas"
	"ofc/internal/kvstore"
)

// Router implements OFC's request routing (§6.5) as a faas.Router.
//
// A warm idle sandbox is always preferred (avoid cold starts); among
// several, selection follows the paper's priority order: (i) smallest
// gap between the sandbox's current memory and the predicted need,
// (ii) available node memory when the sandbox must grow, (iii) data
// locality (node mastering the requested object), (iv) most recently
// used sandbox. When a new sandbox is needed, the node mastering the
// in-memory cached copy of the input object is preferred if it has
// sufficient resources.
type Router struct {
	kv *kvstore.Cluster
}

// NewRouter builds the OFC routing policy over the cache cluster.
func NewRouter(kv *kvstore.Cluster) *Router { return &Router{kv: kv} }

// Route implements faas.Router.
func (r *Router) Route(req *faas.Request, all []*faas.Invoker, warmIdle []*faas.Invoker) *faas.Invoker {
	wanted := req.PredictedMem()
	if wanted == 0 {
		wanted = req.Function.MemoryBooked
	}
	var dataNode = -1
	if len(req.InputKeys) > 0 {
		if m, ok := r.kv.MasterOf(req.InputKeys[0]); ok {
			dataNode = int(m)
		}
	}

	if len(warmIdle) > 0 {
		best := warmIdle[0]
		bestMem, _ := best.IdleSandboxMem(req.Function, wanted)
		for _, cand := range warmIdle[1:] {
			mem, _ := cand.IdleSandboxMem(req.Function, wanted)
			if better(req, wanted, dataNode, cand, mem, best, bestMem) {
				best, bestMem = cand, mem
			}
		}
		return best
	}

	// New sandbox: prefer the node holding the master copy of the
	// input object if it has the resources (counting cache memory the
	// governor can reclaim).
	if dataNode >= 0 {
		for _, inv := range all {
			if int(inv.Node()) == dataNode && inv.Capacity()-inv.Reserved() >= wanted {
				return inv
			}
		}
	}
	// Fall back to the platform's default (home hashing) by returning
	// nil.
	return nil
}

// better applies the §6.5 priority order between two candidate warm
// invokers.
func better(req *faas.Request, wanted int64, dataNode int, cand *faas.Invoker, candMem int64, best *faas.Invoker, bestMem int64) bool {
	// (i) smallest |current - wanted|.
	cGap, bGap := abs64(candMem-wanted), abs64(bestMem-wanted)
	if cGap != bGap {
		return cGap < bGap
	}
	// (ii) available memory if the sandbox must grow.
	if candMem < wanted || bestMem < wanted {
		cFree, bFree := cand.FreeForSandboxes()+cand.CacheGrant(), best.FreeForSandboxes()+best.CacheGrant()
		if cFree != bFree {
			return cFree > bFree
		}
	}
	// (iii) data locality.
	cLocal := int(cand.Node()) == dataNode
	bLocal := int(best.Node()) == dataNode
	if cLocal != bLocal {
		return cLocal
	}
	// (iv) keep the platform's order otherwise (most recently used is
	// already the invoker's internal idle-sandbox preference).
	return false
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
