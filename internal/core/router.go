package core

import (
	"sync"

	"ofc/internal/faas"
	"ofc/internal/store"
)

// Router implements OFC's request routing (§6.5) as a faas.Router.
//
// A warm idle sandbox is always preferred (avoid cold starts); among
// several, selection follows the paper's priority order: (i) smallest
// gap between the sandbox's current memory and the predicted need,
// (ii) available node memory when the sandbox must grow, (iii) data
// locality (node mastering the requested objects), (iv) most recently
// used sandbox. When a new sandbox is needed, the node mastering the
// in-memory cached copy of the input data is preferred if it has
// sufficient resources.
//
// The router sees the cache only through its placement view; it works
// unchanged over any storage engine, and degrades to pure
// capacity-based routing when the engine has no placement (cache-off).
type Router struct {
	pv store.PlacementView // nil when the backend has no placement

	mu       sync.Mutex
	brownout bool
}

// NewRouter builds the OFC routing policy over a placement view (nil
// disables locality).
func NewRouter(pv store.PlacementView) *Router { return &Router{pv: pv} }

// SetBrownout switches locality routing off (on=true) or back on. In
// brownout the data-locality pull concentrates load exactly where
// memory is already contended, so the overload controller trades hit
// locality for load spreading.
func (r *Router) SetBrownout(on bool) {
	r.mu.Lock()
	r.brownout = on
	r.mu.Unlock()
}

// localityOff reports whether the locality pull is suspended.
func (r *Router) localityOff() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.brownout
}

// dataNode returns the node mastering the majority of the request's
// input *bytes* — multi-input functions are pulled toward the node
// where most of their data lives, not wherever the first key happens
// to be. Ties break toward the lowest node ID so routing stays
// deterministic. Returns -1 when nothing is cached.
func (r *Router) dataNode(keys []string) int {
	if r.pv == nil || len(keys) == 0 || r.localityOff() {
		return -1
	}
	weight := make(map[int]int64)
	for _, loc := range r.pv.Locate(keys) {
		if !loc.OK {
			continue
		}
		sz := loc.Size
		if sz < 1 {
			// Zero-sized placements still vote: presence is locality.
			sz = 1
		}
		weight[int(loc.Node)] += sz
	}
	best, bestW := -1, int64(0)
	for node, w := range weight {
		if w > bestW || (w == bestW && best >= 0 && node < best) {
			best, bestW = node, w
		}
	}
	return best
}

// Route implements faas.Router.
func (r *Router) Route(req *faas.Request, all []*faas.Invoker, warmIdle []*faas.Invoker) *faas.Invoker {
	wanted := req.PredictedMem()
	if wanted == 0 {
		wanted = req.Function.MemoryBooked
	}
	dataNode := r.dataNode(req.InputKeys)

	if len(warmIdle) > 0 {
		best := warmIdle[0]
		bestMem, _ := best.IdleSandboxMem(req.Function, wanted)
		for _, cand := range warmIdle[1:] {
			mem, _ := cand.IdleSandboxMem(req.Function, wanted)
			if better(req, wanted, dataNode, cand, mem, best, bestMem) {
				best, bestMem = cand, mem
			}
		}
		return best
	}

	// New sandbox: prefer the node holding the master copy of the
	// input data if it has the resources (counting cache memory the
	// governor can reclaim).
	if dataNode >= 0 {
		for _, inv := range all {
			if int(inv.Node()) == dataNode && inv.Capacity()-inv.Reserved() >= wanted {
				return inv
			}
		}
	}
	// Fall back to the platform's default (home hashing) by returning
	// nil.
	return nil
}

// better applies the §6.5 priority order between two candidate warm
// invokers.
func better(req *faas.Request, wanted int64, dataNode int, cand *faas.Invoker, candMem int64, best *faas.Invoker, bestMem int64) bool {
	// (i) smallest |current - wanted|.
	cGap, bGap := abs64(candMem-wanted), abs64(bestMem-wanted)
	if cGap != bGap {
		return cGap < bGap
	}
	// (ii) available memory if the sandbox must grow.
	if candMem < wanted || bestMem < wanted {
		cFree, bFree := cand.FreeForSandboxes()+cand.CacheGrant(), best.FreeForSandboxes()+best.CacheGrant()
		if cFree != bFree {
			return cFree > bFree
		}
	}
	// (iii) data locality.
	cLocal := int(cand.Node()) == dataNode
	bLocal := int(best.Node()) == dataNode
	if cLocal != bLocal {
		return cLocal
	}
	// (iv) keep the platform's order otherwise (most recently used is
	// already the invoker's internal idle-sandbox preference).
	return false
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
