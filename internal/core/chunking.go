package core

import (
	"fmt"

	"ofc/internal/faas"
	"ofc/internal/simnet"
)

// Arbitrary object sizes — the extension §6.1 leaves for future work.
// When enabled, cacheable objects above the store's per-object ceiling
// are striped across fixed-size chunks ("key#i"), each a regular
// replicated cache object, with a proxy-side manifest. The RSDS always
// holds whole objects: the persistor reassembles the stripes.
//
// Enable with RCLib.EnableChunking; off by default to keep the
// faithful-paper configuration.

const chunkSize = 8 << 20

// chunkManifest records a striped object.
type chunkManifest struct {
	n       int
	size    int64
	version uint64
}

// EnableChunking turns the large-object extension on.
func (rc *RCLib) EnableChunking() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.chunking = true
	if rc.chunked == nil {
		rc.chunked = make(map[string]chunkManifest)
	}
}

func (rc *RCLib) chunkingOn() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.chunking
}

func chunkKey(key string, i int) string { return fmt.Sprintf("%s#%d", key, i) }

// putChunked stripes a large object into the cache and schedules its
// write-back. Returns false when striping failed (caller falls back to
// the synchronous RSDS path).
func (rc *RCLib) putChunked(caller simnet.NodeID, key string, blob faas.Blob, opts faas.PutOpts) bool {
	n := int((blob.Size + chunkSize - 1) / chunkSize)
	var version uint64
	if opts.Kind == faas.KindFinal {
		version = rc.rsds.PutShadow(caller, key, blob.Size)
	}
	written := make([]string, 0, n)
	remaining := blob.Size
	for i := 0; i < n; i++ {
		sz := remaining
		if sz > chunkSize {
			sz = chunkSize
		}
		remaining -= sz
		tags := map[string]string{"kind": "chunk", "of": key, "dirty": "0"}
		if _, err := rc.kv.Write(caller, chunkKey(key, i), faas.Blob{Size: sz}, tags, caller); err != nil {
			for _, k := range written {
				rc.kv.Evict(k)
			}
			return false
		}
		written = append(written, chunkKey(key, i))
	}
	rc.mu.Lock()
	rc.chunked[key] = chunkManifest{n: n, size: blob.Size, version: version}
	rc.mu.Unlock()
	if opts.Kind == faas.KindIntermediate && opts.Pipeline != "" {
		rc.mu.Lock()
		rc.pipelines[opts.Pipeline] = append(rc.pipelines[opts.Pipeline], key)
		rc.mu.Unlock()
		return true
	}
	// Final: persist the reassembled object in the background.
	rc.schedulePersistChunked(key, version, n, blob.Size)
	return true
}

// schedulePersistChunked injects a Persistor that reassembles the
// stripes and pushes the whole payload.
func (rc *RCLib) schedulePersistChunked(key string, version uint64, n int, size int64) {
	rc.mu.Lock()
	if _, ok := rc.pending[key]; !ok {
		rc.pending[key] = newPendingFuture(rc)
	}
	rc.mu.Unlock()
	rc.env.Go(func() {
		rc.platform.Invoke(&faas.Request{
			Function:  rc.persistFn,
			InputKeys: []string{key},
			Args: map[string]float64{
				"version": float64(version),
				"chunks":  float64(n),
				"size":    float64(size),
			},
		})
	})
}

// getChunked reassembles a striped object from the cache; ok is false
// when any stripe is gone (caller falls back to the RSDS).
func (rc *RCLib) getChunked(caller simnet.NodeID, key string) (faas.Blob, bool) {
	rc.mu.Lock()
	m, found := rc.chunked[key]
	rc.mu.Unlock()
	if !found {
		return faas.Blob{}, false
	}
	var total int64
	for i := 0; i < m.n; i++ {
		blob, _, err := rc.kv.Read(caller, chunkKey(key, i))
		if err != nil {
			return faas.Blob{}, false
		}
		total += blob.Size
	}
	return faas.Blob{Size: total}, true
}

// persistChunkedBody handles a Persistor invocation for a striped
// object: read every stripe, push the whole payload, drop the stripes.
func (rc *RCLib) persistChunkedBody(ctx *faas.Ctx, key string, version uint64, n int) error {
	node := ctx.Node()
	var total int64
	for i := 0; i < n; i++ {
		blob, _, err := rc.kv.Read(node, chunkKey(key, i))
		if err != nil {
			rc.resolvePending(key)
			return nil // a stripe vanished; a newer version owns the key
		}
		total += blob.Size
	}
	perr := rc.rsds.PersistPayload(node, key, faas.Blob{Size: total}, version)
	if perr == nil {
		rc.dropChunks(key, n)
		rc.statsMu.Lock()
		rc.writeBacks++
		rc.statsMu.Unlock()
	}
	rc.resolvePending(key)
	return nil
}

// dropChunks evicts every stripe of key and its manifest.
func (rc *RCLib) dropChunks(key string, n int) {
	for i := 0; i < n; i++ {
		rc.kv.Evict(chunkKey(key, i))
	}
	rc.mu.Lock()
	delete(rc.chunked, key)
	rc.mu.Unlock()
}

// evictChunked removes a striped object entirely (pipeline cleanup).
func (rc *RCLib) evictChunked(key string) bool {
	rc.mu.Lock()
	m, found := rc.chunked[key]
	rc.mu.Unlock()
	if !found {
		return false
	}
	rc.dropChunks(key, m.n)
	return true
}

// chunkArgs extracts the chunked-persist parameters from a Persistor
// request, if present.
func chunkArgs(ctx *faas.Ctx) (n int, ok bool) {
	v := ctx.Arg("chunks")
	if v <= 0 {
		return 0, false
	}
	return int(v), true
}
