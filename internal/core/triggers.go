package core

import (
	"strings"
	"sync"
	"time"

	"ofc/internal/faas"
)

// Storage triggers (§2.1: "updates within a given object storage
// bucket" fire functions; §5.1.2: for such invocations the feature
// extraction runs synchronously, the one case it sits on the critical
// path).

// FeatureExtractor derives an object's descriptive features from its
// content (our stand-in for decoding image/audio headers).
type FeatureExtractor func(key string, size int64) map[string]float64

// TriggerRule maps a key prefix to a function.
type triggerRule struct {
	prefix string
	fn     *faas.Function
	args   map[string]float64
}

// Triggers dispatches object-creation events to functions.
type Triggers struct {
	sys *System
	mu  sync.Mutex
	// ExtractionCost is the synchronous feature-extraction charge on
	// the trigger path (§5.1.2).
	ExtractionCost time.Duration
	extractor      FeatureExtractor
	rules          []triggerRule
	fired          int64
}

// NewTriggers wires the trigger dispatcher to the system's RSDS.
func NewTriggers(sys *System, extractor FeatureExtractor) *Triggers {
	t := &Triggers{sys: sys, extractor: extractor, ExtractionCost: 5 * time.Millisecond}
	sys.RSDS.OnCreated(func(key string, size int64) {
		t.dispatch(key, size)
	})
	return t
}

// Register adds a rule: external creations under prefix invoke fn with
// the new object as input.
func (t *Triggers) Register(prefix string, fn *faas.Function, args map[string]float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, triggerRule{prefix: prefix, fn: fn, args: args})
}

// Fired reports how many invocations triggers have launched.
func (t *Triggers) Fired() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

// dispatch fires every matching rule asynchronously.
func (t *Triggers) dispatch(key string, size int64) {
	t.mu.Lock()
	var matched []triggerRule
	for _, r := range t.rules {
		if strings.HasPrefix(key, r.prefix) {
			matched = append(matched, r)
		}
	}
	t.fired += int64(len(matched))
	t.mu.Unlock()
	for _, r := range matched {
		r := r
		t.sys.Env.Go(func() {
			// Synchronous feature extraction on the trigger path
			// (§5.1.2): the object was not pre-annotated, so the
			// platform reads its metadata now.
			t.sys.Env.Sleep(t.ExtractionCost)
			var features map[string]float64
			if t.extractor != nil {
				features = t.extractor(key, size)
				t.sys.RSDS.SetFeatures(key, features)
			}
			t.sys.Platform.Invoke(&faas.Request{
				Function:      r.fn,
				InputKeys:     []string{key},
				Args:          r.args,
				InputFeatures: features,
			})
		})
	}
}
