package core

import (
	"errors"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ofc/internal/faas"
	"ofc/internal/objstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/store"
	"ofc/internal/trace"
)

// RCLib is OFC's Proxy + rclib (paper §4, §6.2): the storage layer
// interposed between function code and the RSDS. Reads are served from
// the cache backend when possible; writes of cacheable objects go to
// the cache with a synchronous shadow placeholder in the RSDS and an
// asynchronous Persistor function carrying the payload later.
//
// The proxy programs against store.Backend, never a concrete engine.
// At construction it assembles its middleware stack over the engine it
// was given:
//
//	Instrumented → Chunked (off by default) → Resilient → engine
//
// A Durable engine (the cache-off RSDS passthrough) skips the
// Resilient layer and the whole shadow/persistor protocol: its writes
// are durable on ack and its reads are not cache hits.
type RCLib struct {
	env  *sim.Env
	rsds *objstore.Store

	// base is the raw storage engine; be is the top of the middleware
	// stack every data-plane op goes through.
	base    store.Backend
	be      store.Backend
	resil   *store.Resilient // nil for durable engines
	chunked *store.Chunked
	inst    *store.Instrumented
	pv      store.PlacementView // nil when the engine has no placement
	durable bool

	// platform is set after construction (the Persistor is itself a
	// FaaS function injected into the platform).
	platform  *faas.Platform
	persistFn *faas.Function

	mu sync.Mutex
	// pipelines tracks intermediate object keys per pipeline instance
	// (control-plane state: only touched at intermediate Put and
	// pipeline completion).
	pipelines map[string][]string

	// pending maps keys to futures resolved when their latest payload
	// has been persisted (external-read webhook barrier). Hash-sharded
	// (the kvstore coordinator pattern): the write-back protocol probes
	// it on every miss and every persist, and a single map lock would
	// serialize the whole data plane.
	pending [rclibShards]pendingShard

	// gate, when set, is the memory control plane's write-admission
	// veto: missed inputs are only admitted into the cache when the
	// owning node's eviction policy agrees, and cache hits are
	// reported back so frequency-keeping policies see accesses. Read
	// on every Get, so it lives behind an atomic pointer, not rc.mu.
	gate atomic.Pointer[gateHolder]
	// relaxed holds key prefixes (buckets/accounts) whose tenants
	// disabled the §6.2 strong-consistency facilities: no shadow
	// objects, no eager persistors; writes propagate lazily on
	// eviction, persistence rides on the cache's replication.
	// Copy-on-write: SetRelaxed is rare, isRelaxed runs per final Put.
	relaxed atomic.Pointer[[]string]
	// brownout is the overload controller's degradation switch: miss
	// admissions stop and non-intermediate writes take the synchronous
	// durable RSDS path (per-request Passthrough/CacheOff), so the
	// cache keeps only its existing hot set and the write path stops
	// depending on cache capacity.
	brownout atomic.Bool

	// tracer records cache.get/cache.put/rsds.fetch spans (nil = off;
	// set before traffic starts). Get/Put branch into their untraced
	// bodies on nil, keeping the warm-hit path's allocation profile.
	tracer *trace.Tracer

	// coalesce enables miss coalescing (EnableMissCoalescing): N
	// concurrent misses of one key on one node issue a single RSDS
	// fetch and at most one admission. Off by default — coalescing
	// changes simulated fetch timing, and the faithful-paper
	// configuration (like chunking) is the uncoalesced one.
	coalesce bool
	flights  [rclibShards]flightShard

	// res holds the resilience constants (the Resilient middleware has
	// its own copy; the proxy keeps one for PersistRetryDelay).
	res store.ResilienceConfig

	// Data-plane counters. Single atomics, not a mutex block: every
	// Get/Put increments a couple of them, and the old statsMu made
	// those increments the one place the whole cache path serialized.
	hits      atomic.Int64
	localHits atomic.Int64
	misses    atomic.Int64
	// Ephemeral (pipeline-intermediate) accesses tracked separately:
	// intra-pipeline hits are structural and would mask the input
	// hit ratio the paper's Table 2 reports.
	ephemHits     atomic.Int64
	ephemMisses   atomic.Int64
	admissions    atomic.Int64
	admitVetoes   atomic.Int64
	writeBacks    atomic.Int64
	bypassWrites  atomic.Int64
	ephemeral     atomic.Int64 // bytes of intermediate+final outputs produced
	missCoalesced atomic.Int64 // followers served by another caller's in-flight fetch
	// degradation counters (retries/timeouts/trips live in the
	// Resilient middleware)
	fallbackReads  atomic.Int64
	fallbackWrites atomic.Int64
	// brownout counters: admissions skipped and writes diverted to the
	// durable path while degraded.
	brownoutSkips    atomic.Int64
	brownoutBypasses atomic.Int64
}

// rclibShards is the hash-partition count of the proxy's pending and
// in-flight maps (the kvstore coordinator default).
const rclibShards = 16

// gateHolder wraps the AdmissionGate interface so it can live in an
// atomic.Pointer.
type gateHolder struct{ g AdmissionGate }

// pendingShard is one hash partition of the pending write-back map.
type pendingShard struct {
	mu sync.Mutex
	m  map[string]*sim.Future[struct{}]
}

// getResult is what a coalesced miss hands its followers.
type getResult struct {
	blob faas.Blob
	err  error
}

// flightKey identifies one in-flight miss fetch: coalescing is per
// (node, key) — each node still fetches its own copy, preserving the
// locality the router works for.
type flightKey struct {
	node simnet.NodeID
	key  string
}

// flightShard is one hash partition of the in-flight miss map.
type flightShard struct {
	mu sync.Mutex
	m  map[flightKey]*sim.Future[getResult]
}

// shardIdx hashes key onto a shard index.
func shardIdx(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % rclibShards)
}

// NewRCLib builds the proxy over a storage engine and the RSDS. Any
// store.Backend works: *kvstore.Cluster for the paper configuration,
// store.NewPassthrough(rsds) for cache-off mode.
func NewRCLib(env *sim.Env, backend store.Backend, rsds *objstore.Store) *RCLib {
	rc := &RCLib{
		env:       env,
		rsds:      rsds,
		base:      backend,
		pipelines: make(map[string][]string),
		res:       store.DefaultResilienceConfig(),
	}
	for i := range rc.pending {
		rc.pending[i].m = make(map[string]*sim.Future[struct{}])
	}
	for i := range rc.flights {
		rc.flights[i].m = make(map[flightKey]*sim.Future[getResult])
	}
	rc.durable = store.IsDurable(backend)
	rc.pv, _ = store.PlacementViewOf(backend)

	// Assemble the middleware stack bottom-up.
	b := backend
	if !rc.durable {
		rc.resil = store.NewResilient(env, b, rc.res)
		b = rc.resil
	}
	rc.chunked = store.NewChunked(b, store.DefaultChunkSize)
	rc.inst = store.NewInstrumented(rc.chunked)
	rc.inst.AttachClock(env)
	rc.be = rc.inst

	// Consistency webhooks for non-FaaS clients (§6.2).
	rsds.OnRead(func(key string, m objstore.Meta) {
		if !m.IsShadow() {
			return
		}
		if f := rc.pendingFuture(key); f != nil {
			f.Wait() // the persistor is already scheduled; block until done
		}
	})
	rsds.OnWrite(func(key string) {
		// Synchronously invalidate the cached copy before an external
		// write lands.
		rc.be.Evict(key)
	})
	return rc
}

// Backend returns the top of the proxy's middleware stack (tests and
// experiment harnesses).
func (rc *RCLib) Backend() store.Backend { return rc.be }

// StoreStats reports the raw backend-operation counters from the
// instrumentation middleware.
func (rc *RCLib) StoreStats() store.OpStats { return rc.inst.Stats() }

// EnableChunking turns the large-object striping extension on (§6.1
// future work; off by default to keep the faithful-paper
// configuration).
func (rc *RCLib) EnableChunking() { rc.chunked.Enable() }

// EnableMissCoalescing turns on singleflight miss fetches: concurrent
// Gets of one missing key on one node share a single RSDS fetch and at
// most one cache admission. Like chunking it is off by default — the
// shared fetch changes simulated timing, so the faithful-paper
// configuration leaves every miss to pay its own RSDS round trip. Call
// before traffic starts.
func (rc *RCLib) EnableMissCoalescing() { rc.coalesce = true }

// SetResilience replaces the proxy's resilience constants. Call before
// traffic starts; existing breaker state is reset.
func (rc *RCLib) SetResilience(cfg ResilienceConfig) {
	rc.mu.Lock()
	rc.res = cfg
	rc.mu.Unlock()
	if rc.resil != nil {
		rc.resil.SetConfig(cfg)
	}
}

// BreakerState exposes one server's breaker for tests and debugging.
func (rc *RCLib) BreakerState(node simnet.NodeID) (failures int, open bool) {
	if rc.resil == nil {
		return 0, false
	}
	return rc.resil.BreakerState(node)
}

// SetRetryGate installs the shared retry budget on the proxy's
// resilience middleware (no-op for durable engines, which never retry).
func (rc *RCLib) SetRetryGate(g store.RetryGate) {
	if rc.resil != nil {
		rc.resil.SetRetryGate(g)
	}
}

// AdmissionGate is the memory control plane's view of the proxy's
// write path (implemented by the Governor, routing to the per-node
// agents' EvictionPolicy). Both calls are pure bookkeeping — no
// simulated time passes inside them.
type AdmissionGate interface {
	// AdmitObject decides whether a missed input may be admitted into
	// node's cache; benefit is the predictor's caching-benefit score.
	AdmitObject(node simnet.NodeID, key string, size int64, benefit float64) bool
	// TouchObject reports a cache hit on an object mastered on node.
	TouchObject(node simnet.NodeID, key string)
}

// SetAdmissionGate installs the control plane's admission veto. Call
// before traffic starts.
func (rc *RCLib) SetAdmissionGate(g AdmissionGate) {
	rc.gate.Store(&gateHolder{g: g})
}

// admissionGate reads the gate (lock-free; it sits on every Get).
func (rc *RCLib) admissionGate() AdmissionGate {
	if h := rc.gate.Load(); h != nil {
		return h.g
	}
	return nil
}

// SetTracer attaches the span recorder. Like EnableMissCoalescing,
// call before traffic starts.
func (rc *RCLib) SetTracer(tr *trace.Tracer) { rc.tracer = tr }

// SetBrownout switches the proxy's degradation mode (see the brownout
// field).
func (rc *RCLib) SetBrownout(on bool) { rc.brownout.Store(on) }

// inBrownout reads the degradation switch.
func (rc *RCLib) inBrownout() bool { return rc.brownout.Load() }

// StoreLatencyP99 reports the p99 of recent backend op latencies (the
// degradation controller's store-health signal).
func (rc *RCLib) StoreLatencyP99() time.Duration {
	return rc.inst.LatencyQuantile(0.99)
}

// persistRetryDelay reads the current retry delay under the lock.
func (rc *RCLib) persistRetryDelay() time.Duration {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.res.PersistRetryDelay
}

// SetRelaxed marks a key prefix (the paper's bucket/object/account
// granularity) as relaxed-consistency (§6.2): cacheable writes under
// it skip the synchronous shadow placeholder and the eager Persistor;
// dirty data reaches the RSDS only when the cacheAgent evicts it.
func (rc *RCLib) SetRelaxed(prefix string) {
	rc.mu.Lock() // serialize concurrent SetRelaxed calls
	defer rc.mu.Unlock()
	var cur []string
	if p := rc.relaxed.Load(); p != nil {
		cur = *p
	}
	next := make([]string, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = prefix
	rc.relaxed.Store(&next)
}

// isRelaxed reports whether key falls under a relaxed prefix
// (lock-free read of the copy-on-write prefix list).
func (rc *RCLib) isRelaxed(key string) bool {
	p := rc.relaxed.Load()
	if p == nil {
		return false
	}
	for _, prefix := range *p {
		if strings.HasPrefix(key, prefix) {
			return true
		}
	}
	return false
}

// AttachPlatform registers the Persistor helper function with the FaaS
// platform (it must be called once before any cacheable write).
func (rc *RCLib) AttachPlatform(p *faas.Platform) {
	rc.platform = p
	rc.persistFn = &faas.Function{
		Name:         "persistor",
		Tenant:       "ofc",
		MemoryBooked: 64 << 20,
		InputType:    "none",
		Body:         rc.persistBody,
	}
	p.Register(rc.persistFn)
}

// persistBody is the Persistor function (§6.2): read the payload from
// the cache, push it to the RSDS for the recorded version, then apply
// the §6.3 discard policy for final outputs. Striped objects
// reassemble transparently inside the chunking middleware.
func (rc *RCLib) persistBody(ctx *faas.Ctx) error {
	ref := ctx.Trace()
	sp := rc.tracer.Begin(ref.Trace, ref.Span, "persist", ctx.Node())
	err := rc.persistOnce(ctx, &sp)
	rc.tracer.End(&sp)
	return err
}

// persistOnce is persistBody's body (the wrapper owns the span).
func (rc *RCLib) persistOnce(ctx *faas.Ctx, sp *trace.Span) error {
	key := ctx.InputKeys()[0]
	version := uint64(ctx.Arg("version"))
	node := ctx.Node()
	blob, meta, err := rc.be.Read(node, key)
	if err != nil {
		if store.IsUnavailable(err) {
			sp.SetNum("rescheduled", 1)
			// The cache is temporarily unreachable. The acknowledged
			// payload survives in backup replicas, so the pending
			// write-back must NOT be resolved — reschedule the persist
			// for after the store has had time to recover.
			rc.env.After(rc.persistRetryDelay(), func() {
				rc.schedulePersist(node, key, version)
			})
			return nil
		}
		// The object vanished (external invalidation); nothing to push.
		sp.SetNum("vanished", 1)
		rc.resolvePending(key)
		return nil
	}
	perr := rc.rsds.PersistPayload(node, key, blob, version)
	if perr == nil {
		if meta.Tags["kind"] == "final" {
			// Final outputs are discarded from the cache as soon as
			// they have been written back (§6.3).
			rc.be.Evict(key)
		} else {
			rc.be.SetTag(node, key, "dirty", "0")
		}
		rc.writeBacks.Add(1)
	}
	// A stale persist means a newer version's persistor owns the key.
	if perr == nil || errors.Is(perr, objstore.ErrStale) {
		if perr != nil {
			sp.SetNum("stale", 1)
		}
		rc.resolvePending(key)
	}
	return nil
}

// pendingFuture reads key's pending write-back future, nil if none.
func (rc *RCLib) pendingFuture(key string) *sim.Future[struct{}] {
	sh := &rc.pending[shardIdx(key)]
	sh.mu.Lock()
	f := sh.m[key]
	sh.mu.Unlock()
	return f
}

// ensurePending installs a pending future for key if none exists.
func (rc *RCLib) ensurePending(key string) {
	sh := &rc.pending[shardIdx(key)]
	sh.mu.Lock()
	if _, ok := sh.m[key]; !ok {
		sh.m[key] = sim.NewFuture[struct{}](rc.env)
	}
	sh.mu.Unlock()
}

func (rc *RCLib) resolvePending(key string) {
	sh := &rc.pending[shardIdx(key)]
	sh.mu.Lock()
	f := sh.m[key]
	delete(sh.m, key)
	sh.mu.Unlock()
	if f != nil && !f.Done() {
		f.Set(struct{}{})
	}
}

// noteGetHit is the Get-hit bookkeeping: counter increments, locality
// attribution and the control plane's access callback. Pure atomics
// plus a placement lookup — no locks, no allocations (the critical
// path pays it on every warm read).
func (rc *RCLib) noteGetHit(caller simnet.NodeID, key string, intermediate bool) {
	rc.hits.Add(1)
	if intermediate {
		rc.ephemHits.Add(1)
	}
	if rc.pv == nil {
		return
	}
	master, ok := rc.pv.MasterOf(key)
	if !ok {
		return
	}
	if master == caller {
		rc.localHits.Add(1)
	}
	if g := rc.admissionGate(); g != nil {
		g.TouchObject(master, key)
	}
}

// noteGetMiss is the Get-miss counter bookkeeping.
func (rc *RCLib) noteGetMiss(key string, unavailable bool) {
	rc.misses.Add(1)
	if unavailable {
		rc.fallbackReads.Add(1)
	}
	if rc.isEphemeralKey(key) {
		rc.ephemMisses.Add(1)
	}
}

// Get implements faas.Storage: cache first, RSDS on miss, with
// admission of cache-worthy inputs. With a durable engine every read
// is an RSDS read and counts as a miss — cache-off mode reports an
// honest zero hit ratio.
func (rc *RCLib) Get(caller simnet.NodeID, key string, opts faas.PutOpts) (faas.Blob, error) {
	if rc.tracer == nil {
		return rc.get(caller, key, opts, nil)
	}
	sp := rc.tracer.Begin(opts.Trace.Trace, opts.Trace.Span, "cache.get", caller)
	blob, err := rc.get(caller, key, opts, &sp)
	if err != nil {
		sp.SetNum("err", 1)
	}
	rc.tracer.End(&sp)
	return blob, err
}

// get is Get's body; sp (nil when tracing is off) collects the probe
// outcome: hit/miss, coalescing role, brownout/veto skips, fallback.
func (rc *RCLib) get(caller simnet.NodeID, key string, opts faas.PutOpts, sp *trace.Span) (faas.Blob, error) {
	if rc.durable {
		blob, _, err := rc.be.Read(caller, key)
		rc.noteGetMiss(key, false)
		sp.SetStr("path", "durable")
		if err != nil {
			return faas.Blob{}, err
		}
		return blob, nil
	}
	blob, meta, err := rc.be.Read(caller, key)
	if err == nil {
		rc.noteGetHit(caller, key, meta.Tags["kind"] == "intermediate")
		sp.SetNum("hit", 1)
		return blob, nil
	}
	unavailable := store.IsUnavailable(err)
	rc.noteGetMiss(key, unavailable)
	sp.SetNum("hit", 0)
	if unavailable {
		sp.SetNum("fallback", 1)
	}
	if rc.coalesce {
		return rc.getCoalesced(caller, key, opts, unavailable, sp)
	}
	res := rc.fetchMiss(caller, key, opts, unavailable, sp)
	return res.blob, res.err
}

// getCoalesced is the singleflight miss path: the first miss of a
// (node, key) becomes the leader and performs the fetch + admission;
// concurrent misses of the same pair wait on the leader's future and
// share its result, issuing no RSDS traffic of their own. Every caller
// still counts its own miss — coalescing changes the fetch fan-out,
// not the hit ratio.
func (rc *RCLib) getCoalesced(caller simnet.NodeID, key string, opts faas.PutOpts, unavailable bool, sp *trace.Span) (faas.Blob, error) {
	fk := flightKey{node: caller, key: key}
	sh := &rc.flights[shardIdx(key)]
	sh.mu.Lock()
	if f, ok := sh.m[fk]; ok {
		sh.mu.Unlock()
		rc.missCoalesced.Add(1)
		sp.SetNum("coalesced", 1)
		res := f.Wait()
		return res.blob, res.err
	}
	f := sim.NewFuture[getResult](rc.env)
	sh.m[fk] = f
	sh.mu.Unlock()

	sp.SetNum("leader", 1)
	res := rc.fetchMiss(caller, key, opts, unavailable, sp)

	sh.mu.Lock()
	delete(sh.m, fk)
	sh.mu.Unlock()
	f.Set(res)
	return res.blob, res.err
}

// fetchMiss fetches key from the RSDS (waiting out a shadow
// placeholder if one is pending) and admits cache-worthy inputs off
// the critical path.
func (rc *RCLib) fetchMiss(caller simnet.NodeID, key string, opts faas.PutOpts, unavailable bool, sp *trace.Span) getResult {
	ref := sp.Ref()
	fsp := rc.tracer.Begin(ref.Trace, ref.Span, "rsds.fetch", caller)
	blob, m, rerr := rc.rsds.Get(caller, key, false)
	if rerr == nil && m.IsShadow() {
		// The authoritative payload is a not-yet-persisted cache write
		// (we got here because the cache is unreachable). Wait for the
		// pending write-back — the Persistor retries until the cache
		// recovers — then re-read the now-persisted payload.
		if f := rc.pendingFuture(key); f != nil {
			fsp.SetNum("shadowWait", 1)
			f.Wait()
			blob, _, rerr = rc.rsds.Get(caller, key, false)
		}
	}
	if rerr != nil {
		fsp.SetNum("err", 1)
		rc.tracer.End(&fsp)
		return getResult{err: rerr}
	}
	rc.tracer.End(&fsp)
	if opts.ShouldCache && rc.inBrownout() {
		// Brownout: no new admissions — the cache serves (and keeps)
		// only what it already holds.
		rc.brownoutSkips.Add(1)
		sp.SetNum("brownoutSkip", 1)
		return getResult{blob: blob}
	}
	if opts.ShouldCache && !unavailable && blob.Size <= rc.base.MaxObjectSize() {
		// Admit off the critical path; a failed admission (no space)
		// is only a lost opportunity. Skipped while the cache is
		// unavailable — the breaker decides when to come back. The
		// admission ceiling is the engine's raw per-object limit:
		// missed inputs are not striped. The control plane's eviction
		// policy holds a veto (the paper's policy always admits).
		if g := rc.admissionGate(); g != nil && !g.AdmitObject(caller, key, blob.Size, opts.Benefit) {
			rc.admitVetoes.Add(1)
			sp.SetNum("veto", 1)
			return getResult{blob: blob}
		}
		rc.env.Go(func() {
			// Off-critical-path admission: a control-plane root span
			// (the issuing invocation may already have completed).
			asp := rc.tracer.Begin(0, 0, "cache.admit", caller)
			_, werr := rc.be.Write(caller, key, blob, map[string]string{"kind": "input", "dirty": "0"}, caller)
			if werr == nil {
				rc.admissions.Add(1)
			} else {
				asp.SetNum("err", 1)
			}
			rc.tracer.End(&asp)
		})
	}
	return getResult{blob: blob}
}

// Put implements faas.Storage (§6.2, §6.3):
//   - uncacheable objects go straight to the RSDS;
//   - pipeline intermediates live only in the cache (never persisted);
//   - final outputs get a synchronous shadow placeholder in the RSDS,
//     land in the cache, and a Persistor function is injected to push
//     the payload asynchronously (write-back).
//
// With the chunking middleware enabled the backend's logical ceiling
// is effectively unbounded, so oversized cacheable objects take the
// ordinary cache paths and stripe transparently below. With a durable
// engine every write is a synchronous write-through.
func (rc *RCLib) Put(caller simnet.NodeID, key string, blob faas.Blob, opts faas.PutOpts) error {
	if rc.tracer == nil {
		return rc.put(caller, key, blob, opts, nil)
	}
	sp := rc.tracer.Begin(opts.Trace.Trace, opts.Trace.Span, "cache.put", caller)
	err := rc.put(caller, key, blob, opts, &sp)
	if err != nil {
		sp.SetNum("err", 1)
	}
	rc.tracer.End(&sp)
	return err
}

// put is Put's body; sp (nil when tracing is off) records which of the
// §6.2/§6.3 write paths the object took.
func (rc *RCLib) put(caller simnet.NodeID, key string, blob faas.Blob, opts faas.PutOpts, sp *trace.Span) error {
	if opts.Kind != faas.KindInput {
		rc.ephemeral.Add(blob.Size)
	}
	if rc.durable {
		// Durable engine: the ack IS persistence. No shadow, no
		// persistor, no dirty state.
		sp.SetStr("path", "durable")
		_, err := rc.be.Write(caller, key, blob, nil, caller)
		rc.bypassWrites.Add(1)
		return err
	}
	maxObj := rc.be.MaxObjectSize()
	// Brownout: non-intermediate writes take the synchronous durable
	// RSDS path — per-request CacheOff. Durable on ack, no shadow, no
	// persistor, no cache capacity consumed. Intermediates stay on the
	// cache path: they are never persisted and pushing them to the
	// RSDS would cost more than it frees.
	if opts.Kind != faas.KindIntermediate && rc.inBrownout() {
		sp.SetStr("path", "brownout")
		rc.rsds.Put(caller, key, blob, nil, false)
		rc.bypassWrites.Add(1)
		rc.brownoutBypasses.Add(1)
		return nil
	}
	// Pipeline intermediates are cached regardless of the benefit
	// verdict (§6.3 presumes they live in the cache and are discarded
	// when the pipeline ends); everything else respects the Predictor.
	if opts.Kind != faas.KindIntermediate &&
		(!opts.ShouldCache || blob.Size > maxObj) {
		sp.SetStr("path", "bypass")
		rc.rsds.Put(caller, key, blob, nil, false)
		rc.bypassWrites.Add(1)
		return nil
	}
	if opts.Kind == faas.KindIntermediate {
		sp.SetStr("path", "intermediate")
		if blob.Size > maxObj {
			sp.SetNum("bypass", 1)
			rc.rsds.Put(caller, key, blob, nil, false)
			rc.bypassWrites.Add(1)
			return nil
		}
		_, err := rc.be.Write(caller, key, blob, map[string]string{
			"kind": "intermediate", "pipeline": opts.Pipeline, "dirty": "0",
		}, caller)
		if err != nil {
			// Cache full or unreachable: fall back to the RSDS
			// (transparently slower).
			rc.countWriteFallback(err)
			sp.SetNum("fallback", 1)
			rc.rsds.Put(caller, key, blob, nil, false)
			return nil
		}
		if opts.Pipeline != "" {
			rc.mu.Lock()
			rc.pipelines[opts.Pipeline] = append(rc.pipelines[opts.Pipeline], key)
			rc.mu.Unlock()
		}
		return nil
	}
	if rc.isRelaxed(key) {
		// §6.2 relaxed mode: cache-resident, lazily written back. The
		// version tag 0 makes WriteBackNow use a plain Put.
		sp.SetStr("path", "relaxed")
		_, err := rc.be.Write(caller, key, blob, map[string]string{
			"kind": "final", "dirty": "1", "version": "0",
		}, caller)
		if err != nil {
			rc.countWriteFallback(err)
			sp.SetNum("fallback", 1)
			rc.rsds.Put(caller, key, blob, nil, false)
		}
		return nil
	}
	// Final output: shadow + cache + async persist.
	sp.SetStr("path", "writeback")
	version := rc.rsds.PutShadow(caller, key, blob.Size)
	_, err := rc.be.Write(caller, key, blob, map[string]string{
		"kind": "final", "dirty": "1", "version": strconv.FormatUint(version, 10),
	}, caller)
	if err != nil {
		// No cache room or cache unreachable: persist synchronously
		// (the vanilla write-through path). The shadow version keeps
		// ordering with any concurrent persistors.
		rc.countWriteFallback(err)
		sp.SetNum("fallback", 1)
		return rc.rsds.PersistPayload(caller, key, blob, version)
	}
	rc.schedulePersist(caller, key, version)
	return nil
}

// countWriteFallback records a cache-write fallback to the RSDS when
// the cause was unavailability (capacity misses are the ordinary
// bypass path, not degradation).
func (rc *RCLib) countWriteFallback(err error) {
	if store.IsUnavailable(err) {
		rc.fallbackWrites.Add(1)
	}
}

// schedulePersist injects a Persistor invocation for (key, version).
func (rc *RCLib) schedulePersist(node simnet.NodeID, key string, version uint64) {
	rc.ensurePending(key)
	rc.env.Go(func() {
		r := rc.platform.Invoke(&faas.Request{
			Function:  rc.persistFn,
			InputKeys: []string{key},
			Args:      map[string]float64{"version": float64(version)},
		})
		if r != nil && r.Err != nil {
			// The Persistor invocation itself failed (e.g. it was routed
			// to the dying master for locality). The acked payload still
			// lives in backup replicas — retry until persistBody gets to
			// run and decide.
			rc.env.After(rc.persistRetryDelay(), func() {
				rc.schedulePersist(node, key, version)
			})
		}
	})
}

// Delete implements faas.Storage.
func (rc *RCLib) Delete(caller simnet.NodeID, key string) error {
	rc.be.Evict(key)
	return rc.rsds.Delete(caller, key, false)
}

// isEphemeralKey reports whether key belongs to a live pipeline's
// intermediates (callers hold statsMu; the pipelines map has its own
// lock discipline via rc.mu, so read without it here is avoided by
// checking the conventional prefix the pipelines use).
func (rc *RCLib) isEphemeralKey(key string) bool {
	return strings.HasPrefix(key, "pl/")
}

// PipelineDone implements faas.PipelineAware: intermediate objects of
// the pipeline are removed from the cache (not persisted) once the
// pipeline completes (§6.3). Evicting a striped object drops every
// stripe inside the chunking middleware.
func (rc *RCLib) PipelineDone(pipeline string) {
	rc.mu.Lock()
	keys := rc.pipelines[pipeline]
	delete(rc.pipelines, pipeline)
	rc.mu.Unlock()
	for _, key := range keys {
		rc.be.Evict(key)
	}
}

// WriteBackNow synchronously persists one dirty cached object (used by
// the CacheAgent when reclaiming space). Returns false when the object
// is not dirty or vanished.
func (rc *RCLib) WriteBackNow(node simnet.NodeID, key string) bool {
	sp := rc.tracer.Begin(0, 0, "cache.writeback", node)
	ok := rc.writeBackNow(node, key)
	if ok {
		sp.SetNum("ok", 1)
	} else {
		sp.SetNum("ok", 0)
	}
	rc.tracer.End(&sp)
	return ok
}

// writeBackNow is WriteBackNow's body (the wrapper owns the span).
func (rc *RCLib) writeBackNow(node simnet.NodeID, key string) bool {
	blob, meta, err := rc.be.Read(node, key)
	if err != nil || meta.Tags["dirty"] != "1" {
		return false
	}
	version, _ := strconv.ParseUint(meta.Tags["version"], 10, 64)
	if version == 0 {
		// Relaxed-mode object: no shadow was created; plain put.
		rc.rsds.Put(node, key, blob, nil, false)
	} else if perr := rc.rsds.PersistPayload(node, key, blob, version); perr != nil {
		if errors.Is(perr, objstore.ErrStale) {
			// An equal or newer version is already persisted; the
			// cached copy is effectively clean and must not overwrite
			// the store.
			rc.be.SetTag(node, key, "dirty", "0")
			rc.resolvePending(key)
		}
		return false
	}
	rc.writeBacks.Add(1)
	rc.resolvePending(key)
	return true
}

// EstimateRSDS returns the modeled uncached Extract/Load cost of ops
// accesses moving size bytes in total, for caching-benefit labels when
// the real access was served from the cache.
func (rc *RCLib) EstimateRSDS(ops, size int64, write bool) time.Duration {
	if ops < 1 {
		ops = 1
	}
	p := rc.rsds.Profile()
	if write {
		return time.Duration(ops)*p.WriteBase + time.Duration(float64(size)/p.WriteBW*float64(time.Second))
	}
	return time.Duration(ops)*p.ReadBase + time.Duration(float64(size)/p.ReadBW*float64(time.Second))
}

// CacheStats reports proxy counters.
type CacheStats struct {
	Hits, LocalHits, Misses int64
	EphemHits, EphemMisses  int64
	Admissions, WriteBacks  int64
	// AdmitVetoes counts miss-admissions the control plane's eviction
	// policy refused (always zero under the paper's policy).
	AdmitVetoes  int64
	BypassWrites int64
	// MissCoalesced counts misses served by another caller's in-flight
	// fetch (zero unless EnableMissCoalescing).
	MissCoalesced  int64
	EphemeralBytes int64
	// Degradation counters: RSDS fallbacks taken because the cache
	// was unavailable, cache-op retries/timeouts, and circuit-breaker
	// trips.
	FallbackReads  int64
	FallbackWrites int64
	CacheRetries   int64
	CacheTimeouts  int64
	BreakerTrips   int64
	// Overload-control counters: storage retries the budget refused,
	// admissions skipped and writes diverted while in brownout.
	RetryDenied      int64
	BrownoutSkips    int64
	BrownoutBypasses int64
}

// Stats returns a snapshot of the proxy counters. Each counter is a
// single atomic load; in the simulator's serialized event loop (and at
// any quiescent point in real time) the loads are mutually coherent —
// there is no cross-counter invariant a torn read could violate, since
// every increment site bumps at most one ratio-relevant counter per
// event.
func (rc *RCLib) Stats() CacheStats {
	var rs store.ResilienceStats
	if rc.resil != nil {
		rs = rc.resil.Stats()
	}
	return CacheStats{
		Hits: rc.hits.Load(), LocalHits: rc.localHits.Load(), Misses: rc.misses.Load(),
		EphemHits: rc.ephemHits.Load(), EphemMisses: rc.ephemMisses.Load(),
		Admissions: rc.admissions.Load(), WriteBacks: rc.writeBacks.Load(),
		AdmitVetoes:   rc.admitVetoes.Load(),
		BypassWrites:  rc.bypassWrites.Load(),
		MissCoalesced: rc.missCoalesced.Load(), EphemeralBytes: rc.ephemeral.Load(),
		FallbackReads: rc.fallbackReads.Load(), FallbackWrites: rc.fallbackWrites.Load(),
		CacheRetries: rs.Retries, CacheTimeouts: rs.Timeouts,
		BreakerTrips: rs.BreakerTrips, RetryDenied: rs.BudgetDenied,
		BrownoutSkips: rc.brownoutSkips.Load(), BrownoutBypasses: rc.brownoutBypasses.Load(),
	}
}

// InputHitRatio is the hit ratio over non-pipeline-intermediate
// accesses — the quantity that collapses in the 24-tenant run.
func (rc *RCLib) InputHitRatio() float64 {
	hits := rc.hits.Load() - rc.ephemHits.Load()
	total := hits + rc.misses.Load() - rc.ephemMisses.Load()
	if total <= 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// HitRatio returns hits/(hits+misses), or 0 with no traffic.
func (rc *RCLib) HitRatio() float64 {
	hits := rc.hits.Load()
	total := hits + rc.misses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
