package core

import (
	"errors"
	"strconv"
	"strings"
	"sync"
	"time"

	"ofc/internal/faas"
	"ofc/internal/objstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/store"
)

// RCLib is OFC's Proxy + rclib (paper §4, §6.2): the storage layer
// interposed between function code and the RSDS. Reads are served from
// the cache backend when possible; writes of cacheable objects go to
// the cache with a synchronous shadow placeholder in the RSDS and an
// asynchronous Persistor function carrying the payload later.
//
// The proxy programs against store.Backend, never a concrete engine.
// At construction it assembles its middleware stack over the engine it
// was given:
//
//	Instrumented → Chunked (off by default) → Resilient → engine
//
// A Durable engine (the cache-off RSDS passthrough) skips the
// Resilient layer and the whole shadow/persistor protocol: its writes
// are durable on ack and its reads are not cache hits.
type RCLib struct {
	env  *sim.Env
	rsds *objstore.Store

	// base is the raw storage engine; be is the top of the middleware
	// stack every data-plane op goes through.
	base    store.Backend
	be      store.Backend
	resil   *store.Resilient // nil for durable engines
	chunked *store.Chunked
	inst    *store.Instrumented
	pv      store.PlacementView // nil when the engine has no placement
	durable bool

	// platform is set after construction (the Persistor is itself a
	// FaaS function injected into the platform).
	platform  *faas.Platform
	persistFn *faas.Function

	mu sync.Mutex
	// pending maps keys to futures resolved when their latest payload
	// has been persisted (external-read webhook barrier).
	pending map[string]*sim.Future[struct{}]
	// pipelines tracks intermediate object keys per pipeline instance.
	pipelines map[string][]string
	// gate, when set, is the memory control plane's write-admission
	// veto: missed inputs are only admitted into the cache when the
	// owning node's eviction policy agrees, and cache hits are
	// reported back so frequency-keeping policies see accesses.
	gate AdmissionGate
	// relaxed holds key prefixes (buckets/accounts) whose tenants
	// disabled the §6.2 strong-consistency facilities: no shadow
	// objects, no eager persistors; writes propagate lazily on
	// eviction, persistence rides on the cache's replication.
	relaxed []string
	// brownout is the overload controller's degradation switch: miss
	// admissions stop and non-intermediate writes take the synchronous
	// durable RSDS path (per-request Passthrough/CacheOff), so the
	// cache keeps only its existing hot set and the write path stops
	// depending on cache capacity.
	brownout bool

	// res holds the resilience constants (the Resilient middleware has
	// its own copy; the proxy keeps one for PersistRetryDelay).
	res store.ResilienceConfig

	statsMu   sync.Mutex
	hits      int64
	localHits int64
	misses    int64
	// Ephemeral (pipeline-intermediate) accesses tracked separately:
	// intra-pipeline hits are structural and would mask the input
	// hit ratio the paper's Table 2 reports.
	ephemHits    int64
	ephemMisses  int64
	admissions   int64
	admitVetoes  int64
	writeBacks   int64
	bypassWrites int64
	ephemeral    int64 // bytes of intermediate+final outputs produced
	// degradation counters (retries/timeouts/trips live in the
	// Resilient middleware)
	fallbackReads  int64
	fallbackWrites int64
	// brownout counters: admissions skipped and writes diverted to the
	// durable path while degraded.
	brownoutSkips    int64
	brownoutBypasses int64
}

// NewRCLib builds the proxy over a storage engine and the RSDS. Any
// store.Backend works: *kvstore.Cluster for the paper configuration,
// store.NewPassthrough(rsds) for cache-off mode.
func NewRCLib(env *sim.Env, backend store.Backend, rsds *objstore.Store) *RCLib {
	rc := &RCLib{
		env:       env,
		rsds:      rsds,
		base:      backend,
		pending:   make(map[string]*sim.Future[struct{}]),
		pipelines: make(map[string][]string),
		res:       store.DefaultResilienceConfig(),
	}
	rc.durable = store.IsDurable(backend)
	rc.pv, _ = store.PlacementViewOf(backend)

	// Assemble the middleware stack bottom-up.
	b := backend
	if !rc.durable {
		rc.resil = store.NewResilient(env, b, rc.res)
		b = rc.resil
	}
	rc.chunked = store.NewChunked(b, store.DefaultChunkSize)
	rc.inst = store.NewInstrumented(rc.chunked)
	rc.inst.AttachClock(env)
	rc.be = rc.inst

	// Consistency webhooks for non-FaaS clients (§6.2).
	rsds.OnRead(func(key string, m objstore.Meta) {
		if !m.IsShadow() {
			return
		}
		rc.mu.Lock()
		f := rc.pending[key]
		rc.mu.Unlock()
		if f != nil {
			f.Wait() // the persistor is already scheduled; block until done
		}
	})
	rsds.OnWrite(func(key string) {
		// Synchronously invalidate the cached copy before an external
		// write lands.
		rc.be.Evict(key)
	})
	return rc
}

// Backend returns the top of the proxy's middleware stack (tests and
// experiment harnesses).
func (rc *RCLib) Backend() store.Backend { return rc.be }

// StoreStats reports the raw backend-operation counters from the
// instrumentation middleware.
func (rc *RCLib) StoreStats() store.OpStats { return rc.inst.Stats() }

// EnableChunking turns the large-object striping extension on (§6.1
// future work; off by default to keep the faithful-paper
// configuration).
func (rc *RCLib) EnableChunking() { rc.chunked.Enable() }

// SetResilience replaces the proxy's resilience constants. Call before
// traffic starts; existing breaker state is reset.
func (rc *RCLib) SetResilience(cfg ResilienceConfig) {
	rc.mu.Lock()
	rc.res = cfg
	rc.mu.Unlock()
	if rc.resil != nil {
		rc.resil.SetConfig(cfg)
	}
}

// BreakerState exposes one server's breaker for tests and debugging.
func (rc *RCLib) BreakerState(node simnet.NodeID) (failures int, open bool) {
	if rc.resil == nil {
		return 0, false
	}
	return rc.resil.BreakerState(node)
}

// SetRetryGate installs the shared retry budget on the proxy's
// resilience middleware (no-op for durable engines, which never retry).
func (rc *RCLib) SetRetryGate(g store.RetryGate) {
	if rc.resil != nil {
		rc.resil.SetRetryGate(g)
	}
}

// AdmissionGate is the memory control plane's view of the proxy's
// write path (implemented by the Governor, routing to the per-node
// agents' EvictionPolicy). Both calls are pure bookkeeping — no
// simulated time passes inside them.
type AdmissionGate interface {
	// AdmitObject decides whether a missed input may be admitted into
	// node's cache; benefit is the predictor's caching-benefit score.
	AdmitObject(node simnet.NodeID, key string, size int64, benefit float64) bool
	// TouchObject reports a cache hit on an object mastered on node.
	TouchObject(node simnet.NodeID, key string)
}

// SetAdmissionGate installs the control plane's admission veto. Call
// before traffic starts.
func (rc *RCLib) SetAdmissionGate(g AdmissionGate) {
	rc.mu.Lock()
	rc.gate = g
	rc.mu.Unlock()
}

// admissionGate reads the gate under the lock.
func (rc *RCLib) admissionGate() AdmissionGate {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.gate
}

// SetBrownout switches the proxy's degradation mode (see the brownout
// field).
func (rc *RCLib) SetBrownout(on bool) {
	rc.mu.Lock()
	rc.brownout = on
	rc.mu.Unlock()
}

// inBrownout reads the degradation switch.
func (rc *RCLib) inBrownout() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.brownout
}

// StoreLatencyP99 reports the p99 of recent backend op latencies (the
// degradation controller's store-health signal).
func (rc *RCLib) StoreLatencyP99() time.Duration {
	return rc.inst.LatencyQuantile(0.99)
}

// persistRetryDelay reads the current retry delay under the lock.
func (rc *RCLib) persistRetryDelay() time.Duration {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.res.PersistRetryDelay
}

// SetRelaxed marks a key prefix (the paper's bucket/object/account
// granularity) as relaxed-consistency (§6.2): cacheable writes under
// it skip the synchronous shadow placeholder and the eager Persistor;
// dirty data reaches the RSDS only when the cacheAgent evicts it.
func (rc *RCLib) SetRelaxed(prefix string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.relaxed = append(rc.relaxed, prefix)
}

// isRelaxed reports whether key falls under a relaxed prefix.
func (rc *RCLib) isRelaxed(key string) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, p := range rc.relaxed {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// AttachPlatform registers the Persistor helper function with the FaaS
// platform (it must be called once before any cacheable write).
func (rc *RCLib) AttachPlatform(p *faas.Platform) {
	rc.platform = p
	rc.persistFn = &faas.Function{
		Name:         "persistor",
		Tenant:       "ofc",
		MemoryBooked: 64 << 20,
		InputType:    "none",
		Body:         rc.persistBody,
	}
	p.Register(rc.persistFn)
}

// persistBody is the Persistor function (§6.2): read the payload from
// the cache, push it to the RSDS for the recorded version, then apply
// the §6.3 discard policy for final outputs. Striped objects
// reassemble transparently inside the chunking middleware.
func (rc *RCLib) persistBody(ctx *faas.Ctx) error {
	key := ctx.InputKeys()[0]
	version := uint64(ctx.Arg("version"))
	node := ctx.Node()
	blob, meta, err := rc.be.Read(node, key)
	if err != nil {
		if store.IsUnavailable(err) {
			// The cache is temporarily unreachable. The acknowledged
			// payload survives in backup replicas, so the pending
			// write-back must NOT be resolved — reschedule the persist
			// for after the store has had time to recover.
			rc.env.After(rc.persistRetryDelay(), func() {
				rc.schedulePersist(node, key, version)
			})
			return nil
		}
		// The object vanished (external invalidation); nothing to push.
		rc.resolvePending(key)
		return nil
	}
	perr := rc.rsds.PersistPayload(node, key, blob, version)
	if perr == nil {
		if meta.Tags["kind"] == "final" {
			// Final outputs are discarded from the cache as soon as
			// they have been written back (§6.3).
			rc.be.Evict(key)
		} else {
			rc.be.SetTag(node, key, "dirty", "0")
		}
		rc.statsMu.Lock()
		rc.writeBacks++
		rc.statsMu.Unlock()
	}
	// A stale persist means a newer version's persistor owns the key.
	if perr == nil || errors.Is(perr, objstore.ErrStale) {
		rc.resolvePending(key)
	}
	return nil
}

func (rc *RCLib) resolvePending(key string) {
	rc.mu.Lock()
	f := rc.pending[key]
	delete(rc.pending, key)
	rc.mu.Unlock()
	if f != nil && !f.Done() {
		f.Set(struct{}{})
	}
}

// Get implements faas.Storage: cache first, RSDS on miss, with
// admission of cache-worthy inputs. With a durable engine every read
// is an RSDS read and counts as a miss — cache-off mode reports an
// honest zero hit ratio.
func (rc *RCLib) Get(caller simnet.NodeID, key string, opts faas.PutOpts) (faas.Blob, error) {
	if rc.durable {
		blob, _, err := rc.be.Read(caller, key)
		rc.statsMu.Lock()
		rc.misses++
		if rc.isEphemeralKey(key) {
			rc.ephemMisses++
		}
		rc.statsMu.Unlock()
		if err != nil {
			return faas.Blob{}, err
		}
		return blob, nil
	}
	blob, meta, err := rc.be.Read(caller, key)
	if err == nil {
		rc.statsMu.Lock()
		rc.hits++
		if meta.Tags["kind"] == "intermediate" {
			rc.ephemHits++
		}
		var master simnet.NodeID
		haveMaster := false
		if rc.pv != nil {
			if m, ok := rc.pv.MasterOf(key); ok {
				master, haveMaster = m, true
				if m == caller {
					rc.localHits++
				}
			}
		}
		rc.statsMu.Unlock()
		if haveMaster {
			if g := rc.admissionGate(); g != nil {
				g.TouchObject(master, key)
			}
		}
		return blob, nil
	}
	unavailable := store.IsUnavailable(err)
	rc.statsMu.Lock()
	rc.misses++
	if unavailable {
		rc.fallbackReads++
	}
	if rc.isEphemeralKey(key) {
		rc.ephemMisses++
	}
	rc.statsMu.Unlock()
	blob, m, rerr := rc.rsds.Get(caller, key, false)
	if rerr == nil && m.IsShadow() {
		// The authoritative payload is a not-yet-persisted cache write
		// (we got here because the cache is unreachable). Wait for the
		// pending write-back — the Persistor retries until the cache
		// recovers — then re-read the now-persisted payload.
		rc.mu.Lock()
		f := rc.pending[key]
		rc.mu.Unlock()
		if f != nil {
			f.Wait()
			blob, _, rerr = rc.rsds.Get(caller, key, false)
		}
	}
	if rerr != nil {
		return faas.Blob{}, rerr
	}
	if opts.ShouldCache && rc.inBrownout() {
		// Brownout: no new admissions — the cache serves (and keeps)
		// only what it already holds.
		rc.statsMu.Lock()
		rc.brownoutSkips++
		rc.statsMu.Unlock()
		return blob, nil
	}
	if opts.ShouldCache && !unavailable && blob.Size <= rc.base.MaxObjectSize() {
		// Admit off the critical path; a failed admission (no space)
		// is only a lost opportunity. Skipped while the cache is
		// unavailable — the breaker decides when to come back. The
		// admission ceiling is the engine's raw per-object limit:
		// missed inputs are not striped. The control plane's eviction
		// policy holds a veto (the paper's policy always admits).
		if g := rc.admissionGate(); g != nil && !g.AdmitObject(caller, key, blob.Size, opts.Benefit) {
			rc.statsMu.Lock()
			rc.admitVetoes++
			rc.statsMu.Unlock()
			return blob, nil
		}
		rc.env.Go(func() {
			_, werr := rc.be.Write(caller, key, blob, map[string]string{"kind": "input", "dirty": "0"}, caller)
			if werr == nil {
				rc.statsMu.Lock()
				rc.admissions++
				rc.statsMu.Unlock()
			}
		})
	}
	return blob, nil
}

// Put implements faas.Storage (§6.2, §6.3):
//   - uncacheable objects go straight to the RSDS;
//   - pipeline intermediates live only in the cache (never persisted);
//   - final outputs get a synchronous shadow placeholder in the RSDS,
//     land in the cache, and a Persistor function is injected to push
//     the payload asynchronously (write-back).
//
// With the chunking middleware enabled the backend's logical ceiling
// is effectively unbounded, so oversized cacheable objects take the
// ordinary cache paths and stripe transparently below. With a durable
// engine every write is a synchronous write-through.
func (rc *RCLib) Put(caller simnet.NodeID, key string, blob faas.Blob, opts faas.PutOpts) error {
	rc.statsMu.Lock()
	if opts.Kind != faas.KindInput {
		rc.ephemeral += blob.Size
	}
	rc.statsMu.Unlock()
	if rc.durable {
		// Durable engine: the ack IS persistence. No shadow, no
		// persistor, no dirty state.
		_, err := rc.be.Write(caller, key, blob, nil, caller)
		rc.statsMu.Lock()
		rc.bypassWrites++
		rc.statsMu.Unlock()
		return err
	}
	maxObj := rc.be.MaxObjectSize()
	// Brownout: non-intermediate writes take the synchronous durable
	// RSDS path — per-request CacheOff. Durable on ack, no shadow, no
	// persistor, no cache capacity consumed. Intermediates stay on the
	// cache path: they are never persisted and pushing them to the
	// RSDS would cost more than it frees.
	if opts.Kind != faas.KindIntermediate && rc.inBrownout() {
		rc.rsds.Put(caller, key, blob, nil, false)
		rc.statsMu.Lock()
		rc.bypassWrites++
		rc.brownoutBypasses++
		rc.statsMu.Unlock()
		return nil
	}
	// Pipeline intermediates are cached regardless of the benefit
	// verdict (§6.3 presumes they live in the cache and are discarded
	// when the pipeline ends); everything else respects the Predictor.
	if opts.Kind != faas.KindIntermediate &&
		(!opts.ShouldCache || blob.Size > maxObj) {
		rc.rsds.Put(caller, key, blob, nil, false)
		rc.statsMu.Lock()
		rc.bypassWrites++
		rc.statsMu.Unlock()
		return nil
	}
	if opts.Kind == faas.KindIntermediate {
		if blob.Size > maxObj {
			rc.rsds.Put(caller, key, blob, nil, false)
			rc.statsMu.Lock()
			rc.bypassWrites++
			rc.statsMu.Unlock()
			return nil
		}
		_, err := rc.be.Write(caller, key, blob, map[string]string{
			"kind": "intermediate", "pipeline": opts.Pipeline, "dirty": "0",
		}, caller)
		if err != nil {
			// Cache full or unreachable: fall back to the RSDS
			// (transparently slower).
			rc.countWriteFallback(err)
			rc.rsds.Put(caller, key, blob, nil, false)
			return nil
		}
		if opts.Pipeline != "" {
			rc.mu.Lock()
			rc.pipelines[opts.Pipeline] = append(rc.pipelines[opts.Pipeline], key)
			rc.mu.Unlock()
		}
		return nil
	}
	if rc.isRelaxed(key) {
		// §6.2 relaxed mode: cache-resident, lazily written back. The
		// version tag 0 makes WriteBackNow use a plain Put.
		_, err := rc.be.Write(caller, key, blob, map[string]string{
			"kind": "final", "dirty": "1", "version": "0",
		}, caller)
		if err != nil {
			rc.countWriteFallback(err)
			rc.rsds.Put(caller, key, blob, nil, false)
		}
		return nil
	}
	// Final output: shadow + cache + async persist.
	version := rc.rsds.PutShadow(caller, key, blob.Size)
	_, err := rc.be.Write(caller, key, blob, map[string]string{
		"kind": "final", "dirty": "1", "version": strconv.FormatUint(version, 10),
	}, caller)
	if err != nil {
		// No cache room or cache unreachable: persist synchronously
		// (the vanilla write-through path). The shadow version keeps
		// ordering with any concurrent persistors.
		rc.countWriteFallback(err)
		return rc.rsds.PersistPayload(caller, key, blob, version)
	}
	rc.schedulePersist(caller, key, version)
	return nil
}

// countWriteFallback records a cache-write fallback to the RSDS when
// the cause was unavailability (capacity misses are the ordinary
// bypass path, not degradation).
func (rc *RCLib) countWriteFallback(err error) {
	if !store.IsUnavailable(err) {
		return
	}
	rc.statsMu.Lock()
	rc.fallbackWrites++
	rc.statsMu.Unlock()
}

// schedulePersist injects a Persistor invocation for (key, version).
func (rc *RCLib) schedulePersist(node simnet.NodeID, key string, version uint64) {
	rc.mu.Lock()
	if _, ok := rc.pending[key]; !ok {
		rc.pending[key] = sim.NewFuture[struct{}](rc.env)
	}
	rc.mu.Unlock()
	rc.env.Go(func() {
		r := rc.platform.Invoke(&faas.Request{
			Function:  rc.persistFn,
			InputKeys: []string{key},
			Args:      map[string]float64{"version": float64(version)},
		})
		if r != nil && r.Err != nil {
			// The Persistor invocation itself failed (e.g. it was routed
			// to the dying master for locality). The acked payload still
			// lives in backup replicas — retry until persistBody gets to
			// run and decide.
			rc.env.After(rc.persistRetryDelay(), func() {
				rc.schedulePersist(node, key, version)
			})
		}
	})
}

// Delete implements faas.Storage.
func (rc *RCLib) Delete(caller simnet.NodeID, key string) error {
	rc.be.Evict(key)
	return rc.rsds.Delete(caller, key, false)
}

// isEphemeralKey reports whether key belongs to a live pipeline's
// intermediates (callers hold statsMu; the pipelines map has its own
// lock discipline via rc.mu, so read without it here is avoided by
// checking the conventional prefix the pipelines use).
func (rc *RCLib) isEphemeralKey(key string) bool {
	return strings.HasPrefix(key, "pl/")
}

// PipelineDone implements faas.PipelineAware: intermediate objects of
// the pipeline are removed from the cache (not persisted) once the
// pipeline completes (§6.3). Evicting a striped object drops every
// stripe inside the chunking middleware.
func (rc *RCLib) PipelineDone(pipeline string) {
	rc.mu.Lock()
	keys := rc.pipelines[pipeline]
	delete(rc.pipelines, pipeline)
	rc.mu.Unlock()
	for _, key := range keys {
		rc.be.Evict(key)
	}
}

// WriteBackNow synchronously persists one dirty cached object (used by
// the CacheAgent when reclaiming space). Returns false when the object
// is not dirty or vanished.
func (rc *RCLib) WriteBackNow(node simnet.NodeID, key string) bool {
	blob, meta, err := rc.be.Read(node, key)
	if err != nil || meta.Tags["dirty"] != "1" {
		return false
	}
	version, _ := strconv.ParseUint(meta.Tags["version"], 10, 64)
	if version == 0 {
		// Relaxed-mode object: no shadow was created; plain put.
		rc.rsds.Put(node, key, blob, nil, false)
	} else if perr := rc.rsds.PersistPayload(node, key, blob, version); perr != nil {
		if errors.Is(perr, objstore.ErrStale) {
			// An equal or newer version is already persisted; the
			// cached copy is effectively clean and must not overwrite
			// the store.
			rc.be.SetTag(node, key, "dirty", "0")
			rc.resolvePending(key)
		}
		return false
	}
	rc.statsMu.Lock()
	rc.writeBacks++
	rc.statsMu.Unlock()
	rc.resolvePending(key)
	return true
}

// EstimateRSDS returns the modeled uncached Extract/Load cost of ops
// accesses moving size bytes in total, for caching-benefit labels when
// the real access was served from the cache.
func (rc *RCLib) EstimateRSDS(ops, size int64, write bool) time.Duration {
	if ops < 1 {
		ops = 1
	}
	p := rc.rsds.Profile()
	if write {
		return time.Duration(ops)*p.WriteBase + time.Duration(float64(size)/p.WriteBW*float64(time.Second))
	}
	return time.Duration(ops)*p.ReadBase + time.Duration(float64(size)/p.ReadBW*float64(time.Second))
}

// CacheStats reports proxy counters.
type CacheStats struct {
	Hits, LocalHits, Misses int64
	EphemHits, EphemMisses  int64
	Admissions, WriteBacks  int64
	// AdmitVetoes counts miss-admissions the control plane's eviction
	// policy refused (always zero under the paper's policy).
	AdmitVetoes  int64
	BypassWrites int64
	EphemeralBytes          int64
	// Degradation counters: RSDS fallbacks taken because the cache
	// was unavailable, cache-op retries/timeouts, and circuit-breaker
	// trips.
	FallbackReads  int64
	FallbackWrites int64
	CacheRetries   int64
	CacheTimeouts  int64
	BreakerTrips   int64
	// Overload-control counters: storage retries the budget refused,
	// admissions skipped and writes diverted while in brownout.
	RetryDenied      int64
	BrownoutSkips    int64
	BrownoutBypasses int64
}

// Stats returns a snapshot of the proxy counters.
func (rc *RCLib) Stats() CacheStats {
	var rs store.ResilienceStats
	if rc.resil != nil {
		rs = rc.resil.Stats()
	}
	rc.statsMu.Lock()
	defer rc.statsMu.Unlock()
	return CacheStats{
		Hits: rc.hits, LocalHits: rc.localHits, Misses: rc.misses,
		EphemHits: rc.ephemHits, EphemMisses: rc.ephemMisses,
		Admissions: rc.admissions, WriteBacks: rc.writeBacks,
		AdmitVetoes:  rc.admitVetoes,
		BypassWrites: rc.bypassWrites, EphemeralBytes: rc.ephemeral,
		FallbackReads: rc.fallbackReads, FallbackWrites: rc.fallbackWrites,
		CacheRetries: rs.Retries, CacheTimeouts: rs.Timeouts,
		BreakerTrips: rs.BreakerTrips, RetryDenied: rs.BudgetDenied,
		BrownoutSkips: rc.brownoutSkips, BrownoutBypasses: rc.brownoutBypasses,
	}
}

// InputHitRatio is the hit ratio over non-pipeline-intermediate
// accesses — the quantity that collapses in the 24-tenant run.
func (rc *RCLib) InputHitRatio() float64 {
	rc.statsMu.Lock()
	defer rc.statsMu.Unlock()
	hits := rc.hits - rc.ephemHits
	total := hits + rc.misses - rc.ephemMisses
	if total <= 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// HitRatio returns hits/(hits+misses), or 0 with no traffic.
func (rc *RCLib) HitRatio() float64 {
	rc.statsMu.Lock()
	defer rc.statsMu.Unlock()
	total := rc.hits + rc.misses
	if total == 0 {
		return 0
	}
	return float64(rc.hits) / float64(total)
}
