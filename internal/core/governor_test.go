package core

import (
	"errors"
	"fmt"
	"testing"

	"ofc/internal/kvstore"
	"ofc/internal/memctl"
)

// TestGovernorMultiNodeReclaimFanOut drives Reclaim through the
// governor across a mixed fleet: a healthy node with reclaimable
// cache, a zero-slack node whose grant cannot cover the need, and an
// unknown node with no agent at all. Each edge must fail (or succeed)
// independently — one node's poverty must not leak into another's
// accounting.
func TestGovernorMultiNodeReclaimFanOut(t *testing.T) {
	sys := newSystem(5)
	invs := sys.Platform.Invokers()
	rich := NewCacheAgent(sys.Env, invs[0], sys.KV, sys.RC, DefaultCacheAgentConfig())
	poor := NewCacheAgent(sys.Env, invs[1], sys.KV, sys.RC, DefaultCacheAgentConfig())
	gov := NewGovernor()
	gov.Add(rich)
	gov.Add(poor)

	sys.Env.Go(func() {
		richNode, poorNode := invs[0].Node(), invs[1].Node()
		// Rich node: 64 MB grant holding clean final outputs.
		invs[0].SetCacheGrant(64 << 20)
		sys.KV.SetMemoryLimit(richNode, 64<<20)
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("rich/%d", i)
			if _, err := sys.KV.Write(richNode, key, kvstore.Blob{Size: 4 << 20},
				map[string]string{"kind": "final", "dirty": "0"}, richNode); err != nil {
				t.Fatalf("seed write: %v", err)
			}
		}
		// Poor node: zero grant — any need exceeds it.

		if _, err := gov.Reclaim(richNode, 16<<20); err != nil {
			t.Errorf("rich node reclaim failed: %v", err)
		}
		if _, err := gov.Reclaim(poorNode, 1<<20); !errors.Is(err, ErrReclaim) {
			t.Errorf("zero-slack node: err=%v, want ErrReclaim match", err)
		}
		if _, err := gov.Reclaim(9999, 1<<20); !errors.Is(err, ErrReclaim) {
			t.Errorf("unknown node: err=%v, want ErrReclaim match", err)
		}

		// Failure accounting stays per node: only the poor agent
		// recorded one, the governor's unknown-node error touched no
		// agent.
		if got := rich.Metrics().ReclaimFailures; got != 0 {
			t.Errorf("rich ReclaimFailures=%d, want 0", got)
		}
		if got := poor.Metrics().ReclaimFailures; got != 1 {
			t.Errorf("poor ReclaimFailures=%d, want 1", got)
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
}

// TestAgentSnapshotConsistency pins the unified read path: Slack() and
// Metrics() are views of one Snapshot, and a snapshot taken while
// counters move always pairs the slack with the counters from the same
// instant (no torn reads across the two accessors).
func TestAgentSnapshotConsistency(t *testing.T) {
	sys := newSystem(6)
	inv := sys.Platform.Invokers()[0]
	agent := NewCacheAgent(sys.Env, inv, sys.KV, sys.RC, DefaultCacheAgentConfig())
	sys.Env.Go(func() {
		snap := agent.Snapshot()
		if snap.Slack != agent.Slack() {
			t.Errorf("Slack()=%d disagrees with Snapshot().Slack=%d", agent.Slack(), snap.Slack)
		}
		if snap.Metrics != agent.Metrics() {
			t.Errorf("Metrics() disagrees with Snapshot().Metrics")
		}
		if snap.Policy.Policy != "threshold/window/migratefirst" {
			t.Errorf("default policy label = %q", snap.Policy.Policy)
		}
		// Drive a failure and re-snapshot: both fields advance together.
		inv.SetCacheGrant(0)
		if _, err := agent.Reclaim(1 << 20); !errors.Is(err, ErrReclaim) {
			t.Fatalf("expected reclaim failure, got %v", err)
		}
		snap2 := agent.Snapshot()
		if snap2.Metrics.ReclaimFailures != snap.Metrics.ReclaimFailures+1 {
			t.Errorf("snapshot did not advance: %+v", snap2.Metrics)
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
}

// TestAgentPolicySwap pins that a non-default policy spec actually
// reaches the agent: an LRU agent's discretionary sweep ignores the
// §6.3 criteria and trims to its watermark instead.
func TestAgentPolicySwap(t *testing.T) {
	sys := newSystem(7)
	inv := sys.Platform.Invokers()[0]
	cfg := DefaultCacheAgentConfig()
	cfg.Policy = memctl.Spec{Eviction: "lru", Slack: "static"}
	agent := NewCacheAgent(sys.Env, inv, sys.KV, sys.RC, cfg)
	if got := agent.PolicySpec().String(); got != "lru/static/migratefirst" {
		t.Fatalf("PolicySpec=%q", got)
	}
	sys.Env.Go(func() {
		node := inv.Node()
		inv.SetCacheGrant(16 << 20)
		sys.KV.SetMemoryLimit(node, 16<<20)
		// Fill past the 90% watermark with cold objects.
		for i := 0; i < 15; i++ {
			key := fmt.Sprintf("cold/%d", i)
			if _, err := sys.KV.Write(node, key, kvstore.Blob{Size: 1 << 20},
				map[string]string{"kind": "input", "dirty": "0"}, node); err != nil {
				t.Fatalf("seed write: %v", err)
			}
		}
		used, limit := sys.KV.Usage(node)
		if float64(used) <= 0.9*float64(limit) {
			t.Fatalf("setup: usage %d not above watermark of %d", used, limit)
		}
		agent.periodicEviction()
		used2, _ := sys.KV.Usage(node)
		if float64(used2) > 0.9*float64(limit) {
			t.Errorf("LRU sweep left usage %d above watermark (limit %d)", used2, limit)
		}
		if used2 == 0 {
			t.Errorf("LRU sweep evicted everything; want trim to watermark")
		}
		// The static estimator reports the provisioned slack immediately.
		agent.adjustSlack()
		if got := agent.Slack(); got != cfg.InitialSlack {
			t.Errorf("static slack = %d, want %d", got, cfg.InitialSlack)
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
}
