package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ofc/internal/faas"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/store"
)

// CacheAgentConfig tunes the per-node agent (§6.3, §6.4).
type CacheAgentConfig struct {
	// InitialSlack is the provisioned slack pool (paper: 100 MB).
	InitialSlack int64
	// SlackAdjustEvery and ChurnSampleEvery drive the sliding-window
	// slack estimation (paper: 120 s and 60 s).
	SlackAdjustEvery time.Duration
	ChurnSampleEvery time.Duration
	// ChurnWindow is the number of samples in the sliding window.
	ChurnWindow int
	MinSlack    int64
	MaxSlack    int64
	// EvictionEvery is the periodic eviction cadence (paper: 300 s).
	EvictionEvery time.Duration
	// MinAccess and MaxIdle are the §6.3 eviction criteria
	// (n_access < 5 or idle > 30 min).
	MinAccess int64
	MaxIdle   time.Duration
	// GrowEvery is the background growth cadence (growth also runs
	// after every completed invocation on the node).
	GrowEvery time.Duration
	// PoolReconfigTime is the asynchronous RAMCloud memory-pool
	// reconfiguration cost per scaling operation (off the critical
	// path; Table 2 sums it).
	PoolReconfigTime time.Duration
	// ShrinkBaseNoEvict and ShrinkBaseEvict are the critical-path
	// costs of a cache shrink without data movement (Figure 8 Sc1:
	// ≈289 µs) and of an eviction-based shrink (Sc3: ≈373 µs).
	ShrinkBaseNoEvict time.Duration
	ShrinkBaseEvict   time.Duration
}

// DefaultCacheAgentConfig returns the paper's parameters.
func DefaultCacheAgentConfig() CacheAgentConfig {
	return CacheAgentConfig{
		InitialSlack:      100 << 20,
		SlackAdjustEvery:  120 * time.Second,
		ChurnSampleEvery:  60 * time.Second,
		ChurnWindow:       5,
		MinSlack:          64 << 20,
		MaxSlack:          1 << 30,
		EvictionEvery:     300 * time.Second,
		MinAccess:         5,
		MaxIdle:           30 * time.Minute,
		GrowEvery:         5 * time.Second,
		PoolReconfigTime:  300 * time.Millisecond,
		ShrinkBaseNoEvict: 289 * time.Microsecond,
		ShrinkBaseEvict:   373 * time.Microsecond,
	}
}

// AgentMetrics are the per-agent counters behind Table 2.
type AgentMetrics struct {
	ScaleUps            int64
	ScaleUpTime         time.Duration
	ScaleDownNoEviction int64
	ScaleDownMigration  int64
	ScaleDownEviction   int64
	ScaleDownTime       time.Duration
	PeriodicEvictions   int64
	ReclaimFailures     int64
}

// CacheAgent manages one worker node's share of the cache (§6.4): it
// hoards unused memory into the cache, shrinks the cache under sandbox
// pressure (outputs first, then LRU inputs with
// migration-by-promotion), maintains the slack pool, and applies the
// §6.3 periodic eviction policy.
//
// The agent controls the cache purely through its memory view — it
// needs usage, limits, the object census and the reclamation verbs,
// nothing else of the engine.
type CacheAgent struct {
	env  *sim.Env
	node simnet.NodeID
	inv  *faas.Invoker
	kv   store.MemoryView
	rc   *RCLib
	cfg  CacheAgentConfig

	mu           sync.Mutex
	slack        int64
	lastReserved int64
	churn        []int64
	brownout     bool
	metrics      AgentMetrics
}

// NewCacheAgent builds the agent for one node over the engine's
// memory-control view.
func NewCacheAgent(env *sim.Env, inv *faas.Invoker, kv store.MemoryView, rc *RCLib, cfg CacheAgentConfig) *CacheAgent {
	return &CacheAgent{
		env: env, node: inv.Node(), inv: inv, kv: kv, rc: rc, cfg: cfg,
		slack: cfg.InitialSlack, lastReserved: inv.Reserved(),
	}
}

// Node returns the agent's node.
func (a *CacheAgent) Node() simnet.NodeID { return a.node }

// Slack returns the current slack pool size.
func (a *CacheAgent) Slack() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.slack
}

// Metrics returns a snapshot of the agent counters.
func (a *CacheAgent) Metrics() AgentMetrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.metrics
}

// Start arms the periodic loops: growth, slack maintenance, periodic
// eviction. It also performs the initial grant.
func (a *CacheAgent) Start() {
	a.Grow()
	a.env.Every(a.cfg.GrowEvery, func() bool {
		a.Grow()
		return true
	})
	a.env.Every(a.cfg.ChurnSampleEvery, func() bool {
		a.sampleChurn()
		return true
	})
	a.env.Every(a.cfg.SlackAdjustEvery, func() bool {
		a.adjustSlack()
		return true
	})
	a.env.Every(a.cfg.EvictionEvery, func() bool {
		a.periodicEviction()
		return true
	})
}

// Grow rebalances the cache grant to the node's current entitlement:
// the memory booked-but-unused by live sandboxes (§1, §6.4), bounded
// by the physically free memory minus the slack pool. Sandbox churn
// moves the entitlement in both directions, so this both grows and
// shrinks the cache — the scale-up/scale-down events of Table 2.
// Called at every placement, after every completion and periodically.
func (a *CacheAgent) Grow() {
	a.mu.Lock()
	slack := a.slack
	a.mu.Unlock()
	target := a.inv.BookedWaste()
	if free := a.inv.Capacity() - a.inv.Reserved() - slack; target > free {
		target = free
	}
	if target < 0 {
		target = 0
	}
	cur := a.inv.CacheGrant()
	const hysteresis = 1 << 20
	switch {
	case target > cur+hysteresis:
		granted := a.inv.SetCacheGrant(target)
		a.kv.SetMemoryLimit(a.node, granted)
		a.mu.Lock()
		a.metrics.ScaleUps++
		a.metrics.ScaleUpTime += a.cfg.PoolReconfigTime
		a.mu.Unlock()
	case target < cur-hysteresis:
		// Shrink the grant; free cached data first if usage exceeds
		// the new target.
		used, _ := a.kv.Usage(a.node)
		migrated, evicted := 0, 0
		if used > target {
			migrated, evicted = a.freeBytes(used - target)
		}
		granted := a.inv.SetCacheGrant(target)
		a.kv.SetMemoryLimit(a.node, granted)
		a.mu.Lock()
		switch {
		case migrated > 0:
			a.metrics.ScaleDownMigration++
		case evicted > 0:
			a.metrics.ScaleDownEviction++
		default:
			a.metrics.ScaleDownNoEviction++
		}
		a.metrics.ScaleDownTime += a.cfg.PoolReconfigTime
		a.mu.Unlock()
	default:
		return
	}
	// RAMCloud pool reconfiguration happens off the critical path.
	a.env.Go(func() { a.env.Sleep(a.cfg.PoolReconfigTime) })
}

// freeBytes frees at least toFree bytes of cached data: clean final
// outputs first, then LRU inputs by migration-by-promotion, eviction
// as last resort; dirty objects get asynchronous write-backs.
func (a *CacheAgent) freeBytes(toFree int64) (migrated, evicted int) {
	objs := a.kv.Objects(a.node)
	for _, o := range objs {
		if toFree <= 0 {
			break
		}
		if o.Meta.Tags["kind"] == "final" && o.Meta.Tags["dirty"] != "1" {
			if a.kv.Evict(o.Key) == nil {
				toFree -= o.Meta.Size
				evicted++
			}
		}
	}
	if toFree <= 0 {
		return
	}
	var inputs []store.ObjectInfo
	for _, o := range objs {
		switch {
		case o.Meta.Tags["dirty"] == "1":
			key := o.Key
			a.env.Go(func() { a.rc.WriteBackNow(a.node, key) })
		case o.Meta.Tags["kind"] == "input" || o.Meta.Tags["kind"] == "intermediate":
			inputs = append(inputs, o)
		}
	}
	sort.Slice(inputs, func(i, j int) bool {
		return inputs[i].Meta.LastAccess < inputs[j].Meta.LastAccess
	})
	for _, o := range inputs {
		if toFree <= 0 {
			break
		}
		if a.kv.MigrateToBackup(o.Key) == nil {
			toFree -= o.Meta.Size
			migrated++
			continue
		}
		if a.kv.Evict(o.Key) == nil {
			toFree -= o.Meta.Size
			evicted++
		}
	}
	return
}

// sampleChurn records the sandbox-memory movement since the last
// sample.
func (a *CacheAgent) sampleChurn() {
	cur := a.inv.Reserved()
	a.mu.Lock()
	delta := cur - a.lastReserved
	if delta < 0 {
		delta = -delta
	}
	a.lastReserved = cur
	a.churn = append(a.churn, delta)
	if len(a.churn) > a.cfg.ChurnWindow {
		a.churn = a.churn[1:]
	}
	a.mu.Unlock()
}

// adjustSlack sets the slack pool from the churn sliding window (§6.4).
func (a *CacheAgent) adjustSlack() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.churn) == 0 {
		return
	}
	var max int64
	for _, c := range a.churn {
		if c > max {
			max = c
		}
	}
	s := max
	if s < a.cfg.MinSlack {
		s = a.cfg.MinSlack
	}
	if s > a.cfg.MaxSlack {
		s = a.cfg.MaxSlack
	}
	a.slack = s
}

// ErrReclaim is the sentinel for a failed cache reclaim: the agent
// could not free the requested memory. Returned errors wrap it with
// context; match with errors.Is (never ==, per the senterr lint rule).
// The overload degradation controller consumes the matching
// ReclaimFailures counter as one of its pressure signals.
var ErrReclaim = errors.New("core: cache reclaim failed")

// SetBrownout switches the agent's eviction posture. Entering brownout
// triggers an immediate tightened sweep (fresh admissions lose their
// grace window, the idle bound shortens), so cache memory flows back
// to sandboxes while pressure lasts.
func (a *CacheAgent) SetBrownout(on bool) {
	a.mu.Lock()
	was := a.brownout
	a.brownout = on
	a.mu.Unlock()
	if on && !was {
		a.env.Go(func() { a.periodicEviction() })
	}
}

// Reclaim implements the §6.4 fast-reclamation path, invoked by the
// platform (as MemoryGovernor) when a sandbox needs memory the cache
// holds. Order: free grant first, then persisted outputs, then LRU
// inputs via migration-by-promotion, then eviction. Dirty outputs get
// their write-back triggered asynchronously. Returns the critical-path
// time spent.
func (a *CacheAgent) Reclaim(need int64) (time.Duration, error) {
	start := a.env.Now()
	grant := a.inv.CacheGrant()
	if grant < need {
		a.mu.Lock()
		a.metrics.ReclaimFailures++
		a.mu.Unlock()
		return 0, fmt.Errorf("node %d: need %d > grant %d: %w", a.node, need, grant, ErrReclaim)
	}
	used, _ := a.kv.Usage(a.node)
	freeInGrant := grant - used

	migrated, evicted := 0, 0
	if freeInGrant < need {
		toFree := need - freeInGrant
		migrated, evicted = a.freeBytes(toFree)
		used2, _ := a.kv.Usage(a.node)
		if grant-used2 < need {
			a.mu.Lock()
			a.metrics.ReclaimFailures++
			a.mu.Unlock()
			return time.Duration(a.env.Now() - start),
				fmt.Errorf("node %d: freed only %d of %d needed: %w", a.node, grant-used2, need, ErrReclaim)
		}
	}

	// Charge the scaling base cost for the scenario (Figure 8).
	switch {
	case migrated > 0:
		// Promotion time was already charged by MigrateToBackup.
	case evicted > 0:
		a.env.Sleep(a.cfg.ShrinkBaseEvict)
	default:
		a.env.Sleep(a.cfg.ShrinkBaseNoEvict)
	}

	newGrant := a.inv.SetCacheGrant(grant - need)
	a.kv.SetMemoryLimit(a.node, newGrant)

	took := time.Duration(a.env.Now() - start)
	a.mu.Lock()
	switch {
	case migrated > 0:
		a.metrics.ScaleDownMigration++
	case evicted > 0:
		a.metrics.ScaleDownEviction++
	default:
		a.metrics.ScaleDownNoEviction++
	}
	a.metrics.ScaleDownTime += a.cfg.PoolReconfigTime
	a.mu.Unlock()
	// Asynchronous pool reconfiguration, as for growth.
	a.env.Go(func() { a.env.Sleep(a.cfg.PoolReconfigTime) })
	return took, nil
}

// periodicEviction applies §6.3: every EvictionEvery, evict objects
// with n_access < MinAccess or idle longer than MaxIdle. Only objects
// older than one eviction period are considered, so fresh admissions
// survive their first window. Dirty objects are written back first.
func (a *CacheAgent) periodicEviction() {
	now := a.env.Now()
	// Brownout tightens the criteria: no grace window for fresh
	// admissions and a quarter of the idle bound, so only the hot set
	// survives while memory is contended.
	a.mu.Lock()
	brown := a.brownout
	a.mu.Unlock()
	ageFloor, maxIdle := a.cfg.EvictionEvery, a.cfg.MaxIdle
	if brown {
		ageFloor, maxIdle = 0, a.cfg.MaxIdle/4
	}
	for _, o := range a.kv.Objects(a.node) {
		age := now - o.Meta.Created
		if age < ageFloor {
			continue
		}
		idle := now - o.Meta.LastAccess
		if o.Meta.NAccess >= a.cfg.MinAccess && idle <= maxIdle {
			continue
		}
		key := o.Key
		if o.Meta.Tags["dirty"] == "1" {
			a.env.Go(func() {
				if a.rc.WriteBackNow(a.node, key) {
					a.kv.Evict(key)
				}
			})
			continue
		}
		if a.kv.Evict(key) == nil {
			a.mu.Lock()
			a.metrics.PeriodicEvictions++
			a.mu.Unlock()
		}
	}
}

// Governor adapts a set of agents to the faas.MemoryGovernor interface.
type Governor struct {
	mu     sync.Mutex
	agents map[simnet.NodeID]*CacheAgent
}

// NewGovernor returns an empty governor; add agents with Add.
func NewGovernor() *Governor {
	return &Governor{agents: make(map[simnet.NodeID]*CacheAgent)}
}

// Add registers an agent.
func (g *Governor) Add(a *CacheAgent) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.agents[a.Node()] = a
}

// Agent returns the agent on node, or nil.
func (g *Governor) Agent(node simnet.NodeID) *CacheAgent {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.agents[node]
}

// Reclaim implements faas.MemoryGovernor.
func (g *Governor) Reclaim(node simnet.NodeID, need int64) (time.Duration, error) {
	a := g.Agent(node)
	if a == nil {
		return 0, fmt.Errorf("node %d: no cache agent: %w", node, ErrReclaim)
	}
	return a.Reclaim(need)
}
