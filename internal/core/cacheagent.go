package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ofc/internal/faas"
	"ofc/internal/memctl"
	"ofc/internal/metrics"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/store"
	"ofc/internal/trace"
)

// CacheAgentConfig tunes the per-node agent (§6.3, §6.4).
type CacheAgentConfig struct {
	// InitialSlack is the provisioned slack pool (paper: 100 MB).
	InitialSlack int64
	// SlackAdjustEvery and ChurnSampleEvery drive the sliding-window
	// slack estimation (paper: 120 s and 60 s).
	SlackAdjustEvery time.Duration
	ChurnSampleEvery time.Duration
	// ChurnWindow is the number of samples in the sliding window.
	ChurnWindow int
	MinSlack    int64
	MaxSlack    int64
	// EvictionEvery is the periodic eviction cadence (paper: 300 s).
	EvictionEvery time.Duration
	// MinAccess and MaxIdle are the §6.3 eviction criteria
	// (n_access < 5 or idle > 30 min).
	MinAccess int64
	MaxIdle   time.Duration
	// GrowEvery is the background growth cadence (growth also runs
	// after every completed invocation on the node).
	GrowEvery time.Duration
	// PoolReconfigTime is the asynchronous RAMCloud memory-pool
	// reconfiguration cost per scaling operation (off the critical
	// path; Table 2 sums it).
	PoolReconfigTime time.Duration
	// ShrinkBaseNoEvict and ShrinkBaseEvict are the critical-path
	// costs of a cache shrink without data movement (Figure 8 Sc1:
	// ≈289 µs) and of an eviction-based shrink (Sc3: ≈373 µs).
	ShrinkBaseNoEvict time.Duration
	ShrinkBaseEvict   time.Duration
	// Policy selects the memctl policy combination; zero-value fields
	// mean the paper's defaults (threshold/window/migratefirst).
	Policy memctl.Spec
}

// DefaultCacheAgentConfig returns the paper's parameters.
func DefaultCacheAgentConfig() CacheAgentConfig {
	return CacheAgentConfig{
		InitialSlack:      100 << 20,
		SlackAdjustEvery:  120 * time.Second,
		ChurnSampleEvery:  60 * time.Second,
		ChurnWindow:       5,
		MinSlack:          64 << 20,
		MaxSlack:          1 << 30,
		EvictionEvery:     300 * time.Second,
		MinAccess:         5,
		MaxIdle:           30 * time.Minute,
		GrowEvery:         5 * time.Second,
		PoolReconfigTime:  300 * time.Millisecond,
		ShrinkBaseNoEvict: 289 * time.Microsecond,
		ShrinkBaseEvict:   373 * time.Microsecond,
	}
}

// memctlParams maps the agent config onto the policy knobs. The age
// floor is one eviction period, exactly the pre-refactor grace window.
func (c CacheAgentConfig) memctlParams() memctl.Params {
	return memctl.Params{
		MinAccess:   c.MinAccess,
		MaxIdle:     c.MaxIdle,
		AgeFloor:    c.EvictionEvery,
		MinSlack:    c.MinSlack,
		MaxSlack:    c.MaxSlack,
		ChurnWindow: c.ChurnWindow,
		StaticSlack: c.InitialSlack,
		HighWater:   memctl.DefaultParams().HighWater,
	}
}

// AgentMetrics are the per-agent counters behind Table 2.
type AgentMetrics struct {
	ScaleUps            int64
	ScaleUpTime         time.Duration
	ScaleDownNoEviction int64
	ScaleDownMigration  int64
	ScaleDownEviction   int64
	ScaleDownTime       time.Duration
	PeriodicEvictions   int64
	ReclaimFailures     int64
}

// AgentSnapshot is one consistent observation of the agent: the slack
// pool and the counters captured under a single critical section, so a
// reader can never see a slack value from one instant paired with
// counters from another.
type AgentSnapshot struct {
	Slack   int64
	Metrics AgentMetrics
	Policy  metrics.PolicyCounters
}

// CacheAgent actuates the memory control plane on one worker node
// (§6.4): it hoards unused memory into the cache, shrinks the cache
// under sandbox pressure, maintains the slack pool, and runs the
// periodic eviction sweep. Every decision — which objects are victims,
// how much slack to hold, in what order to migrate or evict — is
// delegated to the memctl policy set; the agent owns only execution:
// grant arithmetic, write-backs, the Figure-8 scaling costs.
//
// The agent controls the cache purely through its memory view — it
// needs usage, limits, the object census and the reclamation verbs,
// nothing else of the engine.
type CacheAgent struct {
	env  *sim.Env
	node simnet.NodeID
	inv  *faas.Invoker
	kv   store.MemoryView
	rc   *RCLib
	cfg  CacheAgentConfig
	pol  memctl.Policies

	// tracer records reclaim/evict.sweep spans as trace-0 roots (nil =
	// off). Set before Start; read without synchronization.
	tracer *trace.Tracer

	// mu guards the mutable snapshot state AND the policy set: policy
	// implementations are plain bookkeeping with no internal locking,
	// so every Touch/Admit/Victims/Plan/Observe/Target call happens
	// under mu. Decisions are computed under the lock, executed (RPCs,
	// evictions, sleeps) outside it.
	mu           sync.Mutex
	slack        int64
	lastReserved int64
	pressure     memctl.Pressure
	metrics      AgentMetrics
	polCounters  metrics.PolicyCounters
}

// NewCacheAgent builds the agent for one node over the engine's
// memory-control view, instantiating its own policy set from the
// config's spec (policy state — GDSF priorities, slack windows — is
// per node).
func NewCacheAgent(env *sim.Env, inv *faas.Invoker, kv store.MemoryView, rc *RCLib, cfg CacheAgentConfig) *CacheAgent {
	return &CacheAgent{
		env: env, node: inv.Node(), inv: inv, kv: kv, rc: rc, cfg: cfg,
		pol:   memctl.MustBuild(cfg.Policy, cfg.memctlParams()),
		slack: cfg.InitialSlack, lastReserved: inv.Reserved(),
		polCounters: metrics.PolicyCounters{Policy: normalizeSpec(cfg.Policy).String()},
	}
}

// normalizeSpec fills empty spec fields with the default names so the
// policy label always reads "eviction/slack/planner".
func normalizeSpec(s memctl.Spec) memctl.Spec {
	d := memctl.DefaultSpec()
	if s.Eviction == "" {
		s.Eviction = d.Eviction
	}
	if s.Slack == "" {
		s.Slack = d.Slack
	}
	if s.Planner == "" {
		s.Planner = d.Planner
	}
	return s
}

// SetTracer attaches a span recorder to the agent's reclaim and
// eviction paths. Call before Start.
func (a *CacheAgent) SetTracer(tr *trace.Tracer) { a.tracer = tr }

// Node returns the agent's node.
func (a *CacheAgent) Node() simnet.NodeID { return a.node }

// Snapshot returns one consistent view of slack + counters (see
// AgentSnapshot). Slack and Metrics are conveniences over it.
func (a *CacheAgent) Snapshot() AgentSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AgentSnapshot{Slack: a.slack, Metrics: a.metrics, Policy: a.polCounters}
}

// Slack returns the current slack pool size.
func (a *CacheAgent) Slack() int64 { return a.Snapshot().Slack }

// Metrics returns a snapshot of the agent counters.
func (a *CacheAgent) Metrics() AgentMetrics { return a.Snapshot().Metrics }

// PolicyCounters returns the per-policy counters.
func (a *CacheAgent) PolicyCounters() metrics.PolicyCounters { return a.Snapshot().Policy }

// PolicySpec returns the normalized policy combination the agent runs.
func (a *CacheAgent) PolicySpec() memctl.Spec { return normalizeSpec(a.cfg.Policy) }

// Start arms the periodic loops: growth, slack maintenance, periodic
// eviction. It also performs the initial grant.
func (a *CacheAgent) Start() {
	a.Grow()
	a.env.Every(a.cfg.GrowEvery, func() bool {
		a.Grow()
		return true
	})
	a.env.Every(a.cfg.ChurnSampleEvery, func() bool {
		a.sampleChurn()
		return true
	})
	a.env.Every(a.cfg.SlackAdjustEvery, func() bool {
		a.adjustSlack()
		return true
	})
	a.env.Every(a.cfg.EvictionEvery, func() bool {
		a.periodicEviction()
		return true
	})
}

// AdmitObject is the proxy's write-admission gate: before a missed
// input is admitted into this node's cache, the eviction policy gets a
// veto (with the predictor's caching-benefit score as evidence).
func (a *CacheAgent) AdmitObject(key string, size int64, benefit float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	ok := a.pol.Eviction.Admit(key, size, benefit)
	if ok {
		a.polCounters.Admitted++
	} else {
		a.polCounters.Rejected++
	}
	return ok
}

// TouchObject reports a cache hit on an object mastered on this node,
// so frequency/recency-keeping policies see accesses as they happen.
func (a *CacheAgent) TouchObject(key string) {
	now := a.env.Now()
	a.mu.Lock()
	a.pol.Eviction.Touch(key, now)
	a.polCounters.Touches++
	a.mu.Unlock()
}

// Grow rebalances the cache grant to the node's current entitlement:
// the memory booked-but-unused by live sandboxes (§1, §6.4), bounded
// by the physically free memory minus the slack pool. Sandbox churn
// moves the entitlement in both directions, so this both grows and
// shrinks the cache — the scale-up/scale-down events of Table 2.
// Called at every placement, after every completion and periodically.
func (a *CacheAgent) Grow() {
	a.mu.Lock()
	slack := a.slack
	a.mu.Unlock()
	target := a.inv.BookedWaste()
	if free := a.inv.Capacity() - a.inv.Reserved() - slack; target > free {
		target = free
	}
	if target < 0 {
		target = 0
	}
	cur := a.inv.CacheGrant()
	const hysteresis = 1 << 20
	switch {
	case target > cur+hysteresis:
		granted := a.inv.SetCacheGrant(target)
		a.kv.SetMemoryLimit(a.node, granted)
		a.mu.Lock()
		a.metrics.ScaleUps++
		a.metrics.ScaleUpTime += a.cfg.PoolReconfigTime
		a.mu.Unlock()
	case target < cur-hysteresis:
		// Shrink the grant; free cached data first if usage exceeds
		// the new target.
		used, _ := a.kv.Usage(a.node)
		migrated, evicted := 0, 0
		if used > target {
			migrated, evicted = a.freeBytes(used - target)
		}
		granted := a.inv.SetCacheGrant(target)
		a.kv.SetMemoryLimit(a.node, granted)
		a.mu.Lock()
		switch {
		case migrated > 0:
			a.metrics.ScaleDownMigration++
		case evicted > 0:
			a.metrics.ScaleDownEviction++
		default:
			a.metrics.ScaleDownNoEviction++
		}
		a.metrics.ScaleDownTime += a.cfg.PoolReconfigTime
		a.mu.Unlock()
	default:
		return
	}
	// RAMCloud pool reconfiguration happens off the critical path.
	a.env.Go(func() { a.env.Sleep(a.cfg.PoolReconfigTime) })
}

// view captures the policy inputs for this node: census, occupancy,
// need and pressure. Must be called without holding mu.
func (a *CacheAgent) view(need int64) memctl.View {
	used, limit := a.kv.Usage(a.node)
	a.mu.Lock()
	pressure := a.pressure
	a.mu.Unlock()
	return memctl.View{
		Now:      a.env.Now(),
		Objects:  a.kv.Objects(a.node),
		Used:     used,
		Limit:    limit,
		Need:     need,
		Pressure: pressure,
	}
}

// freeBytes frees at least toFree bytes of cached data by executing
// the planner's recipe: walk the first phase until the need is met,
// then (if short) trigger the asynchronous write-backs and walk the
// second phase, honoring each step's migrate-vs-evict intent with
// eviction as the migration fallback.
func (a *CacheAgent) freeBytes(toFree int64) (migrated, evicted int) {
	v := a.view(toFree)
	a.mu.Lock()
	plan := a.pol.Planner.Plan(v)
	a.mu.Unlock()

	var freed []string
	wrotebacks := 0
	defer func() {
		a.mu.Lock()
		for _, k := range freed {
			a.pol.Eviction.Forget(k)
		}
		a.polCounters.Evictions += int64(evicted)
		a.polCounters.Migrations += int64(migrated)
		a.polCounters.WriteBacks += int64(wrotebacks)
		a.mu.Unlock()
	}()

	for _, s := range plan.First {
		if toFree <= 0 {
			break
		}
		if a.kv.Evict(s.Key) == nil {
			toFree -= s.Size
			evicted++
			freed = append(freed, s.Key)
		}
	}
	if toFree <= 0 {
		return
	}
	for _, key := range plan.WriteBacks {
		key := key
		a.env.Go(func() { a.rc.WriteBackNow(a.node, key) })
		wrotebacks++
	}
	for _, s := range plan.Second {
		if toFree <= 0 {
			break
		}
		if s.Migrate && a.kv.MigrateToBackup(s.Key) == nil {
			toFree -= s.Size
			migrated++
			freed = append(freed, s.Key)
			continue
		}
		if a.kv.Evict(s.Key) == nil {
			toFree -= s.Size
			evicted++
			freed = append(freed, s.Key)
		}
	}
	return
}

// sampleChurn records the sandbox-memory movement since the last
// sample and feeds it to the slack estimator.
func (a *CacheAgent) sampleChurn() {
	cur := a.inv.Reserved()
	a.mu.Lock()
	delta := cur - a.lastReserved
	if delta < 0 {
		delta = -delta
	}
	a.lastReserved = cur
	a.pol.Slack.Observe(delta)
	a.mu.Unlock()
}

// adjustSlack sets the slack pool from the estimator (§6.4); an
// estimator with no opinion yet leaves the provisioned slack as is.
func (a *CacheAgent) adjustSlack() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.pol.Slack.Target(); ok {
		a.slack = t
	}
}

// ErrReclaim is the sentinel for a failed cache reclaim: the agent
// could not free the requested memory. Returned errors wrap it with
// context; match with errors.Is (never ==, per the senterr lint rule).
// The overload degradation controller consumes the matching
// ReclaimFailures counter as one of its pressure signals.
var ErrReclaim = errors.New("core: cache reclaim failed")

// SetBrownout switches the agent's eviction posture (legacy boolean
// face of SetPressure). Entering brownout triggers an immediate
// tightened sweep, so cache memory flows back to sandboxes while
// pressure lasts.
func (a *CacheAgent) SetBrownout(on bool) {
	p := memctl.PressureNormal
	if on {
		p = memctl.PressureBrownout
	}
	a.SetPressure(p)
}

// SetPressure feeds the overload controller's urgency level into the
// policy inputs. Rising to brownout triggers an immediate sweep under
// the tightened criteria.
func (a *CacheAgent) SetPressure(p memctl.Pressure) {
	a.mu.Lock()
	was := a.pressure
	a.pressure = p
	a.mu.Unlock()
	if p == memctl.PressureBrownout && was != p {
		a.env.Go(func() { a.periodicEviction() })
	}
}

// Reclaim implements the §6.4 fast-reclamation path, invoked by the
// platform (as MemoryGovernor) when a sandbox needs memory the cache
// holds. The planner orders the work (free grant first, then persisted
// outputs, then LRU inputs via migration-by-promotion, then eviction);
// the agent executes it and charges the critical-path time. Dirty
// outputs get their write-back triggered asynchronously. Returns the
// critical-path time spent.
func (a *CacheAgent) Reclaim(need int64) (time.Duration, error) {
	if a.tracer == nil {
		return a.reclaim(need, nil)
	}
	sp := a.tracer.Begin(0, 0, "reclaim", a.node)
	sp.SetNum("need", need)
	took, err := a.reclaim(need, &sp)
	if err != nil {
		sp.SetNum("err", 1)
	}
	a.tracer.End(&sp)
	return took, err
}

// reclaim is Reclaim's body (the wrapper owns the span).
func (a *CacheAgent) reclaim(need int64, sp *trace.Span) (time.Duration, error) {
	start := a.env.Now()
	grant := a.inv.CacheGrant()
	if grant < need {
		a.mu.Lock()
		a.metrics.ReclaimFailures++
		a.mu.Unlock()
		return 0, fmt.Errorf("node %d: need %d > grant %d: %w", a.node, need, grant, ErrReclaim)
	}
	used, _ := a.kv.Usage(a.node)
	freeInGrant := grant - used

	migrated, evicted := 0, 0
	if freeInGrant < need {
		toFree := need - freeInGrant
		migrated, evicted = a.freeBytes(toFree)
		used2, _ := a.kv.Usage(a.node)
		if grant-used2 < need {
			a.mu.Lock()
			a.metrics.ReclaimFailures++
			a.mu.Unlock()
			return time.Duration(a.env.Now() - start),
				fmt.Errorf("node %d: freed only %d of %d needed: %w", a.node, grant-used2, need, ErrReclaim)
		}
	}

	// Charge the scaling base cost for the scenario (Figure 8).
	switch {
	case migrated > 0:
		// Promotion time was already charged by MigrateToBackup.
	case evicted > 0:
		a.env.Sleep(a.cfg.ShrinkBaseEvict)
	default:
		a.env.Sleep(a.cfg.ShrinkBaseNoEvict)
	}

	if migrated > 0 {
		sp.SetNum("migrated", int64(migrated))
	}
	if evicted > 0 {
		sp.SetNum("evicted", int64(evicted))
	}

	newGrant := a.inv.SetCacheGrant(grant - need)
	a.kv.SetMemoryLimit(a.node, newGrant)

	took := time.Duration(a.env.Now() - start)
	a.mu.Lock()
	switch {
	case migrated > 0:
		a.metrics.ScaleDownMigration++
	case evicted > 0:
		a.metrics.ScaleDownEviction++
	default:
		a.metrics.ScaleDownNoEviction++
	}
	a.metrics.ScaleDownTime += a.cfg.PoolReconfigTime
	a.mu.Unlock()
	// Asynchronous pool reconfiguration, as for growth.
	a.env.Go(func() { a.env.Sleep(a.cfg.PoolReconfigTime) })
	return took, nil
}

// periodicEviction runs the discretionary sweep: the eviction policy
// selects the victims (Need == 0; the paper's threshold policy applies
// §6.3's n_access/idle criteria, demand-driven policies trim to their
// watermark), the agent executes — dirty victims are written back
// before eviction, clean ones evicted directly.
func (a *CacheAgent) periodicEviction() {
	if a.tracer == nil {
		a.evictionSweep()
		return
	}
	sp := a.tracer.Begin(0, 0, "evict.sweep", a.node)
	victims := a.evictionSweep()
	if victims > 0 {
		sp.SetNum("victims", int64(victims))
	}
	a.tracer.End(&sp)
}

// evictionSweep is periodicEviction's body (the wrapper owns the
// span); it returns the number of victims the policy selected.
func (a *CacheAgent) evictionSweep() int {
	v := a.view(0)
	a.mu.Lock()
	victims := a.pol.Eviction.Victims(v)
	a.mu.Unlock()
	for _, o := range victims {
		key := o.Key
		if o.Meta.Tags["dirty"] == "1" {
			a.env.Go(func() {
				if a.rc.WriteBackNow(a.node, key) {
					a.kv.Evict(key)
				}
			})
			a.mu.Lock()
			a.polCounters.WriteBacks++
			a.mu.Unlock()
			continue
		}
		if a.kv.Evict(key) == nil {
			a.mu.Lock()
			a.metrics.PeriodicEvictions++
			a.polCounters.Evictions++
			a.pol.Eviction.Forget(key)
			a.mu.Unlock()
		}
	}
	return len(victims)
}

// Governor adapts a set of agents to the faas.MemoryGovernor interface
// and to the proxy's AdmissionGate (routing per-object admission and
// touch notifications to the owning node's agent).
type Governor struct {
	mu     sync.Mutex
	agents map[simnet.NodeID]*CacheAgent
}

// NewGovernor returns an empty governor; add agents with Add.
func NewGovernor() *Governor {
	return &Governor{agents: make(map[simnet.NodeID]*CacheAgent)}
}

// Add registers an agent.
func (g *Governor) Add(a *CacheAgent) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.agents[a.Node()] = a
}

// Agent returns the agent on node, or nil.
func (g *Governor) Agent(node simnet.NodeID) *CacheAgent {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.agents[node]
}

// Reclaim implements faas.MemoryGovernor.
func (g *Governor) Reclaim(node simnet.NodeID, need int64) (time.Duration, error) {
	a := g.Agent(node)
	if a == nil {
		return 0, fmt.Errorf("node %d: no cache agent: %w", node, ErrReclaim)
	}
	return a.Reclaim(need)
}

// AdmitObject implements AdmissionGate: the write-admission decision
// belongs to the node that would master the object. Nodes without an
// agent admit unconditionally (pre-refactor behavior).
func (g *Governor) AdmitObject(node simnet.NodeID, key string, size int64, benefit float64) bool {
	a := g.Agent(node)
	if a == nil {
		return true
	}
	return a.AdmitObject(key, size, benefit)
}

// TouchObject implements AdmissionGate.
func (g *Governor) TouchObject(node simnet.NodeID, key string) {
	if a := g.Agent(node); a != nil {
		a.TouchObject(key)
	}
}
