package core

import (
	"testing"
	"time"

	"ofc/internal/faas"
	"ofc/internal/kvstore"
)

// TestGetFallsBackToRSDS is the end-to-end read degradation path: the
// key's cache master crashes, the resilient read retries then gives
// up, and Get transparently serves the payload from the RSDS. Repeated
// failures trip the master's breaker so later reads fail fast.
func TestGetFallsBackToRSDS(t *testing.T) {
	sys := newSystem(1)
	victim := sys.WorkerNodes[0]
	other := sys.WorkerNodes[1]
	const key = "in/fb"
	const size = int64(1 << 20)

	sys.Run(func() {
		// Direct KV writes bypass the cache agents, so grant the servers
		// memory by hand (limits start at zero and grow with grants).
		for _, w := range sys.WorkerNodes {
			sys.KV.SetMemoryLimit(w, 1<<30)
		}
		sys.RSDS.Put(sys.CtrlNode, key, kvstore.Synthetic(size), nil, false)
		if _, err := sys.KV.Write(victim, key, kvstore.Synthetic(size),
			map[string]string{"kind": "input", "dirty": "0"}, victim); err != nil {
			t.Errorf("stage cache copy: %v", err)
			return
		}
		// Sanity: a healthy read is a cache hit.
		if _, err := sys.RC.Get(other, key, faas.PutOpts{}); err != nil {
			t.Errorf("healthy get: %v", err)
			return
		}
		if st := sys.RC.Stats(); st.Hits != 1 || st.FallbackReads != 0 {
			t.Errorf("healthy stats: %+v", st)
			return
		}

		sys.Net.SetNodeDown(victim, true)
		sys.KV.Crash(victim)

		blob, err := sys.RC.Get(other, key, faas.PutOpts{})
		if err != nil {
			t.Errorf("degraded get: %v", err)
			return
		}
		if blob.Size != size {
			t.Errorf("degraded get size=%d, want %d", blob.Size, size)
		}
		st := sys.RC.Stats()
		if st.FallbackReads != 1 {
			t.Errorf("fallbackReads=%d, want 1", st.FallbackReads)
		}
		if st.CacheRetries == 0 {
			t.Errorf("no cache retries recorded: %+v", st)
		}
		// One Get exhausts MaxRetries+1 attempts = BreakerThreshold
		// failures: the master's breaker is now open.
		if _, open := sys.RC.BreakerState(victim); !open {
			t.Error("breaker not open after retry exhaustion")
		}
		if st.BreakerTrips != 1 {
			t.Errorf("breakerTrips=%d, want 1", st.BreakerTrips)
		}
		// The next read short-circuits (no new retries) and still serves.
		retriesBefore := st.CacheRetries
		if _, err := sys.RC.Get(other, key, faas.PutOpts{}); err != nil {
			t.Errorf("fail-fast get: %v", err)
			return
		}
		st = sys.RC.Stats()
		if st.FallbackReads != 2 {
			t.Errorf("fallbackReads=%d, want 2", st.FallbackReads)
		}
		if st.CacheRetries != retriesBefore {
			t.Errorf("breaker-open read retried: %d → %d", retriesBefore, st.CacheRetries)
		}
	})
}

// TestPutFallsBackToRSDS is the write degradation path: a final output
// whose cache master is down is persisted synchronously to the RSDS
// (the vanilla write-through path) and no acknowledged write is lost.
func TestPutFallsBackToRSDS(t *testing.T) {
	sys := newSystem(2)
	victim := sys.WorkerNodes[0]
	other := sys.WorkerNodes[1]
	const key = "out/fb"

	sys.Run(func() {
		for _, w := range sys.WorkerNodes {
			sys.KV.SetMemoryLimit(w, 1<<30)
		}
		// Establish the key's placement on the victim, then kill it.
		if _, err := sys.KV.Write(victim, key, kvstore.Synthetic(64<<10),
			map[string]string{"kind": "final", "dirty": "0"}, victim); err != nil {
			t.Error(err)
			return
		}
		sys.Net.SetNodeDown(victim, true)
		sys.KV.Crash(victim)

		err := sys.RC.Put(other, key, faas.Blob{Size: 64 << 10},
			faas.PutOpts{Kind: faas.KindFinal, ShouldCache: true})
		if err != nil {
			t.Errorf("degraded put: %v", err)
			return
		}
		st := sys.RC.Stats()
		if st.FallbackWrites != 1 {
			t.Errorf("fallbackWrites=%d, want 1", st.FallbackWrites)
		}
		if st.CacheRetries == 0 {
			t.Error("no retries before write fallback")
		}
		// The payload must be durably in the RSDS, not a dangling shadow.
		m, ok := sys.RSDS.MetaOf(key)
		if !ok || m.IsShadow() || m.Size != 64<<10 {
			t.Errorf("fallback write not persisted: ok=%v meta=%+v", ok, m)
		}
	})
}

// TestDirtyWriteBackSurvivesCrash: a final output lands in the cache
// (dirty, shadow in the RSDS) and its master crashes before the
// Persistor gets to it. The pending write-back is never dropped — the
// Persistor reschedules until RAMCloud-style recovery promotes a
// backup, then pushes the exact acked payload. Zero acked writes lost.
func TestDirtyWriteBackSurvivesCrash(t *testing.T) {
	sys := newSystem(3)
	victim := sys.WorkerNodes[0]
	const key = "out/dirty"

	sys.Run(func() {
		for _, w := range sys.WorkerNodes {
			sys.KV.SetMemoryLimit(w, 1<<30)
		}
		if err := sys.RC.Put(victim, key, faas.Blob{Size: 256 << 10},
			faas.PutOpts{Kind: faas.KindFinal, ShouldCache: true}); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		// Kill the master at the same instant: the async Persistor finds
		// the cache unavailable and must keep rescheduling.
		sys.Net.SetNodeDown(victim, true)
		sys.KV.Crash(victim)

		sys.Env.Sleep(200 * time.Millisecond)
		if n, _ := sys.KV.Recover(victim); n == 0 {
			t.Error("recovery promoted nothing")
			return
		}
		sys.Net.SetNodeDown(victim, false)
		// Give the Persistor retry loop (PersistRetryDelay cadence) and
		// the breaker cooldown time to push the payload through.
		sys.Env.Sleep(3 * time.Second)

		m, ok := sys.RSDS.MetaOf(key)
		if !ok || m.IsShadow() || m.Size != 256<<10 {
			t.Errorf("acked write lost across crash: ok=%v meta=%+v", ok, m)
		}
		if st := sys.RC.Stats(); st.WriteBacks == 0 {
			t.Errorf("no write-back recorded: %+v", st)
		}
	})
}
