package core

import (
	"ofc/internal/chaos"
	"ofc/internal/simnet"
)

// ApplyChaos arms a chaos schedule against a running System and wires
// the crash/restart hooks to every layer that owns per-node state: the
// cache cluster (crash + RAMCloud-style timed recovery), the FaaS
// worker (sandboxes die with the machine) and, on restart, the cache
// governor (the revived node re-grows its cache from booked-but-unused
// memory). Returns the injector so callers can inspect Applied().
//
// Must be called before the affected traffic starts; the injector
// fires on the simulation's virtual clock.
func (s *System) ApplyChaos(sched *chaos.Schedule, seed int64) *chaos.Injector {
	inj := chaos.NewInjector(s.Net, sched, seed)
	inj.OnCrash = func(n simnet.NodeID) {
		s.KV.Crash(n)
		if inv := s.Platform.InvokerOn(n); inv != nil {
			inv.SetDown(true)
		}
		// The cluster notices after CrashDetectTimeout and promotes the
		// victim's backup replicas; runs as its own process so the
		// injector timer is not held for the whole recovery.
		s.Env.Go(func() { s.KV.Recover(n) })
	}
	inj.OnRestart = func(n simnet.NodeID) {
		s.KV.Restart(n)
		if inv := s.Platform.InvokerOn(n); inv != nil {
			inv.SetDown(false)
		}
		if a := s.Gov.Agent(n); a != nil {
			a.Grow()
		}
	}
	inj.Start()
	return inj
}
