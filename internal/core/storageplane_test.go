package core

import (
	"testing"
	"time"

	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/simnet"
	"ofc/internal/store"
)

// TestCacheOffSystem runs the stack with the passthrough engine: the
// vanilla baseline as a backend. Every access pays the RSDS, nothing
// counts as a hit, no write-back machinery runs — and the system
// otherwise behaves identically.
func TestCacheOffSystem(t *testing.T) {
	opts := DefaultOptions()
	opts.Seed = 1
	opts.Workers = 3
	opts.NodeCapacity = 4 << 30
	opts.CacheOff = true
	sys := NewSystem(opts)

	if sys.KV != nil {
		t.Fatal("cache-off system must not build a cache cluster")
	}
	if !store.IsDurable(sys.Backend) {
		t.Fatal("cache-off backend must be durable")
	}
	if len(sys.Agents()) != 0 {
		t.Fatalf("cache-off system has %d cache agents, want 0", len(sys.Agents()))
	}

	fn := imageFn("blur", 20*time.Millisecond)
	sys.Register(fn)
	sys.Trainer.Pretrain(fn, synthSamples(sys.Pred.Schema(fn), 300, 3))

	var first, second *faas.Result
	sys.Run(func() {
		sys.RSDS.Put(sys.CtrlNode, "img/1", kvstore.Synthetic(64<<10), nil, false)
		sys.RSDS.SetFeatures("img/1", map[string]float64{"size": 64 * 1024, "width": 800, "height": 600, "channels": 3})
		req := func() *faas.Request {
			return &faas.Request{Function: fn, InputKeys: []string{"img/1"},
				Args:          map[string]float64{"sigma": 2},
				InputFeatures: map[string]float64{"size": 64 * 1024, "width": 800, "height": 600, "channels": 3}}
		}
		first = sys.Platform.Invoke(req())
		sys.Env.Sleep(time.Second)
		second = sys.Platform.Invoke(req())
	})
	if first.Err != nil || second.Err != nil {
		t.Fatalf("errs: %v %v", first.Err, second.Err)
	}
	// Both reads pay the RSDS cost — there is no cache to hit.
	if first.Extract < 35*time.Millisecond || second.Extract < 35*time.Millisecond {
		t.Errorf("extracts %v / %v, want RSDS cost both times", first.Extract, second.Extract)
	}
	// Writes are synchronous write-throughs (~115ms Swift PUT), not
	// 11ms shadow acks.
	if first.Load < 100*time.Millisecond {
		t.Errorf("load=%v, want synchronous RSDS cost", first.Load)
	}
	stats := sys.RC.Stats()
	if stats.Hits != 0 || stats.Admissions != 0 || stats.WriteBacks != 0 {
		t.Errorf("cache activity in cache-off mode: %+v", stats)
	}
	if stats.Misses < 2 || stats.BypassWrites < 2 {
		t.Errorf("stats=%+v, want ≥2 misses and ≥2 bypass writes", stats)
	}
	if hr := sys.RC.HitRatio(); hr != 0 {
		t.Errorf("hit ratio %v, want 0", hr)
	}
	// The output is durably in the RSDS, never a shadow.
	m, ok := sys.RSDS.MetaOf("out/img/1")
	if !ok || m.IsShadow() || m.Size != 32<<10 {
		t.Errorf("output not persisted: ok=%v meta=%+v", ok, m)
	}
}

// TestRouterByteMajorityLocality: with inputs mastered on different
// nodes, the router targets the node holding the majority of the input
// *bytes*, not whichever node masters the first key.
func TestRouterByteMajorityLocality(t *testing.T) {
	sys := newSystem(1)
	w0, w1 := sys.WorkerNodes[0], sys.WorkerNodes[1]
	fn := &faas.Function{Name: "join", Tenant: "t", MemoryBooked: 256 << 20, InputType: "none"}

	sys.Run(func() {
		for _, w := range sys.WorkerNodes {
			sys.KV.SetMemoryLimit(w, 1<<30)
		}
		// First key is small and lives on w0; the bulk of the bytes
		// live on w1.
		stage := []struct {
			key  string
			node simnet.NodeID
			size int64
		}{
			{"in/a", w0, 1 << 10},
			{"in/b", w1, 8 << 20},
			{"in/c", w1, 4 << 20},
		}
		for _, s := range stage {
			if _, err := sys.KV.Write(s.node, s.key, kvstore.Synthetic(s.size), nil, s.node); err != nil {
				t.Fatalf("stage %s: %v", s.key, err)
			}
		}
		pv, _ := store.PlacementViewOf(sys.Backend)
		r := NewRouter(pv)
		req := &faas.Request{Function: fn, InputKeys: []string{"in/a", "in/b", "in/c"}}
		inv := r.Route(req, sys.Platform.Invokers(), nil)
		if inv == nil {
			t.Fatal("router returned nil despite local capacity")
		}
		if inv.Node() != w1 {
			t.Errorf("routed to node %d, want byte-majority node %d", inv.Node(), w1)
		}
		// Old behavior check: key[0] alone would have picked w0.
		one := r.Route(&faas.Request{Function: fn, InputKeys: []string{"in/a"}}, sys.Platform.Invokers(), nil)
		if one == nil || one.Node() != w0 {
			t.Errorf("single-key locality broken: %v", one)
		}
	})
}
