package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

func TestIntervals(t *testing.T) {
	iv := DefaultIntervals()
	if iv.NumClasses() != 128 {
		t.Errorf("classes=%d", iv.NumClasses())
	}
	cases := []struct {
		bytes int64
		class int
	}{
		{0, 0}, {1, 0}, {16 << 20, 0}, {16<<20 + 1, 1}, {100 << 20, 6}, {2 << 30, 127}, {3 << 30, 127},
	}
	for _, c := range cases {
		if got := iv.ClassOf(c.bytes); got != c.class {
			t.Errorf("ClassOf(%d)=%d, want %d", c.bytes, got, c.class)
		}
	}
	if ub := iv.UpperBound(0); ub != 16<<20 {
		t.Errorf("UpperBound(0)=%d", ub)
	}
	if ub := iv.UpperBound(127); ub != 2<<30 {
		t.Errorf("UpperBound(127)=%d", ub)
	}
	if ub := iv.UpperBound(500); ub != 2<<30 {
		t.Errorf("UpperBound clamp=%d", ub)
	}
	names := iv.ClassNames()
	if names[0] != "16MB" || names[127] != "2048MB" {
		t.Errorf("names=%v...%v", names[0], names[127])
	}
}

func TestFeatureSchemaVector(t *testing.T) {
	fn := &faas.Function{Name: "blur", Tenant: "t", InputType: "image", ArgNames: []string{"sigma"}}
	s := NewFeatureSchema(fn)
	want := []string{"size", "width", "height", "channels", "sigma"}
	got := s.Names()
	if len(got) != len(want) {
		t.Fatalf("names=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names=%v, want %v", got, want)
		}
	}
	req := &faas.Request{
		Function:      fn,
		Args:          map[string]float64{"sigma": 2.5},
		InputFeatures: map[string]float64{"size": 1024, "width": 640, "height": 480},
	}
	v := s.Vector(req)
	if v[0] != 1024 || v[1] != 640 || v[2] != 480 || v[4] != 2.5 {
		t.Errorf("vector=%v", v)
	}
	if !isNaN(v[3]) {
		t.Errorf("channels should be missing, got %v", v[3])
	}
}

func isNaN(v float64) bool { return v != v }

// synthSamples builds samples from a synthetic memory law: mem = 64MB
// + size/1kB MB + 20*sigma MB. Inputs are drawn from a finite pool of
// distinct objects and a discrete argument set, as FaaSLoad does with
// its prepared datasets — which is what makes decision trees accurate
// on this task.
func synthSamples(schema *FeatureSchema, n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	type input struct{ size, width float64 }
	pool := make([]input, 16)
	for i := range pool {
		pool[i] = input{
			size:  float64(1+rng.Intn(128)) * 1024, // 1..128 kB
			width: float64(100 + rng.Intn(19)*100),
		}
	}
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		in := pool[rng.Intn(len(pool))]
		size := in.size
		width := in.width
		sigma := float64(1+rng.Intn(8)) * 0.5 // discrete user argument
		mem := int64(64<<20) + int64(size/1024)*(1<<20) + int64(20*sigma)*(1<<20)
		vals := make([]float64, len(schema.Names()))
		for j, name := range schema.Names() {
			switch name {
			case "size":
				vals[j] = size
			case "width":
				vals[j] = width
			case "height":
				vals[j] = width * 0.75
			case "channels":
				vals[j] = 3
			case "sigma":
				vals[j] = sigma
			}
		}
		out = append(out, Sample{
			Vals: vals, PeakMem: mem,
			Extract: 40 * time.Millisecond, Transform: 20 * time.Millisecond, Load: 115 * time.Millisecond,
			BenefitKnown: true,
		})
	}
	return out
}

func TestOnlineMaturation(t *testing.T) {
	env := sim.NewEnv(1)
	pred := NewPredictor(DefaultPredictorConfig())
	trainer := NewModelTrainer(pred, env)
	fn := &faas.Function{Name: "blur", Tenant: "t", InputType: "image", ArgNames: []string{"sigma"}, MemoryBooked: 2 << 30}
	schema := pred.Schema(fn)
	samples := synthSamples(schema, 500, 42)
	matured := 0
	for i, s := range samples {
		trainer.Observe(fn, &faas.Request{Function: fn}, s)
		if pred.Mature(fn) {
			matured = i + 1
			break
		}
	}
	if matured == 0 {
		t.Fatal("model never matured in 500 invocations")
	}
	// Paper §7.1.3: median 100, 95% under 450.
	if matured > 450 {
		t.Errorf("matured after %d invocations", matured)
	}
	// Advice must now be usable and conservative.
	req := &faas.Request{Function: fn, Args: map[string]float64{"sigma": 3},
		InputFeatures: map[string]float64{"size": 64 * 1024, "width": 800, "height": 600, "channels": 3}}
	adv := pred.Advise(req)
	if !adv.Use {
		t.Fatal("mature model gives no advice")
	}
	trueMem := int64(64<<20) + 64*(1<<20) + 60*(1<<20) // per the synthetic law
	if adv.Mem < trueMem-32<<20 {
		t.Errorf("advice %dMB way below true %dMB", adv.Mem>>20, trueMem>>20)
	}
	if adv.Mem > 2<<30 {
		t.Errorf("advice above the OWK ceiling")
	}
	if !adv.ShouldCache {
		t.Error("E+L dominate (155ms vs 20ms); caching should be advised")
	}
}

func TestImmatureModelGivesNoAdvice(t *testing.T) {
	pred := NewPredictor(DefaultPredictorConfig())
	fn := &faas.Function{Name: "f", Tenant: "t", InputType: "image", MemoryBooked: 1 << 30}
	adv := pred.Advise(&faas.Request{Function: fn})
	if adv.Use || adv.ShouldCache {
		t.Errorf("advice=%+v from blank model", adv)
	}
}

func TestPretrainMaturesImmediately(t *testing.T) {
	env := sim.NewEnv(1)
	pred := NewPredictor(DefaultPredictorConfig())
	trainer := NewModelTrainer(pred, env)
	fn := &faas.Function{Name: "g", Tenant: "t", InputType: "image", ArgNames: []string{"sigma"}, MemoryBooked: 2 << 30}
	trainer.Pretrain(fn, synthSamples(pred.Schema(fn), 300, 7))
	if !pred.Mature(fn) {
		t.Fatal("pretrained model not mature")
	}
}

func TestBenefitLabel(t *testing.T) {
	s := Sample{Extract: 40 * time.Millisecond, Transform: 20 * time.Millisecond, Load: 115 * time.Millisecond}
	if !s.BenefitLabel() {
		t.Error("E+L=155 of 175 total: should be beneficial")
	}
	s = Sample{Extract: 5 * time.Millisecond, Transform: 300 * time.Millisecond, Load: 5 * time.Millisecond}
	if s.BenefitLabel() {
		t.Error("compute-bound: not beneficial")
	}
	s = Sample{}
	if s.BenefitLabel() {
		t.Error("zero sample labeled beneficial")
	}
}

// newSystem builds a small OFC stack for integration tests.
func newSystem(seed int64) *System {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Workers = 3
	opts.NodeCapacity = 4 << 30
	return NewSystem(opts)
}

// imageFn builds a learnable test function: reads the input, computes,
// writes a final output half the input size.
func imageFn(name string, compute time.Duration) *faas.Function {
	return &faas.Function{
		Name: name, Tenant: "t", MemoryBooked: 1 << 30, InputType: "image",
		ArgNames: []string{"sigma"},
		Body: func(ctx *faas.Ctx) error {
			key := ctx.InputKeys()[0]
			blob, err := ctx.Extract(key)
			if err != nil {
				return err
			}
			peak := int64(64<<20) + blob.Size*100 + int64(ctx.Arg("sigma")*20)*(1<<20)
			if err := ctx.Transform(compute, peak); err != nil {
				return err
			}
			return ctx.Load("out/"+key, faas.Blob{Size: blob.Size / 2}, faas.KindFinal)
		},
	}
}

func TestSystemEndToEndCaching(t *testing.T) {
	sys := newSystem(1)
	fn := imageFn("blur", 20*time.Millisecond)
	sys.Register(fn)
	// Pretrain so caching starts immediately.
	sys.Trainer.Pretrain(fn, synthSamples(sys.Pred.Schema(fn), 300, 3))

	var first, second *faas.Result
	sys.Run(func() {
		sys.RSDS.Put(sys.CtrlNode, "img/1", kvstore.Synthetic(64<<10), nil, false)
		sys.RSDS.SetFeatures("img/1", map[string]float64{"size": 64 * 1024, "width": 800, "height": 600, "channels": 3})
		req := func() *faas.Request {
			return &faas.Request{Function: fn, InputKeys: []string{"img/1"},
				Args:          map[string]float64{"sigma": 2},
				InputFeatures: map[string]float64{"size": 64 * 1024, "width": 800, "height": 600, "channels": 3}}
		}
		first = sys.Platform.Invoke(req())
		sys.Env.Sleep(time.Second) // let the admission land
		second = sys.Platform.Invoke(req())
	})
	if first.Err != nil || second.Err != nil {
		t.Fatalf("errs: %v %v", first.Err, second.Err)
	}
	// First read misses (RSDS ≈40ms); second hits the cache (µs-ms).
	if first.Extract < 35*time.Millisecond {
		t.Errorf("first extract=%v, want RSDS cost", first.Extract)
	}
	if second.Extract > 5*time.Millisecond {
		t.Errorf("second extract=%v, want cache hit", second.Extract)
	}
	// Both loads use the shadow write-back: ≈11ms, far below the
	// ≈115ms synchronous Swift PUT.
	if first.Load > 30*time.Millisecond {
		t.Errorf("first load=%v, want shadow cost", first.Load)
	}
	stats := sys.RC.Stats()
	if stats.Hits < 1 || stats.Misses < 1 || stats.Admissions < 1 {
		t.Errorf("stats=%+v", stats)
	}
	if stats.WriteBacks < 1 {
		t.Errorf("no write-backs: %+v", stats)
	}
	// Final outputs must be persisted in the RSDS and discarded from
	// the cache.
	m, ok := sys.RSDS.MetaOf("out/img/1")
	if !ok || m.IsShadow() {
		t.Errorf("final output not persisted: ok=%v meta=%+v", ok, m)
	}
	if _, found := sys.KV.MasterOf("out/img/1"); found {
		t.Error("final output still cached after write-back")
	}
}

func TestPipelineIntermediatesDiscarded(t *testing.T) {
	sys := newSystem(1)
	stage1 := &faas.Function{Name: "map", Tenant: "t", MemoryBooked: 512 << 20, InputType: "text",
		Body: func(ctx *faas.Ctx) error {
			return ctx.Load("mid/x", faas.Blob{Size: 1 << 20}, faas.KindIntermediate)
		}}
	stage2 := &faas.Function{Name: "reduce", Tenant: "t", MemoryBooked: 512 << 20, InputType: "text",
		Body: func(ctx *faas.Ctx) error {
			if _, err := ctx.Extract("mid/x"); err != nil {
				return err
			}
			return ctx.Load("final/x", faas.Blob{Size: 1 << 10}, faas.KindFinal)
		}}
	sys.Register(stage1)
	sys.Register(stage2)
	// Force caching on without ML (advisor off, manual shouldCache):
	// use a stub advisor that always advises caching.
	sys.Platform.Advisor = advisorAlways{}

	var results []*faas.Result
	var cachedDuringPipeline bool
	sys.Run(func() {
		r1 := sys.Platform.Invoke(&faas.Request{Function: stage1, Pipeline: "p1"})
		_, cachedDuringPipeline = sys.KV.MasterOf("mid/x")
		r2 := sys.Platform.Invoke(&faas.Request{Function: stage2, Pipeline: "p1", FinalStage: true, InputKeys: []string{"mid/x"}})
		results = []*faas.Result{r1, r2}
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("stage %d: %v", i+1, r.Err)
		}
	}
	if !cachedDuringPipeline {
		t.Error("intermediate not cached during pipeline")
	}
	// After the final stage: intermediate gone from cache and never in
	// the RSDS.
	if _, found := sys.KV.MasterOf("mid/x"); found {
		t.Error("intermediate still cached after pipeline end")
	}
	if _, ok := sys.RSDS.MetaOf("mid/x"); ok {
		t.Error("intermediate persisted to the RSDS")
	}
	// Stage 2's extract hit the cache.
	if results[1].Extract > 5*time.Millisecond {
		t.Errorf("stage2 extract=%v, want cache hit", results[1].Extract)
	}
}

// advisorAlways forces caching with a fixed memory advice.
type advisorAlways struct{}

func (advisorAlways) Advise(req *faas.Request) faas.Advice {
	return faas.Advice{Mem: 256 << 20, ShouldCache: true, Use: true}
}

func TestExternalReadBlocksOnShadow(t *testing.T) {
	sys := newSystem(1)
	fn := &faas.Function{Name: "w", Tenant: "t", MemoryBooked: 256 << 20, InputType: "none",
		Body: func(ctx *faas.Ctx) error {
			return ctx.Load("obj/ext", faas.Blob{Size: 4 << 20}, faas.KindFinal)
		}}
	sys.Register(fn)
	sys.Platform.Advisor = advisorAlways{}
	sys.Run(func() {
		res := sys.Platform.Invoke(&faas.Request{Function: fn})
		if res.Err != nil {
			t.Fatalf("invoke: %v", res.Err)
		}
		// Immediately read externally: the webhook must block until
		// the persistor finishes, then hand back a consistent object.
		_, m, err := sys.RSDS.Get(sys.StorageNode, "obj/ext", true)
		if err != nil {
			t.Fatalf("external get: %v", err)
		}
		if m.IsShadow() {
			t.Error("external read observed a shadow object")
		}
	})
}

func TestExternalWriteInvalidatesCache(t *testing.T) {
	sys := newSystem(1)
	sys.Run(func() {
		sys.KV.Write(sys.WorkerNodes[0], "obj/k", kvstore.Synthetic(1<<20), map[string]string{"kind": "input"}, sys.WorkerNodes[0])
		sys.RSDS.Put(sys.CtrlNode, "obj/k", kvstore.Synthetic(2<<20), nil, true) // external write
		if _, found := sys.KV.MasterOf("obj/k"); found {
			t.Error("cached copy survived external write")
		}
	})
}

func TestCacheAgentGrowAndReclaim(t *testing.T) {
	sys := newSystem(1)
	sys.Start()
	agent := sys.Agents()[0]
	inv := sys.Platform.Invokers()[0]
	// A live sandbox with a large booking donates its waste to the
	// cache (§1): booked 2 GB, advised 256 MB.
	fn := &faas.Function{Name: "donor", Tenant: "t", MemoryBooked: 2 << 30, InputType: "none",
		Body: func(ctx *faas.Ctx) error { return nil }}
	sys.Register(fn)
	sys.Platform.Advisor = advisorAlways{}
	var took time.Duration
	sys.Env.Go(func() {
		restore := sys.Platform.Router
		sys.Platform.Router = pinTo{node: inv.Node()}
		if res := sys.Platform.Invoke(&faas.Request{Function: fn}); res.Err != nil {
			t.Fatalf("donor invoke: %v", res.Err)
		}
		sys.Platform.Router = restore
		sys.Env.Sleep(time.Second)
		grant := inv.CacheGrant()
		want := inv.BookedWaste()
		if grant != want || grant < 1<<30 {
			t.Errorf("grant=%d, want booked waste %d", grant, want)
		}
		// Give the other nodes cache room so migration has a target
		// (their own sandboxes would normally provide it).
		for _, w := range sys.WorkerNodes[1:] {
			sys.KV.SetMemoryLimit(w, 1<<30)
		}
		// Fill the cache a bit, then reclaim more than free-in-grant.
		sys.KV.Write(inv.Node(), "a", kvstore.Synthetic(8<<20), map[string]string{"kind": "input"}, inv.Node())
		var err error
		took, err = agent.Reclaim(grant - 4<<20) // leaves less than the object size
		if err != nil {
			t.Errorf("reclaim: %v", err)
		}
		if inv.CacheGrant() != grant-(grant-4<<20) {
			t.Errorf("grant after reclaim=%d", inv.CacheGrant())
		}
		// The hot input should have been migrated, not lost.
		if _, _, err := sys.KV.Read(sys.WorkerNodes[1], "a"); err != nil {
			t.Errorf("object lost in reclaim: %v", err)
		}
		if m, _ := sys.KV.MasterOf("a"); m == inv.Node() {
			t.Error("object still mastered on the reclaimed node")
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
	if took <= 0 || took > 5*time.Millisecond {
		t.Errorf("reclaim critical path took %v", took)
	}
	m := agent.Metrics()
	if m.ScaleUps == 0 || m.ScaleDownMigration != 1 {
		t.Errorf("metrics=%+v", m)
	}
}

func TestPeriodicEvictionPolicy(t *testing.T) {
	sys := newSystem(1)
	cfg := DefaultCacheAgentConfig()
	inv := sys.Platform.Invokers()[0]
	agent := NewCacheAgent(sys.Env, inv, sys.KV, sys.RC, cfg)
	sys.Env.Go(func() {
		inv.SetCacheGrant(1 << 30)
		sys.KV.SetMemoryLimit(inv.Node(), 1<<30)
		node := inv.Node()
		// cold: 1 access, idle.
		sys.KV.Write(node, "cold", kvstore.Synthetic(1<<20), map[string]string{"kind": "input"}, node)
		// hot: accessed 6 times.
		sys.KV.Write(node, "hot", kvstore.Synthetic(1<<20), map[string]string{"kind": "input"}, node)
		for i := 0; i < 6; i++ {
			sys.Env.Sleep(30 * time.Second)
			sys.KV.Read(node, "hot")
		}
		sys.Env.Sleep(cfg.EvictionEvery) // age both beyond one period
		agent.periodicEviction()
		if _, found := sys.KV.MasterOf("cold"); found {
			t.Error("cold object survived periodic eviction (n_access < 5)")
		}
		if _, found := sys.KV.MasterOf("hot"); !found {
			t.Error("hot object evicted")
		}
		// Idle criterion: hot object untouched for > 30 min dies too.
		sys.Env.Sleep(31 * time.Minute)
		agent.periodicEviction()
		if _, found := sys.KV.MasterOf("hot"); found {
			t.Error("idle object survived (T_access > 30 min)")
		}
	})
	sys.Env.Run()
}

func TestRouterPrefersDataLocality(t *testing.T) {
	sys := newSystem(1)
	fn := imageFn("route", 5*time.Millisecond)
	sys.Register(fn)
	sys.Platform.Advisor = advisorAlways{}
	target := sys.WorkerNodes[2]
	var res *faas.Result
	sys.Run(func() {
		// Master the input object's cached copy on worker 2.
		sys.KV.SetMemoryLimit(target, 1<<30)
		sys.Platform.Invokers()[2].SetCacheGrant(1 << 30)
		sys.KV.Write(target, "img/loc", kvstore.Synthetic(32<<10), map[string]string{"kind": "input"}, target)
		res = sys.Platform.Invoke(&faas.Request{Function: fn, InputKeys: []string{"img/loc"},
			Args: map[string]float64{"sigma": 1}})
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Node != target {
		t.Errorf("routed to %v, want data node %v", res.Node, target)
	}
	// And it was a local hit.
	if sys.RC.Stats().LocalHits != 1 {
		t.Errorf("stats=%+v", sys.RC.Stats())
	}
}

func TestSlackAdjustsToChurn(t *testing.T) {
	sys := newSystem(1)
	cfg := DefaultCacheAgentConfig()
	inv := sys.Platform.Invokers()[0]
	agent := NewCacheAgent(sys.Env, inv, sys.KV, sys.RC, cfg)
	sys.Env.Go(func() {
		if agent.Slack() != cfg.InitialSlack {
			t.Errorf("initial slack=%d", agent.Slack())
		}
		// Simulate churn: reserve/release 700MB between samples.
		inv.SetCacheGrant(0)
		for i := 0; i < 4; i++ {
			r, err := inv.Reserve(700 << 20)
			if err != nil {
				t.Fatalf("reserve: %v", err)
			}
			_ = r
			agent.sampleChurn()
			inv.ReleaseMem(700 << 20)
			agent.sampleChurn()
		}
		agent.adjustSlack()
		if s := agent.Slack(); s != 700<<20 {
			t.Errorf("slack=%dMB, want 700MB (max churn)", s>>20)
		}
	})
	sys.Env.Run()
}

func TestRelaxedConsistencySkipsShadow(t *testing.T) {
	sys := newSystem(1)
	sys.RC.SetRelaxed("lazy/")
	fn := &faas.Function{Name: "relax", Tenant: "t", MemoryBooked: 1 << 30, InputType: "none",
		Body: func(ctx *faas.Ctx) error {
			if err := ctx.Load("lazy/out", faas.Blob{Size: 1 << 20}, faas.KindFinal); err != nil {
				return err
			}
			return ctx.Load("strict/out", faas.Blob{Size: 1 << 20}, faas.KindFinal)
		}}
	sys.Register(fn)
	sys.Platform.Advisor = advisorAlways{}
	var loadTime time.Duration
	sys.Run(func() {
		res := sys.Platform.Invoke(&faas.Request{Function: fn})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		loadTime = res.Load
		// Relaxed object: cached, no RSDS presence at all yet.
		if _, ok := sys.RSDS.MetaOf("lazy/out"); ok {
			t.Error("relaxed write created an RSDS object eagerly")
		}
		if _, found := sys.KV.MasterOf("lazy/out"); !found {
			t.Error("relaxed output not cached")
		}
		// Strict object: shadow created immediately.
		if m, ok := sys.RSDS.MetaOf("strict/out"); !ok || m.LatestVersion == 0 {
			t.Errorf("strict write missing shadow: ok=%v meta=%+v", ok, m)
		}
	})
	// The relaxed write skipped the ~11 ms shadow: only one shadow PUT
	// in the whole Load phase.
	if loadTime > 20*time.Millisecond {
		t.Errorf("load=%v; relaxed write should cost ~1 shadow only", loadTime)
	}
	// Persistence still happens when the agent writes it back.
	sys2 := newSystem(2)
	sys2.RC.SetRelaxed("lazy/")
	sys2.Env.Go(func() {
		node := sys2.WorkerNodes[0]
		sys2.KV.SetMemoryLimit(node, 1<<30)
		sys2.Platform.Invokers()[0].SetCacheGrant(1 << 30)
		sys2.KV.Write(node, "lazy/obj", kvstore.Synthetic(1<<20),
			map[string]string{"kind": "final", "dirty": "1", "version": "0"}, node)
		if !sys2.RC.WriteBackNow(node, "lazy/obj") {
			t.Error("lazy write-back failed")
		}
		if m, ok := sys2.RSDS.MetaOf("lazy/obj"); !ok || m.Size != 1<<20 {
			t.Errorf("lazy object not persisted: ok=%v meta=%+v", ok, m)
		}
		sys2.Env.Stop()
	})
	sys2.Env.Run()
}

func TestCrashRecoveryUnderOFC(t *testing.T) {
	// A worker (and its cache master) fail-stops; RAMCloud recovery
	// re-masters its objects from backups and reads keep working.
	sys := newSystem(3)
	sys.Run(func() {
		victim := sys.WorkerNodes[0]
		sys.KV.SetMemoryLimit(victim, 1<<30)
		sys.Platform.Invokers()[0].SetCacheGrant(1 << 30)
		for _, w := range sys.WorkerNodes[1:] {
			sys.KV.SetMemoryLimit(w, 1<<30)
		}
		for i := 0; i < 6; i++ {
			key := fmt.Sprintf("cr/%d", i)
			if _, err := sys.KV.Write(victim, key, kvstore.Synthetic(2<<20),
				map[string]string{"kind": "input"}, victim); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		sys.KV.Crash(victim)
		n := sys.KV.RecoverNode(victim)
		if n != 6 {
			t.Errorf("recovered %d, want 6", n)
		}
		for i := 0; i < 6; i++ {
			key := fmt.Sprintf("cr/%d", i)
			if _, _, err := sys.KV.Read(sys.WorkerNodes[1], key); err != nil {
				t.Errorf("read %s after recovery: %v", key, err)
			}
		}
	})
}

func TestHorizontalScaleOut(t *testing.T) {
	// Horizontal elasticity: a worker added at runtime starts taking
	// placements and invocations.
	sys := newSystem(4)
	fn := imageFn("scaleout", 5*time.Millisecond)
	sys.Register(fn)
	sys.Platform.Advisor = advisorAlways{}
	sys.Run(func() {
		node := sys.Net.AddNode("worker-new").ID
		sys.KV.AddServer(node, 0)
		inv := sys.Platform.AddInvoker(node, 4<<30, sys.RC)
		agent := NewCacheAgent(sys.Env, inv, sys.KV, sys.RC, DefaultCacheAgentConfig())
		sys.Gov.Add(agent)
		// Force an invocation onto the new node; its sandbox's booked
		// waste feeds the new node's cache at placement time.
		sys.RSDS.Put(sys.CtrlNode, "img/new", kvstore.Synthetic(32<<10), nil, false)
		old := sys.Platform.Router
		sys.Platform.Router = pinTo{node: node}
		res := sys.Platform.Invoke(&faas.Request{Function: fn, InputKeys: []string{"img/new"},
			Args: map[string]float64{"sigma": 1}})
		sys.Platform.Router = old
		if res.Err != nil {
			t.Fatalf("invoke on new worker: %v", res.Err)
		}
		if inv.CacheGrant() == 0 {
			t.Fatal("new worker's cache grant is zero after placement")
		}
		if res.Node != node {
			t.Errorf("ran on %v, want new node %v", res.Node, node)
		}
		// The admission landed on the new node's cache.
		sys.Env.Sleep(time.Second)
		if m, ok := sys.KV.MasterOf("img/new"); !ok || m != node {
			t.Errorf("master=%v ok=%v, want new node", m, ok)
		}
	})
}

type pinTo struct{ node simnet.NodeID }

func (p pinTo) Route(req *faas.Request, all []*faas.Invoker, warm []*faas.Invoker) *faas.Invoker {
	for _, inv := range all {
		if inv.Node() == p.node {
			return inv
		}
	}
	return nil
}

func TestRCLibSizeCapBypass(t *testing.T) {
	sys := newSystem(5)
	sys.Platform.Advisor = advisorAlways{}
	fn := &faas.Function{Name: "big", Tenant: "t", MemoryBooked: 512 << 20, InputType: "none",
		Body: func(ctx *faas.Ctx) error {
			// 12 MB exceeds the 10 MB cache object cap: final write must
			// bypass the cache and go synchronously to the RSDS.
			return ctx.Load("big/out", faas.Blob{Size: 12 << 20}, faas.KindFinal)
		}}
	sys.Register(fn)
	sys.Run(func() {
		res := sys.Platform.Invoke(&faas.Request{Function: fn})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if _, found := sys.KV.MasterOf("big/out"); found {
			t.Error("oversized object admitted to the cache")
		}
		m, ok := sys.RSDS.MetaOf("big/out")
		if !ok || m.IsShadow() {
			t.Errorf("oversized object not synchronously persisted: %v %+v", ok, m)
		}
		if res.Load < 100*time.Millisecond {
			t.Errorf("bypass write cost %v, want full RSDS PUT", res.Load)
		}
	})
}

func TestRCLibReadMissNoAdmissionWhenNotBeneficial(t *testing.T) {
	sys := newSystem(6)
	fn := &faas.Function{Name: "nb", Tenant: "t", MemoryBooked: 512 << 20, InputType: "none",
		Body: func(ctx *faas.Ctx) error {
			_, err := ctx.Extract("nb/in")
			return err
		}}
	sys.Register(fn)
	// Advisor says caching is NOT beneficial.
	sys.Platform.Advisor = neverCacheAdvisor{}
	sys.Run(func() {
		sys.RSDS.Put(sys.CtrlNode, "nb/in", kvstore.Synthetic(64<<10), nil, false)
		res := sys.Platform.Invoke(&faas.Request{Function: fn, InputKeys: []string{"nb/in"}})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		sys.Env.Sleep(2 * time.Second)
		if _, found := sys.KV.MasterOf("nb/in"); found {
			t.Error("input admitted despite shouldCache=false")
		}
	})
}

type neverCacheAdvisor struct{}

func (neverCacheAdvisor) Advise(req *faas.Request) faas.Advice {
	return faas.Advice{Mem: 128 << 20, ShouldCache: false, Use: true}
}

func TestWriteBackNowMissingOrClean(t *testing.T) {
	sys := newSystem(7)
	sys.Env.Go(func() {
		node := sys.WorkerNodes[0]
		if sys.RC.WriteBackNow(node, "absent") {
			t.Error("write-back of absent key succeeded")
		}
		sys.KV.SetMemoryLimit(node, 1<<30)
		sys.KV.Write(node, "clean", kvstore.Synthetic(1<<10),
			map[string]string{"kind": "input", "dirty": "0"}, node)
		if sys.RC.WriteBackNow(node, "clean") {
			t.Error("write-back of clean object succeeded")
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
}

func TestTrainerPostMaturationDatasetPolicy(t *testing.T) {
	// §5.3.3: after maturation, only underpredictions and wildly-over
	// predictions re-enter the training set.
	env := sim.NewEnv(1)
	pred := NewPredictor(DefaultPredictorConfig())
	trainer := NewModelTrainer(pred, env)
	fn := &faas.Function{Name: "pol", Tenant: "t", InputType: "image", ArgNames: []string{"sigma"}, MemoryBooked: 2 << 30}
	trainer.Pretrain(fn, synthSamples(pred.Schema(fn), 300, 7))
	st := pred.state(fn)
	st.mu.Lock()
	before := st.memData.Len()
	st.mu.Unlock()
	// Feed 50 samples the model already predicts exactly: none should
	// be added.
	for _, s := range synthSamples(pred.Schema(fn), 50, 7)[:50] {
		trainer.Observe(fn, &faas.Request{Function: fn}, s)
	}
	st.mu.Lock()
	after := st.memData.Len()
	st.mu.Unlock()
	if grown := after - before; grown > 25 {
		t.Errorf("dataset grew by %d on well-predicted samples; §5.3.3 keeps it small", grown)
	}
}

func TestModelPersistenceRoundTrip(t *testing.T) {
	sys := newSystem(8)
	fn := imageFn("persist", 10*time.Millisecond)
	sys.Register(fn)
	sys.Trainer.Pretrain(fn, synthSamples(sys.Pred.Schema(fn), 300, 9))
	req := &faas.Request{Function: fn,
		Args:          map[string]float64{"sigma": 2},
		InputFeatures: map[string]float64{"size": 64 * 1024, "width": 800, "height": 600, "channels": 3}}
	want := sys.Pred.Advise(req)
	if !want.Use {
		t.Fatal("model not mature")
	}
	sys.Run(func() {
		if err := sys.PersistModels(fn); err != nil {
			t.Fatal(err)
		}
		// A fresh controller (new Predictor) restores the models and
		// gives identical advice.
		fresh := NewPredictor(DefaultPredictorConfig())
		blob, _, err := sys.RSDS.Get(sys.CtrlNode, "ofc-models/"+fn.ID(), false)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.ImportModel(fn, blob.Data); err != nil {
			t.Fatal(err)
		}
		got := fresh.Advise(req)
		if got != want {
			t.Errorf("advice after restore %+v, want %+v", got, want)
		}
	})
}

func TestModelImportRejectsWrongFunction(t *testing.T) {
	sys := newSystem(9)
	a := imageFn("fa", time.Millisecond)
	b := imageFn("fb", time.Millisecond)
	sys.Register(a)
	sys.Register(b)
	sys.Trainer.Pretrain(a, synthSamples(sys.Pred.Schema(a), 200, 1))
	data, err := sys.Pred.ExportModel(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Pred.ImportModel(b, data); err == nil {
		t.Error("bundle for fa accepted by fb")
	}
}

func TestChunkingLargeFinalObject(t *testing.T) {
	sys := newSystem(10)
	sys.RC.EnableChunking()
	sys.Platform.Advisor = advisorAlways{}
	const size = 25 << 20 // 25 MB > 10 MB cap → 4 chunks
	fn := &faas.Function{Name: "huge", Tenant: "t", MemoryBooked: 1 << 30, InputType: "none",
		Body: func(ctx *faas.Ctx) error {
			return ctx.Load("huge/out", faas.Blob{Size: size}, faas.KindFinal)
		}}
	reader := &faas.Function{Name: "hr", Tenant: "t", MemoryBooked: 1 << 30, InputType: "none",
		Body: func(ctx *faas.Ctx) error {
			blob, err := ctx.Extract("huge/out")
			if err != nil {
				return err
			}
			if blob.Size != size {
				t.Errorf("reassembled size %d, want %d", blob.Size, size)
			}
			return nil
		}}
	sys.Register(fn)
	sys.Register(reader)
	sys.Run(func() {
		res := sys.Platform.Invoke(&faas.Request{Function: fn})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		// The write avoided the synchronous 25 MB RSDS PUT (≈530 ms):
		// shadow (11 ms) + replicated stripe writes (~tens of ms).
		if res.Load > 150*time.Millisecond {
			t.Errorf("chunked load=%v, want shadow+stripe cost", res.Load)
		}
		// Chunks live in the cache until the persistor reassembles.
		if _, found := sys.KV.MasterOf("huge/out#0"); !found {
			t.Error("stripe 0 not cached")
		}
		// A reader served before persist completes sees the full object
		// from the stripes.
		before := sys.RC.Stats()
		r2 := sys.Platform.Invoke(&faas.Request{Function: reader}) // may race persist; both paths valid
		if r2.Err != nil {
			t.Fatal(r2.Err)
		}
		_ = before
		// After settling, the RSDS holds the whole payload and the
		// stripes are gone (§6.3 discard-after-write-back).
		sys.Env.Sleep(3 * time.Second)
		m, ok := sys.RSDS.MetaOf("huge/out")
		if !ok || m.IsShadow() || m.Size != size {
			t.Errorf("RSDS after persist: ok=%v meta=%+v", ok, m)
		}
		if _, found := sys.KV.MasterOf("huge/out#0"); found {
			t.Error("stripes not discarded after write-back")
		}
	})
}

func TestChunkingIntermediatesDiscardedWithPipeline(t *testing.T) {
	sys := newSystem(11)
	sys.RC.EnableChunking()
	sys.Platform.Advisor = advisorAlways{}
	const size = 18 << 20
	w := &faas.Function{Name: "cw", Tenant: "t", MemoryBooked: 1 << 30, InputType: "none",
		Body: func(ctx *faas.Ctx) error {
			return ctx.Load("cm/mid", faas.Blob{Size: size}, faas.KindIntermediate)
		}}
	r := &faas.Function{Name: "cr", Tenant: "t", MemoryBooked: 1 << 30, InputType: "none",
		Body: func(ctx *faas.Ctx) error {
			blob, err := ctx.Extract("cm/mid")
			if err != nil {
				return err
			}
			if blob.Size != size {
				t.Errorf("intermediate size %d", blob.Size)
			}
			return nil
		}}
	sys.Register(w)
	sys.Register(r)
	sys.Run(func() {
		if res := sys.Platform.Invoke(&faas.Request{Function: w, Pipeline: "cp"}); res.Err != nil {
			t.Fatal(res.Err)
		}
		if res := sys.Platform.Invoke(&faas.Request{Function: r, Pipeline: "cp", FinalStage: true, InputKeys: []string{"cm/mid"}}); res.Err != nil {
			t.Fatal(res.Err)
		}
		// Pipeline done: stripes discarded, nothing in the RSDS.
		if _, found := sys.KV.MasterOf("cm/mid#0"); found {
			t.Error("chunked intermediate survived pipeline end")
		}
		if _, ok := sys.RSDS.MetaOf("cm/mid"); ok {
			t.Error("chunked intermediate persisted")
		}
	})
}

func TestStorageTriggersFireFunctions(t *testing.T) {
	sys := newSystem(12)
	fn := imageFn("ontrigger", 5*time.Millisecond)
	sys.Register(fn)
	sys.Trainer.Pretrain(fn, synthSamples(sys.Pred.Schema(fn), 300, 13))
	triggers := NewTriggers(sys, func(key string, size int64) map[string]float64 {
		return map[string]float64{"size": float64(size), "width": 800, "height": 600, "channels": 3}
	})
	triggers.Register("uploads/", fn, map[string]float64{"sigma": 1})
	sys.Run(func() {
		// An external client uploads two objects under the watched
		// prefix and one elsewhere.
		sys.RSDS.Put(sys.StorageNode, "uploads/a.jpg", kvstore.Synthetic(32<<10), nil, true)
		sys.RSDS.Put(sys.StorageNode, "uploads/b.jpg", kvstore.Synthetic(64<<10), nil, true)
		sys.RSDS.Put(sys.StorageNode, "other/c.jpg", kvstore.Synthetic(64<<10), nil, true)
		sys.Env.Sleep(5 * time.Second)
	})
	if got := triggers.Fired(); got != 2 {
		t.Errorf("fired=%d, want 2", got)
	}
	// The triggered invocations produced outputs (registered under the
	// function's tenant) and feature sidecars for the new objects.
	if f := sys.RSDS.Features("uploads/a.jpg"); f == nil || f["width"] != 800 {
		t.Errorf("features not extracted: %v", f)
	}
	st := sys.Platform.Stats()
	// 2 triggered + their persistors.
	if st.Invocations < 2 {
		t.Errorf("invocations=%d", st.Invocations)
	}
	acts := sys.Platform.Activations(0)
	seen := 0
	for _, a := range acts {
		if a.Function == "t/ontrigger" && a.Error == "" {
			seen++
		}
	}
	if seen != 2 {
		t.Errorf("triggered activations=%d, want 2", seen)
	}
}

// Property: write-back completeness — after any mix of cacheable final
// writes settles, every object is durably in the RSDS with its latest
// size and no shadow gap, and none linger in the cache.
func TestPropertyWriteBackCompleteness(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%12) + 2
		sys := newSystem(seed)
		sys.Platform.Advisor = advisorAlways{}
		keys := make([]string, n)
		sizes := make([]int64, n)
		fn := &faas.Function{Name: "wbp", Tenant: "t", MemoryBooked: 512 << 20, InputType: "none",
			Body: func(ctx *faas.Ctx) error {
				for i := range keys {
					if err := ctx.Load(keys[i], faas.Blob{Size: sizes[i]}, faas.KindFinal); err != nil {
						return err
					}
				}
				return nil
			}}
		sys.Register(fn)
		rng := rand.New(rand.NewSource(seed))
		for i := range keys {
			keys[i] = fmt.Sprintf("wbp/%d/%d", seed, i)
			sizes[i] = int64(rng.Intn(4<<20) + 1)
		}
		ok := true
		sys.Run(func() {
			res := sys.Platform.Invoke(&faas.Request{Function: fn})
			if res.Err != nil {
				ok = false
				return
			}
			sys.Env.Sleep(10 * time.Second) // settle all persistors
			for i := range keys {
				m, found := sys.RSDS.MetaOf(keys[i])
				if !found || m.IsShadow() || m.Size != sizes[i] {
					ok = false
				}
				if _, cached := sys.KV.MasterOf(keys[i]); cached {
					ok = false // final outputs are discarded post-persist
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestReclaimFailureSurfaces(t *testing.T) {
	// When even the cache cannot yield enough memory, the platform
	// reports ErrNoCapacity rather than wedging.
	opts := DefaultOptions()
	opts.Workers = 2
	opts.NodeCapacity = 256 << 20 // tiny nodes
	sys := NewSystem(opts)
	fn := &faas.Function{Name: "big", Tenant: "t", MemoryBooked: 1 << 30, InputType: "none",
		Body: func(ctx *faas.Ctx) error { return nil }}
	sys.Register(fn)
	var res *faas.Result
	sys.Run(func() {
		res = sys.Platform.Invoke(&faas.Request{Function: fn})
	})
	if !errors.Is(res.Err, faas.ErrNoCapacity) {
		t.Errorf("err=%v, want ErrNoCapacity", res.Err)
	}
}

func TestInvokeNilFunction(t *testing.T) {
	sys := newSystem(20)
	var res *faas.Result
	sys.Run(func() {
		res = sys.Platform.Invoke(&faas.Request{})
	})
	if !errors.Is(res.Err, faas.ErrUnregistered) {
		t.Errorf("err=%v", res.Err)
	}
}

func TestSlackAdaptsThroughPeriodicLoops(t *testing.T) {
	// Drive sandbox churn for several minutes with the agent's own
	// periodic loops running; the slack pool must grow beyond its
	// 100 MB initial value to cover the observed churn.
	sys := newSystem(21)
	agent := sys.Agents()[0]
	inv := sys.Platform.Invokers()[0]
	sys.Start()
	sys.Env.Go(func() {
		for i := 0; i < 10; i++ {
			if _, err := inv.Reserve(600 << 20); err != nil {
				t.Fatalf("reserve: %v", err)
			}
			sys.Env.Sleep(45 * time.Second)
			inv.ReleaseMem(600 << 20)
			sys.Env.Sleep(45 * time.Second)
		}
		if s := agent.Slack(); s <= 100<<20 {
			t.Errorf("slack=%dMB never adapted to 600MB churn", s>>20)
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
}

func TestKeepAliveExpiryReturnsMemoryToPool(t *testing.T) {
	// After a sandbox expires, its booked waste vanishes and the next
	// rebalance shrinks the cache grant back toward zero.
	sys := newSystem(22)
	fn := &faas.Function{Name: "exp", Tenant: "t", MemoryBooked: 1 << 30, InputType: "none",
		Body: func(ctx *faas.Ctx) error { return nil }}
	sys.Register(fn)
	sys.Platform.Advisor = advisorAlways{}
	sys.Start()
	sys.Env.Go(func() {
		res := sys.Platform.Invoke(&faas.Request{Function: fn})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		inv := invokerOf(sys, res.Node)
		grantWarm := inv.CacheGrant()
		if grantWarm < 700<<20 {
			t.Fatalf("grant=%dMB with a live 1GB-booked sandbox", grantWarm>>20)
		}
		// Past keep-alive + one grow tick, the grant collapses.
		sys.Env.Sleep(sys.Platform.Config().KeepAlive + 10*time.Second)
		if g := inv.CacheGrant(); g != 0 {
			t.Errorf("grant=%dMB after sandbox expiry, want 0", g>>20)
		}
		if inv.Reserved() != 0 {
			t.Errorf("reserved=%d after expiry", inv.Reserved())
		}
		sys.Env.Stop()
	})
	sys.Env.Run()
}

func invokerOf(sys *System, node simnet.NodeID) *faas.Invoker {
	for _, inv := range sys.Platform.Invokers() {
		if inv.Node() == node {
			return inv
		}
	}
	return nil
}
