package core

import (
	"time"

	"ofc/internal/faas"
	"ofc/internal/metrics"
	"ofc/internal/overload"
)

// OverloadConfig bundles the tuning of the three overload-control
// pieces: the admission gate, the shared retry budget and the
// degradation state machine.
type OverloadConfig struct {
	Admission  overload.AdmissionConfig
	Budget     overload.BudgetConfig
	Controller overload.ControllerConfig
}

// DefaultOverloadConfig returns constants sized for the default
// testbed deployment.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		Admission:  overload.DefaultAdmissionConfig(),
		Budget:     overload.DefaultBudgetConfig(),
		Controller: overload.DefaultControllerConfig(),
	}
}

// OverloadControl is the wired overload subsystem of one System: the
// gate in front of the platform, the budget under every retry path,
// the controller reading the health signals, and the timeline of
// state transitions for reports.
type OverloadControl struct {
	sys        *System
	Admission  *overload.Admission
	Budget     *overload.RetryBudget
	Controller *overload.Controller
	Timeline   *metrics.Timeline
}

// EnableOverload installs end-to-end overload control on the system:
// an admission queue gating Platform.Invoke, a retry budget shared by
// faas OOM/reroute retries and the storage resilience layer, and the
// Normal→Brownout→Shed controller consuming queue depth, OOM-kill
// rate, reclaim-failure rate and store latency. Call before Run; the
// controller's sampling loop is armed by Start.
func (s *System) EnableOverload(cfg OverloadConfig) *OverloadControl {
	adm := overload.NewAdmission(s.Env, cfg.Admission)
	bud := overload.NewRetryBudget(s.Env, cfg.Budget)
	oc := &OverloadControl{
		sys: s, Admission: adm, Budget: bud, Timeline: &metrics.Timeline{},
	}
	oc.Controller = overload.NewController(s.Env, cfg.Controller, func() overload.Signals {
		return overload.Signals{
			QueueDepth:      float64(adm.Depth()),
			OOMKills:        float64(s.Platform.Stats().OOMKills),
			ReclaimFailures: float64(s.AggregateAgentMetrics().ReclaimFailures),
			StoreLatencyP99: s.RC.StoreLatencyP99(),
		}
	})
	oc.Controller.OnChange(func(from, to overload.State) {
		oc.Timeline.Mark(time.Duration(s.Env.Now()), from.String()+"->"+to.String())
		oc.apply(to)
	})
	s.Platform.Admission = admissionAdapter{adm}
	s.Platform.Retry = faasRetryGate{bud}
	s.RC.SetRetryGate(storeRetryGate{bud})
	s.Overload = oc
	return oc
}

// apply propagates a state change to every degradation hook.
func (oc *OverloadControl) apply(to overload.State) {
	brown := to >= overload.Brownout
	oc.Admission.SetLevel(to)
	oc.sys.RC.SetBrownout(brown)
	if r, ok := oc.sys.Platform.Router.(*Router); ok {
		r.SetBrownout(brown)
	}
	for _, a := range oc.sys.Agents() {
		a.SetBrownout(brown)
	}
}

// State reports the current degradation level.
func (oc *OverloadControl) State() overload.State { return oc.Controller.State() }

// admissionAdapter exposes the tenant-keyed gate as a
// faas.AdmissionController. Platform helper functions (tenant "ofc" —
// the Persistor carrying acked writes to durability) are exempt: the
// overload layer must never delay or shed the durability path.
type admissionAdapter struct{ adm *overload.Admission }

func (a admissionAdapter) Admit(req *faas.Request) (func(), error) {
	if req.Function.Tenant == "ofc" {
		return func() {}, nil
	}
	return a.adm.Admit(req.Function.Tenant)
}

// faasRetryGate adapts the budget to faas.RetryPolicy, with the same
// platform-tenant exemption as admission.
type faasRetryGate struct{ bud *overload.RetryBudget }

func (g faasRetryGate) AllowRetry(req *faas.Request, cause error) bool {
	if req.Function != nil && req.Function.Tenant == "ofc" {
		return true
	}
	return g.bud.Allow()
}

// storeRetryGate adapts the budget to store.RetryGate. Storage
// re-attempts have no tenant context; a denied retry surfaces as an
// unavailability error and the proxy falls back to the RSDS, so
// durability is unaffected.
type storeRetryGate struct{ bud *overload.RetryBudget }

func (g storeRetryGate) AllowRetry() bool { return g.bud.Allow() }
