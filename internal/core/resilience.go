// The graceful-degradation layer (timeouts, jittered retry, per-server
// circuit breakers) moved into the storage data plane as the
// store.Resilient middleware; these aliases keep the core-facing names
// that experiments and drills configure it through.
package core

import "ofc/internal/store"

// ResilienceConfig tunes the proxy's behavior when the cache
// misbehaves. See store.ResilienceConfig for the field semantics.
type ResilienceConfig = store.ResilienceConfig

// DefaultResilienceConfig returns the testbed constants.
func DefaultResilienceConfig() ResilienceConfig { return store.DefaultResilienceConfig() }

// Sentinel errors of the resilience layer, re-exported under their
// historical core names.
var (
	ErrCacheTimeout = store.ErrCacheTimeout
	ErrBreakerOpen  = store.ErrBreakerOpen
)
