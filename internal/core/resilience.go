package core

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// ResilienceConfig tunes rclib's behavior when the cache misbehaves:
// per-operation deadlines, bounded retry with exponential backoff and
// jitter, and a per-server circuit breaker that short-circuits to the
// RSDS while a node recovers.
type ResilienceConfig struct {
	// OpTimeout is the deadline for one cache operation attempt.
	OpTimeout time.Duration
	// MaxRetries is the number of re-attempts after the first try.
	MaxRetries int
	// RetryBase is the first backoff; it doubles per attempt up to
	// RetryMax. Jitter randomizes each backoff by ±Jitter fraction.
	RetryBase time.Duration
	RetryMax  time.Duration
	Jitter    float64
	// BreakerThreshold consecutive unavailability errors against one
	// server open its breaker; while open, cache ops targeting it fail
	// fast (straight to the RSDS). After BreakerCooldown a probe is
	// allowed through (half-open).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PersistRetryDelay is how long a Persistor waits before retrying
	// when the cache is unavailable; the pending write-back is never
	// dropped (acked writes survive in backup replicas).
	PersistRetryDelay time.Duration
}

// DefaultResilienceConfig returns constants sized for the testbed:
// timeouts well above healthy op latency, a breaker that trips within
// a handful of failed ops, and a cooldown on the order of RAMCloud's
// fast recovery.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		OpTimeout:         100 * time.Millisecond,
		MaxRetries:        2,
		RetryBase:         5 * time.Millisecond,
		RetryMax:          50 * time.Millisecond,
		Jitter:            0.2,
		BreakerThreshold:  3,
		BreakerCooldown:   time.Second,
		PersistRetryDelay: 500 * time.Millisecond,
	}
}

// Sentinel errors of the resilience layer.
var (
	errCacheTimeout = errors.New("core: cache operation timed out")
	errBreakerOpen  = errors.New("core: cache circuit breaker open")
)

// isCacheUnavailable classifies errors that mean "the cache cannot
// serve this right now" — the triggers for RSDS fallback — as opposed
// to definitive answers like ErrNotFound or ErrNoSpace.
func isCacheUnavailable(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, kvstore.ErrCrashed) ||
		errors.Is(err, kvstore.ErrNoSuchServer) ||
		errors.Is(err, kvstore.ErrNotEnoughSrvs) ||
		errors.Is(err, simnet.ErrUnreachable) ||
		errors.Is(err, errCacheTimeout) ||
		errors.Is(err, errBreakerOpen)
}

// breaker is one server's circuit-breaker state. failures counts
// consecutive unavailability errors; once it reaches the threshold the
// breaker is open until openUntil, after which one probe is let
// through (half-open): success closes it, failure re-opens.
type breaker struct {
	failures  int
	openUntil sim.Time
}

// brk manages the per-server breakers and the jitter RNG.
type brk struct {
	mu       sync.Mutex
	cfg      ResilienceConfig
	env      *sim.Env
	rng      *rand.Rand
	breakers map[simnet.NodeID]*breaker
	trips    int64
}

func newBrk(env *sim.Env, cfg ResilienceConfig) *brk {
	return &brk{
		cfg:      cfg,
		env:      env,
		rng:      env.NewRand(),
		breakers: make(map[simnet.NodeID]*breaker),
	}
}

// allow reports whether an op against node may proceed (breaker closed
// or half-open probe).
func (b *brk) allow(node simnet.NodeID) bool {
	now := b.env.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.breakers[node]
	if s == nil || s.failures < b.cfg.BreakerThreshold {
		return true
	}
	return now >= s.openUntil
}

// report records an op outcome against node.
func (b *brk) report(node simnet.NodeID, ok bool) {
	now := b.env.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.breakers[node]
	if s == nil {
		s = &breaker{}
		b.breakers[node] = s
	}
	if ok {
		s.failures = 0
		return
	}
	s.failures++
	if s.failures >= b.cfg.BreakerThreshold {
		if s.failures == b.cfg.BreakerThreshold {
			b.trips++
		}
		s.openUntil = now + b.cfg.BreakerCooldown
	}
}

// state returns (failures, open) for node, for tests and introspection.
func (b *brk) state(node simnet.NodeID) (failures int, open bool) {
	now := b.env.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.breakers[node]
	if s == nil {
		return 0, false
	}
	return s.failures, s.failures >= b.cfg.BreakerThreshold && now < s.openUntil
}

// backoff computes the jittered exponential backoff for re-attempt n
// (n >= 1).
func (b *brk) backoff(n int) time.Duration {
	d := b.cfg.RetryBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= b.cfg.RetryMax {
			d = b.cfg.RetryMax
			break
		}
	}
	if d > b.cfg.RetryMax {
		d = b.cfg.RetryMax
	}
	if b.cfg.Jitter > 0 {
		b.mu.Lock()
		f := 1 + b.cfg.Jitter*(2*b.rng.Float64()-1)
		b.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// SetResilience replaces the proxy's resilience constants. Call before
// traffic starts; existing breaker state is reset.
func (rc *RCLib) SetResilience(cfg ResilienceConfig) {
	rc.brk = newBrk(rc.env, cfg)
	rc.res = cfg
}

// BreakerState exposes one server's breaker for tests and debugging.
func (rc *RCLib) BreakerState(node simnet.NodeID) (failures int, open bool) {
	return rc.brk.state(node)
}

// kvTarget picks the breaker key for ops on key: the current master if
// placement is known, otherwise the node the op would prefer.
func (rc *RCLib) kvTarget(key string, fallback simnet.NodeID) simnet.NodeID {
	if m, ok := rc.kv.MasterOf(key); ok {
		return m
	}
	return fallback
}

type kvReadRes struct {
	blob kvstore.Blob
	meta kvstore.Meta
	err  error
}

// kvRead is the resilient cache read: per-attempt timeout, bounded
// backoff retry, circuit breaker. Definitive answers (hit, NotFound)
// return immediately; only unavailability is retried.
func (rc *RCLib) kvRead(caller simnet.NodeID, key string) (kvstore.Blob, kvstore.Meta, error) {
	target := rc.kvTarget(key, caller)
	if !rc.brk.allow(target) {
		return kvstore.Blob{}, kvstore.Meta{}, errBreakerOpen
	}
	var lastErr error
	for attempt := 0; attempt <= rc.res.MaxRetries; attempt++ {
		if attempt > 0 {
			rc.env.Sleep(rc.brk.backoff(attempt))
			rc.statsMu.Lock()
			rc.cacheRetries++
			rc.statsMu.Unlock()
		}
		f := sim.NewFuture[kvReadRes](rc.env)
		rc.env.Go(func() {
			blob, meta, err := rc.kv.Read(caller, key)
			f.Set(kvReadRes{blob, meta, err})
		})
		r, ok := f.WaitTimeout(rc.res.OpTimeout)
		if !ok {
			lastErr = errCacheTimeout
			rc.statsMu.Lock()
			rc.cacheTimeouts++
			rc.statsMu.Unlock()
			rc.brk.report(target, false)
			continue
		}
		if isCacheUnavailable(r.err) {
			lastErr = r.err
			rc.brk.report(target, false)
			continue
		}
		rc.brk.report(target, true)
		return r.blob, r.meta, r.err
	}
	return kvstore.Blob{}, kvstore.Meta{}, lastErr
}

// kvWrite is the resilient cache write, mirroring kvRead. ErrNoSpace
// and ErrTooLarge are definitive (capacity, not availability) and
// return immediately.
func (rc *RCLib) kvWrite(caller simnet.NodeID, key string, blob kvstore.Blob, tags map[string]string, preferred simnet.NodeID) (uint64, error) {
	target := rc.kvTarget(key, preferred)
	if !rc.brk.allow(target) {
		return 0, errBreakerOpen
	}
	type res struct {
		ver uint64
		err error
	}
	var lastErr error
	for attempt := 0; attempt <= rc.res.MaxRetries; attempt++ {
		if attempt > 0 {
			rc.env.Sleep(rc.brk.backoff(attempt))
			rc.statsMu.Lock()
			rc.cacheRetries++
			rc.statsMu.Unlock()
		}
		f := sim.NewFuture[res](rc.env)
		rc.env.Go(func() {
			v, err := rc.kv.Write(caller, key, blob, tags, preferred)
			f.Set(res{v, err})
		})
		r, ok := f.WaitTimeout(rc.res.OpTimeout)
		if !ok {
			lastErr = errCacheTimeout
			rc.statsMu.Lock()
			rc.cacheTimeouts++
			rc.statsMu.Unlock()
			rc.brk.report(target, false)
			continue
		}
		if isCacheUnavailable(r.err) {
			lastErr = r.err
			rc.brk.report(target, false)
			continue
		}
		rc.brk.report(target, true)
		return r.ver, r.err
	}
	return 0, lastErr
}
