package core

import (
	"testing"

	"ofc/internal/faas"
	"ofc/internal/sim"
)

// memoFixture builds a matured predictor/trainer pair for fn with the
// given memo setting, pretrained on n synthetic samples.
func memoFixture(t testing.TB, disable bool, n int, seed int64) (*Predictor, *ModelTrainer, *faas.Function) {
	t.Helper()
	cfg := DefaultPredictorConfig()
	cfg.DisableMemo = disable
	pred := NewPredictor(cfg)
	trainer := NewModelTrainer(pred, sim.NewEnv(1))
	fn := &faas.Function{Name: "blur", Tenant: "t", InputType: "image", ArgNames: []string{"sigma"}, MemoryBooked: 2 << 30}
	trainer.Pretrain(fn, synthSamples(pred.Schema(fn), n, seed))
	if !pred.Mature(fn) {
		t.Fatal("pretrained model not mature")
	}
	return pred, trainer, fn
}

func memoReq(fn *faas.Function, width float64) *faas.Request {
	return &faas.Request{Function: fn, Args: map[string]float64{"sigma": 3},
		InputFeatures: map[string]float64{"size": 64 * 1024, "width": width, "height": width * 0.75, "channels": 3}}
}

// TestAdviceMemoHitAndInvalidation checks the memo life cycle: a
// repeated request hits, a retrain bumps the generation and evicts
// every cached entry, and the next request misses again.
func TestAdviceMemoHitAndInvalidation(t *testing.T) {
	pred, trainer, fn := memoFixture(t, false, 300, 7)
	req := memoReq(fn, 800)

	first := pred.Advise(req)
	if !first.Use {
		t.Fatal("mature model gives no advice")
	}
	second := pred.Advise(req)
	if first != second {
		t.Fatalf("memoized advice differs: %+v vs %+v", first, second)
	}
	hits, misses, inv := pred.MemoStats()
	if hits != 1 || misses != 1 || inv != 0 {
		t.Fatalf("after hit: hits=%d misses=%d inv=%d, want 1/1/0", hits, misses, inv)
	}

	gen := pred.Generation(fn)
	if gen == 0 {
		t.Fatal("pretrained model has generation 0; retrain tracking is dead")
	}
	// Retrain with more data: generation must bump and the memo flush.
	trainer.Pretrain(fn, synthSamples(pred.Schema(fn), 100, 99))
	if got := pred.Generation(fn); got <= gen {
		t.Fatalf("generation %d after retrain, want > %d", got, gen)
	}
	if _, _, inv := pred.MemoStats(); inv != 1 {
		t.Fatalf("invalidations=%d after retrain, want 1", inv)
	}

	third := pred.Advise(req)
	if _, misses, _ := pred.MemoStats(); misses != 2 {
		t.Fatal("post-retrain advise did not miss; stale entry survived the flush")
	}
	// The recomputed advice must match a memo-free predictor trained
	// identically — the memo never changes results, only cost.
	predOff, trainerOff, fnOff := memoFixture(t, true, 300, 7)
	trainerOff.Pretrain(fnOff, synthSamples(predOff.Schema(fnOff), 100, 99))
	if want := predOff.Advise(memoReq(fnOff, 800)); third != want {
		t.Fatalf("memoized advice %+v != memo-free advice %+v", third, want)
	}
}

// TestMemoTransparent replays a varied request stream against memo-on
// and memo-off predictors trained identically: every advice must be
// identical, bit for bit.
func TestMemoTransparent(t *testing.T) {
	predOn, _, fnOn := memoFixture(t, false, 300, 11)
	predOff, _, fnOff := memoFixture(t, true, 300, 11)
	widths := []float64{200, 800, 1600, 800, 200, 3200, 800, 1600, 200, 800}
	for i, w := range widths {
		on := predOn.Advise(memoReq(fnOn, w))
		off := predOff.Advise(memoReq(fnOff, w))
		if on != off {
			t.Fatalf("request %d (width=%v): memo-on %+v != memo-off %+v", i, w, on, off)
		}
	}
	if hits, _, _ := predOn.MemoStats(); hits == 0 {
		t.Fatal("repeated widths produced no memo hits; the cache is dead")
	}
}

// TestAdviseHotZeroAlloc is the allocation regression gate for the
// critical-path advice lookup: once a vector is memoized, repeating it
// must not allocate.
func TestAdviseHotZeroAlloc(t *testing.T) {
	pred, _, fn := memoFixture(t, false, 300, 7)
	req := memoReq(fn, 800)
	pred.Advise(req) // populate the memo
	if n := testing.AllocsPerRun(200, func() { pred.Advise(req) }); n != 0 {
		t.Errorf("memoized Advise allocates %v/op, want 0", n)
	}
}

// BenchmarkAdvise measures the end-to-end critical-path advice lookup
// on a memoized vector (the steady state: OFC's workloads repeat
// feature vectors heavily).
func BenchmarkAdvise(b *testing.B) {
	pred, _, fn := memoFixture(b, false, 2000, 7)
	req := memoReq(fn, 800)
	pred.Advise(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.Advise(req)
	}
}

// BenchmarkAdviseNoMemo measures the same lookup with memoization off:
// compiled inference (memory class + benefit verdict + benefit score)
// on every call.
func BenchmarkAdviseNoMemo(b *testing.B) {
	pred, _, fn := memoFixture(b, true, 2000, 7)
	req := memoReq(fn, 800)
	pred.Advise(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.Advise(req)
	}
}
