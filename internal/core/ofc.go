package core

import (
	"sync"
	"time"

	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/metrics"
	"ofc/internal/objstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/store"
	"ofc/internal/trace"
)

// Options configures a full OFC deployment.
type Options struct {
	// Workers is the number of FaaS worker nodes (the paper's testbed
	// uses 4 workers + 1 controller machine + 1 storage machine).
	Workers int
	// NodeCapacity is each worker's memory usable by sandboxes and
	// cache.
	NodeCapacity int64
	Seed         int64
	Net          simnet.Config
	FaaS         faas.Config
	KV           kvstore.Config
	RSDS         objstore.Profile
	Predictor    PredictorConfig
	Agent        CacheAgentConfig
	// DisableCacheAgents leaves cache grants at zero (for tests that
	// drive grants manually).
	DisableCacheAgents bool
	// CacheOff replaces the cache cluster with the direct-RSDS
	// passthrough engine: the vanilla-platform baseline expressed as a
	// storage backend rather than scattered if-branches. No cache
	// servers, no agents, no locality routing.
	CacheOff bool
	// CoalesceMisses turns on the proxy's singleflight miss path (see
	// RCLib.EnableMissCoalescing). Off by default: the faithful-paper
	// configuration lets every miss pay its own RSDS round trip.
	CoalesceMisses bool
}

// DefaultOptions mirrors the paper's testbed shape.
func DefaultOptions() Options {
	return Options{
		Workers:      4,
		NodeCapacity: 8 << 30,
		Seed:         1,
		Net:          simnet.DefaultConfig(),
		FaaS:         faas.DefaultConfig(),
		KV:           kvstore.DefaultConfig(),
		RSDS:         objstore.SwiftProfile(),
		Predictor:    DefaultPredictorConfig(),
		Agent:        DefaultCacheAgentConfig(),
	}
}

// System is a deployed OFC stack: platform + cache + RSDS + ML,
// mirroring Figure 4.
type System struct {
	Env      *sim.Env
	Net      *simnet.Network
	Platform *faas.Platform
	// Backend is the storage engine the proxy runs on (the cluster, or
	// the passthrough in CacheOff mode). KV is the concrete cluster for
	// tests that poke engine internals; nil when CacheOff.
	Backend store.Backend
	KV      *kvstore.Cluster
	RSDS    *objstore.Store
	Pred    *Predictor
	Trainer *ModelTrainer
	RC      *RCLib
	Gov     *Governor
	// Overload is the overload-control subsystem; nil until
	// EnableOverload is called.
	Overload *OverloadControl
	// Tracer is the deterministic span recorder; nil until
	// EnableTracing is called.
	Tracer *trace.Tracer

	CtrlNode    simnet.NodeID
	StorageNode simnet.NodeID
	WorkerNodes []simnet.NodeID

	seed   int64
	agents []*CacheAgent

	statsMu  sync.Mutex
	goodPred int64
	badPred  int64
	started  bool
}

// NewSystem assembles the stack: controller node (OWK Controller + RC
// coordinator + ModelTrainer), a storage node (Swift) and worker nodes
// (Invoker + RAMCloud server + cacheAgent + Proxy).
func NewSystem(opts Options) *System {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	env := sim.NewEnv(opts.Seed)
	net := simnet.New(env, opts.Net)
	ctrl := net.AddNode("controller").ID
	storage := net.AddNode("storage").ID
	workers := make([]simnet.NodeID, opts.Workers)
	for i := range workers {
		workers[i] = net.AddNode("worker").ID
	}

	rsds := objstore.New(net, storage, opts.RSDS)
	platform := faas.New(net, ctrl, opts.FaaS)

	var backend store.Backend
	var kv *kvstore.Cluster
	if opts.CacheOff {
		backend = store.NewPassthrough(rsds)
	} else {
		kv = kvstore.New(net, ctrl, opts.KV)
		backend = kv
	}

	sys := &System{
		Env: env, Net: net, Platform: platform, Backend: backend, KV: kv, RSDS: rsds,
		CtrlNode: ctrl, StorageNode: storage, WorkerNodes: workers,
		seed: opts.Seed,
	}
	sys.Pred = NewPredictor(opts.Predictor)
	sys.Trainer = NewModelTrainer(sys.Pred, env)
	sys.RC = NewRCLib(env, backend, rsds)
	if opts.CoalesceMisses {
		sys.RC.EnableMissCoalescing()
	}
	sys.Gov = NewGovernor()

	mv, hasMem := store.MemoryViewOf(backend)
	for _, w := range workers {
		if kv != nil {
			kv.AddServer(w, 0) // limit follows the cache grant
		}
		inv := platform.AddInvoker(w, opts.NodeCapacity, sys.RC)
		if !opts.DisableCacheAgents && hasMem {
			agent := NewCacheAgent(env, inv, mv, sys.RC, opts.Agent)
			sys.Gov.Add(agent)
			sys.agents = append(sys.agents, agent)
		}
	}

	platform.Advisor = sys.Pred
	pv, _ := store.PlacementViewOf(backend)
	platform.Router = NewRouter(pv)
	platform.Observer = sys
	platform.Governor = sys.Gov
	platform.MonitorEnabled = true

	sys.RC.AttachPlatform(platform)
	// The governor doubles as the proxy's write-admission gate,
	// routing per-object Admit/Touch to the owning node's policies.
	sys.RC.SetAdmissionGate(sys.Gov)
	return sys
}

// EnableTracing attaches one deterministic span recorder to every
// traced subsystem: platform invoke path, predictor, proxy (RCLib), KV
// coordinator RPCs and the cache agents. Call before Start and before
// any traffic; cfg.Seed defaults to the system's simulation seed so
// trace IDs reproduce at a fixed seed. Returns the tracer for export.
func (s *System) EnableTracing(cfg trace.Config) *trace.Tracer {
	if cfg.Seed == 0 {
		cfg.Seed = s.seed
	}
	tr := trace.New(s.Env, cfg)
	s.Platform.Tracer = tr
	s.Pred.SetTracer(tr)
	s.RC.SetTracer(tr)
	if s.KV != nil {
		s.KV.SetTracer(tr)
	}
	for _, a := range s.agents {
		a.SetTracer(tr)
	}
	s.Tracer = tr
	return tr
}

// Start arms the background loops (cache agents, model trainer). It is
// idempotent.
func (s *System) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, a := range s.agents {
		a.Start()
	}
	s.Trainer.Start()
	if s.Overload != nil {
		s.Overload.Controller.Start()
	}
}

// Run starts the system, executes body as a simulation process, lets
// asynchronous work settle, then stops the periodic loops and drives
// the simulation to completion. It returns the virtual time at which
// body finished.
func (s *System) Run(body func()) sim.Time {
	s.Start()
	var bodyEnd sim.Time
	s.Env.Go(func() {
		body()
		bodyEnd = s.Env.Now()
		s.Env.Sleep(5 * time.Second) // drain persistors and write-backs
		s.Env.Stop()
	})
	s.Env.Run()
	return bodyEnd
}

// Agents returns the per-node cache agents.
func (s *System) Agents() []*CacheAgent { return s.agents }

// Register adds a function to the platform and initializes its model
// state.
func (s *System) Register(fn *faas.Function) {
	s.Platform.Register(fn)
	s.Pred.state(fn)
}

// OnPlaced implements faas.PlacementObserver: the moment a sandbox is
// provisioned, its booked-but-unused memory becomes the cache's (§4).
func (s *System) OnPlaced(node simnet.NodeID) {
	if a := s.Gov.Agent(node); a != nil {
		a.Grow()
	}
}

// OnComplete implements faas.CompletionObserver: it grows the local
// cache with the invocation's leftover memory (§4), updates the
// prediction quality counters (Table 2) and feeds the ModelTrainer.
func (s *System) OnComplete(req *faas.Request, res *faas.Result) {
	if req.Function.Tenant == "ofc" {
		return // helper functions are not learned
	}
	if a := s.Gov.Agent(res.Node); a != nil {
		a.Grow()
	}
	if req.Advised() {
		s.statsMu.Lock()
		if res.PeakMem > res.InitialMem {
			s.badPred++
		} else {
			s.goodPred++
		}
		s.statsMu.Unlock()
	}
	if res.Err != nil {
		return
	}
	schema := s.Pred.Schema(req.Function)
	sample := Sample{
		Vals:      schema.Vector(req),
		PeakMem:   res.PeakMem,
		Transform: res.Transform,
		// Benefit ground truth uses the *uncached* E/L costs, modeled
		// from the RSDS profile and the observed payload sizes — the
		// measured phases shrink once caching kicks in and would
		// mislabel.
		Extract:      s.RC.EstimateRSDS(res.ReadOps, res.BytesIn, false),
		Load:         s.RC.EstimateRSDS(res.WriteOps, res.BytesOut, true),
		BenefitKnown: res.BytesIn+res.BytesOut > 0,
	}
	s.Trainer.Observe(req.Function, req, sample)
}

// PredictionCounts reports (good, bad) advised predictions, Table 2
// style: bad means the invocation's peak exceeded the provisioned
// sandbox memory.
func (s *System) PredictionCounts() (good, bad int64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.goodPred, s.badPred
}

// CacheBytes returns the cache's total master-copy footprint (zero in
// cache-off mode).
func (s *System) CacheBytes() int64 {
	if s.KV == nil {
		return 0
	}
	return s.KV.TotalUsed()
}

// CacheGrantBytes returns the memory currently hoarded for the cache
// across all workers — the quantity Figure 10 plots.
func (s *System) CacheGrantBytes() int64 {
	var total int64
	for _, inv := range s.Platform.Invokers() {
		total += inv.CacheGrant()
	}
	return total
}

// AggregatePolicyCounters sums the per-node control-plane counters
// (all agents in one system run the same policy combination).
func (s *System) AggregatePolicyCounters() metrics.PolicyCounters {
	var out metrics.PolicyCounters
	for _, a := range s.agents {
		out.Add(a.PolicyCounters())
	}
	return out
}

// AggregateAgentMetrics sums the per-node agent counters (Table 2).
func (s *System) AggregateAgentMetrics() AgentMetrics {
	var m AgentMetrics
	for _, a := range s.agents {
		am := a.Metrics()
		m.ScaleUps += am.ScaleUps
		m.ScaleUpTime += am.ScaleUpTime
		m.ScaleDownNoEviction += am.ScaleDownNoEviction
		m.ScaleDownMigration += am.ScaleDownMigration
		m.ScaleDownEviction += am.ScaleDownEviction
		m.ScaleDownTime += am.ScaleDownTime
		m.PeriodicEvictions += am.PeriodicEvictions
		m.ReclaimFailures += am.ReclaimFailures
	}
	return m
}
