// Package core implements OFC itself (paper §4–§6): the ML modules
// (Predictor, ModelTrainer), the cache-side components (CacheAgent,
// Proxy/rclib, Persistor), the Monitor feedback loop and the
// locality-aware request routing — wired into the faas platform,
// the kvstore cache substrate and the objstore RSDS.
package core

import (
	"fmt"
	"sort"

	"ofc/internal/faas"
	"ofc/internal/mltree"
)

// Common feature names the feature schema recognizes per input type
// (§5.1.2): input byte size for every function, pixel dimensions for
// images, duration/bitrate for audio and video, etc. Function-specific
// arguments are appended by name, opaque to the platform.
var typeFeatures = map[string][]string{
	"image": {"size", "width", "height", "channels"},
	"audio": {"size", "duration", "bitrate", "channels"},
	"video": {"size", "duration", "width", "height", "fps"},
	"text":  {"size", "lines"},
	"none":  {"size"},
}

// FeatureSchema maps invocation requests onto mltree feature vectors
// for one function.
type FeatureSchema struct {
	names []string
	attrs []mltree.Attribute
}

// NewFeatureSchema builds the per-function schema: common features of
// the function's input type followed by the function-specific argument
// names, sorted for determinism.
func NewFeatureSchema(fn *faas.Function) *FeatureSchema {
	common, ok := typeFeatures[fn.InputType]
	if !ok {
		common = typeFeatures["none"]
	}
	names := append([]string{}, common...)
	args := append([]string{}, fn.ArgNames...)
	sort.Strings(args)
	names = append(names, args...)
	attrs := make([]mltree.Attribute, len(names))
	for i, n := range names {
		attrs[i] = mltree.Attribute{Name: n, Kind: mltree.Numeric}
	}
	return &FeatureSchema{names: names, attrs: attrs}
}

// Attributes returns the mltree schema.
func (s *FeatureSchema) Attributes() []mltree.Attribute { return s.attrs }

// Names returns the feature names in vector order.
func (s *FeatureSchema) Names() []string { return s.names }

// Vector assembles the feature vector of a request: input-object
// sidecar features first (extracted at object creation, §5.1.2), then
// the request arguments. Unknown features are Missing.
func (s *FeatureSchema) Vector(req *faas.Request) []float64 {
	return s.VectorInto(req, make([]float64, len(s.names)))
}

// VectorInto assembles the feature vector into buf, growing it only if
// too small — the critical-path form: with an adequately sized buffer
// it allocates nothing.
func (s *FeatureSchema) VectorInto(req *faas.Request, buf []float64) []float64 {
	if cap(buf) < len(s.names) {
		buf = make([]float64, len(s.names))
	}
	vals := buf[:len(s.names)]
	for i, name := range s.names {
		if v, ok := req.InputFeatures[name]; ok {
			vals[i] = v
		} else if v, ok := req.Args[name]; ok {
			vals[i] = v
		} else {
			vals[i] = mltree.Missing
		}
	}
	return vals
}

// Intervals converts between bytes and the classifier's memory
// intervals (§5.1.1): n classes of Size bytes covering [0, Max].
type Intervals struct {
	Size int64
	Max  int64
}

// DefaultIntervals is the paper's choice: 16 MB intervals over
// [0, 2 GB] (128 classes).
func DefaultIntervals() Intervals { return Intervals{Size: 16 << 20, Max: 2 << 30} }

// NumClasses returns the class count.
func (iv Intervals) NumClasses() int { return int(iv.Max / iv.Size) }

// ClassOf maps a memory amount to its interval index.
func (iv Intervals) ClassOf(bytes int64) int {
	if bytes <= 0 {
		return 0
	}
	k := int((bytes - 1) / iv.Size)
	if k >= iv.NumClasses() {
		k = iv.NumClasses() - 1
	}
	return k
}

// UpperBound returns the memory amount of class k's upper edge — the
// amount allocated when the model predicts class k.
func (iv Intervals) UpperBound(k int) int64 {
	b := int64(k+1) * iv.Size
	if b > iv.Max {
		b = iv.Max
	}
	return b
}

// ClassNames labels the classes for mltree datasets.
func (iv Intervals) ClassNames() []string {
	names := make([]string, iv.NumClasses())
	for i := range names {
		names[i] = fmt.Sprintf("%dMB", (int64(i+1)*iv.Size)>>20)
	}
	return names
}
