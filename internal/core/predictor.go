package core

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"time"

	"ofc/internal/faas"
	"ofc/internal/metrics"
	"ofc/internal/mltree"
	"ofc/internal/sim"
	"ofc/internal/trace"
)

// Sample is one observed invocation used for training.
type Sample struct {
	Vals    []float64
	PeakMem int64
	// Phase durations measured against the RSDS (ground truth for the
	// caching-benefit label (E+L)/(E+T+L) > 0.5, §5.2).
	Extract, Transform, Load time.Duration
	// BenefitKnown is false when the invocation was served from the
	// cache, where the uncached E and L are unobservable.
	BenefitKnown bool
}

// BenefitLabel computes the §5.2 ground truth.
func (s *Sample) BenefitLabel() bool {
	total := s.Extract + s.Transform + s.Load
	if total == 0 {
		return false
	}
	return float64(s.Extract+s.Load)/float64(total) > 0.5
}

// modelState holds the per-function learning state.
type modelState struct {
	fn     *faas.Function
	schema *FeatureSchema

	mu sync.Mutex
	// Training data.
	memData     *mltree.Dataset
	benefitData *mltree.Dataset
	// Trained models (nil until first train).
	memModel     mltree.Classifier
	benefitModel mltree.Classifier
	// Serving state, rebuilt on every retrain: the compiled (flat,
	// zero-allocation) forms of the models, the advice memo keyed by
	// the exact feature-vector bits, and the retrain generation that
	// scopes the memo's validity.
	gen             int
	memCompiled     *mltree.CompiledTree
	benefitCompiled *mltree.CompiledTree
	advCache        map[string]faas.Advice
	vecBuf          []float64
	keyBuf          []byte
	distBuf         []float64
	// Maturation state (§5.3).
	mature       bool
	maturedAt    int // invocation count at maturation
	invocations  int // total observed
	sinceTrain   int // observations since last retrain
	benefitSince int
	lastCheck    int
}

// PredictorConfig tunes the ML module.
type PredictorConfig struct {
	Intervals Intervals
	// MinInvocations before the first maturation check (paper: 100).
	MinInvocations int
	// CheckEvery is the re-check cadence (in invocations) before
	// maturation.
	CheckEvery int
	// EOTarget and UnderWithinOneTarget are the §5.3 criteria.
	EOTarget             float64
	UnderWithinOneTarget float64
	// CVFolds used for the maturation evaluation.
	CVFolds int
	// OverPredictionSlack is how far above truth (in intervals) a
	// prediction must be before it re-enters the training set after
	// maturation (paper: 6).
	OverPredictionSlack int
	// UnderWeight is the extra weight of underprediction samples.
	UnderWeight float64
	// Seed feeds the CV shuffles.
	Seed int64
	// DisableMemo turns off advice memoization (the compiled models
	// still serve). Memoization is semantically transparent — cached
	// advice is evicted whenever a retrain changes the models — so this
	// exists for A/B testing and for callers that mutate feature
	// distributions faster than the memo pays off.
	DisableMemo bool
}

// DefaultPredictorConfig returns the paper's parameters.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		Intervals:            DefaultIntervals(),
		MinInvocations:       100,
		CheckEvery:           25,
		EOTarget:             0.90,
		UnderWithinOneTarget: 0.50,
		CVFolds:              5,
		OverPredictionSlack:  6,
		UnderWeight:          2,
	}
}

// Predictor serves memory and caching-benefit predictions on the
// invocation critical path (§5.1, §5.2) and owns the per-function
// model states the ModelTrainer updates.
type Predictor struct {
	cfg PredictorConfig

	// memo aggregates advice-cache hit/miss/invalidation counts across
	// all functions (lock-free; reporting reads a coherent snapshot).
	memo metrics.MemoCounters

	// tracer records "predict"/"retrain" spans (nil = off; set before
	// traffic starts). The Advise fast path stays zero-alloc: with a
	// nil tracer it branches straight into the untraced body.
	tracer *trace.Tracer

	mu     sync.Mutex
	models map[string]*modelState
}

// SetTracer attaches the span recorder. Call before traffic starts.
func (p *Predictor) SetTracer(tr *trace.Tracer) { p.tracer = tr }

// NewPredictor returns an empty predictor.
func NewPredictor(cfg PredictorConfig) *Predictor {
	return &Predictor{cfg: cfg, models: make(map[string]*modelState)}
}

// state returns (creating if needed) the model state for fn.
func (p *Predictor) state(fn *faas.Function) *modelState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.models[fn.ID()]
	if !ok {
		schema := NewFeatureSchema(fn)
		st = &modelState{
			fn:          fn,
			schema:      schema,
			memData:     mltree.NewDataset(schema.Attributes(), p.cfg.Intervals.ClassNames()),
			benefitData: mltree.NewDataset(schema.Attributes(), []string{"no", "yes"}),
		}
		p.models[fn.ID()] = st
	}
	return st
}

// advCacheMax bounds the per-function advice memo. Real workloads
// cluster on few distinct feature vectors (that is why the memo pays);
// a pathological stream of unique vectors just resets the map and
// keeps serving from the compiled models.
const advCacheMax = 4096

// appendVecKey encodes the exact bit pattern of every feature into
// dst — the memo key. Identity encoding (no rounding) guarantees a
// memo hit returns bit-identical advice to recomputation; Missing is
// one fixed NaN pattern, so it keys consistently too.
func appendVecKey(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Advise implements faas.Advisor: predict the sandbox memory (upper
// bound of the *next greater* interval, §5.3's conservative bump) and
// the caching benefit. Advice is unusable until the model matures.
//
// This is the invocation critical path (§5.1 budgets ~1 ms), so it
// serves from the compiled (flat, zero-allocation) model forms and
// memoizes the full advice per exact feature vector; the memo is
// flushed whenever a retrain bumps the model generation, making it
// semantically invisible. A hit costs a vector build, a key append and
// one map probe — no tree walk, no allocation.
func (p *Predictor) Advise(req *faas.Request) faas.Advice {
	if p.tracer == nil {
		return p.advise(req, nil)
	}
	ref := req.TraceRef()
	sp := p.tracer.Begin(ref.Trace, ref.Span, "predict", 0)
	adv := p.advise(req, &sp)
	if adv.Use {
		sp.SetNum("use", 1)
	} else {
		sp.SetNum("use", 0)
	}
	p.tracer.End(&sp)
	return adv
}

// advise is Advise's body; sp (nil when tracing is off) collects the
// memo-hit/maturity attributes.
func (p *Predictor) advise(req *faas.Request, sp *trace.Span) faas.Advice {
	st := p.state(req.Function)
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.mature || st.memModel == nil {
		sp.SetNum("immature", 1)
		return faas.Advice{Use: false, ShouldCache: false}
	}
	vals := st.schema.VectorInto(req, st.vecBuf)
	st.vecBuf = vals

	memo := !p.cfg.DisableMemo
	if memo {
		st.keyBuf = appendVecKey(st.keyBuf[:0], vals)
		if adv, ok := st.advCache[string(st.keyBuf)]; ok {
			p.memo.Hit()
			sp.SetNum("memo", 1)
			return adv
		}
		p.memo.Miss()
		sp.SetNum("memo", 0)
	}

	adv := st.adviseLocked(p.cfg.Intervals, vals)
	if memo {
		if st.advCache == nil || len(st.advCache) >= advCacheMax {
			st.advCache = make(map[string]faas.Advice)
		}
		st.advCache[string(st.keyBuf)] = adv
	}
	return adv
}

// adviseLocked computes advice from the compiled models (falling back
// to the pointer walk only if compilation is unavailable). Callers
// hold st.mu.
func (st *modelState) adviseLocked(iv Intervals, vals []float64) faas.Advice {
	var k int
	if st.memCompiled != nil {
		k = st.memCompiled.Classify(vals)
	} else {
		k = st.memModel.Classify(vals)
	}
	mem := iv.UpperBound(k + 1) // conservative next interval
	should := true
	benefit := 1.0
	switch {
	case st.benefitCompiled != nil:
		should = st.benefitCompiled.Classify(vals) == 1
		// The benefit score is the model's probability mass on the
		// "yes" class — the cost term cost-aware eviction policies
		// weigh per object.
		if st.benefitCompiled.NumClasses() > 1 {
			if cap(st.distBuf) < st.benefitCompiled.NumClasses() {
				st.distBuf = make([]float64, st.benefitCompiled.NumClasses())
			}
			benefit = st.benefitCompiled.DistributionInto(vals, st.distBuf)[1]
		}
	case st.benefitModel != nil:
		should = st.benefitModel.Classify(vals) == 1
		if dist := st.benefitModel.Distribution(vals); len(dist) > 1 {
			benefit = dist[1]
		}
	}
	return faas.Advice{Mem: mem, ShouldCache: should, Benefit: benefit, Use: true}
}

// MemoStats returns the aggregate advice-memo hit/miss/invalidation
// counts.
func (p *Predictor) MemoStats() (hits, misses, invalidations int64) {
	return p.memo.Snapshot()
}

// Generation returns fn's retrain generation (bumped whenever either
// model is refit; the advice memo is scoped to it).
func (p *Predictor) Generation(fn *faas.Function) int {
	st := p.state(fn)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gen
}

// Mature reports whether fn's memory model passed the §5.3 criteria.
func (p *Predictor) Mature(fn *faas.Function) bool {
	st := p.state(fn)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.mature
}

// MaturedAt returns the invocation count at which fn's model matured
// (0 if not yet).
func (p *Predictor) MaturedAt(fn *faas.Function) int {
	st := p.state(fn)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.maturedAt
}

// Schema exposes the feature schema of fn (experiments use it to build
// offline datasets).
func (p *Predictor) Schema(fn *faas.Function) *FeatureSchema {
	return p.state(fn).schema
}

// PredictRaw classifies without the conservative bump (experiments and
// tests).
func (p *Predictor) PredictRaw(fn *faas.Function, vals []float64) (class int, ok bool) {
	st := p.state(fn)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.memModel == nil {
		return 0, false
	}
	return st.memModel.Classify(vals), true
}

// ModelTrainer ingests completed invocations, maintains the training
// datasets, retrains the J48 models and applies the maturation
// criteria (§5.3). Retraining runs periodically on the trainer node,
// off the critical path.
type ModelTrainer struct {
	p   *Predictor
	env *sim.Env
	// TrainEvery is the virtual-time retraining period.
	TrainEvery time.Duration
}

// NewModelTrainer wires a trainer to the predictor. Call Start to arm
// the periodic retraining loop, or rely on per-observation triggers.
func NewModelTrainer(p *Predictor, env *sim.Env) *ModelTrainer {
	return &ModelTrainer{p: p, env: env, TrainEvery: 60 * time.Second}
}

// Observe records one completed invocation for fn.
func (t *ModelTrainer) Observe(fn *faas.Function, req *faas.Request, s Sample) {
	cfg := t.p.cfg
	st := t.p.state(fn)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.invocations++
	trueClass := cfg.Intervals.ClassOf(s.PeakMem)

	addMem := true
	weight := 1.0
	if st.mature && st.memModel != nil {
		// Post-maturation dataset policy (§5.3.3): keep the set small;
		// only add invocations the model got wrong on the dangerous
		// side (underprediction) or absurdly wrong on the high side.
		pred := st.memModel.Classify(s.Vals)
		switch {
		case pred < trueClass:
			weight = cfg.UnderWeight
		case pred-trueClass > cfg.OverPredictionSlack:
			weight = 1
		default:
			addMem = false
		}
	}
	if addMem {
		st.memData.AddWeighted(s.Vals, trueClass, weight)
		st.sinceTrain++
	}
	if s.BenefitKnown {
		label := 0
		if s.BenefitLabel() {
			label = 1
		}
		st.benefitData.Add(s.Vals, label)
		st.benefitSince++
	}

	// Pre-maturation: retrain + re-check at the configured cadence.
	if !st.mature {
		if st.invocations >= cfg.MinInvocations && st.invocations-st.lastCheck >= 0 &&
			(st.invocations == cfg.MinInvocations || st.invocations-st.lastCheck >= cfg.CheckEvery) {
			st.lastCheck = st.invocations
			t.trainLocked(st)
			if t.matureCheckLocked(st) {
				st.mature = true
				st.maturedAt = st.invocations
			}
		}
		return
	}
	// Post-maturation: correct quickly after a bad prediction (§5.3:
	// "the model is corrected quickly").
	if st.sinceTrain >= 5 || st.benefitSince >= 25 {
		t.trainLocked(st)
	}
}

// trainLocked retrains both models from the current datasets. Any
// refit bumps the serving generation: the compiled forms are rebuilt
// and the advice memo is flushed, so stale advice can never outlive
// the model that produced it.
func (t *ModelTrainer) trainLocked(st *modelState) {
	changed := false
	if st.memData.Len() >= 10 {
		st.memModel = mltree.NewJ48().Fit(st.memData)
		st.sinceTrain = 0
		changed = true
	}
	if st.benefitData.Len() >= 10 {
		st.benefitModel = mltree.NewJ48().Fit(st.benefitData)
		st.benefitSince = 0
		changed = true
	}
	if changed {
		st.gen++
		st.memCompiled = compileTree(st.memModel)
		st.benefitCompiled = compileTree(st.benefitModel)
		if len(st.advCache) > 0 {
			st.advCache = nil
			t.p.memo.Invalidation()
		}
		// Control-plane root span (trace 0): retrains have no owning
		// invocation. Zero-duration — training is off the virtual
		// clock — but the event and its generation are part of the
		// latency story (each one flushes the advice memo).
		if tr := t.p.tracer; tr != nil {
			sp := tr.Begin(0, 0, "retrain", 0)
			sp.SetStr("fn", st.fn.ID())
			sp.SetNum("gen", int64(st.gen))
			tr.End(&sp)
		}
	}
}

// compileTree flattens a trained classifier into its serving form when
// it supports compilation (J48 and RandomTree do; anything else serves
// through the Classifier interface).
func compileTree(m mltree.Classifier) *mltree.CompiledTree {
	if tr, ok := m.(*mltree.Tree); ok {
		return tr.Compile()
	}
	return nil
}

// matureCheckLocked evaluates the §5.3 criteria by cross-validation
// over the training set.
func (t *ModelTrainer) matureCheckLocked(st *modelState) bool {
	cfg := t.p.cfg
	if st.memData.Len() < cfg.MinInvocations {
		return false
	}
	conf := mltree.CrossValidate(mltree.NewJ48(), st.memData, cfg.CVFolds, cfg.Seed+int64(st.invocations))
	return conf.EOAccuracy() >= cfg.EOTarget && conf.UnderWithinOne() >= cfg.UnderWithinOneTarget
}

// Pretrain matures fn's models from an offline dataset (the paper's
// machine-learning folder: offline scripts and data from initial
// experiments). Used by macro experiments, which run far fewer
// invocations than online maturation needs.
func (t *ModelTrainer) Pretrain(fn *faas.Function, samples []Sample) {
	st := t.p.state(fn)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range samples {
		st.memData.Add(s.Vals, t.p.cfg.Intervals.ClassOf(s.PeakMem))
		if s.BenefitKnown {
			label := 0
			if s.BenefitLabel() {
				label = 1
			}
			st.benefitData.Add(s.Vals, label)
		}
	}
	st.invocations += len(samples)
	t.trainLocked(st)
	st.mature = true
	st.maturedAt = st.invocations
}

// Start arms the periodic retraining loop (paper: the ModelTrainer
// "periodically retrains all memory prediction models").
func (t *ModelTrainer) Start() {
	t.env.Every(t.TrainEvery, func() bool {
		t.p.mu.Lock()
		// Retrain in sorted function order: each state's training is
		// independent, but a fixed sequence keeps any future shared
		// resource (trainer RNG, budget) off the map-order lottery.
		names := make([]string, 0, len(t.p.models))
		for name := range t.p.models {
			names = append(names, name)
		}
		sort.Strings(names)
		states := make([]*modelState, 0, len(names))
		for _, name := range names {
			states = append(states, t.p.models[name])
		}
		t.p.mu.Unlock()
		for _, st := range states {
			st.mu.Lock()
			if st.sinceTrain > 0 || st.benefitSince > 0 {
				t.trainLocked(st)
			}
			st.mu.Unlock()
		}
		return true
	})
}
