package mltree

import "math"

// Compiled inference (critical-path serving form).
//
// The training representations — *Tree's pointer-linked nodes and
// *HoeffdingTree's stats-laden hNodes — are convenient to grow but
// hostile to serve from: every step of a Classify walk chases a heap
// pointer, touches the shared attrs slice for the attribute kind, and
// Distribution allocates a fresh slice per call. On OFC's invocation
// critical path (§5.1 budgets ~1 ms for the prediction) that fixed
// cost is paid on every single request.
//
// Compile() flattens a trained tree into contiguous array-backed node
// tables: index-based children, packed split thresholds, per-node
// precomputed class distributions, and (for Hoeffding snapshots) the
// naive-Bayes sufficient statistics laid out in fixed-stride blobs.
// The compiled walk touches one cache-friendly node record per level
// and allocates nothing. Results are bit-identical to the pointer
// walk: the same traversal rules, the same float operations in the
// same order.
//
// A CompiledTree is immutable and safe for concurrent use.

// cnode is one flattened tree node, 40 bytes, packed so one walk step
// reads exactly one node record and the feature value:
//
//   - attr: -1 marks a leaf; otherwise (attribute<<1)|1 for a numeric
//     split and attribute<<1 for a nominal one — the kind rides in the
//     low bit so the walk never touches a side table.
//   - numeric split: c0/c1 are the left/right node indices inline (no
//     child-table indirection on the common two-way path).
//   - nominal split: c0 is the offset into the shared children table,
//     c1 the branch count; -1 entries are absent branches (the walk
//     stops there, like the pointer walk stops on a nil child).
//   - distOff points at the node's precomputed class distribution;
//     nbOff at its naive-Bayes blob (-1 when the node serves the plain
//     distribution).
type cnode struct {
	attr      int32
	majority  int32
	c0, c1    int32
	distOff   int32
	nbOff     int32
	threshold float64
}

// CompiledTree is the flat serving form of a trained tree (J48,
// RandomTree, or a HoeffdingTree snapshot). It implements Classifier.
type CompiledTree struct {
	classes  int
	numeric  []bool // per-attribute kind, indexed like the walk
	nodes    []cnode
	children []int32
	dist     []float64
	nb       *compiledNB // nil unless a Hoeffding snapshot uses NB leaves
}

// compiledNB is the flattened adaptive-naive-Bayes payload of a
// Hoeffding snapshot. Every NB-serving leaf owns one fixed-stride blob
// in stats:
//
//	[0, classes)          raw class counts
//	[classes]             total weight
//	attrOff[a] ...        per-attribute block:
//	  numeric attr        classes × {n, mean, sd}
//	  nominal attr        NumValues × classes counts
//
// The fixed layout means serving reads are pure offset arithmetic.
type compiledNB struct {
	classes int
	attrOff []int32 // offset of attribute a's block inside a blob
	nomVals []int32 // NumValues per attribute (0 for numeric)
	stride  int32   // blob size
	stats   []float64
}

// NumClasses returns the class count.
func (t *CompiledTree) NumClasses() int { return t.classes }

// Nodes returns the flattened node count.
func (t *CompiledTree) Nodes() int { return len(t.nodes) }

// walk descends the flat tables and returns the index of the node the
// traversal stops at — a leaf, or an internal node when the value is
// missing or the nominal branch is absent (same rules as the pointer
// walk).
func (t *CompiledTree) walk(vals []float64) int32 {
	nodes := t.nodes
	i := int32(0)
	for {
		n := &nodes[i]
		a := n.attr
		if a < 0 {
			return i
		}
		v := vals[a>>1]
		if IsMissing(v) {
			return i
		}
		if a&1 != 0 { // numeric split: inline children, branchless select
			c := n.c0
			if v > n.threshold {
				c = n.c1
			}
			i = c
		} else { // nominal split: shared children table
			idx := int32(v)
			if uint32(idx) >= uint32(n.c1) {
				return i
			}
			c := t.children[n.c0+idx]
			if c < 0 {
				return i
			}
			i = c
		}
	}
}

// Classify implements Classifier with zero allocations.
func (t *CompiledTree) Classify(vals []float64) int {
	stop := &t.nodes[t.walk(vals)]
	if t.nb != nil && stop.nbOff >= 0 {
		// NB leaves break count/distribution argmax symmetry; replicate
		// the Hoeffding Classify-via-Distribution argmax without
		// allocating by keeping the running winner.
		var buf [64]float64
		d := t.distributionInto(stop, vals, t.scratch(buf[:0]))
		best, bestP := 0, d[0]
		for c := 1; c < len(d); c++ {
			if d[c] > bestP {
				best, bestP = c, d[c]
			}
		}
		return best
	}
	return int(stop.majority)
}

// scratch returns a classes-sized buffer, reusing buf's backing array
// when it is large enough (the common ≤64-class case stays on the
// caller's stack).
func (t *CompiledTree) scratch(buf []float64) []float64 {
	if cap(buf) >= t.classes {
		return buf[:t.classes]
	}
	return make([]float64, t.classes)
}

// Distribution implements Classifier (allocates the returned slice;
// the critical path uses DistributionInto).
func (t *CompiledTree) Distribution(vals []float64) []float64 {
	return t.DistributionInto(vals, make([]float64, t.classes))
}

// DistributionInto writes the class distribution into buf (which must
// hold NumClasses values) and returns it, allocating nothing.
func (t *CompiledTree) DistributionInto(vals []float64, buf []float64) []float64 {
	return t.distributionInto(&t.nodes[t.walk(vals)], vals, buf[:t.classes])
}

func (t *CompiledTree) distributionInto(stop *cnode, vals []float64, buf []float64) []float64 {
	if t.nb != nil && stop.nbOff >= 0 {
		return t.nb.distributionInto(stop.nbOff, vals, t.numeric, buf)
	}
	copy(buf, t.dist[stop.distOff:stop.distOff+int32(t.classes)])
	return buf
}

// distributionInto computes the adaptive-naive-Bayes distribution of
// the blob at off, in place in buf — the exact float sequence of
// HoeffdingTree.naiveBayes, served from the flattened stats.
func (nb *compiledNB) distributionInto(off int32, vals []float64, numeric []bool, buf []float64) []float64 {
	stats := nb.stats[off : off+nb.stride]
	counts := stats[:nb.classes]
	total := stats[nb.classes]
	maxLog := math.Inf(-1)
	for c := 0; c < nb.classes; c++ {
		if counts[c] == 0 {
			buf[c] = math.Inf(-1)
			continue
		}
		lp := math.Log(counts[c] / total)
		for a := range nb.attrOff {
			v := vals[a]
			if IsMissing(v) {
				continue
			}
			ab := stats[nb.attrOff[a]:]
			if !numeric[a] {
				k := nb.nomVals[a]
				idx := int32(v)
				if idx >= 0 && idx < k {
					lp += math.Log((ab[int(idx)*nb.classes+c] + 1) / (counts[c] + float64(k)))
				}
				continue
			}
			g := ab[c*3:]
			n, mean, sd := g[0], g[1], g[2]
			if n < 2 {
				continue
			}
			if sd <= 0 {
				sd = math.Abs(mean)*1e-3 + 1e-9
			}
			z := (v - mean) / sd
			lp += -0.5*z*z - math.Log(sd)
		}
		buf[c] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	var sum float64
	for c := 0; c < nb.classes; c++ {
		if math.IsInf(buf[c], -1) {
			buf[c] = 0
			continue
		}
		buf[c] = math.Exp(buf[c] - maxLog)
		sum += buf[c]
	}
	if sum == 0 {
		for c := 0; c < nb.classes; c++ {
			buf[c] = counts[c] / total
		}
		return buf
	}
	for c := range buf {
		buf[c] /= sum
	}
	return buf
}

// ctBuilder accumulates the flat tables during compilation.
type ctBuilder struct {
	t *CompiledTree
}

func newCTBuilder(attrs []Attribute, classes int) *ctBuilder {
	numeric := make([]bool, len(attrs))
	for i := range attrs {
		numeric[i] = attrs[i].Kind == Numeric
	}
	return &ctBuilder{t: &CompiledTree{classes: classes, numeric: numeric}}
}

// addNode appends a node shell plus its normalized distribution
// (counts/total, or one-hot majority when total is zero — the same
// arithmetic the pointer walk performs per call) and returns its index.
func (b *ctBuilder) addNode(attr int, threshold float64, counts []float64, majority int) int32 {
	t := b.t
	idx := int32(len(t.nodes))
	distOff := int32(len(t.dist))
	var total float64
	for _, c := range counts {
		total += c
	}
	dist := make([]float64, t.classes)
	if total > 0 {
		for i, c := range counts {
			dist[i] = c / total
		}
	} else {
		dist[majority] = 1
	}
	enc := int32(-1)
	if attr >= 0 {
		enc = int32(attr) << 1
		if t.numeric[attr] {
			enc |= 1
		}
	}
	t.dist = append(t.dist, dist...)
	t.nodes = append(t.nodes, cnode{
		attr: enc, majority: int32(majority),
		c0: -1, distOff: distOff, nbOff: -1, threshold: threshold,
	})
	return idx
}

// setNumericChildren stores the left/right subtree indices inline in a
// numeric split node.
func (b *ctBuilder) setNumericChildren(idx, left, right int32) {
	b.t.nodes[idx].c0, b.t.nodes[idx].c1 = left, right
}

// reserveChildren allocates n nominal child slots for node idx (filled
// by the caller as subtrees flatten; unfilled slots stay -1).
func (b *ctBuilder) reserveChildren(idx int32, n int) int32 {
	off := int32(len(b.t.children))
	for i := 0; i < n; i++ {
		b.t.children = append(b.t.children, -1)
	}
	b.t.nodes[idx].c0 = off
	b.t.nodes[idx].c1 = int32(n)
	return off
}

// Compile flattens a trained tree into its contiguous serving form.
func (t *Tree) Compile() *CompiledTree {
	b := newCTBuilder(t.attrs, len(t.root.counts))
	var flatten func(n *node) int32
	flatten = func(n *node) int32 {
		attr := n.attr
		if n.isLeaf() {
			attr = -1
		}
		idx := b.addNode(attr, n.threshold, n.counts, n.majority)
		if !n.isLeaf() {
			if b.t.numeric[n.attr] {
				l := flatten(n.children[0])
				r := flatten(n.children[1])
				b.setNumericChildren(idx, l, r)
			} else {
				off := b.reserveChildren(idx, len(n.children))
				for i, c := range n.children {
					if c != nil {
						b.t.children[off+int32(i)] = flatten(c)
					}
				}
			}
		}
		return idx
	}
	flatten(t.root)
	return b.t
}

// CompiledForest is the flat serving form of a Forest: every member
// compiled, voting into a caller-provided buffer.
type CompiledForest struct {
	members []*CompiledTree
	classes int
}

// Compile flattens every member tree.
func (f *Forest) Compile() *CompiledForest {
	cf := &CompiledForest{classes: f.classes}
	for _, m := range f.members {
		cf.members = append(cf.members, m.Compile())
	}
	return cf
}

// NumClasses returns the class count.
func (cf *CompiledForest) NumClasses() int { return cf.classes }

// DistributionInto averages the member distributions into buf (which
// must hold NumClasses values), allocating nothing: each member's walk
// lands on a precomputed distribution that is accumulated in place.
func (cf *CompiledForest) DistributionInto(vals []float64, buf []float64) []float64 {
	buf = buf[:cf.classes]
	for c := range buf {
		buf[c] = 0
	}
	for _, m := range cf.members {
		stop := &m.nodes[m.walk(vals)]
		d := m.dist[stop.distOff : stop.distOff+int32(m.classes)]
		for c, p := range d {
			buf[c] += p
		}
	}
	n := float64(len(cf.members))
	for c := range buf {
		buf[c] /= n
	}
	return buf
}

// Distribution implements Classifier (allocates; hot paths use
// DistributionInto).
func (cf *CompiledForest) Distribution(vals []float64) []float64 {
	return cf.DistributionInto(vals, make([]float64, cf.classes))
}

// ClassifyInto classifies using buf as the voting scratch, allocating
// nothing.
func (cf *CompiledForest) ClassifyInto(vals []float64, buf []float64) int {
	d := cf.DistributionInto(vals, buf)
	best, bestP := 0, d[0]
	for c := 1; c < len(d); c++ {
		if d[c] > bestP {
			best, bestP = c, d[c]
		}
	}
	return best
}

// Classify implements Classifier.
func (cf *CompiledForest) Classify(vals []float64) int {
	var buf [64]float64
	if cf.classes <= len(buf) {
		return cf.ClassifyInto(vals, buf[:cf.classes])
	}
	return cf.ClassifyInto(vals, make([]float64, cf.classes))
}

// Compile snapshots the incremental tree into its flat serving form.
// The snapshot freezes everything serving needs — node structure, leaf
// class counts, naive-Bayes sufficient statistics, and each leaf's
// adaptive MC-vs-NB verdict — so the learner keeps observing while
// the compiled copy serves flat and allocation-free. Recompile after
// retraining (see Serving) to pick up new splits.
func (h *HoeffdingTree) Compile() *CompiledTree {
	b := newCTBuilder(h.attrs, len(h.classes))
	var flatten func(n *hNode) int32
	flatten = func(n *hNode) int32 {
		attr := n.attr
		if n.isLeaf() {
			attr = -1
		}
		// Hoeffding distributions fall back to class 0, not the majority,
		// on an empty node; encoding majority=0 for empty nodes keeps the
		// compiled one-hot identical.
		var total float64
		for _, c := range n.counts {
			total += c
		}
		maj := 0
		if total > 0 {
			maj = majorityClass(n.counts)
		}
		idx := b.addNode(attr, n.threshold, n.counts, maj)
		if n.isLeaf() && n.gauss != nil && total >= 10 && n.nbCorrect > n.mcCorrect {
			b.t.nodes[idx].nbOff = b.addNB(h, n, total)
		}
		if !n.isLeaf() {
			if b.t.numeric[n.attr] {
				l := flatten(n.children[0])
				r := flatten(n.children[1])
				b.setNumericChildren(idx, l, r)
			} else {
				off := b.reserveChildren(idx, len(n.children))
				for i, c := range n.children {
					if c != nil {
						b.t.children[off+int32(i)] = flatten(c)
					}
				}
			}
		}
		return idx
	}
	flatten(h.root)
	return b.t
}

// addNB flattens leaf's naive-Bayes sufficient statistics into one
// fixed-stride blob and returns its offset.
func (b *ctBuilder) addNB(h *HoeffdingTree, leaf *hNode, total float64) int32 {
	t := b.t
	if t.nb == nil {
		nb := &compiledNB{classes: t.classes}
		off := int32(t.classes + 1) // counts + total
		for a := range h.attrs {
			nb.attrOff = append(nb.attrOff, off)
			if h.attrs[a].Kind == Nominal {
				k := int32(h.attrs[a].NumValues())
				nb.nomVals = append(nb.nomVals, k)
				off += k * int32(t.classes)
			} else {
				nb.nomVals = append(nb.nomVals, 0)
				off += int32(t.classes) * 3
			}
		}
		nb.stride = off
		t.nb = nb
	}
	nb := t.nb
	off := int32(len(nb.stats))
	blob := make([]float64, nb.stride)
	copy(blob, leaf.counts)
	blob[t.classes] = total
	for a := range h.attrs {
		ab := blob[nb.attrOff[a]:]
		if h.attrs[a].Kind == Nominal {
			for v, classCounts := range leaf.nomCounts[a] {
				for c, w := range classCounts {
					ab[v*t.classes+c] = w
				}
			}
			continue
		}
		for c := 0; c < t.classes; c++ {
			g := &leaf.gauss[a][c]
			ab[c*3] = g.n
			ab[c*3+1] = g.mean
			ab[c*3+2] = g.std()
		}
	}
	nb.stats = append(nb.stats, blob...)
	return off
}

// Generation counts structural retrains (splits) of the incremental
// tree; Serving uses it to decide when its snapshot is stale.
func (h *HoeffdingTree) Generation() int { return h.splits }

// Serving returns a compiled snapshot of the tree, recompiling only
// when a split has changed the structure since the last snapshot. The
// learner stays incremental — Observe keeps updating the live tree —
// while callers on the critical path classify against the flat copy.
// Between splits the snapshot's leaf statistics lag the live leaves by
// design: that staleness is the price of a zero-allocation serve, and
// it heals at the next split (or an explicit Compile).
func (h *HoeffdingTree) Serving() *CompiledTree {
	if h.snapshot == nil || h.snapshotGen != h.splits {
		h.snapshot = h.Compile()
		h.snapshotGen = h.splits
	}
	return h.snapshot
}
