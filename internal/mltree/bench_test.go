package mltree

import "testing"

// benchProbes extracts a power-of-two probe set from the dataset so
// benchmark loops can index with a mask instead of an integer divide
// (the divide would otherwise dominate a ~30 ns walk).
func benchProbes(d *Dataset) [][]float64 {
	const n = 4096
	probes := make([][]float64, n)
	for i := range probes {
		probes[i] = d.Instances[i%d.Len()].Vals
	}
	return probes
}

// BenchmarkJ48Fit measures training on a 600-instance dataset.
func BenchmarkJ48Fit(b *testing.B) {
	d := nominalDataset(600, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewJ48().Fit(d)
	}
}

// BenchmarkJ48Classify measures the critical-path prediction (§5.1's
// 1 ms budget; Figure 6) through the pointer-walk representation, on a
// predictor-shaped tree (numeric features, 128 memory classes).
func BenchmarkJ48Classify(b *testing.B) {
	d := predictorDataset(4000, 128, 2)
	model := NewJ48().Fit(d)
	probes := benchProbes(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Classify(probes[i&(len(probes)-1)])
	}
}

// BenchmarkJ48CompiledClassify is the same prediction through the
// flattened node tables — the serving path OFC puts on every
// invocation.
func BenchmarkJ48CompiledClassify(b *testing.B) {
	d := predictorDataset(4000, 128, 2)
	model := NewJ48().Fit(d).(*Tree).Compile()
	probes := benchProbes(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Classify(probes[i&(len(probes)-1)])
	}
}

// BenchmarkJ48Distribution measures the benefit-score path (the
// Predictor reads the probability mass behind the verdict).
func BenchmarkJ48Distribution(b *testing.B) {
	d := predictorDataset(4000, 128, 2)
	model := NewJ48().Fit(d)
	probes := benchProbes(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Distribution(probes[i&(len(probes)-1)])
	}
}

// BenchmarkJ48CompiledDistribution is the buffered compiled
// counterpart (zero allocations).
func BenchmarkJ48CompiledDistribution(b *testing.B) {
	d := predictorDataset(4000, 128, 2)
	model := NewJ48().Fit(d).(*Tree).Compile()
	buf := make([]float64, model.NumClasses())
	probes := benchProbes(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.DistributionInto(probes[i&(len(probes)-1)], buf)
	}
}

// BenchmarkForestClassify measures the RandomForest alternative the
// paper rejected for critical-path latency.
func BenchmarkForestClassify(b *testing.B) {
	d := nominalDataset(600, 1)
	model := (&RandomForest{Trees: 30, MinLeaf: 1, Seed: 1}).Fit(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Classify(d.Instances[i%d.Len()].Vals)
	}
}

// BenchmarkForestCompiledClassify is forest voting through compiled
// members into a reused distribution buffer.
func BenchmarkForestCompiledClassify(b *testing.B) {
	d := nominalDataset(600, 1)
	model := (&RandomForest{Trees: 30, MinLeaf: 1, Seed: 1}).Fit(d).(*Forest).Compile()
	buf := make([]float64, model.NumClasses())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ClassifyInto(d.Instances[i%d.Len()].Vals, buf)
	}
}

// BenchmarkHoeffdingObserve measures incremental learning throughput.
func BenchmarkHoeffdingObserve(b *testing.B) {
	d := nominalDataset(600, 1)
	h := NewHoeffdingTree(d.Attrs, d.Classes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := d.Instances[i%d.Len()]
		h.Observe(inst.Vals, inst.Class)
	}
}

// BenchmarkHoeffdingClassify measures the incremental tree's *serving*
// path — the adaptive-NB walk every classification pays, distinct from
// the Observe ingest path benchmarked above.
func BenchmarkHoeffdingClassify(b *testing.B) {
	d := nominalDataset(2000, 12)
	h := NewHoeffdingTree(d.Attrs, d.Classes)
	for i := range d.Instances {
		h.Observe(d.Instances[i].Vals, d.Instances[i].Class)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Classify(d.Instances[i%d.Len()].Vals)
	}
}

// BenchmarkHoeffdingCompiledClassify serves the same stream from a
// compiled snapshot (the learner keeps observing off this path).
func BenchmarkHoeffdingCompiledClassify(b *testing.B) {
	d := nominalDataset(2000, 12)
	h := NewHoeffdingTree(d.Attrs, d.Classes)
	for i := range d.Instances {
		h.Observe(d.Instances[i].Vals, d.Instances[i].Class)
	}
	ct := h.Compile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Classify(d.Instances[i%d.Len()].Vals)
	}
}
