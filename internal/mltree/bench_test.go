package mltree

import "testing"

// BenchmarkJ48Fit measures training on a 600-instance dataset.
func BenchmarkJ48Fit(b *testing.B) {
	d := nominalDataset(600, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewJ48().Fit(d)
	}
}

// BenchmarkJ48Classify measures the critical-path prediction (§5.1's
// 1 ms budget; Figure 6).
func BenchmarkJ48Classify(b *testing.B) {
	d := nominalDataset(600, 1)
	model := NewJ48().Fit(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Classify(d.Instances[i%d.Len()].Vals)
	}
}

// BenchmarkForestClassify measures the RandomForest alternative the
// paper rejected for critical-path latency.
func BenchmarkForestClassify(b *testing.B) {
	d := nominalDataset(600, 1)
	model := (&RandomForest{Trees: 30, MinLeaf: 1, Seed: 1}).Fit(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Classify(d.Instances[i%d.Len()].Vals)
	}
}

// BenchmarkHoeffdingObserve measures incremental learning throughput.
func BenchmarkHoeffdingObserve(b *testing.B) {
	d := nominalDataset(600, 1)
	h := NewHoeffdingTree(d.Attrs, d.Classes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := d.Instances[i%d.Len()]
		h.Observe(inst.Vals, inst.Class)
	}
}
