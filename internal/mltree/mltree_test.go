package mltree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadDataset builds a 2-feature task (positive iff both features are
// above 0.5) that needs a depth-2 tree but has positive first-level
// gain, unlike XOR, which C4.5's MDL-corrected numeric splits reject.
func quadDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset([]Attribute{
		{Name: "x", Kind: Numeric},
		{Name: "y", Kind: Numeric},
	}, []string{"neg", "pos"})
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		c := 0
		if x > 0.5 && y > 0.5 {
			c = 1
		}
		d.Add([]float64{x, y}, c)
	}
	return d
}

// nominalDataset: class = color unless shape overrides.
func nominalDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset([]Attribute{
		{Name: "color", Kind: Nominal, Values: []string{"red", "green", "blue"}},
		{Name: "shape", Kind: Nominal, Values: []string{"circle", "square"}},
		{Name: "size", Kind: Numeric},
	}, []string{"a", "b", "c"})
	for i := 0; i < n; i++ {
		color := rng.Intn(3)
		shape := rng.Intn(2)
		size := rng.Float64() * 10
		class := color
		if shape == 1 && size > 5 {
			class = (color + 1) % 3
		}
		d.Add([]float64{float64(color), float64(shape), size}, class)
	}
	return d
}

func TestEntropy(t *testing.T) {
	if e := entropy([]float64{5, 5}); math.Abs(e-1) > 1e-12 {
		t.Errorf("entropy(5,5)=%v, want 1", e)
	}
	if e := entropy([]float64{10, 0}); e != 0 {
		t.Errorf("entropy(10,0)=%v, want 0", e)
	}
	if e := entropy(nil); e != 0 {
		t.Errorf("entropy(nil)=%v", e)
	}
	if e := entropy([]float64{1, 1, 1, 1}); math.Abs(e-2) > 1e-12 {
		t.Errorf("entropy uniform 4=%v, want 2", e)
	}
}

func TestJ48LearnsQuadrant(t *testing.T) {
	d := quadDataset(400, 1)
	model := NewJ48().Fit(d)
	conf := Evaluate(model, quadDataset(200, 2))
	if acc := conf.Accuracy(); acc < 0.95 {
		t.Errorf("J48 quadrant accuracy %.3f < 0.95", acc)
	}
}

func TestJ48LearnsNominal(t *testing.T) {
	d := nominalDataset(600, 1)
	model := NewJ48().Fit(d)
	conf := Evaluate(model, nominalDataset(300, 2))
	if acc := conf.Accuracy(); acc < 0.95 {
		t.Errorf("J48 nominal accuracy %.3f < 0.95", acc)
	}
}

func TestJ48PureLeafShortCircuit(t *testing.T) {
	d := NewDataset([]Attribute{{Name: "x", Kind: Numeric}}, []string{"only"})
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(i)}, 0)
	}
	tree := NewJ48().Fit(d).(*Tree)
	if tree.Size() != 1 {
		t.Errorf("pure dataset grew %d nodes", tree.Size())
	}
}

func TestJ48MissingValuesFallBack(t *testing.T) {
	d := quadDataset(400, 3)
	model := NewJ48().Fit(d)
	// Missing features must not panic and must return a valid class.
	c := model.Classify([]float64{Missing, Missing})
	if c != 0 && c != 1 {
		t.Errorf("class %d for all-missing", c)
	}
	dist := model.Distribution([]float64{Missing, 0.3})
	var sum float64
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
}

func TestJ48NominalUnseenValue(t *testing.T) {
	d := nominalDataset(200, 4)
	model := NewJ48().Fit(d)
	// Out-of-range nominal index falls back to node majority.
	c := model.Classify([]float64{99, 0, 1})
	if c < 0 || c > 2 {
		t.Errorf("class %d", c)
	}
}

func TestPruningShrinksTree(t *testing.T) {
	// Noisy labels: an unpruned tree overfits, pruning should shrink it.
	rng := rand.New(rand.NewSource(5))
	d := NewDataset([]Attribute{{Name: "x", Kind: Numeric}}, []string{"a", "b"})
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		c := 0
		if x > 0.5 {
			c = 1
		}
		if rng.Float64() < 0.25 { // label noise
			c = 1 - c
		}
		d.Add([]float64{x}, c)
	}
	unpruned := (&J48{MinLeaf: 2}).Fit(d).(*Tree)
	pruned := NewJ48().Fit(d).(*Tree)
	if pruned.Size() > unpruned.Size() {
		t.Errorf("pruned size %d > unpruned %d", pruned.Size(), unpruned.Size())
	}
	if pruned.Size() > 9 {
		t.Errorf("pruned tree still large: %d nodes", pruned.Size())
	}
	conf := Evaluate(pruned, d)
	if acc := conf.Accuracy(); acc < 0.7 {
		t.Errorf("pruned training accuracy %.3f", acc)
	}
}

func TestMaxDepth(t *testing.T) {
	d := quadDataset(400, 6)
	tree := (&J48{MinLeaf: 2, MaxDepth: 1}).Fit(d).(*Tree)
	if tree.Depth() > 2 {
		t.Errorf("depth %d with MaxDepth 1", tree.Depth())
	}
}

func TestRandomForestLearnsQuadrant(t *testing.T) {
	d := quadDataset(500, 7)
	f := NewRandomForest(7).Fit(d)
	conf := Evaluate(f, quadDataset(250, 8))
	if acc := conf.Accuracy(); acc < 0.9 {
		t.Errorf("forest quadrant accuracy %.3f", acc)
	}
}

func TestRandomTreeDeterministicForSeed(t *testing.T) {
	d := nominalDataset(300, 9)
	t1 := NewRandomTree(11).Fit(d).(*Tree)
	t2 := NewRandomTree(11).Fit(d).(*Tree)
	for i := 0; i < 50; i++ {
		vals := d.Instances[i].Vals
		if t1.Classify(vals) != t2.Classify(vals) {
			t.Fatal("same-seed RandomTrees disagree")
		}
	}
}

func TestHoeffdingLearnsStream(t *testing.T) {
	h := NewHoeffdingTree([]Attribute{
		{Name: "x", Kind: Numeric},
	}, []string{"lo", "hi"})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		x := rng.Float64()
		c := 0
		if x > 0.6 {
			c = 1
		}
		h.Observe([]float64{x}, c)
	}
	ok := 0
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		want := 0
		if x > 0.6 {
			want = 1
		}
		if h.Classify([]float64{x}) == want {
			ok++
		}
	}
	if float64(ok)/500 < 0.9 {
		t.Errorf("hoeffding stream accuracy %.3f", float64(ok)/500)
	}
	if h.Size() <= 1 {
		t.Error("hoeffding tree never split")
	}
}

func TestHoeffdingNominal(t *testing.T) {
	attrs := []Attribute{{Name: "c", Kind: Nominal, Values: []string{"u", "v", "w"}}}
	h := NewHoeffdingTree(attrs, []string{"a", "b", "c"})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		v := rng.Intn(3)
		h.Observe([]float64{float64(v)}, v)
	}
	for v := 0; v < 3; v++ {
		if got := h.Classify([]float64{float64(v)}); got != v {
			t.Errorf("class(%d)=%d", v, got)
		}
	}
}

func TestConfusionMetrics(t *testing.T) {
	m := NewConfusion([]string{"c0", "c1", "c2"})
	m.Record(0, 0, 10) // exact
	m.Record(1, 2, 5)  // over
	m.Record(2, 1, 3)  // under by one
	m.Record(2, 0, 2)  // under by two
	if acc := m.Accuracy(); math.Abs(acc-0.5) > 1e-12 {
		t.Errorf("accuracy=%v", acc)
	}
	if eo := m.EOAccuracy(); math.Abs(eo-0.75) > 1e-12 {
		t.Errorf("eo=%v, want 0.75", eo)
	}
	if u := m.UnderWithinOne(); math.Abs(u-0.6) > 1e-12 {
		t.Errorf("underWithinOne=%v, want 0.6", u)
	}
	h := m.ErrorHistogram()
	if h[0] != 10 || h[1] != 5 || h[-1] != 3 || h[-2] != 2 {
		t.Errorf("histogram=%v", h)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	m := NewConfusion([]string{"no", "yes"})
	m.Record(1, 1, 80) // TP
	m.Record(0, 1, 10) // FP
	m.Record(1, 0, 20) // FN
	m.Record(0, 0, 90) // TN
	if p := m.Precision(1); math.Abs(p-80.0/90) > 1e-12 {
		t.Errorf("precision=%v", p)
	}
	if r := m.Recall(1); math.Abs(r-0.8) > 1e-12 {
		t.Errorf("recall=%v", r)
	}
	p, r := 80.0/90, 0.8
	want := 2 * p * r / (p + r)
	if f := m.F1(1); math.Abs(f-want) > 1e-12 {
		t.Errorf("f1=%v, want %v", f, want)
	}
}

func TestCrossValidateCoversAllInstances(t *testing.T) {
	d := quadDataset(173, 12) // odd size to exercise uneven folds
	conf := CrossValidate(NewJ48(), d, 10, 1)
	if int(conf.Total()) != 173 {
		t.Errorf("CV classified %v instances, want 173", conf.Total())
	}
	if acc := conf.Accuracy(); acc < 0.85 {
		t.Errorf("CV accuracy %.3f", acc)
	}
}

func TestCrossValidateStratified(t *testing.T) {
	// 90/10 class imbalance: stratification keeps the rare class in CV.
	rng := rand.New(rand.NewSource(13))
	d := NewDataset([]Attribute{{Name: "x", Kind: Numeric}}, []string{"common", "rare"})
	for i := 0; i < 200; i++ {
		if i%10 == 0 {
			d.Add([]float64{5 + rng.Float64()}, 1)
		} else {
			d.Add([]float64{rng.Float64()}, 0)
		}
	}
	conf := CrossValidate(NewJ48(), d, 10, 1)
	if r := conf.Recall(1); r < 0.9 {
		t.Errorf("rare-class recall %.3f; stratification broken?", r)
	}
}

func TestBootstrapSameSize(t *testing.T) {
	d := quadDataset(100, 14)
	bag := d.Bootstrap(rand.New(rand.NewSource(1)))
	if bag.Len() != 100 {
		t.Errorf("bootstrap size %d", bag.Len())
	}
}

func TestZValue(t *testing.T) {
	// C4.5's CF=0.25 corresponds to z≈0.6745.
	if z := zValue(0.25); math.Abs(z-0.6745) > 0.001 {
		t.Errorf("z(0.25)=%v", z)
	}
	if z := zValue(0.05); math.Abs(z-1.6449) > 0.001 {
		t.Errorf("z(0.05)=%v", z)
	}
}

func TestErrorEstimateMonotonicInErrors(t *testing.T) {
	e1 := errorEstimate(100, 5, 0.25)
	e2 := errorEstimate(100, 10, 0.25)
	if e1 >= e2 {
		t.Errorf("errorEstimate not monotonic: %v >= %v", e1, e2)
	}
	if e1 <= 5 {
		t.Errorf("pessimistic estimate %v not above observed 5", e1)
	}
}

func TestGaussEst(t *testing.T) {
	var g gaussEst
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		g.add(v, 1)
	}
	if math.Abs(g.mean-5) > 1e-9 {
		t.Errorf("mean=%v", g.mean)
	}
	if math.Abs(g.std()-2.138) > 0.01 { // sample std
		t.Errorf("std=%v", g.std())
	}
	if g.min != 2 || g.max != 9 {
		t.Errorf("min/max=%v/%v", g.min, g.max)
	}
	if c := g.cdf(5); math.Abs(c-0.5) > 1e-9 {
		t.Errorf("cdf(mean)=%v", c)
	}
}

// Property: training accuracy of an unpruned J48 with MinLeaf=1 on
// consistent data (no duplicate feature vectors with different labels)
// is perfect.
func TestPropertyJ48FitsConsistentData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]string, 20)
		for i := range vals {
			vals[i] = string(rune('a' + i))
		}
		d := NewDataset([]Attribute{
			{Name: "x", Kind: Nominal, Values: vals},
			{Name: "y", Kind: Nominal, Values: vals},
		}, []string{"a", "b", "c"})
		seen := map[[2]int]bool{}
		for i := 0; i < 60; i++ {
			xi, yi := rng.Intn(20), rng.Intn(20)
			if seen[[2]int{xi, yi}] {
				continue
			}
			seen[[2]int{xi, yi}] = true
			c := (xi*3 + yi) % 3
			d.Add([]float64{float64(xi), float64(yi)}, c)
		}
		model := (&J48{MinLeaf: 1}).Fit(d)
		for i := range d.Instances {
			if model.Classify(d.Instances[i].Vals) != d.Instances[i].Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: distributions always sum to 1 and are non-negative.
func TestPropertyDistributionIsProbability(t *testing.T) {
	d := nominalDataset(300, 15)
	models := []Classifier{
		NewJ48().Fit(d),
		NewRandomForest(1).Fit(d),
		HoeffdingLearner{}.Fit(d),
	}
	f := func(color8, shape8 uint8, size float64) bool {
		vals := []float64{float64(color8 % 3), float64(shape8 % 2), math.Mod(math.Abs(size), 10)}
		for _, m := range models {
			dist := m.Distribution(vals)
			sum := 0.0
			for _, p := range dist {
				if p < 0 || math.IsNaN(p) {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Classify agrees with argmax of Distribution for trees.
func TestPropertyClassifyMatchesDistribution(t *testing.T) {
	d := quadDataset(300, 16)
	tree := NewJ48().Fit(d).(*Tree)
	f := func(x, y float64) bool {
		vals := []float64{math.Mod(math.Abs(x), 1), math.Mod(math.Abs(y), 1)}
		dist := tree.Distribution(vals)
		best, bestP := 0, dist[0]
		for c := 1; c < len(dist); c++ {
			if dist[c] > bestP {
				best, bestP = c, dist[c]
			}
		}
		return tree.Classify(vals) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	d := nominalDataset(300, 70)
	c1 := CrossValidate(NewJ48(), d, 5, 9)
	c2 := CrossValidate(NewJ48(), d, 5, 9)
	if c1.Accuracy() != c2.Accuracy() || c1.EOAccuracy() != c2.EOAccuracy() {
		t.Errorf("CV not deterministic for fixed seed: %v vs %v", c1, c2)
	}
	c3 := CrossValidate(NewJ48(), d, 5, 10)
	_ = c3 // different seed may legitimately differ; no assertion
}
