package mltree

import (
	"math"
	"math/rand"
)

// RandomTree grows an unpruned tree that considers a random subset of
// K attributes at each node (Weka's RandomTree).
type RandomTree struct {
	// K is the number of attributes sampled per node; zero selects
	// the Weka default log2(#attrs)+1.
	K       int
	MinLeaf float64
	Seed    int64
}

// NewRandomTree returns a RandomTree learner with Weka-like defaults.
func NewRandomTree(seed int64) *RandomTree { return &RandomTree{MinLeaf: 1, Seed: seed} }

// Name implements Learner.
func (r *RandomTree) Name() string { return "RandomTree" }

// Fit implements Learner.
func (r *RandomTree) Fit(d *Dataset) Classifier {
	k := r.K
	if k <= 0 {
		k = int(math.Log2(float64(len(d.Attrs)))) + 1
	}
	if k > len(d.Attrs) {
		k = len(d.Attrs)
	}
	minLeaf := r.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 1
	}
	rng := rand.New(rand.NewSource(r.Seed))
	b := &treeBuilder{d: d, minLeaf: minLeaf, rng: rng}
	b.attrSampler = func() []int {
		perm := rng.Perm(len(d.Attrs))
		return perm[:k]
	}
	root := b.build(d.Instances, 0)
	return &Tree{root: root, attrs: d.Attrs, n: d.Len()}
}

// RandomForest bags RandomTrees and classifies by majority vote of the
// member distributions (Breiman 2001, as implemented in Weka).
type RandomForest struct {
	// Trees is the ensemble size (Weka default 100; the paper's
	// comparisons are insensitive above ~30, which we use to keep the
	// benchmarks brisk while preserving accuracy).
	Trees   int
	K       int
	MinLeaf float64
	Seed    int64
}

// NewRandomForest returns a forest learner with sensible defaults.
func NewRandomForest(seed int64) *RandomForest {
	return &RandomForest{Trees: 30, MinLeaf: 1, Seed: seed}
}

// Name implements Learner.
func (r *RandomForest) Name() string { return "RandomForest" }

// Forest is a trained random forest.
type Forest struct {
	members []*Tree
	classes int
}

// Fit implements Learner.
func (r *RandomForest) Fit(d *Dataset) Classifier {
	n := r.Trees
	if n <= 0 {
		n = 30
	}
	rng := rand.New(rand.NewSource(r.Seed))
	f := &Forest{classes: len(d.Classes)}
	for i := 0; i < n; i++ {
		bag := d.Bootstrap(rng)
		rt := &RandomTree{K: r.K, MinLeaf: r.MinLeaf, Seed: rng.Int63()}
		f.members = append(f.members, rt.Fit(bag).(*Tree))
	}
	return f
}

// Distribution implements Classifier: average of member distributions.
func (f *Forest) Distribution(vals []float64) []float64 {
	dist := make([]float64, f.classes)
	for _, t := range f.members {
		for c, p := range t.Distribution(vals) {
			dist[c] += p
		}
	}
	for c := range dist {
		dist[c] /= float64(len(f.members))
	}
	return dist
}

// Classify implements Classifier.
func (f *Forest) Classify(vals []float64) int {
	dist := f.Distribution(vals)
	best, bestP := 0, dist[0]
	for c := 1; c < len(dist); c++ {
		if dist[c] > bestP {
			best, bestP = c, dist[c]
		}
	}
	return best
}

// Size returns the total node count across members.
func (f *Forest) Size() int {
	s := 0
	for _, t := range f.members {
		s += t.Size()
	}
	return s
}
