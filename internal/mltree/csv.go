package mltree

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV import/export for datasets: the repository's stand-in for the
// paper's machine-learning folder of offline training data. The last
// column is the class label; nominal attribute cells hold category
// names, numeric cells decimal values, empty cells are missing.

// WriteCSV writes the dataset with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(d.Attrs)+1)
	for _, a := range d.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(d.Attrs)+1)
	for i := range d.Instances {
		inst := &d.Instances[i]
		for a := range d.Attrs {
			v := inst.Vals[a]
			switch {
			case IsMissing(v):
				row[a] = ""
			case d.Attrs[a].Kind == Nominal:
				idx := int(v)
				if idx >= 0 && idx < d.Attrs[a].NumValues() {
					row[a] = d.Attrs[a].Values[idx]
				} else {
					row[a] = ""
				}
			default:
				row[a] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		row[len(d.Attrs)] = d.Classes[inst.Class]
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads instances from WriteCSV output into a dataset with the
// given schema. The header row is validated against the schema.
func ReadCSV(r io.Reader, attrs []Attribute, classes []string) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("mltree: csv header: %w", err)
	}
	if len(header) != len(attrs)+1 {
		return nil, fmt.Errorf("mltree: csv has %d columns, schema wants %d", len(header), len(attrs)+1)
	}
	for i, a := range attrs {
		if header[i] != a.Name {
			return nil, fmt.Errorf("mltree: csv column %d is %q, schema wants %q", i, header[i], a.Name)
		}
	}
	classIdx := make(map[string]int, len(classes))
	for i, c := range classes {
		classIdx[c] = i
	}
	nomIdx := make([]map[string]int, len(attrs))
	for a := range attrs {
		if attrs[a].Kind == Nominal {
			nomIdx[a] = make(map[string]int, attrs[a].NumValues())
			for i, v := range attrs[a].Values {
				nomIdx[a][v] = i
			}
		}
	}
	d := NewDataset(attrs, classes)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mltree: csv line %d: %w", line, err)
		}
		vals := make([]float64, len(attrs))
		for a := range attrs {
			cell := row[a]
			switch {
			case cell == "":
				vals[a] = Missing
			case attrs[a].Kind == Nominal:
				idx, ok := nomIdx[a][cell]
				if !ok {
					return nil, fmt.Errorf("mltree: csv line %d: unknown category %q for %s", line, cell, attrs[a].Name)
				}
				vals[a] = float64(idx)
			default:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("mltree: csv line %d: %w", line, err)
				}
				vals[a] = v
			}
		}
		cls, ok := classIdx[row[len(attrs)]]
		if !ok {
			return nil, fmt.Errorf("mltree: csv line %d: unknown class %q", line, row[len(attrs)])
		}
		d.Add(vals, cls)
	}
	return d, nil
}
