package mltree

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	d := nominalDataset(400, 21)
	orig := NewJ48().Fit(d).(*Tree)
	data, err := MarshalTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != orig.Size() || back.Depth() != orig.Depth() {
		t.Errorf("shape changed: %v vs %v", back, orig)
	}
	for i := range d.Instances {
		vals := d.Instances[i].Vals
		if back.Classify(vals) != orig.Classify(vals) {
			t.Fatalf("prediction differs after round-trip at instance %d", i)
		}
	}
}

func TestForestJSONRoundTrip(t *testing.T) {
	d := quadDataset(300, 22)
	orig := (&RandomForest{Trees: 8, MinLeaf: 1, Seed: 5}).Fit(d).(*Forest)
	data, err := MarshalForest(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalForest(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Instances {
		vals := d.Instances[i].Vals
		od, bd := orig.Distribution(vals), back.Distribution(vals)
		for c := range od {
			if math.Abs(od[c]-bd[c]) > 1e-12 {
				t.Fatalf("distribution differs after round-trip")
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalTree([]byte("{")); err == nil {
		t.Error("no error for truncated JSON")
	}
	if _, err := UnmarshalTree([]byte("{}")); err == nil {
		t.Error("no error for rootless tree")
	}
	if _, err := UnmarshalForest([]byte(`{"members":[{}]}`)); err == nil {
		t.Error("no error for rootless member")
	}
}

// Property: any trained tree predicts identically after a JSON
// round-trip, for arbitrary query points.
func TestPropertySerializationPreservesPredictions(t *testing.T) {
	d := nominalDataset(300, 23)
	orig := NewJ48().Fit(d).(*Tree)
	data, _ := MarshalTree(orig)
	back, _ := UnmarshalTree(data)
	f := func(c, s uint8, size float64) bool {
		vals := []float64{float64(c % 3), float64(s % 2), math.Mod(math.Abs(size), 10)}
		return orig.Classify(vals) == back.Classify(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := nominalDataset(120, 24)
	// Add a missing value to exercise the empty-cell path.
	d.Instances[0].Vals[2] = Missing
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, d.Attrs, d.Classes)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("len=%d, want %d", back.Len(), d.Len())
	}
	for i := range d.Instances {
		if back.Instances[i].Class != d.Instances[i].Class {
			t.Fatalf("class differs at %d", i)
		}
		for a := range d.Attrs {
			o, b := d.Instances[i].Vals[a], back.Instances[i].Vals[a]
			if IsMissing(o) != IsMissing(b) {
				t.Fatalf("missingness differs at %d/%d", i, a)
			}
			if !IsMissing(o) && math.Abs(o-b) > 1e-9 {
				t.Fatalf("value differs at %d/%d: %v vs %v", i, a, o, b)
			}
		}
	}
	// The reloaded data trains to the same CV accuracy.
	c1 := CrossValidate(NewJ48(), d, 5, 1)
	c2 := CrossValidate(NewJ48(), back, 5, 1)
	if math.Abs(c1.Accuracy()-c2.Accuracy()) > 1e-9 {
		t.Errorf("accuracy differs: %v vs %v", c1.Accuracy(), c2.Accuracy())
	}
}

func TestCSVRejectsBadInput(t *testing.T) {
	d := nominalDataset(5, 25)
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n"), d.Attrs, d.Classes); err == nil {
		t.Error("no error for wrong column count")
	}
	var buf bytes.Buffer
	d.WriteCSV(&buf)
	mangled := bytes.Replace(buf.Bytes(), []byte("red"), []byte("mauve"), 1)
	if _, err := ReadCSV(bytes.NewBuffer(mangled), d.Attrs, d.Classes); err == nil {
		t.Error("no error for unknown category")
	}
}
