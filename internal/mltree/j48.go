package mltree

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// node is a decision-tree node shared by J48 and RandomTree.
type node struct {
	// split
	attr      int     // attribute index, -1 for leaf
	threshold float64 // numeric split: <= threshold goes left
	children  []*node // numeric: [left,right]; nominal: one per category

	// leaf / fallback data
	counts   []float64 // weighted class histogram at this node
	majority int       // majority class (used for leaves and missing values)
}

func (n *node) isLeaf() bool { return n.attr < 0 }

// classifyNode walks the tree for vals; missing or out-of-range values
// stop at the current node's majority.
func (n *node) distribution(vals []float64, attrs []Attribute) []float64 {
	cur := n
	for !cur.isLeaf() {
		v := vals[cur.attr]
		if IsMissing(v) {
			break
		}
		if attrs[cur.attr].Kind == Numeric {
			if v <= cur.threshold {
				cur = cur.children[0]
			} else {
				cur = cur.children[1]
			}
		} else {
			idx := int(v)
			if idx < 0 || idx >= len(cur.children) || cur.children[idx] == nil {
				break
			}
			cur = cur.children[idx]
		}
	}
	total := 0.0
	for _, c := range cur.counts {
		total += c
	}
	dist := make([]float64, len(cur.counts))
	if total > 0 {
		for i, c := range cur.counts {
			dist[i] = c / total
		}
	} else {
		dist[cur.majority] = 1
	}
	return dist
}

func (n *node) classify(vals []float64, attrs []Attribute) int {
	cur := n
	for !cur.isLeaf() {
		v := vals[cur.attr]
		if IsMissing(v) {
			break
		}
		if attrs[cur.attr].Kind == Numeric {
			if v <= cur.threshold {
				cur = cur.children[0]
			} else {
				cur = cur.children[1]
			}
		} else {
			idx := int(v)
			if idx < 0 || idx >= len(cur.children) || cur.children[idx] == nil {
				break
			}
			cur = cur.children[idx]
		}
	}
	return cur.majority
}

func (n *node) size() int {
	if n.isLeaf() {
		return 1
	}
	s := 1
	for _, c := range n.children {
		if c != nil {
			s += c.size()
		}
	}
	return s
}

func (n *node) depth() int {
	if n.isLeaf() {
		return 1
	}
	d := 0
	for _, c := range n.children {
		if c != nil && c.depth() > d {
			d = c.depth()
		}
	}
	return d + 1
}

// splitCandidate is the outcome of evaluating one attribute at a node.
type splitCandidate struct {
	attr      int
	threshold float64
	gain      float64
	gainRatio float64
	valid     bool
}

// evaluateSplit computes the best split on one attribute, C4.5 style:
// information gain ratio, binary threshold splits for numeric
// attributes, multiway splits for nominal ones. Missing values are
// excluded from the gain computation.
func evaluateSplit(d *Dataset, insts []Instance, attr int, baseEntropy float64, minLeaf float64) splitCandidate {
	cand := splitCandidate{attr: attr}
	numClasses := len(d.Classes)
	if d.Attrs[attr].Kind == Nominal {
		k := d.Attrs[attr].NumValues()
		counts := make([][]float64, k)
		for i := range counts {
			counts[i] = make([]float64, numClasses)
		}
		var total float64
		for i := range insts {
			v := insts[i].Vals[attr]
			if IsMissing(v) {
				continue
			}
			counts[int(v)][insts[i].Class] += insts[i].Weight
			total += insts[i].Weight
		}
		if total == 0 {
			return cand
		}
		nonEmpty := 0
		var cond, splitInfo float64
		for _, c := range counts {
			var w float64
			for _, x := range c {
				w += x
			}
			if w > 0 {
				nonEmpty++
				p := w / total
				cond += p * entropy(c)
				splitInfo -= p * math.Log2(p)
			}
		}
		if nonEmpty < 2 || splitInfo <= 0 {
			return cand
		}
		cand.gain = baseEntropy - cond
		cand.gainRatio = cand.gain / splitInfo
		cand.valid = cand.gain > 1e-10
		return cand
	}

	// Numeric attribute: sort and scan thresholds between distinct
	// consecutive values.
	sorted := make([]Instance, len(insts))
	copy(sorted, insts)
	SortByAttr(sorted, attr)
	// Trim trailing missing values.
	n := len(sorted)
	for n > 0 && IsMissing(sorted[n-1].Vals[attr]) {
		n--
	}
	if n < 2 {
		return cand
	}
	sorted = sorted[:n]
	var total float64
	right := make([]float64, numClasses)
	for i := range sorted {
		right[sorted[i].Class] += sorted[i].Weight
		total += sorted[i].Weight
	}
	left := make([]float64, numClasses)
	var leftW float64
	bestGain, bestThr := -1.0, 0.0
	candidates := 0
	for i := 0; i < len(sorted)-1; i++ {
		w := sorted[i].Weight
		left[sorted[i].Class] += w
		right[sorted[i].Class] -= w
		leftW += w
		if sorted[i].Vals[attr] == sorted[i+1].Vals[attr] {
			continue
		}
		rightW := total - leftW
		if leftW < minLeaf || rightW < minLeaf {
			continue
		}
		candidates++
		cond := leftW/total*entropy(left) + rightW/total*entropy(right)
		gain := baseEntropy - cond
		if gain > bestGain {
			bestGain = gain
			bestThr = (sorted[i].Vals[attr] + sorted[i+1].Vals[attr]) / 2
		}
	}
	// C4.5's MDL correction for numeric attributes: charge the cost of
	// transmitting the chosen threshold against the gain.
	if candidates > 0 {
		bestGain -= math.Log2(float64(candidates)) / total
	}
	if bestGain <= 1e-10 {
		return cand
	}
	// Recompute split info for the chosen threshold.
	var lw float64
	for i := range sorted {
		if sorted[i].Vals[attr] <= bestThr {
			lw += sorted[i].Weight
		}
	}
	pl := lw / total
	splitInfo := 0.0
	if pl > 0 && pl < 1 {
		splitInfo = -pl*math.Log2(pl) - (1-pl)*math.Log2(1-pl)
	}
	if splitInfo <= 0 {
		return cand
	}
	cand.threshold = bestThr
	cand.gain = bestGain
	cand.gainRatio = bestGain / splitInfo
	cand.valid = true
	return cand
}

// J48 is a C4.5-style decision-tree learner: gain-ratio splits, a
// minimum leaf weight, and optional pessimistic error pruning with the
// standard confidence factor.
type J48 struct {
	// MinLeaf is the minimum total weight per leaf (C4.5 default 2).
	MinLeaf float64
	// Confidence is the pruning confidence factor (C4.5 default 0.25).
	// Zero disables pruning.
	Confidence float64
	// MaxDepth caps tree depth; zero means unlimited.
	MaxDepth int
}

// NewJ48 returns a learner with the C4.5 defaults.
func NewJ48() *J48 { return &J48{MinLeaf: 2, Confidence: 0.25} }

// Name implements Learner.
func (j *J48) Name() string { return "J48" }

// Tree is a trained decision tree.
type Tree struct {
	root  *node
	attrs []Attribute
	n     int // training instances
}

// Fit implements Learner.
func (j *J48) Fit(d *Dataset) Classifier {
	minLeaf := j.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	b := &treeBuilder{d: d, minLeaf: minLeaf, maxDepth: j.MaxDepth}
	root := b.build(d.Instances, 0)
	if j.Confidence > 0 {
		prune(root, j.Confidence, d.Attrs)
	}
	return &Tree{root: root, attrs: d.Attrs, n: d.Len()}
}

// treeBuilder carries the recursion state for J48 and RandomTree.
type treeBuilder struct {
	d        *Dataset
	minLeaf  float64
	maxDepth int
	// attrSampler, when non-nil, returns the candidate attribute set
	// for a node (RandomTree's per-node random subspace).
	attrSampler func() []int
	rng         *rand.Rand
}

func (b *treeBuilder) build(insts []Instance, depth int) *node {
	counts := classCounts(insts, len(b.d.Classes))
	nd := &node{attr: -1, counts: counts, majority: majorityClass(counts)}
	var total, nonZero float64
	classesPresent := 0
	for _, c := range counts {
		total += c
		if c > 0 {
			classesPresent++
			nonZero = c
		}
	}
	_ = nonZero
	if classesPresent <= 1 || total < 2*b.minLeaf || (b.maxDepth > 0 && depth >= b.maxDepth) {
		return nd
	}
	baseEntropy := entropy(counts)

	var candidates []int
	if b.attrSampler != nil {
		candidates = b.attrSampler()
	} else {
		candidates = make([]int, len(b.d.Attrs))
		for i := range candidates {
			candidates[i] = i
		}
	}

	var best splitCandidate
	var gains []splitCandidate
	for _, a := range candidates {
		c := evaluateSplit(b.d, insts, a, baseEntropy, b.minLeaf)
		if c.valid {
			gains = append(gains, c)
		}
	}
	if len(gains) == 0 {
		return nd
	}
	// C4.5 heuristic: restrict to splits with at least average gain,
	// then pick the best gain ratio.
	var avg float64
	for _, g := range gains {
		avg += g.gain
	}
	avg /= float64(len(gains))
	bestRatio := -1.0
	for _, g := range gains {
		if g.gain >= avg-1e-12 && g.gainRatio > bestRatio {
			bestRatio = g.gainRatio
			best = g
		}
	}
	if !best.valid {
		return nd
	}

	nd.attr = best.attr
	nd.threshold = best.threshold
	if b.d.Attrs[best.attr].Kind == Numeric {
		var left, right []Instance
		for i := range insts {
			v := insts[i].Vals[best.attr]
			if IsMissing(v) {
				continue // dropped from children; parent majority covers them
			}
			if v <= best.threshold {
				left = append(left, insts[i])
			} else {
				right = append(right, insts[i])
			}
		}
		if len(left) == 0 || len(right) == 0 {
			nd.attr = -1
			return nd
		}
		nd.children = []*node{b.build(left, depth+1), b.build(right, depth+1)}
	} else {
		k := b.d.Attrs[best.attr].NumValues()
		parts := make([][]Instance, k)
		for i := range insts {
			v := insts[i].Vals[best.attr]
			if IsMissing(v) {
				continue
			}
			parts[int(v)] = append(parts[int(v)], insts[i])
		}
		nd.children = make([]*node, k)
		for i, p := range parts {
			if len(p) > 0 {
				nd.children[i] = b.build(p, depth+1)
			}
		}
	}
	return nd
}

// errorEstimate is the C4.5 pessimistic upper bound on the error rate
// of a leaf covering n instances with e errors, at confidence cf,
// using the normal approximation to the binomial.
func errorEstimate(n, e, cf float64) float64 {
	if n == 0 {
		return 0
	}
	z := zValue(cf)
	f := e / n
	num := f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))
	den := 1 + z*z/n
	return num / den * n
}

// zValue approximates the standard normal quantile for the upper tail
// probability cf (C4.5 uses cf=0.25 → z≈0.6745).
func zValue(cf float64) float64 {
	// Beasley-Springer-Moro style rational approximation of the
	// inverse normal CDF at 1-cf.
	p := 1 - cf
	if p <= 0 || p >= 1 {
		return 0
	}
	// Peter Acklam's approximation.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	dd := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	plow, phigh := 0.02425, 1-0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	}
}

// prune applies subtree replacement: if the pessimistic error of a node
// as a leaf does not exceed the summed pessimistic error of its
// children, collapse it.
func prune(n *node, cf float64, attrs []Attribute) float64 {
	var total, errs float64
	for c, w := range n.counts {
		total += w
		if c != n.majority {
			errs += w
		}
	}
	leafErr := errorEstimate(total, errs, cf)
	if n.isLeaf() {
		return leafErr
	}
	var subtreeErr float64
	for _, c := range n.children {
		if c != nil {
			subtreeErr += prune(c, cf, attrs)
		}
	}
	if leafErr <= subtreeErr+1e-9 {
		n.attr = -1
		n.children = nil
		return leafErr
	}
	return subtreeErr
}

// Classify implements Classifier.
func (t *Tree) Classify(vals []float64) int { return t.root.classify(vals, t.attrs) }

// Distribution implements Classifier.
func (t *Tree) Distribution(vals []float64) []float64 { return t.root.distribution(vals, t.attrs) }

// Size returns the number of nodes.
func (t *Tree) Size() int { return t.root.size() }

// Depth returns the tree depth.
func (t *Tree) Depth() int { return t.root.depth() }

// String renders a compact description.
func (t *Tree) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tree{nodes=%d depth=%d}", t.Size(), t.Depth())
	return sb.String()
}
