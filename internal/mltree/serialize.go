package mltree

import (
	"encoding/json"
	"fmt"
)

// The paper keeps each function's trained model in OWK's CouchDB so the
// Predictor fetches it together with the function metadata (§5.1).
// This file provides the JSON wire form for trained trees and forests.

// nodeJSON is the serialized form of a tree node.
type nodeJSON struct {
	Attr      int         `json:"attr"`
	Threshold float64     `json:"thr,omitempty"`
	Children  []*nodeJSON `json:"ch,omitempty"`
	Counts    []float64   `json:"counts"`
	Majority  int         `json:"maj"`
}

// treeJSON is the serialized form of a Tree.
type treeJSON struct {
	Root  *nodeJSON   `json:"root"`
	Attrs []Attribute `json:"attrs"`
	N     int         `json:"n"`
}

func toNodeJSON(n *node) *nodeJSON {
	if n == nil {
		return nil
	}
	out := &nodeJSON{Attr: n.attr, Threshold: n.threshold, Counts: n.counts, Majority: n.majority}
	for _, c := range n.children {
		out.Children = append(out.Children, toNodeJSON(c))
	}
	return out
}

func fromNodeJSON(j *nodeJSON) *node {
	if j == nil {
		return nil
	}
	n := &node{attr: j.Attr, threshold: j.Threshold, counts: j.Counts, majority: j.Majority}
	for _, c := range j.Children {
		n.children = append(n.children, fromNodeJSON(c))
	}
	return n
}

// MarshalTree serializes a trained Tree to JSON.
func MarshalTree(t *Tree) ([]byte, error) {
	return json.Marshal(treeJSON{Root: toNodeJSON(t.root), Attrs: t.attrs, N: t.n})
}

// UnmarshalTree reconstructs a Tree from MarshalTree output.
func UnmarshalTree(data []byte) (*Tree, error) {
	var j treeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("mltree: bad tree encoding: %w", err)
	}
	if j.Root == nil {
		return nil, fmt.Errorf("mltree: tree encoding has no root")
	}
	return &Tree{root: fromNodeJSON(j.Root), attrs: j.Attrs, n: j.N}, nil
}

// forestJSON is the serialized form of a Forest.
type forestJSON struct {
	Members []treeJSON `json:"members"`
	Classes int        `json:"classes"`
}

// MarshalForest serializes a trained Forest to JSON.
func MarshalForest(f *Forest) ([]byte, error) {
	out := forestJSON{Classes: f.classes}
	for _, t := range f.members {
		out.Members = append(out.Members, treeJSON{Root: toNodeJSON(t.root), Attrs: t.attrs, N: t.n})
	}
	return json.Marshal(out)
}

// UnmarshalForest reconstructs a Forest from MarshalForest output.
func UnmarshalForest(data []byte) (*Forest, error) {
	var j forestJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("mltree: bad forest encoding: %w", err)
	}
	f := &Forest{classes: j.Classes}
	for i := range j.Members {
		m := &j.Members[i]
		if m.Root == nil {
			return nil, fmt.Errorf("mltree: member %d has no root", i)
		}
		f.members = append(f.members, &Tree{root: fromNodeJSON(m.Root), attrs: m.Attrs, n: m.N})
	}
	return f, nil
}
