// Package mltree implements the decision-tree machinery OFC uses for
// per-invocation memory prediction and cache-benefit prediction (paper
// §5, §7.1): a C4.5-style learner (J48), RandomTree, a bagged
// RandomForest, and an incremental Hoeffding tree, together with
// dataset handling, k-fold cross-validation and the evaluation metrics
// the paper reports (exact accuracy, exact-or-over accuracy,
// precision/recall/F-measure).
//
// Everything is implemented from scratch on the standard library; the
// algorithms mirror the Weka implementations the paper used closely
// enough to reproduce Table 1 and Figures 5–6.
package mltree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// AttrKind distinguishes numeric from nominal attributes.
type AttrKind int

const (
	// Numeric attributes hold real values and split on thresholds.
	Numeric AttrKind = iota
	// Nominal attributes hold one of a fixed set of categories and
	// split multiway.
	Nominal
)

// Attribute describes one feature column.
type Attribute struct {
	Name   string
	Kind   AttrKind
	Values []string // category names for Nominal attributes
}

// NumValues returns the category count of a nominal attribute.
func (a *Attribute) NumValues() int { return len(a.Values) }

// Missing is the in-band encoding for an absent value.
var Missing = math.NaN()

// IsMissing reports whether v encodes a missing value.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Instance is one labeled example: feature values (nominal categories
// encoded as their index), a class index and a weight.
type Instance struct {
	Vals   []float64
	Class  int
	Weight float64
}

// Dataset is a set of instances over a fixed schema. Classes are the
// ordered label names; "ordered" matters for the exact-or-over metric,
// where class k means the k-th memory interval.
type Dataset struct {
	Attrs     []Attribute
	Classes   []string
	Instances []Instance
}

// NewDataset returns an empty dataset with the given schema.
func NewDataset(attrs []Attribute, classes []string) *Dataset {
	return &Dataset{Attrs: attrs, Classes: classes}
}

// Add appends an instance with weight 1.
func (d *Dataset) Add(vals []float64, class int) {
	d.AddWeighted(vals, class, 1)
}

// AddWeighted appends an instance with the given weight.
func (d *Dataset) AddWeighted(vals []float64, class int, weight float64) {
	if len(vals) != len(d.Attrs) {
		panic(fmt.Sprintf("mltree: %d values for %d attributes", len(vals), len(d.Attrs)))
	}
	if class < 0 || class >= len(d.Classes) {
		panic(fmt.Sprintf("mltree: class %d out of range", class))
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	d.Instances = append(d.Instances, Instance{Vals: cp, Class: class, Weight: weight})
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Instances) }

// TotalWeight sums the instance weights.
func (d *Dataset) TotalWeight() float64 {
	var w float64
	for i := range d.Instances {
		w += d.Instances[i].Weight
	}
	return w
}

// classCounts returns the weighted class histogram of insts.
func classCounts(insts []Instance, numClasses int) []float64 {
	counts := make([]float64, numClasses)
	for i := range insts {
		counts[insts[i].Class] += insts[i].Weight
	}
	return counts
}

// majorityClass returns the index of the heaviest class, breaking ties
// toward the lower index for determinism.
func majorityClass(counts []float64) int {
	best, bestW := 0, counts[0]
	for c := 1; c < len(counts); c++ {
		if counts[c] > bestW {
			best, bestW = c, counts[c]
		}
	}
	return best
}

// entropy computes the Shannon entropy of a weighted class histogram.
func entropy(counts []float64) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var e float64
	for _, c := range counts {
		if c > 0 {
			p := c / total
			e -= p * math.Log2(p)
		}
	}
	return e
}

// Shuffle permutes the instances deterministically from rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Instances), func(i, j int) {
		d.Instances[i], d.Instances[j] = d.Instances[j], d.Instances[i]
	})
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := NewDataset(d.Attrs, d.Classes)
	out.Instances = make([]Instance, len(d.Instances))
	for i := range d.Instances {
		vals := make([]float64, len(d.Instances[i].Vals))
		copy(vals, d.Instances[i].Vals)
		out.Instances[i] = Instance{Vals: vals, Class: d.Instances[i].Class, Weight: d.Instances[i].Weight}
	}
	return out
}

// Subset returns a dataset view holding the given instances (shared
// value slices, fresh instance slice).
func (d *Dataset) Subset(insts []Instance) *Dataset {
	return &Dataset{Attrs: d.Attrs, Classes: d.Classes, Instances: insts}
}

// Bootstrap returns a bagged sample of the same size drawn with
// replacement.
func (d *Dataset) Bootstrap(rng *rand.Rand) *Dataset {
	out := NewDataset(d.Attrs, d.Classes)
	out.Instances = make([]Instance, 0, len(d.Instances))
	for i := 0; i < len(d.Instances); i++ {
		out.Instances = append(out.Instances, d.Instances[rng.Intn(len(d.Instances))])
	}
	return out
}

// SortByAttr sorts instances by the given numeric attribute, missing
// values last.
func SortByAttr(insts []Instance, attr int) {
	sort.SliceStable(insts, func(i, j int) bool {
		a, b := insts[i].Vals[attr], insts[j].Vals[attr]
		switch {
		case IsMissing(a):
			return false
		case IsMissing(b):
			return true
		default:
			return a < b
		}
	})
}

// Classifier is a trained model that predicts a class for a feature
// vector.
type Classifier interface {
	// Classify returns the predicted class index for vals.
	Classify(vals []float64) int
	// Distribution returns the predicted class probabilities.
	Distribution(vals []float64) []float64
}

// Learner builds a Classifier from a dataset.
type Learner interface {
	Fit(d *Dataset) Classifier
	Name() string
}
