package mltree

import (
	"math"
)

// HoeffdingTree is an incremental VFDT learner (Domingos & Hulten,
// as implemented in Weka/MOA). It learns from a stream: each Observe
// call may grow the tree when the Hoeffding bound separates the best
// split from the runner-up. Numeric attributes are summarized by
// per-class Gaussian estimators and split on sampled thresholds.
type HoeffdingTree struct {
	attrs   []Attribute
	classes []string

	// GracePeriod is the number of examples a leaf accumulates
	// between split attempts.
	GracePeriod int
	// SplitConfidence is the δ of the Hoeffding bound.
	SplitConfidence float64
	// TieThreshold breaks near-ties (τ).
	TieThreshold float64

	root *hNode
	seen int

	// splits counts structural changes; Serving recompiles its flat
	// snapshot when it lags (see compiled.go).
	splits      int
	snapshot    *CompiledTree
	snapshotGen int
}

// NewHoeffdingTree returns an empty incremental tree with MOA-like
// defaults.
func NewHoeffdingTree(attrs []Attribute, classes []string) *HoeffdingTree {
	h := &HoeffdingTree{
		attrs:           attrs,
		classes:         classes,
		GracePeriod:     25,
		SplitConfidence: 1e-2,
		TieThreshold:    0.1,
	}
	h.root = newHLeaf(len(attrs), len(classes), attrs)
	return h
}

// Name identifies the algorithm in result tables.
func (h *HoeffdingTree) Name() string { return "HoeffdingTree" }

// hNode is a node of the Hoeffding tree.
type hNode struct {
	// internal node
	attr      int
	threshold float64
	children  []*hNode

	// leaf statistics
	counts    []float64
	sinceEval int
	nomCounts [][][]float64 // [attr][value][class]
	gauss     [][]gaussEst  // [attr][class]
	// Adaptive naive Bayes bookkeeping (MOA's NBAdaptive): prequential
	// correct counts of the majority-class and NB predictors.
	mcCorrect, nbCorrect float64
}

type gaussEst struct {
	n, mean, m2, min, max float64
}

func (g *gaussEst) add(v, w float64) {
	if g.n == 0 || v < g.min {
		g.min = v
	}
	if g.n == 0 || v > g.max {
		g.max = v
	}
	g.n += w
	delta := v - g.mean
	g.mean += delta * w / g.n
	g.m2 += w * delta * (v - g.mean)
}

func (g *gaussEst) std() float64 {
	if g.n < 2 {
		return 0
	}
	return math.Sqrt(g.m2 / (g.n - 1))
}

// cdf is the Gaussian CDF at v.
func (g *gaussEst) cdf(v float64) float64 {
	sd := g.std()
	if sd == 0 {
		if v < g.mean {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((v-g.mean)/(sd*math.Sqrt2)))
}

func newHLeaf(numAttrs, numClasses int, attrs []Attribute) *hNode {
	n := &hNode{attr: -1, counts: make([]float64, numClasses)}
	n.nomCounts = make([][][]float64, numAttrs)
	n.gauss = make([][]gaussEst, numAttrs)
	for a := range attrs {
		if attrs[a].Kind == Nominal {
			vs := attrs[a].NumValues()
			n.nomCounts[a] = make([][]float64, vs)
			for v := 0; v < vs; v++ {
				n.nomCounts[a][v] = make([]float64, numClasses)
			}
		} else {
			n.gauss[a] = make([]gaussEst, numClasses)
		}
	}
	return n
}

func (n *hNode) isLeaf() bool { return n.attr < 0 }

// Observe incorporates one labeled example.
func (h *HoeffdingTree) Observe(vals []float64, class int) {
	h.seen++
	leaf := h.root
	for !leaf.isLeaf() {
		v := vals[leaf.attr]
		if IsMissing(v) {
			break
		}
		if h.attrs[leaf.attr].Kind == Numeric {
			if v <= leaf.threshold {
				leaf = leaf.children[0]
			} else {
				leaf = leaf.children[1]
			}
		} else {
			idx := int(v)
			if idx < 0 || idx >= len(leaf.children) {
				break
			}
			leaf = leaf.children[idx]
		}
	}
	if !leaf.isLeaf() {
		return // missing value landed on an internal node; counted nowhere
	}
	// Prequential evaluation of the two leaf predictors (NBAdaptive).
	var leafTotal float64
	for _, c := range leaf.counts {
		leafTotal += c
	}
	if leafTotal > 0 {
		if majorityClass(leaf.counts) == class {
			leaf.mcCorrect++
		}
		if leafTotal >= 10 {
			nb := h.naiveBayes(leaf, vals, leafTotal)
			if argmax(nb) == class {
				leaf.nbCorrect++
			}
		}
	}
	leaf.counts[class]++
	for a := range h.attrs {
		v := vals[a]
		if IsMissing(v) {
			continue
		}
		if h.attrs[a].Kind == Nominal {
			leaf.nomCounts[a][int(v)][class]++
		} else {
			leaf.gauss[a][class].add(v, 1)
		}
	}
	leaf.sinceEval++
	if leaf.sinceEval >= h.GracePeriod {
		leaf.sinceEval = 0
		h.trySplit(leaf)
	}
}

// hoeffdingBound is ε = sqrt(R² ln(1/δ) / 2n) with R = log2(numClasses).
func (h *HoeffdingTree) hoeffdingBound(n float64) float64 {
	r := math.Log2(float64(len(h.classes)))
	if r < 1 {
		r = 1
	}
	return math.Sqrt(r * r * math.Log(1/h.SplitConfidence) / (2 * n))
}

type hSplit struct {
	attr      int
	threshold float64
	gain      float64
	valid     bool
}

func (h *HoeffdingTree) trySplit(leaf *hNode) {
	var total float64
	nonZero := 0
	for _, c := range leaf.counts {
		total += c
		if c > 0 {
			nonZero++
		}
	}
	if nonZero <= 1 || total < 2 {
		return
	}
	base := entropy(leaf.counts)
	best, second := hSplit{gain: -1}, hSplit{gain: -1}
	for a := range h.attrs {
		s := h.evalLeafSplit(leaf, a, base, total)
		if !s.valid {
			continue
		}
		if s.gain > best.gain {
			second = best
			best = s
		} else if s.gain > second.gain {
			second = s
		}
	}
	if !best.valid {
		return
	}
	eps := h.hoeffdingBound(total)
	secondGain := 0.0
	if second.valid {
		secondGain = second.gain
	}
	if best.gain-secondGain > eps || eps < h.TieThreshold {
		h.split(leaf, best)
	}
}

func (h *HoeffdingTree) evalLeafSplit(leaf *hNode, attr int, base, total float64) hSplit {
	s := hSplit{attr: attr}
	if h.attrs[attr].Kind == Nominal {
		var cond, seen float64
		nonEmpty := 0
		for _, classCounts := range leaf.nomCounts[attr] {
			var w float64
			for _, x := range classCounts {
				w += x
			}
			if w > 0 {
				nonEmpty++
				cond += w / total * entropy(classCounts)
				seen += w
			}
		}
		if nonEmpty < 2 || seen == 0 {
			return s
		}
		s.gain = base - cond
		s.valid = s.gain > 1e-10
		return s
	}
	// Numeric: sample 10 thresholds between the observed global range,
	// estimating left/right class weights from the per-class Gaussians.
	lo, hi := math.Inf(1), math.Inf(-1)
	for c := range leaf.gauss[attr] {
		g := &leaf.gauss[attr][c]
		if g.n > 0 {
			if g.min < lo {
				lo = g.min
			}
			if g.max > hi {
				hi = g.max
			}
		}
	}
	if !(hi > lo) {
		return s
	}
	numClasses := len(h.classes)
	bestGain, bestThr := -1.0, 0.0
	for i := 1; i <= 10; i++ {
		thr := lo + (hi-lo)*float64(i)/11
		left := make([]float64, numClasses)
		right := make([]float64, numClasses)
		var lw, rw float64
		for c := 0; c < numClasses; c++ {
			g := &leaf.gauss[attr][c]
			if g.n == 0 {
				continue
			}
			p := g.cdf(thr)
			left[c] = g.n * p
			right[c] = g.n * (1 - p)
			lw += left[c]
			rw += right[c]
		}
		if lw < 1 || rw < 1 {
			continue
		}
		tot := lw + rw
		gain := base - (lw/tot*entropy(left) + rw/tot*entropy(right))
		if gain > bestGain {
			bestGain, bestThr = gain, thr
		}
	}
	if bestGain <= 1e-10 {
		return s
	}
	s.gain = bestGain
	s.threshold = bestThr
	s.valid = true
	return s
}

func (h *HoeffdingTree) split(leaf *hNode, s hSplit) {
	h.splits++
	numClasses := len(h.classes)
	leaf.attr = s.attr
	leaf.threshold = s.threshold
	if h.attrs[s.attr].Kind == Numeric {
		l := newHLeaf(len(h.attrs), numClasses, h.attrs)
		r := newHLeaf(len(h.attrs), numClasses, h.attrs)
		// Seed child class counts from the Gaussian estimates so early
		// predictions at fresh leaves are sensible.
		for c := 0; c < numClasses; c++ {
			g := &leaf.gauss[s.attr][c]
			if g.n > 0 {
				p := g.cdf(s.threshold)
				l.counts[c] = g.n * p
				r.counts[c] = g.n * (1 - p)
			}
		}
		leaf.children = []*hNode{l, r}
	} else {
		vs := h.attrs[s.attr].NumValues()
		leaf.children = make([]*hNode, vs)
		for v := 0; v < vs; v++ {
			child := newHLeaf(len(h.attrs), numClasses, h.attrs)
			copy(child.counts, leaf.nomCounts[s.attr][v])
			leaf.children[v] = child
		}
	}
	leaf.nomCounts = nil
	leaf.gauss = nil
}

// Classify implements Classifier.
func (h *HoeffdingTree) Classify(vals []float64) int {
	d := h.Distribution(vals)
	best, bestP := 0, d[0]
	for c := 1; c < len(d); c++ {
		if d[c] > bestP {
			best, bestP = c, d[c]
		}
	}
	return best
}

// Distribution implements Classifier. Leaves classify with adaptive
// naive Bayes over their sufficient statistics (Weka/MOA's default
// HoeffdingTree leaf predictor), which is what gives VFDT usable
// accuracy before the Hoeffding bound admits splits.
func (h *HoeffdingTree) Distribution(vals []float64) []float64 {
	cur := h.root
	last := cur
	for !cur.isLeaf() {
		v := vals[cur.attr]
		if IsMissing(v) {
			break
		}
		if h.attrs[cur.attr].Kind == Numeric {
			if v <= cur.threshold {
				cur = cur.children[0]
			} else {
				cur = cur.children[1]
			}
		} else {
			idx := int(v)
			if idx < 0 || idx >= len(cur.children) {
				break
			}
			cur = cur.children[idx]
		}
		if cur.counts != nil {
			last = cur
		}
	}
	src := cur
	if src.counts == nil {
		src = last
	}
	var total float64
	for _, c := range src.counts {
		total += c
	}
	dist := make([]float64, len(h.classes))
	if total == 0 {
		dist[0] = 1
		return dist
	}
	if src.isLeaf() && src.gauss != nil && total >= 10 && src.nbCorrect > src.mcCorrect {
		return h.naiveBayes(src, vals, total)
	}
	for c, w := range src.counts {
		dist[c] = w / total
	}
	return dist
}

// argmax returns the index of the largest value.
func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// naiveBayes scores classes at a leaf: log P(c) + Σ log P(x_a | c)
// with Gaussian likelihoods for numeric attributes and Laplace-
// smoothed frequencies for nominal ones.
func (h *HoeffdingTree) naiveBayes(leaf *hNode, vals []float64, total float64) []float64 {
	numClasses := len(h.classes)
	logp := make([]float64, numClasses)
	maxLog := math.Inf(-1)
	for c := 0; c < numClasses; c++ {
		if leaf.counts[c] == 0 {
			logp[c] = math.Inf(-1)
			continue
		}
		lp := math.Log(leaf.counts[c] / total)
		for a := range h.attrs {
			v := vals[a]
			if IsMissing(v) {
				continue
			}
			if h.attrs[a].Kind == Nominal {
				counts := leaf.nomCounts[a]
				idx := int(v)
				if idx >= 0 && idx < len(counts) {
					k := float64(len(counts))
					lp += math.Log((counts[idx][c] + 1) / (leaf.counts[c] + k))
				}
				continue
			}
			g := &leaf.gauss[a][c]
			if g.n < 2 {
				continue
			}
			sd := g.std()
			if sd <= 0 {
				sd = math.Abs(g.mean)*1e-3 + 1e-9
			}
			z := (v - g.mean) / sd
			lp += -0.5*z*z - math.Log(sd)
		}
		logp[c] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	dist := make([]float64, numClasses)
	var sum float64
	for c, lp := range logp {
		if math.IsInf(lp, -1) {
			continue
		}
		dist[c] = math.Exp(lp - maxLog)
		sum += dist[c]
	}
	if sum == 0 {
		for c, w := range leaf.counts {
			dist[c] = w / total
		}
		return dist
	}
	for c := range dist {
		dist[c] /= sum
	}
	return dist
}

// Size returns the node count.
func (h *HoeffdingTree) Size() int { return hSize(h.root) }

func hSize(n *hNode) int {
	if n.isLeaf() {
		return 1
	}
	s := 1
	for _, c := range n.children {
		if c != nil {
			s += hSize(c)
		}
	}
	return s
}

// HoeffdingLearner adapts HoeffdingTree to the batch Learner interface
// by streaming the dataset once.
type HoeffdingLearner struct{}

// Name implements Learner.
func (HoeffdingLearner) Name() string { return "HoeffdingTree" }

// Fit implements Learner.
func (HoeffdingLearner) Fit(d *Dataset) Classifier {
	h := NewHoeffdingTree(d.Attrs, d.Classes)
	for i := range d.Instances {
		h.Observe(d.Instances[i].Vals, d.Instances[i].Class)
	}
	return h
}
