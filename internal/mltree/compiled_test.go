package mltree

import (
	"math/rand"
	"testing"
)

// predictorDataset synthesizes a dataset shaped like the Predictor's
// memory model: all-numeric features, many classes, enough instances
// that J48 grows a real tree rather than a stump.
func predictorDataset(n, classes int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset([]Attribute{
		{Name: "size", Kind: Numeric},
		{Name: "width", Kind: Numeric},
		{Name: "height", Kind: Numeric},
		{Name: "channels", Kind: Numeric},
		{Name: "quality", Kind: Numeric},
	}, make([]string, classes))
	for c := 0; c < classes; c++ {
		d.Classes[c] = string(rune('a' + c%26))
	}
	for i := 0; i < n; i++ {
		size := rng.Float64() * 1e8
		width := rng.Float64() * 4000
		height := rng.Float64() * 4000
		ch := float64(1 + rng.Intn(4))
		q := rng.Float64() * 100
		class := int(size/1e8*float64(classes)*0.5+width/4000*float64(classes)*0.5) % classes
		d.Add([]float64{size, width, height, ch, q}, class)
	}
	return d
}

// probeVectors builds test vectors covering in-range, out-of-range and
// missing values so every walk edge case (numeric both sides, absent
// nominal branch, missing stop at an internal node) is exercised.
func probeVectors(d *Dataset, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var out [][]float64
	for i := 0; i < n; i++ {
		vals := make([]float64, len(d.Attrs))
		for a := range d.Attrs {
			switch {
			case rng.Float64() < 0.1:
				vals[a] = Missing
			case d.Attrs[a].Kind == Nominal:
				// Occasionally out of range to hit the absent-branch stop.
				vals[a] = float64(rng.Intn(d.Attrs[a].NumValues() + 1))
			default:
				vals[a] = rng.Float64() * 12
			}
		}
		out = append(out, vals)
	}
	for i := range d.Instances {
		out = append(out, d.Instances[i].Vals)
	}
	return out
}

// assertSame checks the compiled tree agrees bit-for-bit with the
// pointer walk on every probe.
func assertSame(t *testing.T, name string, base Classifier, compiled Classifier, probes [][]float64) {
	t.Helper()
	for i, vals := range probes {
		if bc, cc := base.Classify(vals), compiled.Classify(vals); bc != cc {
			t.Fatalf("%s: probe %d Classify: base=%d compiled=%d", name, i, bc, cc)
		}
		bd, cd := base.Distribution(vals), compiled.Distribution(vals)
		if len(bd) != len(cd) {
			t.Fatalf("%s: probe %d distribution lengths differ: %d vs %d", name, i, len(bd), len(cd))
		}
		for c := range bd {
			if bd[c] != cd[c] {
				t.Fatalf("%s: probe %d class %d: base=%v compiled=%v (must be bit-identical)", name, i, c, bd[c], cd[c])
			}
		}
	}
}

func TestCompiledJ48Equivalent(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *Dataset
	}{
		{"nominal", nominalDataset(600, 1)},
		{"numeric128", predictorDataset(800, 128, 2)},
	} {
		tree := NewJ48().Fit(tc.d).(*Tree)
		ct := tree.Compile()
		if ct.Nodes() != tree.Size() {
			t.Errorf("%s: compiled %d nodes, tree has %d", tc.name, ct.Nodes(), tree.Size())
		}
		assertSame(t, "J48/"+tc.name, tree, ct, probeVectors(tc.d, 300, 7))
	}
}

func TestCompiledRandomTreeEquivalent(t *testing.T) {
	d := nominalDataset(500, 3)
	tree := NewRandomTree(11).Fit(d).(*Tree)
	assertSame(t, "RandomTree", tree, tree.Compile(), probeVectors(d, 300, 8))
}

func TestCompiledForestEquivalent(t *testing.T) {
	d := nominalDataset(400, 5)
	f := (&RandomForest{Trees: 15, MinLeaf: 1, Seed: 9}).Fit(d).(*Forest)
	cf := f.Compile()
	probes := probeVectors(d, 200, 10)
	assertSame(t, "Forest", f, cf, probes)
	// The buffered voting path must agree with the allocating one.
	buf := make([]float64, cf.NumClasses())
	for i, vals := range probes {
		if a, b := f.Classify(vals), cf.ClassifyInto(vals, buf); a != b {
			t.Fatalf("probe %d: ClassifyInto=%d want %d", i, b, a)
		}
	}
}

// separableNumericDataset has one strongly class-determining numeric
// attribute, so the Hoeffding bound admits numeric splits quickly.
func separableNumericDataset(n, classes int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset([]Attribute{
		{Name: "size", Kind: Numeric},
		{Name: "noise", Kind: Numeric},
	}, make([]string, classes))
	for c := 0; c < classes; c++ {
		d.Classes[c] = string(rune('a' + c%26))
	}
	for i := 0; i < n; i++ {
		class := rng.Intn(classes)
		size := float64(class)*10 + rng.Float64()*2
		d.Add([]float64{size, rng.Float64()}, class)
	}
	return d
}

func TestCompiledHoeffdingEquivalent(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *Dataset
	}{
		{"nominal", nominalDataset(2000, 12)},
		{"numeric", separableNumericDataset(2000, 4, 13)},
	} {
		h := NewHoeffdingTree(tc.d.Attrs, tc.d.Classes)
		for i := range tc.d.Instances {
			h.Observe(tc.d.Instances[i].Vals, tc.d.Instances[i].Class)
		}
		if h.Size() == 1 {
			t.Fatalf("%s: tree never split; NB and walk paths untested", tc.name)
		}
		assertSame(t, "Hoeffding/"+tc.name, h, h.Compile(), probeVectors(tc.d, 300, 14))
	}
}

// TestCompiledHoeffdingNBLeaf forces the adaptive-NB serving verdict
// on a leaf and checks the flattened sufficient statistics reproduce
// naiveBayes exactly.
func TestCompiledHoeffdingNBLeaf(t *testing.T) {
	d := predictorDataset(400, 4, 21)
	h := NewHoeffdingTree(d.Attrs, d.Classes)
	// Large grace period keeps the root a leaf; all stats accumulate there.
	h.GracePeriod = 1 << 30
	for i := range d.Instances {
		h.Observe(d.Instances[i].Vals, d.Instances[i].Class)
	}
	// Make the prequential NB counter win so Distribution serves NB.
	h.root.nbCorrect = h.root.mcCorrect + 1
	ct := h.Compile()
	if ct.nb == nil {
		t.Fatal("compiled tree has no NB payload despite NB-winning leaf")
	}
	assertSame(t, "Hoeffding/NB", h, ct, probeVectors(d, 300, 22))
}

// TestHoeffdingServingSnapshot checks Serving reuses its snapshot
// until a split changes the structure.
func TestHoeffdingServingSnapshot(t *testing.T) {
	d := nominalDataset(2000, 31)
	h := NewHoeffdingTree(d.Attrs, d.Classes)
	s0 := h.Serving()
	if h.Serving() != s0 {
		t.Error("Serving recompiled without a structural change")
	}
	gen := h.Generation()
	for i := range d.Instances {
		h.Observe(d.Instances[i].Vals, d.Instances[i].Class)
	}
	if h.Generation() == gen {
		t.Fatal("stream never split; snapshot-staleness path untested")
	}
	s1 := h.Serving()
	if s1 == s0 {
		t.Error("Serving kept a stale snapshot across a split")
	}
	if s1.Nodes() != h.Size() {
		t.Errorf("snapshot has %d nodes, live tree %d", s1.Nodes(), h.Size())
	}
	if h.Serving() != s1 {
		t.Error("Serving recompiled with an up-to-date snapshot")
	}
}

// TestCompiledClassifyZeroAlloc is the allocation regression gate for
// the critical path: compiled Classify and DistributionInto must not
// allocate, for trees and forests alike.
func TestCompiledClassifyZeroAlloc(t *testing.T) {
	d := predictorDataset(800, 128, 2)
	tree := NewJ48().Fit(d).(*Tree)
	ct := tree.Compile()
	vals := d.Instances[17].Vals
	if n := testing.AllocsPerRun(200, func() { ct.Classify(vals) }); n != 0 {
		t.Errorf("compiled Tree.Classify allocates %v/op, want 0", n)
	}
	buf := make([]float64, ct.NumClasses())
	if n := testing.AllocsPerRun(200, func() { ct.DistributionInto(vals, buf) }); n != 0 {
		t.Errorf("compiled Tree.DistributionInto allocates %v/op, want 0", n)
	}

	nd := nominalDataset(400, 5)
	cf := (&RandomForest{Trees: 15, MinLeaf: 1, Seed: 9}).Fit(nd).(*Forest).Compile()
	fbuf := make([]float64, cf.NumClasses())
	fvals := nd.Instances[3].Vals
	if n := testing.AllocsPerRun(200, func() { cf.ClassifyInto(fvals, fbuf) }); n != 0 {
		t.Errorf("compiled Forest.ClassifyInto allocates %v/op, want 0", n)
	}

	h := NewHoeffdingTree(nd.Attrs, nd.Classes)
	for i := range nd.Instances {
		h.Observe(nd.Instances[i].Vals, nd.Instances[i].Class)
	}
	ch := h.Compile()
	hbuf := make([]float64, ch.NumClasses())
	if n := testing.AllocsPerRun(200, func() { ch.DistributionInto(fvals, hbuf) }); n != 0 {
		t.Errorf("compiled Hoeffding DistributionInto allocates %v/op, want 0", n)
	}
}
