package mltree

import (
	"fmt"
	"math/rand"
)

// Confusion is a confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Classes []string
	Counts  [][]float64
}

// NewConfusion returns an empty matrix over the given classes.
func NewConfusion(classes []string) *Confusion {
	m := &Confusion{Classes: classes, Counts: make([][]float64, len(classes))}
	for i := range m.Counts {
		m.Counts[i] = make([]float64, len(classes))
	}
	return m
}

// Record adds one (actual, predicted) observation with weight w.
func (m *Confusion) Record(actual, predicted int, w float64) {
	m.Counts[actual][predicted] += w
}

// Total is the summed weight of all observations.
func (m *Confusion) Total() float64 {
	var t float64
	for _, row := range m.Counts {
		for _, c := range row {
			t += c
		}
	}
	return t
}

// Accuracy is the fraction of exact predictions.
func (m *Confusion) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	var ok float64
	for i := range m.Counts {
		ok += m.Counts[i][i]
	}
	return ok / t
}

// EOAccuracy is the paper's "exact-or-over" fraction: predictions whose
// class index is greater than or equal to the true index. It is only
// meaningful for ordered classes (memory intervals).
func (m *Confusion) EOAccuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	var ok float64
	for a := range m.Counts {
		for p := a; p < len(m.Counts[a]); p++ {
			ok += m.Counts[a][p]
		}
	}
	return ok / t
}

// UnderWithinOne is the fraction of *underpredictions* that land
// exactly one interval below the truth — the second maturation
// criterion of §5.3.
func (m *Confusion) UnderWithinOne() float64 {
	var under, withinOne float64
	for a := range m.Counts {
		for p := 0; p < a; p++ {
			under += m.Counts[a][p]
			if p == a-1 {
				withinOne += m.Counts[a][p]
			}
		}
	}
	if under == 0 {
		return 1
	}
	return withinOne / under
}

// Precision returns the precision for class c.
func (m *Confusion) Precision(c int) float64 {
	var predicted float64
	for a := range m.Counts {
		predicted += m.Counts[a][c]
	}
	if predicted == 0 {
		return 0
	}
	return m.Counts[c][c] / predicted
}

// Recall returns the recall for class c.
func (m *Confusion) Recall(c int) float64 {
	var actual float64
	for _, v := range m.Counts[c] {
		actual += v
	}
	if actual == 0 {
		return 0
	}
	return m.Counts[c][c] / actual
}

// F1 returns the F-measure for class c.
func (m *Confusion) F1(c int) float64 {
	p, r := m.Precision(c), m.Recall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ErrorHistogram returns, for every (actual, predicted) pair, the
// signed class-index difference predicted-actual and its weight — the
// raw material of the paper's Figure 5 once scaled by the interval
// size.
func (m *Confusion) ErrorHistogram() map[int]float64 {
	h := make(map[int]float64)
	for a := range m.Counts {
		for p, w := range m.Counts[a] {
			if w > 0 {
				h[p-a] += w
			}
		}
	}
	return h
}

// String renders summary statistics.
func (m *Confusion) String() string {
	return fmt.Sprintf("Confusion{n=%.0f acc=%.4f eo=%.4f}", m.Total(), m.Accuracy(), m.EOAccuracy())
}

// CrossValidate runs k-fold cross-validation of learner on d and
// returns the pooled confusion matrix. Folds are stratified per class
// so small classes appear in every fold, matching Weka's evaluator.
func CrossValidate(learner Learner, d *Dataset, k int, seed int64) *Confusion {
	if k < 2 {
		panic("mltree: k-fold requires k >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	// Stratify: group instance indices by class, shuffle, deal round-robin.
	byClass := make([][]int, len(d.Classes))
	for i := range d.Instances {
		c := d.Instances[i].Class
		byClass[c] = append(byClass[c], i)
	}
	folds := make([][]int, k)
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for j, idx := range idxs {
			folds[j%k] = append(folds[j%k], idx)
		}
	}
	conf := NewConfusion(d.Classes)
	inFold := make([]int, len(d.Instances))
	for f, fold := range folds {
		for _, idx := range fold {
			inFold[idx] = f
		}
	}
	for f := 0; f < k; f++ {
		var train []Instance
		for i := range d.Instances {
			if inFold[i] != f {
				train = append(train, d.Instances[i])
			}
		}
		if len(train) == 0 {
			continue
		}
		model := learner.Fit(d.Subset(train))
		for _, idx := range folds[f] {
			inst := &d.Instances[idx]
			conf.Record(inst.Class, model.Classify(inst.Vals), inst.Weight)
		}
	}
	return conf
}

// Evaluate classifies every instance of test with model and returns the
// confusion matrix.
func Evaluate(model Classifier, test *Dataset) *Confusion {
	conf := NewConfusion(test.Classes)
	for i := range test.Instances {
		inst := &test.Instances[i]
		conf.Record(inst.Class, model.Classify(inst.Vals), inst.Weight)
	}
	return conf
}
