package kvstore

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ofc/internal/chaos"
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// Linearizability of a single key under concurrent readers/writers
// (§6.2: "strong consistency is enforced by RAMCloud ... linearizable
// semantics for failure-free scenarios").
//
// With unique write versions, a register history is linearizable iff
// versions respect real time: whenever operation A completes before
// operation B starts, B must not observe (or install) a version older
// than the one A observed/installed.

type regOp struct {
	start, end sim.Time
	version    uint64
	isWrite    bool
}

func TestPropertyLinearizableRegister(t *testing.T) {
	f := func(seed int64, nOps8 uint8) bool {
		nClients := 4
		nOps := int(nOps8%6) + 2
		env := sim.NewEnv(seed)
		c, _ := testCluster(env)
		var mu sync.Mutex
		var history []regOp
		var setup sync.WaitGroup
		setup.Add(1)
		env.Go(func() {
			defer setup.Done()
			if _, err := c.Write(0, "reg", Synthetic(64), nil, 1); err != nil {
				t.Fatal(err)
			}
			for cl := 0; cl < nClients; cl++ {
				node := simnet.NodeID(cl % 4)
				rng := env.NewRand()
				env.Go(func() {
					for i := 0; i < nOps; i++ {
						env.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
						start := env.Now()
						if rng.Intn(2) == 0 {
							ver, err := c.Write(node, "reg", Synthetic(64), nil, 1)
							if err != nil {
								continue
							}
							mu.Lock()
							history = append(history, regOp{start: start, end: env.Now(), version: ver, isWrite: true})
							mu.Unlock()
						} else {
							_, meta, err := c.Read(node, "reg")
							if err != nil {
								continue
							}
							mu.Lock()
							history = append(history, regOp{start: start, end: env.Now(), version: meta.Version})
							mu.Unlock()
						}
					}
				})
			}
		})
		env.Run()

		// Check: real-time order implies version order.
		sort.Slice(history, func(i, j int) bool { return history[i].end < history[j].end })
		ok := true
		for i, a := range history {
			for _, b := range history[i+1:] {
				if a.end < b.start && b.version < a.version {
					ok = false
				}
			}
		}
		// Every read version was installed by some write (or the setup
		// write).
		written := map[uint64]bool{}
		for _, op := range history {
			if op.isWrite {
				written[op.version] = true
			}
		}
		for _, op := range history {
			if !op.isWrite && !written[op.version] {
				// The setup write's version is the only other source.
				if op.version == 0 {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The same register property under a seeded random crash/restart
// schedule: acknowledged operations must stay linearizable even while
// nodes fail and recover. Operations that error (the register's master
// was down) simply don't enter the history — they were never
// acknowledged.
func TestPropertyLinearizableUnderCrashes(t *testing.T) {
	f := func(seed int64, nOps8 uint8) bool {
		nClients := 4
		nOps := int(nOps8%6) + 4
		env := sim.NewEnv(seed)
		c, net := testCluster(env)

		// Random but seed-determined schedule: 2–3 crash/restart pairs
		// across the run, any node fair game.
		srng := rand.New(rand.NewSource(seed))
		sched := chaos.NewSchedule()
		nFaults := srng.Intn(2) + 2
		for i := 0; i < nFaults; i++ {
			victim := simnet.NodeID(srng.Intn(4))
			at := time.Duration(srng.Intn(8000)+500) * time.Microsecond
			down := time.Duration(srng.Intn(2000)+500) * time.Microsecond
			sched.CrashAt(at, victim).RestartAt(at+down, victim)
		}
		inj := chaos.NewInjector(net, sched, seed)
		inj.OnCrash = func(n simnet.NodeID) {
			c.Crash(n)
			env.Go(func() { c.RecoverNode(n) })
		}
		inj.OnRestart = func(n simnet.NodeID) { c.Restart(n) }
		inj.Start()

		var mu sync.Mutex
		var history []regOp
		env.Go(func() {
			if _, err := c.Write(0, "reg", Synthetic(64), nil, 1); err != nil {
				t.Fatal(err)
			}
			for cl := 0; cl < nClients; cl++ {
				node := simnet.NodeID(cl % 4)
				rng := env.NewRand()
				env.Go(func() {
					for i := 0; i < nOps; i++ {
						env.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
						start := env.Now()
						if rng.Intn(2) == 0 {
							ver, err := c.Write(node, "reg", Synthetic(64), nil, 1)
							if err != nil {
								continue
							}
							mu.Lock()
							history = append(history, regOp{start: start, end: env.Now(), version: ver, isWrite: true})
							mu.Unlock()
						} else {
							_, meta, err := c.Read(node, "reg")
							if err != nil {
								continue
							}
							mu.Lock()
							history = append(history, regOp{start: start, end: env.Now(), version: meta.Version})
							mu.Unlock()
						}
					}
				})
			}
		})
		env.Run()

		// Real-time order implies version order, crashes or not.
		sort.Slice(history, func(i, j int) bool { return history[i].end < history[j].end })
		for i, a := range history {
			for _, b := range history[i+1:] {
				if a.end < b.start && b.version < a.version {
					t.Logf("seed=%d: op ending %v saw v%d, later op saw v%d", seed, a.end, a.version, b.version)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
