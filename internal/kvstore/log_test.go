package kvstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ofc/internal/sim"
)

func mkObj(size int64) *object {
	return &object{blob: Synthetic(size), meta: Meta{Size: size}}
}

func TestLogPutGetDelete(t *testing.T) {
	l := newObjLog(16 << 20)
	if delta := l.put("a", mkObj(1000)); delta != 1000 {
		t.Errorf("delta=%d", delta)
	}
	o, ok := l.get("a")
	if !ok || o.meta.Size != 1000 {
		t.Fatalf("get: %v %v", o, ok)
	}
	if l.live != 1000 {
		t.Errorf("live=%d", l.live)
	}
	freed, ok := l.delete("a")
	if !ok || freed != 1000 {
		t.Errorf("delete: %d %v", freed, ok)
	}
	if _, ok := l.get("a"); ok {
		t.Error("get after delete")
	}
	if l.live != 0 {
		t.Errorf("live=%d after delete", l.live)
	}
	// Dead bytes remain allocated until cleaning.
	if l.alloc != 1000 {
		t.Errorf("alloc=%d, want 1000 (tombstoned, not reclaimed)", l.alloc)
	}
}

func TestLogOverwriteLeavesDeadBytes(t *testing.T) {
	l := newObjLog(16 << 20)
	l.put("k", mkObj(5000))
	if delta := l.put("k", mkObj(3000)); delta != -2000 {
		t.Errorf("overwrite delta=%d, want -2000", delta)
	}
	if l.live != 3000 {
		t.Errorf("live=%d", l.live)
	}
	if l.alloc != 8000 {
		t.Errorf("alloc=%d, want 8000 (old version still allocated)", l.alloc)
	}
	if u := l.utilization(); u < 0.37 || u > 0.38 {
		t.Errorf("utilization=%v, want 3/8", u)
	}
}

func TestLogRollsSegments(t *testing.T) {
	l := newObjLog(10_000)
	for i := 0; i < 5; i++ {
		l.put(fmt.Sprintf("k%d", i), mkObj(4000))
	}
	if len(l.segs) < 2 {
		t.Errorf("segments=%d, expected rolling", len(l.segs))
	}
}

func TestLogCleanCompacts(t *testing.T) {
	l := newObjLog(10_000)
	// Write 10 objects, overwrite them all: ~half the log is dead.
	for round := 0; round < 2; round++ {
		for i := 0; i < 10; i++ {
			l.put(fmt.Sprintf("k%d", i), mkObj(4000))
		}
	}
	if l.alloc <= l.live {
		t.Fatalf("alloc=%d live=%d: no dead bytes?", l.alloc, l.live)
	}
	moved := l.clean(l.live + 10_000)
	if moved < 0 {
		t.Fatal("negative moved")
	}
	if l.alloc > l.live+2*10_000 {
		t.Errorf("alloc=%d live=%d after clean", l.alloc, l.live)
	}
	// Every object survives with its latest version.
	for i := 0; i < 10; i++ {
		o, ok := l.get(fmt.Sprintf("k%d", i))
		if !ok || o.meta.Size != 4000 {
			t.Fatalf("k%d lost after clean", i)
		}
	}
	if l.cleaned == 0 {
		t.Error("no cleanings recorded")
	}
}

// Property: after an arbitrary sequence of puts/deletes (and periodic
// cleans), the log's contents match a model map, live bytes equal the
// model's total, and alloc ≥ live.
func TestPropertyLogMatchesModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := newObjLog(8 << 10)
		model := map[string]int64{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%7)
			switch op % 3 {
			case 0, 1:
				size := int64(rng.Intn(4000) + 1)
				l.put(key, mkObj(size))
				model[key] = size
			case 2:
				l.delete(key)
				delete(model, key)
			}
			if rng.Intn(8) == 0 {
				l.clean(l.live)
			}
		}
		var total int64
		for k, size := range model {
			o, ok := l.get(k)
			if !ok || o.meta.Size != size {
				return false
			}
			total += size
		}
		if l.live != total {
			return false
		}
		if l.alloc < l.live {
			return false
		}
		// No extra keys.
		count := 0
		l.each(func(string, *object) { count++ })
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWritePathCleansUnderPressure(t *testing.T) {
	// A server near its limit with many dead bytes compacts on write
	// instead of rejecting.
	run(t, func(env *sim.Env, c *Cluster) {
		c.SetMemoryLimit(1, 8<<20)
		// Overwrite the same key repeatedly: live stays 1 MB while the
		// log accumulates dead versions well past the 8 MB limit.
		for i := 0; i < 20; i++ {
			if _, err := c.Write(1, "hot", Synthetic(1<<20), nil, 1); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		s := c.Server(1)
		alloc, live, cleanings, _ := s.LogStats()
		if live != 1<<20 {
			t.Errorf("live=%d", live)
		}
		if alloc > 8<<20 {
			t.Errorf("alloc=%d exceeds the limit; cleaner idle", alloc)
		}
		if cleanings == 0 {
			t.Error("cleaner never ran")
		}
	})
}
