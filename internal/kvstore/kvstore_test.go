package kvstore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// testCluster builds a 4-node cluster: node 0 runs the coordinator,
// nodes 0..3 each run a storage server with a 1 GB budget.
func testCluster(env *sim.Env) (*Cluster, *simnet.Network) {
	net := simnet.New(env, simnet.DefaultConfig())
	for i := 0; i < 4; i++ {
		net.AddNode("n")
	}
	c := New(net, 0, DefaultConfig())
	for i := 0; i < 4; i++ {
		c.AddServer(simnet.NodeID(i), 1<<30)
	}
	return c, net
}

func run(t *testing.T, body func(env *sim.Env, c *Cluster)) {
	t.Helper()
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	env.Go(func() { body(env, c) })
	env.Run()
}

func TestWriteReadRoundTrip(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		payload := []byte("hello ramcloud")
		ver, err := c.Write(1, "obj/a", Bytes(payload), map[string]string{"kind": "input"}, 1)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		if ver == 0 {
			t.Error("version 0")
		}
		blob, meta, err := c.Read(2, "obj/a")
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(blob.Data, payload) {
			t.Errorf("payload mismatch")
		}
		if meta.Version != ver || meta.Size != int64(len(payload)) {
			t.Errorf("meta=%+v", meta)
		}
		if meta.Tags["kind"] != "input" {
			t.Errorf("tags=%v", meta.Tags)
		}
	})
}

func TestPreferredPlacement(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		if _, err := c.Write(2, "k", Synthetic(1<<20), nil, 2); err != nil {
			t.Fatal(err)
		}
		m, ok := c.MasterOf("k")
		if !ok || m != 2 {
			t.Errorf("master=%v ok=%v, want node 2", m, ok)
		}
	})
}

func TestVersionsIncrease(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		v1, _ := c.Write(1, "k", Synthetic(100), nil, 1)
		v2, _ := c.Write(1, "k", Synthetic(200), nil, 1)
		if v2 <= v1 {
			t.Errorf("v2=%d <= v1=%d", v2, v1)
		}
		_, meta, _ := c.Read(1, "k")
		if meta.Size != 200 || meta.Version != v2 {
			t.Errorf("meta=%+v", meta)
		}
	})
}

func TestReadUpdatesAccessStats(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		c.Write(1, "k", Synthetic(10), nil, 1)
		for i := 0; i < 3; i++ {
			env.Sleep(time.Second)
			c.Read(2, "k")
		}
		_, meta, _ := c.Read(2, "k")
		if meta.NAccess != 4 {
			t.Errorf("naccess=%d, want 4", meta.NAccess)
		}
		if meta.LastAccess == 0 {
			t.Error("lastAccess not set")
		}
	})
}

func TestNotFound(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		if _, _, err := c.Read(1, "missing"); !errors.Is(err, ErrNotFound) {
			t.Errorf("err=%v", err)
		}
		if err := c.Delete(1, "missing"); !errors.Is(err, ErrNotFound) {
			t.Errorf("delete err=%v", err)
		}
	})
}

func TestTooLarge(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		if _, err := c.Write(1, "big", Synthetic(11<<20), nil, 1); !errors.Is(err, ErrTooLarge) {
			t.Errorf("err=%v", err)
		}
	})
}

func TestNoSpace(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		// Shrink every node and fill each, so placement cannot fall
		// back anywhere; then the next write must fail.
		for i := simnet.NodeID(0); i < 4; i++ {
			c.SetMemoryLimit(i, 1<<20)
		}
		for i := simnet.NodeID(0); i < 4; i++ {
			key := "fill" + string(rune('0'+i))
			if _, err := c.Write(1, key, Synthetic(900<<10), nil, i); err != nil {
				t.Fatalf("fill write %d: %v", i, err)
			}
		}
		if _, err := c.Write(1, "b", Synthetic(900<<10), nil, 1); !errors.Is(err, ErrNoSpace) {
			t.Errorf("err=%v, want ErrNoSpace", err)
		}
	})
}

func TestDeleteFreesMemory(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		c.Write(1, "k", Synthetic(5<<20), nil, 1)
		used, _ := c.Server(1).Usage()
		if used != 5<<20 {
			t.Fatalf("used=%d", used)
		}
		if err := c.Delete(1, "k"); err != nil {
			t.Fatal(err)
		}
		used, _ = c.Server(1).Usage()
		if used != 0 {
			t.Errorf("used=%d after delete", used)
		}
		if _, _, err := c.Read(1, "k"); !errors.Is(err, ErrNotFound) {
			t.Errorf("read after delete: %v", err)
		}
	})
}

func TestEvict(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		c.Write(1, "k", Synthetic(1<<20), nil, 1)
		if err := c.Evict("k"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Read(1, "k"); !errors.Is(err, ErrNotFound) {
			t.Errorf("read after evict: %v", err)
		}
		used, _ := c.Server(1).Usage()
		if used != 0 {
			t.Errorf("used=%d", used)
		}
	})
}

func TestReplicationPlacesBackups(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		c.Write(1, "k", Synthetic(1<<20), nil, 1)
		replicas := 0
		for i := simnet.NodeID(0); i < 4; i++ {
			s := c.Server(i)
			s.mu.Lock()
			if _, ok := s.backups["k"]; ok {
				replicas++
				if i == 1 {
					t.Error("master also holds a backup replica")
				}
			}
			s.mu.Unlock()
		}
		if replicas != 2 {
			t.Errorf("replicas=%d, want 2", replicas)
		}
	})
}

func TestMigrateToBackupNoTransfer(t *testing.T) {
	env := sim.NewEnv(1)
	c, net := testCluster(env)
	env.Go(func() {
		c.Write(1, "k", Synthetic(8<<20), nil, 1)
		sentBefore, _, _, _ := net.Node(1).Stats()
		start := env.Now()
		if err := c.MigrateToBackup("k"); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		took := env.Now() - start
		sentAfter, _, _, _ := net.Node(1).Stats()
		if sentAfter-sentBefore > 1024 {
			t.Errorf("old master sent %d payload bytes during promotion", sentAfter-sentBefore)
		}
		m, _ := c.MasterOf("k")
		if m == 1 {
			t.Error("master did not move")
		}
		// Paper: ~0.18 ms for 8 MB.
		if took > 500*time.Microsecond {
			t.Errorf("promotion of 8MB took %v", took)
		}
		// Object still readable, same contents metadata.
		_, meta, err := c.Read(2, "k")
		if err != nil || meta.Size != 8<<20 {
			t.Errorf("read after migration: %v %+v", err, meta)
		}
		// Replication factor preserved: old master now holds a backup.
		s := c.Server(1)
		s.mu.Lock()
		_, demoted := s.backups["k"]
		s.mu.Unlock()
		if !demoted {
			t.Error("old master lost its replica role")
		}
	})
	env.Run()
}

func TestMigrateFullTransfersPayload(t *testing.T) {
	env := sim.NewEnv(1)
	c, net := testCluster(env)
	env.Go(func() {
		c.Write(1, "k", Synthetic(8<<20), nil, 1)
		sentBefore, _, _, _ := net.Node(1).Stats()
		if err := c.MigrateFull("k", 3); err != nil {
			t.Fatalf("migrate full: %v", err)
		}
		sentAfter, _, _, _ := net.Node(1).Stats()
		if sentAfter-sentBefore < 8<<20 {
			t.Errorf("full migration moved only %d bytes", sentAfter-sentBefore)
		}
		m, _ := c.MasterOf("k")
		if m != 3 {
			t.Errorf("master=%d, want 3", m)
		}
	})
	env.Run()
}

func TestPromotionTimeMatchesPaper(t *testing.T) {
	// The paper's §7.2.1 migration times are aggregates moved as
	// (max 10 MB) objects; model the aggregate as N promotions of
	// 8 MB objects, as the MigrationSeries experiment does.
	c := New(nil, 0, DefaultConfig())
	cases := []struct {
		mb   int64
		want time.Duration
		tol  time.Duration
	}{
		{8, 180 * time.Microsecond, 100 * time.Microsecond},
		{64, 1200 * time.Microsecond, 400 * time.Microsecond},
		{256, 3800 * time.Microsecond, 800 * time.Microsecond},
		{512, 7500 * time.Microsecond, 1500 * time.Microsecond},
		{1024, 13500 * time.Microsecond, 2000 * time.Microsecond},
	}
	for _, tc := range cases {
		n := tc.mb / 8
		got := time.Duration(n) * c.promotionTime(8<<20)
		diff := got - tc.want
		if diff < 0 {
			diff = -diff
		}
		if diff > tc.tol {
			t.Errorf("promotion of %dMB as 8MB objects=%v, paper %v (tol %v)", tc.mb, got, tc.want, tc.tol)
		}
	}
}

func TestCrashRecovery(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		for i := 0; i < 5; i++ {
			key := string(rune('a' + i))
			if _, err := c.Write(1, key, Synthetic(1<<20), nil, 1); err != nil {
				t.Fatal(err)
			}
		}
		c.Crash(1)
		if _, _, err := c.Read(2, "a"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("read from crashed master: %v", err)
		}
		n := c.RecoverNode(1)
		if n != 5 {
			t.Errorf("recovered %d objects, want 5", n)
		}
		for i := 0; i < 5; i++ {
			key := string(rune('a' + i))
			_, meta, err := c.Read(2, key)
			if err != nil {
				t.Errorf("read %q after recovery: %v", key, err)
			}
			if meta.Size != 1<<20 {
				t.Errorf("size=%d", meta.Size)
			}
			if m, _ := c.MasterOf(key); m == 1 {
				t.Errorf("%q still mastered on crashed node", key)
			}
		}
	})
}

func TestSetMemoryLimitAndUsage(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		c.Write(1, "k", Synthetic(3<<20), nil, 1)
		c.SetMemoryLimit(1, 2<<20) // below usage: nothing evicted by itself
		used, limit := c.Server(1).Usage()
		if used != 3<<20 || limit != 2<<20 {
			t.Errorf("used=%d limit=%d", used, limit)
		}
		if _, _, err := c.Read(2, "k"); err != nil {
			t.Errorf("object evicted by SetMemoryLimit: %v", err)
		}
	})
}

func TestObjectsSnapshot(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		c.Write(1, "x", Synthetic(100), map[string]string{"kind": "output"}, 1)
		c.Write(1, "y", Synthetic(200), nil, 1)
		objs := c.Objects(1)
		if len(objs) != 2 {
			t.Fatalf("objects=%d", len(objs))
		}
		for _, o := range objs {
			if o.Key == "x" && o.Meta.Tags["kind"] != "output" {
				t.Errorf("tags lost: %+v", o.Meta)
			}
		}
	})
}

func TestSetTag(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		c.Write(1, "k", Synthetic(10), nil, 1)
		if err := c.SetTag(1, "k", "dirty", "1"); err != nil {
			t.Fatal(err)
		}
		m, err := c.Stat(1, "k")
		if err != nil || m.Tags["dirty"] != "1" {
			t.Errorf("stat=%+v err=%v", m, err)
		}
	})
}

func TestWriteLatencyScalesWithSize(t *testing.T) {
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	var small, large time.Duration
	env.Go(func() {
		start := env.Now()
		c.Write(1, "s", Synthetic(1<<10), nil, 2) // remote master
		small = env.Now() - start
		start = env.Now()
		c.Write(1, "l", Synthetic(10<<20), nil, 2)
		large = env.Now() - start
	})
	env.Run()
	if small >= large {
		t.Errorf("small=%v >= large=%v", small, large)
	}
	if small > 2*time.Millisecond {
		t.Errorf("1kB durable write took %v; RAMCloud-class stores are sub-ms", small)
	}
}

// Property: any interleaved sequence of writes to distinct keys keeps
// the books balanced — server usage equals the sum of master-copy
// sizes, and every written object is readable with its latest size.
func TestPropertyUsageAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		env := sim.NewEnv(9)
		c, _ := testCluster(env)
		okAll := true
		env.Go(func() {
			want := map[string]int64{}
			for i, s := range sizes {
				key := string(rune('a' + i%8)) // overwrite some keys
				size := int64(s) + 1
				if _, err := c.Write(1, key, Synthetic(size), nil, simnet.NodeID(i%4)); err != nil {
					okAll = false
					return
				}
				want[key] = size
			}
			var total int64
			for _, sz := range want {
				total += sz
			}
			var used int64
			for i := simnet.NodeID(0); i < 4; i++ {
				u, _ := c.Server(i).Usage()
				used += u
			}
			if used != total {
				okAll = false
				return
			}
			for key, sz := range want {
				_, meta, err := c.Read(2, key)
				if err != nil || meta.Size != sz {
					okAll = false
					return
				}
			}
		})
		env.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: per-key version numbers observed by sequential reads are
// monotonically non-decreasing (single-master linearizable reads).
func TestPropertyMonotonicVersions(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%16) + 2
		env := sim.NewEnv(11)
		c, _ := testCluster(env)
		ok := true
		env.Go(func() {
			var last uint64
			for i := 0; i < n; i++ {
				if _, err := c.Write(1, "k", Synthetic(int64(i)+1), nil, 1); err != nil {
					ok = false
					return
				}
				_, meta, err := c.Read(2, "k")
				if err != nil || meta.Version < last {
					ok = false
					return
				}
				last = meta.Version
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentWritersDistinctKeys(t *testing.T) {
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	wg := sim.NewWaitGroup(env)
	errs := make([]error, 20)
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			key := "k" + string(rune('a'+i))
			_, errs[i] = c.Write(simnet.NodeID(i%4), key, Synthetic(1<<16), nil, simnet.NodeID(i%4))
		})
	}
	env.Go(func() {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}
		if c.TotalUsed() != 20*(1<<16) {
			t.Errorf("total used=%d", c.TotalUsed())
		}
	})
	env.Run()
}

func TestRecoveryImpossibleWhenBackupsCrashed(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		if _, err := c.Write(1, "k", Synthetic(1<<20), nil, 1); err != nil {
			t.Fatal(err)
		}
		// Crash the master and every backup holder.
		for i := simnet.NodeID(0); i < 4; i++ {
			c.Crash(i)
		}
		if n := c.RecoverNode(1); n != 0 {
			t.Errorf("recovered %d objects with all replicas down", n)
		}
	})
}

func TestMigrateToBackupNeedsRoomAtDest(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		c.Write(1, "k", Synthetic(8<<20), nil, 1)
		// No backup node has master memory to take the object over.
		for i := simnet.NodeID(0); i < 4; i++ {
			if i != 1 {
				c.SetMemoryLimit(i, 0)
			}
		}
		if err := c.MigrateToBackup("k"); !errors.Is(err, ErrNotEnoughSrvs) {
			t.Errorf("err=%v, want ErrNotEnoughSrvs", err)
		}
	})
}

func TestPromotionFromDiskAfterFlush(t *testing.T) {
	// When a backup's buffers are lost (machine restart), promotion
	// still works from the disk copies but pays the disk read.
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	env.Go(func() {
		c.Write(1, "k", Synthetic(8<<20), nil, 1)
		env.Sleep(time.Second) // let the async flush reach disk
		// Bounce every backup holder: buffers gone, disk kept.
		for i := simnet.NodeID(0); i < 4; i++ {
			if i == 1 {
				continue // keep the master
			}
			c.Crash(i)
			c.Restart(i)
		}
		start := env.Now()
		if err := c.MigrateToBackup("k"); err != nil {
			t.Fatalf("migrate from disk: %v", err)
		}
		took := env.Now() - start
		// Disk reload of 8 MB at 500 MB/s ≈ 16 ms ≫ the buffered
		// promotion's ~0.14 ms.
		if took < 10*time.Millisecond {
			t.Errorf("disk-path promotion took %v, expected disk-read cost", took)
		}
		if _, _, err := c.Read(2, "k"); err != nil {
			t.Errorf("read after disk promotion: %v", err)
		}
	})
	env.Run()
}

func TestRestartLosesBufferKeepsDisk(t *testing.T) {
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	env.Go(func() {
		c.Write(1, "k", Synthetic(2<<20), nil, 1)
		env.Sleep(time.Second) // flush
		// Find a backup holder and bounce it.
		var holder simnet.NodeID = -1
		for i := simnet.NodeID(0); i < 4; i++ {
			s := c.Server(i)
			s.mu.Lock()
			if _, ok := s.disk["k"]; ok {
				holder = i
			}
			s.mu.Unlock()
		}
		if holder < 0 {
			t.Fatal("no disk replica found")
		}
		c.Crash(holder)
		c.Restart(holder)
		s := c.Server(holder)
		s.mu.Lock()
		_, buffered := s.backups["k"]
		_, onDisk := s.disk["k"]
		s.mu.Unlock()
		if buffered {
			t.Error("buffer survived the restart")
		}
		if !onDisk {
			t.Error("disk copy lost in restart")
		}
		// The restarted node can still be a recovery source: crash the
		// master and recover.
		c.Crash(1)
		if n := c.RecoverNode(1); n != 1 {
			t.Errorf("recovered %d, want 1", n)
		}
		if _, _, err := c.Read(2, "k"); err != nil {
			t.Errorf("read after recovery from restarted node: %v", err)
		}
	})
	env.Run()
}
