package kvstore

// Log-structured memory, the storage engine RAMCloud builds masters on:
// objects are only ever appended to the head segment; overwrites and
// deletes leave dead entries behind; a cleaner compacts low-utilization
// segments by relocating their live entries to the head and freeing
// the segment. Memory is accounted two ways: live bytes (the sum of
// current object sizes, what eviction policies reason about) and
// allocated bytes (segment memory actually held, what the cleaner
// bounds).

// segment is one append-only arena.
type segment struct {
	id      int
	entries []logEntry
	// appended is the byte volume ever written into the segment;
	// live is the portion still current.
	appended int64
	live     int64
}

// logEntry is one record: an object version or a tombstone.
type logEntry struct {
	key  string
	obj  *object // nil for tombstones
	size int64
	dead bool
}

// entryRef locates an object's current entry.
type entryRef struct {
	seg *segment
	idx int
}

// objLog is the per-master log-structured store.
type objLog struct {
	segCap  int64
	nextID  int
	head    *segment
	segs    map[int]*segment
	index   map[string]entryRef
	live    int64
	alloc   int64
	cleaned int64 // cleanings performed
	moved   int64 // bytes relocated by the cleaner
}

// newObjLog returns an empty log with the given segment capacity.
func newObjLog(segCap int64) *objLog {
	l := &objLog{segCap: segCap, segs: make(map[int]*segment), index: make(map[string]entryRef)}
	l.roll()
	return l
}

// roll opens a fresh head segment.
func (l *objLog) roll() {
	s := &segment{id: l.nextID}
	l.nextID++
	l.segs[s.id] = s
	l.head = s
}

// appendEntry adds a record to the head, rolling when full.
func (l *objLog) appendEntry(e logEntry) entryRef {
	if l.head.appended+e.size > l.segCap && l.head.appended > 0 {
		l.roll()
	}
	l.head.entries = append(l.head.entries, e)
	l.head.appended += e.size
	l.alloc += e.size
	if !e.dead {
		l.head.live += e.size
	}
	return entryRef{seg: l.head, idx: len(l.head.entries) - 1}
}

// killEntry marks a located entry dead and adjusts accounting.
func (l *objLog) killEntry(ref entryRef) {
	e := &ref.seg.entries[ref.idx]
	if e.dead {
		return
	}
	e.dead = true
	ref.seg.live -= e.size
}

// put stores (or overwrites) an object; returns the live-byte delta.
func (l *objLog) put(key string, obj *object) int64 {
	var delta int64 = obj.meta.Size
	if old, ok := l.index[key]; ok {
		delta -= old.seg.entries[old.idx].size
		l.killEntry(old)
		l.live -= old.seg.entries[old.idx].size
	}
	ref := l.appendEntry(logEntry{key: key, obj: obj, size: obj.meta.Size})
	l.index[key] = ref
	l.live += obj.meta.Size
	return delta
}

// get returns the current object for key.
func (l *objLog) get(key string) (*object, bool) {
	ref, ok := l.index[key]
	if !ok {
		return nil, false
	}
	return ref.seg.entries[ref.idx].obj, true
}

// delete removes key (appending a zero-size tombstone, as RAMCloud
// does so deletes survive crashes); returns the freed live bytes.
func (l *objLog) delete(key string) (int64, bool) {
	ref, ok := l.index[key]
	if !ok {
		return 0, false
	}
	size := ref.seg.entries[ref.idx].size
	l.killEntry(ref)
	l.live -= size
	delete(l.index, key)
	l.appendEntry(logEntry{key: key, size: 0, dead: true})
	return size, true
}

// each visits every live object.
func (l *objLog) each(fn func(key string, obj *object)) {
	for key, ref := range l.index {
		fn(key, ref.seg.entries[ref.idx].obj)
	}
}

// utilization is live/allocated (1 when empty).
func (l *objLog) utilization() float64 {
	if l.alloc == 0 {
		return 1
	}
	return float64(l.live) / float64(l.alloc)
}

// clean compacts segments until allocated ≤ target (or no progress is
// possible): lowest-utilization closed segments first, live entries
// relocated to the head. Returns the bytes relocated, which the caller
// charges as memory-copy time.
func (l *objLog) clean(target int64) int64 {
	var movedTotal int64
	for l.alloc > target {
		// Pick the closed segment with the lowest utilization.
		var victim *segment
		for _, s := range l.segs {
			if s == l.head {
				continue
			}
			if victim == nil || segUtil(s) < segUtil(victim) {
				victim = s
			}
		}
		if victim == nil {
			break
		}
		if segUtil(victim) >= 0.98 && l.alloc-victim.appended < target {
			// Only nearly-full-live segments remain: compaction cannot
			// reclaim meaningfully.
			break
		}
		// Relocate live entries to the head.
		for idx := range victim.entries {
			e := &victim.entries[idx]
			if e.dead || e.obj == nil {
				continue
			}
			ref := l.appendEntry(logEntry{key: e.key, obj: e.obj, size: e.size})
			l.index[e.key] = ref
			movedTotal += e.size
		}
		l.alloc -= victim.appended
		delete(l.segs, victim.id)
		l.cleaned++
	}
	l.moved += movedTotal
	return movedTotal
}

func segUtil(s *segment) float64 {
	if s.appended == 0 {
		return 0
	}
	return float64(s.live) / float64(s.appended)
}
