package kvstore

import (
	"fmt"
	"testing"

	"ofc/internal/sim"
)

// BenchmarkClusterWrite measures the host cost of a replicated durable
// write through the simulated fabric.
func BenchmarkClusterWrite(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(1, fmt.Sprintf("k%d", i%1024), Synthetic(64<<10), nil, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkClusterRead measures the host cost of a cache read.
func BenchmarkClusterRead(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	env.Go(func() {
		c.Write(1, "k", Synthetic(64<<10), nil, 1)
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Read(1, "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkLogPut measures the raw log-structured engine.
func BenchmarkLogPut(b *testing.B) {
	b.ReportAllocs()
	l := newObjLog(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.put(fmt.Sprintf("k%d", i%512), mkObj(64<<10))
		if l.alloc > 1<<30 {
			l.clean(l.live)
		}
	}
}

// BenchmarkMigrateToBackup measures the promotion path.
func BenchmarkMigrateToBackup(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	env.Go(func() {
		c.Write(1, "k", Synthetic(8<<20), nil, 1)
		for i := 0; i < b.N; i++ {
			if err := c.MigrateToBackup("k"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ResetTimer()
	env.Run()
}
