package kvstore

// Batched multi-object operations. ReadMulti and WriteMulti group the
// requested keys by the master server that owns them and exchange ONE
// control round-trip with each involved server (plus a single
// coordinator lookup for the whole batch), instead of one per key.
// Chunked reads/writes and persistor write-backs go through these
// paths, which is where the per-key control overhead used to dominate.

import (
	"sync"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// ReadResult is the outcome of one key of a ReadMulti.
type ReadResult struct {
	Blob Blob
	Meta Meta
	Err  error
}

// WriteItem is one object of a WriteMulti batch.
type WriteItem struct {
	Key  string
	Blob Blob
	Tags map[string]string
}

// WriteResult is the outcome of one item of a WriteMulti.
type WriteResult struct {
	Version uint64
	Err     error
}

// idxGroup is one master's share of a batch: the batch indices it owns.
// Batches touch a handful of servers (six nodes in the paper's
// testbed), so grouping via a linear-scanned slice avoids the map plus
// side order-slice the old code allocated on every multi-op.
type idxGroup struct {
	node simnet.NodeID
	idxs []int
}

// groupAppend files batch index i under node, preserving first-seen
// node order (which is what keeps multi-op fan-out deterministic).
func groupAppend(groups []idxGroup, node simnet.NodeID, i int) []idxGroup {
	for g := range groups {
		if groups[g].node == node {
			groups[g].idxs = append(groups[g].idxs, i)
			return groups
		}
	}
	return append(groups, idxGroup{node: node, idxs: []int{i}})
}

// ReadMulti fetches a batch of keys, grouping them per master server:
// one coordinator lookup for the whole batch, then one request and one
// (bulk) response exchange per involved server. Per-key failures are
// reported individually in the result slice.
func (c *Cluster) ReadMulti(caller simnet.NodeID, keys []string) []ReadResult {
	if c.tracer == nil {
		return c.doReadMulti(caller, keys)
	}
	sp := c.tracer.Begin(0, 0, "kv.readmulti", caller)
	sp.SetNum("keys", int64(len(keys)))
	out := c.doReadMulti(caller, keys)
	errs := int64(0)
	for i := range out {
		if out[i].Err != nil {
			errs++
		}
	}
	if errs > 0 {
		sp.SetNum("err", errs)
	}
	c.tracer.End(&sp)
	return out
}

// doReadMulti is ReadMulti's body (the wrapper owns the span).
func (c *Cluster) doReadMulti(caller simnet.NodeID, keys []string) []ReadResult {
	out := make([]ReadResult, len(keys))
	if len(keys) == 0 {
		return out
	}
	ps, oks, lerr := c.lookupMulti(caller, keys)
	if lerr != nil {
		for i := range out {
			out[i].Err = lerr
		}
		return out
	}
	var groups []idxGroup
	for i := range keys {
		if !oks[i] {
			out[i].Err = ErrNotFound
			continue
		}
		groups = groupAppend(groups, ps[i].master, i)
	}
	env := c.env()
	wg := sim.NewWaitGroup(env)
	for _, g := range groups {
		g := g
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			c.readGroup(caller, g.node, keys, g.idxs, out)
		})
	}
	wg.Wait()
	return out
}

// readGroup serves one master's share of a ReadMulti batch.
func (c *Cluster) readGroup(caller, master simnet.NodeID, keys []string, idxs []int, out []ReadResult) {
	fail := func(err error) {
		for _, i := range idxs {
			out[i].Err = err
		}
	}
	s := c.Server(master)
	if s == nil {
		fail(ErrNoSuchServer)
		return
	}
	env := c.env()
	// One batched request to the master.
	c.countServerRPC()
	if err := c.net.TryTransfer(caller, master, c.cfg.ControlMsgSize); err != nil {
		fail(err)
		return
	}
	env.Sleep(time.Duration(len(idxs)) * c.cfg.ServeOverhead)
	if caller != master {
		// The remote-hit software penalty is paid once per batch, not
		// once per key — the main latency win of batching.
		env.Sleep(c.cfg.CrossNodeOverhead)
	}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		fail(ErrCrashed)
		return
	}
	var payload int64
	now := env.Now()
	for _, i := range idxs {
		o, found := s.log.get(keys[i])
		if !found {
			out[i].Err = ErrNotFound
			continue
		}
		o.meta.NAccess++
		o.meta.LastAccess = now
		out[i].Blob, out[i].Meta = o.blob, o.meta
		payload += o.blob.Size
		s.reads++
	}
	s.mu.Unlock()
	// One bulk response carrying every found payload.
	if err := c.net.TryTransfer(master, caller, payload+c.cfg.ControlMsgSize); err != nil {
		fail(err)
	}
}

// WriteMulti stores a batch of objects, grouping them by target master:
// one coordinator lookup/placement round for the whole batch, then one
// bulk payload transfer and one ack per involved master, with replica
// payloads likewise grouped per backup server. Per-item failures
// (ErrNoSpace, ErrTooLarge) are reported individually; placement of a
// failed brand-new object is rolled back as in Write.
func (c *Cluster) WriteMulti(caller simnet.NodeID, items []WriteItem, preferred simnet.NodeID) []WriteResult {
	if c.tracer == nil {
		return c.doWriteMulti(caller, items, preferred)
	}
	sp := c.tracer.Begin(0, 0, "kv.writemulti", caller)
	sp.SetNum("keys", int64(len(items)))
	out := c.doWriteMulti(caller, items, preferred)
	errs := int64(0)
	for i := range out {
		if out[i].Err != nil {
			errs++
		}
	}
	if errs > 0 {
		sp.SetNum("err", errs)
	}
	c.tracer.End(&sp)
	return out
}

// doWriteMulti is WriteMulti's body (the wrapper owns the span).
func (c *Cluster) doWriteMulti(caller simnet.NodeID, items []WriteItem, preferred simnet.NodeID) []WriteResult {
	out := make([]WriteResult, len(items))
	if len(items) == 0 {
		return out
	}
	keys := make([]string, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	ps, oks, lerr := c.lookupMulti(caller, keys)
	if lerr != nil {
		for i := range out {
			out[i].Err = lerr
		}
		return out
	}
	// Resolve placements; place() new keys (the placement decision rides
	// on the same coordinator round, as in Write).
	speculative := make([]bool, len(items))
	for i, it := range items {
		if it.Blob.Size > c.cfg.MaxObjectSize {
			out[i].Err = ErrTooLarge
			continue
		}
		if !oks[i] {
			p, err := c.place(it.Key, it.Blob.Size, preferred)
			if err != nil {
				out[i].Err = err
				continue
			}
			ps[i] = p
			speculative[i] = true
		}
	}
	var groups []idxGroup
	for i := range items {
		if out[i].Err != nil {
			continue
		}
		groups = groupAppend(groups, ps[i].master, i)
	}
	env := c.env()
	wg := sim.NewWaitGroup(env)
	for _, g := range groups {
		g := g
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			c.writeGroup(caller, g.node, items, ps, speculative, g.idxs, out)
		})
	}
	wg.Wait()
	return out
}

// writeGroup lands one master's share of a WriteMulti batch and
// replicates it, grouping replica payloads per backup server.
func (c *Cluster) writeGroup(caller, master simnet.NodeID, items []WriteItem, ps []placement, speculative []bool, idxs []int, out []WriteResult) {
	undo := func(i int) {
		if speculative[i] {
			c.placeDelete(items[i].Key)
		}
	}
	fail := func(err error) {
		for _, i := range idxs {
			if out[i].Err == nil {
				out[i].Err = err
				undo(i)
			}
		}
	}
	s := c.Server(master)
	if s == nil {
		fail(ErrNoSuchServer)
		return
	}
	env := c.env()
	var total int64
	for _, i := range idxs {
		total += items[i].Blob.Size
	}
	// One bulk payload shipment to the master.
	c.countServerRPC()
	if err := c.net.TryTransfer(caller, master, total+c.cfg.ControlMsgSize); err != nil {
		fail(err)
		return
	}
	env.Sleep(time.Duration(len(idxs))*c.cfg.ServeOverhead + c.memCopyTime(total))

	// Master-side processing, mirroring Write's space accounting.
	var acc []acceptedItem
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		fail(ErrCrashed)
		return
	}
	now := env.Now()
	var cleanedBytes int64
	for _, i := range idxs {
		it := items[i]
		old, existed := s.log.get(it.Key)
		delta := it.Blob.Size
		if existed {
			delta -= old.meta.Size
		}
		if s.log.live+delta > s.limit {
			out[i].Err = ErrNoSpace
			undo(i)
			continue
		}
		version := c.nextVer.Add(1)
		var created sim.Time
		var naccess int64
		if existed {
			created = old.meta.Created
			naccess = old.meta.NAccess
		} else {
			created = now
		}
		meta := Meta{
			Version: version, Size: it.Blob.Size, Created: created,
			NAccess: naccess, LastAccess: now, Tags: cloneTags(it.Tags),
		}
		s.log.put(it.Key, &object{blob: it.Blob, meta: meta})
		s.writes++
		acc = append(acc, acceptedItem{idx: i, meta: meta})
	}
	if s.log.alloc > s.limit {
		cleanedBytes = s.log.clean(s.limit)
	}
	s.mu.Unlock()
	for _, a := range acc {
		if !speculative[a.idx] {
			i := a.idx
			c.placeUpdate(items[i].Key, func(p placement) placement {
				p.size = items[i].Blob.Size
				return p
			})
		}
	}
	if cleanedBytes > 0 {
		env.Sleep(c.memCopyTime(cleanedBytes))
	}
	if len(acc) == 0 {
		return
	}

	// Replicate: group replica payloads per backup node so each backup
	// sees one bulk transfer and one ack for its whole share. Same
	// linear-scan grouping as the master fan-out: replication factor
	// times a handful of nodes.
	type repShare struct {
		node  simnet.NodeID
		items []acceptedItem
		bytes int64
	}
	var shares []repShare
	for _, a := range acc {
		for _, b := range ps[a.idx].backups {
			found := false
			for s := range shares {
				if shares[s].node == b {
					shares[s].items = append(shares[s].items, a)
					shares[s].bytes += items[a.idx].Blob.Size
					found = true
					break
				}
			}
			if !found {
				shares = append(shares, repShare{node: b, items: []acceptedItem{a}, bytes: items[a.idx].Blob.Size})
			}
		}
	}
	repErr := make(map[int]error, len(acc))
	var repMu sync.Mutex
	wg := sim.NewWaitGroup(env)
	for i := range shares {
		share := shares[i]
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			err := c.replicateShare(master, share.node, items, share.items, share.bytes)
			if err != nil {
				repMu.Lock()
				for _, a := range share.items {
					if repErr[a.idx] == nil {
						repErr[a.idx] = err
					}
				}
				repMu.Unlock()
			}
		})
	}
	wg.Wait()

	// Ack to the caller (one control message for the group).
	ackErr := c.net.TryTransfer(master, caller, c.cfg.ControlMsgSize)
	for _, a := range acc {
		switch {
		case repErr[a.idx] != nil:
			out[a.idx].Err = repErr[a.idx]
			undo(a.idx)
		case ackErr != nil:
			out[a.idx].Err = ackErr
			undo(a.idx)
		default:
			out[a.idx].Version = a.meta.Version
		}
	}
}

// acceptedItem pairs a WriteMulti batch index with the metadata its
// master assigned, for the replication fan-out.
type acceptedItem struct {
	idx  int
	meta Meta
}

// replicateShare buffers one backup node's share of a WriteMulti batch:
// one bulk transfer in, per-object RAM buffering, asynchronous disk
// flushes, one ack back.
func (c *Cluster) replicateShare(master, backup simnet.NodeID, items []WriteItem, share []acceptedItem, bytes int64) error {
	bs := c.Server(backup)
	if bs == nil {
		return ErrNoSuchServer
	}
	env := c.env()
	if err := c.net.TryTransfer(master, backup, bytes+c.cfg.ControlMsgSize); err != nil {
		return err
	}
	env.Sleep(c.memCopyTime(bytes)) // buffer in backup RAM
	bs.mu.Lock()
	if bs.crashed {
		bs.mu.Unlock()
		return ErrCrashed
	}
	for _, a := range share {
		it := items[a.idx]
		bs.backups[it.Key] = replica{blob: it.Blob, meta: a.meta}
	}
	bs.mu.Unlock()
	// Asynchronous disk flush, off the commit path (see Write).
	for _, a := range share {
		a := a
		env.Go(func() {
			it := items[a.idx]
			bs.node.DiskWrite(it.Blob.Size)
			bs.mu.Lock()
			if cur, ok := bs.backups[it.Key]; ok && cur.meta.Version == a.meta.Version {
				bs.disk[it.Key] = cur
			}
			bs.mu.Unlock()
		})
	}
	return c.net.TryTransfer(backup, master, c.cfg.ControlMsgSize)
}
