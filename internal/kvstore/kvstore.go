// Package kvstore implements the RAMCloud-like distributed in-memory
// key-value store that OFC uses as its cache substrate (paper §6.1).
//
// Each worker node hosts a storage server with two roles, as in
// RAMCloud: a master keeps the in-memory primary copy of some objects;
// a backup keeps replica copies for other objects (buffered in RAM and
// flushed to disk asynchronously, which is what makes RAMCloud's
// durable writes and OFC's migration-by-promotion fast). A coordinator
// tracks per-object placement.
//
// OFC-specific extensions faithful to the paper:
//   - per-object read-access counter and last-access timestamp (§6.3);
//   - dynamically adjustable per-server memory limits (§6.4);
//   - optimized migration that promotes a backup replica to master
//     without any inter-node payload transfer (§6.4);
//   - object size ceiling raised to 10 MB (§6.1, footnote 2).
package kvstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/trace"
)

// Blob is an object payload. Data may be nil for synthetic payloads
// (macro experiments move hundreds of GB of virtual data); Size is
// authoritative either way.
type Blob struct {
	Size int64
	Data []byte
}

// Bytes returns a payload of the given content; convenience for tests.
func Bytes(b []byte) Blob { return Blob{Size: int64(len(b)), Data: b} }

// Synthetic returns a payload of the given size with no materialized
// bytes.
func Synthetic(size int64) Blob { return Blob{Size: size} }

// Meta is the per-object metadata the store maintains.
type Meta struct {
	Version    uint64
	Size       int64
	NAccess    int64    // read count since creation (OFC extension)
	LastAccess sim.Time // virtual time of last read (OFC extension)
	Created    sim.Time
	Tags       map[string]string // OFC object tags (kind, pipeline id, dirty, ...)
}

// Errors returned by cluster operations.
var (
	ErrNotFound      = errors.New("kvstore: object not found")
	ErrNoSpace       = errors.New("kvstore: master memory limit exceeded")
	ErrTooLarge      = errors.New("kvstore: object exceeds maximum size")
	ErrCrashed       = errors.New("kvstore: server crashed")
	ErrNoSuchServer  = errors.New("kvstore: node hosts no storage server")
	ErrNotEnoughSrvs = errors.New("kvstore: not enough live servers for replication")
)

// Config carries the store's timing and sizing constants.
type Config struct {
	// Replication is the number of backup copies per object.
	Replication int
	// MaxObjectSize is the per-object ceiling (paper: raised to 10 MB).
	MaxObjectSize int64
	// ControlMsgSize approximates the wire size of control RPCs.
	ControlMsgSize int64
	// ServeOverhead is the per-request CPU cost at a server.
	ServeOverhead time.Duration
	// CrossNodeOverhead is the extra software cost of a read served
	// from a remote master (container networking, proxy hop) — the
	// source of the paper's remote-hit penalty (§7.2.1).
	CrossNodeOverhead time.Duration
	// MemBandwidth is the in-memory copy rate (bytes/s) used for
	// buffering replicas and rebuilding promoted objects.
	MemBandwidth float64
	// PromotionBase and PromotionPerMB calibrate the optimized
	// migration (paper §7.2.1: 0.18 ms for 8 MB ... 13.5 ms for 1 GB).
	PromotionBase  time.Duration
	PromotionPerMB time.Duration
	// SegmentSize is the log-structured memory segment capacity
	// (RAMCloud's 8 MB, doubled to fit the 10 MB object extension).
	SegmentSize int64
	// CrashDetectTimeout is how long the coordinator takes to declare
	// a silent server dead (RPC timeout plus retries) before starting
	// recovery; charged at the head of Recover.
	CrashDetectTimeout time.Duration
	// CoordShards is the number of hash partitions the coordinator
	// splits its placement map into. Each shard has its own lock, so
	// lookups for unrelated keys never contend. 1 reproduces the old
	// single-lock coordinator (kept for the contention ablation).
	CoordShards int
}

// DefaultConfig returns constants calibrated to the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Replication:        2,
		MaxObjectSize:      10 << 20,
		ControlMsgSize:     256,
		ServeOverhead:      3 * time.Microsecond,
		CrossNodeOverhead:  800 * time.Microsecond,
		MemBandwidth:       10e9,
		PromotionBase:      30 * time.Microsecond,
		PromotionPerMB:     10500 * time.Nanosecond,
		SegmentSize:        16 << 20,
		CrashDetectTimeout: 150 * time.Millisecond,
		CoordShards:        16,
	}
}

// object is a master copy.
type object struct {
	blob Blob
	meta Meta
}

// replica is a backup copy: the payload plus the metadata needed to
// rebuild a master from it. Carrying version and tags (notably the
// write-back dirty flag) with every replica is what lets crash
// recovery promote a backup without losing an acknowledged write's
// identity.
type replica struct {
	blob Blob
	meta Meta
}

// Server is a per-node storage server (master + backup roles).
type Server struct {
	node *simnet.Node

	mu      sync.Mutex
	crashed bool
	limit   int64              // master memory budget in bytes
	log     *objLog            // log-structured master storage
	backups map[string]replica // backup copies still in the RAM buffer
	disk    map[string]replica // backup copies flushed to disk

	// stats
	reads, writes, evictions int64
}

// Node returns the network node this server runs on.
func (s *Server) Node() simnet.NodeID { return s.node.ID }

// Usage returns the live master-copy bytes and the current limit.
func (s *Server) Usage() (used, limit int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.live, s.limit
}

// LogStats exposes the log-structured engine's accounting: allocated
// segment bytes, live bytes, cleanings performed and bytes relocated.
func (s *Server) LogStats() (alloc, live, cleanings, moved int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.alloc, s.log.live, s.log.cleaned, s.log.moved
}

// ObjectInfo is a snapshot of one master copy, for eviction policies.
type ObjectInfo struct {
	Key  string
	Meta Meta
}

// placement records where an object's copies live and how big the
// master copy is (sizes let locality-aware routers weigh keys by
// bytes without touching the data path).
type placement struct {
	master  simnet.NodeID
	backups []simnet.NodeID
	size    int64
}

// coordShard is one hash partition of the coordinator's placement
// metadata. Each shard is independently locked so placement lookups
// for unrelated keys proceed in parallel.
type coordShard struct {
	mu     sync.Mutex
	places map[string]placement
}

// Cluster is the whole store: a coordinator plus per-node servers.
type Cluster struct {
	net      *simnet.Network
	cfg      Config
	coordloc simnet.NodeID

	mu      sync.Mutex // guards servers and the placement cursor
	servers map[simnet.NodeID]*Server
	rr      int // round-robin cursor for placement

	shards  []*coordShard
	nextVer atomic.Uint64

	statsMu      sync.Mutex
	promotions   int64
	fullMoves    int64
	recovered    int64
	recoveries   int64
	recoveryTime time.Duration
	lastRecovery time.Duration

	// RPC counters are charged on every lookup and server operation —
	// atomics keep the data plane off the stats mutex.
	coordRPCs  atomic.Int64
	serverRPCs atomic.Int64

	// tracer records kv.read/kv.write (and multi) coordinator RPC
	// spans as trace-0 roots; nil = off. Set before traffic starts.
	tracer *trace.Tracer
}

// SetTracer attaches a span recorder to the coordinator RPC surface.
// Call before traffic starts; the field is read without synchronization.
func (c *Cluster) SetTracer(tr *trace.Tracer) { c.tracer = tr }

// New creates a cluster whose coordinator runs on coordNode.
func New(net *simnet.Network, coordNode simnet.NodeID, cfg Config) *Cluster {
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.MaxObjectSize <= 0 {
		cfg.MaxObjectSize = 10 << 20
	}
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = 16 << 20
	}
	if cfg.CoordShards <= 0 {
		cfg.CoordShards = 16
	}
	shards := make([]*coordShard, cfg.CoordShards)
	for i := range shards {
		shards[i] = &coordShard{places: make(map[string]placement)}
	}
	return &Cluster{
		net:      net,
		cfg:      cfg,
		coordloc: coordNode,
		servers:  make(map[simnet.NodeID]*Server),
		shards:   shards,
	}
}

// shardOf returns the coordinator shard owning key.
func (c *Cluster) shardOf(key string) *coordShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// placeGet reads key's placement from its shard.
func (c *Cluster) placeGet(key string) (placement, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	p, ok := sh.places[key]
	sh.mu.Unlock()
	return p, ok
}

// placeDelete drops key's placement.
func (c *Cluster) placeDelete(key string) (placement, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	p, ok := sh.places[key]
	if ok {
		delete(sh.places, key)
	}
	sh.mu.Unlock()
	return p, ok
}

// placeUpdate swaps key's placement under the shard lock, if present.
func (c *Cluster) placeUpdate(key string, fn func(placement) placement) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if p, ok := sh.places[key]; ok {
		sh.places[key] = fn(p)
	}
	sh.mu.Unlock()
}

// placeCount sums the objects tracked across all shards.
func (c *Cluster) placeCount() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.places)
		sh.mu.Unlock()
	}
	return n
}

// Config returns the cluster constants.
func (c *Cluster) Config() Config { return c.cfg }

// AddServer starts a storage server on node with the given master
// memory budget.
func (c *Cluster) AddServer(node simnet.NodeID, memLimit int64) *Server {
	s := &Server{
		node:    c.net.Node(node),
		limit:   memLimit,
		log:     newObjLog(c.cfg.SegmentSize),
		backups: make(map[string]replica),
		disk:    make(map[string]replica),
	}
	c.mu.Lock()
	c.servers[node] = s
	c.mu.Unlock()
	return s
}

// Server returns the server on node, or nil.
func (c *Cluster) Server(node simnet.NodeID) *Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[node]
}

// env is a shorthand.
func (c *Cluster) env() *sim.Env { return c.net.Env() }

// memCopyTime is the RAM-to-RAM handling cost for size bytes.
func (c *Cluster) memCopyTime(size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / c.cfg.MemBandwidth * float64(time.Second))
}

// liveServersLocked lists non-crashed servers; c.mu must be held.
func (c *Cluster) liveServersLocked() []simnet.NodeID {
	var out []simnet.NodeID
	for id, s := range c.servers {
		s.mu.Lock()
		ok := !s.crashed
		s.mu.Unlock()
		if ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// place assigns a master and backups for a new object. preferred, when
// valid and live with capacity, becomes master (OFC locality, §6.5).
// When a concurrent writer already placed the key, the existing
// placement wins and is returned.
func (c *Cluster) place(key string, size int64, preferred simnet.NodeID) (placement, error) {
	c.mu.Lock()
	live := c.liveServersLocked()
	if len(live) < 1+c.cfg.Replication {
		c.mu.Unlock()
		return placement{}, ErrNotEnoughSrvs
	}
	master := simnet.NodeID(-1)
	if s := c.servers[preferred]; s != nil {
		s.mu.Lock()
		if !s.crashed && s.log.live+size <= s.limit {
			master = preferred
		}
		s.mu.Unlock()
	}
	if master < 0 {
		// Pick the live server with the most free master memory.
		var bestFree int64 = -1
		for _, id := range live {
			s := c.servers[id]
			s.mu.Lock()
			free := s.limit - s.log.live
			s.mu.Unlock()
			if free > bestFree {
				bestFree, master = free, id
			}
		}
	}
	var backups []simnet.NodeID
	for i := 0; len(backups) < c.cfg.Replication && i < 2*len(live); i++ {
		id := live[(c.rr+i)%len(live)]
		if id == master {
			continue
		}
		dup := false
		for _, b := range backups {
			if b == id {
				dup = true
			}
		}
		if !dup {
			backups = append(backups, id)
		}
	}
	c.rr++
	c.mu.Unlock()
	if len(backups) < c.cfg.Replication {
		return placement{}, ErrNotEnoughSrvs
	}
	p := placement{master: master, backups: backups, size: size}
	sh := c.shardOf(key)
	sh.mu.Lock()
	if cur, ok := sh.places[key]; ok {
		sh.mu.Unlock()
		return cur, nil
	}
	sh.places[key] = p
	sh.mu.Unlock()
	return p, nil
}

// lookup fetches the placement of key, charging a coordinator RPC from
// caller. The error is non-nil when the coordinator is unreachable.
func (c *Cluster) lookup(caller simnet.NodeID, key string) (placement, bool, error) {
	type res struct {
		p  placement
		ok bool
	}
	c.coordRPCs.Add(1)
	r, err := simnet.TryCall(c.net, caller, c.coordloc, c.cfg.ControlMsgSize, c.cfg.ControlMsgSize, func() res {
		p, ok := c.placeGet(key)
		return res{p, ok}
	})
	if err != nil {
		return placement{}, false, err
	}
	return r.p, r.ok, nil
}

// lookupMulti fetches the placements of all keys in one coordinator
// round-trip (a single control RPC regardless of batch size).
func (c *Cluster) lookupMulti(caller simnet.NodeID, keys []string) ([]placement, []bool, error) {
	type res struct {
		ps []placement
		ok []bool
	}
	c.coordRPCs.Add(1)
	r, err := simnet.TryCall(c.net, caller, c.coordloc, c.cfg.ControlMsgSize, c.cfg.ControlMsgSize, func() res {
		ps := make([]placement, len(keys))
		ok := make([]bool, len(keys))
		for i, k := range keys {
			ps[i], ok[i] = c.placeGet(k)
		}
		return res{ps, ok}
	})
	if err != nil {
		return nil, nil, err
	}
	return r.ps, r.ok, nil
}

// MasterOf returns the node currently mastering key, without charging
// network time (used by schedulers that co-locate with the cache; the
// paper's controller queries the RAMCloud coordinator, whose cost is
// part of the controller's fixed overhead).
func (c *Cluster) MasterOf(key string) (simnet.NodeID, bool) {
	p, ok := c.placeGet(key)
	if !ok {
		return 0, false
	}
	return p.master, true
}

// Location describes where one key's master copy lives, for
// byte-weighted locality decisions.
type Location struct {
	Node simnet.NodeID
	Size int64
	OK   bool
}

// Locate resolves the master node and object size for each key without
// charging network time (scheduler-side placement view, like MasterOf).
func (c *Cluster) Locate(keys []string) []Location {
	out := make([]Location, len(keys))
	for i, k := range keys {
		if p, ok := c.placeGet(k); ok {
			out[i] = Location{Node: p.master, Size: p.size, OK: true}
		}
	}
	return out
}

// MaxObjectSize reports the per-object ceiling of this backend.
func (c *Cluster) MaxObjectSize() int64 { return c.cfg.MaxObjectSize }

// Usage reports the live master-copy bytes and memory limit of node's
// server; zeros when the node hosts no server.
func (c *Cluster) Usage(node simnet.NodeID) (used, limit int64) {
	s := c.Server(node)
	if s == nil {
		return 0, 0
	}
	return s.Usage()
}

// Objects returns a snapshot of the master copies on node.
func (c *Cluster) Objects(node simnet.NodeID) []ObjectInfo {
	s := c.Server(node)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObjectInfo, 0, len(s.log.index))
	s.log.each(func(k string, o *object) {
		out = append(out, ObjectInfo{Key: k, Meta: o.meta})
	})
	return out
}

// SetMemoryLimit adjusts the master memory budget of node's server.
// Lowering the limit below current usage does not evict anything by
// itself: OFC's cacheAgent is responsible for freeing space (§6.4).
func (c *Cluster) SetMemoryLimit(node simnet.NodeID, limit int64) error {
	s := c.Server(node)
	if s == nil {
		return ErrNoSuchServer
	}
	s.mu.Lock()
	s.limit = limit
	s.mu.Unlock()
	return nil
}

// ClusterStats is a snapshot of the cluster-wide counters.
type ClusterStats struct {
	Promotions int64 // optimized migrations performed
	FullMoves  int64 // baseline payload-copy migrations
	Recovered  int64 // objects re-mastered by crash recovery
	Recoveries int64 // crash recoveries completed
	// RecoveryTime is the cumulative virtual time spent replaying
	// backups after crashes; LastRecovery is the most recent run.
	RecoveryTime time.Duration
	LastRecovery time.Duration
	// CoordRPCs counts coordinator placement round-trips and
	// ServerRPCs counts request/response exchanges with masters; the
	// batching benchmark asserts ReadMulti's ≤1-per-server property
	// against them.
	CoordRPCs  int64
	ServerRPCs int64
}

// Stats reports cluster-wide counters.
func (c *Cluster) Stats() ClusterStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return ClusterStats{
		Promotions:   c.promotions,
		FullMoves:    c.fullMoves,
		Recovered:    c.recovered,
		Recoveries:   c.recoveries,
		RecoveryTime: c.recoveryTime,
		LastRecovery: c.lastRecovery,
		CoordRPCs:    c.coordRPCs.Load(),
		ServerRPCs:   c.serverRPCs.Load(),
	}
}

// countServerRPC records one request/response exchange with a master.
func (c *Cluster) countServerRPC() {
	c.serverRPCs.Add(1)
}

// TotalUsed sums master-copy bytes across live servers.
func (c *Cluster) TotalUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, s := range c.servers {
		s.mu.Lock()
		if !s.crashed {
			t += s.log.live
		}
		s.mu.Unlock()
	}
	return t
}

func (c *Cluster) String() string {
	c.mu.Lock()
	servers := len(c.servers)
	c.mu.Unlock()
	return fmt.Sprintf("kvstore.Cluster{servers=%d objects=%d shards=%d}", servers, c.placeCount(), len(c.shards))
}
