package kvstore

import (
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// Write stores (or overwrites) key with blob. The master copy lands on
// preferred when that node has a live server with room (OFC routes
// writes to the invoking worker for locality, §6.5). The write is
// durable once all backups have buffered it, matching RAMCloud's
// commit point. Returns the new version.
func (c *Cluster) Write(caller simnet.NodeID, key string, blob Blob, tags map[string]string, preferred simnet.NodeID) (uint64, error) {
	if c.tracer == nil {
		return c.doWrite(caller, key, blob, tags, preferred)
	}
	sp := c.tracer.Begin(0, 0, "kv.write", caller)
	sp.SetNum("bytes", blob.Size)
	ver, err := c.doWrite(caller, key, blob, tags, preferred)
	if err != nil {
		sp.SetNum("err", 1)
	}
	c.tracer.End(&sp)
	return ver, err
}

// doWrite is Write's body (the wrapper owns the span).
func (c *Cluster) doWrite(caller simnet.NodeID, key string, blob Blob, tags map[string]string, preferred simnet.NodeID) (uint64, error) {
	if blob.Size > c.cfg.MaxObjectSize {
		return 0, ErrTooLarge
	}
	p, ok, lerr := c.lookup(caller, key)
	if lerr != nil {
		return 0, lerr
	}
	if !ok {
		var err error
		p, err = c.place(key, blob.Size, preferred)
		if err != nil {
			return 0, err
		}
	}
	master := c.Server(p.master)
	if master == nil {
		return 0, ErrNoSuchServer
	}

	// Ship the payload to the master.
	c.countServerRPC()
	if err := c.net.TryTransfer(caller, p.master, blob.Size+c.cfg.ControlMsgSize); err != nil {
		if !ok {
			c.placeDelete(key)
		}
		return 0, err
	}

	env := c.env()
	var version uint64
	var werr error
	// Master-side processing.
	env.Sleep(c.cfg.ServeOverhead + c.memCopyTime(blob.Size))
	master.mu.Lock()
	if master.crashed {
		master.mu.Unlock()
		return 0, ErrCrashed
	}
	old, existed := master.log.get(key)
	delta := blob.Size
	if existed {
		delta -= old.meta.Size
	}
	if master.log.live+delta > master.limit {
		master.mu.Unlock()
		if !ok { // undo speculative placement of a brand-new object
			c.placeDelete(key)
		}
		return 0, ErrNoSpace
	}
	version = c.nextVer.Add(1)
	now := env.Now()
	var created sim.Time
	var naccess int64
	if existed {
		created = old.meta.Created
		naccess = old.meta.NAccess
	} else {
		created = now
	}
	meta := Meta{
		Version: version, Size: blob.Size, Created: created,
		NAccess: naccess, LastAccess: now, Tags: cloneTags(tags),
	}
	master.log.put(key, &object{blob: blob, meta: meta})
	// Log-structured memory: if dead entries push the allocated bytes
	// past the budget, the cleaner compacts before the write returns
	// (write-path backpressure, as in RAMCloud).
	var cleanedBytes int64
	if master.log.alloc > master.limit {
		cleanedBytes = master.log.clean(master.limit)
	}
	master.writes++
	master.mu.Unlock()
	if ok && existed {
		// Overwrite of an existing object: refresh the coordinator's
		// size record so byte-weighted locality stays accurate.
		c.placeUpdate(key, func(p placement) placement { p.size = blob.Size; return p })
	}
	if cleanedBytes > 0 {
		env.Sleep(c.memCopyTime(cleanedBytes))
	}

	// Replicate to backups in parallel; ack when all have buffered.
	wg := sim.NewWaitGroup(env)
	errs := make([]error, len(p.backups))
	for i, b := range p.backups {
		i, b := i, b
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			bs := c.Server(b)
			if bs == nil {
				errs[i] = ErrNoSuchServer
				return
			}
			if err := c.net.TryTransfer(p.master, b, blob.Size+c.cfg.ControlMsgSize); err != nil {
				errs[i] = err
				return
			}
			env.Sleep(c.memCopyTime(blob.Size)) // buffer in backup RAM
			bs.mu.Lock()
			if bs.crashed {
				errs[i] = ErrCrashed
				bs.mu.Unlock()
				return
			}
			bs.backups[key] = replica{blob: blob, meta: meta}
			bs.mu.Unlock()
			// Asynchronous disk flush, off the commit path. The buffer
			// copy is retained after the flush (RAMCloud backups keep
			// segments buffered while RAM allows), which is what makes
			// migration-by-promotion fast; only a machine restart
			// drops buffers (see Restart).
			env.Go(func() {
				bs.node.DiskWrite(blob.Size)
				bs.mu.Lock()
				if cur, ok := bs.backups[key]; ok && cur.meta.Version == meta.Version {
					bs.disk[key] = cur
				}
				bs.mu.Unlock()
			})
			errs[i] = c.net.TryTransfer(b, p.master, c.cfg.ControlMsgSize)
		})
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil && werr == nil {
			werr = e
		}
	}
	// Ack to the caller.
	if err := c.net.TryTransfer(p.master, caller, c.cfg.ControlMsgSize); err != nil && werr == nil {
		werr = err
	}
	if werr != nil {
		return 0, werr
	}
	return version, nil
}

func cloneTags(tags map[string]string) map[string]string {
	if tags == nil {
		return nil
	}
	out := make(map[string]string, len(tags))
	for k, v := range tags {
		out[k] = v
	}
	return out
}

// Read fetches key's payload from its master, updating the OFC access
// statistics.
func (c *Cluster) Read(caller simnet.NodeID, key string) (Blob, Meta, error) {
	if c.tracer == nil {
		return c.doRead(caller, key)
	}
	sp := c.tracer.Begin(0, 0, "kv.read", caller)
	blob, meta, err := c.doRead(caller, key)
	if err != nil {
		sp.SetNum("err", 1)
	} else {
		sp.SetNum("bytes", blob.Size)
	}
	c.tracer.End(&sp)
	return blob, meta, err
}

// doRead is Read's body (the wrapper owns the span).
func (c *Cluster) doRead(caller simnet.NodeID, key string) (Blob, Meta, error) {
	p, ok, lerr := c.lookup(caller, key)
	if lerr != nil {
		return Blob{}, Meta{}, lerr
	}
	if !ok {
		return Blob{}, Meta{}, ErrNotFound
	}
	s := c.Server(p.master)
	if s == nil {
		return Blob{}, Meta{}, ErrNoSuchServer
	}
	env := c.env()
	// Request to master.
	c.countServerRPC()
	if err := c.net.TryTransfer(caller, p.master, c.cfg.ControlMsgSize); err != nil {
		return Blob{}, Meta{}, err
	}
	env.Sleep(c.cfg.ServeOverhead)
	if caller != p.master {
		env.Sleep(c.cfg.CrossNodeOverhead)
	}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return Blob{}, Meta{}, ErrCrashed
	}
	o, found := s.log.get(key)
	if !found {
		s.mu.Unlock()
		return Blob{}, Meta{}, ErrNotFound
	}
	o.meta.NAccess++
	o.meta.LastAccess = env.Now()
	blob, meta := o.blob, o.meta
	s.reads++
	s.mu.Unlock()
	// Payload back to the caller.
	if err := c.net.TryTransfer(p.master, caller, blob.Size+c.cfg.ControlMsgSize); err != nil {
		return Blob{}, Meta{}, err
	}
	return blob, meta, nil
}

// Stat returns the metadata of key without moving the payload.
func (c *Cluster) Stat(caller simnet.NodeID, key string) (Meta, error) {
	p, ok, lerr := c.lookup(caller, key)
	if lerr != nil {
		return Meta{}, lerr
	}
	if !ok {
		return Meta{}, ErrNotFound
	}
	s := c.Server(p.master)
	if s == nil {
		return Meta{}, ErrNoSuchServer
	}
	c.countServerRPC()
	if err := c.net.TryTransfer(caller, p.master, c.cfg.ControlMsgSize); err != nil {
		return Meta{}, err
	}
	c.env().Sleep(c.cfg.ServeOverhead)
	s.mu.Lock()
	o, found := s.log.get(key)
	if !found || s.crashed {
		s.mu.Unlock()
		return Meta{}, ErrNotFound
	}
	meta := o.meta
	s.mu.Unlock()
	if err := c.net.TryTransfer(p.master, caller, c.cfg.ControlMsgSize); err != nil {
		return Meta{}, err
	}
	return meta, nil
}

// SetTag updates one metadata tag on the master copy.
func (c *Cluster) SetTag(caller simnet.NodeID, key, tag, value string) error {
	p, ok, lerr := c.lookup(caller, key)
	if lerr != nil {
		return lerr
	}
	if !ok {
		return ErrNotFound
	}
	s := c.Server(p.master)
	if s == nil {
		return ErrNoSuchServer
	}
	c.countServerRPC()
	if err := c.net.TryTransfer(caller, p.master, c.cfg.ControlMsgSize); err != nil {
		return err
	}
	s.mu.Lock()
	o, found := s.log.get(key)
	if !found || s.crashed {
		s.mu.Unlock()
		return ErrNotFound
	}
	if o.meta.Tags == nil {
		o.meta.Tags = make(map[string]string)
	}
	o.meta.Tags[tag] = value
	ver := o.meta.Version
	s.mu.Unlock()
	// Propagate the tag to backup replicas of the same version so a
	// post-recovery master sees current flags (a persisted object must
	// not come back tagged dirty). The master piggybacks these tiny
	// updates on its replication stream; we fold the cost into the ack.
	for _, b := range p.backups {
		bs := c.Server(b)
		if bs == nil {
			continue
		}
		bs.mu.Lock()
		for _, m := range []map[string]replica{bs.backups, bs.disk} {
			if rep, ok := m[key]; ok && rep.meta.Version == ver {
				if rep.meta.Tags == nil {
					rep.meta.Tags = make(map[string]string)
				} else {
					rep.meta.Tags = cloneTags(rep.meta.Tags)
				}
				rep.meta.Tags[tag] = value
				m[key] = rep
			}
		}
		bs.mu.Unlock()
	}
	if err := c.net.TryTransfer(p.master, caller, c.cfg.ControlMsgSize); err != nil {
		return err
	}
	return nil
}

// Delete removes key from the store (master and backups).
func (c *Cluster) Delete(caller simnet.NodeID, key string) error {
	p, ok, lerr := c.lookup(caller, key)
	if lerr != nil {
		return lerr
	}
	if !ok {
		return ErrNotFound
	}
	c.countServerRPC()
	if err := c.net.TryTransfer(caller, p.master, c.cfg.ControlMsgSize); err != nil {
		return err
	}
	c.dropLocal(p, key)
	c.placeDelete(key)
	if err := c.net.TryTransfer(p.master, caller, c.cfg.ControlMsgSize); err != nil {
		return err
	}
	return nil
}

// dropLocal erases key's copies without network charges (the master
// fans out tiny control messages to backups; we fold that cost into
// the caller's ack path).
func (c *Cluster) dropLocal(p placement, key string) {
	if s := c.Server(p.master); s != nil {
		s.mu.Lock()
		if _, freed := s.log.delete(key); freed {
			s.evictions++
		}
		s.mu.Unlock()
	}
	for _, b := range p.backups {
		if bs := c.Server(b); bs != nil {
			bs.mu.Lock()
			delete(bs.backups, key)
			delete(bs.disk, key)
			bs.mu.Unlock()
		}
	}
}

// Evict removes key entirely (used for clean objects whose canonical
// copy lives in the RSDS). It is a local decision of the cacheAgent;
// only coordinator bookkeeping is charged.
func (c *Cluster) Evict(key string) error {
	p, ok := c.placeDelete(key)
	if !ok {
		return ErrNotFound
	}
	c.dropLocal(p, key)
	return nil
}
