package kvstore

import (
	"fmt"
	"testing"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// TestCrashMasterMidPut crashes the master while a Put is in flight.
// The in-flight write may fail (it was never acknowledged), but every
// previously acknowledged version must survive recovery: the promoted
// backup serves the exact acked version with its tags.
func TestCrashMasterMidPut(t *testing.T) {
	env := sim.NewEnv(1)
	c, net := testCluster(env)
	var ackedVer uint64
	env.Go(func() {
		var err error
		ackedVer, err = c.Write(0, "k", Synthetic(1<<20), map[string]string{"dirty": "1"}, 1)
		if err != nil {
			t.Errorf("setup write: %v", err)
			return
		}
		// Launch a second Put and kill the master mid-transfer: the
		// payload ships over the fabric, so crashing shortly after
		// launch lands inside the Put.
		done := sim.NewFuture[error](env)
		env.Go(func() {
			_, werr := c.Write(0, "k", Synthetic(2<<20), nil, 1)
			done.Set(werr)
		})
		env.After(100*time.Microsecond, func() {
			net.SetNodeDown(1, true)
			c.Crash(1)
		})
		werr := done.Wait()
		// Whatever happened to the in-flight write, recovery must
		// restore the last acked state.
		n := c.RecoverNode(1)
		if n == 0 {
			t.Error("nothing recovered")
		}
		net.SetNodeDown(1, false)
		_, meta, rerr := c.Read(2, "k")
		if rerr != nil {
			t.Fatalf("read after recovery: %v", rerr)
		}
		if werr != nil {
			// Unacked write lost: the acked version must be served.
			if meta.Version != ackedVer {
				t.Errorf("version=%d, want acked %d (write err %v)", meta.Version, ackedVer, werr)
			}
			if meta.Tags["dirty"] != "1" {
				t.Errorf("acked tags lost: %v", meta.Tags)
			}
		} else if meta.Version <= ackedVer {
			t.Errorf("acked overwrite not recovered: version=%d", meta.Version)
		}
		if m, _ := c.MasterOf("k"); m == 1 {
			t.Error("key still mastered on crashed node")
		}
	})
	env.Run()
}

// TestRecoverChargesDetectionAndMeasuresReplay verifies the RAMCloud-
// style timed recovery: Recover charges the crash-detection timeout on
// the virtual clock, and the replay duration (detection excluded) is
// recorded in Stats.
func TestRecoverChargesDetectionAndMeasuresReplay(t *testing.T) {
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	c.SetCrashDetectTimeout(2 * time.Second)
	env.Go(func() {
		for i := 0; i < 6; i++ {
			if _, err := c.Write(0, fmt.Sprintf("k%d", i), Synthetic(1<<20), nil, 1); err != nil {
				t.Fatal(err)
			}
		}
		c.Crash(1)
		start := env.Now()
		n, replay := c.Recover(1)
		total := time.Duration(env.Now() - start)
		if n != 6 {
			t.Errorf("recovered %d, want 6", n)
		}
		if total < 2*time.Second {
			t.Errorf("recover returned after %v, detection 2s not charged", total)
		}
		if replay <= 0 || replay >= time.Second {
			t.Errorf("replay duration %v, want small positive (detection excluded)", replay)
		}
		st := c.Stats()
		if st.Recoveries != 1 || st.Recovered != 6 {
			t.Errorf("stats=%+v", st)
		}
		if st.LastRecovery != replay || st.RecoveryTime != replay {
			t.Errorf("stats recovery times %v/%v, want %v", st.LastRecovery, st.RecoveryTime, replay)
		}
	})
	env.Run()
}

// TestRecoveryDeterministicOrder runs the same multi-object recovery
// twice; serial sorted-key replay must produce identical durations.
func TestRecoveryDeterministicOrder(t *testing.T) {
	runOnce := func() time.Duration {
		env := sim.NewEnv(3)
		c, _ := testCluster(env)
		var dur time.Duration
		env.Go(func() {
			for i := 0; i < 10; i++ {
				c.Write(0, fmt.Sprintf("obj/%02d", i), Synthetic(512<<10), nil, 1)
			}
			c.Crash(1)
			_, dur = c.Recover(1)
		})
		env.Run()
		return dur
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("recovery durations differ across identical runs: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Errorf("recovery duration %v, want > 0", a)
	}
}

// TestDirtyReplicaMetaSurvivesPromotion is the write-back safety net:
// a dirty (not yet persisted) object whose master dies must come back
// with its dirty tag and version intact, so the persistor can still
// push it to the RSDS.
func TestDirtyReplicaMetaSurvivesPromotion(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		tags := map[string]string{"dirty": "1", "version": "7", "kind": "output"}
		ver, err := c.Write(0, "wb", Synthetic(3<<20), tags, 1)
		if err != nil {
			t.Fatal(err)
		}
		c.Crash(1)
		if n := c.RecoverNode(1); n != 1 {
			t.Fatalf("recovered %d", n)
		}
		_, meta, err := c.Read(2, "wb")
		if err != nil {
			t.Fatal(err)
		}
		if meta.Version != ver {
			t.Errorf("version=%d, want %d", meta.Version, ver)
		}
		for k, v := range tags {
			if meta.Tags[k] != v {
				t.Errorf("tag %q=%q, want %q", k, meta.Tags[k], v)
			}
		}
	})
}

// TestSetTagPropagatesToReplicas: a tag update on the master must reach
// same-version backup replicas, or a later promotion would resurrect a
// stale dirty flag.
func TestSetTagPropagatesToReplicas(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		if _, err := c.Write(0, "k", Synthetic(1<<20), map[string]string{"dirty": "1"}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.SetTag(0, "k", "dirty", "0"); err != nil {
			t.Fatal(err)
		}
		c.Crash(1)
		if n := c.RecoverNode(1); n != 1 {
			t.Fatalf("recovered %d", n)
		}
		m, err := c.Stat(2, "k")
		if err != nil {
			t.Fatal(err)
		}
		if m.Tags["dirty"] != "0" {
			t.Errorf("promoted replica dirty=%q, want 0 (SetTag not propagated)", m.Tags["dirty"])
		}
	})
}

// TestRaceCrashRestartStress hammers the cluster with concurrent
// writers, readers and a crash/restart+recovery loop; run under
// -race it checks the locking discipline of the fault paths.
func TestRaceCrashRestartStress(t *testing.T) {
	env := sim.NewEnv(5)
	c, net := testCluster(env)
	wg := sim.NewWaitGroup(env)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			rng := env.NewRand()
			for i := 0; i < 30; i++ {
				key := fmt.Sprintf("s/%d/%d", w, i%5)
				node := simnet.NodeID(rng.Intn(4))
				if rng.Intn(2) == 0 {
					c.Write(node, key, Synthetic(int64(rng.Intn(1<<16)+1)), nil, node)
				} else {
					c.Read(node, key)
				}
				env.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
			}
		})
	}
	wg.Add(1)
	env.Go(func() {
		defer wg.Done()
		for round := 0; round < 4; round++ {
			victim := simnet.NodeID(round % 4)
			env.Sleep(2 * time.Millisecond)
			net.SetNodeDown(victim, true)
			c.Crash(victim)
			c.RecoverNode(victim)
			env.Sleep(time.Millisecond)
			net.SetNodeDown(victim, false)
			c.Restart(victim)
		}
	})
	env.Go(func() { wg.Wait() })
	env.Run()
}
