package kvstore

import (
	"errors"
	"fmt"
	"testing"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// TestReadMultiRoundTrip checks batched reads return the same payloads
// and metadata as per-key reads, with per-key ErrNotFound for misses.
func TestReadMultiRoundTrip(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		var keys []string
		for i := 0; i < 12; i++ {
			k := fmt.Sprintf("obj/%d", i)
			keys = append(keys, k)
			node := simnet.NodeID(i % 4)
			if _, err := c.Write(node, k, Synthetic(int64(1+i)<<10), nil, node); err != nil {
				t.Fatalf("write %s: %v", k, err)
			}
		}
		keys = append(keys, "obj/missing")
		res := c.ReadMulti(1, keys)
		if len(res) != len(keys) {
			t.Fatalf("got %d results for %d keys", len(res), len(keys))
		}
		for i := 0; i < 12; i++ {
			if res[i].Err != nil {
				t.Fatalf("key %s: %v", keys[i], res[i].Err)
			}
			if want := int64(1+i) << 10; res[i].Blob.Size != want {
				t.Fatalf("key %s: size %d, want %d", keys[i], res[i].Blob.Size, want)
			}
			if res[i].Meta.NAccess != 1 {
				t.Fatalf("key %s: NAccess %d, want 1", keys[i], res[i].Meta.NAccess)
			}
		}
		if !errors.Is(res[12].Err, ErrNotFound) {
			t.Fatalf("missing key: err %v, want ErrNotFound", res[12].Err)
		}
	})
}

// TestReadMultiBatchedRPCs is the acceptance check for batching: a
// ReadMulti of K keys spread over M masters must cost exactly one
// coordinator round-trip and at most one server round-trip per involved
// master — versus K of each for a per-key loop.
func TestReadMultiBatchedRPCs(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		const K = 12
		var keys []string
		masters := make(map[simnet.NodeID]bool)
		for i := 0; i < K; i++ {
			k := fmt.Sprintf("obj/%d", i)
			keys = append(keys, k)
			node := simnet.NodeID(i % 4)
			if _, err := c.Write(node, k, Synthetic(64<<10), nil, node); err != nil {
				t.Fatalf("write: %v", err)
			}
			m, ok := c.MasterOf(k)
			if !ok {
				t.Fatalf("no master for %s", k)
			}
			masters[m] = true
		}

		before := c.Stats()
		res := c.ReadMulti(1, keys)
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("key %s: %v", keys[i], r.Err)
			}
		}
		after := c.Stats()
		if got := after.CoordRPCs - before.CoordRPCs; got != 1 {
			t.Fatalf("ReadMulti cost %d coordinator RPCs, want 1", got)
		}
		if got := after.ServerRPCs - before.ServerRPCs; got > int64(len(masters)) {
			t.Fatalf("ReadMulti cost %d server RPCs for %d masters, want <= %d",
				got, len(masters), len(masters))
		}

		// Per-key loop, for contrast: K coordinator and K server RPCs.
		before = after
		for _, k := range keys {
			if _, _, err := c.Read(1, k); err != nil {
				t.Fatalf("read %s: %v", k, err)
			}
		}
		after = c.Stats()
		if got := after.CoordRPCs - before.CoordRPCs; got != K {
			t.Fatalf("per-key loop cost %d coordinator RPCs, want %d", got, K)
		}
		if got := after.ServerRPCs - before.ServerRPCs; got != K {
			t.Fatalf("per-key loop cost %d server RPCs, want %d", got, K)
		}
	})
}

// TestWriteMultiDurable checks batched writes commit with the same
// durability contract as Write: once acked, every object survives a
// master crash via backup promotion.
func TestWriteMultiDurable(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		const K = 8
		items := make([]WriteItem, K)
		for i := range items {
			items[i] = WriteItem{
				Key:  fmt.Sprintf("obj/%d", i),
				Blob: Synthetic(int64(1+i) << 10),
				Tags: map[string]string{"dirty": "1"},
			}
		}
		before := c.Stats()
		res := c.WriteMulti(1, items, 1)
		after := c.Stats()
		if got := after.CoordRPCs - before.CoordRPCs; got != 1 {
			t.Fatalf("WriteMulti cost %d coordinator RPCs, want 1", got)
		}
		seen := make(map[uint64]bool)
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("item %d: %v", i, r.Err)
			}
			if r.Version == 0 || seen[r.Version] {
				t.Fatalf("item %d: bad version %d", i, r.Version)
			}
			seen[r.Version] = true
		}

		// All masters landed on the preferred node; crash it and recover.
		master, ok := c.MasterOf("obj/0")
		if !ok {
			t.Fatal("no master for obj/0")
		}
		c.Crash(master)
		if n := c.RecoverNode(master); n != K {
			t.Fatalf("recovered %d objects, want %d", n, K)
		}
		for i, it := range items {
			blob, meta, err := c.Read(2, it.Key)
			if err != nil {
				t.Fatalf("post-recovery read %s: %v", it.Key, err)
			}
			if blob.Size != items[i].Blob.Size {
				t.Fatalf("%s: size %d, want %d", it.Key, blob.Size, items[i].Blob.Size)
			}
			if meta.Tags["dirty"] != "1" {
				t.Fatalf("%s: dirty tag lost in recovery", it.Key)
			}
		}
	})
}

// TestWriteMultiOverwriteAndNoSpace checks per-item failure isolation:
// an oversized or unplaceable item fails alone while the rest of the
// batch commits, and overwrites refresh the coordinator's size record.
func TestWriteMultiOverwriteAndNoSpace(t *testing.T) {
	run(t, func(env *sim.Env, c *Cluster) {
		if _, err := c.Write(1, "obj/a", Synthetic(4<<10), nil, 1); err != nil {
			t.Fatalf("seed write: %v", err)
		}
		items := []WriteItem{
			{Key: "obj/a", Blob: Synthetic(32 << 10)}, // overwrite
			{Key: "obj/b", Blob: Synthetic(8 << 10)},  // new
			{Key: "obj/huge", Blob: Synthetic(c.cfg.MaxObjectSize + 1)},
		}
		res := c.WriteMulti(1, items, 1)
		if res[0].Err != nil || res[1].Err != nil {
			t.Fatalf("good items failed: %v %v", res[0].Err, res[1].Err)
		}
		if !errors.Is(res[2].Err, ErrTooLarge) {
			t.Fatalf("oversized item: err %v, want ErrTooLarge", res[2].Err)
		}
		if _, ok := c.MasterOf("obj/huge"); ok {
			t.Fatal("failed item left a placement behind")
		}
		locs := c.Locate([]string{"obj/a", "obj/b"})
		if !locs[0].OK || locs[0].Size != 32<<10 {
			t.Fatalf("overwrite did not refresh placement size: %+v", locs[0])
		}
		if !locs[1].OK || locs[1].Size != 8<<10 {
			t.Fatalf("new item placement size wrong: %+v", locs[1])
		}
	})
}

// TestShardedCoordinatorRace hammers the sharded coordinator from many
// parallel sim processes — writes, batched reads, evictions, migrations
// and scheduler-side lookups over an overlapping keyspace. Run under
// -race (make test-race) this is the concurrency safety net for the
// per-shard locking scheme.
func TestShardedCoordinatorRace(t *testing.T) {
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		env.Go(func() {
			node := simnet.NodeID(w % 4)
			for i := 0; i < 60; i++ {
				key := fmt.Sprintf("shared/%d", (w+i)%24)
				switch i % 6 {
				case 0, 1:
					c.Write(node, key, Synthetic(16<<10), nil, node)
				case 2:
					c.Read(node, key)
				case 3:
					batch := []string{key, fmt.Sprintf("shared/%d", (w+i+7)%24)}
					c.ReadMulti(node, batch)
				case 4:
					if i%12 == 4 {
						c.Evict(key)
					} else {
						c.MigrateToBackup(key)
					}
				case 5:
					items := []WriteItem{
						{Key: key, Blob: Synthetic(8 << 10)},
						{Key: fmt.Sprintf("priv/%d/%d", w, i), Blob: Synthetic(4 << 10)},
					}
					c.WriteMulti(node, items, node)
				}
				c.Locate([]string{key})
				c.MasterOf(key)
			}
		})
	}
	env.Run()
	// The cluster must still be coherent: every surviving placement
	// resolves to a live master copy.
	for _, sh := range c.shards {
		for key, p := range sh.places {
			s := c.Server(p.master)
			if s == nil {
				t.Fatalf("%s placed on unknown server %d", key, p.master)
			}
			if _, found := s.log.get(key); !found {
				t.Fatalf("%s placed on %d but master copy missing", key, p.master)
			}
		}
	}
}

// benchCoordinator measures placement-map contention at a given shard
// count: parallel clients doing scheduler-side lookups with a sprinkle
// of placement updates, the coordinator's read-mostly workload.
func benchCoordinator(b *testing.B, shards int) {
	env := sim.NewEnv(1)
	net := simnet.New(env, simnet.DefaultConfig())
	for i := 0; i < 4; i++ {
		net.AddNode("n")
	}
	cfg := DefaultConfig()
	cfg.CoordShards = shards
	c := New(net, 0, cfg)
	for i := 0; i < 4; i++ {
		c.AddServer(simnet.NodeID(i), 1<<30)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj/%d", i)
		sh := c.shardOf(keys[i])
		sh.mu.Lock()
		sh.places[keys[i]] = placement{master: simnet.NodeID(i % 4), size: 64 << 10}
		sh.mu.Unlock()
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i%len(keys)]
			if i%8 == 0 {
				c.placeUpdate(k, func(p placement) placement {
					p.size++
					return p
				})
			} else {
				c.MasterOf(k)
			}
			i++
		}
	})
}

// BenchmarkCoordinatorSingleLock is the pre-refactor baseline: one lock
// serializing every placement lookup. Compare against Sharded16 with
// -cpu 8 (make bench-store) to see the contention win.
func BenchmarkCoordinatorSingleLock(b *testing.B) { benchCoordinator(b, 1) }

// BenchmarkCoordinatorSharded16 is the default sharded configuration.
func BenchmarkCoordinatorSharded16(b *testing.B) { benchCoordinator(b, 16) }

// BenchmarkReadMultiBatched measures the host cost of fetching 16 keys
// in one batched call (1 coordinator + ≤4 server round-trips).
func BenchmarkReadMultiBatched(b *testing.B) {
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	env.Go(func() {
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", i)
			node := simnet.NodeID(i % 4)
			if _, err := c.Write(node, keys[i], Synthetic(64<<10), nil, node); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range c.ReadMulti(1, keys) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	env.Run()
}

// BenchmarkReadMultiPerKey is the same 16-key fetch as a per-key loop
// (16 coordinator + 16 server round-trips), the pre-batching shape.
func BenchmarkReadMultiPerKey(b *testing.B) {
	env := sim.NewEnv(1)
	c, _ := testCluster(env)
	env.Go(func() {
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", i)
			node := simnet.NodeID(i % 4)
			if _, err := c.Write(node, keys[i], Synthetic(64<<10), nil, node); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				if _, _, err := c.Read(1, k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	env.Run()
}
