package kvstore

import (
	"sort"
	"time"

	"ofc/internal/simnet"
)

// promotionTime is the calibrated cost of rebuilding a master copy
// from a locally buffered backup replica (paper §7.2.1: 0.18 ms for
// 8 MB up to 13.5 ms for 1 GB).
func (c *Cluster) promotionTime(size int64) time.Duration {
	mb := float64(size) / float64(1<<20)
	return c.cfg.PromotionBase + time.Duration(mb*float64(c.cfg.PromotionPerMB))
}

// MigrateToBackup is OFC's optimized migration (§6.4): elect a new
// master among the nodes already holding a backup replica of key, load
// the object there from the local replica, and demote the old master
// to backup. No inter-node transfer of the payload occurs.
func (c *Cluster) MigrateToBackup(key string) error {
	p, ok := c.placeGet(key)
	if !ok {
		return ErrNotFound
	}
	// Elect the backup with the most free master memory.
	var dest simnet.NodeID = -1
	var bestFree int64 = -1
	oldMaster := p.master
	ms := c.Server(oldMaster)
	var size int64
	if ms != nil {
		ms.mu.Lock()
		if o, found := ms.log.get(key); found {
			size = o.meta.Size
		}
		ms.mu.Unlock()
	}
	for _, b := range p.backups {
		s := c.Server(b)
		if s == nil {
			continue
		}
		s.mu.Lock()
		if !s.crashed {
			if free := s.limit - s.log.live; free >= size && free > bestFree {
				bestFree, dest = free, b
			}
		}
		s.mu.Unlock()
	}
	if dest < 0 {
		return ErrNotEnoughSrvs
	}
	return c.promote(key, dest, true)
}

// promote makes dest the master of key, sourcing the payload from
// dest's buffered backup replica. When demoteOld is set, the previous
// master keeps a backup copy (so the replication factor is preserved
// without any transfer); otherwise the old master is gone (crash
// recovery).
func (c *Cluster) promote(key string, dest simnet.NodeID, demoteOld bool) error {
	p, ok := c.placeGet(key)
	if !ok {
		return ErrNotFound
	}
	oldMaster := p.master
	ms := c.Server(oldMaster)
	ds := c.Server(dest)
	if ds == nil {
		return ErrNoSuchServer
	}

	// Grab the object state from the old master (meta) and the payload
	// from dest's local replica.
	var obj *object
	var alive bool
	if ms != nil {
		ms.mu.Lock()
		alive = !ms.crashed
		if o, found := ms.log.get(key); found {
			cp := *o
			obj = &cp
		}
		ms.mu.Unlock()
	}
	ds.mu.Lock()
	rep, buffered := ds.backups[key]
	var onDisk bool
	if !buffered {
		rep, onDisk = ds.disk[key]
	}
	ds.mu.Unlock()
	if !buffered && !onDisk {
		return ErrNotFound
	}
	blob := rep.blob
	if obj == nil {
		// Old master lost the in-memory copy (crash): rebuild from the
		// replica's own metadata, which carries version and tags —
		// including the write-back dirty flag — so no acknowledged
		// write loses its identity.
		m := rep.meta
		if m.Size == 0 {
			m.Size = blob.Size
		}
		obj = &object{blob: blob, meta: m}
	}

	// Control RPC old->coordinator->dest, then local rebuild at dest.
	c.net.Transfer(c.coordloc, dest, c.cfg.ControlMsgSize)
	if !buffered {
		// The replica was already flushed: reload it from disk first
		// (the slow path RAMCloud's buffered segments usually avoid).
		ds.node.DiskRead(obj.meta.Size)
	}
	c.env().Sleep(c.promotionTime(obj.meta.Size))

	ds.mu.Lock()
	if ds.crashed {
		ds.mu.Unlock()
		return ErrCrashed
	}
	ds.log.put(key, &object{blob: blob, meta: obj.meta})
	delete(ds.backups, key)
	delete(ds.disk, key)
	ds.mu.Unlock()

	if ms != nil && alive {
		ms.mu.Lock()
		ms.log.delete(key)
		if demoteOld {
			ms.backups[key] = replica{blob: blob, meta: obj.meta}
		}
		ms.mu.Unlock()
		if demoteOld {
			// The old master's copy goes to its disk, off the critical path.
			mnode := ms.node
			sz := obj.meta.Size
			c.env().Go(func() { mnode.DiskWrite(sz) })
		}
	}

	// Update placement: dest becomes master; old master replaces dest
	// in the backup list (if demoted).
	c.placeUpdate(key, func(p placement) placement {
		newBackups := make([]simnet.NodeID, 0, len(p.backups))
		for _, b := range p.backups {
			if b == dest {
				if demoteOld && alive {
					newBackups = append(newBackups, oldMaster)
				}
				continue
			}
			newBackups = append(newBackups, b)
		}
		return placement{master: dest, backups: newBackups, size: p.size}
	})

	c.statsMu.Lock()
	c.promotions++
	c.statsMu.Unlock()
	return nil
}

// MigrateFull is the baseline migration RAMCloud performs natively:
// the payload is copied over the network from the old master to an
// arbitrary destination. Kept for the ablation benchmark comparing it
// against MigrateToBackup.
func (c *Cluster) MigrateFull(key string, dest simnet.NodeID) error {
	p, ok := c.placeGet(key)
	if !ok {
		return ErrNotFound
	}
	ms := c.Server(p.master)
	ds := c.Server(dest)
	if ms == nil || ds == nil {
		return ErrNoSuchServer
	}
	ms.mu.Lock()
	o, found := ms.log.get(key)
	if !found || ms.crashed {
		ms.mu.Unlock()
		return ErrNotFound
	}
	cp := *o
	ms.mu.Unlock()

	c.net.Transfer(p.master, dest, cp.meta.Size+c.cfg.ControlMsgSize)
	c.env().Sleep(c.memCopyTime(cp.meta.Size))

	ds.mu.Lock()
	if ds.crashed {
		ds.mu.Unlock()
		return ErrCrashed
	}
	ds.log.put(key, &object{blob: cp.blob, meta: cp.meta})
	ds.mu.Unlock()

	ms.mu.Lock()
	ms.log.delete(key)
	ms.mu.Unlock()

	c.placeUpdate(key, func(p placement) placement {
		return placement{master: dest, backups: p.backups, size: p.size}
	})

	c.statsMu.Lock()
	c.fullMoves++
	c.statsMu.Unlock()
	return nil
}

// SetCrashDetectTimeout adjusts how long the coordinator takes to
// declare a silent server dead (charged at the head of Recover).
// Chaos experiments widen it to model realistic detection windows.
func (c *Cluster) SetCrashDetectTimeout(d time.Duration) {
	c.mu.Lock()
	c.cfg.CrashDetectTimeout = d
	c.mu.Unlock()
}

// Crash fail-stops the server on node. Masters held there become
// unavailable until RecoverNode promotes their backups.
func (c *Cluster) Crash(node simnet.NodeID) {
	s := c.Server(node)
	if s == nil {
		return
	}
	s.mu.Lock()
	s.crashed = true
	s.mu.Unlock()
}

// Restart models a backup machine rebooting after a fail-stop: RAM
// state (master log and buffered replicas) is gone, disk contents
// survive, and the server rejoins the cluster.
func (c *Cluster) Restart(node simnet.NodeID) {
	s := c.Server(node)
	if s == nil {
		return
	}
	s.mu.Lock()
	s.crashed = false
	s.log = newObjLog(c.cfg.SegmentSize)
	s.backups = make(map[string]replica)
	s.mu.Unlock()
}

// RecoverNode re-masters every object whose master copy was lost on
// the crashed node, RAMCloud-style: each object is rebuilt on a node
// holding a (disk/buffer) replica. Returns the number of objects
// recovered. Detection time is not charged — callers that model the
// coordinator noticing the crash use Recover.
func (c *Cluster) RecoverNode(crashed simnet.NodeID) int {
	n, _ := c.recoverCrashed(crashed, false)
	return n
}

// Recover is the full coordinator-driven recovery of a crashed node:
// it first charges the crash-detection timeout (the coordinator's RPC
// deadline expiring), then replays backups. It returns the number of
// objects re-mastered and the replay duration (detection excluded),
// both also surfaced through Stats.
func (c *Cluster) Recover(crashed simnet.NodeID) (int, time.Duration) {
	return c.recoverCrashed(crashed, true)
}

// recoverCrashed is the shared recovery path. Objects are replayed in
// sorted key order so identical runs recover identically; real
// RAMCloud parallelizes replay across recovery masters, which would
// shorten the window but make the virtual timeline depend on goroutine
// interleaving.
func (c *Cluster) recoverCrashed(crashed simnet.NodeID, withDetect bool) (int, time.Duration) {
	if withDetect && c.cfg.CrashDetectTimeout > 0 {
		c.env().Sleep(c.cfg.CrashDetectTimeout)
	}
	start := c.env().Now()
	var victims []string
	for _, sh := range c.shards {
		sh.mu.Lock()
		for k, p := range sh.places {
			if p.master == crashed {
				victims = append(victims, k)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(victims)
	n := 0
	for _, key := range victims {
		p, ok := c.placeGet(key)
		if !ok {
			continue
		}
		var dest simnet.NodeID = -1
		for _, b := range p.backups {
			s := c.Server(b)
			if s == nil {
				continue
			}
			s.mu.Lock()
			_, buffered := s.backups[key]
			_, onDisk := s.disk[key]
			ok := !s.crashed && (buffered || onDisk)
			s.mu.Unlock()
			if ok {
				dest = b
				break
			}
		}
		if dest < 0 {
			continue
		}
		if err := c.promote(key, dest, false); err == nil {
			n++
		}
	}
	dur := c.env().Now() - start
	c.statsMu.Lock()
	c.recovered += int64(n)
	c.recoveries++
	c.recoveryTime += dur
	c.lastRecovery = dur
	c.statsMu.Unlock()
	return n, dur
}
