package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/workload"
)

// AblationWriteback quantifies the shadow-object write-back design
// (§6.2): with it, the Load phase of a cacheable write costs a
// constant ≈11 ms placeholder; without it, the payload goes to the
// RSDS synchronously. The paper claims write-back "is always
// beneficial even for small payloads".
func AblationWriteback(seed int64) *Table {
	t := &Table{
		Title:   "Ablation — write-back via shadow objects vs synchronous RSDS write",
		Headers: []string{"Output size", "Shadow write-back (L)", "Synchronous (L)", "Saving"},
	}
	sizes := []int64{1 << 10, 64 << 10, 1 << 20, 8 << 20}
	for _, size := range sizes {
		cfg := DefaultDeploy()
		cfg.Seed = seed
		d := NewDeployment(ModeOFC, cfg)
		fn := &faas.Function{Name: "wb", Tenant: "abl", MemoryBooked: 256 << 20, InputType: "none",
			Body: func(ctx *faas.Ctx) error {
				return ctx.Load(fmt.Sprintf("abl/out/%d", size), faas.Blob{Size: size}, faas.KindFinal)
			}}
		d.Register(fn)
		d.Platform.Advisor = alwaysCache{}
		var withWB time.Duration
		d.Run(func() {
			res := d.Platform.Invoke(&faas.Request{Function: fn})
			withWB = res.Load
		})
		// Synchronous path: same write, caching disabled.
		d2 := NewDeployment(ModeOFC, cfg)
		d2.Register(fn)
		d2.Platform.Advisor = neverCache{}
		var withoutWB time.Duration
		d2.Run(func() {
			res := d2.Platform.Invoke(&faas.Request{Function: fn})
			withoutWB = res.Load
		})
		t.Add(fmtSize(size), withWB, withoutWB, pct(improvement(withoutWB, withWB)))
	}
	t.Note = "paper §6.2: the shadow mechanism 'is always beneficial even for small payloads'"
	return t
}

type alwaysCache struct{}

func (alwaysCache) Advise(req *faas.Request) faas.Advice {
	return faas.Advice{Mem: 128 << 20, ShouldCache: true, Use: true}
}

type neverCache struct{}

func (neverCache) Advise(req *faas.Request) faas.Advice {
	return faas.Advice{Mem: 128 << 20, ShouldCache: false, Use: true}
}

// AblationMigration compares OFC's migration-by-promotion against
// RAMCloud's native full-transfer migration for the same aggregate
// sizes (§6.4's optimization).
func AblationMigration(seed int64) *Table {
	t := &Table{
		Title:   "Ablation — migration-by-promotion vs full object transfer",
		Headers: []string{"Aggregate", "Promotion", "Full transfer", "Speedup"},
	}
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(ModeOFC, cfg)
	sys := d.Sys
	sizes := []int64{8 << 20, 64 << 20, 256 << 20}
	type pair struct{ promo, full time.Duration }
	results := map[int64]pair{}
	d.Env.Go(func() {
		for i := range d.Workers {
			inv := sys.Platform.Invokers()[i]
			g := inv.SetCacheGrant(inv.Capacity())
			sys.KV.SetMemoryLimit(d.Workers[i], g)
		}
		for _, total := range sizes {
			n := int(total / (8 << 20))
			var p pair
			// Promotion.
			keys := make([]string, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("ablp/%d/%d", total, i)
				sys.KV.Write(sys.CtrlNode, keys[i], kvstore.Synthetic(8<<20), map[string]string{"kind": "input"}, d.Workers[0])
			}
			start := sys.Env.Now()
			for _, k := range keys {
				if err := sys.KV.MigrateToBackup(k); err != nil {
					panic(err)
				}
			}
			p.promo = time.Duration(sys.Env.Now() - start)
			for _, k := range keys {
				sys.KV.Evict(k)
			}
			// Full transfer.
			for i := range keys {
				keys[i] = fmt.Sprintf("ablf/%d/%d", total, i)
				sys.KV.Write(sys.CtrlNode, keys[i], kvstore.Synthetic(8<<20), map[string]string{"kind": "input"}, d.Workers[0])
			}
			start = sys.Env.Now()
			for _, k := range keys {
				if err := sys.KV.MigrateFull(k, d.Workers[1]); err != nil {
					panic(err)
				}
			}
			p.full = time.Duration(sys.Env.Now() - start)
			for _, k := range keys {
				sys.KV.Evict(k)
			}
			results[total] = p
		}
		sys.Env.Stop()
	})
	d.Env.Run()
	for _, s := range sizes {
		p := results[s]
		t.Add(fmtSize(s), p.promo, p.full, fmt.Sprintf("%.1fx", float64(p.full)/float64(p.promo)))
	}
	return t
}

// AblationRouting compares OFC's locality-aware routing against plain
// home-invoker hashing: with locality off, a cached input is usually
// mastered on a different node than the executing sandbox, turning
// local hits into remote hits.
func AblationRouting(seed int64) *Table {
	t := &Table{
		Title:   "Ablation — locality-aware routing vs home-invoker hashing",
		Headers: []string{"Routing", "Local hits", "Remote hits", "Mean E"},
	}
	spec := workload.SpecByName("wand_sepia")
	for _, locality := range []bool{true, false} {
		cfg := DefaultDeploy()
		cfg.Seed = seed
		d := NewDeployment(ModeOFC, cfg)
		fn := d.Suite.Build(spec, "ablr", 0)
		d.Register(fn)
		rng := rand.New(rand.NewSource(seed))
		pool := workload.NewInputPool(rng, "image", "ablr", []int64{64 << 10}, 6)
		d.Pretrain(spec, fn, pool, 300)
		if !locality {
			d.Platform.Router = nil // fall back to vanilla OWK routing
		}
		var meanE time.Duration
		d.Run(func() {
			pool.Stage(d.Writer)
			// Seed the cache from several nodes so masters spread out.
			for i, in := range pool.Inputs {
				restore := d.PinTo(d.Workers[i%len(d.Workers)])
				d.Platform.Invoke(workload.NewRequest(fn, spec, in, spec.GenArgs(rng)))
				restore()
			}
			d.Env.Sleep(2 * time.Second)
			var total time.Duration
			n := 24
			for i := 0; i < n; i++ {
				in := pool.Inputs[i%len(pool.Inputs)]
				res := d.Platform.Invoke(workload.NewRequest(fn, spec, in, spec.GenArgs(rng)))
				total += res.Extract
			}
			meanE = total / time.Duration(n)
		})
		stats := d.Sys.RC.Stats()
		name := "locality (OFC §6.5)"
		if !locality {
			name = "hash-only (vanilla OWK)"
		}
		t.Add(name, stats.LocalHits, stats.Hits-stats.LocalHits, meanE)
	}
	return t
}

// AblationIntervalBump measures the §5.3 conservative next-interval
// bump. On inputs the model trained on, predictions are exact and the
// bump only costs memory; the protection shows on *unseen* inputs
// (distribution shift), where raw predictions underprovision and
// trigger OOM retries.
func AblationIntervalBump(seed int64) *Table {
	t := &Table{
		Title:   "Ablation — conservative next-interval bump vs raw prediction",
		Headers: []string{"Policy", "Inputs", "Invocations", "OOM retries", "Mean sandbox MB"},
	}
	spec := workload.SpecByName("wand_denoise")
	for _, unseen := range []bool{false, true} {
		for _, bump := range []bool{true, false} {
			cfg := DefaultDeploy()
			cfg.Seed = seed
			d := NewDeployment(ModeOFC, cfg)
			fn := d.Suite.Build(spec, "ablb", 0)
			d.Register(fn)
			rng := rand.New(rand.NewSource(seed))
			trainPool := workload.NewInputPool(rng, "image", "ablb-tr", []int64{32 << 10, 128 << 10, 1 << 20}, 4)
			d.Pretrain(spec, fn, trainPool, 300)
			evalPool := trainPool
			if unseen {
				// Fresh inputs between and beyond the trained sizes.
				evalPool = workload.NewInputPool(rng, "image", "ablb-ev", []int64{64 << 10, 512 << 10, 2 << 20}, 4)
			}
			if !bump {
				d.Platform.Advisor = rawAdvisor{inner: d.Sys.Pred}
			}
			var totalMem int64
			n := 100
			d.Run(func() {
				evalPool.Stage(d.Writer)
				for i := 0; i < n; i++ {
					in := evalPool.Pick()
					res := d.Platform.Invoke(workload.NewRequest(fn, spec, in, spec.GenArgs(rng)))
					totalMem += res.InitialMem
				}
			})
			stats := d.Platform.Stats()
			name := "next-interval bump (§5.3)"
			if !bump {
				name = "raw prediction"
			}
			inputs := "trained"
			if unseen {
				inputs = "unseen"
			}
			t.Add(name, inputs, stats.Invocations, stats.Retries, (totalMem/int64(n))>>20)
		}
	}
	t.Note = "the §5.3 bump buys OOM protection on unseen inputs for one interval of memory"
	return t
}

// rawAdvisor undoes the predictor's conservative bump by one interval.
type rawAdvisor struct{ inner faas.Advisor }

func (r rawAdvisor) Advise(req *faas.Request) faas.Advice {
	adv := r.inner.Advise(req)
	if adv.Use {
		adv.Mem -= 16 << 20
	}
	return adv
}

// AblationKeepAlive sweeps the sandbox keep-alive window (§2.2.1: 10
// min in OWK, 20 in Azure): shorter windows reclaim memory sooner but
// reintroduce cold starts; OFC's hoarding depends on the idle
// sandboxes existing at all.
func AblationKeepAlive(seed int64) *Table {
	t := &Table{
		Title:   "Ablation — sandbox keep-alive window",
		Headers: []string{"Keep-alive", "Invocations", "Cold starts", "Mean latency", "Peak cache grant"},
	}
	spec := workload.SpecByName("wand_rotate")
	for _, keep := range []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute} {
		opts := core.DefaultOptions()
		opts.Seed = seed
		opts.FaaS.KeepAlive = keep
		sys := core.NewSystem(opts)
		su := workload.NewSuite()
		fn := su.Build(spec, "ka", 0)
		sys.Register(fn)
		rng := rand.New(rand.NewSource(seed))
		pool := workload.NewInputPool(rng, "image", "ka", []int64{32 << 10}, 3)
		sys.Trainer.Pretrain(fn, workload.TrainingSamples(spec, fn, pool, 300, rng, sys.RSDS.Profile()))
		fl := workload.NewFaaSLoad(sys.Env, sys.Platform, seed+3)
		// Arrivals sparser than the shortest keep-alive: 2.5-minute mean.
		fl.AddFunctionTenant("ka", spec, fn, pool, 150*time.Second, false)
		var peakGrant int64
		sys.Env.SetHorizon(32 * time.Minute)
		sys.Start()
		sys.Env.Every(15*time.Second, func() bool {
			if g := sys.CacheGrantBytes(); g > peakGrant {
				peakGrant = g
			}
			return true
		})
		sys.Env.Go(func() {
			pool.Stage(workload.RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode})
			fl.Start(30 * time.Minute)
		})
		sys.Env.Run()
		rep := fl.Reports()[0]
		mean := time.Duration(0)
		if rep.Invocations > 0 {
			mean = rep.TotalExec / time.Duration(rep.Invocations)
		}
		t.Add(keep.String(), rep.Invocations, rep.ColdStarts, mean, fmtSize(peakGrant))
	}
	t.Note = "shorter keep-alive → more cold starts and a smaller hoardable pool (§2.2.1's trade-off)"
	return t
}

// AblationConsistency compares the §6.2 strong path (synchronous
// shadow + eager persistor) against the relaxed opt-out (cache-only
// write, lazy write-back) on the write critical path.
func AblationConsistency(seed int64) *Table {
	t := &Table{
		Title:   "Ablation — strong (shadow) vs relaxed (§6.2 opt-out) write path",
		Headers: []string{"Mode", "Output", "Load phase", "RSDS eager?"},
	}
	const size = 256 << 10
	for _, relaxed := range []bool{false, true} {
		cfg := DefaultDeploy()
		cfg.Seed = seed
		d := NewDeployment(ModeOFC, cfg)
		if relaxed {
			d.Sys.RC.SetRelaxed("rx/")
		}
		fn := &faas.Function{Name: "cw", Tenant: "abl", MemoryBooked: 512 << 20, InputType: "none",
			Body: func(ctx *faas.Ctx) error {
				return ctx.Load("rx/out", faas.Blob{Size: size}, faas.KindFinal)
			}}
		d.Register(fn)
		d.Platform.Advisor = alwaysCache{}
		var load time.Duration
		var eager bool
		d.Run(func() {
			res := d.Platform.Invoke(&faas.Request{Function: fn})
			load = res.Load
			_, eager = d.Store.MetaOf("rx/out")
		})
		mode := "strong (shadow + persistor)"
		if relaxed {
			mode = "relaxed (lazy write-back)"
		}
		t.Add(mode, fmtSize(size), load, fmt.Sprintf("%v", eager))
	}
	return t
}
