package experiments

import "testing"

// TestResilienceDeterministic is the runtime witness behind the
// ofc-lint static gate: with the same seed, a full experiment — FaaS
// platform, cache, chaos schedule, recovery — must reproduce its
// metrics output byte for byte. Any host-clock read, global-rand draw,
// or map-ordering leak in the simulated stack shows up here as a diff.
func TestResilienceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs the resilience drill twice")
	}
	tab1, healthy1 := Resilience(3)
	tab2, healthy2 := Resilience(3)
	if healthy1 != healthy2 {
		t.Fatalf("health verdict differs across identical seeds: %v vs %v", healthy1, healthy2)
	}
	if s1, s2 := tab1.String(), tab2.String(); s1 != s2 {
		t.Errorf("table output differs across identical seeds:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", s1, s2)
	}
	if c1, c2 := tab1.CSV(), tab2.CSV(); c1 != c2 {
		t.Errorf("CSV output differs across identical seeds:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", c1, c2)
	}
	// A different seed must still be healthy but is allowed to (and in
	// practice does) produce different numbers — guard against the
	// degenerate case where the metrics are seed-independent constants.
	tab3, healthy3 := Resilience(4)
	if !healthy3 {
		t.Errorf("resilience run with seed 4 unhealthy:\n%s", tab3)
	}
	if tab3.String() == tab1.String() {
		t.Errorf("seeds 3 and 4 produced identical tables; metrics look seed-independent")
	}
}
