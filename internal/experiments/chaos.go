package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ofc/internal/chaos"
	"ofc/internal/faas"
	"ofc/internal/workload"
)

// ChaosResult is the evidence the chaos drill collects: every
// invocation must complete, no acknowledged final output may be lost,
// and the degradation (hit-ratio dip, latency inflation, RSDS
// fallbacks) must be bounded and measured.
type ChaosResult struct {
	Invocations int
	Failures    int
	Reroutes    int64

	Kills, Restarts int

	HealthyHit, FaultyHit float64
	HealthyP99, FaultyP99 time.Duration

	FallbackReads, FallbackWrites             int64
	CacheRetries, CacheTimeouts, BreakerTrips int64

	Recoveries   int64
	RecoveryTime time.Duration
	LastRecovery time.Duration

	Outputs     int
	LostOutputs int

	Applied []string
}

// Healthy reports whether the run degraded gracefully: no invocation
// failed, nothing acknowledged was lost, the fallback path actually
// carried traffic, and recovery ran.
func (r *ChaosResult) Healthy() bool {
	return r.Failures == 0 && r.LostOutputs == 0 &&
		r.FallbackReads+r.FallbackWrites > 0 && r.Recoveries > 0
}

// p99 returns the 99th-percentile of ds (nearest-rank).
func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := make([]time.Duration, len(ds))
	copy(s, ds)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*99 + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// Chaos runs a Figure-7-style read/transform/write workload under a
// kill-one-cache-node-per-minute rotation and reports how OFC degrades:
// invocations reroute around the dead invoker, reads fall back to the
// RSDS while the breaker is open, RAMCloud-style recovery re-masters
// the victim's objects, and no acknowledged final output is lost.
// The run is driven sequentially so a (seed) pair replays identically.
func Chaos(seed int64, quick bool) (*Table, *ChaosResult) {
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(ModeOFC, cfg)
	sys := d.Sys

	// A realistic multi-second detection window: between a kill and the
	// coordinator declaring the node dead, reads against lost masters
	// fail over to the RSDS (the degradation under measurement).
	const detect = 5 * time.Second
	sys.KV.SetCrashDetectTimeout(detect)

	const pace = 250 * time.Millisecond
	const downtime = 30 * time.Second
	period := time.Minute
	victims := d.Workers
	runFor := time.Duration(len(victims))*period + 30*time.Second
	if quick {
		victims = d.Workers[:2]
		runFor = time.Duration(len(victims))*period + 45*time.Second
	}
	sched := chaos.NewSchedule()
	sched.KillRotation(period, period, downtime, victims...)
	inj := sys.ApplyChaos(sched, seed)

	// downAt reports whether some victim is scheduled down at t (the
	// static fault windows classify invocations as healthy/faulty).
	downAt := func(t time.Duration) bool {
		for i := range victims {
			kill := period + time.Duration(i)*period
			if t >= kill && t < kill+downtime {
				return true
			}
		}
		return false
	}

	// The workload: read a staged input, transform, write one final
	// output per invocation under a driver-chosen key so the RSDS
	// ground truth can be checked object by object afterwards.
	var outKey string
	fn := &faas.Function{Name: "chaosfn", Tenant: "chaos", MemoryBooked: 256 << 20, InputType: "image",
		Body: func(ctx *faas.Ctx) error {
			if _, err := ctx.Extract(ctx.InputKeys()[0]); err != nil {
				return err
			}
			if err := ctx.Transform(3*time.Millisecond, 96<<20); err != nil {
				return err
			}
			return ctx.Load(outKey, faas.Blob{Size: 64 << 10}, faas.KindFinal)
		}}
	d.Register(fn)
	d.Platform.Advisor = alwaysCache{}

	rng := rand.New(rand.NewSource(seed))
	pool := workload.NewInputPool(rng, "image", "chaos/in", []int64{32 << 10, 64 << 10}, 3)

	res := &ChaosResult{}
	var outputs []string
	var healthyEL, faultyEL []time.Duration
	var healthyHits, healthyMisses, faultyHits, faultyMisses int64

	d.Run(func() {
		pool.Stage(d.Writer)
		for i := 0; time.Duration(d.Env.Now()) < runFor; i++ {
			in := pool.Inputs[i%len(pool.Inputs)]
			outKey = fmt.Sprintf("chaos/out/%d", i)
			start := time.Duration(d.Env.Now())
			before := sys.RC.Stats()
			r := d.Platform.Invoke(&faas.Request{Function: fn, InputKeys: []string{in.Key}, InputFeatures: in.Features})
			after := sys.RC.Stats()

			res.Invocations++
			if r.Err != nil {
				res.Failures++
			} else {
				outputs = append(outputs, outKey)
			}
			dh := (after.Hits + after.LocalHits) - (before.Hits + before.LocalHits)
			dm := after.Misses - before.Misses
			if downAt(start) {
				faultyEL = append(faultyEL, r.Extract+r.Load)
				faultyHits += dh
				faultyMisses += dm
			} else {
				healthyEL = append(healthyEL, r.Extract+r.Load)
				healthyHits += dh
				healthyMisses += dm
			}
			d.Env.Sleep(pace)
		}
		// Let the last victim's recovery and the persistors settle
		// before the Run drain stops the clock.
		d.Env.Sleep(3 * time.Second)
	})

	ratio := func(h, m int64) float64 {
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}
	res.HealthyHit = ratio(healthyHits, healthyMisses)
	res.FaultyHit = ratio(faultyHits, faultyMisses)
	res.HealthyP99 = p99(healthyEL)
	res.FaultyP99 = p99(faultyEL)

	cs := sys.RC.Stats()
	res.FallbackReads, res.FallbackWrites = cs.FallbackReads, cs.FallbackWrites
	res.CacheRetries, res.CacheTimeouts = cs.CacheRetries, cs.CacheTimeouts
	res.BreakerTrips = cs.BreakerTrips
	ks := sys.KV.Stats()
	res.Recoveries, res.RecoveryTime, res.LastRecovery = ks.Recoveries, ks.RecoveryTime, ks.LastRecovery
	res.Reroutes = d.Platform.Stats().Reroutes
	res.Kills, res.Restarts = len(victims), len(victims)
	res.Applied = inj.Applied()

	// Zero-data-loss check against the RSDS ground truth: every final
	// output acknowledged to an invoker must be persisted (not a
	// dangling shadow) once the run has drained.
	res.Outputs = len(outputs)
	for _, key := range outputs {
		m, ok := d.Store.MetaOf(key)
		if !ok || m.IsShadow() || m.Size == 0 {
			res.LostOutputs++
		}
	}

	t := &Table{
		Title:   "Chaos drill — kill one cache node per minute under a Figure-7-style workload",
		Headers: []string{"Metric", "Value"},
	}
	t.Add("invocations", fmt.Sprintf("%d (%d failed)", res.Invocations, res.Failures))
	t.Add("fault events", fmt.Sprintf("%d kills, %d restarts (downtime %v)", res.Kills, res.Restarts, downtime))
	t.Add("controller reroutes", res.Reroutes)
	t.Add("hit ratio", fmt.Sprintf("healthy %s, under faults %s", pct(res.HealthyHit), pct(res.FaultyHit)))
	t.Add("p99 E+L", fmt.Sprintf("healthy %s, under faults %s", fmtDur(res.HealthyP99), fmtDur(res.FaultyP99)))
	t.Add("RSDS fallbacks", fmt.Sprintf("%d reads, %d writes", res.FallbackReads, res.FallbackWrites))
	t.Add("cache op retries", fmt.Sprintf("%d (%d timeouts)", res.CacheRetries, res.CacheTimeouts))
	t.Add("breaker trips", res.BreakerTrips)
	t.Add("crash recoveries", fmt.Sprintf("%d, total %s, last %s", res.Recoveries, fmtDur(res.RecoveryTime), fmtDur(res.LastRecovery)))
	t.Add("final outputs", fmt.Sprintf("%d persisted, %d lost", res.Outputs-res.LostOutputs, res.LostOutputs))
	t.Note = "graceful degradation: every invocation completes and no acknowledged write is lost"
	return t, res
}
