package experiments

import (
	"strings"
	"testing"
)

// TestOverloadDrillHealthy runs the combined overload+crash drill and
// checks the graceful-degradation contract end to end: load is shed,
// the state machine reaches Shed and re-enters Normal (hysteresis, no
// flapping), retries stay under the budget cap, the non-spiking
// tenants keep their goodput, and no acknowledged write is lost.
func TestOverloadDrillHealthy(t *testing.T) {
	table, res := Overload(1, true)
	t.Log("\n" + table.String())
	if res.Invocations == 0 {
		t.Fatal("no invocations ran")
	}
	if res.LostOutputs > 0 {
		t.Fatalf("%d acknowledged outputs lost", res.LostOutputs)
	}
	if res.Shed == 0 {
		t.Error("gate never shed load; the spike did not overload the system")
	}
	if !res.ReachedShed {
		t.Errorf("state machine never reached shed: %v", res.Transitions)
	}
	if res.FinalState != "normal" {
		t.Errorf("state machine did not re-enter normal: final=%s transitions=%v", res.FinalState, res.Transitions)
	}
	if n := len(res.Transitions); n < 2 || n > 16 {
		t.Errorf("suspicious transition count %d (flapping?): %v", n, res.Transitions)
	}
	if got, cap := float64(res.TotalRetries()), res.BudgetCap; got > cap {
		t.Errorf("retry storm: %v retries > budget cap %v", got, cap)
	}
	for _, tl := range res.Tenants {
		if tl.Good == 0 {
			t.Errorf("tenant %s starved: %+v", tl.Name, tl)
		}
		if tl.Name != res.SpikeTenant && tl.Good*10 < tl.Offered*6 {
			t.Errorf("innocent tenant %s lost goodput: %+v", tl.Name, tl)
		}
	}
	if !res.Healthy() {
		t.Errorf("Healthy() = false\n%s", table.String())
	}
}

// TestOverloadDeterministic replays the drill with the same seed and
// requires the full report — every counter, latency and transition
// timestamp — to be identical.
func TestOverloadDeterministic(t *testing.T) {
	t1, _ := Overload(7, true)
	t2, _ := Overload(7, true)
	if t1.String() != t2.String() {
		t.Errorf("same seed, different runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", t1.String(), t2.String())
	}
}

// TestOverloadTimelineShape pins the hysteresis contract on the
// recorded transitions: the first leaves normal, each transition's
// source matches the previous target (a connected walk), downward
// moves are single steps, and the walk ends back at normal.
func TestOverloadTimelineShape(t *testing.T) {
	_, res := Overload(3, true)
	order := map[string]int{"normal": 0, "brownout": 1, "shed": 2}
	prev := "normal"
	for i, tr := range res.Transitions {
		parts := strings.Split(tr, "->")
		if len(parts) != 2 {
			t.Fatalf("malformed transition %q", tr)
		}
		from, to := parts[0], parts[1]
		if from != prev {
			t.Errorf("transition %d (%s) does not chain from previous state %s", i, tr, prev)
		}
		if order[to] < order[from] && order[from]-order[to] != 1 {
			t.Errorf("downward transition %q skips a level", tr)
		}
		prev = to
	}
	if prev != "normal" {
		t.Errorf("walk ends at %s, want normal (transitions: %v)", prev, res.Transitions)
	}
}
