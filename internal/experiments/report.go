package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment result: a title, column headers and
// rows, printable in the same form the paper reports.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// Add appends a row of stringable cells.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = fmtDur(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// fmtDur renders durations with sensible units for the magnitude.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	if t.Note != "" {
		sb.WriteString(t.Note + "\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// pct formats a ratio as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// improvement is (base-new)/base.
func improvement(base, new time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return float64(base-new) / float64(base)
}

// CSV renders the table as RFC-4180-ish CSV (header + rows), for
// feeding plots.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
