package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/metrics"
	"ofc/internal/mltree"
	"ofc/internal/objstore"
	"ofc/internal/sim"
	"ofc/internal/workload"
)

// mlSizesFor picks the input-size grid per media type (the FaaSLoad
// dataset shapes).
func mlSizesFor(inputType string) []int64 {
	switch inputType {
	case "image":
		return []int64{1 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 1 << 20, 3 << 20}
	case "audio":
		return []int64{256 << 10, 1 << 20, 4 << 20, 8 << 20}
	case "video":
		return []int64{2 << 20, 5 << 20, 8 << 20}
	default:
		return []int64{512 << 10, 2 << 20, 5 << 20, 10 << 20}
	}
}

// functionDataset builds the offline dataset of one function at the
// given interval size.
func functionDataset(spec *workload.Spec, n int, iv core.Intervals, seed int64) *mltree.Dataset {
	rng := rand.New(rand.NewSource(seed))
	su := workload.NewSuite()
	fn := su.Build(spec, "ml", 0)
	pool := workload.NewInputPool(rng, spec.InputType, "ml/"+spec.Name, mlSizesFor(spec.InputType), 4)
	samples := workload.TrainingSamples(spec, fn, pool, n, rng, objstore.SwiftProfile())
	schema := core.NewFeatureSchema(fn)
	d := mltree.NewDataset(schema.Attributes(), iv.ClassNames())
	for _, s := range samples {
		d.Add(s.Vals, iv.ClassOf(s.PeakMem))
	}
	return d
}

// Table1Config tunes the accuracy sweep.
type Table1Config struct {
	SamplesPerFunction int
	Folds              int
	ForestSize         int
	Seed               int64
}

// DefaultTable1Config mirrors the paper (cross-validation over the
// per-function datasets).
func DefaultTable1Config() Table1Config {
	return Table1Config{SamplesPerFunction: 450, Folds: 10, ForestSize: 20, Seed: 1}
}

// Table1 reproduces Table 1: exact and exact-or-over accuracy of four
// decision-tree algorithms at 32/16/8 MB intervals, averaged over the
// 19 functions.
func Table1(cfg Table1Config) *Table {
	t := &Table{
		Title:   "Table 1 — ML algorithms vs interval sizes (fractions averaged over 19 functions)",
		Headers: []string{"Interval", "Algorithm", "Exact (%)", "Exact-or-over (%)"},
	}
	intervals := []int64{32 << 20, 16 << 20, 8 << 20}
	algos := func(seed int64) []mltree.Learner {
		return []mltree.Learner{
			mltree.HoeffdingLearner{},
			mltree.NewJ48(),
			&mltree.RandomForest{Trees: cfg.ForestSize, MinLeaf: 1, Seed: seed},
			mltree.NewRandomTree(seed),
		}
	}
	specs := workload.Specs()
	for _, ivSize := range intervals {
		iv := core.Intervals{Size: ivSize, Max: 2 << 30}
		for ai, learner := range algos(cfg.Seed) {
			var exact, eo float64
			for si, spec := range specs {
				d := functionDataset(spec, cfg.SamplesPerFunction, iv, cfg.Seed+int64(si))
				conf := mltree.CrossValidate(algos(cfg.Seed + int64(si))[ai], d, cfg.Folds, cfg.Seed)
				exact += conf.Accuracy()
				eo += conf.EOAccuracy()
			}
			n := float64(len(specs))
			t.Add(fmt.Sprintf("%dMB", ivSize>>20), learner.Name(),
				fmt.Sprintf("%.2f", exact/n*100), fmt.Sprintf("%.2f", eo/n*100))
		}
	}
	return t
}

// BenefitResult reproduces §7.1.1's cache-benefit classifier scores.
type BenefitResult struct {
	Precision, Recall, F1 float64
}

// CacheBenefit evaluates the J48 benefit classifier over all
// functions' offline samples.
func CacheBenefit(samplesPerFn int, seed int64) (*Table, BenefitResult) {
	rng := rand.New(rand.NewSource(seed))
	var totalP, totalR, totalF float64
	n := 0
	t := &Table{
		Title:   "§7.1.1 — caching-benefit classifier (J48)",
		Headers: []string{"Function", "Precision", "Recall", "F-measure"},
	}
	for _, spec := range workload.Specs() {
		su := workload.NewSuite()
		fn := su.Build(spec, "ml", 0)
		pool := workload.NewInputPool(rng, spec.InputType, "bf/"+spec.Name, mlSizesFor(spec.InputType), 4)
		samples := workload.TrainingSamples(spec, fn, pool, samplesPerFn, rng, objstore.SwiftProfile())
		schema := core.NewFeatureSchema(fn)
		d := mltree.NewDataset(schema.Attributes(), []string{"no", "yes"})
		pos := 0
		for _, s := range samples {
			label := 0
			if s.BenefitLabel() {
				label = 1
				pos++
			}
			d.Add(s.Vals, label)
		}
		if pos == 0 || pos == len(samples) {
			// Degenerate (always/never beneficial): trivially learnable;
			// count as perfect, as Weka does for single-class data.
			t.Add(spec.Name, "1.00", "1.00", "1.00")
			totalP++
			totalR++
			totalF++
			n++
			continue
		}
		conf := mltree.CrossValidate(mltree.NewJ48(), d, 10, seed)
		p, r, f := conf.Precision(1), conf.Recall(1), conf.F1(1)
		t.Add(spec.Name, fmt.Sprintf("%.3f", p), fmt.Sprintf("%.3f", r), fmt.Sprintf("%.3f", f))
		totalP += p
		totalR += r
		totalF += f
		n++
	}
	res := BenefitResult{Precision: totalP / float64(n), Recall: totalR / float64(n), F1: totalF / float64(n)}
	t.Note = fmt.Sprintf("average: precision=%.3f recall=%.3f F-measure=%.3f (paper: 0.988 / 0.986 / 0.987)",
		res.Precision, res.Recall, res.F1)
	return t, res
}

// Figure5Result carries the error-distribution statistics.
type Figure5Result struct {
	// Histogram maps the signed error in intervals to its weight.
	Histogram map[int]float64
	// WithinThree is the fraction of overpredictions within 3
	// intervals of the truth (paper: 90%).
	WithinThree float64
	// AvgOverWasteMB is the average memory waste of overpredictions
	// (paper: 26.8 MB at 16 MB intervals).
	AvgOverWasteMB float64
}

// Figure5 reproduces the J48/16MB prediction-error distribution over
// all functions combined.
func Figure5(samplesPerFn int, seed int64) (*Table, Figure5Result) {
	iv := core.Intervals{Size: 16 << 20, Max: 2 << 30}
	hist := map[int]float64{}
	for si, spec := range workload.Specs() {
		d := functionDataset(spec, samplesPerFn, iv, seed+int64(si))
		conf := mltree.CrossValidate(mltree.NewJ48(), d, 10, seed)
		for e, w := range conf.ErrorHistogram() {
			hist[e] += w
		}
	}
	var over, overWithin3, overWasteIntervals, total float64
	for e, w := range hist {
		total += w
		if e > 0 {
			over += w
			overWasteIntervals += float64(e) * w
			if e <= 3 {
				overWithin3 += w
			}
		}
	}
	res := Figure5Result{Histogram: hist}
	if over > 0 {
		res.WithinThree = overWithin3 / over
		res.AvgOverWasteMB = overWasteIntervals / over * 16
	}
	t := &Table{
		Title:   "Figure 5 — distribution of memory-prediction errors (J48, 16 MB intervals, all functions)",
		Headers: []string{"Error (MB)", "Fraction"},
		Note: fmt.Sprintf("overpredictions within 3 intervals: %s (paper 90%%); mean overprediction waste: %.1f MB (paper 26.8 MB)",
			pct(res.WithinThree), res.AvgOverWasteMB),
	}
	var errs []int
	for e := range hist {
		errs = append(errs, e)
	}
	sort.Ints(errs)
	for _, e := range errs {
		t.Add(fmt.Sprintf("%+d", e*16), fmt.Sprintf("%.4f", hist[e]/total))
	}
	return t, res
}

// Figure6Result carries prediction-latency statistics (host time: this
// is a real algorithm measurement, not a simulation).
type Figure6Result struct {
	Median, P99 time.Duration
}

// Figure6 measures single-prediction latency for J48 across interval
// sizes, and RandomForest for the §7.1.2 comparison.
func Figure6(samplesPerFn int, seed int64) (*Table, map[string]Figure6Result) {
	t := &Table{
		Title:   "Figure 6 — prediction latency (host time)",
		Headers: []string{"Model", "Interval", "Median", "p99"},
	}
	out := map[string]Figure6Result{}
	spec := workload.SpecByName("wand_blur")
	measure := func(model mltree.Classifier, d *mltree.Dataset) Figure6Result {
		var h metrics.Histogram
		for i := 0; i < 4000; i++ {
			inst := d.Instances[i%d.Len()]
			start := time.Now() //lint:allow wallclock Figure 6 measures real prediction latency on the host CPU, not simulated time
			model.Classify(inst.Vals)
			h.Add(time.Since(start)) //lint:allow wallclock Figure 6 measures real prediction latency on the host CPU, not simulated time
		}
		return Figure6Result{Median: h.Median(), P99: h.P99()}
	}
	for _, ivSize := range []int64{8 << 20, 16 << 20, 32 << 20} {
		iv := core.Intervals{Size: ivSize, Max: 2 << 30}
		d := functionDataset(spec, samplesPerFn, iv, seed)
		model := mltree.NewJ48().Fit(d)
		r := measure(model, d)
		key := fmt.Sprintf("J48/%dMB", ivSize>>20)
		out[key] = r
		t.Add("J48", fmt.Sprintf("%dMB", ivSize>>20), r.Median, r.P99)
	}
	// RandomForest at 16 MB for the comparison (paper: 106 µs median).
	iv := core.Intervals{Size: 16 << 20, Max: 2 << 30}
	d := functionDataset(spec, samplesPerFn, iv, seed)
	forest := (&mltree.RandomForest{Trees: 30, MinLeaf: 1, Seed: seed}).Fit(d)
	r := measure(forest, d)
	out["RandomForest/16MB"] = r
	t.Add("RandomForest", "16MB", r.Median, r.P99)
	t.Note = "paper: J48/16MB median 3.19µs p99 12.54µs; RandomForest median 106.29µs"
	return t, out
}

// MaturationResult is §7.1.3's quickness distribution.
type MaturationResult struct {
	PerFunction      map[string]int
	Median, P75, P95 int
}

// Maturation streams law-generated invocations through the online
// trainer for each of the 19 functions and reports how many
// invocations each model needed to pass the §5.3 criteria.
func Maturation(seed int64) (*Table, MaturationResult) {
	res := MaturationResult{PerFunction: map[string]int{}}
	env := sim.NewEnv(seed)
	for si, spec := range workload.Specs() {
		pred := core.NewPredictor(core.DefaultPredictorConfig())
		trainer := core.NewModelTrainer(pred, env)
		rng := rand.New(rand.NewSource(seed + int64(si)))
		su := workload.NewSuite()
		fn := su.Build(spec, "mat", 0)
		pool := workload.NewInputPool(rng, spec.InputType, "mat/"+spec.Name, mlSizesFor(spec.InputType), 4)
		samples := workload.TrainingSamples(spec, fn, pool, 600, rng, objstore.SwiftProfile())
		matured := 0
		for i, s := range samples {
			trainer.Observe(fn, &faas.Request{Function: fn}, s)
			if pred.Mature(fn) {
				matured = i + 1
				break
			}
		}
		if matured == 0 {
			matured = len(samples) + 1 // did not mature in the window
		}
		res.PerFunction[spec.Name] = matured
	}
	var all []int
	for _, v := range res.PerFunction {
		all = append(all, v)
	}
	sort.Ints(all)
	res.Median = all[len(all)/2]
	res.P75 = all[len(all)*3/4]
	res.P95 = all[len(all)*95/100]
	t := &Table{
		Title:   "§7.1.3 — model maturation quickness (invocations to maturity)",
		Headers: []string{"Function", "Invocations"},
		Note: fmt.Sprintf("median=%d p75=%d p95=%d (paper: median 100, 75%%<250, 95%%<450)",
			res.Median, res.P75, res.P95),
	}
	var names []string
	for n := range res.PerFunction {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.Add(n, res.PerFunction[n])
	}
	return t, res
}
