package experiments

import (
	"fmt"
	"time"
)

// Summary produces the one-screen reproduction scorecard: every
// headline quantity of the paper next to this repository's measured
// value, using quick experiment configurations (~1 minute total).
func Summary(seed int64) *Table {
	t := &Table{
		Title:   "Reproduction scorecard — paper vs this repository",
		Headers: []string{"Quantity", "Paper", "Measured"},
	}

	// Motivation: E&L share on an S3-like store.
	_, f3 := Figure3(seed)
	var s3Share, mrShare float64
	for _, r := range f3 {
		if r.Workload == "sharp_resize" && r.Size == 128<<10 && r.Backend == "S3" {
			s3Share = r.ELShare()
		}
		if r.Workload == "map_reduce" && r.Size == 30<<20 && r.Backend == "S3" {
			mrShare = r.ELShare()
		}
	}
	t.Add("E&L share, sharp_resize 128kB on S3", "up to 97%", pct(s3Share))
	t.Add("E&L share, map_reduce 30MB on S3", "≈52%", pct(mrShare))

	// ML: J48 accuracy at 16 MB (quick CV) and benefit classifier.
	cfg := Table1Config{SamplesPerFunction: 200, Folds: 5, ForestSize: 8, Seed: seed}
	tab1 := Table1(cfg)
	for _, row := range tab1.Rows {
		if row[0] == "16MB" && row[1] == "J48" {
			t.Add("J48 exact/EO accuracy @16MB", "83.4% / 92.7%", row[2]+"% / "+row[3]+"%")
		}
	}
	_, benefit := CacheBenefit(200, seed)
	t.Add("benefit classifier F-measure", "0.987", fmt.Sprintf("%.3f", benefit.F1))

	// Maturation.
	_, mat := Maturation(seed)
	t.Add("maturation median (invocations)", "100", fmt.Sprint(mat.Median))

	// Figure 7 headline improvements (quick grid).
	_, rows := Figure7(true, seed)
	base := map[string]time.Duration{}
	for _, r := range rows {
		if r.Scenario == ScenSwift {
			base[r.Workload] = r.Total()
		}
	}
	var bestSingle, bestPipe float64
	for _, r := range rows {
		if r.Scenario != ScenLH {
			continue
		}
		imp := improvement(base[r.Workload], r.Total())
		switch r.Workload {
		case "map_reduce", "THIS", "IMAD", "ImageProcessing":
			if imp > bestPipe {
				bestPipe = imp
			}
		default:
			if imp > bestSingle {
				bestSingle = imp
			}
		}
	}
	t.Add("best single-stage LH vs Swift", "−82%", "−"+pct(bestSingle))
	t.Add("best pipeline LH vs Swift", "−60%", "−"+pct(bestPipe))

	// Micro constants.
	_, f8 := Figure8(seed)
	for _, r := range f8 {
		if r.Scenario == "Sc1" && r.Size == 1<<10 {
			t.Add("cache shrink, no data movement (Sc1)", "≈289µs", fmtDur(r.ScalingTime))
		}
	}
	_, mig := MigrationSeries(seed)
	t.Add("promotion of 1GB aggregate", "13.5ms", fmtDur(mig[1<<30]))

	// Quick macro.
	mc := DefaultMacroConfig()
	mc.Window = 8 * time.Minute
	mc.Seed = seed
	swift := mc
	swift.Mode = ModeSwift
	sres := RunMacro(swift)
	ores := RunMacro(mc)
	t.Add("macro improvement (8 tenants)", "23.9–79.8%", pct(improvement(sres.TotalExec(), ores.TotalExec()))+" (aggregate)")
	t.Add("macro cache hit ratio", "93.1–98.9%", pct(ores.HitRatio))
	t.Add("macro failed invocations", "0", fmt.Sprint(ores.Platform.Failures))

	return t
}
