package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel evaluates fn for every index in [0, n) on a bounded worker
// pool and returns the results in index order, so output is identical
// to a sequential loop regardless of scheduling. Each call must be
// self-contained — its own sim.Env, seed and deployment — which every
// experiment cell in this package is: the pool exists to spread
// independent simulations across host cores, never to share simulated
// state. workers <= 0 means GOMAXPROCS.
func Parallel[T any](n, workers int, fn func(int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
