package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/faas"
	"ofc/internal/trace"
	"ofc/internal/workload"
)

// TraceResult carries the trace drill's raw material alongside the
// rendered table: the canonicalized spans (ready for export or golden
// comparison), the recorder's drop count and the per-phase breakdown.
type TraceResult struct {
	Spans     []trace.Span
	Drops     int64
	Breakdown []trace.PhaseStat
}

// TraceDrill runs a fixed invocation sequence on a trace-enabled OFC
// deployment — cold miss with admission, local cache hit, remote hit
// on a second worker, then a direct §6.4 reclaim probe — and returns
// the per-phase latency breakdown over every recorded span. At a fixed
// seed the canonicalized spans are bit-identical run to run (see the
// determinism contract in package trace), which the golden-trace
// regression test pins.
func TraceDrill(seed int64) (*Table, TraceResult) {
	spec := workload.SpecByName("wand_resize")
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(ModeOFC, cfg)
	tr := d.Sys.EnableTracing(trace.Config{})
	fn := d.Suite.Build(spec, "trace", 0)
	d.Register(fn)
	rng := rand.New(rand.NewSource(seed))
	pool := workload.NewInputPool(rng, spec.InputType, "trace/in", []int64{64 << 10}, 1)
	d.Pretrain(spec, fn, pool, 400)
	args := spec.GenArgs(rng)
	d.Run(func() {
		pool.Stage(d.Writer)
		in := pool.Inputs[0]
		req := func() *faas.Request { return workload.NewRequest(fn, spec, in, args) }
		restore := d.PinTo(d.Workers[0])
		d.Platform.Invoke(req()) // cold miss + cache admission on worker 0
		d.Env.Sleep(2 * time.Second)
		d.Platform.Invoke(req()) // local hit
		restore()
		restore = d.PinTo(d.Workers[1])
		d.Platform.Invoke(req()) // remote hit (promotion from worker 0)
		restore()
		if a := d.Sys.Gov.Agent(d.Workers[0]); a != nil {
			a.Reclaim(4 << 10) // exercise the fast-reclaim span
		}
	})
	spans := trace.Canonicalize(tr.Snapshot())
	res := TraceResult{Spans: spans, Drops: tr.Drops(), Breakdown: trace.Breakdown(spans)}
	t := &Table{
		Title:   "Trace drill — per-phase latency breakdown (cold miss / local hit / remote hit / reclaim)",
		Headers: []string{"Phase", "Count", "Total", "Mean", "P50", "P99", "Max"},
	}
	for _, st := range res.Breakdown {
		t.Add(st.Phase, st.Count, time.Duration(st.Total), time.Duration(st.Mean),
			time.Duration(st.P50), time.Duration(st.P99), time.Duration(st.Max))
	}
	t.Note = fmt.Sprintf("%d spans recorded, %d dropped", len(spans), res.Drops)
	return t, res
}
