package experiments

import "testing"

// TestChaosGracefulDegradation runs the quick chaos drill and checks
// the graceful-degradation contract: every invocation completes, no
// acknowledged final output is lost, the RSDS fallback path actually
// carried traffic while masters were dead, and RAMCloud-style recovery
// ran and was timed.
func TestChaosGracefulDegradation(t *testing.T) {
	_, res := Chaos(1, true)
	if !res.Healthy() {
		t.Errorf("chaos drill unhealthy: failures=%d lost=%d fallbacks=%d/%d recoveries=%d",
			res.Failures, res.LostOutputs, res.FallbackReads, res.FallbackWrites, res.Recoveries)
	}
	if res.Invocations == 0 || res.Outputs != res.Invocations {
		t.Errorf("outputs=%d of %d invocations", res.Outputs, res.Invocations)
	}
	if res.Kills != 2 || res.Restarts != 2 {
		t.Errorf("kills=%d restarts=%d, want 2/2 (quick mode)", res.Kills, res.Restarts)
	}
	if res.FaultyHit >= res.HealthyHit {
		t.Errorf("hit ratio did not dip under faults: healthy=%v faulty=%v", res.HealthyHit, res.FaultyHit)
	}
	if res.RecoveryTime <= 0 || res.LastRecovery <= 0 {
		t.Errorf("recovery not timed: total=%v last=%v", res.RecoveryTime, res.LastRecovery)
	}
	if len(res.Applied) != 4 {
		t.Errorf("applied fault log has %d entries, want 4: %v", len(res.Applied), res.Applied)
	}
}

// TestChaosDeterministic replays the drill with the same seed: the
// rendered report (and hence every metric in it) must be byte-for-byte
// identical — the whole fault schedule runs on the virtual clock.
func TestChaosDeterministic(t *testing.T) {
	tab1, res1 := Chaos(7, true)
	tab2, res2 := Chaos(7, true)
	if s1, s2 := tab1.String(), tab2.String(); s1 != s2 {
		t.Errorf("reports diverge for identical seeds:\n--- run1\n%s\n--- run2\n%s", s1, s2)
	}
	if len(res1.Applied) != len(res2.Applied) {
		t.Fatalf("applied logs diverge: %d vs %d", len(res1.Applied), len(res2.Applied))
	}
	for i := range res1.Applied {
		if res1.Applied[i] != res2.Applied[i] {
			t.Errorf("applied[%d]: %q vs %q", i, res1.Applied[i], res2.Applied[i])
		}
	}
}
