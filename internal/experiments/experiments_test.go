package experiments

import (
	"testing"
	"time"
)

func TestFigure3Shape(t *testing.T) {
	_, rows := Figure3(1)
	var s3Small, redisSmall, s3MR float64
	for _, r := range rows {
		if r.Workload == "sharp_resize" && r.Size == 128<<10 {
			if r.Backend == "S3" {
				s3Small = r.ELShare()
			} else {
				redisSmall = r.ELShare()
			}
		}
		if r.Workload == "map_reduce" && r.Size == 30<<20 && r.Backend == "S3" {
			s3MR = r.ELShare()
		}
	}
	// Paper: E&L up to 97% for the 128 kB image on S3; ≈52% for 30 MB
	// map_reduce; negligible on Redis.
	if s3Small < 0.80 {
		t.Errorf("sharp_resize 128kB S3 E&L share %.2f, want dominant (paper 0.97)", s3Small)
	}
	if redisSmall > 0.30 {
		t.Errorf("sharp_resize 128kB Redis E&L share %.2f, want negligible", redisSmall)
	}
	if s3MR < 0.25 || s3MR > 0.75 {
		t.Errorf("map_reduce 30MB S3 E&L share %.2f, paper ≈0.52", s3MR)
	}
}

func TestFigure7SingleStageShape(t *testing.T) {
	size := int64(16 << 10)
	get := func(sc Scenario) Figure7Row { return measureSingle("wand_edge", size, sc, 1) }
	swift := get(ScenSwift)
	redis := get(ScenRedis)
	lh := get(ScenLH)
	m := get(ScenM)
	rh := get(ScenRH)

	// Headline: OFC-LH cuts wand_edge(16kB) by up to ~82% vs Swift.
	imp := improvement(swift.Total(), lh.Total())
	if imp < 0.60 {
		t.Errorf("LH improvement %.2f vs Swift, paper ≈0.82 (swift=%v lh=%v)", imp, swift.Total(), lh.Total())
	}
	// OFC-LH lands near OWK-Redis. (The paper reports -3%..+2% across
	// its workload mix; for a small-T function the constant ≈11 ms
	// shadow PUT in OFC's Load phase is a larger share, so we allow a
	// wider band here and check the tight band on the macro mix.)
	diff := float64(lh.Total()-redis.Total()) / float64(redis.Total())
	if diff < -0.45 || diff > 0.45 {
		t.Errorf("LH vs Redis diff %.2f (lh=%v redis=%v)", diff, lh.Total(), redis.Total())
	}
	// Miss still beats Swift (write-back of outputs).
	if m.Total() >= swift.Total() {
		t.Errorf("M (%v) not better than Swift (%v)", m.Total(), swift.Total())
	}
	// Remote hit close to local hit, worse or equal.
	if rh.Total() < lh.Total() {
		t.Errorf("RH (%v) faster than LH (%v)", rh.Total(), lh.Total())
	}
	if float64(rh.Total()) > float64(lh.Total())*1.4 {
		t.Errorf("RH (%v) far above LH (%v), paper ≤ +12.76%%", rh.Total(), lh.Total())
	}
	// Extract phases: LH ≈ cache, M ≈ RSDS.
	if lh.E > 5*time.Millisecond {
		t.Errorf("LH extract %v, want cache-hit scale", lh.E)
	}
	if m.E < 35*time.Millisecond {
		t.Errorf("M extract %v, want RSDS scale", m.E)
	}
}

func TestFigure7PipelineShape(t *testing.T) {
	pb := fig7Pipelines()[0] // map_reduce
	size := int64(10 << 20)
	swift := measurePipeline(pb, size, ScenSwift, 1)
	lh := measurePipeline(pb, size, ScenLH, 1)
	redis := measurePipeline(pb, size, ScenRedis, 1)
	imp := improvement(swift.Total(), lh.Total())
	if imp < 0.30 {
		t.Errorf("map_reduce LH improvement %.2f vs Swift, paper up to 0.60 (swift=%v lh=%v)", imp, swift.Total(), lh.Total())
	}
	diff := float64(lh.Total()-redis.Total()) / float64(redis.Total())
	if diff > 0.30 {
		t.Errorf("pipeline LH (%v) much slower than Redis (%v)", lh.Total(), redis.Total())
	}
}

func TestFigure8Shape(t *testing.T) {
	_, rows := Figure8(1)
	byScen := map[string][]Figure8Row{}
	for _, r := range rows {
		byScen[r.Scenario] = append(byScen[r.Scenario], r)
	}
	for _, r := range byScen["Sc0"] {
		if r.ScalingTime != 0 {
			t.Errorf("Sc0 scaling time %v, want 0", r.ScalingTime)
		}
	}
	for _, r := range byScen["Sc1"] {
		// Paper: ≈289µs constant.
		if r.ScalingTime < 100*time.Microsecond || r.ScalingTime > 2*time.Millisecond {
			t.Errorf("Sc1 scaling %v, want ≈289µs", r.ScalingTime)
		}
	}
	for _, r := range byScen["Sc2"] {
		if r.ScalingTime <= 0 {
			t.Errorf("Sc2 scaling %v, want >0 (migration)", r.ScalingTime)
		}
	}
	for _, r := range byScen["Sc3"] {
		if r.ScalingTime <= 0 {
			t.Errorf("Sc3 scaling %v, want >0 (eviction)", r.ScalingTime)
		}
	}
}

func TestMigrationSeriesShape(t *testing.T) {
	_, series := MigrationSeries(1)
	if series[8<<20] >= series[1<<30] {
		t.Errorf("migration time not increasing: 8MB=%v 1GB=%v", series[8<<20], series[1<<30])
	}
	// Rough magnitude: 1 GB within [5ms, 80ms] (paper 13.5 ms; ours
	// includes per-object promotion overhead).
	if series[1<<30] < 5*time.Millisecond || series[1<<30] > 80*time.Millisecond {
		t.Errorf("1GB migration %v, paper 13.5ms", series[1<<30])
	}
}

func TestMacroShortRun(t *testing.T) {
	cfg := DefaultMacroConfig()
	cfg.Window = 6 * time.Minute
	swift := cfg
	swift.Mode = ModeSwift
	sres := RunMacro(swift)
	ofc := cfg
	ofc.Mode = ModeOFC
	ores := RunMacro(ofc)

	if len(sres.Reports) != 8 || len(ores.Reports) != 8 {
		t.Fatalf("tenants: swift=%d ofc=%d", len(sres.Reports), len(ores.Reports))
	}
	var invocations int
	for i, sr := range sres.Reports {
		or := ores.Reports[i]
		invocations += or.Invocations
		if or.Failures > 0 {
			t.Errorf("tenant %s: %d failed invocations under OFC", or.Name, or.Failures)
		}
		if sr.Invocations == 0 {
			continue
		}
	}
	if invocations < 10 {
		t.Fatalf("only %d invocations in the window", invocations)
	}
	// Aggregate improvement must be positive and material.
	imp := improvement(sres.TotalExec(), ores.TotalExec())
	if imp < 0.15 {
		t.Errorf("macro improvement %.2f (swift=%v ofc=%v), paper 23.9–79.8%%", imp, sres.TotalExec(), ores.TotalExec())
	}
	if ores.HitRatio < 0.5 {
		t.Errorf("hit ratio %.2f, paper >0.93", ores.HitRatio)
	}
	if len(ores.CacheSeries) == 0 {
		t.Error("no Figure 10 cache series")
	}
	if ores.Agent.ScaleUps == 0 {
		t.Error("no cache scale-ups recorded")
	}
	if ores.Ephemeral == 0 {
		t.Error("no ephemeral data recorded")
	}
}

func TestTable1Quick(t *testing.T) {
	cfg := Table1Config{SamplesPerFunction: 150, Folds: 4, ForestSize: 8, Seed: 1}
	tab := Table1(cfg)
	if len(tab.Rows) != 12 {
		t.Fatalf("rows=%d, want 12 (4 algos × 3 intervals)", len(tab.Rows))
	}
}

func TestMaturationQuick(t *testing.T) {
	_, res := Maturation(1)
	if len(res.PerFunction) != 19 {
		t.Fatalf("functions=%d", len(res.PerFunction))
	}
	if res.Median > 450 {
		t.Errorf("median maturation %d, paper 100", res.Median)
	}
	if res.P95 > 650 {
		t.Errorf("p95 maturation %d, paper <450", res.P95)
	}
}

func TestFigure5Quick(t *testing.T) {
	_, res := Figure5(200, 1)
	if res.WithinThree < 0.7 {
		t.Errorf("overpredictions within 3 intervals: %.2f, paper 0.90", res.WithinThree)
	}
	if res.AvgOverWasteMB > 80 {
		t.Errorf("mean overprediction waste %.1fMB, paper 26.8MB", res.AvgOverWasteMB)
	}
}

func TestFigure6Quick(t *testing.T) {
	_, res := Figure6(300, 1)
	j48 := res["J48/16MB"]
	forest := res["RandomForest/16MB"]
	if j48.Median <= 0 {
		t.Fatal("no J48 latency")
	}
	// Shapes: J48 well under 1ms (target: prediction under 1ms, §5.1.1)
	// and much faster than RandomForest.
	if j48.Median > time.Millisecond {
		t.Errorf("J48 median %v, want ≪1ms", j48.Median)
	}
	if forest.Median < j48.Median {
		t.Errorf("forest (%v) faster than J48 (%v)?", forest.Median, j48.Median)
	}
}

func TestCacheBenefitQuick(t *testing.T) {
	_, res := CacheBenefit(200, 1)
	if res.F1 < 0.9 {
		t.Errorf("benefit F1=%.3f, paper 0.987", res.F1)
	}
}

func TestFigure2Produces(t *testing.T) {
	tab := Figure2(100, 1)
	if len(tab.Rows) != 100 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
}

func TestAblationWriteback(t *testing.T) {
	tab := AblationWriteback(1)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
}

func TestAblationMigrationSpeedup(t *testing.T) {
	tab := AblationMigration(1)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
}

func TestAblationRouting(t *testing.T) {
	tab := AblationRouting(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
}

func TestAblationIntervalBump(t *testing.T) {
	tab := AblationIntervalBump(1)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// On unseen inputs the bump must not retry more often than raw.
	var bumpRetries, rawRetries string
	for _, r := range tab.Rows {
		if r[1] == "unseen" {
			if r[0] == "raw prediction" {
				rawRetries = r[3]
			} else {
				bumpRetries = r[3]
			}
		}
	}
	if bumpRetries > rawRetries {
		t.Errorf("bump retries %s > raw %s on unseen inputs", bumpRetries, rawRetries)
	}
}

func TestResilience(t *testing.T) {
	tab, healthy := Resilience(1)
	if !healthy {
		t.Errorf("resilience run unhealthy:\n%s", tab)
	}
}

func TestChunkingExtension(t *testing.T) {
	_, out := ChunkingExtension(1)
	if out[true] >= out[false] {
		t.Errorf("chunking did not help: on=%v off=%v", out[true], out[false])
	}
	if out[true] > out[false]/2 {
		t.Errorf("chunking saving too small: on=%v off=%v", out[true], out[false])
	}
}

func TestStorePlane(t *testing.T) {
	tab, healthy := StorePlane(1)
	if !healthy {
		t.Errorf("store plane acceptance failed:\n%s", tab)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.Add("x,y", 3*time.Millisecond)
	csv := tab.CSV()
	want := "a,b\n\"x,y\",3.00ms\n"
	if csv != want {
		t.Errorf("csv=%q, want %q", csv, want)
	}
}

func TestAblationKeepAliveShape(t *testing.T) {
	tab := AblationKeepAlive(1)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Cold starts must not increase with longer keep-alive.
	var colds []string
	for _, r := range tab.Rows {
		colds = append(colds, r[2])
	}
	if !(colds[0] >= colds[1] && colds[1] >= colds[2]) {
		t.Errorf("cold starts not monotone: %v", colds)
	}
}

func TestAblationConsistencyShape(t *testing.T) {
	tab := AblationConsistency(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	if tab.Rows[0][3] != "true" || tab.Rows[1][3] != "false" {
		t.Errorf("eager flags wrong: %v", tab.Rows)
	}
}

func TestFigure7Replicated(t *testing.T) {
	tab := Figure7Replicated([]int64{1, 2, 3})
	if len(tab.Rows) != 10 { // 6 single-stage + 4 pipelines (quick grid)
		t.Fatalf("rows=%d", len(tab.Rows))
	}
}

func TestSummaryScorecard(t *testing.T) {
	tab := Summary(1)
	if len(tab.Rows) < 10 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "" {
			t.Errorf("empty measurement for %q", row[0])
		}
	}
}

func TestConstantsTable(t *testing.T) {
	tab := Constants(1)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
}
