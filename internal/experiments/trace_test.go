package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ofc/internal/trace"
)

// goldenTracePath is the pinned export of the fixed-seed trace drill.
// Regenerate with:
//
//	OFC_REGEN_GOLDEN=1 go test ./internal/experiments -run TestGoldenTrace
const goldenTracePath = "testdata/golden_trace.json"

// TestGoldenTrace pins the canonicalized Chrome-trace export of the
// seed-1 drill byte for byte: any change to span structure, naming,
// timing or the exporter's encoding shows up as a diff here.
func TestGoldenTrace(t *testing.T) {
	_, res := TraceDrill(1)
	if res.Drops != 0 {
		t.Fatalf("trace drill dropped %d spans; golden comparison needs a complete trace", res.Drops)
	}
	var buf bytes.Buffer
	if err := trace.ExportChrome(&buf, res.Spans); err != nil {
		t.Fatalf("export: %v", err)
	}
	if os.Getenv("OFC_REGEN_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes, %d spans)", goldenTracePath, buf.Len(), len(res.Spans))
		return
	}
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("read golden (regenerate with OFC_REGEN_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exported trace differs from %s (got %d bytes, want %d); "+
			"if the change is intentional regenerate with OFC_REGEN_GOLDEN=1",
			goldenTracePath, buf.Len(), len(want))
	}
}

// TestTraceDrillDeterministic runs the drill twice in-process and
// demands bit-identical exports — the determinism contract the golden
// file relies on, checked without any filesystem state.
func TestTraceDrillDeterministic(t *testing.T) {
	export := func() []byte {
		_, res := TraceDrill(7)
		var buf bytes.Buffer
		if err := trace.ExportChrome(&buf, res.Spans); err != nil {
			t.Fatalf("export: %v", err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("two seed-7 drills exported different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTraceDrillWellFormed property-checks every span the drill
// records: unique IDs, parents that exist and precede their children,
// child intervals nested inside parents, sibling durations that do not
// exceed the parent — trace.Validate's full contract over a real run.
func TestTraceDrillWellFormed(t *testing.T) {
	_, res := TraceDrill(3)
	if res.Drops != 0 {
		t.Fatalf("dropped %d spans; well-formedness needs the full set", res.Drops)
	}
	if len(res.Spans) == 0 {
		t.Fatal("drill recorded no spans")
	}
	if err := trace.Validate(res.Spans); err != nil {
		t.Fatalf("drill trace ill-formed: %v", err)
	}
	// The drill must exercise the whole path: invoke, cache and RSDS
	// spans all present.
	seen := map[string]bool{}
	for i := range res.Spans {
		seen[res.Spans[i].Name] = true
	}
	for _, name := range []string{"invoke", "advice", "predict", "execute", "extract",
		"transform", "load", "cache.get", "cache.put", "rsds.fetch", "kv.read", "kv.write", "reclaim"} {
		if !seen[name] {
			t.Errorf("no %q span recorded by the drill", name)
		}
	}
}
