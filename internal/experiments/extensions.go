package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/chaos"
	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/workload"
)

// Resilience exercises the fail-stop story (§3, §6.1): a worker node
// (FaaS invoker + cache master) crashes mid-run on a chaos schedule;
// RAMCloud-style timed recovery re-masters its objects from backup
// replicas, the platform routes around the dead invoker, and after the
// scheduled restart the node rejoins. The paper claims fault tolerance
// by construction; this experiment demonstrates it end to end — no
// invocation may fail in any phase.
func Resilience(seed int64) (*Table, bool) {
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(ModeOFC, cfg)
	sys := d.Sys
	spec := workload.SpecByName("wand_sepia")
	fn := d.Suite.Build(spec, "res", 0)
	d.Register(fn)
	rng := rand.New(rand.NewSource(seed))
	pool := workload.NewInputPool(rng, "image", "res", []int64{32 << 10, 64 << 10}, 4)
	d.Pretrain(spec, fn, pool, 300)

	// The victim dies at 10s and is revived at 25s; each measured phase
	// falls squarely inside one regime.
	victim := d.Workers[0]
	const crashAt = 10 * time.Second
	const restartAt = 25 * time.Second
	sched := chaos.NewSchedule().CrashAt(crashAt, victim).RestartAt(restartAt, victim)
	sys.ApplyChaos(sched, seed)

	t := &Table{
		Title:   "Extension — worker fail-stop and recovery (chaos schedule)",
		Headers: []string{"Phase", "Invocations", "Failures", "Mean E"},
	}
	healthy := true
	d.Run(func() {
		pool.Stage(d.Writer)
		runBatch := func(n int) (fails int, meanE time.Duration) {
			var total time.Duration
			for i := 0; i < n; i++ {
				in := pool.Inputs[i%len(pool.Inputs)]
				res := d.Platform.Invoke(workload.NewRequest(fn, spec, in, spec.GenArgs(rng)))
				if res.Err != nil {
					fails++
					continue
				}
				total += res.Extract
			}
			return fails, total / time.Duration(n)
		}
		phase := func(name string, fails int, meanE time.Duration) {
			t.Add(name, 8, fails, meanE)
			if fails > 0 {
				healthy = false
			}
		}

		// Warm phase: populate the cache on the victim before it dies.
		restore := d.PinTo(victim)
		fails, meanE := runBatch(8)
		restore()
		phase("warm (on victim)", fails, meanE)

		// While the victim is down: recovery has re-mastered its
		// objects, the router avoids the dead invoker, reads must hit
		// the promoted copies — and nothing may fail.
		d.Env.Sleep(crashAt + 2*time.Second - time.Duration(d.Env.Now()))
		fails, meanE = runBatch(8)
		phase("victim down (recovered)", fails, meanE)

		// After the scheduled restart: the node rejoins empty and
		// serves again.
		d.Env.Sleep(restartAt + 2*time.Second - time.Duration(d.Env.Now()))
		fails, meanE = runBatch(8)
		phase("after restart", fails, meanE)
	})
	ks := sys.KV.Stats()
	t.Add(fmt.Sprintf("recovery: %d objects in %s", ks.Recovered, fmtDur(ks.LastRecovery)), 0, 0, time.Duration(0))
	if ks.Recoveries == 0 || ks.Recovered == 0 {
		healthy = false
	}
	t.Note = "paper §6.1: fault tolerance via RAMCloud replication/recovery and OWK retries"
	return t, healthy
}

// ChunkingExtension measures the §6.1 future-work feature (arbitrary
// object sizes): the Load phase of a function emitting an oversized
// final output, with and without striping.
func ChunkingExtension(seed int64) (*Table, map[bool]time.Duration) {
	t := &Table{
		Title:   "Extension — large-object striping (arbitrary object sizes, §6.1 future work)",
		Headers: []string{"Chunking", "Output", "Load phase", "vs sync RSDS"},
	}
	out := map[bool]time.Duration{}
	const size = 40 << 20
	for _, enabled := range []bool{false, true} {
		cfg := DefaultDeploy()
		cfg.Seed = seed
		d := NewDeployment(ModeOFC, cfg)
		if enabled {
			d.Sys.RC.EnableChunking()
		}
		fn := &faas.Function{Name: "bigout", Tenant: "ext", MemoryBooked: 1 << 30, InputType: "none",
			Body: func(ctx *faas.Ctx) error {
				return ctx.Load("ext/out", faas.Blob{Size: size}, faas.KindFinal)
			}}
		d.Register(fn)
		d.Platform.Advisor = alwaysCache{}
		var load time.Duration
		d.Run(func() {
			res := d.Platform.Invoke(&faas.Request{Function: fn})
			load = res.Load
		})
		out[enabled] = load
	}
	base := out[false]
	for _, enabled := range []bool{false, true} {
		label := "off (paper config)"
		if enabled {
			label = "on (extension)"
		}
		t.Add(label, fmtSize(size), out[enabled], pct(improvement(base, out[enabled])))
	}
	return t, out
}

// Constants verifies the §6.4/§7.2.1 micro constants end to end: the
// empty-function end-to-end time, the shadow persist, the cgroup
// update, the Predictor+Sizer overhead and the small-object promotion.
func Constants(seed int64) *Table {
	t := &Table{
		Title:   "§6.4/§7.2.1 — micro constants (measured end to end)",
		Headers: []string{"Constant", "Paper", "Measured"},
	}

	// Empty function through vanilla OWK (warm).
	d := NewDeployment(ModeSwift, DefaultDeploy())
	empty := &faas.Function{Name: "empty", Tenant: "c", MemoryBooked: 128 << 20,
		Body: func(ctx *faas.Ctx) error { return nil }}
	d.Register(empty)
	var warm time.Duration
	d.Run(func() {
		d.Platform.Invoke(&faas.Request{Function: empty})
		res := d.Platform.Invoke(&faas.Request{Function: empty})
		warm = res.Duration()
	})
	t.Add("empty function end-to-end (warm)", "≈8ms", warm)

	// Shadow persist.
	d2 := NewDeployment(ModeOFC, DefaultDeploy())
	var shadow time.Duration
	d2.Run(func() {
		start := d2.Env.Now()
		d2.Store.PutShadow(d2.Workers[0], "c/shadow", 1<<20)
		shadow = time.Duration(d2.Env.Now() - start)
	})
	t.Add("shadow-object persist", "≈11ms", shadow)

	// cgroup/docker resize (configured constant, charged async).
	t.Add("cgroup+docker resize", "≈24ms", d2.Platform.Config().ResizeLatency)

	// Predictor+Sizer critical-path overhead (configured).
	t.Add("Predictor+Sizer overhead", "≈6ms", d2.Platform.Config().AdviceOverhead)

	// Promotion of one 8 MB object.
	d3 := NewDeployment(ModeOFC, DefaultDeploy())
	var promo time.Duration
	d3.Env.Go(func() {
		inv := d3.Sys.Platform.Invokers()[0]
		g := inv.SetCacheGrant(inv.Capacity())
		d3.Sys.KV.SetMemoryLimit(d3.Workers[0], g)
		inv2 := d3.Sys.Platform.Invokers()[1]
		g2 := inv2.SetCacheGrant(inv2.Capacity())
		d3.Sys.KV.SetMemoryLimit(d3.Workers[1], g2)
		d3.Sys.KV.Write(d3.Sys.CtrlNode, "c/promo", kvstore.Synthetic(8<<20), map[string]string{"kind": "input"}, d3.Workers[0])
		start := d3.Env.Now()
		if err := d3.Sys.KV.MigrateToBackup("c/promo"); err != nil {
			panic(err)
		}
		promo = time.Duration(d3.Env.Now() - start)
		d3.Env.Stop()
	})
	d3.Env.Run()
	t.Add("promotion, single 8MB object", "≈0.18ms", promo)

	return t
}

// StorePlane measures the refactored storage data plane end to end:
// batched multi-object operations resolve all placements in one
// coordinator round-trip and issue at most one control RPC per
// involved master, where per-key loops pay one of each per key. The
// returned flag is the acceptance verdict.
func StorePlane(seed int64) (*Table, bool) {
	t := &Table{
		Title:   "Extension — storage data plane (sharded coordinator, batched multi-ops)",
		Headers: []string{"Path", "Keys", "Coord RPCs", "Server RPCs", "Wall"},
	}
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(ModeOFC, cfg)
	sys := d.Sys
	const n = 16
	healthy := true
	d.Run(func() {
		for _, w := range sys.WorkerNodes {
			sys.KV.SetMemoryLimit(w, 1<<30)
		}
		caller := sys.WorkerNodes[0]
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("sp/%d", i)
			pref := sys.WorkerNodes[i%len(sys.WorkerNodes)]
			if _, err := sys.KV.Write(pref, keys[i], kvstore.Synthetic(256<<10), nil, pref); err != nil {
				healthy = false
				return
			}
		}
		before := sys.KV.Stats()
		t0 := d.Env.Now()
		for _, r := range sys.KV.ReadMulti(caller, keys) {
			if r.Err != nil {
				healthy = false
			}
		}
		batched := sys.KV.Stats()
		t.Add("ReadMulti (batched)", n,
			batched.CoordRPCs-before.CoordRPCs, batched.ServerRPCs-before.ServerRPCs,
			time.Duration(d.Env.Now()-t0))
		t0 = d.Env.Now()
		for _, k := range keys {
			if _, _, err := sys.KV.Read(caller, k); err != nil {
				healthy = false
			}
		}
		per := sys.KV.Stats()
		t.Add("per-key reads", n,
			per.CoordRPCs-batched.CoordRPCs, per.ServerRPCs-batched.ServerRPCs,
			time.Duration(d.Env.Now()-t0))
		if batched.CoordRPCs-before.CoordRPCs != 1 ||
			batched.ServerRPCs-before.ServerRPCs > int64(len(sys.WorkerNodes)) {
			healthy = false
		}
	})
	t.Note = fmt.Sprintf("coordinator shards: %d; batched path groups keys per master, ≤1 control RPC per involved server",
		kvstore.DefaultConfig().CoordShards)
	return t, healthy
}
