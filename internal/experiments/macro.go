package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/workload"
)

// MacroConfig shapes a §7.2.2 macro run.
type MacroConfig struct {
	Mode Mode // ModeOFC or ModeSwift
	// TenantsPerWorkload is 1 for the 8-tenant experiment, 3 for the
	// 24-tenant one.
	TenantsPerWorkload int
	Profile            workload.TenantProfile
	Window             time.Duration
	MeanInterval       time.Duration
	Seed               int64
	NodeCapacity       int64
	// PoolPerSize is the number of distinct inputs per size bucket in
	// each tenant's dataset (more inputs → more compulsory misses).
	PoolPerSize int
	// SampleCacheEvery drives the Figure 10 series (OFC only).
	SampleCacheEvery time.Duration
}

// DefaultMacroConfig is the paper's setup: 8 tenants, 30 minutes,
// exponential arrivals with a 1-minute mean.
func DefaultMacroConfig() MacroConfig {
	return MacroConfig{
		Mode:               ModeOFC,
		TenantsPerWorkload: 1,
		Profile:            workload.ProfileNormal,
		Window:             30 * time.Minute,
		MeanInterval:       time.Minute,
		Seed:               1,
		// The paper's workers have 512 GB each; 256 GB per worker keeps
		// even naive 2 GB bookings uncontended the way the testbed was.
		NodeCapacity:     256 << 30,
		PoolPerSize:      3,
		SampleCacheEvery: 30 * time.Second,
	}
}

// CachePoint is one Figure 10 sample: the hoarded cache capacity
// (what the paper plots) and the bytes actually cached.
type CachePoint struct {
	At    time.Duration
	Grant int64
	Bytes int64
}

// MacroResult aggregates one macro run.
type MacroResult struct {
	Config      MacroConfig
	Reports     []workload.TenantReport
	CacheSeries []CachePoint
	// OFC-only internals (Table 2).
	Agent         core.AgentMetrics
	GoodPred      int64
	BadPred       int64
	HitRatio      float64
	InputHitRatio float64
	Ephemeral     int64
	Platform      faas.Stats
}

// TotalExec sums all tenants' execution time.
func (m *MacroResult) TotalExec() time.Duration {
	var t time.Duration
	for _, r := range m.Reports {
		t += r.TotalExec
	}
	return t
}

// macroWorkloads is the fixed tenant mix of Figure 9: six image
// functions, MapReduce and THIS.
var macroSingle = []string{"wand_blur", "wand_resize", "wand_sepia", "wand_rotate", "wand_denoise", "wand_edge"}

// RunMacro executes one macro experiment.
func RunMacro(cfg MacroConfig) *MacroResult {
	dep := DefaultDeploy()
	dep.Seed = cfg.Seed
	dep.NodeCapacity = cfg.NodeCapacity
	d := NewDeployment(cfg.Mode, dep)
	rng := rand.New(rand.NewSource(cfg.Seed))
	fl := workload.NewFaaSLoad(d.Env, d.Platform, cfg.Seed+7)

	type staged struct {
		pool *workload.InputPool
		pl   *workload.Pipeline
	}
	var all []staged

	for rep := 0; rep < cfg.TenantsPerWorkload; rep++ {
		for _, name := range macroSingle {
			spec := workload.SpecByName(name)
			tenant := fmt.Sprintf("%s-%d", name, rep)
			perSize := cfg.PoolPerSize
			if perSize <= 0 {
				perSize = 3
			}
			pool := workload.NewInputPool(rng, spec.InputType, "macro/"+tenant,
				[]int64{1 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}, perSize)
			booked := workload.BookedMem(cfg.Profile, spec.MaxMem(pool, rng), 2<<30)
			fn := d.Suite.Build(spec, tenant, booked)
			d.Register(fn)
			if cfg.Mode == ModeOFC {
				d.Pretrain(spec, fn, pool, 300)
			}
			fl.AddFunctionTenant(tenant, spec, fn, pool, cfg.MeanInterval, false)
			all = append(all, staged{pool: pool})
		}
		mrTenant := fmt.Sprintf("map_reduce-%d", rep)
		mr := workload.NewMapReduce(d.Suite, mrTenant, cfg.Profile, 2<<30)
		mrPool := workload.NewInputPool(rng, "text", "macro/"+mrTenant, []int64{10 << 20}, 2)
		registerPipeline(d, mr, cfg, rng)
		fl.AddPipelineTenant(mrTenant, mr, mrPool, cfg.MeanInterval, false)
		all = append(all, staged{pool: mrPool, pl: mr})

		thisTenant := fmt.Sprintf("THIS-%d", rep)
		th := workload.NewTHIS(d.Suite, thisTenant, cfg.Profile, 2<<30)
		thPool := workload.NewInputPool(rng, "video", "macro/"+thisTenant, []int64{50 << 20}, 2)
		registerPipeline(d, th, cfg, rng)
		fl.AddPipelineTenant(thisTenant, th, thPool, cfg.MeanInterval, false)
		all = append(all, staged{pool: thPool, pl: th})
	}

	res := &MacroResult{Config: cfg}

	d.Env.SetHorizon(cfg.Window + 3*time.Minute)
	if d.Sys != nil {
		d.Sys.Start()
		if cfg.SampleCacheEvery > 0 {
			d.Env.Every(cfg.SampleCacheEvery, func() bool {
				res.CacheSeries = append(res.CacheSeries, CachePoint{
					At:    time.Duration(d.Env.Now()),
					Grant: d.Sys.CacheGrantBytes(),
					Bytes: d.Sys.CacheBytes(),
				})
				return true
			})
		}
	}
	d.Env.Go(func() {
		for _, st := range all {
			if st.pl != nil {
				for _, in := range st.pool.Inputs {
					st.pl.StageInput(d.Writer, in)
				}
			} else {
				st.pool.Stage(d.Writer)
			}
		}
		fl.Start(cfg.Window)
	})
	d.Env.Run()

	res.Reports = fl.Reports()
	res.Platform = d.Platform.Stats()
	if d.Sys != nil {
		res.Agent = d.Sys.AggregateAgentMetrics()
		res.GoodPred, res.BadPred = d.Sys.PredictionCounts()
		res.HitRatio = d.Sys.RC.HitRatio()
		res.InputHitRatio = d.Sys.RC.InputHitRatio()
		res.Ephemeral = d.Sys.RC.Stats().EphemeralBytes
	}
	return res
}

func registerPipeline(d *Deployment, pl *workload.Pipeline, cfg MacroConfig, rng *rand.Rand) {
	for _, fn := range pl.Funcs {
		d.Register(fn)
	}
	if cfg.Mode == ModeOFC && d.Sys != nil {
		pl.Pretrain(d.Sys.Trainer, d.Store.Profile(), 250, rng)
	}
}

// Figure9 runs the three tenant profiles under OWK-Swift and OFC and
// tabulates per-tenant total execution times; it returns the OFC runs
// for Figure 10 / Table 2 consumption.
func Figure9(window time.Duration, seed int64) (*Table, map[string][2]*MacroResult) {
	profiles := []workload.TenantProfile{workload.ProfileNormal, workload.ProfileNaive, workload.ProfileAdvanced}
	t := &Table{
		Title:   "Figure 9 — sum of execution times per tenant (macro, 8 tenants)",
		Headers: []string{"Tenant", "Profile", "OWK-Swift", "OFC", "Improvement"},
	}
	// All six macro runs (3 profiles × 2 modes) are independent
	// deployments; run them on the worker pool and assemble in profile
	// order afterwards.
	modes := []Mode{ModeSwift, ModeOFC}
	results := Parallel(len(profiles)*len(modes), 0, func(i int) *MacroResult {
		cfg := DefaultMacroConfig()
		cfg.Window = window
		cfg.Profile = profiles[i/len(modes)]
		cfg.Seed = seed
		cfg.Mode = modes[i%len(modes)]
		return RunMacro(cfg)
	})
	out := map[string][2]*MacroResult{}
	for pi, prof := range profiles {
		swiftRes, ofcRes := results[pi*len(modes)], results[pi*len(modes)+1]
		out[prof.String()] = [2]*MacroResult{swiftRes, ofcRes}
		for i, sr := range swiftRes.Reports {
			or := ofcRes.Reports[i]
			t.Add(sr.Name, prof.String(), sr.TotalExec, or.TotalExec,
				pct(improvement(sr.TotalExec, or.TotalExec)))
		}
	}
	t.Note = "paper: OFC improves every function, 23.9–79.8% (54.6% average); naive slightly better than advanced"
	return t, out
}

// Figure10 renders the cache-size series of the OFC macro runs.
func Figure10(runs map[string][2]*MacroResult) *Table {
	t := &Table{
		Title:   "Figure 10 — OFC cache capacity over time per tenant profile",
		Note:    "paper: naive ≥ normal ≥ advanced, fluctuating with sandbox churn",
		Headers: []string{"Time", "normal (GB)", "naive (GB)", "advanced (GB)"},
	}
	var series [3][]CachePoint
	for i, p := range []string{"normal", "naive", "advanced"} {
		if r, ok := runs[p]; ok && r[1] != nil {
			series[i] = r[1].CacheSeries
		}
	}
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	gb := func(s []CachePoint, i int) string {
		if i >= len(s) {
			return "-"
		}
		return fmt.Sprintf("%.2f", float64(s[i].Grant)/float64(1<<30))
	}
	for i := 0; i < n; i++ {
		var at time.Duration
		for _, s := range series {
			if i < len(s) {
				at = s[i].At
				break
			}
		}
		t.Add(at, gb(series[0], i), gb(series[1], i), gb(series[2], i))
	}
	return t
}

// Table2 renders the OFC internal metrics of the macro runs.
func Table2(runs map[string][2]*MacroResult) *Table {
	t := &Table{
		Title:   "Table 2 — OFC internal metrics (macro, 8 tenants)",
		Headers: []string{"Metric", "Normal", "Naive", "Advanced"},
	}
	get := func(p string) *MacroResult {
		if r, ok := runs[p]; ok {
			return r[1]
		}
		return &MacroResult{}
	}
	n, v, a := get("normal"), get("naive"), get("advanced")
	row := func(name string, f func(*MacroResult) interface{}) {
		t.Add(name, f(n), f(v), f(a))
	}
	row("# Scale up", func(m *MacroResult) interface{} { return m.Agent.ScaleUps })
	row("Total scale up time (s)", func(m *MacroResult) interface{} {
		return fmt.Sprintf("%.1f", m.Agent.ScaleUpTime.Seconds())
	})
	row("# Scale down (no eviction)", func(m *MacroResult) interface{} { return m.Agent.ScaleDownNoEviction })
	row("# Scale down (migration)", func(m *MacroResult) interface{} { return m.Agent.ScaleDownMigration })
	row("# Scale down (eviction)", func(m *MacroResult) interface{} { return m.Agent.ScaleDownEviction })
	row("Total scale down time (s)", func(m *MacroResult) interface{} {
		return fmt.Sprintf("%.1f", m.Agent.ScaleDownTime.Seconds())
	})
	row("# Bad predictions", func(m *MacroResult) interface{} { return m.BadPred })
	row("# Good predictions", func(m *MacroResult) interface{} { return m.GoodPred })
	row("# Failed invocations", func(m *MacroResult) interface{} { return m.Platform.Failures })
	row("Cache hit ratio (%)", func(m *MacroResult) interface{} {
		return fmt.Sprintf("%.2f", m.HitRatio*100)
	})
	row("Ephemeral data generated (GB)", func(m *MacroResult) interface{} {
		return fmt.Sprintf("%.1f", float64(m.Ephemeral)/float64(1<<30))
	})
	return t
}

// Macro24 reproduces the 24-tenant variant (§7.2.2 end): lower hit
// ratio, smaller but still positive improvements, no failures. The
// node capacity is reduced so 24 tenants actually contend for memory.
func Macro24(window time.Duration, seed int64) (*Table, *MacroResult, *MacroResult) {
	base := DefaultMacroConfig()
	base.Window = window
	base.Seed = seed
	base.TenantsPerWorkload = 3
	// Same hardware, 3× the tenants and much more distinct data: the
	// hit ratio drops through compulsory misses (the paper's §7.2.2
	// 24-tenant observation), while memory stays uncontended (no
	// failed invocations).
	base.PoolPerSize = 10
	base.Profile = workload.ProfileNormal

	pair := Parallel(2, 0, func(i int) *MacroResult {
		cfg := base
		cfg.Mode = []Mode{ModeSwift, ModeOFC}[i]
		return RunMacro(cfg)
	})
	swiftRes, ofcRes := pair[0], pair[1]

	t := &Table{
		Title:   "§7.2.2 — 24-tenant macro (3 tenants per workload)",
		Headers: []string{"Tenant", "OWK-Swift", "OFC", "Improvement"},
	}
	for i, sr := range swiftRes.Reports {
		or := ofcRes.Reports[i]
		t.Add(sr.Name, sr.TotalExec, or.TotalExec, pct(improvement(sr.TotalExec, or.TotalExec)))
	}
	t.Note = fmt.Sprintf("hit ratio %.1f%% overall, %.1f%% on input objects (paper: drops to ≈32.3%%); failed invocations: %d (paper: 0)",
		ofcRes.HitRatio*100, ofcRes.InputHitRatio*100, ofcRes.Platform.Failures)
	return t, swiftRes, ofcRes
}
