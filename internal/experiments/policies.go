package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ofc/internal/core"
	"ofc/internal/memctl"
	"ofc/internal/sim"
	"ofc/internal/workload"
)

// PolicyRow is one cell of the memory-control-plane ablation: an
// (eviction policy × slack estimator) pair run against the same
// skewed-reuse workload on an identical deployment.
type PolicyRow struct {
	Eviction string
	Slack    string

	Invocations int
	HitRatio    float64
	P99         time.Duration
	// ReclaimLat is the worst critical-path latency of the end-of-run
	// reclaim probes (one per worker); ReclaimOK counts how many probes
	// the policy could satisfy from its grant.
	ReclaimLat time.Duration
	ReclaimOK  int
	Probes     int
	// SlackBytes is the aggregate slack the estimator settled on.
	SlackBytes int64

	Evictions  int64
	Migrations int64
	WriteBacks int64
}

// policyCellConfig is the shared deployment shape: every cell gets the
// same workers, memory, cadences and workload — only the policy pair
// under test differs, so row deltas are attributable to the policy.
func policyCellConfig(seed int64, spec memctl.Spec) DeployConfig {
	cfg := DefaultDeploy()
	cfg.Workers = 3
	cfg.NodeCapacity = 1 << 30
	cfg.Seed = seed
	cfg.Policy = spec
	cfg.Tune = func(o *core.Options) {
		// Compress the paper's cadences (300 s sweeps, 30 min idle) so
		// discretionary eviction and slack adaptation both fire several
		// times inside a minutes-long run. All cells share the
		// compression, so the comparison stays apples-to-apples.
		o.Agent.EvictionEvery = 45 * time.Second
		o.Agent.MaxIdle = 2 * time.Minute
		o.Agent.SlackAdjustEvery = 60 * time.Second
		o.Agent.ChurnSampleEvery = 30 * time.Second
	}
	return cfg
}

// measurePolicyCell runs one policy pair on a fresh deployment: a
// Zipf-skewed stream over a working set sized past the nodes' cache
// grant, then a reclaim probe per worker once the stream ends. The
// function is sharp_resize — IO-bound at MB inputs, so the benefit
// classifier admits its inputs and the cache actually fills.
func measurePolicyCell(evict, slack string, seed int64, quick bool) PolicyRow {
	row := PolicyRow{Eviction: evict, Slack: slack}
	d := NewDeployment(ModeOFC, policyCellConfig(seed, memctl.Spec{Eviction: evict, Slack: slack}))

	spec := workload.SpecByName("sharp_resize")
	fn := d.Suite.Build(spec, "pol", 0)
	d.Register(fn)

	rng := rand.New(rand.NewSource(seed))
	perSize := 150
	runFor := 10 * time.Minute
	if quick {
		perSize = 75
		runFor = 5 * time.Minute
	}
	pool := workload.NewInputPool(rng, spec.InputType, fmt.Sprintf("pol/%s-%s/in", evict, slack),
		[]int64{2 << 20, 4 << 20}, perSize)
	d.Pretrain(spec, fn, pool, 300)
	args := spec.GenArgs(rng)
	// Zipf-skewed reuse: a hot head the cache should hold on to, a long
	// cold tail the policies disagree about.
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(pool.Inputs)-1))

	const pace = 150 * time.Millisecond

	var latMu sync.Mutex
	var lats []time.Duration

	d.Run(func() {
		env := d.Env
		pool.Stage(d.Writer)
		wg := sim.NewWaitGroup(env)
		for time.Duration(env.Now()) < runFor {
			in := pool.Inputs[int(zipf.Uint64())]
			row.Invocations++
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				r := d.Platform.Invoke(workload.NewRequest(fn, spec, in, args))
				if r.Err == nil {
					latMu.Lock()
					lats = append(lats, time.Duration(r.End-r.Start))
					latMu.Unlock()
				}
			})
			env.Sleep(pace)
		}
		wg.Wait()
		// Scale-down probe: ask each cache-holding node's agent to hand
		// memory back — the §6.4 critical path. The need is sized past
		// the grant's free headroom so the agent must clear 90% of its
		// resident objects; which objects those are is the planner and
		// eviction policy's doing. (A full give-back can fail outright:
		// dirty objects whose write-back is still in flight are not
		// evictable.)
		for _, inv := range d.Platform.Invokers() {
			node := inv.Node()
			used, _ := d.Sys.KV.Usage(node)
			if used < 8<<20 {
				continue // nothing resident worth probing
			}
			need := inv.CacheGrant() - used/10
			row.Probes++
			if lat, err := d.Sys.Gov.Reclaim(node, need); err == nil {
				row.ReclaimOK++
				if lat > row.ReclaimLat {
					row.ReclaimLat = lat
				}
			}
		}
	})

	row.HitRatio = d.Sys.RC.InputHitRatio()
	row.P99 = p99(lats)
	for _, a := range d.Sys.Agents() {
		row.SlackBytes += a.Slack()
	}
	pc := d.Sys.AggregatePolicyCounters()
	row.Evictions = pc.Evictions
	row.Migrations = pc.Migrations
	row.WriteBacks = pc.WriteBacks
	return row
}

// Policies sweeps the memctl ablation grid: every requested eviction
// policy crossed with every requested slack estimator (nil selects the
// full registry), each cell an independent deployment on the Parallel
// pool. Rows come back in grid order.
func Policies(seed int64, quick bool, evictions, slacks []string) (*Table, []PolicyRow) {
	if len(evictions) == 0 {
		evictions = memctl.EvictionPolicies()
	}
	if len(slacks) == 0 {
		slacks = memctl.SlackEstimators()
	}
	type cell struct{ e, s string }
	var cells []cell
	for _, e := range evictions {
		for _, s := range slacks {
			cells = append(cells, cell{e, s})
		}
	}
	rows := Parallel(len(cells), 0, func(i int) PolicyRow {
		return measurePolicyCell(cells[i].e, cells[i].s, seed, quick)
	})
	t := &Table{
		Title:   "Policy ablation — eviction × slack grid, identical Zipf workload per cell",
		Headers: []string{"Eviction", "Slack", "Invocations", "Hit ratio", "p99", "Reclaim", "Probes OK", "Slack", "Evict", "Migr", "WB"},
	}
	for _, r := range rows {
		t.Add(r.Eviction, r.Slack, fmt.Sprintf("%d", r.Invocations), pct(r.HitRatio),
			fmtDur(r.P99), fmtDur(r.ReclaimLat), fmt.Sprintf("%d/%d", r.ReclaimOK, r.Probes),
			fmtSize(r.SlackBytes), fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%d", r.Migrations), fmt.Sprintf("%d", r.WriteBacks))
	}
	t.Note = "default cell is threshold/window (the paper's §6.3/§6.4 control plane); see DESIGN.md §13 for the reading"
	return t, rows
}
