package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ofc/internal/chaos"
	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/metrics"
	"ofc/internal/overload"
	"ofc/internal/sim"
	"ofc/internal/workload"
)

// TenantLoad is one tenant's ledger in the overload drill: what it
// offered, what completed, what the gate refused and what failed
// outright.
type TenantLoad struct {
	Name    string
	Offered int64
	Good    int64
	Shed    int64
	Failed  int64
}

// OverloadResult is the evidence the overload drill collects: goodput
// per tenant stays bounded under a 5× spike with a concurrent node
// crash, the retry budget caps re-execution work, the state machine
// walks Normal→Brownout→Shed and back, and no acknowledged write is
// lost.
type OverloadResult struct {
	Invocations int64
	SpikeTenant string
	Tenants     []TenantLoad

	Shed          int64
	ShedQueueFull int64
	ShedStale     int64
	MaxQueueDepth int

	OOMKills     int64
	Retries      int64
	Reroutes     int64
	RetryDenied  int64
	StoreRetries int64
	StoreDenied  int64

	BudgetGranted int64
	BudgetDenied  int64
	BudgetCap     float64

	BrownoutSkips    int64
	BrownoutBypasses int64

	BaselineP99 time.Duration
	SpikeP99    time.Duration
	RecoverP99  time.Duration

	Transitions []string
	FinalState  string
	ReachedShed bool

	Outputs     int
	LostOutputs int

	Applied []string
}

// TotalRetries is every re-execution the run performed: faas OOM
// retries, controller reroutes and storage re-attempts.
func (r *OverloadResult) TotalRetries() int64 {
	return r.Retries + r.Reroutes + r.StoreRetries
}

// Healthy reports whether the run degraded gracefully: the gate shed
// load and the state machine reached Shed, rode the storm out and
// re-entered Normal without flapping; retries stayed under the budget
// cap; every tenant kept useful goodput (the non-spiking tenants at
// least 60% of their offered load); the p99 of admitted work stayed
// bounded; and nothing acknowledged was lost.
func (r *OverloadResult) Healthy() bool {
	if r.Invocations == 0 || r.LostOutputs > 0 {
		return false
	}
	if r.Shed == 0 || !r.ReachedShed || r.FinalState != "normal" {
		return false
	}
	if len(r.Transitions) < 2 || len(r.Transitions) > 16 {
		return false
	}
	if float64(r.TotalRetries()) > r.BudgetCap {
		return false
	}
	for _, t := range r.Tenants {
		if t.Good == 0 {
			return false
		}
		if t.Name != r.SpikeTenant && t.Good*10 < t.Offered*6 {
			return false
		}
	}
	if r.SpikeP99 > 5*time.Second || r.BaselineP99 > 2*time.Second {
		return false
	}
	return true
}

// overloadConfig tunes the subsystem so the drill's spike actually
// crosses the thresholds: a tight concurrency bound, a fast-sampling
// controller with short dwell, and a small retry budget.
func overloadConfig() core.OverloadConfig {
	return core.OverloadConfig{
		Admission: overload.AdmissionConfig{
			MaxConcurrent:      4,
			MaxQueuePerTenant:  10,
			ShedQueuePerTenant: 4,
			Target:             500 * time.Millisecond,
			Interval:           250 * time.Millisecond,
		},
		Budget: overload.BudgetConfig{Burst: 20, RefillPerSecond: 2},
		Controller: overload.ControllerConfig{
			SampleEvery:     time.Second,
			QueueHigh:       6,
			OOMRateHigh:     2.5,
			ReclaimRateHigh: 4,
			LatencyHigh:     time.Second,
			BrownoutEnter:   1.0,
			BrownoutExit:    0.4,
			ShedEnter:       2.0,
			ShedExit:        0.6,
			MinDwell:        3 * time.Second,
		},
	}
}

// Overload runs four tenants against a deployment whose admission gate
// allows four concurrent invocations, then hits it with the combined
// drill: tenant t0's arrival rate jumps ~7× while one worker crashes
// mid-spike and restarts before the spike ends. Every fifth t0 request
// under-predicts its memory and OOMs, so the spike also pressures the
// retry budget. The run reports per-tenant goodput, shed counts, the
// degradation timeline and the zero-loss check; a (seed) pair replays
// identically.
func Overload(seed int64, quick bool) (*Table, *OverloadResult) {
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(ModeOFC, cfg)
	sys := d.Sys
	env := d.Env

	oc := sys.EnableOverload(overloadConfig())
	sys.KV.SetCrashDetectTimeout(3 * time.Second)

	// Phase plan: baseline → spike (crash + restart inside it) → calm
	// cooldown long enough for the controller to walk back to Normal.
	spikeStart := 20 * time.Second
	spikeLen := 30 * time.Second
	crashAfter := 10 * time.Second
	downtime := 10 * time.Second
	runFor := 90 * time.Second
	if quick {
		spikeStart = 8 * time.Second
		spikeLen = 15 * time.Second
		crashAfter = 5 * time.Second
		downtime = 6 * time.Second
		runFor = 50 * time.Second
	}
	calmAt := spikeStart + spikeLen

	const (
		basePace  = 700 * time.Millisecond
		spikePace = 75 * time.Millisecond
		workDur   = 300 * time.Millisecond
		oomEvery  = 5
	)

	tenants := []string{"t0", "t1", "t2", "t3"}
	spikeTenant := tenants[0]

	// The spike/calm hooks flip the victim tenant's pace on the same
	// deterministic timeline as the crash.
	var paceMu sync.Mutex
	paces := make(map[string]time.Duration, len(tenants))
	for _, t := range tenants {
		paces[t] = basePace
	}
	setPace := func(tenant string, p time.Duration) {
		paceMu.Lock()
		paces[tenant] = p
		paceMu.Unlock()
	}
	paceOf := func(tenant string) time.Duration {
		paceMu.Lock()
		defer paceMu.Unlock()
		return paces[tenant]
	}

	sched := chaos.NewSchedule()
	sched.OverloadCrash(spikeStart, spikeLen, crashAfter, downtime, d.Workers[1],
		func() { setPace(spikeTenant, spikePace) },
		func() { setPace(spikeTenant, basePace) })
	inj := sys.ApplyChaos(sched, seed)

	// One function per tenant: read a staged input, transform, write a
	// final output under a driver-chosen key. Every oomEvery-th t0
	// request peaks above the 128 MB advice (but under booked), so it is
	// OOM-killed and needs a budgeted retry; the transform is far below
	// the monitor's rescue threshold.
	fns := make(map[string]*faas.Function, len(tenants))
	for _, tenant := range tenants {
		tenant := tenant
		fns[tenant] = &faas.Function{
			Name: "ovl-" + tenant, Tenant: tenant, MemoryBooked: 256 << 20, InputType: "image",
			Body: func(ctx *faas.Ctx) error {
				if _, err := ctx.Extract(ctx.InputKeys()[0]); err != nil {
					return err
				}
				peak := int64(96 << 20)
				if ctx.Arg("oom") > 0 {
					peak = 200 << 20
				}
				if err := ctx.Transform(workDur, peak); err != nil {
					return err
				}
				out := fmt.Sprintf("ovl/%s/out/%d", tenant, int(ctx.Arg("seq")))
				return ctx.Load(out, faas.Blob{Size: 64 << 10}, faas.KindFinal)
			},
		}
		d.Register(fns[tenant])
	}
	d.Platform.Advisor = alwaysCache{}

	rng := rand.New(rand.NewSource(seed))
	pools := make(map[string]*workload.InputPool, len(tenants))
	for _, tenant := range tenants {
		pools[tenant] = workload.NewInputPool(rng, "image", "ovl/"+tenant+"/in", []int64{32 << 10, 64 << 10}, 3)
	}

	res := &OverloadResult{SpikeTenant: spikeTenant}
	tc := metrics.NewTenantCounters()
	var recMu sync.Mutex
	var outputs []string
	var baseLat, spikeLat, recoverLat []time.Duration

	record := func(tenant string, seq int, start time.Duration, r *faas.Result) {
		recMu.Lock()
		defer recMu.Unlock()
		switch {
		case r.Err == nil:
			tc.Add(tenant, "good", 1)
			outputs = append(outputs, fmt.Sprintf("ovl/%s/out/%d", tenant, seq))
			lat := time.Duration(r.End - r.Start)
			switch {
			case start < spikeStart:
				baseLat = append(baseLat, lat)
			case start < calmAt:
				spikeLat = append(spikeLat, lat)
			default:
				recoverLat = append(recoverLat, lat)
			}
		case errors.Is(r.Err, overload.ErrShed):
			tc.Add(tenant, "shed", 1)
		default:
			tc.Add(tenant, "failed", 1)
		}
	}

	d.Run(func() {
		for _, pool := range pools {
			pool.Stage(d.Writer)
		}
		wg := sim.NewWaitGroup(env)
		for ti, tenant := range tenants {
			ti, tenant := ti, tenant
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				pool := pools[tenant]
				// Staggered starts de-synchronize the tenants' arrival
				// processes (lockstep arrivals make the queue-depth
				// samples spiky and the baseline artificially bursty).
				env.Sleep(time.Duration(ti) * 170 * time.Millisecond)
				for seq := 0; ; seq++ {
					start := time.Duration(env.Now())
					if start >= runFor {
						return
					}
					seq := seq
					in := pool.Inputs[seq%len(pool.Inputs)]
					args := map[string]float64{"seq": float64(seq)}
					if tenant == spikeTenant && seq%oomEvery == oomEvery-1 {
						args["oom"] = 1
					}
					tc.Add(tenant, "offered", 1)
					wg.Add(1)
					env.Go(func() {
						defer wg.Done()
						r := d.Platform.Invoke(&faas.Request{
							Function: fns[tenant], Args: args,
							InputKeys: []string{in.Key}, InputFeatures: in.Features,
						})
						record(tenant, seq, start, r)
					})
					env.Sleep(paceOf(tenant))
				}
			})
		}
		wg.Wait()
		// Let the queue drain and the controller observe the calm before
		// the Run drain stops the clock.
		env.Sleep(2 * time.Second)
	})

	for _, tenant := range tc.Tenants() {
		res.Tenants = append(res.Tenants, TenantLoad{
			Name:    tenant,
			Offered: tc.Of(tenant, "offered"),
			Good:    tc.Of(tenant, "good"),
			Shed:    tc.Of(tenant, "shed"),
			Failed:  tc.Of(tenant, "failed"),
		})
		res.Invocations += tc.Of(tenant, "offered")
	}

	ps := d.Platform.Stats()
	res.Shed, res.RetryDenied = ps.Shed, ps.RetryDenied
	res.OOMKills, res.Retries, res.Reroutes = ps.OOMKills, ps.Retries, ps.Reroutes
	cs := sys.RC.Stats()
	res.StoreRetries, res.StoreDenied = cs.CacheRetries, cs.RetryDenied
	res.BrownoutSkips, res.BrownoutBypasses = cs.BrownoutSkips, cs.BrownoutBypasses
	as := oc.Admission.Stats()
	res.ShedQueueFull, res.ShedStale, res.MaxQueueDepth = as.ShedQueueFull, as.ShedStale, as.MaxDepth
	bs := oc.Budget.Stats()
	res.BudgetGranted, res.BudgetDenied = bs.Granted, bs.Denied
	res.BudgetCap = oc.Budget.Cap(time.Duration(env.Now()))

	res.BaselineP99 = p99(baseLat)
	res.SpikeP99 = p99(spikeLat)
	res.RecoverP99 = p99(recoverLat)

	res.Transitions = oc.Timeline.Labels()
	res.FinalState = oc.State().String()
	for _, tr := range res.Transitions {
		if strings.HasSuffix(tr, "->shed") {
			res.ReachedShed = true
		}
	}
	res.Applied = inj.Applied()

	// Zero-data-loss check against the RSDS ground truth: every final
	// output acknowledged to an invoker must be persisted — whether it
	// took the ordinary shadow+persistor path or the brownout bypass.
	res.Outputs = len(outputs)
	for _, key := range outputs {
		m, ok := d.Store.MetaOf(key)
		if !ok || m.IsShadow() || m.Size == 0 {
			res.LostOutputs++
		}
	}

	t := &Table{
		Title:   "Overload drill — 5× spike on one tenant with a mid-spike worker crash",
		Headers: []string{"Metric", "Value"},
	}
	t.Add("invocations", fmt.Sprintf("%d offered (%d shed, %d denied retries)", res.Invocations, res.Shed, res.RetryDenied))
	for _, tl := range res.Tenants {
		label := "tenant " + tl.Name
		if tl.Name == res.SpikeTenant {
			label += " (spike)"
		}
		t.Add(label, fmt.Sprintf("offered %d, good %d, shed %d, failed %d", tl.Offered, tl.Good, tl.Shed, tl.Failed))
	}
	t.Add("queue", fmt.Sprintf("max depth %d; shed %d full, %d stale", res.MaxQueueDepth, res.ShedQueueFull, res.ShedStale))
	t.Add("retries", fmt.Sprintf("%d OOM kills → %d retries, %d reroutes, %d store retries (total %d ≤ cap %.0f)",
		res.OOMKills, res.Retries, res.Reroutes, res.StoreRetries, res.TotalRetries(), res.BudgetCap))
	t.Add("retry budget", fmt.Sprintf("%d granted, %d denied", res.BudgetGranted, res.BudgetDenied))
	t.Add("brownout", fmt.Sprintf("%d admissions skipped, %d writes diverted to RSDS", res.BrownoutSkips, res.BrownoutBypasses))
	t.Add("p99 latency", fmt.Sprintf("baseline %s, spike %s, recovery %s", fmtDur(res.BaselineP99), fmtDur(res.SpikeP99), fmtDur(res.RecoverP99)))
	t.Add("state timeline", oc.Timeline.String())
	t.Add("final state", res.FinalState)
	t.Add("final outputs", fmt.Sprintf("%d persisted, %d lost", res.Outputs-res.LostOutputs, res.LostOutputs))
	t.Note = "bounded degradation: fair per-tenant goodput under the spike, retries capped by the budget, no acked write lost"
	return t, res
}
