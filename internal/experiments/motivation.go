package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/objstore"
	"ofc/internal/workload"
)

// Figure2 reproduces the motivation scatter: memory usage of the image
// blurring function against input byte size and against the blurring
// radius, showing that neither feature alone predicts memory.
func Figure2(points int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	spec := workload.SpecByName("wand_blur")
	t := &Table{
		Title:   "Figure 2 — wand_blur memory vs input size and sigma",
		Headers: []string{"Input size (B)", "Sigma", "Memory (MB)"},
		Note:    "memory spans a wide band at any fixed size or sigma (the paper's point: no single feature predicts it)",
	}
	for i := 0; i < points; i++ {
		size := int64(rng.Float64() * float64(6<<20)) // 0..6 MB, as in the figure
		if size < 1<<10 {
			size = 1 << 10
		}
		f := workload.GenFeatures(rng, "image", size)
		args := spec.GenArgs(rng)
		mem := spec.PeakMem(fmt.Sprintf("fig2/%d", i), f, args)
		t.Add(size, args["sigma"], mem>>20)
	}
	return t
}

// Figure3Row is one stacked bar of the motivation experiment.
type Figure3Row struct {
	Workload string
	Size     int64
	Backend  string
	E, T, L  time.Duration
}

// ELShare is (E+L)/(E+T+L).
func (r Figure3Row) ELShare() float64 {
	total := r.E + r.T + r.L
	if total == 0 {
		return 0
	}
	return float64(r.E+r.L) / float64(total)
}

// Figure3 reproduces the §2.2.3 motivation: ETL phase split of
// sharp_resize and MapReduce word count against an S3-like RSDS versus
// a Redis-like IMOC.
func Figure3(seed int64) (*Table, []Figure3Row) {
	var rows []Figure3Row
	imgSizes := []int64{1 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	mrSizes := []int64{5 << 20, 10 << 20, 20 << 20, 30 << 20}

	for _, mode := range []Mode{ModeSwift, ModeRedis} {
		backend := "S3"
		if mode == ModeRedis {
			backend = "Redis"
		}
		// sharp_resize single-stage.
		spec := workload.SpecByName("sharp_resize")
		for _, size := range imgSizes {
			cfg := DefaultDeploy()
			cfg.Seed = seed
			cfg.RSDS = objstore.S3Profile()
			d := NewDeployment(mode, cfg)
			fn := d.Suite.Build(spec, "moti", 0)
			d.Register(fn)
			rng := rand.New(rand.NewSource(seed))
			pool := workload.NewInputPool(rng, "image", fmt.Sprintf("m3/%s/%d", backend, size), []int64{size}, 1)
			var row Figure3Row
			d.Run(func() {
				pool.Stage(d.Writer)
				in := pool.Inputs[0]
				// Warm the sandbox so phases, not cold start, dominate.
				d.Platform.Invoke(workload.NewRequest(fn, spec, in, spec.GenArgs(rng)))
				res := d.Platform.Invoke(workload.NewRequest(fn, spec, in, map[string]float64{"width": 256}))
				row = Figure3Row{Workload: "sharp_resize", Size: size, Backend: backend,
					E: res.Extract, T: res.Transform, L: res.Load}
			})
			rows = append(rows, row)
		}
		// MapReduce word count.
		for _, size := range mrSizes {
			cfg := DefaultDeploy()
			cfg.Seed = seed
			cfg.RSDS = objstore.S3Profile()
			d := NewDeployment(mode, cfg)
			pl := workload.NewMapReduce(d.Suite, "moti", workload.ProfileNormal, 2<<30)
			for _, fn := range pl.Funcs {
				d.Register(fn)
			}
			rng := rand.New(rand.NewSource(seed))
			pool := workload.NewInputPool(rng, "text", fmt.Sprintf("m3mr/%s/%d", backend, size), []int64{size}, 1)
			var row Figure3Row
			d.Run(func() {
				pl.StageInput(d.Writer, pool.Inputs[0])
				res := pl.Run(d.Platform, pool.Inputs[0], "fig3")
				e, tt, l := res.Phases()
				row = Figure3Row{Workload: "map_reduce", Size: size, Backend: backend, E: e, T: tt, L: l}
			})
			rows = append(rows, row)
		}
	}

	t := &Table{
		Title:   "Figure 3 — ETL phase durations: S3-like RSDS vs Redis-like IMOC",
		Headers: []string{"Workload", "Input", "Backend", "E", "T", "L", "E+L share"},
	}
	for _, r := range rows {
		t.Add(r.Workload, fmtSize(r.Size), r.Backend, r.E, r.T, r.L, pct(r.ELShare()))
	}
	t.Note = "paper: E&L up to 97% of sharp_resize (128 kB) on S3 and up to 52% of map_reduce (30 MB); negligible on Redis"
	return t, rows
}

// fmtSize renders byte sizes compactly.
func fmtSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dkB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
