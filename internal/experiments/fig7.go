package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ofc/internal/faas"
	"ofc/internal/workload"
)

// Scenario is one bar group of Figure 7.
type Scenario int

const (
	// ScenSwift is OWK-Swift (worst-case data access).
	ScenSwift Scenario = iota
	// ScenRedis is OWK-Redis (best-case data access).
	ScenRedis
	// ScenLH is OFC with the input cached on the executing node.
	ScenLH
	// ScenM is OFC with a cold cache (miss).
	ScenM
	// ScenRH is OFC with the input cached on a different node.
	ScenRH
)

// String names the scenario as in the figure legend.
func (s Scenario) String() string {
	switch s {
	case ScenSwift:
		return "Swift"
	case ScenRedis:
		return "Redis"
	case ScenLH:
		return "LH"
	case ScenM:
		return "M"
	default:
		return "RH"
	}
}

// Figure7Row is one stacked bar.
type Figure7Row struct {
	Workload string
	Size     int64
	Scenario Scenario
	E, T, L  time.Duration
}

// Total sums the phases.
func (r Figure7Row) Total() time.Duration { return r.E + r.T + r.L }

// fig7SingleStage lists the six image functions shown in Figure 7.
var fig7SingleStage = []string{"wand_blur", "wand_resize", "wand_sepia", "wand_rotate", "wand_denoise", "wand_edge"}

// singleSizes returns the input-size grid.
func singleSizes(quick bool) []int64 {
	if quick {
		return []int64{16 << 10}
	}
	return []int64{1 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
}

// measureSingle runs one (function, size, scenario) cell on a fresh
// deployment and returns its phase durations.
func measureSingle(specName string, size int64, scen Scenario, seed int64) Figure7Row {
	spec := workload.SpecByName(specName)
	mode := ModeOFC
	switch scen {
	case ScenSwift:
		mode = ModeSwift
	case ScenRedis:
		mode = ModeRedis
	}
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(mode, cfg)
	fn := d.Suite.Build(spec, "fig7", 0)
	d.Register(fn)
	rng := rand.New(rand.NewSource(seed))
	pool := workload.NewInputPool(rng, spec.InputType, fmt.Sprintf("f7/%s/%d/%d", specName, size, scen), []int64{size}, 1)
	if mode == ModeOFC {
		d.Pretrain(spec, fn, pool, 400)
	}
	args := spec.GenArgs(rng)
	row := Figure7Row{Workload: specName, Size: size, Scenario: scen}
	d.Run(func() {
		pool.Stage(d.Writer)
		in := pool.Inputs[0]
		req := func() *faas.Request { return workload.NewRequest(fn, spec, in, args) }
		switch scen {
		case ScenSwift, ScenRedis:
			d.Platform.Invoke(req()) // warm the sandbox
			res := d.Platform.Invoke(req())
			row.E, row.T, row.L = res.Extract, res.Transform, res.Load
		case ScenM:
			res := d.Platform.Invoke(req())
			row.E, row.T, row.L = res.Extract, res.Transform, res.Load
		case ScenLH:
			d.Platform.Invoke(req()) // miss + admission
			d.Env.Sleep(2 * time.Second)
			res := d.Platform.Invoke(req())
			row.E, row.T, row.L = res.Extract, res.Transform, res.Load
		case ScenRH:
			restore := d.PinTo(d.Workers[0])
			d.Platform.Invoke(req()) // admit on worker 0
			restore()
			d.Env.Sleep(2 * time.Second)
			restore = d.PinTo(d.Workers[1])
			res := d.Platform.Invoke(req())
			restore()
			row.E, row.T, row.L = res.Extract, res.Transform, res.Load
		}
	})
	return row
}

// pipelineBuilder builds one of the four multi-stage applications.
type pipelineBuilder struct {
	name  string
	sizes []int64
	quick []int64
	build func(su *workload.Suite) *workload.Pipeline
}

func fig7Pipelines() []pipelineBuilder {
	return []pipelineBuilder{
		{name: "map_reduce", sizes: []int64{5 << 20, 10 << 20, 20 << 20, 30 << 20}, quick: []int64{10 << 20},
			build: func(su *workload.Suite) *workload.Pipeline {
				return workload.NewMapReduce(su, "fig7", workload.ProfileNormal, 2<<30)
			}},
		{name: "THIS", sizes: []int64{125 << 20, 300 << 20}, quick: []int64{50 << 20},
			build: func(su *workload.Suite) *workload.Pipeline {
				return workload.NewTHIS(su, "fig7", workload.ProfileNormal, 2<<30)
			}},
		{name: "IMAD", sizes: []int64{2 << 20, 8 << 20, 16 << 20}, quick: []int64{8 << 20},
			build: func(su *workload.Suite) *workload.Pipeline {
				return workload.NewIMAD(su, "fig7", workload.ProfileNormal, 2<<30)
			}},
		{name: "ImageProcessing", sizes: []int64{64 << 10, 256 << 10, 1 << 20}, quick: []int64{256 << 10},
			build: func(su *workload.Suite) *workload.Pipeline {
				return workload.NewImageProcessing(su, "fig7", workload.ProfileNormal, 2<<30)
			}},
	}
}

// measurePipeline runs one (pipeline, size, scenario) cell.
func measurePipeline(pb pipelineBuilder, size int64, scen Scenario, seed int64) Figure7Row {
	mode := ModeOFC
	switch scen {
	case ScenSwift:
		mode = ModeSwift
	case ScenRedis:
		mode = ModeRedis
	}
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(mode, cfg)
	pl := pb.build(d.Suite)
	for _, fn := range pl.Funcs {
		d.Register(fn)
	}
	if mode == ModeOFC {
		pl.Pretrain(d.Sys.Trainer, d.Store.Profile(), 300, rand.New(rand.NewSource(seed)))
	}
	rng := rand.New(rand.NewSource(seed))
	pool := workload.NewInputPool(rng, pl.InputType, fmt.Sprintf("f7p/%s/%d/%d", pb.name, size, scen), []int64{size}, 1)
	row := Figure7Row{Workload: pb.name, Size: size, Scenario: scen}
	d.Run(func() {
		in := pool.Inputs[0]
		pl.StageInput(d.Writer, in)
		record := func(res *workload.PipelineResult) {
			row.E, row.T, row.L = res.Phases()
		}
		switch scen {
		case ScenSwift, ScenRedis, ScenM:
			record(pl.Run(d.Platform, in, "f7-a"))
		case ScenLH:
			pl.Run(d.Platform, in, "f7-warm")
			d.Env.Sleep(2 * time.Second)
			record(pl.Run(d.Platform, in, "f7-b"))
		case ScenRH:
			restore := d.PinTo(d.Workers[0])
			pl.Run(d.Platform, in, "f7-warm")
			restore()
			d.Env.Sleep(2 * time.Second)
			restore = d.PinTo(d.Workers[1])
			record(pl.Run(d.Platform, in, "f7-b"))
			restore()
		}
	})
	return row
}

// fig7Cell is one measurement of the Figure 7 grid: a (workload, size,
// scenario) triple, single-stage or pipeline.
type fig7Cell struct {
	single string // single-stage spec name, or "" for a pipeline cell
	pipe   pipelineBuilder
	size   int64
	scen   Scenario
}

// Figure7 sweeps the six single-stage functions and the four pipelines
// across the five scenarios. Every cell is an independent deployment
// with its own Env, so the grid runs on the Parallel worker pool; rows
// come back in the same nested-loop order as the sequential sweep.
func Figure7(quick bool, seed int64) (*Table, []Figure7Row) {
	scens := []Scenario{ScenSwift, ScenRedis, ScenLH, ScenM, ScenRH}
	var cells []fig7Cell
	for _, name := range fig7SingleStage {
		for _, size := range singleSizes(quick) {
			for _, sc := range scens {
				cells = append(cells, fig7Cell{single: name, size: size, scen: sc})
			}
		}
	}
	for _, pb := range fig7Pipelines() {
		sizes := pb.sizes
		if quick {
			sizes = pb.quick
		}
		for _, size := range sizes {
			for _, sc := range scens {
				cells = append(cells, fig7Cell{pipe: pb, size: size, scen: sc})
			}
		}
	}
	rows := Parallel(len(cells), 0, func(i int) Figure7Row {
		c := cells[i]
		if c.single != "" {
			return measureSingle(c.single, c.size, c.scen, seed)
		}
		return measurePipeline(c.pipe, c.size, c.scen, seed)
	})
	t := &Table{
		Title:   "Figure 7 — ETL phase durations across OWK-Swift / OWK-Redis / OFC {LH, M, RH}",
		Headers: []string{"Workload", "Input", "Scenario", "E", "T", "L", "Total", "vs Swift"},
	}
	base := map[string]time.Duration{}
	for _, r := range rows {
		if r.Scenario == ScenSwift {
			base[fmt.Sprintf("%s/%d", r.Workload, r.Size)] = r.Total()
		}
	}
	for _, r := range rows {
		b := base[fmt.Sprintf("%s/%d", r.Workload, r.Size)]
		t.Add(r.Workload, fmtSize(r.Size), r.Scenario.String(), r.E, r.T, r.L, r.Total(),
			fmt.Sprintf("%+.1f%%", -improvement(b, r.Total())*100))
	}
	return t, rows
}

// Figure7Replicated mirrors the paper's methodology ("we run each
// experiment 5 times and report the average"): the quick Figure 7 grid
// across several seeds, reporting mean and range of the LH improvement
// per workload.
func Figure7Replicated(seeds []int64) *Table {
	t := &Table{
		Title:   "Figure 7 (replicated) — LH improvement vs Swift, mean [min..max] across seeds",
		Headers: []string{"Workload", "Input", "Mean", "Min", "Max"},
	}
	type cell struct{ imps []float64 }
	cells := map[string]*cell{}
	var order []string
	for _, seed := range seeds {
		_, rows := Figure7(true, seed)
		base := map[string]time.Duration{}
		for _, r := range rows {
			if r.Scenario == ScenSwift {
				base[fmt.Sprintf("%s/%d", r.Workload, r.Size)] = r.Total()
			}
		}
		for _, r := range rows {
			if r.Scenario != ScenLH {
				continue
			}
			key := fmt.Sprintf("%s/%d", r.Workload, r.Size)
			c := cells[key]
			if c == nil {
				c = &cell{}
				cells[key] = c
				order = append(order, key)
			}
			c.imps = append(c.imps, improvement(base[key], r.Total()))
		}
	}
	for _, key := range order {
		c := cells[key]
		mean, min, max := 0.0, c.imps[0], c.imps[0]
		for _, v := range c.imps {
			mean += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		mean /= float64(len(c.imps))
		parts := strings.SplitN(key, "/", 2)
		sizeB := int64(0)
		fmt.Sscan(parts[1], &sizeB)
		t.Add(parts[0], fmtSize(sizeB), pct(mean), pct(min), pct(max))
	}
	t.Note = fmt.Sprintf("%d seeds; the paper averages 5 runs", len(seeds))
	return t
}
