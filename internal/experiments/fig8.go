package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/workload"
)

// Figure8Row is one scaling-impact measurement.
type Figure8Row struct {
	Size        int64
	Scenario    string // Sc0..Sc3
	ScalingTime time.Duration
	CgroupTime  time.Duration
	ExecTime    time.Duration
}

// Figure8 reproduces §7.2.1's negative-impact study on wand_sepia:
// Sc0 no cache shrink, Sc1 shrink without data movement, Sc2 shrink
// with migration-by-promotion, Sc3 shrink with eviction.
func Figure8(seed int64) (*Table, []Figure8Row) {
	var rows []Figure8Row
	spec := workload.SpecByName("wand_sepia")
	sizes := []int64{1 << 10, 16 << 10, 512 << 10, 3072 << 10}
	for _, size := range sizes {
		for _, scen := range []string{"Sc0", "Sc1", "Sc2", "Sc3"} {
			rows = append(rows, runFig8Cell(spec, size, scen, seed))
		}
	}
	t := &Table{
		Title:   "Figure 8 — impact of cache down-scaling on wand_sepia",
		Headers: []string{"Input", "Scenario", "Scaling", "cgroup", "Exec total"},
		Note:    "paper: Sc1 ≈ 289µs, Sc3 ≈ 373µs, Sc2 grows with migrated bytes; cgroup ≈ 23.8ms",
	}
	for _, r := range rows {
		t.Add(fmtSize(r.Size), r.Scenario, r.ScalingTime, r.CgroupTime, r.ExecTime)
	}
	return t, rows
}

func runFig8Cell(spec *workload.Spec, size int64, scen string, seed int64) Figure8Row {
	cfg := DefaultDeploy()
	cfg.Seed = seed
	cfg.NodeCapacity = 4 << 30
	d := NewDeployment(ModeOFC, cfg)
	sys := d.Sys
	fn := d.Suite.Build(spec, "fig8", 0)
	d.Register(fn)
	rng := rand.New(rand.NewSource(seed))
	pool := workload.NewInputPool(rng, "image", fmt.Sprintf("f8/%s/%d", scen, size), []int64{size}, 1)
	d.Pretrain(spec, fn, pool, 400)
	args := spec.GenArgs(rng)
	row := Figure8Row{Size: size, Scenario: scen, CgroupTime: d.Platform.Config().ResizeLatency}

	w0 := d.Workers[0]
	d.Env.Go(func() {
		pool.Stage(d.Writer)
		// Hoard *all* free memory into the cache on every node (no
		// slack), so that any sandbox creation must shrink the cache —
		// the condition Figure 8 studies.
		for i, w := range d.Workers {
			inv := sys.Platform.Invokers()[i]
			g := inv.SetCacheGrant(inv.Capacity())
			sys.KV.SetMemoryLimit(w, g)
		}
		inv := sys.Platform.Invokers()[0]
		switch scen {
		case "Sc2", "Sc3":
			// Fill worker 0's cache so a shrink must move data.
			grant := inv.CacheGrant()
			var filled int64
			for i := 0; filled < grant-32<<20; i++ {
				key := fmt.Sprintf("f8fill/%d", i)
				if _, err := sys.KV.Write(sys.CtrlNode, key, kvstore.Synthetic(8<<20),
					map[string]string{"kind": "input", "dirty": "0"}, w0); err != nil {
					break
				}
				filled += 8 << 20
			}
			if scen == "Sc3" {
				// No node can take over a master copy: eviction only.
				for _, w := range d.Workers[1:] {
					sys.KV.SetMemoryLimit(w, 0)
				}
			}
		}
		in := pool.Inputs[0]
		req := func() *faas.Request { return workload.NewRequest(fn, spec, in, args) }
		restore := d.PinTo(w0)
		defer restore()
		if scen == "Sc0" {
			// First run right-sizes a sandbox; the measured second run
			// needs no cache scaling at all.
			sys.Platform.Invoke(req())
		}
		res := sys.Platform.Invoke(req())
		row.ScalingTime = res.ScaleDownTime
		// "Overall function execution time" as the paper plots it: the
		// ETL phases plus the scaling and cgroup overheads (sandbox
		// creation/cold-start is a separate axis in their setup).
		row.ExecTime = res.Extract + res.Transform + res.Load + row.ScalingTime + row.CgroupTime
		sys.Env.Stop()
	})
	d.Env.Run()
	return row
}

// MigrationSeries measures the optimized migration cost against the
// aggregate size moved (paper: 0.18 ms for 8 MB up to 13.5 ms for
// 1 GB), promoting 8 MB objects one by one.
func MigrationSeries(seed int64) (*Table, map[int64]time.Duration) {
	cfg := DefaultDeploy()
	cfg.Seed = seed
	d := NewDeployment(ModeOFC, cfg)
	sys := d.Sys
	out := map[int64]time.Duration{}
	sizes := []int64{8 << 20, 64 << 20, 256 << 20, 512 << 20, 1 << 30}
	d.Env.Go(func() {
		for _, w := range d.Workers {
			sys.KV.SetMemoryLimit(w, 4<<30)
			sys.Platform.Invokers()[0].SetCacheGrant(4 << 30)
		}
		count := 0
		for _, total := range sizes {
			n := int(total / (8 << 20))
			keys := make([]string, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("mig/%d/%d", total, i)
				count++
				if _, err := sys.KV.Write(sys.CtrlNode, keys[i], kvstore.Synthetic(8<<20),
					map[string]string{"kind": "input"}, d.Workers[0]); err != nil {
					panic(err)
				}
			}
			start := sys.Env.Now()
			for _, k := range keys {
				if err := sys.KV.MigrateToBackup(k); err != nil {
					panic(err)
				}
			}
			out[total] = time.Duration(sys.Env.Now() - start)
			for _, k := range keys {
				sys.KV.Evict(k)
			}
		}
		sys.Env.Stop()
	})
	d.Env.Run()
	t := &Table{
		Title:   "§7.2.1 — optimized migration time vs aggregate size",
		Headers: []string{"Aggregate", "Time", "Paper"},
	}
	paper := map[int64]string{8 << 20: "0.18ms", 64 << 20: "1.2ms", 256 << 20: "3.8ms", 512 << 20: "7.5ms", 1 << 30: "13.5ms"}
	for _, s := range sizes {
		t.Add(fmtSize(s), out[s], paper[s])
	}
	return t, out
}
