// Package experiments regenerates every table and figure of the
// paper's evaluation (§2.2.3 and §7): each experiment builds the
// deployments it needs (OWK-Swift, OWK-Redis, OFC), drives the
// workloads, and returns the rows/series the paper reports.
package experiments

import (
	"time"

	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/imoc"
	"ofc/internal/memctl"
	"ofc/internal/objstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/workload"
)

// Mode selects the system under test.
type Mode int

const (
	// ModeSwift is vanilla OWK with all data in the Swift-like RSDS.
	ModeSwift Mode = iota
	// ModeRedis is vanilla OWK with all data in the Redis-like IMOC.
	ModeRedis
	// ModeOFC is the full OFC stack.
	ModeOFC
)

// String names the mode the way Figure 7's legend does.
func (m Mode) String() string {
	switch m {
	case ModeSwift:
		return "OWK-Swift"
	case ModeRedis:
		return "OWK-Redis"
	default:
		return "OFC"
	}
}

// Deployment is one system under test plus its workload suite.
type Deployment struct {
	Mode     Mode
	Env      *sim.Env
	Net      *simnet.Network
	Platform *faas.Platform
	Store    *objstore.Store
	Redis    *imoc.Cache
	Sys      *core.System // non-nil in ModeOFC
	Suite    *workload.Suite
	Writer   workload.ObjectWriter
	Ctrl     simnet.NodeID
	Workers  []simnet.NodeID
}

// DeployConfig sizes a deployment.
type DeployConfig struct {
	Workers      int
	NodeCapacity int64
	Seed         int64
	RSDS         objstore.Profile
	// Policy selects the memctl policy combination for the OFC cache
	// agents (zero value = the paper's defaults). Ignored by the
	// vanilla modes.
	Policy memctl.Spec
	// Tune, when non-nil, adjusts the assembled core options before
	// the OFC system is built (the policy ablation uses it to shorten
	// the agent cadences so eviction fires inside a short run).
	// Ignored by the vanilla modes.
	Tune func(*core.Options)
}

// DefaultDeploy mirrors the paper's testbed: 4 workers, plus the
// controller and storage machines.
func DefaultDeploy() DeployConfig {
	return DeployConfig{Workers: 4, NodeCapacity: 16 << 30, Seed: 1, RSDS: objstore.SwiftProfile()}
}

// NewDeployment builds the system under test.
func NewDeployment(mode Mode, cfg DeployConfig) *Deployment {
	su := workload.NewSuite()
	d := &Deployment{Mode: mode, Suite: su}
	switch mode {
	case ModeOFC:
		opts := core.DefaultOptions()
		opts.Workers = cfg.Workers
		opts.NodeCapacity = cfg.NodeCapacity
		opts.Seed = cfg.Seed
		opts.RSDS = cfg.RSDS
		opts.Agent.Policy = cfg.Policy
		if cfg.Tune != nil {
			cfg.Tune(&opts)
		}
		sys := core.NewSystem(opts)
		d.Sys = sys
		d.Env = sys.Env
		d.Net = sys.Net
		d.Platform = sys.Platform
		d.Store = sys.RSDS
		d.Ctrl = sys.CtrlNode
		d.Workers = sys.WorkerNodes
		d.Writer = workload.RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode}
	default:
		env := sim.NewEnv(cfg.Seed)
		net := simnet.New(env, simnet.DefaultConfig())
		ctrl := net.AddNode("controller").ID
		storage := net.AddNode("storage").ID
		store := objstore.New(net, storage, cfg.RSDS)
		p := faas.New(net, ctrl, faas.DefaultConfig())
		var storageBinding faas.Storage
		if mode == ModeRedis {
			redisNode := net.AddNode("redis").ID
			d.Redis = imoc.New(net, redisNode, imoc.RedisProfile())
			storageBinding = faas.NewIMOCStorage(d.Redis)
			d.Writer = workload.IMOCWriter{Suite: su, Cache: d.Redis, Node: ctrl}
		} else {
			storageBinding = faas.NewRSDSStorage(store)
			d.Writer = workload.RSDSWriter{Suite: su, Store: store, Node: ctrl}
		}
		for i := 0; i < cfg.Workers; i++ {
			w := net.AddNode("worker").ID
			p.AddInvoker(w, cfg.NodeCapacity, storageBinding)
			d.Workers = append(d.Workers, w)
		}
		d.Env = env
		d.Net = net
		d.Platform = p
		d.Store = store
		d.Ctrl = ctrl
	}
	return d
}

// Run executes body as a simulation process, drains background work
// and drives the simulation to completion.
func (d *Deployment) Run(body func()) {
	if d.Sys != nil {
		d.Sys.Run(body)
		return
	}
	d.Env.Go(func() {
		body()
		d.Env.Sleep(5 * time.Second)
		d.Env.Stop()
	})
	d.Env.Run()
}

// Register adds a function (OFC also initializes its model state).
func (d *Deployment) Register(fn *faas.Function) {
	if d.Sys != nil {
		d.Sys.Register(fn)
		return
	}
	d.Platform.Register(fn)
}

// PinTo forces all routing to the given worker node (the Figure 7
// remote-hit scenario); returns a restore function.
func (d *Deployment) PinTo(node simnet.NodeID) func() {
	old := d.Platform.Router
	d.Platform.Router = pinRouter{node: node}
	return func() { d.Platform.Router = old }
}

type pinRouter struct{ node simnet.NodeID }

// Route implements faas.Router.
func (r pinRouter) Route(req *faas.Request, all []*faas.Invoker, warm []*faas.Invoker) *faas.Invoker {
	for _, inv := range all {
		if inv.Node() == r.node {
			return inv
		}
	}
	return nil
}

// Pretrain matures a single-stage function's models from the pool.
func (d *Deployment) Pretrain(spec *workload.Spec, fn *faas.Function, pool *workload.InputPool, n int) {
	if d.Sys == nil {
		return
	}
	rng := d.Env.NewRand()
	samples := workload.TrainingSamples(spec, fn, pool, n, rng, d.Store.Profile())
	d.Sys.Trainer.Pretrain(fn, samples)
}
