package metrics

import "sync/atomic"

// MemoCounters tracks a memoization cache that sits on a hot path:
// increments are lock-free atomics so the cache's bookkeeping never
// serializes the callers it exists to speed up.
type MemoCounters struct {
	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

// Hit records a served-from-cache lookup.
func (m *MemoCounters) Hit() { m.hits.Add(1) }

// Miss records a lookup that fell through to the computation.
func (m *MemoCounters) Miss() { m.misses.Add(1) }

// Invalidation records a cache flush (e.g. a model retrain).
func (m *MemoCounters) Invalidation() { m.invalidations.Add(1) }

// Snapshot reads the three counters.
func (m *MemoCounters) Snapshot() (hits, misses, invalidations int64) {
	return m.hits.Load(), m.misses.Load(), m.invalidations.Load()
}
