// Package metrics provides the small statistics containers the
// experiment harness reports with: duration histograms with exact
// percentiles, time series, and labeled counters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram collects duration samples and answers exact order
// statistics (the evaluation's medians and p99s).
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// ensureSorted sorts in place; callers hold h.mu.
func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the q-th (0..1) order statistic, 0 when empty. It
// uses ceiling nearest-rank (the smallest sample with at least a q
// fraction of the distribution at or below it): rank ⌈q·n⌉. Plain
// truncation would bias low for small n — e.g. p99 of 50 samples must
// be the 50th value, not the 49th.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.ensureSorted()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Median is Quantile(0.5).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d median=%v p99=%v max=%v", h.Count(), h.Median(), h.P99(), h.Max())
}

// Point is one (time, value) sample of a Series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only time series (Figure 10's cache-size curve).
type Series struct {
	mu     sync.Mutex
	points []Point
}

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{At: at, Value: v})
	s.mu.Unlock()
}

// Points returns a copy of the samples.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Peak returns the maximum value, 0 when empty.
func (s *Series) Peak() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var peak float64
	for _, p := range s.points {
		if p.Value > peak {
			peak = p.Value
		}
	}
	return peak
}

// Last returns the final value, 0 when empty.
func (s *Series) Last() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return 0
	}
	return s.points[len(s.points)-1].Value
}

// Counters is a labeled counter set.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Inc adds delta to name.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get reads a counter.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot copies all counters, sorted by name.
func (c *Counters) Snapshot() []struct {
	Name  string
	Value int64
} {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Name  string
		Value int64
	}, 0, len(names))
	for _, n := range names {
		out = append(out, struct {
			Name  string
			Value int64
		}{n, c.m[n]})
	}
	return out
}
