package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if m := h.Median(); m != 51*time.Millisecond {
		t.Errorf("median=%v", m)
	}
	if p := h.P99(); p != 100*time.Millisecond {
		t.Errorf("p99=%v", p)
	}
	if mx := h.Max(); mx != 100*time.Millisecond {
		t.Errorf("max=%v", mx)
	}
	if mean := h.Mean(); mean != 50500*time.Microsecond {
		t.Errorf("mean=%v", mean)
	}
	if h.Count() != 100 {
		t.Errorf("count=%d", h.Count())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Median() != 0 || h.P99() != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
}

func TestHistogramInterleavedAddQuery(t *testing.T) {
	var h Histogram
	h.Add(5 * time.Millisecond)
	if h.Median() != 5*time.Millisecond {
		t.Error("single-sample median")
	}
	h.Add(time.Millisecond) // must re-sort after the query
	if h.Quantile(0) != time.Millisecond {
		t.Error("min after interleaved add")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Add(time.Duration(r) * time.Microsecond)
		}
		prev := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(0) <= h.Median() && h.Median() <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Peak() != 0 || s.Last() != 0 {
		t.Error("empty series not zero")
	}
	s.Add(time.Second, 1.5)
	s.Add(2*time.Second, 3.0)
	s.Add(3*time.Second, 2.0)
	if s.Peak() != 3.0 {
		t.Errorf("peak=%v", s.Peak())
	}
	if s.Last() != 2.0 {
		t.Errorf("last=%v", s.Last())
	}
	if pts := s.Points(); len(pts) != 3 || pts[1].At != 2*time.Second {
		t.Errorf("points=%v", pts)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("hits", 3)
	c.Inc("misses", 1)
	c.Inc("hits", 2)
	if c.Get("hits") != 5 || c.Get("misses") != 1 || c.Get("absent") != 0 {
		t.Errorf("hits=%d misses=%d", c.Get("hits"), c.Get("misses"))
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Name != "hits" || snap[1].Name != "misses" {
		t.Errorf("snapshot=%v", snap)
	}
}
