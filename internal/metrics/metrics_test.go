package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	// Ceiling nearest-rank: the median of 1..100 is rank ⌈0.5·100⌉ = 50.
	if m := h.Median(); m != 50*time.Millisecond {
		t.Errorf("median=%v", m)
	}
	// Rank ⌈0.99·100⌉ = 99: exactly 99% of samples are ≤ it.
	if p := h.P99(); p != 99*time.Millisecond {
		t.Errorf("p99=%v", p)
	}
	if mx := h.Max(); mx != 100*time.Millisecond {
		t.Errorf("max=%v", mx)
	}
	if mean := h.Mean(); mean != 50500*time.Microsecond {
		t.Errorf("mean=%v", mean)
	}
	if h.Count() != 100 {
		t.Errorf("count=%d", h.Count())
	}
}

// TestQuantileNearestRank pins the ceiling nearest-rank definition:
// Quantile(q) is the smallest sample with at least q·n of the
// distribution at or below it. The old int(q·n) truncation biased low
// for small n (e.g. p99 of 50 samples returned the 49th value).
func TestQuantileNearestRank(t *testing.T) {
	mk := func(n int) *Histogram {
		var h Histogram
		for i := 1; i <= n; i++ {
			h.Add(time.Duration(i) * time.Millisecond)
		}
		return &h
	}
	cases := []struct {
		n    int
		q    float64
		want int // expected sample value (= expected rank), in ms
	}{
		{1, 0.5, 1},
		{1, 0.99, 1},
		{2, 0.5, 1},    // ⌈0.5·2⌉ = 1
		{2, 0.51, 2},   // ⌈0.51·2⌉ = 2
		{3, 0.5, 2},    // ⌈1.5⌉ = 2
		{4, 0.25, 1},   // exact boundary: ⌈1⌉ = 1
		{4, 0.75, 3},   // ⌈3⌉ = 3
		{5, 0.99, 5},   // old truncation gave rank 4
		{50, 0.99, 50}, // old truncation gave rank 49
		{100, 0.99, 99},
		{100, 0.991, 100},
		{10, 0.0, 1},
		{10, 1.0, 10},
	}
	for _, c := range cases {
		h := mk(c.n)
		if got := h.Quantile(c.q); got != time.Duration(c.want)*time.Millisecond {
			t.Errorf("n=%d q=%v: got %v, want %dms", c.n, c.q, got, c.want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Median() != 0 || h.P99() != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
}

func TestHistogramInterleavedAddQuery(t *testing.T) {
	var h Histogram
	h.Add(5 * time.Millisecond)
	if h.Median() != 5*time.Millisecond {
		t.Error("single-sample median")
	}
	h.Add(time.Millisecond) // must re-sort after the query
	if h.Quantile(0) != time.Millisecond {
		t.Error("min after interleaved add")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Add(time.Duration(r) * time.Microsecond)
		}
		prev := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(0) <= h.Median() && h.Median() <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Peak() != 0 || s.Last() != 0 {
		t.Error("empty series not zero")
	}
	s.Add(time.Second, 1.5)
	s.Add(2*time.Second, 3.0)
	s.Add(3*time.Second, 2.0)
	if s.Peak() != 3.0 {
		t.Errorf("peak=%v", s.Peak())
	}
	if s.Last() != 2.0 {
		t.Errorf("last=%v", s.Last())
	}
	if pts := s.Points(); len(pts) != 3 || pts[1].At != 2*time.Second {
		t.Errorf("points=%v", pts)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("hits", 3)
	c.Inc("misses", 1)
	c.Inc("hits", 2)
	if c.Get("hits") != 5 || c.Get("misses") != 1 || c.Get("absent") != 0 {
		t.Errorf("hits=%d misses=%d", c.Get("hits"), c.Get("misses"))
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Name != "hits" || snap[1].Name != "misses" {
		t.Errorf("snapshot=%v", snap)
	}
}
