package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mark is one labeled event on the virtual clock (a degradation-state
// transition, a phase boundary).
type Mark struct {
	At    time.Duration
	Label string
}

// Timeline is an append-only log of labeled events — the overload
// experiment's record of state-machine transitions.
type Timeline struct {
	mu    sync.Mutex
	marks []Mark
}

// Mark appends one event.
func (t *Timeline) Mark(at time.Duration, label string) {
	t.mu.Lock()
	t.marks = append(t.marks, Mark{At: at, Label: label})
	t.mu.Unlock()
}

// Marks returns a copy of the events in append order.
func (t *Timeline) Marks() []Mark {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Mark, len(t.marks))
	copy(out, t.marks)
	return out
}

// Labels returns just the event labels, in order.
func (t *Timeline) Labels() []string {
	marks := t.Marks()
	out := make([]string, len(marks))
	for i, m := range marks {
		out[i] = m.Label
	}
	return out
}

// String renders the timeline as "t=1s a → t=2s b".
func (t *Timeline) String() string {
	marks := t.Marks()
	parts := make([]string, len(marks))
	for i, m := range marks {
		parts[i] = fmt.Sprintf("t=%v %s", m.At, m.Label)
	}
	return strings.Join(parts, " → ")
}

// TenantCounters is a two-level counter set keyed by tenant then
// counter name — per-tenant goodput, shed and failure accounting for
// the overload experiment.
type TenantCounters struct {
	mu sync.Mutex
	m  map[string]map[string]int64
}

// NewTenantCounters returns an empty set.
func NewTenantCounters() *TenantCounters {
	return &TenantCounters{m: make(map[string]map[string]int64)}
}

// Add adds delta to tenant's counter name.
func (c *TenantCounters) Add(tenant, name string, delta int64) {
	c.mu.Lock()
	t := c.m[tenant]
	if t == nil {
		t = make(map[string]int64)
		c.m[tenant] = t
	}
	t[name] += delta
	c.mu.Unlock()
}

// Of reads one tenant counter.
func (c *TenantCounters) Of(tenant, name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[tenant][name]
}

// Tenants lists the tenants seen, sorted.
func (c *TenantCounters) Tenants() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for t := range c.m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Total sums counter name across all tenants.
func (c *TenantCounters) Total(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for _, t := range c.m {
		sum += t[name]
	}
	return sum
}
