package metrics

// PolicyCounters are the memory-control-plane counters labeled by the
// policy combination that produced them, so ablation cells and the
// per-node cache agents report comparable rows (admissions through the
// EvictionPolicy.Admit gate, victims actually freed, reclamation
// actions).
type PolicyCounters struct {
	// Policy is the "eviction/slack/planner" spec string.
	Policy string
	// Admitted and Rejected count EvictionPolicy.Admit verdicts at the
	// proxy's write-admission gate.
	Admitted, Rejected int64
	// Touches counts policy Touch notifications (cache hits observed
	// by the control plane).
	Touches int64
	// Evictions counts objects freed by eviction (periodic sweeps and
	// reclamation), Migrations those freed by migration-by-promotion,
	// WriteBacks the dirty victims whose write-back a sweep or plan
	// triggered.
	Evictions, Migrations, WriteBacks int64
}

// Add accumulates other into c (policy label kept from c unless empty).
func (c *PolicyCounters) Add(other PolicyCounters) {
	if c.Policy == "" {
		c.Policy = other.Policy
	}
	c.Admitted += other.Admitted
	c.Rejected += other.Rejected
	c.Touches += other.Touches
	c.Evictions += other.Evictions
	c.Migrations += other.Migrations
	c.WriteBacks += other.WriteBacks
}
