// Package chaos is a deterministic fault-injection framework for the
// OFC testbed. A Schedule is a list of timed fault events — node
// crash/restart, network partition/heal, link degradation, packet
// loss, disk slowdown — armed on the sim virtual clock, so a given
// (schedule, seed) pair replays identically on every run.
//
// The package only knows the fabric (internal/simnet) and the clock
// (internal/sim). Higher layers register hooks on the Injector to
// translate node-level faults into subsystem actions: the kvstore
// crashes and recovers the cache server, the FaaS platform drains the
// invoker, and so on. That keeps chaos dependency-free and lets tests
// inject faults into any subset of the stack.
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// Kind enumerates fault event types.
type Kind int

const (
	// Crash fail-stops a node: transfers from/to it fail, and
	// registered OnCrash hooks run (kvstore crash, invoker drain).
	Crash Kind = iota
	// Restart revives a crashed node and runs OnRestart hooks.
	Restart
	// Partition cuts the undirected link Node<->Peer.
	Partition
	// Heal restores a partitioned link.
	Heal
	// DegradeLink stretches the link's latency by LatencyFactor and
	// shrinks its bandwidth by BandwidthFactor.
	DegradeLink
	// ResetLink clears degradation, loss and partition on the link.
	ResetLink
	// PacketLoss sets the link's per-transfer loss probability.
	PacketLoss
	// DiskSlow multiplies the node's disk service time by DiskFactor.
	DiskSlow
	// Hook runs an arbitrary callback at its scheduled time — the
	// escape hatch for drills that need non-fabric actions (load
	// spikes, configuration flips) phased against fabric faults on the
	// same deterministic timeline.
	Hook
)

// String names the event kind for logs and reports.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case DegradeLink:
		return "degrade-link"
	case ResetLink:
		return "reset-link"
	case PacketLoss:
		return "packet-loss"
	case DiskSlow:
		return "disk-slow"
	case Hook:
		return "hook"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timed fault. Node is the subject; Peer matters only for
// link events. Factor fields are interpreted per Kind.
type Event struct {
	At   time.Duration // virtual time offset from Injector.Start
	Kind Kind
	Node simnet.NodeID
	Peer simnet.NodeID // link events only

	LatencyFactor   float64 // DegradeLink
	BandwidthFactor float64 // DegradeLink
	LossProb        float64 // PacketLoss
	DiskFactor      float64 // DiskSlow

	// Hook events only: Name labels the log entry, Fn runs at At.
	Name string
	Fn   func()
}

// String renders one event for the applied-event log.
func (e Event) String() string {
	switch e.Kind {
	case Partition, Heal, ResetLink:
		return fmt.Sprintf("%v %s n%d<->n%d", e.At, e.Kind, e.Node, e.Peer)
	case DegradeLink:
		return fmt.Sprintf("%v %s n%d<->n%d lat=x%.1f bw=x%.2f", e.At, e.Kind, e.Node, e.Peer, e.LatencyFactor, e.BandwidthFactor)
	case PacketLoss:
		return fmt.Sprintf("%v %s n%d<->n%d p=%.3f", e.At, e.Kind, e.Node, e.Peer, e.LossProb)
	case DiskSlow:
		return fmt.Sprintf("%v %s n%d x%.1f", e.At, e.Kind, e.Node, e.DiskFactor)
	case Hook:
		return fmt.Sprintf("%v %s %s", e.At, e.Kind, e.Name)
	default:
		return fmt.Sprintf("%v %s n%d", e.At, e.Kind, e.Node)
	}
}

// Schedule is an ordered list of fault events. The zero value is an
// empty schedule; builder methods append and return the schedule for
// chaining.
type Schedule struct {
	events []Event
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// Add appends an arbitrary event.
func (s *Schedule) Add(e Event) *Schedule {
	s.events = append(s.events, e)
	return s
}

// CrashAt fail-stops node at t.
func (s *Schedule) CrashAt(t time.Duration, node simnet.NodeID) *Schedule {
	return s.Add(Event{At: t, Kind: Crash, Node: node})
}

// RestartAt revives node at t.
func (s *Schedule) RestartAt(t time.Duration, node simnet.NodeID) *Schedule {
	return s.Add(Event{At: t, Kind: Restart, Node: node})
}

// PartitionAt cuts the a<->b link at t.
func (s *Schedule) PartitionAt(t time.Duration, a, b simnet.NodeID) *Schedule {
	return s.Add(Event{At: t, Kind: Partition, Node: a, Peer: b})
}

// HealAt restores the a<->b link at t.
func (s *Schedule) HealAt(t time.Duration, a, b simnet.NodeID) *Schedule {
	return s.Add(Event{At: t, Kind: Heal, Node: a, Peer: b})
}

// DegradeLinkAt stretches the a<->b link at t: latency multiplied by
// latFactor, bandwidth by bwFactor.
func (s *Schedule) DegradeLinkAt(t time.Duration, a, b simnet.NodeID, latFactor, bwFactor float64) *Schedule {
	return s.Add(Event{At: t, Kind: DegradeLink, Node: a, Peer: b, LatencyFactor: latFactor, BandwidthFactor: bwFactor})
}

// ResetLinkAt clears all faults on the a<->b link at t.
func (s *Schedule) ResetLinkAt(t time.Duration, a, b simnet.NodeID) *Schedule {
	return s.Add(Event{At: t, Kind: ResetLink, Node: a, Peer: b})
}

// PacketLossAt sets loss probability p on the a<->b link at t.
func (s *Schedule) PacketLossAt(t time.Duration, a, b simnet.NodeID, p float64) *Schedule {
	return s.Add(Event{At: t, Kind: PacketLoss, Node: a, Peer: b, LossProb: p})
}

// DiskSlowAt multiplies node's disk service time by factor at t;
// factor 1 restores full speed.
func (s *Schedule) DiskSlowAt(t time.Duration, node simnet.NodeID, factor float64) *Schedule {
	return s.Add(Event{At: t, Kind: DiskSlow, Node: node, DiskFactor: factor})
}

// HookAt schedules a named callback at t.
func (s *Schedule) HookAt(t time.Duration, name string, fn func()) *Schedule {
	return s.Add(Event{At: t, Kind: Hook, Name: name, Fn: fn})
}

// OverloadCrash builds the combined overload+crash drill: spike and
// calm callbacks phased around a mid-spike crash/restart of victim.
// The spike callback fires at start, the victim crashes at
// start+crashAfter and restarts downtime later, and calm fires at
// start+spikeLen — the schedule the overload state machine must ride
// out and then re-enter Normal from.
func (s *Schedule) OverloadCrash(start, spikeLen, crashAfter, downtime time.Duration, victim simnet.NodeID, spike, calm func()) *Schedule {
	s.HookAt(start, "spike", spike)
	s.CrashAt(start+crashAfter, victim)
	s.RestartAt(start+crashAfter+downtime, victim)
	s.HookAt(start+spikeLen, "calm", calm)
	return s
}

// KillRotation appends a crash of each node in victims in turn, one
// every period starting at start, each followed by a restart downtime
// later. It models the "kill one cache node per minute" chaos drill.
func (s *Schedule) KillRotation(start, period, downtime time.Duration, victims ...simnet.NodeID) *Schedule {
	t := start
	for _, v := range victims {
		s.CrashAt(t, v)
		s.RestartAt(t+downtime, v)
		t += period
	}
	return s
}

// Events returns the schedule sorted by time (stable, so same-time
// events keep insertion order). The returned slice is a copy.
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len reports the number of scheduled events.
func (s *Schedule) Len() int { return len(s.events) }

// Injector arms a schedule on the virtual clock and applies each event
// to the fabric when it fires. Hooks let higher layers react to
// node-level lifecycle events.
type Injector struct {
	env *sim.Env
	net *simnet.Network
	sch *Schedule

	// OnCrash runs after the node is marked down in the fabric.
	OnCrash func(simnet.NodeID)
	// OnRestart runs after the node is marked up again.
	OnRestart func(simnet.NodeID)

	mu      sync.Mutex
	applied []string
}

// NewInjector binds a schedule to a fabric. Seed drives probabilistic
// faults (packet-loss retransmission draws) so runs are reproducible.
func NewInjector(net *simnet.Network, sch *Schedule, seed int64) *Injector {
	net.SeedFaults(seed)
	return &Injector{env: net.Env(), net: net, sch: sch}
}

// Start arms every scheduled event on the virtual clock. Call it once,
// before or while the simulation runs; events before the current
// virtual time fire immediately.
func (inj *Injector) Start() {
	for _, e := range inj.sch.Events() {
		e := e
		inj.env.After(e.At, func() { inj.apply(e) })
	}
}

func (inj *Injector) apply(e Event) {
	switch e.Kind {
	case Crash:
		inj.net.SetNodeDown(e.Node, true)
		if inj.OnCrash != nil {
			inj.OnCrash(e.Node)
		}
	case Restart:
		inj.net.SetNodeDown(e.Node, false)
		if inj.OnRestart != nil {
			inj.OnRestart(e.Node)
		}
	case Partition:
		inj.net.Partition(e.Node, e.Peer)
	case Heal:
		inj.net.Heal(e.Node, e.Peer)
	case DegradeLink:
		inj.net.DegradeLink(e.Node, e.Peer, e.LatencyFactor, e.BandwidthFactor)
	case ResetLink:
		inj.net.ResetLink(e.Node, e.Peer)
	case PacketLoss:
		inj.net.SetPacketLoss(e.Node, e.Peer, e.LossProb)
	case DiskSlow:
		inj.net.SetDiskFactor(e.Node, e.DiskFactor)
	case Hook:
		if e.Fn != nil {
			e.Fn()
		}
	}
	inj.mu.Lock()
	inj.applied = append(inj.applied, fmt.Sprintf("%v: %s", inj.env.Now(), e))
	inj.mu.Unlock()
}

// Applied returns the log of events applied so far, in firing order.
func (inj *Injector) Applied() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]string, len(inj.applied))
	copy(out, inj.applied)
	return out
}
