package chaos

import (
	"strings"
	"testing"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

func testNet(t *testing.T) (*sim.Env, *simnet.Network, simnet.NodeID, simnet.NodeID) {
	t.Helper()
	env := sim.NewEnv(1)
	net := simnet.New(env, simnet.DefaultConfig())
	a := net.AddNode("a").ID
	b := net.AddNode("b").ID
	return env, net, a, b
}

func TestScheduleBuilderSortsEvents(t *testing.T) {
	s := NewSchedule().
		RestartAt(30*time.Second, 1).
		CrashAt(10*time.Second, 1).
		PartitionAt(20*time.Second, 0, 1)
	ev := s.Events()
	if len(ev) != 3 || s.Len() != 3 {
		t.Fatalf("events=%d", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Errorf("events not sorted: %v after %v", ev[i], ev[i-1])
		}
	}
	if ev[0].Kind != Crash || ev[1].Kind != Partition || ev[2].Kind != Restart {
		t.Errorf("order=%v %v %v", ev[0].Kind, ev[1].Kind, ev[2].Kind)
	}
	// Events() is a copy: mutating it must not corrupt the schedule.
	ev[0].Node = 99
	if s.Events()[0].Node == 99 {
		t.Error("Events() aliases internal storage")
	}
}

func TestKillRotation(t *testing.T) {
	s := NewSchedule().KillRotation(time.Minute, time.Minute, 30*time.Second, 3, 4, 5)
	ev := s.Events()
	if len(ev) != 6 {
		t.Fatalf("events=%d, want 6", len(ev))
	}
	wantTimes := []time.Duration{60 * time.Second, 90 * time.Second, 120 * time.Second,
		150 * time.Second, 180 * time.Second, 210 * time.Second}
	wantKinds := []Kind{Crash, Restart, Crash, Restart, Crash, Restart}
	wantNodes := []simnet.NodeID{3, 3, 4, 4, 5, 5}
	for i, e := range ev {
		if e.At != wantTimes[i] || e.Kind != wantKinds[i] || e.Node != wantNodes[i] {
			t.Errorf("event %d = %+v, want t=%v kind=%v node=%v", i, e, wantTimes[i], wantKinds[i], wantNodes[i])
		}
	}
}

func TestInjectorAppliesOnVirtualClock(t *testing.T) {
	env, net, a, b := testNet(t)
	sched := NewSchedule().
		CrashAt(10*time.Millisecond, b).
		RestartAt(30*time.Millisecond, b).
		PartitionAt(50*time.Millisecond, a, b).
		HealAt(70*time.Millisecond, a, b)
	inj := NewInjector(net, sched, 1)
	var crashAt, restartAt sim.Time = -1, -1
	inj.OnCrash = func(n simnet.NodeID) { crashAt = env.Now() }
	inj.OnRestart = func(n simnet.NodeID) { restartAt = env.Now() }
	inj.Start()

	type probe struct {
		at  time.Duration
		err error
	}
	var probes []probe
	env.Go(func() {
		for _, at := range []time.Duration{5, 15, 35, 55, 75} {
			target := at * time.Millisecond
			env.Sleep(target - time.Duration(env.Now()))
			probes = append(probes, probe{target, net.TryTransfer(a, b, 1<<10)})
		}
	})
	env.Run()

	if crashAt != 10*time.Millisecond || restartAt != 30*time.Millisecond {
		t.Errorf("hooks fired at crash=%v restart=%v", crashAt, restartAt)
	}
	wantErr := []bool{false, true, false, true, false}
	for i, p := range probes {
		if (p.err != nil) != wantErr[i] {
			t.Errorf("probe at %v: err=%v, want failing=%v", p.at, p.err, wantErr[i])
		}
	}
	applied := inj.Applied()
	if len(applied) != 4 {
		t.Fatalf("applied=%d events: %v", len(applied), applied)
	}
	for _, want := range []string{"crash", "restart", "partition", "heal"} {
		found := false
		for _, line := range applied {
			if strings.Contains(line, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("applied log missing %q: %v", want, applied)
		}
	}
}

func TestInjectorDegradeAndDiskEvents(t *testing.T) {
	env, net, a, b := testNet(t)
	sched := NewSchedule().
		DegradeLinkAt(time.Millisecond, a, b, 3, 0.5).
		DiskSlowAt(time.Millisecond, b, 4).
		ResetLinkAt(10*time.Millisecond, a, b).
		Add(Event{At: 10 * time.Millisecond, Kind: DiskSlow, Node: b, DiskFactor: 1})
	NewInjector(net, sched, 1).Start()
	size := int64(1 << 20)
	var degraded, restored time.Duration
	env.Go(func() {
		env.Sleep(2 * time.Millisecond)
		start := env.Now()
		net.TryTransfer(a, b, size)
		degraded = time.Duration(env.Now() - start)
		env.Sleep(20*time.Millisecond - time.Duration(env.Now()))
		start = env.Now()
		net.TryTransfer(a, b, size)
		restored = time.Duration(env.Now() - start)
	})
	env.Run()
	if degraded <= restored {
		t.Errorf("degraded=%v not slower than restored=%v", degraded, restored)
	}
}

func TestInjectorDeterministicReplay(t *testing.T) {
	runOnce := func() []string {
		env := sim.NewEnv(1)
		net := simnet.New(env, simnet.DefaultConfig())
		a := net.AddNode("a").ID
		b := net.AddNode("b").ID
		sched := NewSchedule().KillRotation(time.Second, time.Second, 500*time.Millisecond, a, b)
		inj := NewInjector(net, sched, 99)
		inj.Start()
		env.Go(func() { env.Sleep(5 * time.Second) })
		env.Run()
		return inj.Applied()
	}
	x, y := runOnce(), runOnce()
	if len(x) != 4 {
		t.Fatalf("applied=%d, want 4", len(x))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Errorf("replay diverged at %d: %q vs %q", i, x[i], y[i])
		}
	}
}

func TestHookEventsFireOnSchedule(t *testing.T) {
	env, net, a, _ := testNet(t)
	var fired []string
	sched := NewSchedule().
		HookAt(2*time.Second, "late", func() { fired = append(fired, "late@"+env.Now().String()) }).
		HookAt(time.Second, "early", func() { fired = append(fired, "early@"+env.Now().String()) })
	_ = a
	inj := NewInjector(net, sched, 1)
	inj.Start()
	env.Go(func() { env.Sleep(5 * time.Second) })
	env.Run()
	if len(fired) != 2 || fired[0] != "early@1s" || fired[1] != "late@2s" {
		t.Errorf("fired=%v, want [early@1s late@2s]", fired)
	}
	log := inj.Applied()
	if len(log) != 2 || !strings.Contains(log[0], "hook early") || !strings.Contains(log[1], "hook late") {
		t.Errorf("applied log=%v", log)
	}
}

func TestOverloadCrashBuilderShape(t *testing.T) {
	spike := func() {}
	calm := func() {}
	s := NewSchedule().OverloadCrash(20*time.Second, 30*time.Second, 10*time.Second, 5*time.Second, 7, spike, calm)
	ev := s.Events()
	if len(ev) != 4 {
		t.Fatalf("events=%d, want 4", len(ev))
	}
	// spike hook, crash, restart, calm hook — in time order.
	if ev[0].Kind != Hook || ev[0].Name != "spike" || ev[0].At != 20*time.Second {
		t.Errorf("event 0 = %+v, want spike hook at 20s", ev[0])
	}
	if ev[1].Kind != Crash || ev[1].Node != 7 || ev[1].At != 30*time.Second {
		t.Errorf("event 1 = %+v, want crash of node 7 at 30s", ev[1])
	}
	if ev[2].Kind != Restart || ev[2].Node != 7 || ev[2].At != 35*time.Second {
		t.Errorf("event 2 = %+v, want restart of node 7 at 35s", ev[2])
	}
	if ev[3].Kind != Hook || ev[3].Name != "calm" || ev[3].At != 50*time.Second {
		t.Errorf("event 3 = %+v, want calm hook at 50s", ev[3])
	}
}

func TestOverloadCrashRunsHooksAroundCrash(t *testing.T) {
	env, net, a, _ := testNet(t)
	var order []string
	sched := NewSchedule().OverloadCrash(time.Second, 4*time.Second, 2*time.Second, time.Second, a,
		func() { order = append(order, "spike") },
		func() { order = append(order, "calm") })
	inj := NewInjector(net, sched, 1)
	inj.OnCrash = func(n simnet.NodeID) { order = append(order, "crash") }
	inj.OnRestart = func(n simnet.NodeID) { order = append(order, "restart") }
	inj.Start()
	env.Go(func() { env.Sleep(10 * time.Second) })
	env.Run()
	want := []string{"spike", "crash", "restart", "calm"}
	if len(order) != len(want) {
		t.Fatalf("order=%v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
}
