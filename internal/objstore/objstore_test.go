package objstore

import (
	"errors"
	"testing"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

func setup(env *sim.Env, p Profile) (*Store, *simnet.Network) {
	net := simnet.New(env, simnet.DefaultConfig())
	net.AddNode("worker")
	net.AddNode("storage")
	return New(net, 1, p), net
}

func TestPutGetRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	env.Go(func() {
		ver := s.Put(0, "bucket/img", kvstore.Bytes([]byte("jpegdata")), map[string]string{"ct": "image/jpeg"}, false)
		if ver != 1 {
			t.Errorf("ver=%d", ver)
		}
		blob, meta, err := s.Get(0, "bucket/img", false)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob.Data) != "jpegdata" {
			t.Error("payload mismatch")
		}
		if meta.IsShadow() {
			t.Error("fresh put is shadow")
		}
		if meta.UserMeta["ct"] != "image/jpeg" {
			t.Errorf("usermeta=%v", meta.UserMeta)
		}
	})
	env.Run()
}

func TestGetLatencyProfile(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(16<<10), nil, false)
		start := env.Now()
		s.Get(0, "k", false)
		took := env.Now() - start
		// 16 kB from Swift: ≈ ReadBase + transfer; must land around
		// 40 ms, the calibration for wand_edge's Extract phase.
		if took < 38*time.Millisecond || took > 45*time.Millisecond {
			t.Errorf("16kB GET took %v, want ≈40ms", took)
		}
	})
	env.Run()
}

func TestShadowLifecycle(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(1000), nil, false)
		start := env.Now()
		ver := s.PutShadow(0, "k", 2000)
		shadowTook := env.Now() - start
		if ver != 2 {
			t.Errorf("shadow ver=%d", ver)
		}
		// Paper §7.2.1: constant ≈11 ms regardless of payload size.
		if shadowTook < 10*time.Millisecond || shadowTook > 13*time.Millisecond {
			t.Errorf("shadow PUT took %v, want ≈11ms", shadowTook)
		}
		m, _ := s.MetaOf("k")
		if !m.IsShadow() {
			t.Error("no shadow gap after PutShadow")
		}
		if err := s.PersistPayload(0, "k", kvstore.Synthetic(2000), ver); err != nil {
			t.Fatal(err)
		}
		m, _ = s.MetaOf("k")
		if m.IsShadow() || m.PersistedVersion != 2 {
			t.Errorf("meta=%+v after persist", m)
		}
	})
	env.Run()
}

func TestPersistOrderEnforced(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(100), nil, false)
		v2 := s.PutShadow(0, "k", 100)
		v3 := s.PutShadow(0, "k", 100)
		if err := s.PersistPayload(0, "k", kvstore.Synthetic(100), v2); err != nil {
			t.Fatalf("persist v2: %v", err)
		}
		// Persisting v2 again (or anything below persisted) is stale.
		if err := s.PersistPayload(0, "k", kvstore.Synthetic(100), v2-1); !errors.Is(err, ErrStale) {
			t.Errorf("stale persist err=%v", err)
		}
		if err := s.PersistPayload(0, "k", kvstore.Synthetic(100), v3); err != nil {
			t.Fatalf("persist v3: %v", err)
		}
		// A version the store never issued is rejected.
		if err := s.PersistPayload(0, "k", kvstore.Synthetic(100), v3+5); !errors.Is(err, ErrStale) {
			t.Errorf("future persist err=%v", err)
		}
	})
	env.Run()
}

func TestReadWebhookRunsOnExternalGet(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	var hookKeys []string
	s.OnRead(func(key string, m Meta) { hookKeys = append(hookKeys, key) })
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(10), nil, false)
		s.Get(0, "k", false) // internal: no hook
		s.Get(0, "k", true)  // external: hook
	})
	env.Run()
	if len(hookKeys) != 1 || hookKeys[0] != "k" {
		t.Errorf("hooks=%v", hookKeys)
	}
}

func TestWriteWebhookRunsOnExternalPut(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	invalidated := 0
	s.OnWrite(func(key string) { invalidated++ })
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(10), nil, false)
		s.Put(0, "k", kvstore.Synthetic(10), nil, true)
		s.Delete(0, "k", true)
	})
	env.Run()
	if invalidated != 2 {
		t.Errorf("write hooks=%d, want 2", invalidated)
	}
}

func TestReadWebhookBlocksUntilPersist(t *testing.T) {
	// Models §6.2: an external reader of a shadow object waits until
	// the persistor completes.
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	persisted := sim.NewFuture[struct{}](env)
	s.OnRead(func(key string, m Meta) {
		if m.IsShadow() {
			persisted.Wait()
		}
	})
	var readAt, persistAt time.Duration
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(100), nil, false)
		ver := s.PutShadow(0, "k", 100)
		env.Go(func() { // external client
			_, m, err := s.Get(0, "k", true)
			readAt = env.Now()
			if err != nil || m.LatestVersion != ver {
				t.Errorf("external get: %v %+v", err, m)
			}
		})
		env.Sleep(50 * time.Millisecond) // persistor is busy elsewhere
		s.PersistPayload(0, "k", kvstore.Synthetic(100), ver)
		persistAt = env.Now()
		persisted.Set(struct{}{})
	})
	env.Run()
	if readAt < persistAt {
		t.Errorf("external read returned at %v before persist at %v", readAt, persistAt)
	}
}

func TestHeadAndList(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	env.Go(func() {
		s.Put(0, "b/x", kvstore.Synthetic(5), nil, false)
		s.Put(0, "b/y", kvstore.Synthetic(6), nil, false)
		s.Put(0, "c/z", kvstore.Synthetic(7), nil, false)
		m, err := s.Head(0, "b/y")
		if err != nil || m.Size != 6 {
			t.Errorf("head: %v %+v", err, m)
		}
		if _, err := s.Head(0, "nope"); !errors.Is(err, ErrNotFound) {
			t.Errorf("head missing: %v", err)
		}
		keys := s.List("b/")
		if len(keys) != 2 || keys[0] != "b/x" || keys[1] != "b/y" {
			t.Errorf("list=%v", keys)
		}
	})
	env.Run()
}

func TestFeatureSidecar(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	env.Go(func() {
		s.Put(0, "img", kvstore.Synthetic(1<<20), nil, false)
		if err := s.SetFeatures("img", map[string]float64{"width": 1920, "height": 1080}); err != nil {
			t.Fatal(err)
		}
		f := s.Features("img")
		if f["width"] != 1920 {
			t.Errorf("features=%v", f)
		}
		if s.Features("missing") != nil {
			t.Error("features of missing key")
		}
	})
	env.Run()
}

func TestDelete(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile())
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(10), nil, false)
		if err := s.Delete(0, "k", false); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get(0, "k", false); !errors.Is(err, ErrNotFound) {
			t.Errorf("get after delete: %v", err)
		}
		if err := s.Delete(0, "k", false); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete: %v", err)
		}
	})
	env.Run()
}

func TestStats(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, S3Profile())
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(1000), nil, false)
		s.Get(0, "k", false)
		s.PutShadow(0, "k", 1000)
	})
	env.Run()
	gets, puts, shadows, br, bw := s.Stats()
	if gets != 1 || puts != 1 || shadows != 1 || br != 1000 || bw != 1000 {
		t.Errorf("stats=%d %d %d %d %d", gets, puts, shadows, br, bw)
	}
}

func TestEventualConsistencyServesStaleThenConverges(t *testing.T) {
	env := sim.NewEnv(1)
	p := SwiftProfile()
	p.Eventual = true
	p.StalenessWindow = 500 * time.Millisecond
	s, _ := setup(env, p)
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(100), nil, false)
		s.Put(0, "k", kvstore.Synthetic(200), nil, false)
		// Immediately after the overwrite: stale read (old size/version).
		_, m, err := s.Get(0, "k", false)
		if err != nil {
			t.Fatal(err)
		}
		if m.Size != 100 {
			t.Errorf("read within staleness window got size %d, want stale 100", m.Size)
		}
		// After the window, reads converge.
		env.Sleep(p.StalenessWindow)
		_, m, err = s.Get(0, "k", false)
		if err != nil || m.Size != 200 {
			t.Errorf("converged read: size=%d err=%v", m.Size, err)
		}
	})
	env.Run()
}

func TestStrongConsistencyNeverStale(t *testing.T) {
	env := sim.NewEnv(1)
	s, _ := setup(env, SwiftProfile()) // strong by default
	env.Go(func() {
		s.Put(0, "k", kvstore.Synthetic(100), nil, false)
		s.Put(0, "k", kvstore.Synthetic(200), nil, false)
		_, m, _ := s.Get(0, "k", false)
		if m.Size != 200 {
			t.Errorf("strong read got %d", m.Size)
		}
	})
	env.Run()
}
