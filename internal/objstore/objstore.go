// Package objstore implements the remote shared data store (RSDS) of
// the paper: an OpenStack-Swift-like persistent object store with the
// three small extensions OFC needs (§3, §6.2):
//
//   - read/write webhooks ("the possibility to register handlers, to
//     be triggered upon the invocation of certain operations");
//   - shadow objects: empty-payload placeholders carrying a pair of
//     version numbers (latest version vs. version whose payload the
//     RSDS actually holds), used for write-back consistency;
//   - feature sidecars: descriptive features extracted from an object
//     at creation time, stored alongside it, so that the ML Predictor
//     does not extract features on the invocation critical path
//     (§5.1.2).
//
// Latency profiles model Swift on the paper's testbed and AWS S3 for
// the motivation experiment (Figure 3).
package objstore

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/simnet"
)

// Blob aliases the kvstore payload type: both stores move the same
// objects around.
type Blob = kvstore.Blob

// Profile is a latency/bandwidth model for the store.
type Profile struct {
	Name       string
	ReadBase   time.Duration // per-GET overhead
	WriteBase  time.Duration // per-PUT overhead (replication, container update, fsync)
	DeleteBase time.Duration
	ShadowPut  time.Duration // empty-payload placeholder PUT (OFC's Swift patch)
	ReadBW     float64       // payload bytes/s on the read path
	WriteBW    float64       // payload bytes/s on the write path
	// Eventual switches the store to eventual read consistency (§3
	// footnote 3: Swift and pre-2020 S3): a Get within
	// StalenessWindow of the last overwrite may return the previous
	// version. Strong (the default) is linearizable, like S3 today.
	Eventual        bool
	StalenessWindow time.Duration
}

// SwiftProfile models the paper's on-testbed Swift deployment,
// calibrated so that wand_edge(16 kB) sees ≈40 ms Extract and ≈115 ms
// Load, and the shadow PUT costs the measured ≈11 ms (§7.2.1).
func SwiftProfile() Profile {
	return Profile{
		Name:       "swift",
		ReadBase:   40 * time.Millisecond,
		WriteBase:  115 * time.Millisecond,
		DeleteBase: 20 * time.Millisecond,
		ShadowPut:  11 * time.Millisecond,
		ReadBW:     120e6,
		WriteBW:    60e6,
	}
}

// S3Profile models AWS S3 from EC2 in-region (Figure 3's motivation
// runs): higher first-byte latency than LAN Swift on reads.
func S3Profile() Profile {
	return Profile{
		Name:       "s3",
		ReadBase:   45 * time.Millisecond,
		WriteBase:  60 * time.Millisecond,
		DeleteBase: 15 * time.Millisecond,
		ShadowPut:  12 * time.Millisecond,
		ReadBW:     90e6,
		WriteBW:    70e6,
	}
}

// Meta is per-object RSDS metadata.
type Meta struct {
	Size int64
	// LatestVersion is the newest version of the object anywhere in
	// the system; PersistedVersion is the newest version whose payload
	// this store holds. A gap means a shadow object (write-back
	// pending in the cache).
	LatestVersion    uint64
	PersistedVersion uint64
	Modified         simnetTime
	UserMeta         map[string]string
	Features         map[string]float64 // extracted sidecar (§5.1.2)
}

type simnetTime = time.Duration

// IsShadow reports whether the store currently lacks the latest
// payload.
func (m Meta) IsShadow() bool { return m.LatestVersion > m.PersistedVersion }

// Hook observes or intercepts external accesses. ReadHooks run before
// a Get returns; the paper's webhook blocks the read until the latest
// payload has been persisted.
type (
	// ReadHook runs before an external Get; it receives the key and
	// current metadata and may block (e.g., boosting a persistor).
	ReadHook func(key string, m Meta)
	// WriteHook runs before an external Put/Delete overwrites state;
	// OFC uses it to invalidate the cached copy synchronously.
	WriteHook func(key string)
)

// Errors.
var (
	ErrNotFound = errors.New("objstore: object not found")
	ErrStale    = errors.New("objstore: persist of outdated version")
)

type entry struct {
	blob Blob
	meta Meta
	// prev retains the previous version for eventual-consistency reads.
	prevBlob    Blob
	prevMeta    Meta
	overwritten simnetTime
	hasPrev     bool
}

// Store is the RSDS service, hosted on one storage node.
type Store struct {
	net     *simnet.Network
	node    simnet.NodeID
	profile Profile

	mu      sync.Mutex
	objects map[string]*entry

	readHooks    []ReadHook
	writeHooks   []WriteHook
	createdHooks []CreatedHook

	statsMu                 sync.Mutex
	gets, puts, shadows     int64
	bytesRead, bytesWritten int64
}

// New creates a store on node with the given latency profile.
func New(net *simnet.Network, node simnet.NodeID, profile Profile) *Store {
	return &Store{net: net, node: node, profile: profile, objects: make(map[string]*entry)}
}

// Node returns the node hosting the store.
func (s *Store) Node() simnet.NodeID { return s.node }

// Profile returns the latency profile.
func (s *Store) Profile() Profile { return s.profile }

// OnRead registers a read webhook.
func (s *Store) OnRead(h ReadHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readHooks = append(s.readHooks, h)
}

// OnWrite registers a write webhook.
func (s *Store) OnWrite(h WriteHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeHooks = append(s.writeHooks, h)
}

// CreatedHook runs after an external Put commits — the storage-trigger
// mechanism FaaS platforms hang "invoke on object creation" rules on
// (§2.1, §5.1.2).
type CreatedHook func(key string, size int64)

// OnCreated registers a post-create trigger hook.
func (s *Store) OnCreated(h CreatedHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.createdHooks = append(s.createdHooks, h)
}

func (s *Store) bwTime(size int64, bw float64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / bw * float64(time.Second))
}

// Put stores a full object (payload + metadata), assigning the next
// version. It is the plain, transparent write path; external is true
// for accesses that did not come through the FaaS/cache layer, which
// triggers write webhooks.
func (s *Store) Put(caller simnet.NodeID, key string, blob Blob, userMeta map[string]string, external bool) uint64 {
	if external {
		for _, h := range s.snapshotWriteHooks() {
			h(key)
		}
	}
	s.net.Transfer(caller, s.node, blob.Size+256)
	s.net.Env().Sleep(s.profile.WriteBase + s.bwTime(blob.Size, s.profile.WriteBW))
	s.mu.Lock()
	e := s.objects[key]
	if e == nil {
		e = &entry{}
		s.objects[key] = e
	} else if s.profile.Eventual {
		e.prevBlob, e.prevMeta = e.blob, e.meta
		e.overwritten = s.net.Env().Now()
		e.hasPrev = true
	}
	e.blob = blob
	e.meta.Size = blob.Size
	e.meta.LatestVersion++
	e.meta.PersistedVersion = e.meta.LatestVersion
	e.meta.Modified = s.net.Env().Now()
	if userMeta != nil {
		e.meta.UserMeta = userMeta
	}
	ver := e.meta.LatestVersion
	s.mu.Unlock()
	s.net.Transfer(s.node, caller, 256)
	s.statsMu.Lock()
	s.puts++
	s.bytesWritten += blob.Size
	s.statsMu.Unlock()
	if external {
		s.mu.Lock()
		hooks := make([]CreatedHook, len(s.createdHooks))
		copy(hooks, s.createdHooks)
		s.mu.Unlock()
		for _, h := range hooks {
			h(key, blob.Size)
		}
	}
	return ver
}

// Get fetches an object. external triggers read webhooks (OFC's
// consistency barrier for non-FaaS clients).
func (s *Store) Get(caller simnet.NodeID, key string, external bool) (Blob, Meta, error) {
	s.mu.Lock()
	e := s.objects[key]
	var m Meta
	if e != nil {
		m = e.meta
	}
	hooks := make([]ReadHook, len(s.readHooks))
	copy(hooks, s.readHooks)
	s.mu.Unlock()
	if e == nil {
		return Blob{}, Meta{}, ErrNotFound
	}
	if external {
		for _, h := range hooks {
			h(key, m)
		}
	}
	s.net.Transfer(caller, s.node, 256)
	s.mu.Lock()
	e = s.objects[key]
	if e == nil {
		s.mu.Unlock()
		return Blob{}, Meta{}, ErrNotFound
	}
	blob, meta := e.blob, e.meta
	if s.profile.Eventual && e.hasPrev &&
		s.net.Env().Now()-e.overwritten < s.profile.StalenessWindow {
		// A replica that has not converged yet serves the old version.
		blob, meta = e.prevBlob, e.prevMeta
	}
	s.mu.Unlock()
	s.net.Env().Sleep(s.profile.ReadBase + s.bwTime(blob.Size, s.profile.ReadBW))
	s.net.Transfer(s.node, caller, blob.Size+256)
	s.statsMu.Lock()
	s.gets++
	s.bytesRead += blob.Size
	s.statsMu.Unlock()
	return blob, meta, nil
}

// Head returns metadata only, at control-message cost.
func (s *Store) Head(caller simnet.NodeID, key string) (Meta, error) {
	s.net.Transfer(caller, s.node, 256)
	s.mu.Lock()
	e := s.objects[key]
	var m Meta
	if e != nil {
		m = e.meta
	}
	s.mu.Unlock()
	s.net.Transfer(s.node, caller, 512)
	if e == nil {
		return Meta{}, ErrNotFound
	}
	return m, nil
}

// Delete removes an object.
func (s *Store) Delete(caller simnet.NodeID, key string, external bool) error {
	if external {
		for _, h := range s.snapshotWriteHooks() {
			h(key)
		}
	}
	s.net.Transfer(caller, s.node, 256)
	s.net.Env().Sleep(s.profile.DeleteBase)
	s.mu.Lock()
	_, ok := s.objects[key]
	delete(s.objects, key)
	s.mu.Unlock()
	s.net.Transfer(s.node, caller, 256)
	if !ok {
		return ErrNotFound
	}
	return nil
}

// PutShadow records that a new version of key exists (in the cache)
// whose payload the store does not hold yet. It is the synchronous,
// cheap part of OFC's write path (§6.2, ≈11 ms) and returns the new
// latest version.
func (s *Store) PutShadow(caller simnet.NodeID, key string, size int64) uint64 {
	s.net.Transfer(caller, s.node, 256)
	s.net.Env().Sleep(s.profile.ShadowPut)
	s.mu.Lock()
	e := s.objects[key]
	if e == nil {
		e = &entry{}
		s.objects[key] = e
	}
	e.meta.LatestVersion++
	e.meta.Size = size
	e.meta.Modified = s.net.Env().Now()
	ver := e.meta.LatestVersion
	s.mu.Unlock()
	s.net.Transfer(s.node, caller, 256)
	s.statsMu.Lock()
	s.shadows++
	s.statsMu.Unlock()
	return ver
}

// PersistPayload completes a shadow object: the persistor function
// pushes the payload for the given version. Out-of-order persists of
// stale versions are rejected, which is how version numbers "enforce
// that successive updates are propagated in the correct order" (§6.2).
func (s *Store) PersistPayload(caller simnet.NodeID, key string, blob Blob, version uint64) error {
	s.net.Transfer(caller, s.node, blob.Size+256)
	s.net.Env().Sleep(s.profile.WriteBase + s.bwTime(blob.Size, s.profile.WriteBW))
	s.mu.Lock()
	e := s.objects[key]
	if e == nil {
		s.mu.Unlock()
		return ErrNotFound
	}
	if version < e.meta.PersistedVersion || version > e.meta.LatestVersion {
		s.mu.Unlock()
		return ErrStale
	}
	e.blob = blob
	e.meta.PersistedVersion = version
	e.meta.Size = blob.Size
	e.meta.Modified = s.net.Env().Now()
	s.mu.Unlock()
	s.net.Transfer(s.node, caller, 256)
	s.statsMu.Lock()
	s.puts++
	s.bytesWritten += blob.Size
	s.statsMu.Unlock()
	return nil
}

// SetFeatures attaches the extracted feature sidecar to an object
// (background task at object creation, §5.1.2). No latency is charged:
// it runs off the critical path inside the store.
func (s *Store) SetFeatures(key string, features map[string]float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.objects[key]
	if e == nil {
		return ErrNotFound
	}
	e.meta.Features = features
	return nil
}

// SetUserMeta rewrites one user-metadata entry of key in place — a
// metadata-only POST: no payload moves and no version is created. The
// cache-off passthrough backend uses it to store object tags.
func (s *Store) SetUserMeta(key, name, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.objects[key]
	if e == nil {
		return ErrNotFound
	}
	if e.meta.UserMeta == nil {
		e.meta.UserMeta = make(map[string]string)
	}
	e.meta.UserMeta[name] = value
	return nil
}

// Features returns the feature sidecar of key, or nil.
func (s *Store) Features(key string) map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.objects[key]; e != nil {
		return e.meta.Features
	}
	return nil
}

// MetaOf returns the metadata of key without charging latency (local
// inspection for tests and experiment harnesses).
func (s *Store) MetaOf(key string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.objects[key]; e != nil {
		return e.meta, true
	}
	return Meta{}, false
}

// List returns the keys with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Stats reports operation counters.
func (s *Store) Stats() (gets, puts, shadows, bytesRead, bytesWritten int64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.gets, s.puts, s.shadows, s.bytesRead, s.bytesWritten
}

func (s *Store) snapshotWriteHooks() []WriteHook {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WriteHook, len(s.writeHooks))
	copy(out, s.writeHooks)
	return out
}
