package sim

import (
	"sync"
	"time"
)

// Future is a write-once value that simulation processes can wait on.
// The zero value is not usable; create one with NewFuture.
type Future[T any] struct {
	env     *Env
	mu      sync.Mutex
	set     bool
	val     T
	waiters []*fwaiter
}

// fwaiter is one blocked process; fired guards against the double wake
// a WaitTimeout race (Set vs. timer) would otherwise produce.
type fwaiter struct {
	ch    chan struct{}
	fired bool
}

// NewFuture returns an unset future bound to env.
func NewFuture[T any](env *Env) *Future[T] {
	return &Future[T]{env: env}
}

// wake resumes one waiter exactly once.
func (f *Future[T]) wake(w *fwaiter) {
	f.mu.Lock()
	if w.fired {
		f.mu.Unlock()
		return
	}
	w.fired = true
	f.mu.Unlock()
	f.env.unblock()
	close(w.ch)
}

// Set resolves the future and wakes all waiters. Setting twice panics:
// a future models a single RPC reply or completion event.
func (f *Future[T]) Set(v T) {
	f.mu.Lock()
	if f.set {
		f.mu.Unlock()
		panic("sim: Future set twice")
	}
	f.set = true
	f.val = v
	ws := f.waiters
	f.waiters = nil
	f.mu.Unlock()
	for _, w := range ws {
		f.wake(w)
	}
}

// Done reports whether the future has been resolved.
func (f *Future[T]) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}

// Wait blocks the calling process until the future resolves and
// returns its value.
func (f *Future[T]) Wait() T {
	f.mu.Lock()
	if f.set {
		v := f.val
		f.mu.Unlock()
		return v
	}
	w := &fwaiter{ch: make(chan struct{})}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()
	f.env.block()
	<-w.ch
	f.mu.Lock()
	v := f.val
	f.mu.Unlock()
	return v
}

// WaitTimeout blocks the calling process until the future resolves or
// d of virtual time elapses. ok reports whether the value was obtained;
// on timeout the future stays valid and a later Set still resolves it
// for other waiters (the operation keeps running in the background, as
// a timed-out RPC does).
func (f *Future[T]) WaitTimeout(d time.Duration) (v T, ok bool) {
	f.mu.Lock()
	if f.set {
		v := f.val
		f.mu.Unlock()
		return v, true
	}
	w := &fwaiter{ch: make(chan struct{})}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()
	if d >= 0 {
		f.env.After(d, func() { f.wake(w) })
	}
	f.env.block()
	<-w.ch
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val, f.set
}

// WaitGroup mirrors sync.WaitGroup for simulation processes.
type WaitGroup struct {
	env     *Env
	mu      sync.Mutex
	n       int
	waiters []chan struct{}
}

// NewWaitGroup returns an empty wait group bound to env.
func NewWaitGroup(env *Env) *WaitGroup { return &WaitGroup{env: env} }

// Add adds delta to the counter; when it reaches zero, waiters resume.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	w.n += delta
	if w.n < 0 {
		w.mu.Unlock()
		panic("sim: negative WaitGroup counter")
	}
	var ws []chan struct{}
	if w.n == 0 {
		ws = w.waiters
		w.waiters = nil
	}
	w.mu.Unlock()
	for _, ch := range ws {
		w.env.unblock()
		close(ch)
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks the calling process until the counter reaches zero.
func (w *WaitGroup) Wait() {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	w.waiters = append(w.waiters, ch)
	w.mu.Unlock()
	w.env.block()
	<-ch
}

// Semaphore is a counted resource usable from simulation processes.
// Acquire order is FIFO, which keeps resource contention deterministic.
type Semaphore struct {
	env   *Env
	mu    sync.Mutex
	avail int
	queue []semWaiter
}

type semWaiter struct {
	n  int
	ch chan struct{}
}

// NewSemaphore returns a semaphore with the given number of permits.
func NewSemaphore(env *Env, permits int) *Semaphore {
	return &Semaphore{env: env, avail: permits}
}

// Acquire blocks the calling process until n permits are available and
// takes them.
func (s *Semaphore) Acquire(n int) {
	s.mu.Lock()
	if len(s.queue) == 0 && s.avail >= n {
		s.avail -= n
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	s.queue = append(s.queue, semWaiter{n: n, ch: ch})
	s.mu.Unlock()
	s.env.block()
	<-ch
}

// TryAcquire takes n permits if immediately available.
func (s *Semaphore) TryAcquire(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 && s.avail >= n {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n permits and wakes queued acquirers in FIFO order.
func (s *Semaphore) Release(n int) {
	s.mu.Lock()
	s.avail += n
	var woken []chan struct{}
	for len(s.queue) > 0 && s.avail >= s.queue[0].n {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.avail -= w.n
		woken = append(woken, w.ch)
	}
	s.mu.Unlock()
	for _, ch := range woken {
		s.env.unblock()
		close(ch)
	}
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.avail
}

// Queue is an unbounded FIFO channel for simulation processes. Send
// never blocks; Recv blocks until an item is available.
type Queue[T any] struct {
	env     *Env
	mu      sync.Mutex
	items   []T
	waiters []chan struct{}
	closed  bool
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] { return &Queue[T]{env: env} }

// Send enqueues an item, waking one waiting receiver if any.
func (q *Queue[T]) Send(v T) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("sim: send on closed Queue")
	}
	q.items = append(q.items, v)
	var ch chan struct{}
	if len(q.waiters) > 0 {
		ch = q.waiters[0]
		q.waiters = q.waiters[1:]
	}
	q.mu.Unlock()
	if ch != nil {
		q.env.unblock()
		close(ch)
	}
}

// Close marks the queue closed; pending and future Recv calls drain
// remaining items then return ok=false.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, ch := range ws {
		q.env.unblock()
		close(ch)
	}
}

// Recv dequeues the next item, blocking while the queue is empty.
// ok is false once the queue is closed and drained.
func (q *Queue[T]) Recv() (v T, ok bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			v = q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return v, true
		}
		if q.closed {
			q.mu.Unlock()
			return v, false
		}
		ch := make(chan struct{})
		q.waiters = append(q.waiters, ch)
		q.mu.Unlock()
		q.env.block()
		<-ch
	}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
