// Package sim implements a deterministic discrete-event simulation
// substrate with goroutine-based processes and a virtual clock.
//
// Every component of the OFC reproduction (FaaS platform, RAMCloud-like
// cache, Swift-like object store, network and disks) runs as sim
// processes: ordinary goroutines that only ever block through the
// primitives of this package (Sleep, Future.Wait, Semaphore.Acquire,
// Queue.Recv, WaitGroup.Wait). The scheduler advances the virtual clock
// only when every process is blocked, which makes half-hour macro
// experiments complete in milliseconds of host time while preserving
// the timing relationships between components.
//
// The event loop is the hot path of every experiment, so it is built
// to avoid per-event allocation and lock traffic: timers and their
// wake channels are pooled and recycled, the event queue is a 4-ary
// heap popped in per-timestamp batches, After callbacks run on a
// bounded pool of reusable worker goroutines, and Now/Stopped are
// lock-free atomic reads. Dispatch itself stays strictly serialized
// in (timestamp, seq) order — one event runs to its next blocking
// point before the next is released — which is what makes runs a pure
// function of their seed.
//
// Usage:
//
//	env := sim.NewEnv(seed)
//	env.Go(func() { ... env.Sleep(10 * time.Millisecond) ... })
//	env.Run() // returns when no process is runnable and no timer pending
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Time is an instant on the virtual clock, expressed as an offset from
// the simulation epoch. Durations and instants share the same unit so
// arithmetic stays trivial.
type Time = time.Duration

// timer is a pending wake-up in the event queue. Timers are pooled:
// Sleep and After draw them from timerPool and they are recycled as
// soon as their single wake has been delivered, so the steady-state
// event loop allocates nothing.
type timer struct {
	at  Time
	seq int64 // FIFO tie-break for equal timestamps
	ch  chan struct{}
	fn  func() // optional callback (runs as its own process)
}

// timerPool recycles timers across Sleeps, Afters and environments.
// The wake channel is buffered with capacity one and carries exactly
// one send per timer life, so it drains itself and can be reused.
var timerPool = sync.Pool{New: func() interface{} {
	return &timer{ch: make(chan struct{}, 1)}
}}

// worker is one reusable goroutine of the After-callback pool.
type worker struct {
	ch chan func()
}

// maxWorkers bounds the callback pool. Callbacks that turn into
// long-lived processes can occupy a worker indefinitely; once the
// pool is exhausted further callbacks spill to one-shot goroutines,
// so the bound is a recycling optimization, never a deadlock risk.
const maxWorkers = 64

// PanicError annotates a panic raised inside an After/Every callback
// with the virtual timestamp at which it fired, so a failure deep in
// a macro experiment is attributable to a point in simulated time.
// The original panic value is preserved in Value.
type PanicError struct {
	At    Time
	Value interface{}
}

// Error implements error; the Go runtime prints it when the re-raised
// panic terminates the program.
func (p *PanicError) Error() string {
	return fmt.Sprintf("sim: callback panic at virtual time %v: %v", p.At, p.Value)
}

// Env is a simulation environment: a virtual clock, an event queue and
// a census of runnable processes. An Env is safe for concurrent use by
// the processes it spawned.
type Env struct {
	mu      sync.Mutex
	cond    *sync.Cond // signaled when running drops to zero
	now     Time       // guarded by mu; mirrored in nowA for lock-free reads
	running int        // processes currently runnable or executing
	heap    []*timer   // 4-ary min-heap ordered by (at, seq)
	batch   []*timer   // scratch: timers popped together for one timestamp
	seq     int64
	stopped bool // guarded by mu; mirrored in stoppedA
	limit   Time // horizon; 0 means none

	nowA     atomic.Int64
	stoppedA atomic.Bool
	events   atomic.Int64 // timers dispatched

	// After-callback worker pool (all fields guarded by mu).
	idle     []*worker
	nworkers int
	draining bool

	rng   *rand.Rand
	rngMu sync.Mutex
}

// NewEnv returns a fresh environment whose clock reads zero. The seed
// feeds the environment RNG used by workloads so that experiments are
// reproducible.
func NewEnv(seed int64) *Env {
	e := &Env{rng: rand.New(rand.NewSource(seed))}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Now returns the current virtual time. It is a lock-free atomic read:
// hot loops (per-invocation timestamps, workload deadline checks) call
// it once per event and must not contend with the scheduler mutex.
func (e *Env) Now() Time {
	return Time(e.nowA.Load())
}

// Events reports the number of timer events dispatched so far — the
// scheduler's work counter, used by benchmarks to derive events/sec.
func (e *Env) Events() int64 { return e.events.Load() }

// Rand returns a deterministic pseudo-random float64 in [0,1). It is
// safe for concurrent use, though cross-process call ordering at equal
// virtual timestamps is not deterministic; workloads that need strict
// reproducibility (and hot loops that would otherwise serialize on the
// shared generator's lock) should carry a private rand.Rand obtained
// from NewRand instead of calling Rand per event.
func (e *Env) Rand() float64 {
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return e.rng.Float64()
}

// NewRand derives an independent deterministic generator, for workloads
// that need a private stream. Derive once at setup, not per event.
func (e *Env) NewRand() *rand.Rand {
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// setNowLocked advances the clock; e.mu must be held.
func (e *Env) setNowLocked(t Time) {
	e.now = t
	e.nowA.Store(int64(t))
}

// markStoppedLocked latches the stop flag; e.mu must be held.
func (e *Env) markStoppedLocked() {
	e.stopped = true
	e.stoppedA.Store(true)
}

// Go spawns fn as a new simulation process. It may be called before Run
// or from inside another process.
func (e *Env) Go(fn func()) {
	e.mu.Lock()
	e.running++
	e.mu.Unlock()
	go func() {
		defer e.exit()
		fn()
	}()
}

// exit retires the calling process.
func (e *Env) exit() {
	e.mu.Lock()
	e.running--
	if e.running == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// block marks the calling process as no longer runnable. The caller
// must subsequently wait on a channel that a resumer closes *after*
// calling unblock.
func (e *Env) block() {
	e.mu.Lock()
	e.running--
	if e.running == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// unblock marks one process runnable again, before it is woken.
func (e *Env) unblock() {
	e.mu.Lock()
	e.running++
	e.mu.Unlock()
}

// less orders timers by (timestamp, FIFO seq).
func less(a, b *timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushLocked inserts t into the 4-ary heap; e.mu must be held. A 4-ary
// layout halves the tree depth of the binary heap and keeps children
// on one cache line, and the inlined sift avoids container/heap's
// interface boxing on every operation.
func (e *Env) pushLocked(t *timer) {
	h := append(e.heap, t)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// popLocked removes and returns the earliest timer; e.mu must be held
// and the heap must be non-empty.
func (e *Env) popLocked() *timer {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		min := i
		base := 4*i + 1
		end := base + 4
		if end > n {
			end = n
		}
		for c := base; c < end; c++ {
			if less(h[c], h[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.heap = h
	return top
}

// Sleep suspends the calling process for d of virtual time. Negative or
// zero durations yield to other processes scheduled at the same instant.
// Once the environment is stopped (Stop or horizon) the clock is frozen
// and Sleep returns immediately, so processes drain instead of leaking.
func (e *Env) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	t := timerPool.Get().(*timer)
	t.at, t.seq, t.fn = e.now+d, e.seq, nil
	e.seq++
	e.pushLocked(t)
	e.running--
	if e.running == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	<-t.ch
	timerPool.Put(t)
}

// After schedules fn to run as a new process at now+d. Callbacks
// scheduled after the environment has stopped are dropped: periodic
// chains end at the stop point instead of queueing events that could
// never fire.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	t := timerPool.Get().(*timer)
	t.at, t.seq, t.fn = e.now+d, e.seq, fn
	e.seq++
	e.pushLocked(t)
	e.mu.Unlock()
}

// Every schedules fn at the given period until the simulation ends or
// fn returns false.
func (e *Env) Every(period time.Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	var tick func()
	tick = func() {
		if e.Stopped() {
			return
		}
		if !fn() {
			return
		}
		e.After(period, tick)
	}
	e.After(period, tick)
}

// Stopped reports whether Stop was called or the horizon was reached.
// Lock-free; safe to poll from hot loops.
func (e *Env) Stopped() bool {
	return e.stoppedA.Load()
}

// Stop asks Run to terminate. Pending After callbacks are discarded;
// pending Sleepers are woken with the clock frozen at the stop time so
// their goroutines run to completion instead of leaking (subsequent
// Sleeps return immediately, see Sleep).
func (e *Env) Stop() {
	e.mu.Lock()
	e.markStoppedLocked()
	e.mu.Unlock()
}

// Run drives the simulation until no process is runnable and no timer
// is pending, or the horizon (SetHorizon) is reached, or Stop is
// called. It returns the final virtual time. Run must be called from a
// plain goroutine, not from a simulation process.
//
// Dispatch order is deterministic: timers fire in (timestamp, seq)
// order and each fired event runs until it blocks or exits before the
// next one is released. All timers sharing the next timestamp are
// popped from the heap in one critical section (the common case in
// fan-out/fan-in patterns), then woken from that batch without
// touching the heap again.
//
// After Stop or the horizon, Run drains: remaining Sleep timers are
// woken at the frozen clock (their processes terminate instead of
// leaking), remaining callbacks are dropped, and the worker pool is
// shut down before Run returns.
func (e *Env) Run() Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		for e.running > 0 {
			e.cond.Wait()
		}
		if len(e.heap) == 0 {
			e.markStoppedLocked()
			e.drainWorkersLocked()
			return e.now
		}
		t := e.popLocked()
		if !e.stopped {
			if e.limit > 0 && t.at > e.limit {
				// Horizon reached: freeze the clock and fall through
				// to the drain path below.
				e.setNowLocked(e.limit)
				e.markStoppedLocked()
			} else if t.at > e.now {
				e.setNowLocked(t.at)
			}
		}
		// Pop every timer sharing this timestamp in the same critical
		// section; they dispatch from the batch without another heap
		// operation each.
		e.batch = append(e.batch[:0], t)
		for len(e.heap) > 0 && e.heap[0].at == t.at {
			e.batch = append(e.batch, e.popLocked())
		}
		for i, bt := range e.batch {
			e.batch[i] = nil
			if bt.fn != nil {
				if e.stopped {
					// Draining: callbacks scheduled before the stop
					// never fire after it.
					bt.fn = nil
					timerPool.Put(bt)
					continue
				}
				fn := bt.fn
				bt.fn = nil
				timerPool.Put(bt)
				e.events.Add(1)
				e.running++
				e.startCallbackLocked(fn)
			} else {
				e.events.Add(1)
				e.running++
				bt.ch <- struct{}{} // buffered; the sleeper recycles bt
			}
			for e.running > 0 {
				e.cond.Wait()
			}
		}
	}
}

// startCallbackLocked hands fn to an idle pool worker, growing the
// pool up to maxWorkers, and spilling to a one-shot goroutine beyond
// that; e.mu must be held. Worker identity is invisible to fn, so the
// choice cannot affect determinism.
func (e *Env) startCallbackLocked(fn func()) {
	if n := len(e.idle); n > 0 {
		w := e.idle[n-1]
		e.idle[n-1] = nil
		e.idle = e.idle[:n-1]
		w.ch <- fn // buffered(1); the worker is idle, never blocks
		return
	}
	if e.nworkers < maxWorkers {
		e.nworkers++
		w := &worker{ch: make(chan func(), 1)}
		w.ch <- fn
		go e.workerLoop(w)
		return
	}
	go e.execTask(fn)
}

// workerLoop runs queued callbacks until the pool drains. The loop
// body only continues after a normal callback return: a panic unwinds
// through execTask (annotated) and a runtime.Goexit (e.g. t.Fatal in
// a test callback) terminates the goroutine, in both cases after
// execTask's defer has retired the process from the census.
func (e *Env) workerLoop(w *worker) {
	for fn := range w.ch {
		e.execTask(fn)
		e.mu.Lock()
		if e.draining {
			e.mu.Unlock()
			return
		}
		e.idle = append(e.idle, w)
		e.mu.Unlock()
	}
}

// execTask runs one callback as a simulation process and retires it
// from the running census however it terminates — return, panic, or
// runtime.Goexit. Panics are re-raised wrapped in PanicError so the
// crash names the virtual time at which the callback fired.
func (e *Env) execTask(fn func()) {
	defer func() {
		r := recover()
		e.mu.Lock()
		e.running--
		if e.running == 0 {
			e.cond.Broadcast()
		}
		e.mu.Unlock()
		if r != nil {
			panic(&PanicError{At: Time(e.nowA.Load()), Value: r})
		}
	}()
	fn()
}

// drainWorkersLocked shuts the callback pool down; e.mu must be held.
// Idle workers are released immediately; a worker still hosting a
// blocked process exits when (if ever) that process finishes.
func (e *Env) drainWorkersLocked() {
	e.draining = true
	for i, w := range e.idle {
		close(w.ch)
		e.idle[i] = nil
	}
	e.idle = e.idle[:0]
}

// SetHorizon caps the virtual clock: Run returns once the next event
// would be after limit.
func (e *Env) SetHorizon(limit time.Duration) {
	e.mu.Lock()
	e.limit = limit
	e.mu.Unlock()
}

// String describes the environment state for debugging.
func (e *Env) String() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fmt.Sprintf("sim.Env{now=%v running=%d timers=%d}", e.now, e.running, len(e.heap))
}
