// Package sim implements a deterministic discrete-event simulation
// substrate with goroutine-based processes and a virtual clock.
//
// Every component of the OFC reproduction (FaaS platform, RAMCloud-like
// cache, Swift-like object store, network and disks) runs as sim
// processes: ordinary goroutines that only ever block through the
// primitives of this package (Sleep, Future.Wait, Semaphore.Acquire,
// Queue.Recv, WaitGroup.Wait). The scheduler advances the virtual clock
// only when every process is blocked, which makes half-hour macro
// experiments complete in milliseconds of host time while preserving
// the timing relationships between components.
//
// Usage:
//
//	env := sim.NewEnv(seed)
//	env.Go(func() { ... env.Sleep(10 * time.Millisecond) ... })
//	env.Run() // returns when no process is runnable and no timer pending
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Time is an instant on the virtual clock, expressed as an offset from
// the simulation epoch. Durations and instants share the same unit so
// arithmetic stays trivial.
type Time = time.Duration

// timer is a pending wake-up in the event queue.
type timer struct {
	at  Time
	seq int64 // FIFO tie-break for equal timestamps
	ch  chan struct{}
	fn  func() // optional callback (runs as its own process)
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Env is a simulation environment: a virtual clock, an event queue and
// a census of runnable processes. An Env is safe for concurrent use by
// the processes it spawned.
type Env struct {
	mu      sync.Mutex
	cond    *sync.Cond // signaled when running drops to zero
	now     Time
	running int // processes currently runnable or executing
	timers  timerHeap
	seq     int64
	stopped bool
	limit   Time // horizon; 0 means none
	rng     *rand.Rand
	rngMu   sync.Mutex
}

// NewEnv returns a fresh environment whose clock reads zero. The seed
// feeds the environment RNG used by workloads so that experiments are
// reproducible.
func NewEnv(seed int64) *Env {
	e := &Env{rng: rand.New(rand.NewSource(seed))}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Now returns the current virtual time.
func (e *Env) Now() Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Rand returns a deterministic pseudo-random float64 in [0,1). It is
// safe for concurrent use, though cross-process call ordering at equal
// virtual timestamps is not deterministic; workloads that need strict
// reproducibility should carry their own rand.Rand.
func (e *Env) Rand() float64 {
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return e.rng.Float64()
}

// NewRand derives an independent deterministic generator, for workloads
// that need a private stream.
func (e *Env) NewRand() *rand.Rand {
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Go spawns fn as a new simulation process. It may be called before Run
// or from inside another process.
func (e *Env) Go(fn func()) {
	e.mu.Lock()
	e.running++
	e.mu.Unlock()
	go func() {
		defer e.exit()
		fn()
	}()
}

// exit retires the calling process.
func (e *Env) exit() {
	e.mu.Lock()
	e.running--
	if e.running == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// block marks the calling process as no longer runnable. The caller
// must subsequently wait on a channel that a resumer closes *after*
// calling unblock.
func (e *Env) block() {
	e.mu.Lock()
	e.running--
	if e.running == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// unblock marks one process runnable again, before it is woken.
func (e *Env) unblock() {
	e.mu.Lock()
	e.running++
	e.mu.Unlock()
}

// Sleep suspends the calling process for d of virtual time. Negative or
// zero durations yield to other processes scheduled at the same instant.
func (e *Env) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	t := &timer{at: e.now + d, seq: e.seq, ch: make(chan struct{})}
	e.seq++
	heap.Push(&e.timers, t)
	e.running--
	if e.running == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	<-t.ch
}

// After schedules fn to run as a new process at now+d.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	t := &timer{at: e.now + d, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.timers, t)
	e.mu.Unlock()
}

// Every schedules fn at the given period until the simulation ends or
// fn returns false.
func (e *Env) Every(period time.Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	var tick func()
	tick = func() {
		if e.Stopped() {
			return
		}
		if !fn() {
			return
		}
		e.After(period, tick)
	}
	e.After(period, tick)
}

// Stopped reports whether Stop was called or the horizon was reached.
func (e *Env) Stopped() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stopped
}

// Stop asks Run to terminate at the next idle point. Pending timers are
// discarded; blocked processes are abandoned (the goroutines leak until
// process exit, which is acceptable for short-lived test binaries, or
// their wakers run during teardown).
func (e *Env) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
}

// Run drives the simulation until no process is runnable and no timer
// is pending, or the horizon (SetHorizon) is reached, or Stop is
// called. It returns the final virtual time. Run must be called from a
// plain goroutine, not from a simulation process.
func (e *Env) Run() Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		for e.running > 0 {
			e.cond.Wait()
		}
		if e.stopped || len(e.timers) == 0 {
			e.stopped = true
			return e.now
		}
		t := heap.Pop(&e.timers).(*timer)
		if e.limit > 0 && t.at > e.limit {
			e.now = e.limit
			e.stopped = true
			return e.now
		}
		if t.at > e.now {
			e.now = t.at
		}
		if t.fn != nil {
			fn := t.fn
			e.running++
			go func() {
				defer e.exit()
				fn()
			}()
		} else {
			e.running++
			close(t.ch)
		}
	}
}

// SetHorizon caps the virtual clock: Run returns once the next event
// would be after limit.
func (e *Env) SetHorizon(limit time.Duration) {
	e.mu.Lock()
	e.limit = limit
	e.mu.Unlock()
}

// String describes the environment state for debugging.
func (e *Env) String() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fmt.Sprintf("sim.Env{now=%v running=%d timers=%d}", e.now, e.running, len(e.timers))
}
