package sim

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestStopDrainsSleepers is the regression test for the Stop goroutine
// leak: processes blocked in Sleep when Stop fires must be woken (with
// the clock frozen) and run to completion instead of leaking until
// process exit.
func TestStopDrainsSleepers(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnv(1)
	const sleepers = 200
	var resumed atomic.Int64
	for i := 0; i < sleepers; i++ {
		i := i
		env.Go(func() {
			env.Sleep(time.Duration(1+i) * time.Hour) // far past the stop point
			resumed.Add(1)
		})
	}
	env.Go(func() {
		env.Sleep(time.Millisecond)
		env.Stop()
	})
	end := env.Run()
	if end != time.Millisecond {
		t.Fatalf("clock advanced past the stop point: %v", end)
	}
	if got := resumed.Load(); got != sleepers {
		t.Fatalf("only %d/%d sleepers resumed after Stop", got, sleepers)
	}
	// The sleeper goroutines have all passed their wake point before Run
	// returns; give the runtime a beat to unwind their stacks.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+2; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked across Stop: %d before, %d after", before, after)
	}
}

// TestHorizonDrainsSleepers: the horizon path must drain exactly like
// an explicit Stop.
func TestHorizonDrainsSleepers(t *testing.T) {
	env := NewEnv(1)
	env.SetHorizon(50 * time.Millisecond)
	var resumed atomic.Int64
	for i := 0; i < 50; i++ {
		env.Go(func() {
			env.Sleep(time.Hour)
			resumed.Add(1)
		})
	}
	if end := env.Run(); end != 50*time.Millisecond {
		t.Fatalf("final clock %v, want the 50ms horizon", end)
	}
	if got := resumed.Load(); got != 50 {
		t.Fatalf("only %d/50 sleepers resumed at the horizon", got)
	}
}

// TestAfterDroppedOnStop: callbacks pending at the stop point, and
// callbacks scheduled after it, must never fire.
func TestAfterDroppedOnStop(t *testing.T) {
	env := NewEnv(1)
	var fired atomic.Int64
	env.After(time.Hour, func() { fired.Add(1) })
	env.Go(func() {
		env.Sleep(time.Millisecond)
		env.Stop()
		env.After(time.Microsecond, func() { fired.Add(1) })
	})
	env.Run()
	if n := fired.Load(); n != 0 {
		t.Fatalf("%d callbacks fired after Stop", n)
	}
}

// TestSchedulerStress drives 10k concurrent processes through mixed
// Sleep/After/Every traffic with heavy equal-timestamp collisions and
// checks FIFO tie-break order and the final clock value. make
// test-race runs this under the race detector.
func TestSchedulerStress(t *testing.T) {
	env := NewEnv(7)
	const procs = 10000
	var done atomic.Int64
	var maxAt time.Duration
	for i := 0; i < procs; i++ {
		// i%977 and i%13 force thousands of processes onto shared
		// timestamps (equal-timestamp storms for the batch pop path).
		d1 := time.Duration(i%977) * time.Millisecond
		d2 := time.Duration(i%13) * time.Millisecond
		if d1+d2 > maxAt {
			maxAt = d1 + d2
		}
		env.Go(func() {
			env.Sleep(d1)
			env.Sleep(d2)
			done.Add(1)
		})
	}

	// Equal-timestamp callback storm: all fire at t=2s, and FIFO-by-seq
	// dispatch means the append order must equal the schedule order.
	// The slice is intentionally unsynchronized — serialized dispatch is
	// the guarantee under test, and -race verifies it.
	const storm = 500
	var order []int
	for i := 0; i < storm; i++ {
		i := i
		env.After(2*time.Second, func() { order = append(order, i) })
	}

	ticks := 0
	env.Every(100*time.Millisecond, func() bool {
		ticks++
		return ticks < 25
	})

	end := env.Run()

	want := maxAt
	if 2*time.Second > want {
		want = 2 * time.Second
	}
	if tickEnd := 25 * 100 * time.Millisecond; tickEnd > want {
		want = tickEnd
	}
	if end != want {
		t.Errorf("final clock %v, want %v", end, want)
	}
	if got := done.Load(); got != procs {
		t.Errorf("%d/%d processes completed", got, procs)
	}
	if len(order) != storm {
		t.Fatalf("%d/%d storm callbacks fired", len(order), storm)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-timestamp callbacks fired out of FIFO order: position %d got %d", i, v)
		}
	}
}

// TestCallbackPanicAnnotated verifies that a panic inside an After
// callback is re-raised as a PanicError carrying the virtual timestamp.
// The panic escapes on a pool-worker goroutine and takes the process
// down, so the crash is observed from a child invocation of this test
// binary.
func TestCallbackPanicAnnotated(t *testing.T) {
	if os.Getenv("SIM_PANIC_CHILD") == "1" {
		env := NewEnv(1)
		env.After(5*time.Millisecond, func() { panic("boom") })
		env.Run()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCallbackPanicAnnotated$")
	cmd.Env = append(os.Environ(), "SIM_PANIC_CHILD=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child survived a panicking callback:\n%s", out)
	}
	s := string(out)
	if !strings.Contains(s, "virtual time 5ms") || !strings.Contains(s, "boom") {
		t.Errorf("panic not annotated with virtual timestamp:\n%s", s)
	}
}

// TestEventsCounter: the dispatch counter must count every fired timer.
func TestEventsCounter(t *testing.T) {
	env := NewEnv(1)
	const n = 100
	for i := 0; i < n; i++ {
		env.Go(func() { env.Sleep(time.Millisecond) })
	}
	env.After(2*time.Millisecond, func() {})
	env.Run()
	if got := env.Events(); got != n+1 {
		t.Errorf("Events() = %d, want %d", got, n+1)
	}
}
