package sim

import (
	"testing"
	"time"
)

// BenchmarkSleepEvent measures the scheduler's per-event cost.
func BenchmarkSleepEvent(b *testing.B) {
	env := NewEnv(1)
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			env.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkAfterCallback measures callback dispatch through the
// bounded worker pool (a self-rescheduling chain, like keepalive and
// eviction timers in the platform).
func BenchmarkAfterCallback(b *testing.B) {
	env := NewEnv(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			env.After(time.Microsecond, tick)
		}
	}
	env.After(time.Microsecond, tick)
	b.ResetTimer()
	env.Run()
}

// BenchmarkBatchWakeup measures equal-timestamp fan-out: many
// processes sleeping to the same instant, popped as one batch.
func BenchmarkBatchWakeup(b *testing.B) {
	env := NewEnv(1)
	const fan = 64
	rounds := b.N/fan + 1
	for i := 0; i < fan; i++ {
		env.Go(func() {
			for r := 0; r < rounds; r++ {
				env.Sleep(time.Microsecond) // all fan sleepers share each timestamp
			}
		})
	}
	b.ResetTimer()
	env.Run()
}

// BenchmarkFutureRoundTrip measures a set/wait handoff between two
// processes.
func BenchmarkFutureRoundTrip(b *testing.B) {
	env := NewEnv(1)
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			f := NewFuture[int](env)
			env.Go(func() { f.Set(1) })
			f.Wait()
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkQueueSendRecv measures producer/consumer throughput.
func BenchmarkQueueSendRecv(b *testing.B) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			q.Send(i)
		}
		q.Close()
	})
	env.Go(func() {
		for {
			if _, ok := q.Recv(); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	env.Run()
}
