package sim

import (
	"testing"
	"time"
)

// BenchmarkSleepEvent measures the scheduler's per-event cost.
func BenchmarkSleepEvent(b *testing.B) {
	env := NewEnv(1)
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			env.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkFutureRoundTrip measures a set/wait handoff between two
// processes.
func BenchmarkFutureRoundTrip(b *testing.B) {
	env := NewEnv(1)
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			f := NewFuture[int](env)
			env.Go(func() { f.Set(1) })
			f.Wait()
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkQueueSendRecv measures producer/consumer throughput.
func BenchmarkQueueSendRecv(b *testing.B) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	env.Go(func() {
		for i := 0; i < b.N; i++ {
			q.Send(i)
		}
		q.Close()
	})
	env.Go(func() {
		for {
			if _, ok := q.Recv(); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	env.Run()
}
