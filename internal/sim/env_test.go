package sim

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	var at Time
	env.Go(func() {
		env.Sleep(10 * time.Millisecond)
		at = env.Now()
	})
	end := env.Run()
	if at != 10*time.Millisecond {
		t.Errorf("woke at %v, want 10ms", at)
	}
	if end != 10*time.Millisecond {
		t.Errorf("Run returned %v, want 10ms", end)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	env := NewEnv(1)
	ran := 0
	env.Go(func() {
		env.Sleep(0)
		ran++
		env.Sleep(-5 * time.Second)
		ran++
	})
	env.Run()
	if ran != 2 {
		t.Fatalf("ran=%d, want 2", ran)
	}
	if env.Now() != 0 {
		t.Fatalf("clock moved to %v on zero sleeps", env.Now())
	}
}

func TestTimerOrdering(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i, d := range []time.Duration{30, 10, 20} {
		i, d := i, d
		env.Go(func() {
			env.Sleep(d * time.Millisecond)
			order = append(order, i)
		})
	}
	env.Run()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	env := NewEnv(1)
	var order []int
	root := func() {
		for i := 0; i < 5; i++ {
			i := i
			env.After(10*time.Millisecond, func() {
				order = append(order, i)
			})
		}
	}
	env.Go(root)
	env.Run()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("same-instant order=%v, want FIFO", order)
		}
	}
}

func TestAfterRunsAtRightTime(t *testing.T) {
	env := NewEnv(1)
	var at Time
	env.After(42*time.Millisecond, func() { at = env.Now() })
	env.Run()
	if at != 42*time.Millisecond {
		t.Errorf("After fired at %v", at)
	}
}

func TestNestedSpawns(t *testing.T) {
	env := NewEnv(1)
	var count atomic.Int64
	var spawn func(depth int)
	spawn = func(depth int) {
		count.Add(1)
		if depth == 0 {
			return
		}
		env.Sleep(time.Millisecond)
		for i := 0; i < 2; i++ {
			d := depth
			env.Go(func() { spawn(d - 1) })
		}
	}
	env.Go(func() { spawn(5) })
	env.Run()
	// 1 + 2 + 4 + 8 + 16 + 32 = 63 processes
	if count.Load() != 63 {
		t.Errorf("count=%d, want 63", count.Load())
	}
}

func TestHorizonStopsRun(t *testing.T) {
	env := NewEnv(1)
	env.SetHorizon(100 * time.Millisecond)
	ticks := 0
	env.Every(30*time.Millisecond, func() bool {
		ticks++
		return true
	})
	end := env.Run()
	if end != 100*time.Millisecond {
		t.Errorf("end=%v, want horizon 100ms", end)
	}
	if ticks != 3 { // 30, 60, 90
		t.Errorf("ticks=%d, want 3", ticks)
	}
}

func TestEveryStopsWhenFalse(t *testing.T) {
	env := NewEnv(1)
	ticks := 0
	env.Every(time.Second, func() bool {
		ticks++
		return ticks < 4
	})
	env.Run()
	if ticks != 4 {
		t.Errorf("ticks=%d, want 4", ticks)
	}
}

func TestFutureSetBeforeWait(t *testing.T) {
	env := NewEnv(1)
	f := NewFuture[int](env)
	got := 0
	env.Go(func() {
		f.Set(7)
		got = f.Wait()
	})
	env.Run()
	if got != 7 {
		t.Errorf("got=%d", got)
	}
}

func TestFutureWakesAllWaiters(t *testing.T) {
	env := NewEnv(1)
	f := NewFuture[string](env)
	var got atomic.Int64
	for i := 0; i < 10; i++ {
		env.Go(func() {
			if f.Wait() == "done" {
				got.Add(1)
			}
		})
	}
	env.Go(func() {
		env.Sleep(5 * time.Millisecond)
		f.Set("done")
	})
	env.Run()
	if got.Load() != 10 {
		t.Errorf("waiters woken=%d, want 10", got.Load())
	}
}

func TestFutureDoubleSetPanics(t *testing.T) {
	env := NewEnv(1)
	f := NewFuture[int](env)
	env.Go(func() {
		f.Set(1)
		defer func() {
			if recover() == nil {
				t.Error("second Set did not panic")
			}
		}()
		f.Set(2)
	})
	env.Run()
}

func TestWaitGroup(t *testing.T) {
	env := NewEnv(1)
	wg := NewWaitGroup(env)
	var done atomic.Int64
	var joinedAt Time
	for i := 1; i <= 5; i++ {
		i := i
		wg.Add(1)
		env.Go(func() {
			env.Sleep(time.Duration(i) * time.Millisecond)
			done.Add(1)
			wg.Done()
		})
	}
	env.Go(func() {
		wg.Wait()
		joinedAt = env.Now()
	})
	env.Run()
	if done.Load() != 5 {
		t.Errorf("done=%d", done.Load())
	}
	if joinedAt != 5*time.Millisecond {
		t.Errorf("joined at %v, want 5ms", joinedAt)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	env := NewEnv(1)
	sem := NewSemaphore(env, 2)
	var inflight, peak atomic.Int64
	wg := NewWaitGroup(env)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		env.Go(func() {
			defer wg.Done()
			sem.Acquire(1)
			cur := inflight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			env.Sleep(10 * time.Millisecond)
			inflight.Add(-1)
			sem.Release(1)
		})
	}
	env.Go(func() { wg.Wait() })
	end := env.Run()
	if peak.Load() > 2 {
		t.Errorf("peak concurrency %d exceeds semaphore", peak.Load())
	}
	if end != 30*time.Millisecond { // 6 tasks, 2 at a time, 10ms each
		t.Errorf("end=%v, want 30ms", end)
	}
}

func TestSemaphoreFIFOOrder(t *testing.T) {
	env := NewEnv(1)
	sem := NewSemaphore(env, 1)
	var order []int
	env.Go(func() {
		sem.Acquire(1)
		env.Sleep(time.Millisecond)
		sem.Release(1)
	})
	for i := 0; i < 4; i++ {
		i := i
		env.After(time.Duration(i+1)*time.Microsecond, func() {
			sem.Acquire(1)
			order = append(order, i)
			sem.Release(1)
		})
	}
	env.Run()
	for i := 0; i < 4; i++ {
		if order[i] != i {
			t.Fatalf("order=%v, want FIFO", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv(1)
	sem := NewSemaphore(env, 1)
	env.Go(func() {
		if !sem.TryAcquire(1) {
			t.Error("first TryAcquire failed")
		}
		if sem.TryAcquire(1) {
			t.Error("second TryAcquire succeeded")
		}
		sem.Release(1)
		if sem.Available() != 1 {
			t.Errorf("available=%d", sem.Available())
		}
	})
	env.Run()
}

func TestQueueFIFO(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	var got []int
	env.Go(func() {
		for {
			v, ok := q.Recv()
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	env.Go(func() {
		for i := 0; i < 5; i++ {
			env.Sleep(time.Millisecond)
			q.Send(i)
		}
		q.Close()
	})
	env.Run()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want ordered", got)
		}
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	var total atomic.Int64
	for i := 0; i < 3; i++ {
		env.Go(func() {
			for {
				v, ok := q.Recv()
				if !ok {
					return
				}
				total.Add(int64(v))
				env.Sleep(time.Millisecond)
			}
		})
	}
	env.Go(func() {
		for i := 1; i <= 10; i++ {
			q.Send(i)
		}
		env.Sleep(time.Second)
		q.Close()
	})
	env.Run()
	if total.Load() != 55 {
		t.Errorf("total=%d, want 55", total.Load())
	}
}

func TestStop(t *testing.T) {
	env := NewEnv(1)
	ticks := 0
	env.Every(time.Second, func() bool {
		ticks++
		if ticks == 3 {
			env.Stop()
		}
		return true
	})
	env.Run()
	if ticks != 3 {
		t.Errorf("ticks=%d, want 3", ticks)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Time, float64) {
		env := NewEnv(42)
		var v float64
		env.Go(func() {
			for i := 0; i < 100; i++ {
				env.Sleep(time.Duration(1+int(env.Rand()*10)) * time.Millisecond)
				v += env.Rand()
			}
		})
		return env.Run(), v
	}
	t1, v1 := run()
	t2, v2 := run()
	if t1 != t2 || v1 != v2 {
		t.Errorf("non-deterministic replay: (%v,%v) vs (%v,%v)", t1, v1, t2, v2)
	}
}

// Property: for any set of sleep durations, Run's final time equals the
// maximum requested sleep, and each process observes exactly its own
// duration on the clock.
func TestPropertySleepDurations(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		env := NewEnv(7)
		max := time.Duration(0)
		ok := true
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			if d > max {
				max = d
			}
			env.Go(func() {
				env.Sleep(d)
				if env.Now() < d {
					ok = false
				}
			})
		}
		end := env.Run()
		return ok && end == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a semaphore of capacity c with n unit holders of equal
// duration d finishes at ceil(n/c)*d.
func TestPropertySemaphoreMakespan(t *testing.T) {
	f := func(n8, c8 uint8) bool {
		n := int(n8%20) + 1
		c := int(c8%5) + 1
		d := 3 * time.Millisecond
		env := NewEnv(3)
		sem := NewSemaphore(env, c)
		for i := 0; i < n; i++ {
			env.Go(func() {
				sem.Acquire(1)
				env.Sleep(d)
				sem.Release(1)
			})
		}
		end := env.Run()
		rounds := (n + c - 1) / c
		return end == time.Duration(rounds)*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
