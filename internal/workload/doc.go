// Package workload implements the paper's evaluation workloads: the 19
// single-stage multimedia functions, the four multi-stage applications
// (MapReduce word count, THIS, IMAD, ServerlessBench Image Processing),
// the FaaSLoad load injector (§7, Appendix A) and trace replay.
//
// Functions are synthetic generative models: each has a memory law, a
// compute-time law and an output-size law over the input object's
// descriptive features and its function-specific arguments. The laws
// are non-trivial (the paper's Figure 2 point: memory is not
// predictable from any single feature) but learnable from a finite
// input pool, matching the behaviour FaaSLoad produces with its
// prepared datasets.
//
// Single-stage functions (input type, argument, memory drivers):
//
//	wand_blur          image  sigma      frame×(2+σ/2) working copies
//	wand_resize        image  scale      frame×(2+1.2·scale)
//	wand_sepia         image  threshold  frame×(2+0.8·t)
//	wand_rotate        image  angle      frame×(2.5+0.004·deg)
//	wand_denoise       image  strength   frame×(3+0.8·s)
//	wand_edge          image  radius     frame×(2+0.6·r)
//	wand_sharpen       image  amount     frame×(2+0.7·a)
//	wand_grayscale     image  depth      frame×~1.5
//	wand_crop          image  ratio      frame×(1.5+ratio)
//	wand_watermark     image  opacity    frame×(2.2+0.5·o)
//	sharp_resize       image  width      frame×2 (fast resize)
//	audio_compress     audio  quality    PCM working set ×(1+q/8)
//	speech_recognition audio  beam       180 MB model + duration-scaled lattice
//	audio_normalize    audio  gain       PCM working set
//	video_grayscale    video  depth      ~16 decoded frames resident
//	video_transcode    video  crf        lookahead window of frames
//	video_thumbnail    video  count      count+2 decoded frames
//	text_summary       text   ratio      ~6× text (sentence graph)
//	word_frequency     text   top        ~2.5× text (hash table)
//
// where frame = width × height × channels × 4 bytes. Each law also
// carries ±3 % per-input content noise and ±2.5 % per-invocation
// jitter — the irreducible error floor that keeps Table 1's accuracy
// at the paper's levels rather than at 100 %.
//
// Multi-stage applications (pre-chunked inputs, cacheable
// intermediates):
//
//	map_reduce       1 MB text parts → per-part counts → reduce
//	THIS             4 s video segments → decoded frames → processed frames → merge
//	IMAD             app → {6 icons, strings} → {reports} → verdict
//	ImageProcessing  image → metadata → transformed → thumbnail → upload
package workload
