package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/objstore"
)

// PipelineResult aggregates the per-stage invocation results of one
// pipeline run.
type PipelineResult struct {
	Results []*faas.Result
	Err     error
}

// Phases sums the stage phase durations.
func (r *PipelineResult) Phases() (e, t, l time.Duration) {
	for _, res := range r.Results {
		e += res.Extract
		t += res.Transform
		l += res.Load
	}
	return
}

// Duration is wall-clock start of first stage to end of last.
func (r *PipelineResult) Duration() time.Duration {
	if len(r.Results) == 0 {
		return 0
	}
	return time.Duration(r.Results[len(r.Results)-1].End - r.Results[0].Start)
}

// stageModel couples a pipeline-stage function with its laws, for
// offline pretraining of its memory model.
type stageModel struct {
	fn    *faas.Function
	mem   func(f, args map[string]float64) int64
	tim   func(f, args map[string]float64) time.Duration
	outSz func(f, args map[string]float64) int64
	// inOps/outOps are the storage operations per invocation (1 when
	// zero); multi-object stages pay the per-request base that many
	// times.
	inOps, outOps int
	sample        func(rng *rand.Rand) map[string]float64 // typical input features
}

// Pipeline is a runnable multi-stage application.
type Pipeline struct {
	Name      string
	InputType string
	Funcs     []*faas.Function
	// Run executes the pipeline for one prepared input; id must be
	// unique per run.
	Run func(p *faas.Platform, in InputMeta, id string) *PipelineResult
	// Parts derives the pre-chunked dataset objects of an input, the
	// way the paper's analytics workloads store large inputs as many
	// small (cacheable) objects. Nil when the input is a single object.
	Parts  func(in InputMeta) []InputMeta
	stages []*stageModel
}

// StageInput writes the input (or its pre-chunked parts) through w.
func (pl *Pipeline) StageInput(w ObjectWriter, in InputMeta) {
	if pl.Parts == nil {
		w.WriteObject(in.Key, blobOf(in.Size), in.Features)
		return
	}
	for _, part := range pl.Parts(in) {
		w.WriteObject(part.Key, blobOf(part.Size), part.Features)
	}
}

// Pretrain matures the memory/benefit models of every stage function
// from n law-generated samples each.
func (pl *Pipeline) Pretrain(trainer *core.ModelTrainer, rsds objstore.Profile, n int, rng *rand.Rand) {
	for _, st := range pl.stages {
		schema := core.NewFeatureSchema(st.fn)
		samples := make([]core.Sample, 0, n)
		for i := 0; i < n; i++ {
			f := st.sample(rng)
			vals := make([]float64, 0, len(schema.Names()))
			for _, name := range schema.Names() {
				if v, ok := f[name]; ok {
					vals = append(vals, v)
				} else {
					vals = append(vals, missing())
				}
			}
			inOps, outOps := st.inOps, st.outOps
			if inOps < 1 {
				inOps = 1
			}
			if outOps < 1 {
				outOps = 1
			}
			samples = append(samples, core.Sample{
				Vals:         vals,
				PeakMem:      st.mem(f, f),
				Extract:      time.Duration(inOps)*rsds.ReadBase + bwTime(int64(f["size"])*int64(inOps), rsds.ReadBW),
				Transform:    st.tim(f, f),
				Load:         time.Duration(outOps)*rsds.WriteBase + bwTime(st.outSz(f, f), rsds.WriteBW),
				BenefitKnown: true,
			})
		}
		trainer.Pretrain(st.fn, samples)
	}
}

// loadObj writes an object and records its true features in the suite
// registry so downstream stages (and the Predictor) can see them.
func (su *Suite) loadObj(ctx *faas.Ctx, key string, size int64, kind faas.ObjKind, features map[string]float64) error {
	if features == nil {
		features = map[string]float64{}
	}
	features["size"] = float64(size)
	su.RegisterObject(key, features)
	return ctx.Load(key, faas.Blob{Size: size}, kind)
}

func ceilDiv(a, b int64) int {
	return int((a + b - 1) / b)
}

// lastSeg returns the final path segment of a key, for deriving
// per-part output names.
func lastSeg(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[i+1:]
		}
	}
	return key
}

// blobOf builds a synthetic payload.
func blobOf(size int64) blobType { return blobType{Size: size} }

// stageReq builds a stage invocation request.
func stageReq(fn *faas.Function, id string, keys []string, features map[string]float64, final bool) *faas.Request {
	return &faas.Request{
		Function:      fn,
		Pipeline:      id,
		FinalStage:    final,
		InputKeys:     keys,
		InputFeatures: features,
	}
}

// ---------------------------------------------------------------------------
// MapReduce word count (as in Pocket/ExCamera-style analytics, §7).

const mrChunk = 1 * MB

// NewMapReduce builds the word-count pipeline for a tenant. The input
// text is stored pre-chunked (2 MB parts) in the data store, as the
// paper's analytics workloads do ("the corresponding input,
// intermediate and output data are actually split into many small
// objects", §3): mappers read one part each, the reducer folds the
// per-part counts into the final result.
func NewMapReduce(su *Suite, tenant string, profile TenantProfile, platformMax int64) *Pipeline {
	mapMem := func(f, _ map[string]float64) int64 { return 64*MB + int64(f["size"]*3) }
	mapTime := func(f, _ map[string]float64) time.Duration {
		return 10*time.Millisecond + time.Duration(f["size"]*float64(90*time.Nanosecond))
	}
	redMem := func(f, _ map[string]float64) int64 { return 80*MB + int64(f["chunks"])*MB }
	redTime := func(f, _ map[string]float64) time.Duration {
		return time.Duration(f["chunks"] * float64(40*time.Millisecond))
	}

	maxIn := int64(30) * MB
	book := func(m int64) int64 { return BookedMem(profile, m, platformMax) }
	mapFn := &faas.Function{Name: "mr_map", Tenant: tenant, InputType: "text",
		MemoryBooked: book(mapMem(map[string]float64{"size": float64(mrChunk)}, nil))}
	reduce := &faas.Function{Name: "mr_reduce", Tenant: tenant, InputType: "text", ArgNames: []string{"chunks"},
		MemoryBooked: book(redMem(map[string]float64{"chunks": float64(ceilDiv(maxIn, mrChunk))}, nil))}

	mapFn.Body = func(ctx *faas.Ctx) error {
		in := ctx.InputKeys()[0]
		blob, err := ctx.Extract(in)
		if err != nil {
			return err
		}
		f := su.FeaturesOf(in, blob.Size)
		if err := ctx.Transform(mapTime(f, nil), mapMem(f, nil)); err != nil {
			return err
		}
		return su.loadObj(ctx, "pl/"+ctx.PipelineID()+"/"+lastSeg(in)+".counts", 64<<10, faas.KindIntermediate, map[string]float64{})
	}
	reduce.Body = func(ctx *faas.Ctx) error {
		for _, key := range ctx.InputKeys() {
			if _, err := ctx.Extract(key); err != nil {
				return err
			}
		}
		f := map[string]float64{"chunks": float64(len(ctx.InputKeys()))}
		if err := ctx.Transform(redTime(f, nil), redMem(f, nil)); err != nil {
			return err
		}
		return su.loadObj(ctx, "pl/"+ctx.PipelineID()+"/result", 128<<10, faas.KindFinal, map[string]float64{})
	}

	pl := &Pipeline{Name: "map_reduce", InputType: "text", Funcs: []*faas.Function{mapFn, reduce}}
	pl.Parts = func(in InputMeta) []InputMeta {
		chunks := ceilDiv(in.Size, mrChunk)
		per := in.Size / int64(chunks)
		parts := make([]InputMeta, chunks)
		for i := range parts {
			parts[i] = InputMeta{
				Key:      fmt.Sprintf("%s/part/%d", in.Key, i),
				Size:     per,
				Features: map[string]float64{"size": float64(per), "lines": float64(per) / 60},
			}
		}
		return parts
	}
	pl.Run = func(p *faas.Platform, in InputMeta, id string) *PipelineResult {
		out := &PipelineResult{}
		parts := pl.Parts(in)
		mapReqs := make([]*faas.Request, len(parts))
		for i, part := range parts {
			mapReqs[i] = stageReq(mapFn, id, []string{part.Key}, part.Features, false)
		}
		mapRes := p.InvokeParallel(mapReqs)
		out.Results = append(out.Results, mapRes...)
		for _, r := range mapRes {
			if r.Err != nil {
				out.Err = r.Err
				return out
			}
		}
		countKeys := make([]string, len(parts))
		for i, part := range parts {
			countKeys[i] = "pl/" + id + "/" + lastSeg(part.Key) + ".counts"
		}
		rr := stageReq(reduce, id, countKeys, map[string]float64{"size": 64 << 10}, true)
		rr.Args = map[string]float64{"chunks": float64(len(parts))}
		r3 := p.Invoke(rr)
		out.Results = append(out.Results, r3)
		out.Err = r3.Err
		return out
	}

	pl.stages = []*stageModel{
		{fn: mapFn, mem: mapMem, tim: mapTime,
			outSz:  func(_, _ map[string]float64) int64 { return 64 << 10 },
			sample: func(rng *rand.Rand) map[string]float64 { return genText(rng, mrChunk) }},
		{fn: reduce, mem: redMem, tim: redTime,
			outSz: func(_, _ map[string]float64) int64 { return 128 << 10 },
			sample: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"size": 64 << 10, "chunks": float64(1 + rng.Intn(15))}
			}},
	}
	return pl
}

// ---------------------------------------------------------------------------
// THIS — Thousand Island Scanner: distributed video processing.

const (
	thisChunkSecs    = 4.0
	thisFramesPerSeg = 8
)

// NewTHIS builds the video-processing pipeline. The video is stored
// pre-segmented (≈4 s segments); per segment, a decode function
// explodes it into sampled decoded frames (the large intermediates
// that make THIS storage-bound), a process function transforms each
// segment's frames, and a merge stage concatenates everything into the
// final video.
func NewTHIS(su *Suite, tenant string, profile TenantProfile, platformMax int64) *Pipeline {
	frame := func(f map[string]float64) float64 {
		w, h := f["width"], f["height"]
		if w == 0 {
			w, h = 1280, 720
		}
		return w * h * 3
	}
	decMem := func(f, _ map[string]float64) int64 { return 130*MB + int64(frame(f)*8) }
	decTime := func(f, _ map[string]float64) time.Duration {
		d := f["duration"]
		if d == 0 {
			d = thisChunkSecs
		}
		return 50*time.Millisecond + time.Duration(d*float64(150*time.Millisecond))
	}
	prMem := func(f, _ map[string]float64) int64 { return 100*MB + int64(frame(f)*12) }
	prTime := func(f, _ map[string]float64) time.Duration {
		d := f["duration"]
		if d == 0 {
			d = thisChunkSecs
		}
		return 50*time.Millisecond + time.Duration(d*float64(200*time.Millisecond))
	}
	mgMem := func(f, _ map[string]float64) int64 { return 150*MB + int64(f["size"]/2) }
	mgTime := func(f, _ map[string]float64) time.Duration {
		return 100*time.Millisecond + time.Duration(f["duration"]*float64(25*time.Millisecond))
	}

	book := func(m int64) int64 { return BookedMem(profile, m, platformMax) }
	f1080 := map[string]float64{"width": 1920, "height": 1080, "duration": 600, "size": 300e6}
	decode := &faas.Function{Name: "this_decode", Tenant: tenant, InputType: "video", MemoryBooked: book(decMem(f1080, nil))}
	process := &faas.Function{Name: "this_process", Tenant: tenant, InputType: "video", MemoryBooked: book(prMem(f1080, nil))}
	merge := &faas.Function{Name: "this_merge", Tenant: tenant, InputType: "video", MemoryBooked: book(mgMem(f1080, nil))}

	decode.Body = func(ctx *faas.Ctx) error {
		in := ctx.InputKeys()[0]
		blob, err := ctx.Extract(in)
		if err != nil {
			return err
		}
		f := su.FeaturesOf(in, blob.Size)
		if err := ctx.Transform(decTime(f, nil), decMem(f, nil)); err != nil {
			return err
		}
		per := blob.Size / thisFramesPerSeg
		cf := map[string]float64{"width": f["width"], "height": f["height"]}
		for j := 0; j < thisFramesPerSeg; j++ {
			key := fmt.Sprintf("pl/%s/%s/f%d", ctx.PipelineID(), lastSeg(in), j)
			if err := su.loadObj(ctx, key, per, faas.KindIntermediate, cf); err != nil {
				return err
			}
		}
		return nil
	}
	process.Body = func(ctx *faas.Ctx) error {
		var total int64
		var f map[string]float64
		for _, key := range ctx.InputKeys() {
			blob, err := ctx.Extract(key)
			if err != nil {
				return err
			}
			total += blob.Size
			f = su.FeaturesOf(key, blob.Size)
		}
		f = map[string]float64{"width": f["width"], "height": f["height"], "duration": thisChunkSecs}
		if err := ctx.Transform(prTime(f, nil), prMem(f, nil)); err != nil {
			return err
		}
		per := int64(float64(total) * 0.9 / thisFramesPerSeg)
		for j := range ctx.InputKeys() {
			key := fmt.Sprintf("%s.out", ctx.InputKeys()[j])
			if err := su.loadObj(ctx, key, per, faas.KindIntermediate, f); err != nil {
				return err
			}
		}
		return nil
	}
	merge.Body = func(ctx *faas.Ctx) error {
		var total int64
		for _, key := range ctx.InputKeys() {
			blob, err := ctx.Extract(key)
			if err != nil {
				return err
			}
			total += blob.Size
		}
		segs := float64(len(ctx.InputKeys())) / thisFramesPerSeg
		f := map[string]float64{"size": float64(total), "duration": segs * thisChunkSecs}
		if err := ctx.Transform(mgTime(f, nil), mgMem(f, nil)); err != nil {
			return err
		}
		return su.loadObj(ctx, "pl/"+ctx.PipelineID()+"/video", int64(float64(total)*0.95), faas.KindFinal, nil)
	}

	pl := &Pipeline{Name: "THIS", InputType: "video", Funcs: []*faas.Function{decode, process, merge}}
	pl.Parts = func(in InputMeta) []InputMeta {
		chunks := int(math.Ceil(in.Features["duration"] / thisChunkSecs))
		if chunks < 1 {
			chunks = 1
		}
		per := in.Size / int64(chunks)
		parts := make([]InputMeta, chunks)
		for i := range parts {
			parts[i] = InputMeta{
				Key:  fmt.Sprintf("%s/seg/%d", in.Key, i),
				Size: per,
				Features: map[string]float64{
					"size": float64(per), "width": in.Features["width"], "height": in.Features["height"],
					"fps": in.Features["fps"], "duration": thisChunkSecs,
				},
			}
		}
		return parts
	}
	pl.Run = func(p *faas.Platform, in InputMeta, id string) *PipelineResult {
		out := &PipelineResult{}
		parts := pl.Parts(in)
		// Stage 1: decode each segment into frames.
		decReqs := make([]*faas.Request, len(parts))
		for i, part := range parts {
			decReqs[i] = stageReq(decode, id, []string{part.Key}, part.Features, false)
		}
		decRes := p.InvokeParallel(decReqs)
		out.Results = append(out.Results, decRes...)
		for _, r := range decRes {
			if r.Err != nil {
				out.Err = r.Err
				return out
			}
		}
		// Stage 2: process each segment's frames.
		frameSize := func(part InputMeta) float64 { return float64(part.Size) / thisFramesPerSeg }
		prReqs := make([]*faas.Request, len(parts))
		for i, part := range parts {
			keys := make([]string, thisFramesPerSeg)
			for j := range keys {
				keys[j] = fmt.Sprintf("pl/%s/%s/f%d", id, lastSeg(part.Key), j)
			}
			pf := map[string]float64{"size": frameSize(part), "width": in.Features["width"],
				"height": in.Features["height"], "duration": thisChunkSecs}
			prReqs[i] = stageReq(process, id, keys, pf, false)
		}
		prRes := p.InvokeParallel(prReqs)
		out.Results = append(out.Results, prRes...)
		for _, r := range prRes {
			if r.Err != nil {
				out.Err = r.Err
				return out
			}
		}
		// Stage 3: merge all processed frames.
		var outKeys []string
		for _, part := range parts {
			for j := 0; j < thisFramesPerSeg; j++ {
				outKeys = append(outKeys, fmt.Sprintf("pl/%s/%s/f%d.out", id, lastSeg(part.Key), j))
			}
		}
		mf := map[string]float64{"size": float64(in.Size) * 0.9, "width": in.Features["width"],
			"height": in.Features["height"], "duration": in.Features["duration"]}
		r3 := p.Invoke(stageReq(merge, id, outKeys, mf, true))
		out.Results = append(out.Results, r3)
		out.Err = r3.Err
		return out
	}

	pl.stages = []*stageModel{
		{fn: decode, mem: decMem, tim: decTime,
			outSz:  func(f, _ map[string]float64) int64 { return int64(f["size"] * 0.9) },
			outOps: thisFramesPerSeg,
			sample: func(rng *rand.Rand) map[string]float64 {
				f := genVideo(rng, int64(1+rng.Intn(8))*MB)
				f["duration"] = thisChunkSecs
				return f
			}},
		{fn: process, mem: prMem, tim: prTime,
			outSz:  func(f, _ map[string]float64) int64 { return int64(f["size"] * float64(thisFramesPerSeg) * 0.9) },
			inOps:  thisFramesPerSeg,
			outOps: thisFramesPerSeg,
			sample: func(rng *rand.Rand) map[string]float64 {
				f := genVideo(rng, int64(1+rng.Intn(4))*MB/2)
				f["duration"] = thisChunkSecs
				return f
			}},
		{fn: merge, mem: mgMem, tim: mgTime,
			outSz: func(f, _ map[string]float64) int64 { return int64(f["size"] * 0.95) },
			inOps: 240,
			sample: func(rng *rand.Rand) map[string]float64 {
				size := float64(int64(50+rng.Intn(250)) * MB)
				return map[string]float64{"size": size, "duration": size * 8 / 4e6}
			}},
	}
	return pl
}
