package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ofc/internal/faas"
)

// ---------------------------------------------------------------------------
// IMAD — Illegitimate Mobile App Detector (Wapet et al.), reimplemented
// as a sequence of serverless functions (§7, footnote 4): unpack the
// app, analyze icons and strings in parallel, produce a verdict.

// NewIMAD builds the app-vetting pipeline.
func NewIMAD(su *Suite, tenant string, profile TenantProfile, platformMax int64) *Pipeline {
	unpMem := func(f, _ map[string]float64) int64 { return 120*MB + int64(f["size"]*6) }
	unpTime := func(f, _ map[string]float64) time.Duration {
		return 50*time.Millisecond + time.Duration(f["size"]*float64(30*time.Nanosecond))
	}
	icoMem := func(f, _ map[string]float64) int64 { return 380*MB + int64(f["size"]*10) }
	icoTime := func(f, _ map[string]float64) time.Duration {
		return 150*time.Millisecond + time.Duration(f["size"]*float64(100*time.Nanosecond))
	}
	strMem := func(f, _ map[string]float64) int64 { return 200*MB + int64(f["size"]*8) }
	strTime := func(f, _ map[string]float64) time.Duration {
		return 100*time.Millisecond + time.Duration(f["size"]*float64(80*time.Nanosecond))
	}
	verMem := func(f, _ map[string]float64) int64 { return 90 * MB }
	verTime := func(f, _ map[string]float64) time.Duration { return 100 * time.Millisecond }

	book := func(m int64) int64 { return BookedMem(profile, m, platformMax) }
	maxApp := map[string]float64{"size": 16e6}
	unpack := &faas.Function{Name: "imad_unpack", Tenant: tenant, InputType: "none", MemoryBooked: book(unpMem(maxApp, nil))}
	icons := &faas.Function{Name: "imad_icons", Tenant: tenant, InputType: "image", MemoryBooked: book(icoMem(map[string]float64{"size": 16e6 * 0.15}, nil))}
	strs := &faas.Function{Name: "imad_strings", Tenant: tenant, InputType: "text", MemoryBooked: book(strMem(map[string]float64{"size": 16e6 * 0.08}, nil))}
	verdict := &faas.Function{Name: "imad_verdict", Tenant: tenant, InputType: "none", MemoryBooked: book(verMem(nil, nil))}

	unpack.Body = func(ctx *faas.Ctx) error {
		in := ctx.InputKeys()[0]
		blob, err := ctx.Extract(in)
		if err != nil {
			return err
		}
		f := su.FeaturesOf(in, blob.Size)
		if err := ctx.Transform(unpTime(f, nil), unpMem(f, nil)); err != nil {
			return err
		}
		id := ctx.PipelineID()
		per := int64(f["size"] * 0.15 / 6)
		for j := 0; j < 6; j++ {
			if err := su.loadObj(ctx, fmt.Sprintf("pl/%s/icon/%d", id, j), per, faas.KindIntermediate, nil); err != nil {
				return err
			}
		}
		return su.loadObj(ctx, "pl/"+id+"/strings", int64(f["size"]*0.08), faas.KindIntermediate, nil)
	}
	analysisBody := func(mem func(f, _ map[string]float64) int64, tim func(f, _ map[string]float64) time.Duration, outName string, outSize int64) func(*faas.Ctx) error {
		return func(ctx *faas.Ctx) error {
			var total int64
			for _, in := range ctx.InputKeys() {
				blob, err := ctx.Extract(in)
				if err != nil {
					return err
				}
				total += blob.Size
			}
			f := map[string]float64{"size": float64(total)}
			if err := ctx.Transform(tim(f, nil), mem(f, nil)); err != nil {
				return err
			}
			return su.loadObj(ctx, "pl/"+ctx.PipelineID()+"/"+outName, outSize, faas.KindIntermediate, nil)
		}
	}
	icons.Body = analysisBody(icoMem, icoTime, "icons.report", 100<<10)
	strs.Body = analysisBody(strMem, strTime, "strings.report", 50<<10)
	verdict.Body = func(ctx *faas.Ctx) error {
		for _, key := range ctx.InputKeys() {
			if _, err := ctx.Extract(key); err != nil {
				return err
			}
		}
		if err := ctx.Transform(verTime(nil, nil), verMem(nil, nil)); err != nil {
			return err
		}
		return su.loadObj(ctx, "pl/"+ctx.PipelineID()+"/verdict", 20<<10, faas.KindFinal, nil)
	}

	pl := &Pipeline{Name: "IMAD", InputType: "none", Funcs: []*faas.Function{unpack, icons, strs, verdict}}
	pl.Run = func(p *faas.Platform, in InputMeta, id string) *PipelineResult {
		out := &PipelineResult{}
		r1 := p.Invoke(stageReq(unpack, id, []string{in.Key}, in.Features, false))
		out.Results = append(out.Results, r1)
		if r1.Err != nil {
			out.Err = r1.Err
			return out
		}
		size := in.Features["size"]
		iconKeys := make([]string, 6)
		for j := range iconKeys {
			iconKeys[j] = fmt.Sprintf("pl/%s/icon/%d", id, j)
		}
		par := p.InvokeParallel([]*faas.Request{
			stageReq(icons, id, iconKeys, map[string]float64{"size": size * 0.15}, false),
			stageReq(strs, id, []string{"pl/" + id + "/strings"}, map[string]float64{"size": size * 0.08}, false),
		})
		out.Results = append(out.Results, par...)
		for _, r := range par {
			if r.Err != nil {
				out.Err = r.Err
				return out
			}
		}
		r4 := p.Invoke(stageReq(verdict, id,
			[]string{"pl/" + id + "/icons.report", "pl/" + id + "/strings.report"},
			map[string]float64{"size": 150 << 10}, true))
		out.Results = append(out.Results, r4)
		out.Err = r4.Err
		return out
	}
	pl.stages = []*stageModel{
		{fn: unpack, mem: unpMem, tim: unpTime,
			outSz: func(f, _ map[string]float64) int64 { return int64(f["size"] * 0.23) },
			sample: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"size": float64(1+rng.Intn(16)) * 1e6}
			}},
		{fn: icons, mem: icoMem, tim: icoTime,
			outSz: func(_, _ map[string]float64) int64 { return 100 << 10 },
			inOps: 6,
			sample: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"size": float64(1+rng.Intn(16)) * 0.15e6}
			}},
		{fn: strs, mem: strMem, tim: strTime,
			outSz: func(_, _ map[string]float64) int64 { return 50 << 10 },
			sample: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"size": float64(1+rng.Intn(16)) * 0.08e6}
			}},
		{fn: verdict, mem: verMem, tim: verTime,
			outSz:  func(_, _ map[string]float64) int64 { return 20 << 10 },
			sample: func(rng *rand.Rand) map[string]float64 { return map[string]float64{"size": 150 << 10} }},
	}
	return pl
}

// ---------------------------------------------------------------------------
// Image Processing — the ServerlessBench thumbnail-generator pipeline:
// extract metadata → transform → thumbnail → upload, each stage
// re-reading the previous stage's output.

// NewImageProcessing builds the 4-stage thumbnail pipeline.
func NewImageProcessing(su *Suite, tenant string, profile TenantProfile, platformMax int64) *Pipeline {
	frame := func(f map[string]float64) float64 { return pixels(f) * chans(f) * 4 }
	metaMem := func(f, _ map[string]float64) int64 { return 70*MB + int64(frame(f)*1.2) }
	metaTime := func(f, _ map[string]float64) time.Duration {
		return 3*time.Millisecond + time.Duration(pixels(f)*float64(50*time.Nanosecond))
	}
	tfMem := func(f, _ map[string]float64) int64 { return 72*MB + int64(frame(f)*2.5) }
	tfTime := func(f, _ map[string]float64) time.Duration {
		return 5*time.Millisecond + time.Duration(pixels(f)*float64(250*time.Nanosecond))
	}
	thMem := func(f, _ map[string]float64) int64 { return 70*MB + int64(frame(f)*1.8) }
	thTime := func(f, _ map[string]float64) time.Duration {
		return 4*time.Millisecond + time.Duration(pixels(f)*float64(150*time.Nanosecond))
	}
	upMem := func(_, _ map[string]float64) int64 { return 64 * MB }
	upTime := func(_, _ map[string]float64) time.Duration { return 2 * time.Millisecond }

	book := func(m int64) int64 { return BookedMem(profile, m, platformMax) }
	big := genImage(rand.New(rand.NewSource(1)), 1<<20)
	meta := &faas.Function{Name: "ip_meta", Tenant: tenant, InputType: "image", MemoryBooked: book(metaMem(big, nil))}
	transform := &faas.Function{Name: "ip_transform", Tenant: tenant, InputType: "image", MemoryBooked: book(tfMem(big, nil))}
	thumb := &faas.Function{Name: "ip_thumbnail", Tenant: tenant, InputType: "image", MemoryBooked: book(thMem(big, nil))}
	upload := &faas.Function{Name: "ip_upload", Tenant: tenant, InputType: "image", MemoryBooked: book(upMem(nil, nil))}

	simpleStage := func(mem func(f, _ map[string]float64) int64, tim func(f, _ map[string]float64) time.Duration, outSuffix string, outFactor float64, kind faas.ObjKind) func(*faas.Ctx) error {
		return func(ctx *faas.Ctx) error {
			in := ctx.InputKeys()[0]
			blob, err := ctx.Extract(in)
			if err != nil {
				return err
			}
			f := su.FeaturesOf(in, blob.Size)
			if err := ctx.Transform(tim(f, nil), mem(f, nil)); err != nil {
				return err
			}
			out := map[string]float64{"width": f["width"], "height": f["height"], "channels": f["channels"]}
			if outSuffix == ".thumb" {
				out["width"], out["height"] = 128, 96
			}
			return su.loadObj(ctx, "pl/"+ctx.PipelineID()+outSuffix, int64(float64(blob.Size)*outFactor), kind, out)
		}
	}
	meta.Body = simpleStage(metaMem, metaTime, ".meta", 0.001, faas.KindIntermediate)
	transform.Body = simpleStage(tfMem, tfTime, ".transformed", 0.9, faas.KindIntermediate)
	thumb.Body = simpleStage(thMem, thTime, ".thumb", 0.08, faas.KindIntermediate)
	upload.Body = func(ctx *faas.Ctx) error {
		in := ctx.InputKeys()[0]
		blob, err := ctx.Extract(in)
		if err != nil {
			return err
		}
		if err := ctx.Transform(upTime(nil, nil), upMem(nil, nil)); err != nil {
			return err
		}
		return su.loadObj(ctx, "pl/"+ctx.PipelineID()+"/thumbnail", blob.Size, faas.KindFinal, nil)
	}

	pl := &Pipeline{Name: "ImageProcessing", InputType: "image", Funcs: []*faas.Function{meta, transform, thumb, upload}}
	pl.Run = func(p *faas.Platform, in InputMeta, id string) *PipelineResult {
		out := &PipelineResult{}
		imgF := in.Features
		smaller := map[string]float64{"size": float64(in.Size) * 0.9, "width": imgF["width"], "height": imgF["height"], "channels": imgF["channels"]}
		thumbF := map[string]float64{"size": float64(in.Size) * 0.9 * 0.08, "width": 128, "height": 96, "channels": imgF["channels"]}
		seq := p.InvokeSequence([]*faas.Request{
			stageReq(meta, id, []string{in.Key}, imgF, false),
			stageReq(transform, id, []string{in.Key}, imgF, false),
			stageReq(thumb, id, []string{"pl/" + id + ".transformed"}, smaller, false),
			stageReq(upload, id, []string{"pl/" + id + ".thumb"}, thumbF, true),
		})
		out.Results = seq
		for _, r := range seq {
			if r.Err != nil {
				out.Err = r.Err
				break
			}
		}
		return out
	}
	sampleImg := func(rng *rand.Rand) map[string]float64 {
		return genImage(rng, int64(16+rng.Intn(1024))<<10)
	}
	pl.stages = []*stageModel{
		{fn: meta, mem: metaMem, tim: metaTime, outSz: func(f, _ map[string]float64) int64 { return int64(f["size"] * 0.001) }, sample: sampleImg},
		{fn: transform, mem: tfMem, tim: tfTime, outSz: func(f, _ map[string]float64) int64 { return int64(f["size"] * 0.9) }, sample: sampleImg},
		{fn: thumb, mem: thMem, tim: thTime, outSz: func(f, _ map[string]float64) int64 { return int64(f["size"] * 0.08) }, sample: sampleImg},
		{fn: upload, mem: upMem, tim: upTime, outSz: func(f, _ map[string]float64) int64 { return int64(f["size"] * 0.08) }, sample: sampleImg},
	}
	return pl
}
