package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"
)

// MB is a byte-size helper.
const MB = int64(1 << 20)

// Spec is a synthetic single-stage function model: memory, compute
// time and output size as functions of the input's descriptive
// features and the function-specific arguments.
type Spec struct {
	Name      string
	InputType string
	ArgNames  []string
	// Booked is the default tenant-configured sandbox memory.
	Booked int64
	// GenArgs draws function-specific arguments (discrete sets, the
	// way users pass round numbers).
	GenArgs func(rng *rand.Rand) map[string]float64
	// Mem is the peak-memory law (bytes).
	Mem func(f, args map[string]float64) int64
	// Time is the transform-duration law.
	Time func(f, args map[string]float64) time.Duration
	// OutSize is the output-size law (bytes).
	OutSize func(f, args map[string]float64) int64
}

// noise returns a deterministic pseudo-random factor in [1-amp, 1+amp]
// keyed by the inputs, so memory varies run-to-run-reproducibly.
func noise(key string, amp float64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := float64(h.Sum64()%1000) / 1000 // [0,1)
	return 1 + amp*(2*v-1)
}

// pixels estimates the decoded pixel count of an image input.
func pixels(f map[string]float64) float64 {
	w, h := f["width"], f["height"]
	if w > 0 && h > 0 {
		return w * h
	}
	return f["size"] / 0.8
}

func chans(f map[string]float64) float64 {
	if c := f["channels"]; c > 0 {
		return c
	}
	return 3
}

// imageSpec builds a wand-style image function: the decoded frame
// costs pixels×channels×4 bytes, the operation holds workCopies
// working copies plus an argument-driven overhead, and the transform
// costs opCost per pixel.
func imageSpec(name, arg string, argVals []float64, workCopies, argFactor float64, opCost time.Duration, outFactor float64) *Spec {
	return &Spec{
		Name:      name,
		InputType: "image",
		ArgNames:  []string{arg},
		Booked:    512 * MB,
		GenArgs: func(rng *rand.Rand) map[string]float64 {
			return map[string]float64{arg: argVals[rng.Intn(len(argVals))]}
		},
		Mem: func(f, args map[string]float64) int64 {
			frame := pixels(f) * chans(f) * 4
			copies := workCopies + argFactor*args[arg]
			base := 72 * float64(MB)
			return int64(base + frame*copies)
		},
		Time: func(f, args map[string]float64) time.Duration {
			per := float64(opCost) * (1 + argFactor*args[arg]/2)
			return 2*time.Millisecond + time.Duration(pixels(f)*per)
		},
		OutSize: func(f, args map[string]float64) int64 {
			return int64(f["size"] * outFactor)
		},
	}
}

// Specs returns the 19 single-stage multimedia functions of §7
// ("19 multimedia processing functions, available online").
func Specs() []*Spec {
	specs := []*Spec{
		imageSpec("wand_blur", "sigma", []float64{0.5, 1, 1.5, 2, 3, 4, 5, 6}, 2, 0.5, 400*time.Nanosecond, 0.95),
		imageSpec("wand_resize", "scale", []float64{0.25, 0.5, 0.75, 1.5, 2}, 2, 1.2, 300*time.Nanosecond, 0.6),
		imageSpec("wand_sepia", "threshold", []float64{0.6, 0.7, 0.8, 0.9}, 2, 0.8, 500*time.Nanosecond, 1.0),
		imageSpec("wand_rotate", "angle", []float64{45, 90, 135, 180, 270}, 2.5, 0.004, 300*time.Nanosecond, 1.05),
		imageSpec("wand_denoise", "strength", []float64{1, 2, 3, 4}, 3, 0.8, 550*time.Nanosecond, 0.9),
		imageSpec("wand_edge", "radius", []float64{1, 2, 3, 5}, 2, 0.6, 400*time.Nanosecond, 0.7),
		imageSpec("wand_sharpen", "amount", []float64{0.5, 1, 1.5, 2}, 2, 0.7, 400*time.Nanosecond, 1.0),
		imageSpec("wand_grayscale", "depth", []float64{8, 16}, 1.5, 0.02, 350*time.Nanosecond, 0.4),
		imageSpec("wand_crop", "ratio", []float64{0.25, 0.5, 0.75}, 1.5, 1, 300*time.Nanosecond, 0.5),
		imageSpec("wand_watermark", "opacity", []float64{0.2, 0.4, 0.6, 0.8}, 2.2, 0.5, 350*time.Nanosecond, 1.02),
		imageSpec("sharp_resize", "width", []float64{128, 256, 512, 1024}, 2, 0.0008, 30*time.Nanosecond, 0.35),
		{
			Name: "audio_compress", InputType: "audio", ArgNames: []string{"quality"}, Booked: 768 * MB,
			GenArgs: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"quality": []float64{2, 4, 6, 8}[rng.Intn(4)]}
			},
			Mem: func(f, args map[string]float64) int64 {
				// PCM working set: duration × 176 kB/s stereo, scaled
				// by codec quality lookahead.
				pcm := f["duration"] * 176e3 * (f["channels"] / 2)
				return int64(60*float64(MB) + pcm*(1+args["quality"]/8))
			},
			Time: func(f, args map[string]float64) time.Duration {
				return 5*time.Millisecond + time.Duration(f["duration"]*float64(30*time.Millisecond)*(1+args["quality"]/4))
			},
			OutSize: func(f, args map[string]float64) int64 {
				return int64(f["size"] * (0.2 + args["quality"]/20))
			},
		},
		{
			Name: "speech_recognition", InputType: "audio", ArgNames: []string{"beam"}, Booked: 1024 * MB,
			GenArgs: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"beam": []float64{4, 8, 16}[rng.Intn(3)]}
			},
			Mem: func(f, args map[string]float64) int64 {
				model := 180 * float64(MB) // acoustic model resident set
				lattice := f["duration"] * 0.5e6 * (args["beam"] / 8)
				return int64(model + lattice)
			},
			Time: func(f, args map[string]float64) time.Duration {
				return 20*time.Millisecond + time.Duration(f["duration"]*float64(120*time.Millisecond)*(args["beam"]/8))
			},
			OutSize: func(f, args map[string]float64) int64 { return int64(f["duration"] * 24) },
		},
		{
			Name: "audio_normalize", InputType: "audio", ArgNames: []string{"gain"}, Booked: 512 * MB,
			GenArgs: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"gain": []float64{-6, -3, 0, 3, 6}[rng.Intn(5)]}
			},
			Mem: func(f, args map[string]float64) int64 {
				return int64(48*float64(MB) + f["duration"]*176e3*(f["channels"]/2))
			},
			Time: func(f, args map[string]float64) time.Duration {
				return 3*time.Millisecond + time.Duration(f["duration"]*float64(8*time.Millisecond))
			},
			OutSize: func(f, args map[string]float64) int64 { return int64(f["size"]) },
		},
		{
			Name: "video_grayscale", InputType: "video", ArgNames: []string{"depth"}, Booked: 1536 * MB,
			GenArgs: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"depth": []float64{8, 10}[rng.Intn(2)]}
			},
			Mem: func(f, args map[string]float64) int64 {
				// A GOP of ~16 decoded frames resident.
				frame := f["width"] * f["height"] * 3
				return int64(110*float64(MB) + frame*16)
			},
			Time: func(f, args map[string]float64) time.Duration {
				return 10*time.Millisecond + time.Duration(f["duration"]*float64(60*time.Millisecond))
			},
			OutSize: func(f, args map[string]float64) int64 { return int64(f["size"] * 0.8) },
		},
		{
			Name: "video_transcode", InputType: "video", ArgNames: []string{"crf"}, Booked: 2048 * MB,
			GenArgs: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"crf": []float64{18, 23, 28, 32}[rng.Intn(4)]}
			},
			Mem: func(f, args map[string]float64) int64 {
				frame := f["width"] * f["height"] * 3
				lookahead := 24 + (32-args["crf"])*2
				return int64(130*float64(MB) + frame*lookahead)
			},
			Time: func(f, args map[string]float64) time.Duration {
				return 20*time.Millisecond + time.Duration(f["duration"]*float64(200*time.Millisecond)*(40-args["crf"])/17)
			},
			OutSize: func(f, args map[string]float64) int64 {
				return int64(f["size"] * (args["crf"] / 40))
			},
		},
		{
			Name: "video_thumbnail", InputType: "video", ArgNames: []string{"count"}, Booked: 1024 * MB,
			GenArgs: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"count": []float64{1, 4, 9, 16}[rng.Intn(4)]}
			},
			Mem: func(f, args map[string]float64) int64 {
				frame := f["width"] * f["height"] * 3
				return int64(90*float64(MB) + frame*(2+args["count"]))
			},
			Time: func(f, args map[string]float64) time.Duration {
				return 15*time.Millisecond + time.Duration(args["count"]*float64(90*time.Millisecond))
			},
			OutSize: func(f, args map[string]float64) int64 { return int64(args["count"] * 40e3) },
		},
		{
			Name: "text_summary", InputType: "text", ArgNames: []string{"ratio"}, Booked: 512 * MB,
			GenArgs: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"ratio": []float64{0.1, 0.2, 0.3}[rng.Intn(3)]}
			},
			Mem: func(f, args map[string]float64) int64 {
				// Sentence graph: ~6× the text size.
				return int64(55*float64(MB) + f["size"]*6)
			},
			Time: func(f, args map[string]float64) time.Duration {
				return 5*time.Millisecond + time.Duration(f["size"]*float64(300*time.Nanosecond))
			},
			OutSize: func(f, args map[string]float64) int64 { return int64(f["size"] * args["ratio"]) },
		},
		{
			Name: "word_frequency", InputType: "text", ArgNames: []string{"top"}, Booked: 256 * MB,
			GenArgs: func(rng *rand.Rand) map[string]float64 {
				return map[string]float64{"top": []float64{10, 100, 1000}[rng.Intn(3)]}
			},
			Mem: func(f, args map[string]float64) int64 {
				return int64(40*float64(MB) + f["size"]*2.5)
			},
			Time: func(f, args map[string]float64) time.Duration {
				return 2*time.Millisecond + time.Duration(f["size"]*float64(60*time.Nanosecond))
			},
			OutSize: func(f, args map[string]float64) int64 {
				return int64(200 + args["top"]*24)
			},
		},
	}
	if len(specs) != 19 {
		panic("workload: expected 19 single-stage specs")
	}
	return specs
}

// SpecByName finds a spec.
func SpecByName(name string) *Spec {
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// PeakMem evaluates the memory law with the reproducible ±3% per-input
// noise component (content effects the features don't capture).
func (s *Spec) PeakMem(key string, f, args map[string]float64) int64 {
	return int64(float64(s.Mem(f, args)) * noise(key+s.Name+fmtArgs(args), 0.03))
}

// PeakMemRun adds the run-to-run jitter real processes exhibit
// (allocator behaviour, fragmentation): ±2.5% keyed by the invocation
// tag. This irreducible component is what keeps decision-tree accuracy
// at the paper's ~83-92% rather than 100%.
func (s *Spec) PeakMemRun(key string, f, args map[string]float64, runTag int64) int64 {
	base := float64(s.PeakMem(key, f, args))
	return int64(base * noise(fmt.Sprintf("%s#%d", key, runTag), 0.025))
}

func fmtArgs(args map[string]float64) string {
	out := make([]byte, 0, 32)
	for _, n := range sortedKeys(args) {
		out = append(out, n...)
		out = append(out, byte('0'+int(math.Mod(math.Abs(args[n]*10), 10))))
	}
	return string(out)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
