package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/kvstore"
	"ofc/internal/mltree"
	"ofc/internal/objstore"
	"ofc/internal/sim"
)

func TestSpecsCountAndShape(t *testing.T) {
	specs := Specs()
	if len(specs) != 19 {
		t.Fatalf("specs=%d, want 19", len(specs))
	}
	types := map[string]int{}
	rng := rand.New(rand.NewSource(1))
	for _, s := range specs {
		types[s.InputType]++
		if s.Booked <= 0 {
			t.Errorf("%s: no booked memory", s.Name)
		}
		f := GenFeatures(rng, s.InputType, 64<<10)
		args := s.GenArgs(rng)
		mem := s.Mem(f, args)
		if mem <= 0 || mem > 2<<30 {
			t.Errorf("%s: mem=%d out of range", s.Name, mem)
		}
		if s.Time(f, args) <= 0 {
			t.Errorf("%s: non-positive time", s.Name)
		}
		if s.OutSize(f, args) < 0 {
			t.Errorf("%s: negative output", s.Name)
		}
	}
	if types["image"] < 10 || types["audio"] < 3 || types["video"] < 3 || types["text"] < 2 {
		t.Errorf("type mix=%v", types)
	}
}

func TestMemoryLawsAreInputDependent(t *testing.T) {
	// Figure 2's point: same function, wildly different memory across
	// inputs and arguments.
	rng := rand.New(rand.NewSource(2))
	spec := SpecByName("wand_blur")
	small := GenFeatures(rng, "image", 16<<10)
	large := GenFeatures(rng, "image", 6<<20)
	lo := map[string]float64{"sigma": 0.5}
	hi := map[string]float64{"sigma": 6}
	if spec.Mem(large, lo) < 2*spec.Mem(small, lo) {
		t.Error("memory not input-size sensitive")
	}
	if float64(spec.Mem(large, hi)) < 1.2*float64(spec.Mem(large, lo)) {
		t.Error("memory not argument sensitive")
	}
}

func TestNoiseIsDeterministicAndBounded(t *testing.T) {
	spec := SpecByName("wand_edge")
	f := GenFeatures(rand.New(rand.NewSource(3)), "image", 64<<10)
	args := map[string]float64{"radius": 2}
	m1 := spec.PeakMem("k1", f, args)
	m2 := spec.PeakMem("k1", f, args)
	if m1 != m2 {
		t.Error("noise not deterministic per key")
	}
	base := spec.Mem(f, args)
	if m1 < int64(float64(base)*0.96) || m1 > int64(float64(base)*1.04) {
		t.Errorf("noise out of ±3%%: base=%d got=%d", base, m1)
	}
}

func TestInputPoolGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := NewInputPool(rng, "image", "img", []int64{1 << 10, 64 << 10, 128 << 10}, 5)
	if len(pool.Inputs) != 15 {
		t.Fatalf("pool=%d", len(pool.Inputs))
	}
	seen := map[string]bool{}
	for _, in := range pool.Inputs {
		if seen[in.Key] {
			t.Errorf("duplicate key %s", in.Key)
		}
		seen[in.Key] = true
		if in.Features["width"] <= 0 || in.Features["height"] <= 0 {
			t.Errorf("bad features %v", in.Features)
		}
		if in.Features["size"] != float64(in.Size) {
			t.Errorf("size mismatch")
		}
	}
	got := pool.PickSized(64 << 10)
	if got.Size < 40<<10 || got.Size > 90<<10 {
		t.Errorf("PickSized(64k)=%d", got.Size)
	}
}

func TestFeatureGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := GenFeatures(rng, "audio", 1<<20)
	if a["duration"] <= 0 || a["bitrate"] <= 0 {
		t.Errorf("audio=%v", a)
	}
	v := GenFeatures(rng, "video", 50<<20)
	if v["duration"] <= 0 || v["fps"] <= 0 || v["width"] <= 0 {
		t.Errorf("video=%v", v)
	}
	// 50 MB at the implied bitrate should be minutes, not hours.
	if v["duration"] > 3600 {
		t.Errorf("video duration %v s implausible", v["duration"])
	}
	x := GenFeatures(rng, "text", 1<<20)
	if x["lines"] <= 0 {
		t.Errorf("text=%v", x)
	}
}

func TestBookedMemProfiles(t *testing.T) {
	maxUsed := int64(300 << 20)
	platformMax := int64(2 << 30)
	if b := BookedMem(ProfileNaive, maxUsed, platformMax); b != platformMax {
		t.Errorf("naive=%d", b)
	}
	if b := BookedMem(ProfileAdvanced, maxUsed, platformMax); b != maxUsed {
		t.Errorf("advanced=%d", b)
	}
	if b := BookedMem(ProfileNormal, maxUsed, platformMax); b != int64(float64(maxUsed)*1.7) {
		t.Errorf("normal=%d", b)
	}
}

func TestTrainingSamplesLearnable(t *testing.T) {
	// The offline samples must make a J48 model pass the maturation
	// criteria for every one of the 19 functions — that is what the
	// paper's Table 1 accuracies rest on.
	rng := rand.New(rand.NewSource(6))
	su := NewSuite()
	iv := core.DefaultIntervals()
	for _, spec := range Specs() {
		sizes := sizesFor(spec.InputType)
		pool := NewInputPool(rng, spec.InputType, "tr/"+spec.Name, sizes, 4)
		fn := su.Build(spec, "t", 0)
		samples := TrainingSamples(spec, fn, pool, 400, rng, objstore.SwiftProfile())
		schema := core.NewFeatureSchema(fn)
		d := mltree.NewDataset(schema.Attributes(), iv.ClassNames())
		for _, s := range samples {
			d.Add(s.Vals, iv.ClassOf(s.PeakMem))
		}
		conf := mltree.CrossValidate(mltree.NewJ48(), d, 5, 1)
		if eo := conf.EOAccuracy(); eo < 0.85 {
			t.Errorf("%s: EO=%.3f below maturation ballpark", spec.Name, eo)
		}
	}
}

func sizesFor(inputType string) []int64 {
	switch inputType {
	case "image":
		return []int64{1 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	case "audio":
		return []int64{256 << 10, 1 << 20, 4 << 20}
	case "video":
		return []int64{2 << 20, 5 << 20, 8 << 20}
	default:
		return []int64{1 << 20, 5 << 20, 10 << 20}
	}
}

// PropertyMemLawsPositiveAndBounded: all specs produce sane memory for
// any pool input.
func TestPropertyMemLaws(t *testing.T) {
	specs := Specs()
	f := func(seed int64, sizeK uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int64(sizeK%2048+1) << 10
		for _, s := range specs {
			feat := GenFeatures(rng, s.InputType, size)
			args := s.GenArgs(rng)
			m := s.PeakMem("k", feat, args)
			if m < 32<<20 || m > 4<<30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Full-stack test: OFC system running all four pipelines once.
func TestPipelinesRunOnOFC(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 4
	opts.NodeCapacity = 8 << 30
	sys := core.NewSystem(opts)
	su := NewSuite()
	rng := rand.New(rand.NewSource(7))

	pls := []*Pipeline{
		NewMapReduce(su, "t1", ProfileNormal, 2<<30),
		NewTHIS(su, "t2", ProfileNormal, 2<<30),
		NewIMAD(su, "t3", ProfileNormal, 2<<30),
		NewImageProcessing(su, "t4", ProfileNormal, 2<<30),
	}
	pools := map[string]*InputPool{
		"map_reduce":      NewInputPool(rng, "text", "mr", []int64{5 << 20}, 2),
		"THIS":            NewInputPool(rng, "video", "vid", []int64{20 << 20}, 2),
		"IMAD":            NewInputPool(rng, "none", "app", []int64{4 << 20}, 2),
		"ImageProcessing": NewInputPool(rng, "image", "img", []int64{64 << 10}, 2),
	}
	for _, pl := range pls {
		for _, fn := range pl.Funcs {
			sys.Register(fn)
		}
		pl.Pretrain(sys.Trainer, sys.RSDS.Profile(), 200, rng)
	}
	results := map[string]*PipelineResult{}
	sys.Run(func() {
		w := RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode}
		for _, pl := range pls {
			for _, in := range pools[pl.Name].Inputs {
				pl.StageInput(w, in)
			}
		}
		for _, pl := range pls {
			in := pools[pl.Name].Pick()
			results[pl.Name] = pl.Run(sys.Platform, in, "test-"+pl.Name)
		}
	})
	for name, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v", name, res.Err)
		}
		if len(res.Results) < 3 {
			t.Errorf("%s: only %d stage results", name, len(res.Results))
		}
		if res.Duration() <= 0 {
			t.Errorf("%s: zero duration", name)
		}
	}
	// Intermediates must be gone from the cache after all pipelines
	// completed (plus settle time).
	for _, key := range []string{"pl/test-map_reduce/part/0.counts", "pl/test-THIS/seg/0.out"} {
		if _, found := sys.KV.MasterOf(key); found {
			t.Errorf("%s still cached after pipeline end", key)
		}
	}
}

func TestFaaSLoadInjector(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 3
	opts.NodeCapacity = 8 << 30
	sys := core.NewSystem(opts)
	su := NewSuite()
	rng := rand.New(rand.NewSource(8))

	spec := SpecByName("wand_sepia")
	fn := su.Build(spec, "tenant0", 0)
	sys.Register(fn)
	pool := NewInputPool(rng, "image", "sep", []int64{16 << 10, 64 << 10}, 4)
	fl := NewFaaSLoad(sys.Env, sys.Platform, 9)
	fl.AddFunctionTenant("tenant0", spec, fn, pool, 30*time.Second, false)

	sys.Env.SetHorizon(12 * time.Minute)
	sys.Start()
	sys.Env.Go(func() {
		pool.Stage(RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode})
		fl.Start(10 * time.Minute)
	})
	sys.Env.Run()

	reps := fl.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports=%d", len(reps))
	}
	r := reps[0]
	// Exponential with 30s mean over 10 min ≈ 20 invocations.
	if r.Invocations < 8 || r.Invocations > 40 {
		t.Errorf("invocations=%d, want ≈20", r.Invocations)
	}
	if r.Failures != 0 {
		t.Errorf("failures=%d", r.Failures)
	}
	if r.TotalExec <= 0 || r.TotalT <= 0 {
		t.Errorf("report=%+v", r)
	}
}

func TestSuiteBuildBodyRoundTrip(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 2
	sys := core.NewSystem(opts)
	su := NewSuite()
	rng := rand.New(rand.NewSource(10))
	spec := SpecByName("wand_rotate")
	fn := su.Build(spec, "t", 0)
	sys.Register(fn)
	pool := NewInputPool(rng, "image", "rot", []int64{32 << 10}, 2)
	var res *faas.Result
	sys.Run(func() {
		pool.Stage(RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode})
		in := pool.Pick()
		res = sys.Platform.Invoke(NewRequest(fn, spec, in, map[string]float64{"angle": 90}))
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := spec.PeakMem(pool.Inputs[0].Key, pool.Inputs[0].Features, map[string]float64{"angle": 90})
	_ = want // peak depends on which input Pick chose; just sanity-check range
	if res.PeakMem < 32<<20 {
		t.Errorf("peak=%d", res.PeakMem)
	}
	if res.BytesOut <= 0 {
		t.Error("no output written")
	}
}

func TestMaxMemCoversPool(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := SpecByName("wand_blur")
	pool := NewInputPool(rng, "image", "mm", []int64{16 << 10, 128 << 10}, 3)
	max := spec.MaxMem(pool, rng)
	for _, in := range pool.Inputs {
		for i := 0; i < 4; i++ {
			args := spec.GenArgs(rng)
			if m := spec.PeakMem(in.Key, in.Features, args); m > max+max/10 {
				t.Errorf("MaxMem %d exceeded by %d", max, m)
			}
		}
	}
}

func TestKVBlobAlias(t *testing.T) {
	b := kvstore.Bytes([]byte("x"))
	if b.Size != 1 {
		t.Error("alias broken")
	}
}

func TestLoadTraceCSV(t *testing.T) {
	in := "# a trace\n0.5\n\n2.0\n1.25\n"
	offsets, err := LoadTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{500 * time.Millisecond, 2 * time.Second, 1250 * time.Millisecond}
	if len(offsets) != 3 {
		t.Fatalf("offsets=%v", offsets)
	}
	for i := range want {
		if offsets[i] != want[i] {
			t.Errorf("offsets=%v", offsets)
		}
	}
	if _, err := LoadTraceCSV(strings.NewReader("abc\n")); err == nil {
		t.Error("no error for garbage")
	}
	if _, err := LoadTraceCSV(strings.NewReader("-1\n")); err == nil {
		t.Error("no error for negative offset")
	}
}

func TestTraceTenantFiresAtOffsets(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 2
	sys := core.NewSystem(opts)
	su := NewSuite()
	rng := rand.New(rand.NewSource(30))
	spec := SpecByName("wand_crop")
	fn := su.Build(spec, "trace", 0)
	sys.Register(fn)
	pool := NewInputPool(rng, "image", "tr", []int64{16 << 10}, 2)
	fl := NewFaaSLoad(sys.Env, sys.Platform, 31)
	fl.AddTraceTenant("trace", spec, fn, pool,
		[]time.Duration{10 * time.Second, 30 * time.Second, 70 * time.Second, 3 * time.Hour /*beyond window*/})
	sys.Env.SetHorizon(3 * time.Minute)
	sys.Start()
	sys.Env.Go(func() {
		pool.Stage(RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode})
		fl.Start(2 * time.Minute)
	})
	sys.Env.Run()
	rep := fl.Reports()[0]
	if rep.Invocations != 3 {
		t.Errorf("invocations=%d, want 3 (the 3h offset exceeds the window)", rep.Invocations)
	}
	if rep.Failures != 0 {
		t.Errorf("failures=%d", rep.Failures)
	}
}

// Table-driven law sanity for every one of the 19 functions: memory
// and time grow (weakly) with input size; outputs are bounded; args
// come from the declared names.
func TestEverySpecLawSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			small := GenFeatures(rng, spec.InputType, 8<<10)
			// Scale the size-derived features while holding content
			// features (resolution, bitrate, channels) fixed —
			// memory may legitimately be independent of byte size
			// (Figure 2's point), but must not shrink as the same
			// content grows.
			big := map[string]float64{}
			for k, v := range small {
				big[k] = v
			}
			big["size"] = small["size"] * 256
			if d, ok := small["duration"]; ok {
				big["duration"] = d * 256
			}
			if l, ok := small["lines"]; ok {
				big["lines"] = l * 256
			}
			args := spec.GenArgs(rng)
			for name := range args {
				found := false
				for _, declared := range spec.ArgNames {
					if declared == name {
						found = true
					}
				}
				if !found {
					t.Errorf("GenArgs produced undeclared arg %q", name)
				}
			}
			if spec.Mem(big, args) < spec.Mem(small, args) {
				t.Errorf("memory not monotone in input size")
			}
			if spec.Time(big, args) < spec.Time(small, args) {
				t.Errorf("time not monotone in input size")
			}
			if out := spec.OutSize(big, args); out < 0 || out > 20*int64(big["size"]) {
				t.Errorf("output size %d implausible for input %v", out, big["size"])
			}
			// Booked memory covers the law over the plausible grid.
			sizes := sizesFor(spec.InputType)
			pool := NewInputPool(rng, spec.InputType, "sanity/"+spec.Name, sizes, 3)
			if max := spec.MaxMem(pool, rng); max > 2*spec.Booked {
				t.Errorf("max memory %dMB far above default booking %dMB", max>>20, spec.Booked>>20)
			}
		})
	}
}

// Every spec must be learnable enough to mature online within 600
// law-generated invocations — the §5.3 premise that makes OFC usable.
func TestEverySpecMaturesOnline(t *testing.T) {
	for si, spec := range Specs() {
		spec := spec
		si := si
		t.Run(spec.Name, func(t *testing.T) {
			env := sim.NewEnv(int64(si))
			pred := core.NewPredictor(core.DefaultPredictorConfig())
			trainer := core.NewModelTrainer(pred, env)
			rng := rand.New(rand.NewSource(int64(si) + 100))
			su := NewSuite()
			fn := su.Build(spec, "mat", 0)
			pool := NewInputPool(rng, spec.InputType, "mat/"+spec.Name, sizesFor(spec.InputType), 4)
			samples := TrainingSamples(spec, fn, pool, 700, rng, objstore.SwiftProfile())
			for i, s := range samples {
				trainer.Observe(fn, &faas.Request{Function: fn}, s)
				if pred.Mature(fn) {
					t.Logf("matured at %d", i+1)
					return
				}
			}
			t.Errorf("%s did not mature in 700 invocations", spec.Name)
		})
	}
}

func TestReportPercentiles(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Workers = 2
	sys := core.NewSystem(opts)
	su := NewSuite()
	rng := rand.New(rand.NewSource(50))
	spec := SpecByName("wand_grayscale")
	fn := su.Build(spec, "p", 0)
	sys.Register(fn)
	pool := NewInputPool(rng, "image", "pct", []int64{16 << 10}, 2)
	fl := NewFaaSLoad(sys.Env, sys.Platform, 51)
	fl.AddFunctionTenant("p", spec, fn, pool, 10*time.Second, true)
	sys.Env.SetHorizon(3 * time.Minute)
	sys.Start()
	sys.Env.Go(func() {
		pool.Stage(RSDSWriter{Suite: su, Store: sys.RSDS, Node: sys.CtrlNode})
		fl.Start(2 * time.Minute)
	})
	sys.Env.Run()
	rep := fl.Reports()[0]
	if rep.Invocations < 5 {
		t.Fatalf("invocations=%d", rep.Invocations)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.P99 > rep.TotalExec {
		t.Errorf("p99=%v above total=%v", rep.P99, rep.TotalExec)
	}
}

func TestGenBurstyTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	offsets := GenBurstyTrace(rng, 10*time.Minute, 20*time.Second, 2*time.Minute, 5)
	if len(offsets) < 20 {
		t.Fatalf("offsets=%d, too sparse", len(offsets))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			t.Fatal("offsets not sorted")
		}
		if offsets[i] >= 10*time.Minute {
			t.Fatal("offset past window")
		}
	}
	// Burstiness: some gaps must be much tighter than the mean.
	tight := 0
	for i := 1; i < len(offsets); i++ {
		if offsets[i]-offsets[i-1] <= 300*time.Millisecond {
			tight++
		}
	}
	if tight < 5 {
		t.Errorf("only %d tight gaps; bursts missing", tight)
	}
}
