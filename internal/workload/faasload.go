package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ofc/internal/faas"
	"ofc/internal/metrics"
	"ofc/internal/sim"
)

// FaaSLoad is the load injector of the paper's macro experiments
// (§7.2.2, Appendix A): it emulates several tenants, each owning one
// function (or pipeline), prepares their input data, and fires
// invocations at periodic or exponentially distributed intervals over
// an observation window.
type FaaSLoad struct {
	env      *sim.Env
	platform *faas.Platform
	rng      *rand.Rand

	mu      sync.Mutex
	tenants []*tenantState
}

// TenantReport aggregates one tenant's results.
type TenantReport struct {
	Name        string
	Invocations int
	Failures    int
	ColdStarts  int
	Retried     int
	Rescued     int
	// TotalExec is the sum of invocation (or pipeline) durations —
	// the quantity Figure 9 plots.
	TotalExec              time.Duration
	TotalE, TotalT, TotalL time.Duration
	BytesIn, BytesOut      int64
	// P50 and P99 are per-invocation latency percentiles.
	P50, P99 time.Duration
}

type tenantState struct {
	report TenantReport
	lat    metrics.Histogram
	mu     sync.Mutex
	run    func(id string) (time.Duration, *statsDelta)
	mean   time.Duration
	period bool
	// schedule, when non-empty, replays explicit offsets instead of a
	// stochastic arrival process.
	schedule []time.Duration
}

type statsDelta struct {
	fail, cold, retried, rescued int
	e, t, l                      time.Duration
	bytesIn, bytesOut            int64
}

// NewFaaSLoad builds an injector over a platform.
func NewFaaSLoad(env *sim.Env, platform *faas.Platform, seed int64) *FaaSLoad {
	return &FaaSLoad{env: env, platform: platform, rng: rand.New(rand.NewSource(seed))}
}

// AddFunctionTenant registers a tenant invoking a single-stage
// function with inputs from pool. Each tenant derives a private
// argument-generator stream once, at registration: per-invocation
// draws never touch the injector's (locked) root generator.
func (fl *FaaSLoad) AddFunctionTenant(name string, spec *Spec, fn *faas.Function, pool *InputPool, mean time.Duration, periodic bool) {
	rng := rand.New(rand.NewSource(fl.rng.Int63()))
	st := &tenantState{report: TenantReport{Name: name}, mean: mean, period: periodic}
	st.run = func(id string) (time.Duration, *statsDelta) {
		in := pool.Pick()
		args := spec.GenArgs(rng)
		res := fl.platform.Invoke(NewRequest(fn, spec, in, args))
		d := &statsDelta{e: res.Extract, t: res.Transform, l: res.Load,
			bytesIn: res.BytesIn, bytesOut: res.BytesOut}
		if res.Err != nil {
			d.fail = 1
		}
		if res.ColdStart {
			d.cold = 1
		}
		if res.Retried {
			d.retried = 1
		}
		if res.Rescued {
			d.rescued = 1
		}
		return res.Duration(), d
	}
	fl.add(st)
}

// AddPipelineTenant registers a tenant running a pipeline.
func (fl *FaaSLoad) AddPipelineTenant(name string, pl *Pipeline, pool *InputPool, mean time.Duration, periodic bool) {
	st := &tenantState{report: TenantReport{Name: name}, mean: mean, period: periodic}
	st.run = func(id string) (time.Duration, *statsDelta) {
		in := pool.Pick()
		res := pl.Run(fl.platform, in, id)
		e, t, l := res.Phases()
		d := &statsDelta{e: e, t: t, l: l}
		for _, sr := range res.Results {
			d.bytesIn += sr.BytesIn
			d.bytesOut += sr.BytesOut
			if sr.ColdStart {
				d.cold++
			}
			if sr.Retried {
				d.retried++
			}
			if sr.Rescued {
				d.rescued++
			}
		}
		if res.Err != nil {
			d.fail = 1
		}
		return res.Duration(), d
	}
	fl.add(st)
}

func (fl *FaaSLoad) add(st *tenantState) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.tenants = append(fl.tenants, st)
}

// Start launches one process per tenant, firing invocations until the
// observation window closes. Invocations started before the deadline
// run to completion.
func (fl *FaaSLoad) Start(window time.Duration) {
	fl.mu.Lock()
	tenants := append([]*tenantState{}, fl.tenants...)
	fl.mu.Unlock()
	for ti, st := range tenants {
		st := st
		rng := rand.New(rand.NewSource(fl.rng.Int63()))
		prefix := fmt.Sprintf("t%d", ti)
		fl.env.Go(func() {
			seq := 0
			for {
				var wait time.Duration
				switch {
				case len(st.schedule) > 0:
					if seq >= len(st.schedule) {
						return
					}
					next := st.schedule[seq]
					now := time.Duration(fl.env.Now())
					if next < now {
						next = now
					}
					wait = next - now
				case st.period:
					wait = st.mean
				default:
					// Exponential inter-arrival times with the given mean.
					wait = time.Duration(-math.Log(1-rng.Float64()) * float64(st.mean))
				}
				if fl.env.Now()+wait >= sim.Time(window) {
					return
				}
				fl.env.Sleep(wait)
				seq++
				id := fmt.Sprintf("%s-%d", prefix, seq)
				dur, delta := st.run(id)
				st.lat.Add(dur)
				st.mu.Lock()
				st.report.Invocations++
				st.report.TotalExec += dur
				st.report.Failures += delta.fail
				st.report.ColdStarts += delta.cold
				st.report.Retried += delta.retried
				st.report.Rescued += delta.rescued
				st.report.TotalE += delta.e
				st.report.TotalT += delta.t
				st.report.TotalL += delta.l
				st.report.BytesIn += delta.bytesIn
				st.report.BytesOut += delta.bytesOut
				st.mu.Unlock()
			}
		})
	}
}

// Reports returns the per-tenant aggregates.
func (fl *FaaSLoad) Reports() []TenantReport {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	out := make([]TenantReport, 0, len(fl.tenants))
	for _, st := range fl.tenants {
		st.mu.Lock()
		rep := st.report
		st.mu.Unlock()
		rep.P50 = st.lat.Median()
		rep.P99 = st.lat.P99()
		out = append(out, rep)
	}
	return out
}

// AddTraceTenant registers a tenant replaying an explicit invocation
// schedule (offsets from the window start), the way production traces
// à la Azure Functions (Shahrad et al.) are replayed. Offsets past the
// window are dropped by Start's deadline check.
func (fl *FaaSLoad) AddTraceTenant(name string, spec *Spec, fn *faas.Function, pool *InputPool, offsets []time.Duration) {
	rng := rand.New(rand.NewSource(fl.rng.Int63()))
	st := &tenantState{report: TenantReport{Name: name}}
	st.schedule = append([]time.Duration{}, offsets...)
	sort.Slice(st.schedule, func(i, j int) bool { return st.schedule[i] < st.schedule[j] })
	st.run = func(id string) (time.Duration, *statsDelta) {
		in := pool.Pick()
		args := spec.GenArgs(rng)
		res := fl.platform.Invoke(NewRequest(fn, spec, in, args))
		d := &statsDelta{e: res.Extract, t: res.Transform, l: res.Load,
			bytesIn: res.BytesIn, bytesOut: res.BytesOut}
		if res.Err != nil {
			d.fail = 1
		}
		if res.ColdStart {
			d.cold = 1
		}
		return res.Duration(), d
	}
	fl.add(st)
}

// GenBurstyTrace synthesizes a production-style arrival trace over a
// window: a baseline Poisson process plus exponentially-sized bursts
// of back-to-back invocations (the bursty behaviour Shahrad et al.
// observe that keep-alive policies struggle with, §2.2.1).
func GenBurstyTrace(rng *rand.Rand, window time.Duration, meanInterval time.Duration, burstEvery time.Duration, meanBurst int) []time.Duration {
	var out []time.Duration
	at := time.Duration(0)
	nextBurst := time.Duration(float64(burstEvery) * rng.ExpFloat64())
	for at < window {
		at += time.Duration(-math.Log(1-rng.Float64()) * float64(meanInterval))
		if at >= window {
			break
		}
		out = append(out, at)
		if at >= nextBurst {
			n := 1 + rng.Intn(2*meanBurst)
			for i := 0; i < n; i++ {
				b := at + time.Duration(i+1)*200*time.Millisecond
				if b < window {
					out = append(out, b)
				}
			}
			nextBurst = at + time.Duration(float64(burstEvery)*rng.ExpFloat64())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LoadTraceCSV parses one invocation offset per line, in seconds
// (decimal). Blank lines and lines starting with '#' are skipped.
func LoadTraceCSV(r io.Reader) ([]time.Duration, error) {
	var out []time.Duration
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		secs, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if secs < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative offset", line)
		}
		out = append(out, time.Duration(secs*float64(time.Second)))
	}
	return out, sc.Err()
}
