package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ofc/internal/core"
	"ofc/internal/faas"
	"ofc/internal/imoc"
	"ofc/internal/kvstore"
	"ofc/internal/objstore"
	"ofc/internal/simnet"
)

// Suite builds runnable faas.Functions from Specs and keeps the object
// registry that maps keys to their true content features (standing in
// for the actual bytes of images/audio/video the paper's functions
// decode).
type Suite struct {
	mu       sync.Mutex
	features map[string]map[string]float64
	outSeq   atomic.Int64
}

// NewSuite returns an empty suite.
func NewSuite() *Suite {
	return &Suite{features: make(map[string]map[string]float64)}
}

// RegisterObject records the true features of an object.
func (su *Suite) RegisterObject(key string, features map[string]float64) {
	su.mu.Lock()
	defer su.mu.Unlock()
	su.features[key] = features
}

// FeaturesOf returns the true features of key; for unknown keys it
// falls back to size-only features.
func (su *Suite) FeaturesOf(key string, size int64) map[string]float64 {
	su.mu.Lock()
	defer su.mu.Unlock()
	if f, ok := su.features[key]; ok {
		return f
	}
	return map[string]float64{"size": float64(size)}
}

// Build turns a spec into a registered-ready function for a tenant.
// booked of 0 uses the spec default.
func (su *Suite) Build(spec *Spec, tenant string, booked int64) *faas.Function {
	if booked <= 0 {
		booked = spec.Booked
	}
	fn := &faas.Function{
		Name:         spec.Name,
		Tenant:       tenant,
		MemoryBooked: booked,
		InputType:    spec.InputType,
		ArgNames:     spec.ArgNames,
	}
	fn.Body = func(ctx *faas.Ctx) error {
		key := ctx.InputKeys()[0]
		blob, err := ctx.Extract(key)
		if err != nil {
			return err
		}
		f := su.FeaturesOf(key, blob.Size)
		args := ctx.Args()
		seq := su.outSeq.Add(1)
		if err := ctx.Transform(spec.Time(f, args), spec.PeakMemRun(key, f, args, seq)); err != nil {
			return err
		}
		outKey := fmt.Sprintf("out/%s/%s/%d", tenant, spec.Name, seq)
		return ctx.Load(outKey, faas.Blob{Size: spec.OutSize(f, args)}, faas.KindFinal)
	}
	return fn
}

// NewRequest assembles an invocation request for a prepared input.
func NewRequest(fn *faas.Function, spec *Spec, in InputMeta, args map[string]float64) *faas.Request {
	return &faas.Request{
		Function:      fn,
		Args:          args,
		InputKeys:     []string{in.Key},
		InputFeatures: in.Features,
	}
}

// MaxMem returns the worst-case memory of a spec over a pool (the
// "advanced" tenant profile books this; "normal" books 1.7× it, §7.2.2).
func (s *Spec) MaxMem(pool *InputPool, rng *rand.Rand) int64 {
	var max int64
	for _, in := range pool.Inputs {
		for i := 0; i < 8; i++ {
			args := s.GenArgs(rng)
			if m := s.PeakMem(in.Key, in.Features, args); m > max {
				max = m
			}
		}
	}
	return max
}

// TenantProfile is the §7.2.2 memory-booking behaviour.
type TenantProfile int

const (
	// ProfileNormal books 1.7× the maximum used memory.
	ProfileNormal TenantProfile = iota
	// ProfileNaive books the platform maximum (2 GB).
	ProfileNaive
	// ProfileAdvanced books exactly the maximum used memory.
	ProfileAdvanced
)

// String names the profile.
func (p TenantProfile) String() string {
	switch p {
	case ProfileNaive:
		return "naive"
	case ProfileAdvanced:
		return "advanced"
	default:
		return "normal"
	}
}

// BookedMem computes the booked memory for a profile given the
// function's true maximum usage.
func BookedMem(profile TenantProfile, maxUsed, platformMax int64) int64 {
	switch profile {
	case ProfileNaive:
		return platformMax
	case ProfileAdvanced:
		return maxUsed
	default:
		b := int64(float64(maxUsed) * 1.7)
		if b > platformMax {
			b = platformMax
		}
		return b
	}
}

// TrainingSamples evaluates the spec laws over a pool to produce an
// offline training set (the repository's machine-learning folder).
// The feature vectors follow fn's schema ordering.
func TrainingSamples(spec *Spec, fn *faas.Function, pool *InputPool, n int, rng *rand.Rand, rsds objstore.Profile) []core.Sample {
	schema := core.NewFeatureSchema(fn)
	out := make([]core.Sample, 0, n)
	for i := 0; i < n; i++ {
		in := pool.Inputs[rng.Intn(len(pool.Inputs))]
		args := spec.GenArgs(rng)
		merged := make(map[string]float64, len(in.Features)+len(args))
		for k, v := range in.Features {
			merged[k] = v
		}
		for k, v := range args {
			merged[k] = v
		}
		vals := make([]float64, 0, len(schema.Names()))
		for _, name := range schema.Names() {
			if v, ok := merged[name]; ok {
				vals = append(vals, v)
			} else {
				vals = append(vals, missing())
			}
		}
		outSize := spec.OutSize(in.Features, args)
		out = append(out, core.Sample{
			Vals:         vals,
			PeakMem:      spec.PeakMemRun(in.Key, in.Features, args, int64(i)),
			Extract:      rsds.ReadBase + bwTime(in.Size, rsds.ReadBW),
			Transform:    spec.Time(in.Features, args),
			Load:         rsds.WriteBase + bwTime(outSize, rsds.WriteBW),
			BenefitKnown: true,
		})
	}
	return out
}

func missing() float64 {
	var nan float64
	nan = 0
	nan /= nan
	return nan
}

func bwTime(size int64, bw float64) time.Duration {
	if size <= 0 || bw <= 0 {
		return 0
	}
	return time.Duration(float64(size) / bw * float64(time.Second))
}

// RSDSWriter stages inputs into the RSDS with feature sidecars.
type RSDSWriter struct {
	Suite *Suite
	Store *objstore.Store
	Node  simnet.NodeID
}

// WriteObject implements ObjectWriter.
func (w RSDSWriter) WriteObject(key string, blob kvstore.Blob, features map[string]float64) {
	w.Store.Put(w.Node, key, blob, nil, false)
	w.Store.SetFeatures(key, features)
	w.Suite.RegisterObject(key, features)
}

// IMOCWriter stages inputs into the Redis-like cache (the OWK-Redis
// baseline keeps all data there).
type IMOCWriter struct {
	Suite *Suite
	Cache *imoc.Cache
	Node  simnet.NodeID
}

// WriteObject implements ObjectWriter.
func (w IMOCWriter) WriteObject(key string, blob kvstore.Blob, features map[string]float64) {
	w.Cache.Set(w.Node, key, blob)
	w.Suite.RegisterObject(key, features)
}

// blobType aliases the kvstore payload for internal helpers.
type blobType = kvstore.Blob
