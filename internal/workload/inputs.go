package workload

import (
	"fmt"
	"math"
	"math/rand"

	"ofc/internal/kvstore"
)

// InputMeta describes one prepared input object.
type InputMeta struct {
	Key      string
	Size     int64
	Features map[string]float64
}

// genImage derives image features consistent with a byte size: JPEG at
// roughly 0.8 byte/pixel with a 4:3 aspect ratio, 1 or 3 channels.
func genImage(rng *rand.Rand, size int64) map[string]float64 {
	channels := 3.0
	if rng.Intn(6) == 0 {
		channels = 1
	}
	pixels := float64(size) / (0.8 * channels / 3)
	// width/height with a 4:3 ratio: pixels = w*h = w*(3w/4).
	w := int(math.Sqrt(pixels * 4 / 3))
	if w < 16 {
		w = 16
	}
	width := float64(w)
	height := float64(w) * 3 / 4
	return map[string]float64{
		"size": float64(size), "width": width, "height": height, "channels": channels,
	}
}

// genAudio derives audio features: bitrate in {64,128,192,256} kb/s,
// duration from size.
func genAudio(rng *rand.Rand, size int64) map[string]float64 {
	bitrates := []float64{64, 128, 192, 256}
	br := bitrates[rng.Intn(len(bitrates))]
	duration := float64(size) * 8 / (br * 1000)
	channels := 2.0
	if rng.Intn(4) == 0 {
		channels = 1
	}
	return map[string]float64{
		"size": float64(size), "duration": duration, "bitrate": br, "channels": channels,
	}
}

// genVideo derives video features: resolution class, fps, duration
// from size at the implied bitrate.
func genVideo(rng *rand.Rand, size int64) map[string]float64 {
	res := [][2]float64{{640, 360}, {1280, 720}, {1920, 1080}}[rng.Intn(3)]
	fps := []float64{24, 30, 60}[rng.Intn(3)]
	bitrate := res[0] * res[1] * fps * 0.15 // bits/s (720p30 ≈ 4 Mb/s)
	duration := float64(size) * 8 / bitrate
	return map[string]float64{
		"size": float64(size), "width": res[0], "height": res[1], "fps": fps, "duration": duration,
	}
}

// genText derives text features.
func genText(rng *rand.Rand, size int64) map[string]float64 {
	lines := float64(size) / float64(40+rng.Intn(40))
	return map[string]float64{"size": float64(size), "lines": lines}
}

// GenFeatures builds features of the given input type and byte size.
func GenFeatures(rng *rand.Rand, inputType string, size int64) map[string]float64 {
	switch inputType {
	case "image":
		return genImage(rng, size)
	case "audio":
		return genAudio(rng, size)
	case "video":
		return genVideo(rng, size)
	case "text":
		return genText(rng, size)
	default:
		return map[string]float64{"size": float64(size)}
	}
}

// InputPool is a finite set of prepared input objects for one
// function, mirroring FaaSLoad's dataset preparation.
type InputPool struct {
	Inputs []InputMeta
	rng    *rand.Rand
}

// NewInputPool generates count distinct inputs per requested size
// (sizes jittered ±20% so byte size alone cannot predict memory).
func NewInputPool(rng *rand.Rand, inputType, keyPrefix string, sizes []int64, perSize int) *InputPool {
	pool := &InputPool{rng: rand.New(rand.NewSource(rng.Int63()))}
	for _, s := range sizes {
		for i := 0; i < perSize; i++ {
			jitter := 1 + (rng.Float64()-0.5)*0.4
			size := int64(float64(s) * jitter)
			if size < 128 {
				size = 128
			}
			key := fmt.Sprintf("%s/%d-%d", keyPrefix, s, i)
			pool.Inputs = append(pool.Inputs, InputMeta{
				Key: key, Size: size, Features: GenFeatures(rng, inputType, size),
			})
		}
	}
	return pool
}

// Pick returns a uniformly random input from the pool.
func (p *InputPool) Pick() InputMeta {
	return p.Inputs[p.rng.Intn(len(p.Inputs))]
}

// PickSized returns a random input whose nominal size bucket matches
// closest to want.
func (p *InputPool) PickSized(want int64) InputMeta {
	best := p.Inputs[0]
	bestDiff := abs64(best.Size - want)
	start := p.rng.Intn(len(p.Inputs))
	for i := 0; i < len(p.Inputs); i++ {
		in := p.Inputs[(start+i)%len(p.Inputs)]
		if d := abs64(in.Size - want); d < bestDiff {
			best, bestDiff = in, d
		}
	}
	return best
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// ObjectWriter abstracts where prepared inputs are staged: the RSDS
// (OWK-Swift and OFC runs) or the IMOC (OWK-Redis runs).
type ObjectWriter interface {
	WriteObject(key string, blob kvstore.Blob, features map[string]float64)
}

// Stage writes every input of the pool through w.
func (p *InputPool) Stage(w ObjectWriter) {
	for _, in := range p.Inputs {
		w.WriteObject(in.Key, kvstore.Synthetic(in.Size), in.Features)
	}
}
