package overload

import (
	"sync"
	"time"

	"ofc/internal/sim"
)

// BudgetConfig tunes the retry budget: a token bucket with Burst
// capacity refilling at RefillPerSecond (virtual time). Every retry —
// faas OOM re-executions and storage-layer re-attempts alike — spends
// one token, so the whole platform's retry volume over any window w is
// bounded by Burst + RefillPerSecond·w and failures cannot amplify
// into retry storms.
type BudgetConfig struct {
	Burst           float64
	RefillPerSecond float64
}

// DefaultBudgetConfig sizes the bucket for the testbed: enough burst
// to absorb one node's worth of simultaneous failures, a refill rate
// well below the platform's request rate.
func DefaultBudgetConfig() BudgetConfig {
	return BudgetConfig{Burst: 20, RefillPerSecond: 5}
}

// BudgetStats counts budget decisions.
type BudgetStats struct {
	Granted int64
	Denied  int64
}

// RetryBudget is a deterministic token bucket on the virtual clock.
// Refill is lazy: tokens accrue on each Allow call from the elapsed
// virtual time, so the budget costs nothing while idle.
type RetryBudget struct {
	env *sim.Env

	mu      sync.Mutex
	cfg     BudgetConfig
	tokens  float64
	last    sim.Time
	granted int64
	denied  int64
}

// NewRetryBudget returns a full bucket bound to env.
func NewRetryBudget(env *sim.Env, cfg BudgetConfig) *RetryBudget {
	return &RetryBudget{env: env, cfg: cfg, tokens: cfg.Burst, last: env.Now()}
}

// Allow spends one token if available and reports whether the retry
// may proceed.
func (b *RetryBudget) Allow() bool {
	now := b.env.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= 1 {
		b.tokens--
		b.granted++
		return true
	}
	b.denied++
	return false
}

func (b *RetryBudget) refillLocked(now sim.Time) {
	if now <= b.last {
		return
	}
	b.tokens += (now - b.last).Seconds() * b.cfg.RefillPerSecond
	if b.tokens > b.cfg.Burst {
		b.tokens = b.cfg.Burst
	}
	b.last = now
}

// Remaining reports the tokens currently available.
func (b *RetryBudget) Remaining() float64 {
	now := b.env.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens
}

// Stats snapshots the grant/deny counters.
func (b *RetryBudget) Stats() BudgetStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BudgetStats{Granted: b.granted, Denied: b.denied}
}

// Cap is the theoretical maximum number of grants over a window: the
// experiment's "no retry storm" assertion checks total retries against
// it.
func (b *RetryBudget) Cap(window time.Duration) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cfg.Burst + window.Seconds()*b.cfg.RefillPerSecond
}
