package overload

import (
	"sync"
	"time"

	"ofc/internal/sim"
)

// Signals is one sample of the health signals the degradation
// controller consumes. OOMKills and ReclaimFailures are cumulative
// counters (the controller differentiates them into rates);
// QueueDepth and StoreLatencyP99 are instantaneous.
type Signals struct {
	QueueDepth      float64
	OOMKills        float64
	ReclaimFailures float64
	StoreLatencyP99 time.Duration
}

// ControllerConfig tunes the state machine. Each signal is normalized
// against its High reference (1.0 = "at the overload threshold"); the
// pressure score is the max across signals. Enter thresholds move the
// state up immediately; moving down requires the score at or below the
// exit threshold AND MinDwell in the current state, one step at a
// time — the hysteresis that prevents flapping.
type ControllerConfig struct {
	SampleEvery time.Duration

	QueueHigh       float64       // queued requests
	OOMRateHigh     float64       // OOM kills per second
	ReclaimRateHigh float64       // reclaim failures per second
	LatencyHigh     time.Duration // store op p99

	BrownoutEnter float64
	BrownoutExit  float64
	ShedEnter     float64
	ShedExit      float64
	MinDwell      time.Duration
}

// DefaultControllerConfig returns thresholds sized for the testbed
// deployments.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		SampleEvery:     time.Second,
		QueueHigh:       16,
		OOMRateHigh:     2,
		ReclaimRateHigh: 2,
		LatencyHigh:     50 * time.Millisecond,
		BrownoutEnter:   1.0,
		BrownoutExit:    0.5,
		ShedEnter:       2.0,
		ShedExit:        1.0,
		MinDwell:        5 * time.Second,
	}
}

// Transition is one recorded state change.
type Transition struct {
	At    sim.Time
	From  State
	To    State
	Score float64
}

// Controller samples the health signals on the virtual clock and
// drives the Normal → Brownout → Shed state machine. State-change
// callbacks run outside the controller lock.
type Controller struct {
	env    *sim.Env
	cfg    ControllerConfig
	source func() Signals

	mu          sync.Mutex
	state       State
	since       sim.Time
	prev        Signals
	havePrev    bool
	score       float64
	transitions []Transition
	onChange    []func(from, to State)
}

// NewController builds a controller reading signals from source.
// Call Start to begin sampling.
func NewController(env *sim.Env, cfg ControllerConfig, source func() Signals) *Controller {
	return &Controller{env: env, cfg: cfg, source: source, since: env.Now()}
}

// OnChange registers a state-change callback. Register before Start.
func (c *Controller) OnChange(fn func(from, to State)) {
	c.mu.Lock()
	c.onChange = append(c.onChange, fn)
	c.mu.Unlock()
}

// Start begins periodic sampling; it runs until the environment stops.
func (c *Controller) Start() {
	c.env.Every(c.cfg.SampleEvery, func() bool {
		c.Tick()
		return true
	})
}

// State reports the current degradation level.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Score reports the last computed pressure score.
func (c *Controller) Score() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.score
}

// Transitions returns the recorded state changes.
func (c *Controller) Transitions() []Transition {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Transition, len(c.transitions))
	copy(out, c.transitions)
	return out
}

// Tick takes one sample and applies the transition rules. Start calls
// it on the sampling period; tests may call it directly.
func (c *Controller) Tick() {
	s := c.source()
	now := c.env.Now()

	c.mu.Lock()
	score := c.scoreLocked(s)
	c.prev, c.havePrev = s, true
	c.score = score

	from := c.state
	to := from
	switch target := targetState(score, c.cfg); {
	case target > from:
		to = target // upward moves are immediate: overload will not wait
	case target < from && now-c.since >= c.cfg.MinDwell && score <= c.exitLocked(from):
		to = from - 1 // downward moves step one level after dwelling
	}
	var cbs []func(from, to State)
	if to != from {
		c.state = to
		c.since = now
		c.transitions = append(c.transitions, Transition{At: now, From: from, To: to, Score: score})
		cbs = append(cbs, c.onChange...)
	}
	c.mu.Unlock()

	for _, fn := range cbs {
		fn(from, to)
	}
}

// scoreLocked computes the max-normalized pressure score from the
// sample, using the previous sample to turn cumulative counters into
// rates.
func (c *Controller) scoreLocked(s Signals) float64 {
	score := ratio(s.QueueDepth, c.cfg.QueueHigh)
	if c.havePrev {
		secs := c.cfg.SampleEvery.Seconds()
		score = maxf(score, ratio((s.OOMKills-c.prev.OOMKills)/secs, c.cfg.OOMRateHigh))
		score = maxf(score, ratio((s.ReclaimFailures-c.prev.ReclaimFailures)/secs, c.cfg.ReclaimRateHigh))
	}
	score = maxf(score, ratio(s.StoreLatencyP99.Seconds(), c.cfg.LatencyHigh.Seconds()))
	return score
}

// exitLocked is the threshold the score must reach to leave state
// downward.
func (c *Controller) exitLocked(s State) float64 {
	if s >= Shed {
		return c.cfg.ShedExit
	}
	return c.cfg.BrownoutExit
}

// targetState maps a score to the state its enter thresholds justify.
func targetState(score float64, cfg ControllerConfig) State {
	switch {
	case score >= cfg.ShedEnter:
		return Shed
	case score >= cfg.BrownoutEnter:
		return Brownout
	default:
		return Normal
	}
}

func ratio(v, high float64) float64 {
	if high <= 0 {
		return 0
	}
	return v / high
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
