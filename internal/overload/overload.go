// Package overload implements end-to-end overload control for the OFC
// testbed: bounded admission queues with per-tenant weighted-fair
// dequeue and CoDel-style staleness shedding, a token-bucket retry
// budget shared by every subsystem that re-executes work, and a
// signal-driven graceful-degradation state machine
// (Normal → Brownout → Shed).
//
// OFC's cache is *opportunistic* — its memory can be reclaimed at any
// moment (§6.4) — so a traffic spike simultaneously shrinks the cache,
// adds invocations, and risks retry storms from OOM kills and breaker
// trips. The paper never says what happens when demand exceeds spare
// capacity; this package is that missing robustness layer. Faa$T
// argues a serverless cache must scale *down* gracefully with load,
// and COCOA that FaaS platforms need capacity-aware admission to avoid
// cold-start collapse; both shaped the design.
//
// The package depends only on the virtual clock (internal/sim): no
// wall-clock reads, no randomness. Higher layers (internal/core) wire
// its pieces into the FaaS platform, the storage middleware and the
// cache agents through the interfaces those packages already expose.
package overload

import "fmt"

// State is the platform-wide degradation level.
type State int

const (
	// Normal: full service — cache admissions on, locality routing on,
	// standard queue bounds.
	Normal State = iota
	// Brownout: capacity pressure — low-benefit functions are forced to
	// the passthrough (direct-RSDS) data path so the cache keeps only
	// its hot set, agents evict aggressively, locality routing yields
	// to load spreading. All admitted work still completes.
	Brownout
	// Shed: demand exceeds capacity — per-tenant queue bounds tighten
	// and excess load is rejected with ErrShed instead of queueing
	// without bound. Brownout measures stay in force.
	Shed
)

// String names the state for reports and transition logs.
func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Brownout:
		return "brownout"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}
