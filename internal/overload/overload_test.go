package overload

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ofc/internal/sim"
)

func TestAdmissionFastPath(t *testing.T) {
	env := sim.NewEnv(1)
	adm := NewAdmission(env, AdmissionConfig{MaxConcurrent: 2, MaxQueuePerTenant: 4, ShedQueuePerTenant: 1, Target: time.Second, Interval: time.Second})
	env.Go(func() {
		rel, err := adm.Admit("a")
		if err != nil {
			t.Errorf("fast path shed: %v", err)
			return
		}
		if adm.Inflight() != 1 {
			t.Errorf("inflight = %d, want 1", adm.Inflight())
		}
		rel()
		rel() // idempotent
		if adm.Inflight() != 0 {
			t.Errorf("inflight after release = %d, want 0", adm.Inflight())
		}
	})
	env.Run()
}

func TestAdmissionQueuesAndReleases(t *testing.T) {
	env := sim.NewEnv(1)
	adm := NewAdmission(env, AdmissionConfig{MaxConcurrent: 1, MaxQueuePerTenant: 8, ShedQueuePerTenant: 1, Target: time.Minute, Interval: time.Minute})
	var mu sync.Mutex
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		env.Go(func() {
			env.Sleep(time.Duration(i) * time.Millisecond) // deterministic arrival order
			rel, err := adm.Admit("a")
			if err != nil {
				t.Errorf("req %d shed: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			env.Sleep(10 * time.Millisecond)
			rel()
		})
	}
	env.Run()
	if len(order) != 4 {
		t.Fatalf("admitted %d, want 4", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want FIFO", order)
		}
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	env := sim.NewEnv(1)
	adm := NewAdmission(env, AdmissionConfig{MaxConcurrent: 1, MaxQueuePerTenant: 1, ShedQueuePerTenant: 1, Target: time.Minute, Interval: time.Minute})
	var sheds int
	env.Go(func() {
		rel, err := adm.Admit("a") // takes the slot
		if err != nil {
			t.Errorf("first admit: %v", err)
			return
		}
		done := sim.NewWaitGroup(env)
		done.Add(1)
		env.Go(func() { // fills the queue
			defer done.Done()
			rel2, err := adm.Admit("a")
			if err != nil {
				t.Errorf("queued admit: %v", err)
				return
			}
			rel2()
		})
		env.Sleep(time.Millisecond)
		if _, err := adm.Admit("a"); err == nil {
			t.Error("third admit should shed")
		} else {
			var se *ShedError
			if !errors.Is(err, ErrShed) || !errors.As(err, &se) {
				t.Errorf("shed error type: %v", err)
			} else if se.Reason != "queue-full" || se.Tenant != "a" {
				t.Errorf("shed error = %+v", se)
			}
			sheds++
		}
		rel()
		done.Wait()
	})
	env.Run()
	if sheds != 1 {
		t.Fatalf("sheds = %d, want 1", sheds)
	}
	if s := adm.Stats(); s.ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1", s.ShedQueueFull)
	}
}

func TestAdmissionWeightedFairness(t *testing.T) {
	// One slot, slow consumers, two tenants with 3:1 weights and deep
	// backlogs: dispatches should interleave roughly 3:1.
	env := sim.NewEnv(1)
	adm := NewAdmission(env, AdmissionConfig{MaxConcurrent: 1, MaxQueuePerTenant: 64, ShedQueuePerTenant: 1, Target: time.Hour, Interval: time.Hour})
	adm.SetWeight("heavy", 3)
	adm.SetWeight("light", 1)
	var mu sync.Mutex
	counts := map[string]int{}
	firstN := []string{}
	spawn := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			env.Go(func() {
				rel, err := adm.Admit(tenant)
				if err != nil {
					return
				}
				mu.Lock()
				counts[tenant]++
				if len(firstN) < 12 {
					firstN = append(firstN, tenant)
				}
				mu.Unlock()
				env.Sleep(time.Millisecond)
				rel()
			})
		}
	}
	env.Go(func() {
		env.Sleep(time.Millisecond) // let a seed request take the slot first
	})
	spawn("heavy", 30)
	spawn("light", 30)
	env.Run()
	if counts["heavy"] != 30 || counts["light"] != 30 {
		t.Fatalf("counts = %v, want all 30+30 served", counts)
	}
	// Inspect the steady-state prefix: heavy should get ~3 of every 4.
	heavy := 0
	for _, tn := range firstN {
		if tn == "heavy" {
			heavy++
		}
	}
	if heavy < 7 || heavy > 11 {
		t.Fatalf("heavy got %d of first %d dispatches, want ~9 (3:1 weights): %v", heavy, len(firstN), firstN)
	}
}

func TestAdmissionCoDelShedsStale(t *testing.T) {
	env := sim.NewEnv(1)
	adm := NewAdmission(env, AdmissionConfig{
		MaxConcurrent: 1, MaxQueuePerTenant: 64, ShedQueuePerTenant: 1,
		Target: 5 * time.Millisecond, Interval: 10 * time.Millisecond,
	})
	var mu sync.Mutex
	admitted, stale := 0, 0
	// One long holder, then a burst that goes stale behind it.
	env.Go(func() {
		rel, err := adm.Admit("a")
		if err != nil {
			t.Errorf("holder shed: %v", err)
			return
		}
		env.Sleep(100 * time.Millisecond)
		rel()
	})
	for i := 0; i < 8; i++ {
		env.Go(func() {
			env.Sleep(time.Millisecond)
			rel, err := adm.Admit("a")
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if !errors.Is(err, ErrShed) {
					t.Errorf("unexpected error: %v", err)
				}
				stale++
				return
			}
			admitted++
			mu.Unlock()
			env.Sleep(20 * time.Millisecond) // hold the slot so delay stands
			mu.Lock()
			rel()
		})
	}
	env.Run()
	if stale == 0 {
		t.Fatalf("no stale sheds (admitted=%d); CoDel never engaged", admitted)
	}
	if admitted == 0 {
		t.Fatal("everything shed; CoDel should admit at least the first head")
	}
	if s := adm.Stats(); int(s.ShedStale) != stale {
		t.Fatalf("ShedStale = %d, observed %d", s.ShedStale, stale)
	}
}

func TestAdmissionShedLevelTightensBound(t *testing.T) {
	env := sim.NewEnv(1)
	adm := NewAdmission(env, AdmissionConfig{MaxConcurrent: 1, MaxQueuePerTenant: 8, ShedQueuePerTenant: 1, Target: time.Hour, Interval: time.Hour})
	adm.SetLevel(Shed)
	env.Go(func() {
		rel, err := adm.Admit("a")
		if err != nil {
			t.Errorf("first admit: %v", err)
			return
		}
		done := sim.NewWaitGroup(env)
		done.Add(1)
		env.Go(func() {
			defer done.Done()
			if rel2, err := adm.Admit("a"); err == nil {
				rel2()
			}
		})
		env.Sleep(time.Millisecond)
		if _, err := adm.Admit("a"); !errors.Is(err, ErrShed) {
			t.Errorf("want shed under tightened bound, got %v", err)
		}
		rel()
		done.Wait()
	})
	env.Run()
}

func TestRetryBudgetSpendAndRefill(t *testing.T) {
	env := sim.NewEnv(1)
	b := NewRetryBudget(env, BudgetConfig{Burst: 2, RefillPerSecond: 1})
	env.Go(func() {
		if !b.Allow() || !b.Allow() {
			t.Error("burst tokens should be granted")
		}
		if b.Allow() {
			t.Error("empty bucket should deny")
		}
		env.Sleep(time.Second)
		if !b.Allow() {
			t.Error("refill after 1s should grant")
		}
		if b.Allow() {
			t.Error("only one token refilled")
		}
		env.Sleep(time.Hour)
		if got := b.Remaining(); got != 2 {
			t.Errorf("Remaining = %v, want capped at Burst 2", got)
		}
	})
	env.Run()
	s := b.Stats()
	if s.Granted != 3 || s.Denied != 2 {
		t.Fatalf("stats = %+v, want 3 granted / 2 denied", s)
	}
	if cap := b.Cap(10 * time.Second); cap != 12 {
		t.Fatalf("Cap(10s) = %v, want 12", cap)
	}
}

func TestControllerTransitionsWithHysteresis(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultControllerConfig()
	cfg.MinDwell = 3 * time.Second
	var depth float64
	var mu sync.Mutex
	src := func() Signals {
		mu.Lock()
		defer mu.Unlock()
		return Signals{QueueDepth: depth}
	}
	c := NewController(env, cfg, src)
	set := func(d float64) {
		mu.Lock()
		depth = d
		mu.Unlock()
	}
	env.Go(func() {
		tick := func(n int) {
			for i := 0; i < n; i++ {
				env.Sleep(cfg.SampleEvery)
				c.Tick()
			}
		}
		tick(2)
		if c.State() != Normal {
			t.Errorf("idle state = %v, want normal", c.State())
		}
		set(cfg.QueueHigh * 1.5) // score 1.5: brownout territory
		tick(1)
		if c.State() != Brownout {
			t.Errorf("state = %v, want brownout", c.State())
		}
		set(cfg.QueueHigh * 3) // score 3: shed territory
		tick(1)
		if c.State() != Shed {
			t.Errorf("state = %v, want shed", c.State())
		}
		// Pressure gone — but dwell and one-step-down must both gate.
		set(0)
		tick(1)
		if c.State() != Shed {
			t.Errorf("state left shed before MinDwell: %v", c.State())
		}
		tick(3) // dwell satisfied → step to brownout only
		if c.State() != Brownout {
			t.Errorf("state = %v, want brownout (one step down)", c.State())
		}
		tick(3) // dwell in brownout → back to normal
		if c.State() != Normal {
			t.Errorf("state = %v, want normal", c.State())
		}
	})
	env.Run()
	tr := c.Transitions()
	want := []struct{ from, to State }{
		{Normal, Brownout}, {Brownout, Shed}, {Shed, Brownout}, {Brownout, Normal},
	}
	if len(tr) != len(want) {
		t.Fatalf("transitions = %v, want %d entries", tr, len(want))
	}
	for i, w := range want {
		if tr[i].From != w.from || tr[i].To != w.to {
			t.Fatalf("transition %d = %v→%v, want %v→%v", i, tr[i].From, tr[i].To, w.from, w.to)
		}
	}
}

func TestControllerNoFlapping(t *testing.T) {
	// Score oscillating around the brownout boundary every sample must
	// not produce a transition per sample: dwell pins the state down.
	env := sim.NewEnv(1)
	cfg := DefaultControllerConfig()
	cfg.MinDwell = 5 * time.Second
	var depth float64
	var mu sync.Mutex
	c := NewController(env, cfg, func() Signals {
		mu.Lock()
		defer mu.Unlock()
		return Signals{QueueDepth: depth}
	})
	env.Go(func() {
		for i := 0; i < 20; i++ {
			mu.Lock()
			if i%2 == 0 {
				depth = cfg.QueueHigh * 1.2 // above enter
			} else {
				depth = 0 // below exit
			}
			mu.Unlock()
			env.Sleep(cfg.SampleEvery)
			c.Tick()
		}
	})
	env.Run()
	// Upward flaps are free (immediate by design) but each down-move
	// needs 5 samples of dwell, so: 20 samples admit at most
	// 20/(dwell samples) ≈ 4 down-moves → ≤ 9 transitions; without
	// hysteresis there would be ~19.
	if n := len(c.Transitions()); n > 9 {
		t.Fatalf("%d transitions in 20 oscillating samples; hysteresis failed: %v", n, c.Transitions())
	}
}

func TestControllerRateSignals(t *testing.T) {
	// Cumulative counters must be differentiated: a big absolute count
	// with zero delta is not pressure.
	env := sim.NewEnv(1)
	cfg := DefaultControllerConfig()
	var ooms float64 = 1000
	c := NewController(env, cfg, func() Signals { return Signals{OOMKills: ooms} })
	env.Go(func() {
		env.Sleep(cfg.SampleEvery)
		c.Tick() // primes prev
		env.Sleep(cfg.SampleEvery)
		c.Tick() // delta 0 → score 0
		if c.State() != Normal {
			t.Errorf("steady counter drove state to %v", c.State())
		}
		ooms += cfg.OOMRateHigh * cfg.SampleEvery.Seconds() * 2 // rate = 2×high
		env.Sleep(cfg.SampleEvery)
		c.Tick()
		if c.State() != Shed {
			t.Errorf("OOM burst: state = %v, want shed (score %v)", c.State(), c.Score())
		}
	})
	env.Run()
}

func TestShedErrorFormatting(t *testing.T) {
	err := &ShedError{Tenant: "t0", Reason: "stale"}
	if !errors.Is(err, ErrShed) {
		t.Fatal("ShedError must unwrap to ErrShed")
	}
	if err.Error() == "" || ErrShed.Error() == "" {
		t.Fatal("empty error strings")
	}
	for _, s := range []State{Normal, Brownout, Shed, State(9)} {
		if s.String() == "" {
			t.Fatalf("State(%d).String() empty", int(s))
		}
	}
}
