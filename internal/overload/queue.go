package overload

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ofc/internal/sim"
)

// ErrShed is the sentinel for load rejected by admission control.
// Match with errors.Is; the concrete error is a *ShedError carrying
// the tenant and the reason.
var ErrShed = errors.New("overload: request shed")

// ShedError reports one rejected admission.
type ShedError struct {
	Tenant string
	Reason string // "queue-full" or "stale"
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: request shed (tenant=%s, %s)", e.Tenant, e.Reason)
}

// Unwrap makes errors.Is(err, ErrShed) hold.
func (e *ShedError) Unwrap() error { return ErrShed }

// AdmissionConfig tunes the admission queue.
type AdmissionConfig struct {
	// MaxConcurrent is the number of requests allowed past the gate at
	// once; further arrivals queue.
	MaxConcurrent int
	// MaxQueuePerTenant bounds one tenant's queue in Normal/Brownout;
	// arrivals beyond it are rejected immediately (queue-full).
	MaxQueuePerTenant int
	// ShedQueuePerTenant is the tighter per-tenant bound while the
	// degradation state machine is in Shed.
	ShedQueuePerTenant int
	// Target and Interval implement CoDel-style staleness shedding:
	// once dequeued head sojourn has stayed above Target for Interval,
	// stale heads are dropped (stale) instead of dispatched, so the
	// queue sheds standing latency rather than serving dead requests.
	Target   time.Duration
	Interval time.Duration
}

// DefaultAdmissionConfig returns bounds sized for the testbed
// deployments (a handful of worker nodes, ~100 ms function runtimes).
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		MaxConcurrent:      16,
		MaxQueuePerTenant:  32,
		ShedQueuePerTenant: 8,
		Target:             200 * time.Millisecond,
		Interval:           100 * time.Millisecond,
	}
}

// AdmissionStats counts gate outcomes.
type AdmissionStats struct {
	Admitted      int64 // passed the gate (fast path or dequeued)
	ShedQueueFull int64 // rejected at enqueue: tenant queue at bound
	ShedStale     int64 // dropped at dequeue: CoDel staleness
	MaxDepth      int   // high-water mark of total queued requests
}

// waiter is one queued admission request.
type waiter struct {
	tenant string
	enq    sim.Time
	f      *sim.Future[error]
}

// tenantQueue is one tenant's FIFO plus its weighted-fair pass value
// (stride scheduling: pass advances by 1/weight per dispatch; the
// tenant with the smallest pass dequeues next).
type tenantQueue struct {
	q      []*waiter
	pass   float64
	weight float64
}

// Admission is a bounded admission gate with per-tenant weighted-fair
// dequeue. Admit blocks the calling sim process until a slot frees or
// the request is shed. All waiting happens on sim futures, so the gate
// is deterministic under the virtual clock.
type Admission struct {
	env *sim.Env

	mu         sync.Mutex
	cfg        AdmissionConfig
	level      State
	inflight   int
	queued     int
	tenants    map[string]*tenantQueue
	virt       float64  // global virtual time: floor for new pass values
	firstAbove sim.Time // CoDel: since when head sojourn has exceeded Target
	stats      AdmissionStats
}

// NewAdmission returns an idle gate bound to env.
func NewAdmission(env *sim.Env, cfg AdmissionConfig) *Admission {
	return &Admission{env: env, cfg: cfg, tenants: make(map[string]*tenantQueue)}
}

// SetWeight sets a tenant's weighted-fair share (default 1). Higher
// weight dequeues proportionally more often under contention.
func (a *Admission) SetWeight(tenant string, w float64) {
	if w <= 0 {
		panic("overload: non-positive tenant weight")
	}
	a.mu.Lock()
	a.tenantLocked(tenant).weight = w
	a.mu.Unlock()
}

// SetLevel tells the gate the current degradation state; in Shed the
// tighter per-tenant queue bound applies to new arrivals.
func (a *Admission) SetLevel(s State) {
	a.mu.Lock()
	a.level = s
	a.mu.Unlock()
}

// Depth reports the number of queued (not yet admitted) requests.
func (a *Admission) Depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// Inflight reports the number of requests currently past the gate.
func (a *Admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Stats snapshots the gate counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

func (a *Admission) tenantLocked(tenant string) *tenantQueue {
	tq := a.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{weight: 1}
		a.tenants[tenant] = tq
	}
	return tq
}

// Admit blocks until the request may proceed, returning a release
// function the caller must invoke when the work completes. A non-nil
// error is always a *ShedError (errors.Is ErrShed) and means the
// request was rejected without running.
func (a *Admission) Admit(tenant string) (release func(), err error) {
	a.mu.Lock()
	if a.inflight < a.cfg.MaxConcurrent && a.queued == 0 {
		a.inflight++
		a.stats.Admitted++
		a.mu.Unlock()
		return a.releaseOnce(), nil
	}
	limit := a.cfg.MaxQueuePerTenant
	if a.level >= Shed {
		limit = a.cfg.ShedQueuePerTenant
	}
	tq := a.tenantLocked(tenant)
	if len(tq.q) >= limit {
		a.stats.ShedQueueFull++
		a.mu.Unlock()
		return nil, &ShedError{Tenant: tenant, Reason: "queue-full"}
	}
	if len(tq.q) == 0 && tq.pass < a.virt {
		tq.pass = a.virt // newly backlogged tenant starts at the global floor
	}
	w := &waiter{tenant: tenant, enq: a.env.Now(), f: sim.NewFuture[error](a.env)}
	tq.q = append(tq.q, w)
	a.queued++
	if a.queued > a.stats.MaxDepth {
		a.stats.MaxDepth = a.queued
	}
	a.mu.Unlock()

	if werr := w.f.Wait(); werr != nil {
		return nil, werr
	}
	return a.releaseOnce(), nil
}

// releaseOnce returns the slot-release closure handed to an admitted
// caller; it is idempotent so sloppy callers cannot corrupt the gate.
func (a *Admission) releaseOnce() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight--
			grant, shed := a.dispatchLocked()
			a.mu.Unlock()
			a.resolve(grant, shed)
		})
	}
}

// resolve wakes dispatched and shed waiters outside the gate mutex.
func (a *Admission) resolve(grant, shed []*waiter) {
	for _, w := range shed {
		w.f.Set(&ShedError{Tenant: w.tenant, Reason: "stale"})
	}
	for _, w := range grant {
		w.f.Set(nil)
	}
}

// dispatchLocked fills free slots from the queues: weighted-fair tenant
// selection (min pass, lexicographic tie-break), CoDel staleness check
// on each dequeued head. Returns the waiters to grant and to shed.
func (a *Admission) dispatchLocked() (grant, shed []*waiter) {
	now := a.env.Now()
	for a.inflight < a.cfg.MaxConcurrent && a.queued > 0 {
		tq := a.minPassLocked()
		w := tq.q[0]
		tq.q = tq.q[1:]
		a.queued--
		if a.staleLocked(now, now-w.enq) {
			a.stats.ShedStale++
			shed = append(shed, w)
			// Restart the interval measurement: at most one drop per
			// Interval of continued standing delay, so the queue drains
			// gradually instead of dumping its whole backlog.
			a.firstAbove = now
			continue
		}
		a.virt = tq.pass
		tq.pass += 1 / tq.weight
		a.inflight++
		a.stats.Admitted++
		grant = append(grant, w)
	}
	if a.queued == 0 {
		a.firstAbove = 0
	}
	return grant, shed
}

// minPassLocked picks the backlogged tenant with the smallest pass
// value, breaking ties by tenant name so dispatch order is a pure
// function of queue state.
func (a *Admission) minPassLocked() *tenantQueue {
	var best *tenantQueue
	var bestName string
	for name, tq := range a.tenants {
		if len(tq.q) == 0 {
			continue
		}
		if best == nil || tq.pass < best.pass || (tq.pass == best.pass && name < bestName) {
			best, bestName = tq, name
		}
	}
	return best
}

// staleLocked implements the CoDel drop decision for a head with the
// given sojourn time: sojourn must exceed Target, and must have done so
// continuously for Interval, before heads start being dropped.
func (a *Admission) staleLocked(now sim.Time, sojourn time.Duration) bool {
	if sojourn <= a.cfg.Target {
		a.firstAbove = 0
		return false
	}
	if a.firstAbove == 0 {
		a.firstAbove = now
		return false
	}
	return now-a.firstAbove >= a.cfg.Interval
}
