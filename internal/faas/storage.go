package faas

import (
	"ofc/internal/imoc"
	"ofc/internal/objstore"
	"ofc/internal/simnet"
	"ofc/internal/store"
)

// backendStorage binds function bodies to a bare storage engine — no
// proxy policy, no hit accounting, just the Storage verbs over a
// store.Backend. It is the baseline data plane of §7.2 expressed
// against the same interface the full OFC proxy uses.
type backendStorage struct {
	be store.Backend
}

// NewBackendStorage adapts any storage engine to the platform's
// Storage interface.
func NewBackendStorage(be store.Backend) Storage {
	return &backendStorage{be: be}
}

// NewRSDSStorage binds function bodies directly to the RSDS (the
// OWK-Swift configuration of §7.2) — the direct-passthrough engine
// with nothing stacked on top.
func NewRSDSStorage(st *objstore.Store) Storage {
	return NewBackendStorage(store.NewPassthrough(st))
}

func (s *backendStorage) Get(caller simnet.NodeID, key string, _ PutOpts) (Blob, error) {
	blob, _, err := s.be.Read(caller, key)
	return blob, err
}

func (s *backendStorage) Put(caller simnet.NodeID, key string, blob Blob, _ PutOpts) error {
	_, err := s.be.Write(caller, key, blob, nil, caller)
	return err
}

func (s *backendStorage) Delete(caller simnet.NodeID, key string) error {
	return s.be.Delete(caller, key)
}

// imocStorage is the OWK-Redis baseline: all data lives in a
// centralized in-memory cache the tenant provisioned (§7.2's best-case
// data access time).
type imocStorage struct {
	cache *imoc.Cache
}

// NewIMOCStorage binds function bodies to the Redis-like cache.
func NewIMOCStorage(cache *imoc.Cache) Storage {
	return &imocStorage{cache: cache}
}

func (s *imocStorage) Get(caller simnet.NodeID, key string, _ PutOpts) (Blob, error) {
	return s.cache.Get(caller, key)
}

func (s *imocStorage) Put(caller simnet.NodeID, key string, blob Blob, _ PutOpts) error {
	s.cache.Set(caller, key, blob)
	return nil
}

func (s *imocStorage) Delete(caller simnet.NodeID, key string) error {
	s.cache.Del(caller, key)
	return nil
}
