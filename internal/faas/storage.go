package faas

import (
	"ofc/internal/imoc"
	"ofc/internal/objstore"
	"ofc/internal/simnet"
)

// rsdsStorage is the OWK-Swift baseline data plane: every Extract and
// Load goes straight to the remote store.
type rsdsStorage struct {
	store *objstore.Store
}

// NewRSDSStorage binds function bodies directly to the RSDS (the
// OWK-Swift configuration of §7.2).
func NewRSDSStorage(store *objstore.Store) Storage {
	return &rsdsStorage{store: store}
}

func (s *rsdsStorage) Get(caller simnet.NodeID, key string, _ PutOpts) (Blob, error) {
	blob, _, err := s.store.Get(caller, key, false)
	return blob, err
}

func (s *rsdsStorage) Put(caller simnet.NodeID, key string, blob Blob, _ PutOpts) error {
	s.store.Put(caller, key, blob, nil, false)
	return nil
}

func (s *rsdsStorage) Delete(caller simnet.NodeID, key string) error {
	return s.store.Delete(caller, key, false)
}

// imocStorage is the OWK-Redis baseline: all data lives in a
// centralized in-memory cache the tenant provisioned (§7.2's best-case
// data access time).
type imocStorage struct {
	cache *imoc.Cache
}

// NewIMOCStorage binds function bodies to the Redis-like cache.
func NewIMOCStorage(cache *imoc.Cache) Storage {
	return &imocStorage{cache: cache}
}

func (s *imocStorage) Get(caller simnet.NodeID, key string, _ PutOpts) (Blob, error) {
	return s.cache.Get(caller, key)
}

func (s *imocStorage) Put(caller simnet.NodeID, key string, blob Blob, _ PutOpts) error {
	s.cache.Set(caller, key, blob)
	return nil
}

func (s *imocStorage) Delete(caller simnet.NodeID, key string) error {
	s.cache.Del(caller, key)
	return nil
}
