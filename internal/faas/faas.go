// Package faas implements the OpenWhisk-like FaaS platform of the
// paper (§2.1): a Controller with a Loadbalancer that routes
// invocation requests to per-node Invokers, which manage container
// sandboxes with cold starts, keep-alive, per-invocation exclusivity
// and cgroup-style memory resizing.
//
// The platform is deliberately policy-open at the two points OFC
// modifies (Figure 4): an Advisor consulted before placement (memory
// prediction + cache-benefit flag) and a Router that picks the invoker
// (locality-aware routing, §6.5). Without those hooks the platform
// behaves like vanilla OWK: sandboxes sized at the tenant-booked
// memory, home-invoker hashing.
package faas

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/trace"
)

// Blob aliases the shared payload type.
type Blob = kvstore.Blob

// ObjKind classifies objects for the caching policy (§6.3).
type ObjKind int

const (
	// KindInput marks objects read as function inputs.
	KindInput ObjKind = iota
	// KindIntermediate marks outputs of intermediate pipeline stages,
	// discarded from the cache when the pipeline completes and never
	// persisted to the RSDS.
	KindIntermediate
	// KindFinal marks final outputs (single-stage functions or the
	// last stage of a pipeline), written back to the RSDS and then
	// dropped from the cache.
	KindFinal
)

// PutOpts carries write intent to the storage layer.
type PutOpts struct {
	Kind        ObjKind
	Pipeline    string // pipeline instance id; empty for single-stage
	ShouldCache bool   // the Predictor's caching-benefit verdict
	// Benefit is the Predictor's caching-benefit score in [0,1] (the
	// probability mass behind ShouldCache; 0 when no model advised).
	// Cost-aware eviction policies weigh it per object.
	Benefit float64
	// Trace links storage-layer spans to the invocation phase that
	// issued the operation (zero when tracing is off).
	Trace trace.Ref
}

// Storage is the data plane functions use for their Extract and Load
// phases. Implementations: direct RSDS (OWK-Swift), centralized IMOC
// (OWK-Redis) and OFC's rclib proxy.
type Storage interface {
	Get(caller simnet.NodeID, key string, opts PutOpts) (Blob, error)
	Put(caller simnet.NodeID, key string, blob Blob, opts PutOpts) error
	Delete(caller simnet.NodeID, key string) error
}

// Function is a registered cloud function.
type Function struct {
	Name   string
	Tenant string
	// MemoryBooked is the tenant-configured sandbox memory.
	MemoryBooked int64
	// InputType describes the media kind ("image", "audio", "video",
	// "text"); the ML module selects feature sets by it.
	InputType string
	// ArgNames lists the function-specific argument names, in the
	// order the ML module will see them. The platform knows names
	// only, never semantics (§5.1.2).
	ArgNames []string
	// Body is the function code.
	Body func(ctx *Ctx) error
}

// ID returns the registry key (tenant/name).
func (f *Function) ID() string { return f.Tenant + "/" + f.Name }

// Request is one invocation request.
type Request struct {
	Function *Function
	// Args are the function-specific arguments (opaque values).
	Args map[string]float64
	// InputKeys are the object identifiers among the arguments
	// (annotated per §5.1.2).
	InputKeys []string
	// InputFeatures carries the feature sidecars of the input objects
	// when available (extracted at object-creation time).
	InputFeatures map[string]float64
	// Pipeline, if non-empty, groups the invocation into a pipeline
	// instance.
	Pipeline string
	// FinalStage marks the last stage of a pipeline (outputs are
	// final, and pipeline intermediates are discarded afterwards).
	FinalStage bool

	// Fields filled in by the controller/advisor:
	predMem     int64
	shouldCache bool
	benefit     float64
	advised     bool
	tref        trace.Ref
}

// PredictedMem returns the advised sandbox memory (0 if not advised).
func (r *Request) PredictedMem() int64 { return r.predMem }

// Advised reports whether the Advisor's memory prediction was applied.
func (r *Request) Advised() bool { return r.advised }

// ShouldCache reports the Advisor's caching-benefit verdict.
func (r *Request) ShouldCache() bool { return r.shouldCache }

// Benefit reports the Advisor's caching-benefit score (0 if none).
func (r *Request) Benefit() float64 { return r.benefit }

// TraceRef returns the span the request is currently executing under
// (zero when tracing is off), so downstream layers can parent their
// spans to it.
func (r *Request) TraceRef() trace.Ref { return r.tref }

// Advice is the Advisor's verdict for one invocation.
type Advice struct {
	// Mem is the sandbox memory to provision (already conservatively
	// bumped by one interval, per §5.3).
	Mem int64
	// ShouldCache is the caching-benefit prediction (§5.2); Benefit is
	// the model's probability mass behind it, in [0,1].
	ShouldCache bool
	Benefit     float64
	// Use reports whether the advice should be applied; false before
	// the model matures (§5.3).
	Use bool
}

// Advisor is consulted by the controller before placement (OFC's
// Predictor).
type Advisor interface {
	Advise(req *Request) Advice
}

// Router picks the invoker for a request. warmIdle lists invokers with
// an idle warm sandbox for the function; all lists every invoker.
type Router interface {
	Route(req *Request, all []*Invoker, warmIdle []*Invoker) *Invoker
}

// CompletionObserver is notified after every invocation (OFC's Monitor
// feeds the ModelTrainer with it).
type CompletionObserver interface {
	OnComplete(req *Request, res *Result)
}

// MemoryGovernor arbitrates node memory between sandboxes and the
// cache (OFC's cacheAgent). Reclaim must free `need` bytes of cache
// grant on node before returning; it reports the virtual time spent
// shrinking (the Figure 8 "scaling" cost).
type MemoryGovernor interface {
	Reclaim(node simnet.NodeID, need int64) (time.Duration, error)
}

// AdmissionController gates invocations at the controller before any
// work is done (the overload layer's bounded queue). Admit blocks the
// calling process until the request may proceed, returning a release
// function the platform calls on completion; a non-nil error rejects
// the invocation without running it.
type AdmissionController interface {
	Admit(req *Request) (release func(), err error)
}

// RetryPolicy arbitrates re-executions — OOM retries and reroutes of
// lost activations — so failures cannot amplify into retry storms
// (the overload layer's shared retry budget).
type RetryPolicy interface {
	AllowRetry(req *Request, cause error) bool
}

// Result is the outcome of an invocation.
type Result struct {
	Start, End sim.Time
	// Phase durations (§2.2.3's E, T, L decomposition).
	Extract, Transform, Load time.Duration
	// QueueDelay covers controller + placement + sandbox acquisition.
	QueueDelay time.Duration
	// PeakMem is the observed peak memory of the invocation.
	PeakMem int64
	// SandboxMem is the sandbox limit the invocation ran under
	// (after any rescue resize).
	SandboxMem int64
	// InitialMem is the sandbox limit initially provisioned.
	InitialMem int64
	ColdStart  bool
	// Retried reports an OOM kill followed by a retry at booked
	// memory (§5.3).
	Retried bool
	// Rescued reports an in-flight memory-cap raise by the Monitor.
	Rescued bool
	// Swapped reports swap-degraded execution (slight memory
	// overshoot absorbed by the kernel instead of an OOM kill).
	Swapped bool
	// ScaleDownTime is cache-shrink time charged on the setup path
	// (Figure 8).
	ScaleDownTime time.Duration
	// BytesIn and BytesOut are the payload volumes of the Extract and
	// Load phases, and ReadOps/WriteOps the operation counts (the
	// Observer estimates uncached E/L from them).
	BytesIn, BytesOut int64
	ReadOps, WriteOps int64
	Node              simnet.NodeID
	Err               error
}

// Duration is the end-to-end invocation latency.
func (r *Result) Duration() time.Duration { return time.Duration(r.End - r.Start) }

// Errors.
var (
	ErrOOM          = errors.New("faas: invocation killed by OOM")
	ErrNoCapacity   = errors.New("faas: no invoker has capacity")
	ErrUnregistered = errors.New("faas: function not registered")
	ErrInvokerDown  = errors.New("faas: invoker node went down")
	// ErrRetryBudget marks an invocation whose re-execution the
	// RetryPolicy denied; it wraps the underlying cause (ErrOOM or
	// ErrInvokerDown), so errors.Is matches both.
	ErrRetryBudget = errors.New("faas: retry denied by retry budget")
)

// Config carries the platform's timing constants, calibrated to the
// paper's measurements (§6.4, §7.2.1).
type Config struct {
	// ControllerOverhead + InvokerOverhead ≈ the 8 ms end-to-end cost
	// of an empty function through the distributed OWK.
	ControllerOverhead time.Duration
	InvokerOverhead    time.Duration
	// ColdStart is the sandbox creation cost.
	ColdStart time.Duration
	// KeepAlive is the idle sandbox lifetime (600 s in OWK).
	KeepAlive time.Duration
	// ResizeLatency is the cgroup+docker update cost (≈24 ms), of
	// which ResizeSyscall is the kernel part (≈0.8 ms).
	ResizeLatency time.Duration
	ResizeSyscall time.Duration
	// MinSandboxMem is OWK's smallest configurable memory (64 MB).
	MinSandboxMem int64
	// MaxSandboxMem is OWK's permitted ceiling (2 GB).
	MaxSandboxMem int64
	// MonitorPoll is the Monitor's cgroup sampling period; rescue
	// applies only to invocations at least MonitorMinRuntime long.
	MonitorPoll       time.Duration
	MonitorMinRuntime time.Duration
	// AdviceOverhead is the Predictor+Sizer cost on the critical path
	// (≈6 ms, §7.2.1), charged only when an Advisor is configured.
	AdviceOverhead time.Duration
	// SwapTolerance is the fractional memory overshoot the kernel
	// absorbs by swapping instead of OOM-killing; SwapSlowdown scales
	// the transform-time penalty per unit of overshoot (§5.3's
	// "swapping activity, resulting in degraded performance").
	SwapTolerance float64
	SwapSlowdown  float64
}

// DefaultConfig returns the paper-calibrated constants.
func DefaultConfig() Config {
	return Config{
		ControllerOverhead: 5 * time.Millisecond,
		InvokerOverhead:    3 * time.Millisecond,
		ColdStart:          500 * time.Millisecond,
		KeepAlive:          600 * time.Second,
		ResizeLatency:      24 * time.Millisecond,
		ResizeSyscall:      800 * time.Microsecond,
		MinSandboxMem:      64 << 20,
		MaxSandboxMem:      2 << 30,
		MonitorPoll:        time.Second,
		MonitorMinRuntime:  3 * time.Second,
		AdviceOverhead:     6 * time.Millisecond,
		SwapTolerance:      0.08,
		SwapSlowdown:       8,
	}
}

// Platform is the whole FaaS deployment.
type Platform struct {
	env  *sim.Env
	net  *simnet.Network
	cfg  Config
	ctrl simnet.NodeID

	mu          sync.Mutex
	functions   map[string]*Function
	sequences   map[string]*Sequence
	invokers    []*Invoker
	activations *activationLog

	// Policy hooks (nil = vanilla OWK behavior).
	Advisor  Advisor
	Router   Router
	Observer CompletionObserver
	Governor MemoryGovernor
	// Admission gates invocations before any work; Retry arbitrates
	// re-executions (overload control hooks; nil = unbounded).
	Admission AdmissionController
	Retry     RetryPolicy
	// Tracer records per-invocation spans (nil = tracing off; every
	// call through a nil tracer fast-paths out without allocating).
	// Like the other hooks, set it before traffic starts.
	Tracer *trace.Tracer
	// MonitorEnabled turns on the §5.3 in-flight memory rescue.
	MonitorEnabled bool

	stats atomicStats
}

// Stats aggregates platform counters.
type Stats struct {
	Invocations int64
	ColdStarts  int64
	WarmStarts  int64
	OOMKills    int64
	Retries     int64
	Rescues     int64
	Swaps       int64
	Failures    int64
	// Reroutes counts invocations replayed on another worker after
	// their invoker died mid-run (the controller resubmits, as OWK
	// does for lost activations).
	Reroutes int64
	// Shed counts invocations rejected by the AdmissionController
	// before running; RetryDenied counts re-executions refused by the
	// RetryPolicy (the invocation then fails with ErrRetryBudget).
	Shed        int64
	RetryDenied int64
}

// atomicStats holds the hot-path counters as per-field atomics: every
// invocation bumps several of them, and a shared stats mutex there is
// pure contention (the kvstore/simnet counter pattern).
type atomicStats struct {
	invocations atomic.Int64
	coldStarts  atomic.Int64
	warmStarts  atomic.Int64
	oomKills    atomic.Int64
	retries     atomic.Int64
	rescues     atomic.Int64
	swaps       atomic.Int64
	failures    atomic.Int64
	reroutes    atomic.Int64
	shed        atomic.Int64
	retryDenied atomic.Int64
}

func (s *atomicStats) snapshot() Stats {
	return Stats{
		Invocations: s.invocations.Load(),
		ColdStarts:  s.coldStarts.Load(),
		WarmStarts:  s.warmStarts.Load(),
		OOMKills:    s.oomKills.Load(),
		Retries:     s.retries.Load(),
		Rescues:     s.rescues.Load(),
		Swaps:       s.swaps.Load(),
		Failures:    s.failures.Load(),
		Reroutes:    s.reroutes.Load(),
		Shed:        s.shed.Load(),
		RetryDenied: s.retryDenied.Load(),
	}
}

// New creates a platform whose controller runs on ctrlNode.
func New(net *simnet.Network, ctrlNode simnet.NodeID, cfg Config) *Platform {
	return &Platform{
		env:         net.Env(),
		net:         net,
		cfg:         cfg,
		ctrl:        ctrlNode,
		functions:   make(map[string]*Function),
		activations: newActivationLog(0),
	}
}

// Env returns the simulation environment.
func (p *Platform) Env() *sim.Env { return p.env }

// Net returns the cluster fabric.
func (p *Platform) Net() *simnet.Network { return p.net }

// Config returns the platform constants.
func (p *Platform) Config() Config { return p.cfg }

// Stats returns a copy of the platform counters.
func (p *Platform) Stats() Stats { return p.stats.snapshot() }

// Register adds a function to the registry.
func (p *Platform) Register(f *Function) {
	if f.MemoryBooked <= 0 {
		f.MemoryBooked = p.cfg.MaxSandboxMem
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.functions[f.ID()] = f
}

// Lookup finds a registered function.
func (p *Platform) Lookup(id string) (*Function, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.functions[id]
	return f, ok
}

// AddInvoker starts a worker on node with the given memory capacity
// and storage binding for function bodies.
func (p *Platform) AddInvoker(node simnet.NodeID, capacity int64, storage Storage) *Invoker {
	inv := newInvoker(p, node, capacity, storage)
	p.mu.Lock()
	p.invokers = append(p.invokers, inv)
	p.mu.Unlock()
	return inv
}

// Invokers returns the worker list.
func (p *Platform) Invokers() []*Invoker {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Invoker, len(p.invokers))
	copy(out, p.invokers)
	return out
}

// InvokerOn returns the worker running on node, or nil.
func (p *Platform) InvokerOn(node simnet.NodeID) *Invoker {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, inv := range p.invokers {
		if inv.node.ID == node {
			return inv
		}
	}
	return nil
}

// homeIndex is OWK's hash-based home invoker for a function.
func (p *Platform) homeIndex(f *Function, n int) int {
	h := fnv.New32a()
	h.Write([]byte(f.ID()))
	return int(h.Sum32()) % n
}
