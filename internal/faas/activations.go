package faas

import (
	"fmt"
	"sync"
	"time"
)

// OpenWhisk records every invocation as an "activation" queryable
// later (`wsk activation list/get`). The platform keeps a bounded
// in-memory activation log with the same shape.

// Activation is the queryable record of one invocation.
type Activation struct {
	ID       string
	Function string
	Start    time.Duration
	End      time.Duration
	Duration time.Duration
	Node     int
	Cold     bool
	Retried  bool
	Rescued  bool
	Error    string
	// Phase breakdown (an OFC addition to the record).
	Extract, Transform, Load time.Duration
	PeakMemMB                int64
	SandboxMemMB             int64
}

// activationLog is a bounded ring of activations.
type activationLog struct {
	mu   sync.Mutex
	next uint64
	ring []Activation
	cap  int
}

const defaultActivationCap = 4096

func newActivationLog(capacity int) *activationLog {
	if capacity <= 0 {
		capacity = defaultActivationCap
	}
	return &activationLog{cap: capacity}
}

// record appends an activation, evicting the oldest past capacity.
func (l *activationLog) record(a Activation) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	a.ID = fmt.Sprintf("act-%08d", l.next)
	if len(l.ring) >= l.cap {
		copy(l.ring, l.ring[1:])
		l.ring[len(l.ring)-1] = a
	} else {
		l.ring = append(l.ring, a)
	}
	return a.ID
}

// list returns up to n most recent activations, newest first.
func (l *activationLog) list(n int) []Activation {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.ring) {
		n = len(l.ring)
	}
	out := make([]Activation, 0, n)
	for i := len(l.ring) - 1; i >= len(l.ring)-n; i-- {
		out = append(out, l.ring[i])
	}
	return out
}

// get finds an activation by id.
func (l *activationLog) get(id string) (Activation, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.ring) - 1; i >= 0; i-- {
		if l.ring[i].ID == id {
			return l.ring[i], true
		}
	}
	return Activation{}, false
}

// recordActivation files the result of a completed invocation.
func (p *Platform) recordActivation(req *Request, res *Result) string {
	a := Activation{
		Function: req.Function.ID(),
		Start:    time.Duration(res.Start),
		End:      time.Duration(res.End),
		Duration: res.Duration(),
		Node:     int(res.Node),
		Cold:     res.ColdStart,
		Retried:  res.Retried,
		Rescued:  res.Rescued,
		Extract:  res.Extract, Transform: res.Transform, Load: res.Load,
		PeakMemMB:    res.PeakMem >> 20,
		SandboxMemMB: res.SandboxMem >> 20,
	}
	if res.Err != nil {
		a.Error = res.Err.Error()
	}
	return p.activations.record(a)
}

// Activations returns up to n most recent activation records, newest
// first (n ≤ 0 returns all retained).
func (p *Platform) Activations(n int) []Activation {
	return p.activations.list(n)
}

// Activation looks one record up by id.
func (p *Platform) Activation(id string) (Activation, bool) {
	return p.activations.get(id)
}
