package faas

import (
	"sync"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// sandboxState tracks the lifecycle of a container.
type sandboxState int

const (
	sandboxIdle sandboxState = iota
	sandboxBusy
	sandboxDead
)

// Sandbox is a function container: one function, one invocation at a
// time, kept alive between invocations.
type Sandbox struct {
	fn       *Function
	mem      int64 // current cgroup memory limit
	state    sandboxState
	lastUsed sim.Time
	created  sim.Time
	epoch    int64 // bumps on every use; stale keep-alive timers check it
}

// Invoker is the per-node worker component: it reports node status to
// the Loadbalancer, creates and resizes sandboxes, and runs
// invocations.
type Invoker struct {
	p        *Platform
	node     *simnet.Node
	capacity int64

	// storage is the node-local data-plane binding handed to function
	// bodies.
	storage Storage

	mu         sync.Mutex
	down       bool // node fail-stopped; no placements until restart
	sandboxes  map[*Sandbox]struct{}
	reserved   int64 // Σ sandbox memory limits
	cacheGrant int64 // bytes currently granted to the co-located cache

	// stats
	created, expired int64
}

func newInvoker(p *Platform, node simnet.NodeID, capacity int64, storage Storage) *Invoker {
	return &Invoker{
		p:         p,
		node:      p.net.Node(node),
		capacity:  capacity,
		storage:   storage,
		sandboxes: make(map[*Sandbox]struct{}),
	}
}

// Node returns the worker's node id.
func (inv *Invoker) Node() simnet.NodeID { return inv.node.ID }

// Down reports whether the worker's node is fail-stopped.
func (inv *Invoker) Down() bool {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.down
}

// SetDown fail-stops or revives the worker. Going down kills every
// sandbox (the containers die with the machine) and zeroes both the
// sandbox reservations and the cache grant; the node comes back empty.
func (inv *Invoker) SetDown(down bool) {
	inv.mu.Lock()
	inv.down = down
	if down {
		for sb := range inv.sandboxes {
			sb.state = sandboxDead
			delete(inv.sandboxes, sb)
			inv.expired++
		}
		inv.reserved = 0
		inv.cacheGrant = 0
	}
	inv.mu.Unlock()
}

// Capacity returns the node's total sandbox-usable memory.
func (inv *Invoker) Capacity() int64 { return inv.capacity }

// Reserved returns the memory currently reserved by sandboxes.
func (inv *Invoker) Reserved() int64 {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.reserved
}

// CacheGrant returns the bytes currently granted to the cache.
func (inv *Invoker) CacheGrant() int64 {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.cacheGrant
}

// SetCacheGrant adjusts the cache's share of node memory. Growing the
// grant beyond free capacity is rejected (returns the grant actually
// in force).
func (inv *Invoker) SetCacheGrant(bytes int64) int64 {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if max := inv.capacity - inv.reserved; bytes > max {
		bytes = max
	}
	if bytes < 0 {
		bytes = 0
	}
	inv.cacheGrant = bytes
	return bytes
}

// FreeForSandboxes is the memory available for new sandbox
// reservations without shrinking the cache.
func (inv *Invoker) FreeForSandboxes() int64 {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.capacity - inv.reserved - inv.cacheGrant
}

// FreeForCache is the memory the cache could grow into: capacity not
// reserved by sandboxes, minus its current grant.
func (inv *Invoker) FreeForCache() int64 {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.capacity - inv.reserved - inv.cacheGrant
}

// BookedWaste is the memory tenants booked for the live sandboxes but
// that the sandboxes do not hold — the quantity OFC is entitled to
// hoard ("the difference between the booked memory and the predicted
// size is used for increasing the size of the cache", §1).
func (inv *Invoker) BookedWaste() int64 {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	var waste int64
	for sb := range inv.sandboxes {
		if d := sb.fn.MemoryBooked - sb.mem; d > 0 {
			waste += d
		}
	}
	return waste
}

// idleSandbox returns an idle warm sandbox for fn, or nil. The
// preferred selection among several idle sandboxes follows §6.5:
// smallest |current - wanted| memory gap first, most recently used as
// tie-break.
func (inv *Invoker) idleSandbox(fn *Function, wanted int64) *Sandbox {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	var best *Sandbox
	var bestGap int64
	for sb := range inv.sandboxes {
		if sb.fn != fn || sb.state != sandboxIdle {
			continue
		}
		gap := sb.mem - wanted
		if gap < 0 {
			gap = -gap
		}
		if best == nil || gap < bestGap || (gap == bestGap && sb.lastUsed > best.lastUsed) {
			best, bestGap = sb, gap
		}
	}
	return best
}

// HasIdleSandbox reports whether a warm idle sandbox exists for fn.
func (inv *Invoker) HasIdleSandbox(fn *Function) bool {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	for sb := range inv.sandboxes {
		if sb.fn == fn && sb.state == sandboxIdle {
			return true
		}
	}
	return false
}

// IdleSandboxMem returns the memory of the best idle sandbox for fn
// and whether one exists (the §6.5 routing criterion (i)).
func (inv *Invoker) IdleSandboxMem(fn *Function, wanted int64) (int64, bool) {
	sb := inv.idleSandbox(fn, wanted)
	if sb == nil {
		return 0, false
	}
	return sb.mem, true
}

// reserve grabs bytes of sandbox memory, shrinking the cache through
// the Governor when needed. It returns the cache-scaling time spent on
// the critical path.
func (inv *Invoker) reserve(bytes int64) (time.Duration, error) {
	inv.mu.Lock()
	free := inv.capacity - inv.reserved - inv.cacheGrant
	if free >= bytes {
		inv.reserved += bytes
		inv.mu.Unlock()
		return 0, nil
	}
	need := bytes - free
	canTakeFromCache := inv.cacheGrant >= need
	inv.mu.Unlock()
	if !canTakeFromCache || inv.p.Governor == nil {
		if canTakeFromCache && inv.p.Governor == nil {
			// No governor: take the grant directly.
			inv.mu.Lock()
			inv.cacheGrant -= need
			inv.reserved += bytes
			inv.mu.Unlock()
			return 0, nil
		}
		return 0, ErrNoCapacity
	}
	took, err := inv.p.Governor.Reclaim(inv.node.ID, need)
	if err != nil {
		return took, err
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if inv.capacity-inv.reserved-inv.cacheGrant < bytes {
		// Governor freed the grant but someone raced us; treat as no
		// capacity rather than looping (callers retry at a higher level).
		return took, ErrNoCapacity
	}
	inv.reserved += bytes
	return took, nil
}

// release returns sandbox memory to the free pool.
func (inv *Invoker) release(bytes int64) {
	inv.mu.Lock()
	inv.reserved -= bytes
	if inv.reserved < 0 {
		inv.reserved = 0
	}
	inv.mu.Unlock()
}

// createSandbox cold-starts a container with the given memory.
func (inv *Invoker) createSandbox(fn *Function, mem int64) (*Sandbox, time.Duration, error) {
	scale, err := inv.reserve(mem)
	if err != nil {
		return nil, scale, err
	}
	inv.p.env.Sleep(inv.p.cfg.ColdStart)
	sb := &Sandbox{fn: fn, mem: mem, state: sandboxBusy, created: inv.p.env.Now(), lastUsed: inv.p.env.Now()}
	inv.mu.Lock()
	inv.sandboxes[sb] = struct{}{}
	inv.created++
	inv.mu.Unlock()
	return sb, scale, nil
}

// resize updates a sandbox's memory limit. Per §6.4 the cgroup call is
// executed asynchronously off the invocation critical path; growing
// may first require the cache to shrink (critical-path cost returned).
func (inv *Invoker) resize(sb *Sandbox, newMem int64) (time.Duration, error) {
	var scale time.Duration
	delta := newMem - sb.mem
	if delta > 0 {
		var err error
		scale, err = inv.reserve(delta)
		if err != nil {
			return scale, err
		}
	} else if delta < 0 {
		inv.release(-delta)
	}
	sb.mem = newMem
	// The cgroup syscall + docker update run asynchronously.
	inv.p.env.Go(func() { inv.p.env.Sleep(inv.p.cfg.ResizeLatency) })
	return scale, nil
}

// destroySandbox retires a container and frees its memory.
func (inv *Invoker) destroySandbox(sb *Sandbox) {
	inv.mu.Lock()
	if sb.state == sandboxDead {
		inv.mu.Unlock()
		return
	}
	sb.state = sandboxDead
	delete(inv.sandboxes, sb)
	inv.expired++
	inv.mu.Unlock()
	inv.release(sb.mem)
}

// parkSandbox moves a sandbox to idle and arms its keep-alive timer.
func (inv *Invoker) parkSandbox(sb *Sandbox) {
	inv.mu.Lock()
	sb.state = sandboxIdle
	sb.lastUsed = inv.p.env.Now()
	sb.epoch++
	epoch := sb.epoch
	inv.mu.Unlock()
	inv.p.env.After(inv.p.cfg.KeepAlive, func() {
		inv.mu.Lock()
		stale := sb.epoch != epoch || sb.state != sandboxIdle
		inv.mu.Unlock()
		if !stale {
			inv.destroySandbox(sb)
		}
	})
}

// claim atomically takes an idle sandbox for a new invocation.
func (inv *Invoker) claim(sb *Sandbox) bool {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if sb.state != sandboxIdle {
		return false
	}
	sb.state = sandboxBusy
	sb.epoch++
	return true
}

// SandboxCount reports live sandboxes (idle + busy).
func (inv *Invoker) SandboxCount() int {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return len(inv.sandboxes)
}

// Lifecycle reports cumulative created/expired sandbox counters.
func (inv *Invoker) Lifecycle() (created, expired int64) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.created, inv.expired
}

// Reserve grabs sandbox memory directly, as if a sandbox of that size
// were created. Exposed for experiments that synthesize memory
// pressure (e.g., the Figure 8 scaling scenarios) and for tests.
func (inv *Invoker) Reserve(bytes int64) (time.Duration, error) { return inv.reserve(bytes) }

// ReleaseMem returns memory taken with Reserve.
func (inv *Invoker) ReleaseMem(bytes int64) { inv.release(bytes) }
