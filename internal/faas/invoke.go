package faas

import (
	"errors"
	"fmt"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// PipelineAware is implemented by storage layers that track pipeline
// intermediates (OFC's rclib); the controller notifies them when a
// pipeline instance completes so intermediates can be discarded (§6.3).
type PipelineAware interface {
	PipelineDone(pipeline string)
}

// Invoke runs one function invocation end to end and blocks the
// calling process until completion. It must be called from a
// simulation process.
func (p *Platform) Invoke(req *Request) *Result {
	res := &Result{Start: p.env.Now()}
	idx := p.stats.invocations.Add(1)

	// The root span of the invocation's trace. Every tracer call below
	// is nil-safe: with tracing off, root is the inert zero Span and
	// req.tref stays zero.
	tr := p.Tracer
	root := tr.Begin(tr.InvocationTrace(idx), 0, "invoke", p.ctrl)
	req.tref = root.Ref()

	fn := req.Function
	if fn == nil {
		res.Err = ErrUnregistered
		res.End = p.env.Now()
		root.SetNum("err", 1)
		tr.End(&root)
		return res
	}
	root.SetStr("fn", fn.ID())

	// Overload gate: queue (or reject) before spending any platform
	// work. The wait shows up in QueueDelay; a shed invocation is
	// recorded and observed like any other completed activation so the
	// log stays whole, but it never counts as a platform failure — it
	// was refused, not broken.
	if p.Admission != nil {
		qsp := tr.Begin(root.Trace, root.ID, "queue", p.ctrl)
		release, err := p.Admission.Admit(req)
		if err != nil {
			qsp.SetNum("shed", 1)
			tr.End(&qsp)
			p.stats.shed.Add(1)
			res.Err = err
			res.End = p.env.Now()
			res.QueueDelay = time.Duration(res.End - res.Start)
			root.SetNum("shed", 1)
			tr.End(&root)
			p.recordActivation(req, res)
			if p.Observer != nil {
				p.Observer.OnComplete(req, res)
			}
			return res
		}
		tr.End(&qsp)
		defer release()
	}

	// Controller receives the request.
	p.env.Sleep(p.cfg.ControllerOverhead)

	// Consult the Predictor (OFC) before placement. The advice span
	// covers the §7.2.1 critical-path overhead plus the lookup; the
	// Predictor's own "predict" span nests under it via req.tref.
	wanted := fn.MemoryBooked
	if p.Advisor != nil {
		asp := tr.Begin(root.Trace, root.ID, "advice", p.ctrl)
		if asp.ID != 0 {
			req.tref = asp.Ref()
		}
		p.env.Sleep(p.cfg.AdviceOverhead)
		adv := p.Advisor.Advise(req)
		req.tref = root.Ref()
		if adv.Use {
			req.advised = true
			req.predMem = clamp(adv.Mem, p.cfg.MinSandboxMem, min64(fn.MemoryBooked, p.cfg.MaxSandboxMem))
			wanted = req.predMem
			asp.SetNum("use", 1)
		} else {
			asp.SetNum("use", 0)
		}
		req.shouldCache = adv.ShouldCache
		req.benefit = adv.Benefit
		tr.End(&asp)
	}

	attempts := 0
	exec := func(w int64) error {
		attempts++
		return p.execute(req, w, res, attempts)
	}
	attempt := exec(wanted)
	if errors.Is(attempt, ErrOOM) {
		// The kill happened regardless of what the retry budget says, so
		// it is counted unconditionally; only the re-execution is
		// arbitrated. A denied retry surfaces as ErrRetryBudget wrapping
		// the OOM — typed, not silent — and the activation record below
		// is written either way.
		p.stats.oomKills.Add(1)
		if p.Retry == nil || p.Retry.AllowRetry(req, attempt) {
			// §5.3: immediate retry with the tenant-booked memory.
			p.stats.retries.Add(1)
			res.Retried = true
			req.advised = false
			attempt = exec(fn.MemoryBooked)
		} else {
			p.stats.retryDenied.Add(1)
			attempt = fmt.Errorf("%w: %w", ErrRetryBudget, attempt)
		}
	}
	// A worker dying mid-run loses the activation; the controller
	// resubmits on a surviving node, bounded so a collapsing cluster
	// still terminates. Reroutes draw on the same retry budget.
	for rr := 0; errors.Is(attempt, ErrInvokerDown) && rr < 3; rr++ {
		if p.Retry != nil && !p.Retry.AllowRetry(req, attempt) {
			p.stats.retryDenied.Add(1)
			attempt = fmt.Errorf("%w: %w", ErrRetryBudget, attempt)
			break
		}
		p.stats.reroutes.Add(1)
		attempt = exec(wanted)
	}
	res.Err = attempt
	if attempt != nil {
		p.stats.failures.Add(1)
		root.SetNum("err", 1)
	}
	res.End = p.env.Now()
	res.QueueDelay = time.Duration(res.End-res.Start) - res.Extract - res.Transform - res.Load
	if res.Retried {
		root.SetNum("oomRetry", 1)
	}
	if attempts > 1 {
		root.SetNum("attempts", int64(attempts))
	}
	tr.End(&root)

	p.recordActivation(req, res)
	if p.Observer != nil {
		p.Observer.OnComplete(req, res)
	}
	return res
}

// PlacementObserver is notified right after a sandbox has been
// provisioned for an invocation, before the body runs (OFC's
// cacheAgent grows the cache with the sandbox's booked-but-unused
// memory at this point, §4).
type PlacementObserver interface {
	OnPlaced(node simnet.NodeID)
}

// execute performs one placement + sandbox acquisition + body run.
// attempt is 1 for the first try, higher for OOM retries and reroutes.
func (p *Platform) execute(req *Request, wanted int64, res *Result, attempt int) error {
	fn := req.Function
	tr := p.Tracer
	esp := tr.Begin(req.tref.Trace, req.tref.Span, "execute", p.ctrl)
	esp.SetNum("attempt", int64(attempt))
	qsp := tr.Begin(esp.Trace, esp.ID, "acquire", p.ctrl)
	inv, sb, cold, scale, err := p.acquire(req, wanted)
	if err != nil {
		qsp.SetNum("err", 1)
		tr.End(&qsp)
		esp.SetNum("err", 1)
		tr.End(&esp)
		return err
	}
	qsp.Node = inv.node.ID
	if cold {
		qsp.SetNum("cold", 1)
	}
	tr.End(&qsp)
	esp.Node = inv.node.ID
	if po, ok := p.Observer.(PlacementObserver); ok {
		po.OnPlaced(inv.node.ID)
	}
	res.Node = inv.node.ID
	res.ColdStart = res.ColdStart || cold
	res.ScaleDownTime += scale
	res.InitialMem = sb.mem
	if cold {
		p.stats.coldStarts.Add(1)
	} else {
		p.stats.warmStarts.Add(1)
	}

	ctx := &Ctx{p: p, inv: inv, sb: sb, req: req, execStart: p.env.Now(), tref: esp.Ref()}
	err = fn.Body(ctx)

	res.Extract += ctx.extract
	res.Transform += ctx.transform
	res.Load += ctx.load
	res.BytesIn += ctx.bytesIn
	res.BytesOut += ctx.bytesOut
	res.ReadOps += ctx.readOps
	res.WriteOps += ctx.writeOps
	if ctx.peakMem > res.PeakMem {
		res.PeakMem = ctx.peakMem
	}
	res.SandboxMem = sb.mem
	res.Rescued = res.Rescued || ctx.rescued
	res.Swapped = res.Swapped || ctx.swapped
	if ctx.rescued {
		p.stats.rescues.Add(1)
	}

	if errors.Is(err, ErrOOM) {
		// The OOM killer took the container down with the invocation.
		inv.destroySandbox(sb)
		esp.SetNum("oom", 1)
		tr.End(&esp)
		return ErrOOM
	}
	if inv.Down() {
		// The node died under the invocation: its sandbox and any
		// result are gone; the caller reroutes.
		esp.SetNum("invokerDown", 1)
		tr.End(&esp)
		return ErrInvokerDown
	}
	inv.parkSandbox(sb)

	// Pipeline bookkeeping: discard intermediates when the final stage
	// of a pipeline completes (§6.3).
	if err == nil && req.Pipeline != "" && req.FinalStage {
		if pa, ok := inv.storage.(PipelineAware); ok {
			pa.PipelineDone(req.Pipeline)
		}
	}
	tr.End(&esp)
	return err
}

// acquire routes the request and returns a busy sandbox ready to run
// it.
func (p *Platform) acquire(req *Request, wanted int64) (*Invoker, *Sandbox, bool, time.Duration, error) {
	const maxTries = 200
	for try := 0; ; try++ {
		invokers := p.Invokers()
		live := invokers[:0]
		for _, inv := range invokers {
			if !inv.Down() {
				live = append(live, inv)
			}
		}
		invokers = live
		if len(invokers) == 0 {
			return nil, nil, false, 0, ErrNoCapacity
		}
		var warmIdle []*Invoker
		for _, inv := range invokers {
			if inv.HasIdleSandbox(req.Function) {
				warmIdle = append(warmIdle, inv)
			}
		}
		var target *Invoker
		if p.Router != nil {
			target = p.Router.Route(req, invokers, warmIdle)
		}
		if target == nil {
			target = p.defaultRoute(req, invokers, warmIdle, wanted)
		}
		if target == nil {
			if try >= maxTries {
				return nil, nil, false, 0, ErrNoCapacity
			}
			p.env.Sleep(10 * time.Millisecond)
			continue
		}

		// Controller -> invoker hop.
		if err := p.net.TryTransfer(p.ctrl, target.node.ID, 512); err != nil {
			// The worker died between routing and dispatch; pick
			// another one.
			if try >= maxTries {
				return nil, nil, false, 0, ErrNoCapacity
			}
			continue
		}
		p.env.Sleep(p.cfg.InvokerOverhead)

		if sb := target.idleSandbox(req.Function, wanted); sb != nil && target.claim(sb) {
			var scale time.Duration
			if req.advised && sb.mem != wanted {
				var err error
				scale, err = target.resize(sb, wanted)
				if err != nil {
					// Could not grow on this node: park it back and
					// fall through to another attempt.
					target.parkSandbox(sb)
					if try >= maxTries {
						return nil, nil, false, scale, ErrNoCapacity
					}
					p.env.Sleep(10 * time.Millisecond)
					continue
				}
			}
			return target, sb, false, scale, nil
		}
		// Cold start.
		sb, scale, err := target.createSandbox(req.Function, wanted)
		if err == nil {
			return target, sb, true, scale, nil
		}
		if try >= maxTries {
			return nil, nil, false, scale, ErrNoCapacity
		}
		p.env.Sleep(10 * time.Millisecond)
	}
}

// defaultRoute is vanilla OWK: a warm idle sandbox anywhere (home
// first), otherwise the home invoker if it has room, otherwise the
// first invoker with room (counting memory reclaimable from the
// cache).
func (p *Platform) defaultRoute(req *Request, all []*Invoker, warmIdle []*Invoker, wanted int64) *Invoker {
	n := len(all)
	home := p.homeIndex(req.Function, n)
	if len(warmIdle) > 0 {
		for i := 0; i < n; i++ {
			inv := all[(home+i)%n]
			for _, w := range warmIdle {
				if w == inv {
					return inv
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		inv := all[(home+i)%n]
		if inv.FreeForSandboxes() >= wanted {
			return inv
		}
	}
	// Allow placements that will shrink the cache.
	for i := 0; i < n; i++ {
		inv := all[(home+i)%n]
		if inv.Capacity()-inv.Reserved() >= wanted {
			return inv
		}
	}
	return nil
}

// RegisterSequence registers a named function composition (OWK's
// first-class "sequences", §2.1): invoking the sequence runs the
// member functions in order, each stage's single output key feeding
// the next stage's input.
func (p *Platform) RegisterSequence(tenant, name string, members ...*Function) *Sequence {
	seq := &Sequence{p: p, Tenant: tenant, Name: name, Members: members}
	p.mu.Lock()
	if p.sequences == nil {
		p.sequences = make(map[string]*Sequence)
	}
	p.sequences[tenant+"/"+name] = seq
	p.mu.Unlock()
	return seq
}

// Sequence is a registered function composition.
type Sequence struct {
	p       *Platform
	Tenant  string
	Name    string
	Members []*Function
}

// LookupSequence finds a registered sequence.
func (p *Platform) LookupSequence(id string) (*Sequence, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sequences[id]
	return s, ok
}

// Invoke runs the sequence: stage i+1 receives stage i's input keys
// unless chain is provided to derive them. The pipeline id groups the
// stages for intermediate cleanup.
func (s *Sequence) Invoke(pipeline string, firstInput []string, features map[string]float64, chain func(stage int, prev *Result) []string) []*Result {
	reqs := make([]*Request, 0, len(s.Members))
	keys := firstInput
	var results []*Result
	for i, fn := range s.Members {
		req := &Request{
			Function:      fn,
			Pipeline:      pipeline,
			FinalStage:    i == len(s.Members)-1,
			InputKeys:     keys,
			InputFeatures: features,
		}
		if i > 0 {
			s.p.env.Sleep(s.p.cfg.ControllerOverhead / 2)
		}
		res := s.p.Invoke(req)
		results = append(results, res)
		reqs = append(reqs, req)
		if res.Err != nil {
			break
		}
		if chain != nil {
			keys = chain(i, res)
		}
	}
	_ = reqs
	return results
}

// InvokeSequence runs requests one after another (an OWK "sequence"):
// each next stage is triggered by the platform upon completion of the
// previous one. It returns per-stage results.
func (p *Platform) InvokeSequence(reqs []*Request) []*Result {
	out := make([]*Result, 0, len(reqs))
	for i, req := range reqs {
		if i > 0 {
			// Platform-driven trigger of the next stage.
			p.env.Sleep(p.cfg.ControllerOverhead / 2)
		}
		res := p.Invoke(req)
		out = append(out, res)
		if res.Err != nil {
			break
		}
	}
	return out
}

// InvokeParallel fans out requests concurrently and waits for all of
// them (a parallel pipeline stage).
func (p *Platform) InvokeParallel(reqs []*Request) []*Result {
	out := make([]*Result, len(reqs))
	wg := sim.NewWaitGroup(p.env)
	for i, req := range reqs {
		i, req := i, req
		wg.Add(1)
		p.env.Go(func() {
			defer wg.Done()
			out[i] = p.Invoke(req)
		})
	}
	wg.Wait()
	return out
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// InvokeAsync fires an invocation without blocking (OpenWhisk's
// default invoke mode returns an activation id immediately); the
// returned future resolves to the Result.
func (p *Platform) InvokeAsync(req *Request) *sim.Future[*Result] {
	f := sim.NewFuture[*Result](p.env)
	p.env.Go(func() { f.Set(p.Invoke(req)) })
	return f
}
