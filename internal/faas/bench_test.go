package faas

import (
	"testing"

	"ofc/internal/kvstore"
)

// BenchmarkWarmInvocation measures the host cost of a full warm
// invocation through the platform (controller, routing, sandbox,
// body, storage).
func BenchmarkWarmInvocation(b *testing.B) {
	tb := newTestbed(1, 64<<30)
	fn := etlFn("bench", 0, 80<<20)
	tb.p.Register(fn)
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(16<<10), nil, false)
		req := &Request{Function: fn, InputKeys: []string{"in/a"}}
		tb.p.Invoke(req) // warm up
		for i := 0; i < b.N; i++ {
			if res := tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}}); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.ResetTimer()
	tb.env.Run()
}

// BenchmarkParallelFanOut measures a 16-wide parallel stage.
func BenchmarkParallelFanOut(b *testing.B) {
	tb := newTestbed(1, 64<<30)
	fn := &Function{Name: "fan", Tenant: "t", MemoryBooked: 128 << 20,
		Body: func(ctx *Ctx) error { return nil }}
	tb.p.Register(fn)
	tb.env.Go(func() {
		for i := 0; i < b.N; i++ {
			reqs := make([]*Request, 16)
			for j := range reqs {
				reqs[j] = &Request{Function: fn}
			}
			tb.p.InvokeParallel(reqs)
		}
	})
	b.ResetTimer()
	tb.env.Run()
}
