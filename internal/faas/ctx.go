package faas

import (
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
	"ofc/internal/trace"
)

// Ctx is the execution context a function body runs with. It exposes
// the ETL phases explicitly so the platform can account them the way
// the paper reports them (Figures 3 and 7).
type Ctx struct {
	p   *Platform
	inv *Invoker
	sb  *Sandbox
	req *Request

	execStart sim.Time
	tref      trace.Ref // the execute span the body runs under
	extract   time.Duration
	transform time.Duration
	load      time.Duration
	peakMem   int64
	bytesIn   int64
	bytesOut  int64
	readOps   int64
	writeOps  int64
	rescued   bool
	swapped   bool
	oomAt     int64 // memory demand that caused an OOM, for retry diagnostics
}

// Env returns the simulation environment.
func (c *Ctx) Env() *sim.Env { return c.p.env }

// Node returns the worker node the invocation runs on.
func (c *Ctx) Node() simnet.NodeID { return c.inv.node.ID }

// Args returns the function-specific arguments.
func (c *Ctx) Args() map[string]float64 { return c.req.Args }

// Arg returns one argument value (0 when absent).
func (c *Ctx) Arg(name string) float64 { return c.req.Args[name] }

// InputKeys returns the annotated object-identifier arguments.
func (c *Ctx) InputKeys() []string { return c.req.InputKeys }

// SandboxMem returns the current sandbox memory limit.
func (c *Ctx) SandboxMem() int64 { return c.sb.mem }

// Trace returns the execute span the body runs under (zero when
// tracing is off), so helper functions injected by the platform (the
// Persistor) can parent their spans to it.
func (c *Ctx) Trace() trace.Ref { return c.tref }

// putOpts assembles the storage intent for this invocation.
func (c *Ctx) putOpts(kind ObjKind) PutOpts {
	return PutOpts{Kind: kind, Pipeline: c.req.Pipeline, ShouldCache: c.req.shouldCache,
		Benefit: c.req.benefit, Trace: c.tref}
}

// Extract reads one input object, charging the Extract phase.
func (c *Ctx) Extract(key string) (Blob, error) {
	sp := c.p.Tracer.Begin(c.tref.Trace, c.tref.Span, "extract", c.inv.node.ID)
	opts := c.putOpts(KindInput)
	if sp.ID != 0 {
		opts.Trace = sp.Ref()
	}
	start := c.p.env.Now()
	blob, err := c.inv.storage.Get(c.inv.node.ID, key, opts)
	c.extract += time.Duration(c.p.env.Now() - start)
	if err == nil {
		c.bytesIn += blob.Size
		c.readOps++
	} else {
		sp.SetNum("err", 1)
	}
	c.p.Tracer.End(&sp)
	return blob, err
}

// Transform models the compute phase: duration d with a peak memory
// demand of peak bytes. If the demand exceeds the sandbox limit, the
// §5.3 semantics apply: long-running invocations are rescued by the
// Monitor raising the cgroup cap; short ones are OOM-killed (the
// platform retries them at the tenant-booked memory).
func (c *Ctx) Transform(d time.Duration, peak int64) error {
	sp := c.p.Tracer.Begin(c.tref.Trace, c.tref.Span, "transform", c.inv.node.ID)
	err := c.transformInner(d, peak)
	if err != nil {
		sp.SetNum("oom", 1)
	}
	c.p.Tracer.End(&sp)
	return err
}

// transformInner is Transform's body (the wrapper owns the span).
func (c *Ctx) transformInner(d time.Duration, peak int64) error {
	start := c.p.env.Now()
	defer func() { c.transform += time.Duration(c.p.env.Now() - start) }()
	if peak > c.peakMem {
		c.peakMem = peak
	}
	if peak <= c.sb.mem {
		c.p.env.Sleep(d)
		return nil
	}
	// Slight overshoot: the kernel swaps instead of killing (§5.3
	// "it may experience swapping activity, resulting in degraded
	// performance"). The transform slows proportionally.
	if overshoot := float64(peak-c.sb.mem) / float64(c.sb.mem); overshoot <= c.p.cfg.SwapTolerance {
		c.swapped = true
		c.p.stats.swaps.Add(1)
		c.p.env.Sleep(d + time.Duration(float64(d)*overshoot*c.p.cfg.SwapSlowdown))
		return nil
	}
	// Memory pressure.
	if c.p.MonitorEnabled && d >= c.p.cfg.MonitorMinRuntime {
		// The Monitor's periodic cgroup poll notices the pressure and
		// asks the Sizer to raise the cap (§5.3): we charge half a
		// poll period of exposure plus the reservation work; the
		// cgroup syscall itself is asynchronous.
		c.p.env.Sleep(c.p.cfg.MonitorPoll / 2)
		target := peak + peak/10 // 10% headroom
		if target > c.req.Function.MemoryBooked {
			target = c.req.Function.MemoryBooked
		}
		if target < peak {
			// Even the booked memory cannot satisfy the demand: the
			// tenant under-provisioned; the invocation dies for real.
			c.oomAt = peak
			c.p.env.Sleep(d / 4)
			return ErrOOM
		}
		if _, err := c.inv.resize(c.sb, target); err != nil {
			c.oomAt = peak
			return ErrOOM
		}
		c.rescued = true
		c.p.env.Sleep(d)
		return nil
	}
	// Short invocation: the OOM killer terminates the container
	// partway through the transform.
	c.oomAt = peak
	kill := d / 4
	if kill > 200*time.Millisecond {
		kill = 200 * time.Millisecond
	}
	c.p.env.Sleep(kill)
	return ErrOOM
}

// Load writes one output object, charging the Load phase.
func (c *Ctx) Load(key string, blob Blob, kind ObjKind) error {
	if kind == KindIntermediate && c.req.FinalStage {
		kind = KindFinal
	}
	sp := c.p.Tracer.Begin(c.tref.Trace, c.tref.Span, "load", c.inv.node.ID)
	opts := c.putOpts(kind)
	if sp.ID != 0 {
		opts.Trace = sp.Ref()
	}
	start := c.p.env.Now()
	err := c.inv.storage.Put(c.inv.node.ID, key, blob, opts)
	c.load += time.Duration(c.p.env.Now() - start)
	if err == nil {
		c.bytesOut += blob.Size
		c.writeOps++
	} else {
		sp.SetNum("err", 1)
	}
	c.p.Tracer.End(&sp)
	return err
}

// Delete removes an object (rarely used by bodies; charged to Load).
func (c *Ctx) Delete(key string) error {
	start := c.p.env.Now()
	err := c.inv.storage.Delete(c.inv.node.ID, key)
	c.load += time.Duration(c.p.env.Now() - start)
	return err
}

// PipelineID returns the pipeline instance id of the invocation, or
// the empty string for single-stage requests.
func (c *Ctx) PipelineID() string { return c.req.Pipeline }
