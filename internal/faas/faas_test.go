package faas

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/objstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

// testbed: 1 controller node, 1 storage node, 3 workers bound to a
// Swift-like RSDS.
type testbed struct {
	env   *sim.Env
	net   *simnet.Network
	p     *Platform
	store *objstore.Store
}

func newTestbed(seed int64, capacity int64) *testbed {
	env := sim.NewEnv(seed)
	net := simnet.New(env, simnet.DefaultConfig())
	net.AddNode("ctrl")    // 0
	net.AddNode("storage") // 1
	for i := 0; i < 3; i++ {
		net.AddNode("worker")
	}
	store := objstore.New(net, 1, objstore.SwiftProfile())
	p := New(net, 0, DefaultConfig())
	storage := NewRSDSStorage(store)
	for i := 2; i < 5; i++ {
		p.AddInvoker(simnet.NodeID(i), capacity, storage)
	}
	return &testbed{env: env, net: net, p: p, store: store}
}

// emptyFn is a no-op function.
func emptyFn(booked int64) *Function {
	return &Function{
		Name: "empty", Tenant: "t", MemoryBooked: booked, InputType: "none",
		Body: func(ctx *Ctx) error { return nil },
	}
}

// etlFn reads in/<i>, computes, writes out/<i>.
func etlFn(name string, compute time.Duration, peak int64) *Function {
	return &Function{
		Name: name, Tenant: "t", MemoryBooked: 512 << 20, InputType: "image",
		Body: func(ctx *Ctx) error {
			blob, err := ctx.Extract(ctx.InputKeys()[0])
			if err != nil {
				return err
			}
			if err := ctx.Transform(compute, peak); err != nil {
				return err
			}
			return ctx.Load("out/"+ctx.InputKeys()[0], Blob{Size: blob.Size}, KindFinal)
		},
	}
}

func TestEmptyFunctionEndToEnd(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := emptyFn(256 << 20)
	tb.p.Register(fn)
	var warm *Result
	tb.env.Go(func() {
		cold := tb.p.Invoke(&Request{Function: fn})
		if !cold.ColdStart {
			t.Error("first invocation not cold")
		}
		warm = tb.p.Invoke(&Request{Function: fn})
	})
	tb.env.Run()
	if warm.ColdStart {
		t.Error("second invocation cold")
	}
	// Paper §6.4: empty function through the distributed OWK ≈ 8 ms.
	d := warm.Duration()
	if d < 6*time.Millisecond || d > 11*time.Millisecond {
		t.Errorf("warm empty invocation took %v, want ≈8ms", d)
	}
}

func TestColdStartCost(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := emptyFn(256 << 20)
	tb.p.Register(fn)
	var cold *Result
	tb.env.Go(func() { cold = tb.p.Invoke(&Request{Function: fn}) })
	tb.env.Run()
	if d := cold.Duration(); d < tb.p.cfg.ColdStart {
		t.Errorf("cold invocation %v < cold-start cost", d)
	}
	st := tb.p.Stats()
	if st.ColdStarts != 1 || st.WarmStarts != 0 {
		t.Errorf("stats=%+v", st)
	}
}

func TestSandboxReuseAndMemoryAccounting(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := emptyFn(256 << 20)
	tb.p.Register(fn)
	tb.env.Go(func() {
		for i := 0; i < 5; i++ {
			tb.p.Invoke(&Request{Function: fn})
		}
		// Check before the keep-alive timers reclaim the sandbox.
		total := 0
		var reserved int64
		for _, inv := range tb.p.Invokers() {
			total += inv.SandboxCount()
			reserved += inv.Reserved()
		}
		if total != 1 {
			t.Errorf("sandboxes=%d, want 1 (reuse)", total)
		}
		if reserved != 256<<20 {
			t.Errorf("reserved=%d", reserved)
		}
		st := tb.p.Stats()
		if st.WarmStarts != 4 {
			t.Errorf("warm=%d", st.WarmStarts)
		}
	})
	tb.env.Run()
}

func TestKeepAliveExpiry(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := emptyFn(256 << 20)
	tb.p.Register(fn)
	tb.env.Go(func() {
		tb.p.Invoke(&Request{Function: fn})
		tb.env.Sleep(tb.p.cfg.KeepAlive + time.Second)
		count := 0
		for _, inv := range tb.p.Invokers() {
			count += inv.SandboxCount()
		}
		if count != 0 {
			t.Errorf("sandboxes=%d after keep-alive", count)
		}
		var reserved int64
		for _, inv := range tb.p.Invokers() {
			reserved += inv.Reserved()
		}
		if reserved != 0 {
			t.Errorf("reserved=%d after expiry", reserved)
		}
	})
	tb.env.Run()
}

func TestKeepAliveRefreshedByUse(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := emptyFn(256 << 20)
	tb.p.Register(fn)
	tb.env.Go(func() {
		tb.p.Invoke(&Request{Function: fn})
		// Keep poking the sandbox at intervals below keep-alive.
		for i := 0; i < 3; i++ {
			tb.env.Sleep(tb.p.cfg.KeepAlive - time.Minute)
			res := tb.p.Invoke(&Request{Function: fn})
			if res.ColdStart {
				t.Errorf("poke %d went cold", i)
			}
		}
	})
	tb.env.Run()
}

func TestETLPhasesAccounted(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := etlFn("resize", 20*time.Millisecond, 100<<20)
	tb.p.Register(fn)
	var res *Result
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(16<<10), nil, false)
		res = tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
	})
	tb.env.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Extract < 38*time.Millisecond {
		t.Errorf("extract=%v, want ≈40ms (Swift GET)", res.Extract)
	}
	if res.Transform != 20*time.Millisecond {
		t.Errorf("transform=%v", res.Transform)
	}
	if res.Load < 110*time.Millisecond {
		t.Errorf("load=%v, want ≈115ms (Swift PUT)", res.Load)
	}
	if res.PeakMem != 100<<20 {
		t.Errorf("peak=%d", res.PeakMem)
	}
}

func TestOOMRetryAtBookedMemory(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := etlFn("hungry", 50*time.Millisecond, 300<<20) // short: no rescue
	tb.p.Register(fn)
	// Advisor underpredicts badly.
	tb.p.Advisor = advisorFunc(func(req *Request) Advice {
		return Advice{Mem: 128 << 20, ShouldCache: false, Use: true}
	})
	var res *Result
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		res = tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
	})
	tb.env.Run()
	if res.Err != nil {
		t.Fatalf("retry did not save the invocation: %v", res.Err)
	}
	if !res.Retried {
		t.Error("not marked retried")
	}
	if res.SandboxMem != 512<<20 {
		t.Errorf("retry sandbox mem=%d, want booked", res.SandboxMem)
	}
	st := tb.p.Stats()
	if st.OOMKills != 1 || st.Retries != 1 {
		t.Errorf("stats=%+v", st)
	}
}

func TestMonitorRescuesLongInvocations(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	tb.p.MonitorEnabled = true
	fn := etlFn("long", 5*time.Second, 300<<20) // ≥3s: rescued
	tb.p.Register(fn)
	tb.p.Advisor = advisorFunc(func(req *Request) Advice {
		return Advice{Mem: 128 << 20, Use: true}
	})
	var res *Result
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		res = tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
	})
	tb.env.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Rescued || res.Retried {
		t.Errorf("rescued=%v retried=%v", res.Rescued, res.Retried)
	}
	if res.SandboxMem < 300<<20 {
		t.Errorf("sandbox mem=%d after rescue", res.SandboxMem)
	}
	if tb.p.Stats().OOMKills != 0 {
		t.Error("rescue counted as OOM")
	}
}

func TestAdvisedMemoryShrinksSandbox(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := etlFn("light", 10*time.Millisecond, 80<<20)
	tb.p.Register(fn)
	tb.p.Advisor = advisorFunc(func(req *Request) Advice {
		return Advice{Mem: 96 << 20, Use: true}
	})
	var res *Result
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		res = tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
	})
	tb.env.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.SandboxMem != 96<<20 {
		t.Errorf("sandbox=%d, want advised 96MB", res.SandboxMem)
	}
}

func TestNoCapacityFailsEventually(t *testing.T) {
	tb := newTestbed(1, 128<<20) // tiny workers
	fn := emptyFn(512 << 20)     // bigger than any node
	tb.p.Register(fn)
	var res *Result
	tb.env.Go(func() { res = tb.p.Invoke(&Request{Function: fn}) })
	tb.env.Run()
	if !errors.Is(res.Err, ErrNoCapacity) {
		t.Errorf("err=%v", res.Err)
	}
}

func TestCacheGrantLimitsSandboxes(t *testing.T) {
	tb := newTestbed(1, 1<<30)
	inv := tb.p.Invokers()[0]
	granted := inv.SetCacheGrant(900 << 20)
	if granted != 900<<20 {
		t.Fatalf("granted=%d", granted)
	}
	if free := inv.FreeForSandboxes(); free != (1<<30)-(900<<20) {
		t.Errorf("free=%d", free)
	}
	// Without a governor the platform takes the grant directly.
	fn := emptyFn(512 << 20)
	tb.p.Register(fn)
	var res *Result
	tb.env.Go(func() { res = tb.p.Invoke(&Request{Function: fn}) })
	tb.env.Run()
	if res.Err != nil {
		t.Fatalf("invoke: %v", res.Err)
	}
}

type govFunc func(node simnet.NodeID, need int64) (time.Duration, error)

func (g govFunc) Reclaim(node simnet.NodeID, need int64) (time.Duration, error) {
	return g(node, need)
}

type advisorFunc func(req *Request) Advice

func (a advisorFunc) Advise(req *Request) Advice { return a(req) }

func TestGovernorReclaimOnPressure(t *testing.T) {
	tb := newTestbed(1, 1<<30)
	for _, inv := range tb.p.Invokers() {
		inv.SetCacheGrant(800 << 20)
	}
	reclaims := 0
	tb.p.Governor = govFunc(func(node simnet.NodeID, need int64) (time.Duration, error) {
		reclaims++
		inv := tb.p.Invokers()[0]
		for _, i2 := range tb.p.Invokers() {
			if i2.Node() == node {
				inv = i2
			}
		}
		inv.SetCacheGrant(inv.CacheGrant() - need)
		return 300 * time.Microsecond, nil
	})
	fn := emptyFn(512 << 20)
	tb.p.Register(fn)
	var res *Result
	tb.env.Go(func() { res = tb.p.Invoke(&Request{Function: fn}) })
	tb.env.Run()
	if res.Err != nil {
		t.Fatalf("invoke: %v", res.Err)
	}
	if reclaims == 0 {
		t.Error("governor never consulted")
	}
	if res.ScaleDownTime != 300*time.Microsecond {
		t.Errorf("scale time=%v", res.ScaleDownTime)
	}
}

func TestHomeInvokerAffinity(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := emptyFn(128 << 20)
	tb.p.Register(fn)
	nodes := map[simnet.NodeID]int{}
	tb.env.Go(func() {
		for i := 0; i < 6; i++ {
			res := tb.p.Invoke(&Request{Function: fn})
			nodes[res.Node]++
		}
	})
	tb.env.Run()
	if len(nodes) != 1 {
		t.Errorf("function spread across %d nodes without pressure", len(nodes))
	}
}

func TestInvokeSequence(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	a := &Function{Name: "a", Tenant: "t", MemoryBooked: 128 << 20, Body: func(ctx *Ctx) error {
		return ctx.Load("mid/1", Blob{Size: 1 << 10}, KindIntermediate)
	}}
	b := &Function{Name: "b", Tenant: "t", MemoryBooked: 128 << 20, Body: func(ctx *Ctx) error {
		_, err := ctx.Extract("mid/1")
		return err
	}}
	tb.p.Register(a)
	tb.p.Register(b)
	var results []*Result
	tb.env.Go(func() {
		results = tb.p.InvokeSequence([]*Request{
			{Function: a, Pipeline: "pl-1"},
			{Function: b, Pipeline: "pl-1", FinalStage: true, InputKeys: []string{"mid/1"}},
		})
	})
	tb.env.Run()
	if len(results) != 2 {
		t.Fatalf("results=%d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("stage %d: %v", i, r.Err)
		}
	}
	if results[1].Start < results[0].End {
		t.Error("stage 2 started before stage 1 finished")
	}
}

func TestInvokeParallel(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := &Function{Name: "p", Tenant: "t", MemoryBooked: 128 << 20, Body: func(ctx *Ctx) error {
		return ctx.Transform(100*time.Millisecond, 64<<20)
	}}
	tb.p.Register(fn)
	var results []*Result
	var took time.Duration
	tb.env.Go(func() {
		start := tb.env.Now()
		reqs := make([]*Request, 4)
		for i := range reqs {
			reqs[i] = &Request{Function: fn}
		}
		results = tb.p.InvokeParallel(reqs)
		took = time.Duration(tb.env.Now() - start)
		sandboxes := 0
		for _, inv := range tb.p.Invokers() {
			sandboxes += inv.SandboxCount()
		}
		if sandboxes != 4 {
			t.Errorf("sandboxes=%d, want 4 (one per concurrent invocation)", sandboxes)
		}
	})
	tb.env.Run()
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("req %d: %v", i, r.Err)
		}
	}
	// 4 parallel 100ms invocations (each in its own sandbox) must take
	// far less than the 400ms serial time.
	if took > 800*time.Millisecond {
		t.Errorf("parallel fan-out took %v", took)
	}
}

func TestRouterOverride(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := emptyFn(128 << 20)
	tb.p.Register(fn)
	want := tb.p.Invokers()[2]
	tb.p.Router = routerFunc(func(req *Request, all []*Invoker, warm []*Invoker) *Invoker {
		return want
	})
	var res *Result
	tb.env.Go(func() { res = tb.p.Invoke(&Request{Function: fn}) })
	tb.env.Run()
	if res.Node != want.Node() {
		t.Errorf("node=%v, want %v", res.Node, want.Node())
	}
}

type routerFunc func(req *Request, all []*Invoker, warm []*Invoker) *Invoker

func (r routerFunc) Route(req *Request, all []*Invoker, warm []*Invoker) *Invoker {
	return r(req, all, warm)
}

func TestObserverSeesCompletion(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := etlFn("obs", 10*time.Millisecond, 90<<20)
	tb.p.Register(fn)
	var seen []*Result
	tb.p.Observer = observerFunc(func(req *Request, res *Result) { seen = append(seen, res) })
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
	})
	tb.env.Run()
	if len(seen) != 1 || seen[0].PeakMem != 90<<20 {
		t.Errorf("observer saw %d results", len(seen))
	}
}

type observerFunc func(req *Request, res *Result)

func (o observerFunc) OnComplete(req *Request, res *Result) { o(req, res) }

func TestSequenceStopsOnFailure(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	ok := &Function{Name: "ok", Tenant: "t", MemoryBooked: 128 << 20,
		Body: func(ctx *Ctx) error { return nil }}
	bad := &Function{Name: "bad", Tenant: "t", MemoryBooked: 128 << 20,
		Body: func(ctx *Ctx) error {
			_, err := ctx.Extract("missing/key")
			return err
		}}
	never := &Function{Name: "never", Tenant: "t", MemoryBooked: 128 << 20,
		Body: func(ctx *Ctx) error {
			t.Error("stage after a failure ran")
			return nil
		}}
	tb.p.Register(ok)
	tb.p.Register(bad)
	tb.p.Register(never)
	var results []*Result
	tb.env.Go(func() {
		results = tb.p.InvokeSequence([]*Request{
			{Function: ok}, {Function: bad}, {Function: never},
		})
	})
	tb.env.Run()
	if len(results) != 2 {
		t.Fatalf("results=%d, want 2 (sequence stops at the failure)", len(results))
	}
	if results[1].Err == nil {
		t.Error("failing stage reported no error")
	}
}

func TestWarmStartResizesToAdvice(t *testing.T) {
	// Footnote 1: on a warm start the invoker updates the memory
	// constraint of the existing container.
	tb := newTestbed(1, 8<<30)
	fn := etlFn("warm", 10*time.Millisecond, 80<<20)
	tb.p.Register(fn)
	mem := int64(96 << 20)
	tb.p.Advisor = advisorFunc(func(req *Request) Advice {
		return Advice{Mem: mem, Use: true}
	})
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		r1 := tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
		if r1.SandboxMem != 96<<20 {
			t.Fatalf("first sandbox=%d", r1.SandboxMem)
		}
		mem = 160 << 20 // bigger inputs predicted next
		r2 := tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
		if r2.ColdStart {
			t.Error("resize path went cold")
		}
		if r2.SandboxMem != 160<<20 {
			t.Errorf("warm sandbox not resized: %d", r2.SandboxMem)
		}
	})
	tb.env.Run()
}

func TestInvocationIsolationOneAtATime(t *testing.T) {
	// A sandbox processes one invocation at a time: two concurrent
	// invocations of the same function need two sandboxes.
	tb := newTestbed(1, 8<<30)
	fn := &Function{Name: "slow", Tenant: "t", MemoryBooked: 128 << 20,
		Body: func(ctx *Ctx) error { return ctx.Transform(200*time.Millisecond, 64<<20) }}
	tb.p.Register(fn)
	tb.env.Go(func() {
		res := tb.p.InvokeParallel([]*Request{{Function: fn}, {Function: fn}})
		if res[0].Err != nil || res[1].Err != nil {
			t.Fatalf("errs: %v %v", res[0].Err, res[1].Err)
		}
		count := 0
		for _, inv := range tb.p.Invokers() {
			count += inv.SandboxCount()
		}
		if count != 2 {
			t.Errorf("sandboxes=%d, want 2", count)
		}
	})
	tb.env.Run()
}

func TestActivationRecords(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := etlFn("act", 10*time.Millisecond, 90<<20)
	tb.p.Register(fn)
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		for i := 0; i < 3; i++ {
			tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
		}
	})
	tb.env.Run()
	acts := tb.p.Activations(0)
	if len(acts) != 3 {
		t.Fatalf("activations=%d", len(acts))
	}
	// Newest first; first recorded was the cold start.
	if !acts[len(acts)-1].Cold || acts[0].Cold {
		t.Errorf("cold ordering wrong: %+v", acts)
	}
	for _, a := range acts {
		if a.Function != "t/act" || a.Duration <= 0 || a.Error != "" {
			t.Errorf("record %+v", a)
		}
		got, ok := tb.p.Activation(a.ID)
		if !ok || got.ID != a.ID {
			t.Errorf("lookup %s failed", a.ID)
		}
	}
	if _, ok := tb.p.Activation("act-99999999"); ok {
		t.Error("lookup of unknown id succeeded")
	}
}

func TestActivationLogBounded(t *testing.T) {
	l := newActivationLog(4)
	for i := 0; i < 10; i++ {
		l.record(Activation{Function: "f"})
	}
	acts := l.list(0)
	if len(acts) != 4 {
		t.Fatalf("retained=%d, want 4", len(acts))
	}
	if acts[0].ID != "act-00000010" {
		t.Errorf("newest=%s", acts[0].ID)
	}
	if got := l.list(2); len(got) != 2 {
		t.Errorf("list(2)=%d", len(got))
	}
}

func TestRegisteredSequence(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	produce := &Function{Name: "produce", Tenant: "t", MemoryBooked: 128 << 20,
		Body: func(ctx *Ctx) error {
			return ctx.Load("pl/"+ctx.PipelineID()+"/mid", Blob{Size: 2 << 10}, KindIntermediate)
		}}
	consume := &Function{Name: "consume", Tenant: "t", MemoryBooked: 128 << 20,
		Body: func(ctx *Ctx) error {
			if _, err := ctx.Extract(ctx.InputKeys()[0]); err != nil {
				return err
			}
			return ctx.Load("pl/"+ctx.PipelineID()+"/final", Blob{Size: 1 << 10}, KindFinal)
		}}
	tb.p.Register(produce)
	tb.p.Register(consume)
	seq := tb.p.RegisterSequence("t", "prodcons", produce, consume)
	if got, ok := tb.p.LookupSequence("t/prodcons"); !ok || got != seq {
		t.Fatal("sequence not registered")
	}
	var results []*Result
	tb.env.Go(func() {
		results = seq.Invoke("sq-1", nil, nil, func(stage int, prev *Result) []string {
			return []string{"pl/sq-1/mid"}
		})
	})
	tb.env.Run()
	if len(results) != 2 {
		t.Fatalf("results=%d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("stage %d: %v", i, r.Err)
		}
	}
	if results[1].Start < results[0].End {
		t.Error("stages overlapped")
	}
}

// Property: under any random mix of concurrent invocations, the
// invoker's books stay balanced — reserved equals the sum of live
// sandbox limits, never exceeds capacity, and the cache grant never
// overlaps reservations.
func TestPropertyInvokerAccounting(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%24) + 4
		tb := newTestbed(seed, 4<<30)
		fns := []*Function{
			{Name: "a", Tenant: "t", MemoryBooked: 128 << 20, Body: func(ctx *Ctx) error {
				return ctx.Transform(50*time.Millisecond, 64<<20)
			}},
			{Name: "b", Tenant: "t", MemoryBooked: 384 << 20, Body: func(ctx *Ctx) error {
				return ctx.Transform(120*time.Millisecond, 256<<20)
			}},
			{Name: "c", Tenant: "t", MemoryBooked: 64 << 20, Body: func(ctx *Ctx) error {
				return nil
			}},
		}
		for _, fn := range fns {
			tb.p.Register(fn)
		}
		ok := true
		check := func() {
			for _, inv := range tb.p.Invokers() {
				if inv.Reserved() < 0 || inv.Reserved() > inv.Capacity() {
					ok = false
				}
				if inv.CacheGrant() < 0 || inv.CacheGrant()+inv.Reserved() > inv.Capacity() {
					ok = false
				}
				if inv.BookedWaste() < 0 {
					ok = false
				}
			}
		}
		tb.env.Go(func() {
			rng := tb.env.NewRand()
			for i := 0; i < n; i++ {
				fn := fns[rng.Intn(len(fns))]
				tb.env.Go(func() {
					tb.p.Invoke(&Request{Function: fn})
				})
				if rng.Intn(3) == 0 {
					tb.env.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond)
					check()
				}
			}
			tb.env.Sleep(2 * time.Second)
			check()
			// Live sandboxes imply a non-zero reservation.
			for _, inv := range tb.p.Invokers() {
				if inv.SandboxCount() > 0 && inv.Reserved() == 0 {
					ok = false
				}
			}
		})
		tb.env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSwapDegradationInsteadOfOOM(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	// Peak 5% above the advised sandbox: swap, don't kill.
	fn := etlFn("swappy", 100*time.Millisecond, 134<<20)
	tb.p.Register(fn)
	tb.p.Advisor = advisorFunc(func(req *Request) Advice {
		return Advice{Mem: 128 << 20, Use: true}
	})
	var res *Result
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		res = tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
	})
	tb.env.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Swapped || res.Retried {
		t.Errorf("swapped=%v retried=%v", res.Swapped, res.Retried)
	}
	// ~4.7% overshoot × slowdown 8 ≈ +37% transform time.
	if res.Transform <= 100*time.Millisecond || res.Transform > 200*time.Millisecond {
		t.Errorf("transform=%v, want degraded but bounded", res.Transform)
	}
	if tb.p.Stats().Swaps != 1 {
		t.Errorf("swaps=%d", tb.p.Stats().Swaps)
	}
	if tb.p.Stats().OOMKills != 0 {
		t.Error("swap counted as OOM")
	}
}

func TestInvokeAsync(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := &Function{Name: "async", Tenant: "t", MemoryBooked: 128 << 20,
		Body: func(ctx *Ctx) error { return ctx.Transform(100*time.Millisecond, 64<<20) }}
	tb.p.Register(fn)
	tb.env.Go(func() {
		f1 := tb.p.InvokeAsync(&Request{Function: fn})
		f2 := tb.p.InvokeAsync(&Request{Function: fn})
		start := tb.env.Now()
		r1, r2 := f1.Wait(), f2.Wait()
		if r1.Err != nil || r2.Err != nil {
			t.Errorf("errs: %v %v", r1.Err, r2.Err)
		}
		// Both ran concurrently: waiting for both takes ~one duration.
		if wall := tb.env.Now() - start; wall > 900*time.Millisecond {
			t.Errorf("async invocations serialized: wall=%v", wall)
		}
	})
	tb.env.Run()
}

// TestOOMRetrySeesWrappedErrors is the regression test for the
// wrapped-sentinel bug: user function bodies (and middleware such as
// the store's Resilient layer) wrap platform errors with %w before
// returning them, and the controller's OOM-retry path must still
// recognize ErrOOM through the wrapping. Before the errors.Is fix in
// Invoke/execute, a wrapped ErrOOM skipped the §5.3 retry entirely and
// surfaced as a failed invocation.
func TestOOMRetrySeesWrappedErrors(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	fn := &Function{
		Name: "wrapper", Tenant: "t", MemoryBooked: 512 << 20, InputType: "none",
		Body: func(ctx *Ctx) error {
			if err := ctx.Transform(50*time.Millisecond, 300<<20); err != nil {
				return fmt.Errorf("transform stage: %w", err)
			}
			return nil
		},
	}
	tb.p.Register(fn)
	// Advisor underpredicts badly, so the first attempt OOMs.
	tb.p.Advisor = advisorFunc(func(req *Request) Advice {
		return Advice{Mem: 128 << 20, ShouldCache: false, Use: true}
	})
	var res *Result
	tb.env.Go(func() {
		res = tb.p.Invoke(&Request{Function: fn})
	})
	tb.env.Run()
	if res.Err != nil {
		t.Fatalf("wrapped ErrOOM was not retried at booked memory: %v", res.Err)
	}
	if !res.Retried {
		t.Error("invocation not marked retried")
	}
	if res.SandboxMem != 512<<20 {
		t.Errorf("retry sandbox mem=%d, want booked 512MB", res.SandboxMem)
	}
	if st := tb.p.Stats(); st.OOMKills != 1 || st.Retries != 1 || st.Failures != 0 {
		t.Errorf("stats=%+v, want exactly one OOM kill and one retry", st)
	}
}

// shedGate is a test AdmissionController that rejects every request
// with a fixed error.
type shedGate struct{ err error }

func (g shedGate) Admit(req *Request) (func(), error) { return nil, g.err }

// denyRetry is a RetryPolicy refusing every re-execution.
type denyRetry struct{}

func (denyRetry) AllowRetry(req *Request, cause error) bool { return false }

func TestAdmissionShedAccounting(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	errShed := errors.New("test: shed")
	tb.p.Admission = shedGate{err: errShed}
	fn := emptyFn(256 << 20)
	tb.p.Register(fn)
	var res *Result
	tb.env.Go(func() {
		res = tb.p.Invoke(&Request{Function: fn})
	})
	tb.env.Run()
	if !errors.Is(res.Err, errShed) {
		t.Fatalf("err=%v, want the gate's shed error", res.Err)
	}
	st := tb.p.Stats()
	if st.Shed != 1 {
		t.Errorf("Shed=%d, want 1", st.Shed)
	}
	// A refusal is not a platform failure: nothing ran, nothing broke.
	if st.Failures != 0 {
		t.Errorf("Failures=%d, want 0 for a shed request", st.Failures)
	}
	if st.ColdStarts != 0 || st.WarmStarts != 0 {
		t.Errorf("shed request started a sandbox: %+v", st)
	}
	// The activation log still records the refused invocation.
	acts := tb.p.Activations(10)
	if len(acts) != 1 {
		t.Fatalf("activations=%d, want 1", len(acts))
	}
	if acts[0].Error == "" {
		t.Error("activation record lost the shed error")
	}
}

func TestOOMRetryDeniedByBudget(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	tb.p.Retry = denyRetry{}
	fn := etlFn("hungry", 50*time.Millisecond, 300<<20) // OOMs under 128 MB advice
	tb.p.Register(fn)
	tb.p.Advisor = advisorFunc(func(req *Request) Advice {
		return Advice{Mem: 128 << 20, ShouldCache: false, Use: true}
	})
	var res *Result
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		res = tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
	})
	tb.env.Run()
	// The denial surfaces as a typed error wrapping the OOM cause.
	if !errors.Is(res.Err, ErrRetryBudget) {
		t.Fatalf("err=%v, want ErrRetryBudget match", res.Err)
	}
	if !errors.Is(res.Err, ErrOOM) {
		t.Errorf("err=%v does not preserve the ErrOOM cause", res.Err)
	}
	if res.Retried {
		t.Error("denied retry still marked Retried")
	}
	st := tb.p.Stats()
	// The kill counts once; the retry that never ran does not.
	if st.OOMKills != 1 || st.Retries != 0 || st.RetryDenied != 1 {
		t.Errorf("stats=%+v, want OOMKills=1 Retries=0 RetryDenied=1", st)
	}
	if st.Failures != 1 {
		t.Errorf("Failures=%d, want 1 (the invocation did fail)", st.Failures)
	}
	// The activation record is kept for the failed attempt.
	if acts := tb.p.Activations(10); len(acts) != 1 || acts[0].Error == "" {
		t.Errorf("activation log: %+v", acts)
	}
}

func TestOOMRetryAllowedByPolicyCountsOnce(t *testing.T) {
	tb := newTestbed(1, 8<<30)
	var consulted int
	tb.p.Retry = retryFunc(func(req *Request, cause error) bool {
		consulted++
		if !errors.Is(cause, ErrOOM) {
			t.Errorf("policy consulted with cause=%v, want ErrOOM", cause)
		}
		return true
	})
	fn := etlFn("hungry", 50*time.Millisecond, 300<<20)
	tb.p.Register(fn)
	tb.p.Advisor = advisorFunc(func(req *Request) Advice {
		return Advice{Mem: 128 << 20, ShouldCache: false, Use: true}
	})
	var res *Result
	tb.env.Go(func() {
		tb.store.Put(2, "in/a", kvstore.Synthetic(1<<10), nil, false)
		res = tb.p.Invoke(&Request{Function: fn, InputKeys: []string{"in/a"}})
	})
	tb.env.Run()
	if res.Err != nil {
		t.Fatalf("allowed retry failed: %v", res.Err)
	}
	if !res.Retried {
		t.Error("not marked retried")
	}
	if consulted != 1 {
		t.Errorf("policy consulted %d times, want 1", consulted)
	}
	st := tb.p.Stats()
	if st.OOMKills != 1 || st.Retries != 1 || st.RetryDenied != 0 {
		t.Errorf("stats=%+v", st)
	}
}

// retryFunc adapts a function to RetryPolicy.
type retryFunc func(req *Request, cause error) bool

func (f retryFunc) AllowRetry(req *Request, cause error) bool { return f(req, cause) }
