package imoc

import (
	"errors"
	"testing"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

func setup(env *sim.Env) *Cache {
	net := simnet.New(env, simnet.DefaultConfig())
	net.AddNode("worker")
	net.AddNode("redis")
	return New(net, 1, RedisProfile())
}

func TestSetGetDel(t *testing.T) {
	env := sim.NewEnv(1)
	c := setup(env)
	env.Go(func() {
		c.Set(0, "k", kvstore.Bytes([]byte("v")))
		blob, err := c.Get(0, "k")
		if err != nil || string(blob.Data) != "v" {
			t.Errorf("get: %v %q", err, blob.Data)
		}
		c.Del(0, "k")
		if _, err := c.Get(0, "k"); !errors.Is(err, ErrNotFound) {
			t.Errorf("get after del: %v", err)
		}
	})
	env.Run()
	gets, sets := c.Stats()
	if gets != 1 || sets != 1 {
		t.Errorf("stats=%d %d", gets, sets)
	}
}

func TestRedisIsFastComparedToRSDS(t *testing.T) {
	env := sim.NewEnv(1)
	c := setup(env)
	env.Go(func() {
		c.Set(0, "k", kvstore.Synthetic(128<<10))
		start := env.Now()
		if _, err := c.Get(0, "k"); err != nil {
			t.Fatal(err)
		}
		took := env.Now() - start
		// 128 kB from in-region Redis: well under a millisecond —
		// that's what makes E&L "negligible" in Figure 3's second
		// bar series.
		if took > time.Millisecond {
			t.Errorf("128kB Redis GET took %v", took)
		}
	})
	env.Run()
}

func TestLen(t *testing.T) {
	env := sim.NewEnv(1)
	c := setup(env)
	env.Go(func() {
		c.Set(0, "a", kvstore.Synthetic(1))
		c.Set(0, "b", kvstore.Synthetic(1))
		c.Set(0, "a", kvstore.Synthetic(2))
	})
	env.Run()
	if c.Len() != 2 {
		t.Errorf("len=%d", c.Len())
	}
}
