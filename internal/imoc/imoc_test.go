package imoc

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/sim"
	"ofc/internal/simnet"
)

func setup(env *sim.Env) *Cache {
	net := simnet.New(env, simnet.DefaultConfig())
	net.AddNode("worker")
	net.AddNode("redis")
	return New(net, 1, RedisProfile())
}

func TestSetGetDel(t *testing.T) {
	env := sim.NewEnv(1)
	c := setup(env)
	env.Go(func() {
		c.Set(0, "k", kvstore.Bytes([]byte("v")))
		blob, err := c.Get(0, "k")
		if err != nil || string(blob.Data) != "v" {
			t.Errorf("get: %v %q", err, blob.Data)
		}
		c.Del(0, "k")
		if _, err := c.Get(0, "k"); !errors.Is(err, ErrNotFound) {
			t.Errorf("get after del: %v", err)
		}
	})
	env.Run()
	gets, sets := c.Stats()
	if gets != 1 || sets != 1 {
		t.Errorf("stats=%d %d", gets, sets)
	}
}

func TestRedisIsFastComparedToRSDS(t *testing.T) {
	env := sim.NewEnv(1)
	c := setup(env)
	env.Go(func() {
		c.Set(0, "k", kvstore.Synthetic(128<<10))
		start := env.Now()
		if _, err := c.Get(0, "k"); err != nil {
			t.Fatal(err)
		}
		took := env.Now() - start
		// 128 kB from in-region Redis: well under a millisecond —
		// that's what makes E&L "negligible" in Figure 3's second
		// bar series.
		if took > time.Millisecond {
			t.Errorf("128kB Redis GET took %v", took)
		}
	})
	env.Run()
}

func TestLen(t *testing.T) {
	env := sim.NewEnv(1)
	c := setup(env)
	env.Go(func() {
		c.Set(0, "a", kvstore.Synthetic(1))
		c.Set(0, "b", kvstore.Synthetic(1))
		c.Set(0, "a", kvstore.Synthetic(2))
	})
	env.Run()
	if c.Len() != 2 {
		t.Errorf("len=%d", c.Len())
	}
}

// TestShardedMap exercises the sharded object map across enough keys
// to land on every shard: Set/Get/Del stay correct under hash
// partitioning and Len tracks the global count exactly.
func TestShardedMap(t *testing.T) {
	env := sim.NewEnv(1)
	c := setup(env)
	const n = 256
	env.Go(func() {
		for i := 0; i < n; i++ {
			c.Set(0, key(i), kvstore.Synthetic(int64(i+1)))
		}
		if c.Len() != n {
			t.Errorf("len=%d after %d sets", c.Len(), n)
		}
		for i := 0; i < n; i++ {
			blob, err := c.Get(0, key(i))
			if err != nil || blob.Size != int64(i+1) {
				t.Fatalf("get %d: %v size=%d", i, err, blob.Size)
			}
		}
		for i := 0; i < n; i += 2 {
			c.Del(0, key(i))
		}
		if c.Len() != n/2 {
			t.Errorf("len=%d after deleting half, want %d", c.Len(), n/2)
		}
		for i := 1; i < n; i += 2 {
			if _, err := c.Get(0, key(i)); err != nil {
				t.Fatalf("surviving key %d: %v", i, err)
			}
		}
	})
	env.Run()
	// Every shard should own at least one of the 128 survivors — a
	// degenerate hash would funnel them into few shards.
	used := 0
	for i := range c.shards {
		if c.shards[i].size.Load() > 0 {
			used++
		}
	}
	if used < cacheShards/2 {
		t.Errorf("only %d/%d shards populated; hash distribution is degenerate", used, cacheShards)
	}
}

// TestLenDoesNotBlockDataPlane pins the monitoring contract: Len must
// complete even while a shard's data-plane lock is held.
func TestLenDoesNotBlockDataPlane(t *testing.T) {
	env := sim.NewEnv(1)
	c := setup(env)
	env.Go(func() {
		c.Set(0, "held", kvstore.Synthetic(1))
		c.Set(0, "other", kvstore.Synthetic(1))
	})
	env.Run()
	sh := c.shardOf("held")
	sh.mu.Lock()
	defer sh.mu.Unlock()
	done := make(chan int, 1)
	go func() { done <- c.Len() }() //lint:allow goroleak a blocked Len leaking past the timeout is exactly the failure this test detects
	select {
	case n := <-done:
		if n != 2 {
			t.Errorf("len=%d under held shard lock, want 2", n)
		}
	case <-time.After(time.Second):
		t.Fatal("Len blocked on a held shard lock")
	}
}

func key(i int) string { return fmt.Sprintf("obj/%03d", i) }
