// Package imoc implements the in-memory object cache baseline of the
// paper's comparisons (§2.2.3, §7.2): a Redis/ElastiCache-like
// centralized RAM store that tenants would have to provision and
// manage themselves. OWK-Redis in Figure 7 stores *all* data here.
package imoc

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"ofc/internal/kvstore"
	"ofc/internal/simnet"
)

// Blob aliases the shared payload type.
type Blob = kvstore.Blob

// ErrNotFound is returned for missing keys.
var ErrNotFound = errors.New("imoc: key not found")

// Profile is the latency model for the cache service.
type Profile struct {
	Name      string
	OpBase    time.Duration // per-operation service time
	Bandwidth float64       // payload bytes/s through the service
}

// RedisProfile models an in-region ElastiCache Redis: sub-millisecond
// operations, RAM-speed payloads.
func RedisProfile() Profile {
	return Profile{Name: "redis", OpBase: 150 * time.Microsecond, Bandwidth: 2e9}
}

// cacheShards is the hash-partition count of the object map (the
// kvstore coordinator default).
const cacheShards = 16

// cacheShard is one hash partition: its own lock, its own size
// counter, so Get/Set on different shards never serialize and Len
// reads no shard lock at all.
type cacheShard struct {
	mu   sync.Mutex
	m    map[string]Blob
	size atomic.Int64 // len(m), maintained under mu, read lock-free
}

// Cache is the centralized in-memory store.
type Cache struct {
	net     *simnet.Network
	node    simnet.NodeID
	profile Profile

	shards [cacheShards]cacheShard

	// Op counters are lock-free (the simnet/kvstore stats pattern):
	// they sit on every data-plane op, where a dedicated stats mutex
	// is pure contention.
	gets, sets atomic.Int64
}

// New places the cache service on node.
func New(net *simnet.Network, node simnet.NodeID, profile Profile) *Cache {
	c := &Cache{net: net, node: node, profile: profile}
	for i := range c.shards {
		c.shards[i].m = make(map[string]Blob)
	}
	return c
}

// shardOf returns the shard owning key.
func (c *Cache) shardOf(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// Node returns the hosting node.
func (c *Cache) Node() simnet.NodeID { return c.node }

func (c *Cache) bwTime(size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / c.profile.Bandwidth * float64(time.Second))
}

// Set stores key.
func (c *Cache) Set(caller simnet.NodeID, key string, blob Blob) {
	c.net.Transfer(caller, c.node, blob.Size+64)
	c.net.Env().Sleep(c.profile.OpBase + c.bwTime(blob.Size))
	sh := c.shardOf(key)
	sh.mu.Lock()
	sh.m[key] = blob
	sh.size.Store(int64(len(sh.m)))
	sh.mu.Unlock()
	c.net.Transfer(c.node, caller, 64)
	c.sets.Add(1)
}

// Get fetches key.
func (c *Cache) Get(caller simnet.NodeID, key string) (Blob, error) {
	c.net.Transfer(caller, c.node, 64)
	c.net.Env().Sleep(c.profile.OpBase)
	sh := c.shardOf(key)
	sh.mu.Lock()
	blob, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok {
		c.net.Transfer(c.node, caller, 64)
		return Blob{}, ErrNotFound
	}
	c.net.Env().Sleep(c.bwTime(blob.Size))
	c.net.Transfer(c.node, caller, blob.Size+64)
	c.gets.Add(1)
	return blob, nil
}

// Del removes key. It locks only key's shard — a delete never stalls
// the data plane on the other fifteen.
func (c *Cache) Del(caller simnet.NodeID, key string) {
	c.net.Transfer(caller, c.node, 64)
	c.net.Env().Sleep(c.profile.OpBase)
	sh := c.shardOf(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.size.Store(int64(len(sh.m)))
	sh.mu.Unlock()
	c.net.Transfer(c.node, caller, 64)
}

// Len reports the number of stored keys by summing the per-shard size
// counters — no shard lock taken, so a Len poll never blocks Get/Set.
func (c *Cache) Len() int {
	var n int64
	for i := range c.shards {
		n += c.shards[i].size.Load()
	}
	return int(n)
}

// Stats reports operation counters.
func (c *Cache) Stats() (gets, sets int64) {
	return c.gets.Load(), c.sets.Load()
}
