package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix reports any field (or package-level variable) that is
// accessed both through sync/atomic and through plain loads/stores
// anywhere in the program. Mixing the two is the quiet way to corrupt
// a counter: the atomic side establishes no happens-before for the
// plain side, the race detector only sees it on the interleaving that
// actually collides, and the corrupted value is usually a statistic
// the experiment harness reports as truth. Each package's fact pass
// exports its atomic access set (field class → sites); the program
// pass unions the facts and re-walks every package for unsanctioned
// plain accesses to those classes.
//
// Sanctioned (not plain) uses: passing &f to a sync/atomic function,
// calling a method on a typed atomic (atomic.Int64 and friends),
// taking the address of a typed-atomic field to hand the pointer on,
// and composite-literal construction (which precedes publication).
// Plain accesses in _test.go files are exempt: tests assert on
// quiesced state after the simulation stops. Typed-atomic fields are
// also checked for plain assignment/copy — `s.ops = atomic.Int64{}`
// resets a live counter racily.
var AtomicMix = &Analyzer{
	Name:       "atomicmix",
	Doc:        "forbid mixing sync/atomic and plain access to the same field anywhere in the program",
	Facts:      atomicMixFacts,
	FactType:   func() Fact { return new(AtomicFact) },
	RunProgram: runAtomicMixProgram,
}

// AtomicFact is one package's atomic access set.
type AtomicFact struct {
	// Fields maps field class ("pkg.Type.field" or "pkg.var") to the
	// sites that access it atomically, sorted.
	Fields map[string][]Site `json:"fields,omitempty"`
}

func atomicMixFacts(p *Pass) (Fact, error) {
	fields := map[string][]Site{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Typed atomic method: s.ops.Add(1) — the receiver is
				// the atomically-accessed location.
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if class := fieldClass(p, sel.X); class != "" {
						fields[class] = append(fields[class], p.Site(sel.X.Pos()))
					}
				}
				return true
			}
			// Function style: atomic.AddInt64(&s.n, 1).
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if class := fieldClass(p, un.X); class != "" {
					fields[class] = append(fields[class], p.Site(un.X.Pos()))
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return nil, nil
	}
	for class := range fields {
		sites := fields[class]
		sort.Slice(sites, func(i, j int) bool { return sites[i].less(sites[j]) })
		// One representative site per class keeps facts small; the
		// message only needs an example.
		fields[class] = sites[:1]
	}
	return &AtomicFact{Fields: fields}, nil
}

func runAtomicMixProgram(pp *ProgramPass) error {
	// Union the atomic access sets of every package.
	atomic := map[string]Site{}
	for _, path := range pp.Facts.Packages(pp.Analyzer.Name) {
		fact := pp.Fact(path).(*AtomicFact)
		for class, sites := range fact.Fields {
			if old, ok := atomic[class]; !ok || sites[0].less(old) {
				atomic[class] = sites[0]
			}
		}
	}
	if len(atomic) == 0 {
		return nil
	}
	for _, pkg := range pp.Pkgs {
		p := &Pass{Analyzer: pp.Analyzer, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		sanctioned := atomicSanctioned(p)
		for _, f := range pkg.Files {
			if p.InTestFile(f.Pos()) {
				continue // tests assert on quiesced state
			}
			ast.Inspect(f, func(n ast.Node) bool {
				var class string
				switch e := n.(type) {
				case *ast.SelectorExpr:
					if sanctioned[e] {
						return true
					}
					if s, ok := p.Info.Selections[e]; !ok || s.Kind() != types.FieldVal {
						return true
					}
					class = fieldClass(p, e)
				case *ast.Ident:
					if sanctioned[e] {
						return true
					}
					v, ok := p.Info.Uses[e].(*types.Var)
					if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
						return true
					}
					class = v.Pkg().Path() + "." + v.Name()
				default:
					return true
				}
				if site, ok := atomic[class]; ok && class != "" {
					pp.Report(Finding{
						File: p.Fset.Position(n.Pos()).Filename,
						Line: p.Fset.Position(n.Pos()).Line,
						Col:  p.Fset.Position(n.Pos()).Column,
						Message: "plain access to " + shortClass(class) + ", which is accessed atomically at " +
							site.String() + "; every load/store must go through sync/atomic (or move both sides under one mutex)",
					})
					return false
				}
				return true
			})
		}
	}
	return nil
}

// atomicSanctioned marks the expression nodes whose involvement with
// an atomic location is legitimate: atomic call receivers, &f
// arguments to sync/atomic functions, and addresses of typed-atomic
// fields.
func atomicSanctioned(p *Pass) map[ast.Expr]bool {
	out := map[ast.Expr]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
						sanctionChain(out, sel.X)
					}
					return true
				}
				for _, arg := range n.Args {
					if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
						sanctionChain(out, un.X)
					}
				}
			case *ast.UnaryExpr:
				// &s.ops where ops is a typed atomic: the pointer can
				// only be used through methods downstream.
				if n.Op == token.AND && isTypedAtomic(p, n.X) {
					sanctionChain(out, n.X)
				}
			}
			return true
		})
	}
	return out
}

// sanctionChain sanctions an access expression. Only the accessed
// node itself is sanctioned — its base (`s` in `s.ops`) stays subject
// to its own checks.
func sanctionChain(out map[ast.Expr]bool, e ast.Expr) {
	out[ast.Unparen(e)] = true
}

// isTypedAtomic reports whether e's type is a named type from
// sync/atomic (Int64, Uint32, Bool, Value, Pointer[T], ...).
func isTypedAtomic(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	name := typeName(tv.Type)
	return strings.HasPrefix(name, "sync/atomic.")
}
