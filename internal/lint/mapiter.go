package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags map iterations whose order can leak into sim-visible
// output. Go randomizes map iteration order per run, so a `for range m`
// that prints, appends to an output slice, sends on a channel, or
// spawns simulation work makes the result depend on that randomization
// — the one nondeterminism source the virtual clock cannot absorb.
// Order-insensitive bodies (counter sums, keyed writes into another
// map, deletes) stay legal, as does the canonical collect-then-sort
// idiom: an append whose destination is passed to sort.* / slices.*
// later in the same function is recognized as deterministic.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "forbid map iterations whose order reaches sim-visible output; collect keys and sort, or keep the body order-insensitive",
	Run:  runMapIter,
}

// mapIterFmtSinks are the fmt functions that emit directly to a stream;
// Sprint* build values and are only order-sensitive through some other
// sink, which is flagged at that sink instead.
var mapIterFmtSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapIter(p *Pass) error {
	if !strings.Contains("/"+p.Path(), "/internal/") {
		return nil
	}
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(p, fn.Body, rs)
				return true
			})
		}
	}
	return nil
}

// checkMapRange looks for order-sensitive effects inside one map
// iteration and reports each sink at its own position.
func checkMapRange(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside map iteration delivers values in randomized order; collect into a slice, sort, then send")
		case *ast.AssignStmt:
			// x = append(x, ...) growing a slice that outlives the loop
			// freezes the randomized order — unless the slice is sorted
			// afterwards in the same function.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				dst, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[dst]
				if obj == nil {
					obj = p.Info.Defs[dst]
				}
				if obj == nil || insideRange(obj.Pos(), rs) {
					continue // loop-local scratch dies with the iteration
				}
				if sortedAfter(p, fnBody, obj, rs.End()) {
					continue // collect-then-sort: order is re-established
				}
				p.Reportf(n.Pos(), "appending to %q inside map iteration captures randomized order; sort %q after the loop (or range over sorted keys)", dst.Name, dst.Name)
			}
		case *ast.CallExpr:
			reportCallSink(p, n)
		}
		return true
	})
}

// reportCallSink flags calls that emit or schedule in iteration order:
// direct fmt printing, buffer/builder writes, and sim.Env spawns
// (goroutine creation order perturbs the virtual-clock schedule).
func reportCallSink(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "fmt" && mapIterFmtSinks[name]:
		p.Reportf(call.Pos(), "fmt.%s inside map iteration prints entries in randomized order; sort the keys first", name)
	case (path == "bytes" || path == "strings") && strings.HasPrefix(name, "Write") && fn.Type().(*types.Signature).Recv() != nil:
		p.Reportf(call.Pos(), "%s.%s inside map iteration builds output in randomized order; sort the keys first", path, name)
	case strings.HasSuffix(path, "internal/sim") && (name == "Go" || name == "After") && fn.Type().(*types.Signature).Recv() != nil:
		p.Reportf(call.Pos(), "sim.Env.%s inside map iteration schedules work in randomized order, perturbing the virtual-clock event sequence; iterate sorted keys", name)
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// insideRange reports whether pos falls within the range statement.
func insideRange(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

// sortedAfter reports whether obj is handed to a sort.*/slices.* call
// positioned after end within the function body — the second half of
// the collect-then-sort idiom.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, obj types.Object, end token.Pos) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < end {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
