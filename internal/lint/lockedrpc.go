package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockedRPC forbids blocking simulation operations — simnet
// Call/Transfer, disk I/O, sim.Env.Sleep, Future/WaitGroup/Queue waits
// — while a sync.Mutex or sync.RWMutex is held. A sim process that
// parks inside the scheduler while holding a Go mutex stalls every
// other process that touches the same lock without the scheduler
// noticing: with the clock only advancing when all processes block,
// that is the classic self-deadlock shape the sharded coordinator's
// per-partition locks invite. The analysis is an intra-procedural
// over-approximation: it tracks a lock/unlock depth counter through
// straight-line code and branches, treats deferred unlocks as holding
// to function end, and analyzes function literals independently (their
// bodies run on other processes).
var LockedRPC = &Analyzer{
	Name: "lockedrpc",
	Doc:  "forbid blocking simnet/sim.Env operations while holding a sync.Mutex/RWMutex",
	Run:  runLockedRPC,
}

// lockedBlocking maps package-path suffix -> function/method names that
// park the calling process in the sim scheduler.
var lockedBlocking = map[string]map[string]bool{
	"internal/sim": {
		"Sleep":       true, // Env
		"Run":         true, // Env
		"Wait":        true, // Future, WaitGroup
		"WaitTimeout": true, // Future
		"Acquire":     true, // Semaphore
		"Recv":        true, // Queue
	},
	"internal/simnet": {
		"Call":        true,
		"TryCall":     true,
		"Transfer":    true, // Network
		"TryTransfer": true, // Network
		"DiskRead":    true, // Node
		"DiskWrite":   true, // Node
	},
}

func runLockedRPC(p *Pass) error {
	w := &lockedWalker{pass: p}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					w.walkBody(d.Body)
				}
			case *ast.GenDecl:
				// Package-level var initializers can hold func literals.
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						w.walkBody(lit.Body)
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

type lockedWalker struct {
	pass *Pass
}

// walkBody analyzes one function body starting unlocked.
func (w *lockedWalker) walkBody(body *ast.BlockStmt) {
	w.walkStmts(body.List, 0)
}

// walkStmts walks a statement list with the current lock depth and
// returns the depth after the list.
func (w *lockedWalker) walkStmts(stmts []ast.Stmt, locked int) int {
	for _, s := range stmts {
		locked = w.walkStmt(s, locked)
	}
	return locked
}

func (w *lockedWalker) walkStmt(s ast.Stmt, locked int) int {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch w.lockOp(call) {
			case lockAcquire:
				return locked + 1
			case lockRelease:
				if locked > 0 {
					return locked - 1
				}
				return 0
			}
		}
		w.checkExpr(s.X, locked)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the
		// body; a deferred blocking call runs with whatever is held at
		// return, approximated by the current depth.
		if w.lockOp(s.Call) == lockNone {
			w.checkExpr(s.Call, locked)
		}
	case *ast.GoStmt:
		// The spawned body runs as its own process, unlocked; the go
		// statement itself does not block.
		w.checkExpr(s.Call.Fun, 0)
		for _, a := range s.Call.Args {
			w.checkExpr(a, 0)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, locked)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, locked)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, locked)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, locked)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			locked = w.walkStmt(s.Init, locked)
		}
		w.checkExpr(s.Cond, locked)
		thenOut := w.walkStmts(s.Body.List, locked)
		elseOut := locked
		if s.Else != nil {
			elseOut = w.walkStmt(s.Else, locked)
		}
		// Join: a branch that jumps away (return/break/continue/panic)
		// does not constrain fall-through state.
		thenJumps := endsInJump(s.Body.List)
		elseJumps := false
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			elseJumps = endsInJump(eb.List)
		}
		switch {
		case thenJumps && elseJumps:
			return locked
		case thenJumps:
			return elseOut
		case elseJumps:
			return thenOut
		default:
			return minInt(thenOut, elseOut)
		}
	case *ast.BlockStmt:
		return w.walkStmts(s.List, locked)
	case *ast.ForStmt:
		if s.Init != nil {
			locked = w.walkStmt(s.Init, locked)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, locked)
		}
		out := w.walkStmts(s.Body.List, locked)
		if s.Post != nil {
			out = w.walkStmt(s.Post, out)
		}
		return minInt(locked, out)
	case *ast.RangeStmt:
		w.checkExpr(s.X, locked)
		out := w.walkStmts(s.Body.List, locked)
		return minInt(locked, out)
	case *ast.SwitchStmt:
		if s.Init != nil {
			locked = w.walkStmt(s.Init, locked)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, locked)
		}
		out := locked
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cout := w.walkStmts(cc.Body, locked)
				if !endsInJump(cc.Body) {
					out = minInt(out, cout)
				}
			}
		}
		return out
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, locked)
			}
		}
		return locked
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, locked)
			}
		}
		return locked
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, locked)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, locked)
	case *ast.SendStmt:
		w.checkExpr(s.Chan, locked)
		w.checkExpr(s.Value, locked)
	}
	return locked
}

// checkExpr scans an expression for blocking calls executed at the
// current lock depth. Function literals are analyzed independently:
// their bodies execute later, on their own process, starting unlocked.
func (w *lockedWalker) checkExpr(e ast.Expr, locked int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkBody(n.Body)
			return false
		case *ast.CallExpr:
			if locked > 0 {
				if name, pkg := w.blockingCall(n); name != "" {
					w.pass.Reportf(n.Pos(), "%s.%s blocks in the sim scheduler while a sync mutex is held; release the lock before any blocking sim operation", pkg, name)
				}
			}
		}
		return true
	})
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp classifies a call as a sync.Mutex/RWMutex acquire or release.
func (w *lockedWalker) lockOp(call *ast.CallExpr) lockOpKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone
	}
	fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return lockNone
}

// blockingCall reports the (name, short package) of a blocking sim
// operation, or "".
func (w *lockedWalker) blockingCall(call *ast.CallExpr) (name, pkg string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	case *ast.IndexExpr: // generic instantiation: simnet.Call[T](...)
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if ident, ok := fun.X.(*ast.Ident); ok {
			id = ident
		}
	}
	if id == nil {
		return "", ""
	}
	fn, ok := w.pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	for suffix, names := range lockedBlocking {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) && names[fn.Name()] {
			short := suffix[strings.LastIndex(suffix, "/")+1:]
			return fn.Name(), short
		}
	}
	return "", ""
}

func endsInJump(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
