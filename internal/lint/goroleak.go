package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GoroLeak flags raw `go` statements whose goroutine is not tied to a
// lifetime the platform can see: a sim.Env process (spawn through
// env.Go so Run/Stop account for it), a sync.WaitGroup (wg.Add before,
// wg.Done inside), or a context/done-channel watch. An untied
// goroutine outlives its owner silently — in simulation it keeps the
// scheduler from draining, in production it leaks — and the scheduler
// teardown bugs fixed in the pooled-timer overhaul all started as
// exactly this shape. The fact pass exports every spawn with its
// escape verdict (so a future incremental driver can re-judge a
// package without re-walking its dependents); the program pass reports
// the untied ones.
//
// internal/sim itself is exempt by path: it is the package that
// implements process accounting, and its three raw spawns are the
// mechanism the rest of the repo is required to use.
var GoroLeak = &Analyzer{
	Name:       "goroleak",
	Doc:        "forbid raw go statements not tied to a sim.Env, WaitGroup, or context/done-channel lifetime",
	Facts:      goroLeakFacts,
	FactType:   func() Fact { return new(GoroFact) },
	RunProgram: runGoroLeakProgram,
}

// GoroFact is one package's goroutine-spawn escape info.
type GoroFact struct {
	Spawns []GoroSpawn `json:"spawns,omitempty"`
}

// GoroSpawn is one raw go statement and its lifetime verdict.
type GoroSpawn struct {
	Site Site `json:"site"`
	// Func is the enclosing function.
	Func string `json:"func"`
	// Tied is true when the goroutine's lifetime is anchored; How says
	// what anchors it ("waitgroup", "context", "donechan").
	Tied bool   `json:"tied"`
	How  string `json:"how,omitempty"`
}

func goroLeakFacts(p *Pass) (Fact, error) {
	if strings.HasSuffix(p.Path(), "internal/sim") {
		return nil, nil
	}
	var spawns []GoroSpawn
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var enclosing string
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				enclosing = funcKey(fn)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				tied, how := goroTied(p, fd.Body, gs)
				spawns = append(spawns, GoroSpawn{
					Site: p.Site(gs.Pos()),
					Func: enclosing,
					Tied: tied,
					How:  how,
				})
				return true
			})
		}
	}
	if len(spawns) == 0 {
		return nil, nil
	}
	sort.Slice(spawns, func(i, j int) bool { return spawns[i].Site.less(spawns[j].Site) })
	return &GoroFact{Spawns: spawns}, nil
}

func runGoroLeakProgram(pp *ProgramPass) error {
	for _, path := range pp.Facts.Packages(pp.Analyzer.Name) {
		fact := pp.Fact(path).(*GoroFact)
		for _, s := range fact.Spawns {
			if s.Tied {
				continue
			}
			pp.ReportSite(s.Site, "raw go statement in %s is not tied to any lifetime; the goroutine can outlive its owner — spawn through env.Go, pair wg.Add/wg.Done, or watch ctx.Done()/a done channel",
				shortFunc(s.Func))
		}
	}
	return nil
}

// goroTied decides whether one go statement's goroutine is anchored to
// a visible lifetime.
func goroTied(p *Pass, enclosing *ast.BlockStmt, gs *ast.GoStmt) (bool, string) {
	// An argument of type context.Context hands the goroutine a
	// cancellation scope.
	for _, arg := range gs.Call.Args {
		if tv, ok := p.Info.Types[arg]; ok && typeName(tv.Type) == "context.Context" {
			return true, "context"
		}
	}
	body, isLit := func() (*ast.BlockStmt, bool) {
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			return lit.Body, true
		}
		return nil, false
	}()
	if isLit {
		tied, how := false, ""
		ast.Inspect(body, func(n ast.Node) bool {
			if tied {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if ok && fn.Name() == "Done" {
						switch {
						case isWaitGroupRecv(fn):
							tied, how = true, "waitgroup"
						case fn.Pkg() != nil && fn.Pkg().Path() == "context":
							tied, how = true, "context"
						}
					}
				}
			case *ast.UnaryExpr:
				// <-done on a struct{} channel is the stop-signal idiom.
				if n.Op == token.ARROW && isDoneChan(p, n.X) {
					tied, how = true, "donechan"
				}
			case *ast.RangeStmt:
				if isDoneChan(p, n.X) {
					tied, how = true, "donechan"
				}
			}
			return true
		})
		if tied {
			return true, how
		}
	}
	// Named-function spawn (or a literal without its own anchor): a
	// wg.Add in the enclosing function before the spawn ties it — the
	// callee owns the Done.
	tied := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return !tied
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Name() == "Add" && isWaitGroupRecv(fn) {
				tied = true
			}
		}
		return !tied
	})
	if tied {
		return true, "waitgroup"
	}
	return false, ""
}

// isWaitGroupRecv reports whether fn is a method on sync.WaitGroup or
// the sim package's WaitGroup.
func isWaitGroupRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	name := typeName(sig.Recv().Type())
	return name == "sync.WaitGroup" || (strings.Contains(name, "internal/sim.") && strings.HasSuffix(name, ".WaitGroup"))
}

// isDoneChan reports whether e is a channel of empty structs — the
// conventional stop/done signal type.
func isDoneChan(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
