package lint

// UnusedAllow flags stale `//lint:allow` directives: well-formed
// suppressions that covered no finding in this run. A stale allow is
// worse than dead code — it documents an invariant violation that no
// longer exists, and it will silently swallow the next real finding
// that lands on its line. The suggested fix deletes the comment.
//
// Staleness is only judged for directives whose named analyzer
// actually ran (an `ofc-lint -run wallclock` pass must not flag
// seededrand allows), and only when unusedallow itself is in the run
// set. A stale-allow finding can itself be suppressed with
// `//lint:allow unusedallow <reason>` — for directives that are only
// exercised on another platform or under a build tag — and an
// unusedallow meta-directive that suppresses nothing is reported in
// turn, so the hygiene check cannot rot either.
var UnusedAllow = &Analyzer{
	Name: "unusedallow",
	Doc:  "flag //lint:allow directives that suppress no finding; the fix deletes the stale comment",
}

// staleAllows runs at the end of lint.Run, after every analyzer
// reported and suppression was resolved (marking directives used).
func staleAllows(s *suppressor, analyzers []*Analyzer) []Finding {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	if !ran[UnusedAllow.Name] {
		return nil
	}
	var out []Finding
	for _, d := range s.directives {
		if d.analyzer == UnusedAllow.Name || d.used || !ran[d.analyzer] {
			continue
		}
		f := Finding{
			File: d.file, Line: d.line, Col: d.col,
			Analyzer: UnusedAllow.Name,
			Message:  "stale //lint:allow " + d.analyzer + ": no finding on this line to suppress; delete the directive",
			Fix:      deleteDirectiveFix(d),
		}
		// Meta-suppression: //lint:allow unusedallow <reason> on the
		// directive's line (or above) keeps it. This marks the meta
		// directive used before the loop below judges it.
		if s.use(d.file, d.line, UnusedAllow.Name) || s.use(d.file, d.line-1, UnusedAllow.Name) {
			f.Suppressed = true
			f.Fix = nil
		}
		out = append(out, f)
	}
	// An unusedallow meta-directive that suppressed nothing is itself
	// stale. It is not further suppressible: the chain ends here.
	for _, d := range s.directives {
		if d.analyzer != UnusedAllow.Name || d.used {
			continue
		}
		out = append(out, Finding{
			File: d.file, Line: d.line, Col: d.col,
			Analyzer: UnusedAllow.Name,
			Message:  "stale //lint:allow unusedallow: no stale directive here to keep; delete it",
			Fix:      deleteDirectiveFix(d),
		})
	}
	return out
}

// deleteDirectiveFix removes the directive comment, and its whole line
// when the comment stands alone.
func deleteDirectiveFix(d *directive) *Fix {
	return &Fix{
		Message: "delete stale //lint:allow " + d.analyzer,
		Edits: []TextEdit{{
			File: d.file, Start: d.start, End: d.end,
			TrimBlankLine: true,
		}},
	}
}
