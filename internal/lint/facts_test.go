package lint

import (
	"reflect"
	"strings"
	"testing"
)

// probeFact exercises the serialization boundary: the unexported
// field cannot survive the JSON round-trip the store enforces.
type probeFact struct {
	Kept    string `json:"kept"`
	dropped string
}

func TestFactExportRoundTrips(t *testing.T) {
	store := NewFactStore()
	a := &Analyzer{Name: "probe", FactType: func() Fact { return new(probeFact) }}
	decoded, err := store.export(a, "p", &probeFact{Kept: "x", dropped: "y"})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decoded.(*probeFact)
	if !ok {
		t.Fatalf("export returned %T, want *probeFact", decoded)
	}
	if got.Kept != "x" {
		t.Errorf("Kept = %q, want %q", got.Kept, "x")
	}
	if got.dropped != "" {
		t.Errorf("unexported field survived the round-trip: %q; the store must hold only serialized state", got.dropped)
	}
	if store.Fact("probe", "p") != decoded {
		t.Error("store.Fact did not return the decoded copy")
	}
	if store.Fact("probe", "q") != nil {
		t.Error("store.Fact returned a fact for a package that exported none")
	}
}

func TestFactExportRejectsUnserializable(t *testing.T) {
	type badFact struct {
		Ch chan int `json:"ch"`
	}
	store := NewFactStore()
	a := &Analyzer{Name: "bad", FactType: func() Fact { return new(badFact) }}
	if _, err := store.export(a, "p", &badFact{}); err == nil || !strings.Contains(err.Error(), "serialize") {
		t.Fatalf("export of a channel-bearing fact: err = %v, want serialization error", err)
	}
}

func TestFactExportRequiresFactType(t *testing.T) {
	store := NewFactStore()
	a := &Analyzer{Name: "untyped"}
	if _, err := store.export(a, "p", &probeFact{}); err == nil || !strings.Contains(err.Error(), "FactType") {
		t.Fatalf("export without FactType: err = %v, want FactType error", err)
	}
}

// TestEncodeDecodePackage round-trips the per-package wire format an
// incremental driver would cache.
func TestEncodeDecodePackage(t *testing.T) {
	store := NewFactStore()
	lf := &LockFact{Funcs: map[string]*LockFuncFact{
		"p.F": {
			Acquires: []string{"p.T.mu"},
			Edges:    []LockEdge{{From: "p.T.mu", To: "q.U.mu", Site: Site{File: "f.go", Line: 3, Col: 2}, Func: "p.F", Via: "q.G"}},
		},
	}}
	gf := &GoroFact{Spawns: []GoroSpawn{{Site: Site{File: "f.go", Line: 9, Col: 2}, Func: "p.F", Tied: true, How: "waitgroup"}}}
	if _, err := store.export(LockOrder, "p", lf); err != nil {
		t.Fatal(err)
	}
	if _, err := store.export(GoroLeak, "p", gf); err != nil {
		t.Fatal(err)
	}
	data, err := store.EncodePackage("p")
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewFactStore()
	if err := fresh.DecodePackage("p", data, All()); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Fact(LockOrder.Name, "p"); !reflect.DeepEqual(got, lf) {
		t.Errorf("lockorder fact after decode = %+v, want %+v", got, lf)
	}
	if got := fresh.Fact(GoroLeak.Name, "p"); !reflect.DeepEqual(got, gf) {
		t.Errorf("goroleak fact after decode = %+v, want %+v", got, gf)
	}
	if got := fresh.Packages(LockOrder.Name); len(got) != 1 || got[0] != "p" {
		t.Errorf("Packages(lockorder) = %v, want [p]", got)
	}
}

func TestDecodePackageUnknownAnalyzer(t *testing.T) {
	store := NewFactStore()
	if err := store.DecodePackage("p", []byte(`{"nope":{}}`), All()); err == nil {
		t.Fatal("DecodePackage accepted facts from an unknown analyzer")
	}
}

// TestTopoSortOrder loads the two-package lockorder testdata in both
// input orders and requires the same dependency-first output — the
// property that makes downstream fact imports final.
func TestTopoSortOrder(t *testing.T) {
	loader := NewLoader()
	pa, err := loader.LoadDirAs("testdata/lockorder/a", "ofc/lofake/a")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := loader.LoadDirAs("testdata/lockorder/b", "ofc/lofake/b")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range [][]*Package{{pa, pb}, {pb, pa}} {
		var got []string
		for _, p := range topoSort(in) {
			got = append(got, p.Path)
		}
		want := []string{"ofc/lofake/a", "ofc/lofake/b"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("topoSort(%v) order = %v, want %v", []string{in[0].Path, in[1].Path}, got, want)
		}
	}
}
