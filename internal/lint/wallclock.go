package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Wallclock forbids host-clock reads inside simulation code. Every
// experiment result in this repo is only reproducible because all of
// internal/ runs on the sim.Env virtual clock; one stray time.Now or
// time.Sleep silently couples a metric to host scheduling. cmd/,
// examples/ and _test.go files are allowlisted (drivers legitimately
// measure host time); genuine host-time measurements inside internal/
// carry a //lint:allow wallclock directive with the justification.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid host-clock time.Now/Sleep/After/... inside internal/ simulation code; use the sim.Env virtual clock",
	Run:  runWallclock,
}

// wallclockBanned are the time functions that read or wait on the host
// clock. Pure constructors/arithmetic (time.Duration, ParseDuration,
// Unix) are fine: they don't observe the wall clock.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallclock(p *Pass) error {
	if !strings.Contains("/"+p.Path(), "/internal/") {
		return nil
	}
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockBanned[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the host clock inside simulation code; use the sim.Env virtual clock (env.Now/env.Sleep/env.After)", fn.Name())
			return true
		})
	}
	return nil
}
