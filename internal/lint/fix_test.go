package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func readFile(t *testing.T, p string) string {
	t.Helper()
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func fixFinding(file string, edits ...TextEdit) Finding {
	return Finding{File: file, Analyzer: "test", Fix: &Fix{Message: "test fix", Edits: edits}}
}

func TestApplyFixesOverlap(t *testing.T) {
	p := writeTempFile(t, "f.txt", "abcdef")
	res, err := ApplyFixes([]Finding{
		fixFinding(p, TextEdit{File: p, Start: 1, End: 4, NewText: "X"}),
		fixFinding(p, TextEdit{File: p, Start: 2, End: 5, NewText: "Y"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Errorf("Applied=%d Skipped=%d, want 1/1", res.Applied, res.Skipped)
	}
	if got := readFile(t, p); got != "aXef" {
		t.Errorf("content = %q, want %q", got, "aXef")
	}
}

func TestApplyFixesDedup(t *testing.T) {
	// Two findings proposing the identical edit (both inserting the
	// same import) apply it once and both count as applied.
	p := writeTempFile(t, "f.txt", "head tail")
	e := TextEdit{File: p, Start: 4, End: 4, NewText: " mid"}
	res, err := ApplyFixes([]Finding{fixFinding(p, e), fixFinding(p, e)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.Skipped != 0 {
		t.Errorf("Applied=%d Skipped=%d, want 2/0", res.Applied, res.Skipped)
	}
	if got := readFile(t, p); got != "head mid tail" {
		t.Errorf("content = %q, want %q", got, "head mid tail")
	}
}

func TestApplyFixesTrimBlankLine(t *testing.T) {
	// A comment alone on its line takes the whole line with it; a
	// trailing comment takes its leading padding.
	alone := "x = 1\n\t// gone\ny = 2\n"
	p := writeTempFile(t, "alone.txt", alone)
	start := strings.Index(alone, "// gone")
	if _, err := ApplyFixes([]Finding{fixFinding(p,
		TextEdit{File: p, Start: start, End: start + len("// gone"), TrimBlankLine: true})}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, p); got != "x = 1\ny = 2\n" {
		t.Errorf("standalone deletion = %q, want %q", got, "x = 1\ny = 2\n")
	}

	trailing := "x = 1 // gone\ny = 2\n"
	p2 := writeTempFile(t, "trailing.txt", trailing)
	start = strings.Index(trailing, "// gone")
	if _, err := ApplyFixes([]Finding{fixFinding(p2,
		TextEdit{File: p2, Start: start, End: start + len("// gone"), TrimBlankLine: true})}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, p2); got != "x = 1\ny = 2\n" {
		t.Errorf("trailing deletion = %q, want %q", got, "x = 1\ny = 2\n")
	}
}

func TestApplyFixesSkipsSuppressed(t *testing.T) {
	p := writeTempFile(t, "f.txt", "abc")
	f := fixFinding(p, TextEdit{File: p, Start: 0, End: 1, NewText: "Z"})
	f.Suppressed = true
	res, err := ApplyFixes([]Finding{f})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || len(res.Files) != 0 {
		t.Errorf("suppressed fix applied: %+v", res)
	}
	if got := readFile(t, p); got != "abc" {
		t.Errorf("file rewritten to %q", got)
	}
}

// fixdataRun loads a fixdata copy fresh (positions shift after edits)
// and runs the two fix-bearing analyzers over it.
func fixdataRun(t *testing.T, dir string) []Finding {
	t.Helper()
	pkg, err := NewLoader().LoadDirAs(dir, "ofc/fixfake")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{SentErr, UnusedAllow})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestFixIdempotent is the acceptance property: applying every
// suggested fix removes the patterns that produced the findings, so
// the re-run is clean and a second -fix pass edits nothing.
func TestFixIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: loads the package twice from source")
	}
	dir := t.TempDir()
	src, err := filepath.Glob("testdata/fixdata/a/*.go")
	if err != nil || len(src) == 0 {
		t.Fatalf("fixdata glob: %v (%d files)", err, len(src))
	}
	for _, name := range src {
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(name)), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	first := fixdataRun(t, dir)
	byAnalyzer := map[string]int{}
	for _, f := range first {
		byAnalyzer[f.Analyzer]++
		if f.Fix == nil {
			t.Errorf("finding without fix in fixdata: %s", f)
		}
	}
	if byAnalyzer["senterr"] != 2 || byAnalyzer["unusedallow"] != 1 {
		t.Fatalf("first run findings by analyzer = %v, want senterr:2 unusedallow:1", byAnalyzer)
	}

	res, err := ApplyFixes(first)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 3 || res.Skipped != 0 || len(res.Files) != 2 {
		t.Fatalf("ApplyFixes = %+v, want 3 applied over 2 files", res)
	}

	fixedA := readFile(t, filepath.Join(dir, "a.go"))
	if !strings.Contains(fixedA, "errors.Is(err, ErrGone)") || strings.Contains(fixedA, "//lint:allow") {
		t.Errorf("a.go after fix:\n%s", fixedA)
	}
	fixedB := readFile(t, filepath.Join(dir, "b.go"))
	if !strings.Contains(fixedB, `import "errors"`) || !strings.Contains(fixedB, "!errors.Is(err, ErrGone)") {
		t.Errorf("b.go after fix (import insertion + negated rewrite):\n%s", fixedB)
	}

	// The fixed package must type-check (fixdataRun fails otherwise)
	// and produce nothing further to do.
	second := fixdataRun(t, dir)
	if len(second) != 0 {
		t.Fatalf("findings after fix: %v", second)
	}
	res2, err := ApplyFixes(second)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied != 0 || len(res2.Files) != 0 {
		t.Errorf("second fix pass edited files: %+v", res2)
	}
}

// strict mirrors of the -json wire format: decoding with
// DisallowUnknownFields pins the schema, so a renamed or added field
// breaks this test instead of silently breaking CI annotation.
type strictEdit struct {
	File          string `json:"file"`
	Start         int    `json:"start"`
	End           int    `json:"end"`
	NewText       string `json:"newText"`
	TrimBlankLine bool   `json:"trimBlankLine"`
}

type strictFix struct {
	Message string       `json:"message"`
	Edits   []strictEdit `json:"edits"`
}

type strictFinding struct {
	File       string     `json:"file"`
	Line       int        `json:"line"`
	Col        int        `json:"col"`
	Analyzer   string     `json:"analyzer"`
	Message    string     `json:"message"`
	Suppressed bool       `json:"suppressed"`
	Fix        *strictFix `json:"fix"`
}

func TestJSONSchema(t *testing.T) {
	findings := fixdataRun(t, "testdata/fixdata/a") // read-only: no fixes applied
	if len(findings) == 0 {
		t.Fatal("no findings to encode")
	}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	dec.DisallowUnknownFields()
	var got []strictFinding
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("-json output does not match the documented schema: %v", err)
	}
	if len(got) != len(findings) {
		t.Fatalf("decoded %d findings, want %d", len(got), len(findings))
	}
	sawFix := false
	for _, f := range got {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding with empty required field: %+v", f)
		}
		if f.Fix != nil {
			sawFix = true
			if len(f.Fix.Edits) == 0 {
				t.Errorf("fix with no edits: %+v", f)
			}
		}
	}
	if !sawFix {
		t.Error("no finding carried a fix; schema coverage incomplete")
	}

	buf.Reset()
	if err := EncodeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("EncodeJSON(nil) = %q, want []", buf.String())
	}
}
