package lint

import (
	"strings"
)

// Suppression directives.
//
// A finding is suppressed by a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the same line as the flagged code (trailing
// comment) or on the line directly above it. The reason is mandatory:
// a suppression without a stated justification is itself reported as a
// `directive` finding, so the gate cannot be silenced silently. A
// directive naming a nonexistent analyzer is likewise an error — never
// a silent no-op — and a well-formed directive that suppresses nothing
// is flagged stale by the unusedallow check (its fix deletes the
// comment).

// directiveAnalyzer names the pseudo-analyzer used for malformed
// //lint: comments. It is not suppressible via //lint:allow.
const directiveAnalyzer = "directive"

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// directive is one well-formed //lint:allow comment.
type directive struct {
	file     string
	line     int
	col      int
	analyzer string
	reason   string
	// start/end are byte offsets of the comment in its file, for the
	// unusedallow deletion fix.
	start, end int
	// used is set when the directive suppresses at least one finding.
	used bool
}

type suppressor struct {
	allowed    map[allowKey]*directive
	directives []*directive
	malformed  []Finding
}

func newSuppressor() *suppressor {
	return &suppressor{allowed: map[allowKey]*directive{}}
}

// scan collects every //lint: directive in the package.
func (s *suppressor) scan(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(text, " ")
				if verb != "allow" {
					s.malformed = append(s.malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: directiveAnalyzer,
						Message:  "unknown lint directive //lint:" + verb + " (only //lint:allow <analyzer> <reason> is recognized)",
					})
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					s.malformed = append(s.malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: directiveAnalyzer,
						Message:  "malformed //lint:allow: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				if !knownAnalyzer(name) {
					s.malformed = append(s.malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: directiveAnalyzer,
						Message:  "//lint:allow names unknown analyzer " + name,
					})
					continue
				}
				d := &directive{
					file: pos.Filename, line: pos.Line, col: pos.Column,
					analyzer: name, reason: strings.TrimSpace(reason),
					start: pos.Offset,
					end:   pkg.Fset.Position(c.End()).Offset,
				}
				s.directives = append(s.directives, d)
				key := allowKey{pos.Filename, pos.Line, name}
				if s.allowed[key] == nil {
					s.allowed[key] = d
				}
			}
		}
	}
}

// allows reports whether a directive on the finding's line or the line
// above covers it, marking that directive used. Directive findings
// themselves can't be allowed.
func (s *suppressor) allows(f Finding) bool {
	if f.Analyzer == directiveAnalyzer {
		return false
	}
	return s.use(f.File, f.Line, f.Analyzer) || s.use(f.File, f.Line-1, f.Analyzer)
}

// use marks the directive at (file, line) covering analyzer as used.
func (s *suppressor) use(file string, line int, analyzer string) bool {
	d := s.allowed[allowKey{file, line, analyzer}]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
