package lint

import (
	"strings"
)

// Suppression directives.
//
// A finding is suppressed by a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the same line as the flagged code (trailing
// comment) or on the line directly above it. The reason is mandatory:
// a suppression without a stated justification is itself reported as a
// `directive` finding, so the gate cannot be silenced silently.

// directiveAnalyzer names the pseudo-analyzer used for malformed
// //lint: comments. It is not suppressible via //lint:allow.
const directiveAnalyzer = "directive"

type allowKey struct {
	file     string
	line     int
	analyzer string
}

type suppressor struct {
	allowed   map[allowKey]bool
	malformed []Finding
}

func newSuppressor() *suppressor {
	return &suppressor{allowed: map[allowKey]bool{}}
}

// scan collects every //lint: directive in the package.
func (s *suppressor) scan(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(text, " ")
				if verb != "allow" {
					s.malformed = append(s.malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: directiveAnalyzer,
						Message:  "unknown lint directive //lint:" + verb + " (only //lint:allow <analyzer> <reason> is recognized)",
					})
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					s.malformed = append(s.malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: directiveAnalyzer,
						Message:  "malformed //lint:allow: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				if !knownAnalyzer(name) {
					s.malformed = append(s.malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: directiveAnalyzer,
						Message:  "//lint:allow names unknown analyzer " + name,
					})
					continue
				}
				s.allowed[allowKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
}

// allows reports whether a directive on the finding's line or the line
// above covers it. Directive findings themselves can't be allowed.
func (s *suppressor) allows(f Finding) bool {
	if f.Analyzer == directiveAnalyzer {
		return false
	}
	return s.allowed[allowKey{f.File, f.Line, f.Analyzer}] ||
		s.allowed[allowKey{f.File, f.Line - 1, f.Analyzer}]
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
