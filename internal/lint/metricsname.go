package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// MetricsName checks counter names passed to internal/metrics. Names
// must be lowerCamel ("cacheHits", not "cache_hits" or "CacheHits"),
// non-empty, and unambiguous within a package: two spellings that
// differ only in case ("cacheHits" vs "cachehits") silently register
// two distinct counters and split the count — a typo-shaped bug no
// test catches because both counters "work".
var MetricsName = &Analyzer{
	Name: "metricsname",
	Doc:  "metric names passed to internal/metrics must be lowerCamel and unique (case-insensitively) per package",
	Run:  runMetricsName,
}

// metricsNameMethods are the name-keyed entry points of the metrics
// package.
var metricsNameMethods = map[string]bool{"Inc": true, "Get": true}

func runMetricsName(p *Pass) error {
	type spelling struct {
		name string
		pos  ast.Expr
	}
	seen := map[string][]spelling{} // lowercase -> distinct spellings
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !metricsNameMethods[fn.Name()] {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // dynamic names can't be checked statically
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !isLowerCamel(name) {
				p.Reportf(lit.Pos(), "metric name %q is not lowerCamel (want e.g. %q)", name, lowerCamelHint(name))
			}
			lower := strings.ToLower(name)
			group := seen[lower]
			dup := false
			for _, s := range group {
				if s.name == name {
					dup = true
					break
				}
			}
			if !dup {
				seen[lower] = append(group, spelling{name, call.Args[0]})
			}
			return true
		})
	}
	for _, group := range seen {
		if len(group) < 2 {
			continue
		}
		var names []string
		for _, s := range group {
			names = append(names, strconv.Quote(s.name))
		}
		for _, s := range group {
			p.Reportf(s.pos.Pos(), "ambiguous metric name: %s register distinct counters that differ only in case", strings.Join(names, " vs "))
		}
	}
	return nil
}

// isLowerCamel accepts a leading lowercase letter followed by letters
// and digits only.
func isLowerCamel(s string) bool {
	if s == "" {
		return false
	}
	if s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// lowerCamelHint converts a name to a plausible lowerCamel spelling
// for the diagnostic.
func lowerCamelHint(s string) string {
	var b strings.Builder
	upperNext := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == '-' || c == '.' || c == ' ':
			upperNext = b.Len() > 0
		case c >= 'A' && c <= 'Z' && b.Len() == 0:
			b.WriteByte(c - 'A' + 'a')
		case upperNext && c >= 'a' && c <= 'z':
			b.WriteByte(c - 'a' + 'A')
			upperNext = false
		default:
			b.WriteByte(c)
			upperNext = false
		}
	}
	if b.Len() == 0 {
		return "metricName"
	}
	return b.String()
}
