package errfake

import "errors"

// errLocal is unexported and not Err-prefixed-exported, so comparing
// it by identity is out of scope; nil checks and errors.Is are the
// idiomatic forms the analyzer wants.
var errLocal = errors.New("local")

func clean(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, ErrGone) || errors.Is(err, ErrBusy) {
		return true
	}
	var prev error
	if err == prev || err == errLocal {
		return false
	}
	return ErrGone != nil // sentinel vs nil is an identity check by design
}
