package errfake

import "errors"

var (
	ErrGone = errors.New("gone")
	ErrBusy = errors.New("busy")
)

func bad(err error) int {
	if err == ErrGone { // want "identity comparison with sentinel ErrGone"
		return 1
	}
	if ErrBusy != err { // want "identity comparison with sentinel ErrBusy"
		return 2
	}
	switch err {
	case ErrGone: // want "switch on an error compares sentinel ErrGone"
		return 3
	case nil:
		return 4
	}
	return 0
}
