package errfake

func allowed(err error) bool {
	return err == ErrGone //lint:allow senterr this API contractually returns the sentinel unwrapped
}
