package lockfake

import (
	"sync"
	"time"

	"ofc/internal/sim"
)

type cleanSrv struct {
	mu  sync.Mutex
	env *sim.Env
}

// Snapshot under the lock, block after releasing it — the idiom the
// analyzer wants.
func (s *cleanSrv) snapshotThenSleep() {
	s.mu.Lock()
	d := time.Millisecond
	s.mu.Unlock()
	s.env.Sleep(d)
}

// A process spawned under the lock starts unlocked: its body runs on
// its own goroutine after the spawner releases.
func (s *cleanSrv) spawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.env.Go(func() { s.env.Sleep(time.Millisecond) })
}

// Both paths release before blocking.
func (s *cleanSrv) branchesRelease(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		s.env.Sleep(time.Millisecond)
		return
	}
	s.mu.Unlock()
	s.env.Sleep(time.Millisecond)
}
