package lockfake

import (
	"sync"
	"time"

	"ofc/internal/sim"
	"ofc/internal/simnet"
)

type srv struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	env *sim.Env
	net *simnet.Network
}

func (s *srv) badSleep() {
	s.mu.Lock()
	s.env.Sleep(time.Millisecond) // want "Sleep blocks in the sim scheduler while a sync mutex is held"
	s.mu.Unlock()
}

func (s *srv) badDeferTransfer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.net.Transfer(0, 1, 1024) // want "Transfer blocks in the sim scheduler while a sync mutex is held"
}

func (s *srv) badCall() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return simnet.Call(s.net, 0, 1, 64, 64, func() int { return 1 }) // want "Call blocks in the sim scheduler while a sync mutex is held"
}

func (s *srv) badRLockWait(f *sim.Future[int]) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return f.Wait() // want "Wait blocks in the sim scheduler while a sync mutex is held"
}

func (s *srv) badDiskUnderBranchLock(cond bool) {
	s.mu.Lock()
	if cond {
		s.net.Node(0).DiskRead(4096) // want "DiskRead blocks in the sim scheduler while a sync mutex is held"
	}
	s.mu.Unlock()
}
