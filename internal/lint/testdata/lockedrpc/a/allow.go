package lockfake

import (
	"sync"
	"time"

	"ofc/internal/sim"
)

type allowSrv struct {
	mu  sync.Mutex
	env *sim.Env
}

func (s *allowSrv) allowed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.env.Sleep(time.Millisecond) //lint:allow lockedrpc single-process setup code; no other process touches this lock yet
}
