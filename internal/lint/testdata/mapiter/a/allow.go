package mapfake

// A directive on the offending line suppresses the finding.
func allowed(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		//lint:allow mapiter consumer is a commutative reducer documented to accept any order
		vals = append(vals, v)
	}
	return vals
}
