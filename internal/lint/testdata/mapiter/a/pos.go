package mapfake

import (
	"fmt"
	"os"
	"strings"
)

// Each sink freezes the randomized iteration order into something a
// simulation result (or its report) can observe.
func bad(m map[string]int, ch chan string, sb *strings.Builder) []string {
	var names []string
	for k := range m {
		ch <- k                           // want "channel send inside map iteration"
		fmt.Println(k)                    // want "fmt.Println inside map iteration prints entries in randomized order"
		fmt.Fprintf(os.Stderr, "%s\n", k) // want "fmt.Fprintf inside map iteration prints entries in randomized order"
		sb.WriteString(k)                 // want "strings.WriteString inside map iteration builds output in randomized order"
		names = append(names, k)          // want "appending to .names. inside map iteration captures randomized order"
	}
	return names
}
