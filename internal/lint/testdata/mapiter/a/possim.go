package mapfake

import "ofc/internal/sim"

// Spawning simulation work per map entry makes the virtual-clock event
// sequence depend on iteration order even when every goroutine is
// individually deterministic.
func badSpawn(env *sim.Env, m map[string]func()) {
	for _, fn := range m {
		env.Go(fn) // want "sim.Env.Go inside map iteration schedules work in randomized order"
	}
}
