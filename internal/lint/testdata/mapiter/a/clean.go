package mapfake

import "sort"

// Order-insensitive bodies are legal: commutative accumulation, keyed
// writes, deletes, and loop-local scratch that dies with the
// iteration.
func cleanAccumulate(m map[string]int, stale map[string]bool) int {
	sum := 0
	out := map[string]int{}
	for k, v := range m {
		sum += v
		out[k] = v * 2
		if v == 0 {
			delete(stale, k)
		}
		var local []int // loop-local: no order escapes
		local = append(local, v)
		_ = local
	}
	return sum
}

// The canonical collect-then-sort idiom re-establishes a deterministic
// order before anything observes the slice.
func cleanCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator counts too.
func cleanCollectSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}
